package repro

import (
	"fmt"
	"testing"
)

// The figure benchmarks regenerate each of the paper's evaluation figures
// (Sec. 5, Fig. 11(a)-(d)) and the companion paper's hybrid ablation, with a
// reduced run count per configuration (the full 61-run data is produced by
// cmd/reprofigs). Each reports the headline numbers of the figure as custom
// benchmark metrics so regressions in the reproduced *shape* are visible in
// benchmark output.

var benchOptions = Options{Runs: 3, BaseSeed: 4242}

// reportEndpoints attaches the first and last mean of each series as
// benchmark metrics.
func reportEndpoints(b *testing.B, fig Figure) {
	b.Helper()
	for _, s := range fig.Series {
		if len(s.Mean) == 0 {
			continue
		}
		b.ReportMetric(s.Mean[0], s.Label+"@lo")
		b.ReportMetric(s.Mean[len(s.Mean)-1], s.Label+"@hi")
	}
}

// BenchmarkFig11a regenerates Fig. 11(a): maximum drift at t=1000 as a
// function of object speed, for PD²-OI and PD²-LJ with and without the
// occluding pole.
func BenchmarkFig11a(b *testing.B) {
	var fig Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, _, err = Fig11AB(benchOptions)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportEndpoints(b, fig)
}

// BenchmarkFig11b regenerates Fig. 11(b): percent of the ideal (I_PS)
// allocation as a function of object speed.
func BenchmarkFig11b(b *testing.B) {
	var fig Figure
	for i := 0; i < b.N; i++ {
		var err error
		_, fig, err = Fig11AB(benchOptions)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportEndpoints(b, fig)
}

// BenchmarkFig11c regenerates Fig. 11(c): maximum drift at t=1000 as a
// function of the radius of rotation.
func BenchmarkFig11c(b *testing.B) {
	var fig Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, _, err = Fig11CD(benchOptions)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportEndpoints(b, fig)
}

// BenchmarkFig11d regenerates Fig. 11(d): percent of the ideal allocation
// as a function of the radius of rotation.
func BenchmarkFig11d(b *testing.B) {
	var fig Figure
	for i := 0; i < b.N; i++ {
		var err error
		_, fig, err = Fig11CD(benchOptions)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportEndpoints(b, fig)
}

// BenchmarkHybridAblation regenerates the companion paper's efficiency-
// versus-accuracy sweep over the hybrid OI/LJ threshold.
func BenchmarkHybridAblation(b *testing.B) {
	var fig Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = HybridAblation(benchOptions)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportEndpoints(b, fig)
}

// BenchmarkWhisperRun measures one full 1000-quantum Whisper simulation
// under each policy — the unit of work every figure point repeats.
func BenchmarkWhisperRun(b *testing.B) {
	for _, kind := range []PolicyKind{PolicyOI, PolicyLJ} {
		b.Run(kind.String(), func(b *testing.B) {
			p := DefaultWhisperParams()
			p.Speed = 2.9
			for i := 0; i < b.N; i++ {
				p.Seed = uint64(i + 1)
				res, err := RunWhisper(p, kind, nil)
				if err != nil {
					b.Fatal(err)
				}
				if res.Misses != 0 {
					b.Fatalf("misses: %d", res.Misses)
				}
			}
		})
	}
}

// BenchmarkSchedulerSlot measures the per-slot cost of the PD² engine on a
// static system, across system sizes. The paper reports ~5µs per-slot
// scheduling decisions on its 2.7GHz testbed; the event-driven calendar
// engine keeps the per-slot cost roughly flat as the task count grows (see
// BENCH_core.json for the tracked trajectory).
func BenchmarkSchedulerSlot(b *testing.B) {
	for _, n := range []int{8, 32, 128, 512, 2048, 8192} {
		b.Run(fmt.Sprintf("tasks=%d", n), func(b *testing.B) {
			var tasks []Spec
			for i := 0; i < n; i++ {
				tasks = append(tasks, Spec{Name: fmt.Sprintf("T%d", i), Weight: NewRat(1, int64(n/4+2))})
			}
			sys := System{M: 4, Tasks: tasks}
			s, err := NewScheduler(Config{M: 4, Policy: PolicyOI, Police: true}, sys)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Step()
			}
			if len(s.Misses()) != 0 {
				b.Fatalf("misses: %v", s.Misses())
			}
		})
	}
}

// BenchmarkReweightStorm measures a worst-case adaptive load: every slot,
// a batch of tasks re-initiates weight changes while the engine is
// scheduling, so the calendar's enactment/release machinery is exercised as
// hard as the paper's Ω(max(N, M log N)) reweighting bound suggests.
func BenchmarkReweightStorm(b *testing.B) {
	const n = 512
	const batch = 32
	var tasks []Spec
	for i := 0; i < n; i++ {
		tasks = append(tasks, Spec{Name: fmt.Sprintf("T%d", i), Weight: NewRat(1, 256)})
	}
	s, err := NewScheduler(Config{M: 4, Policy: PolicyOI, Police: true},
		System{M: 4, Tasks: tasks})
	if err != nil {
		b.Fatal(err)
	}
	weights := []Rat{NewRat(1, 256), NewRat(1, 128), NewRat(1, 200)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := (i * batch) % n
		for j := 0; j < batch; j++ {
			name := fmt.Sprintf("T%d", (base+j)%n)
			if err := s.Initiate(name, weights[(i+j)%len(weights)]); err != nil {
				b.Fatal(err)
			}
		}
		s.Step()
	}
	if len(s.Misses()) != 0 {
		b.Fatalf("misses: %v", s.Misses())
	}
}

// BenchmarkReweight measures the cost of one initiation + enactment cycle
// under each policy. The paper notes reweighting is O(log N) per task; here
// the engine's bookkeeping dominates.
func BenchmarkReweight(b *testing.B) {
	for _, kind := range []PolicyKind{PolicyOI, PolicyLJ} {
		b.Run(kind.String(), func(b *testing.B) {
			tasks := Replicate(16, Spec{Name: "T", Weight: NewRat(1, 10)})
			sys := System{M: 4, Tasks: tasks}
			s, err := NewScheduler(Config{M: 4, Policy: kind, Police: true}, sys)
			if err != nil {
				b.Fatal(err)
			}
			weights := []Rat{NewRat(1, 10), NewRat(1, 5), NewRat(3, 10)}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				name := fmt.Sprintf("T#%d", i%16)
				if err := s.Initiate(name, weights[i%len(weights)]); err != nil {
					b.Fatal(err)
				}
				s.Step()
			}
		})
	}
}

// BenchmarkOverheadTradeoff regenerates the companion paper's efficiency-
// versus-accuracy frontier (hybrid threshold sweep with per-event costs).
func BenchmarkOverheadTradeoff(b *testing.B) {
	var fig Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = OverheadTradeoff(benchOptions)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportEndpoints(b, fig)
}

// BenchmarkGammaAblation regenerates the cost-model dynamic-range ablation.
func BenchmarkGammaAblation(b *testing.B) {
	var fig Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = GammaAblation(benchOptions)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportEndpoints(b, fig)
}

// BenchmarkSchemeComparison regenerates the Sec. 6 PD²-vs-EDF trade-off
// matrix.
func BenchmarkSchemeComparison(b *testing.B) {
	p := DefaultWhisperParams()
	p.Speed = 2.9
	var table SchemeTable
	for i := 0; i < b.N; i++ {
		var err error
		table, err = SchemeComparison(p, benchOptions)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range table.Rows {
		b.ReportMetric(r.PctIdeal.Mean, r.Scheme.String()+"_pct")
	}
}

// BenchmarkERfairAblation compares idle processor-slots under plain Pfair
// releases and the ERfair early-release extension on an underloaded system.
func BenchmarkERfairAblation(b *testing.B) {
	for _, early := range []bool{false, true} {
		name := "Pfair"
		if early {
			name = "ERfair"
		}
		b.Run(name, func(b *testing.B) {
			var holes int64
			for i := 0; i < b.N; i++ {
				sys := System{M: 2, Tasks: []Spec{
					{Name: "A", Weight: NewRat(1, 3)},
					{Name: "B", Weight: NewRat(1, 4)},
					{Name: "C", Weight: NewRat(1, 5)},
				}}
				s, err := NewScheduler(Config{M: 2, Policy: PolicyOI, Police: true, EarlyRelease: early}, sys)
				if err != nil {
					b.Fatal(err)
				}
				s.RunTo(1000)
				if len(s.Misses()) != 0 {
					b.Fatal("misses")
				}
				holes = s.Holes()
			}
			b.ReportMetric(float64(holes), "holes/1000slots")
		})
	}
}

// BenchmarkHeavySchedulerSlot measures the per-slot cost with the full PD²
// priority active (heavy tasks, group deadlines) at full utilization.
func BenchmarkHeavySchedulerSlot(b *testing.B) {
	tasks := Replicate(7, Spec{Name: "H", Weight: NewRat(5, 7)})
	s, err := NewScheduler(Config{M: 5, Policy: PolicyOI, Police: true, AllowHeavy: true},
		System{M: 5, Tasks: tasks})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
	if len(s.Misses()) != 0 {
		b.Fatal("misses")
	}
}
