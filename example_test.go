package repro_test

import (
	"fmt"

	"repro"
)

// Schedule two tasks on one processor and reweight one of them at run time
// with the paper's fine-grained rules.
func ExampleNewScheduler() {
	sys := repro.System{M: 1, Tasks: []repro.Spec{
		{Name: "A", Weight: repro.NewRat(1, 2)},
		{Name: "B", Weight: repro.NewRat(1, 4)},
	}}
	s, err := repro.NewScheduler(repro.Config{M: 1, Policy: repro.PolicyOI, Police: true}, sys)
	if err != nil {
		panic(err)
	}
	s.RunTo(8)
	if err := s.Initiate("B", repro.NewRat(1, 2)); err != nil {
		panic(err)
	}
	s.RunTo(40)
	m, _ := s.Metrics("B")
	fmt.Println("B scheduling weight:", m.SchedWeight)
	fmt.Println("deadline misses:", len(s.Misses()))
	// Output:
	// B scheduling weight: 1/2
	// deadline misses: 0
}

// Render the Pfair windows of the paper's Fig. 1(a) task.
func ExampleWindowsDiagram() {
	fmt.Print(repro.WindowsDiagram("5/16", 2))
	// Output:
	// weight 5/16
	// T_1  [==)     r=0 d=4 b=1
	// T_2     [==)  r=3 d=7 b=1
}

// Exact rational weights round-trip through text.
func ExampleParseRat() {
	w, err := repro.ParseRat("3/19")
	if err != nil {
		panic(err)
	}
	fmt.Println(w, w.Add(repro.NewRat(2, 19)))
	// Output:
	// 3/19 5/19
}

// The drift of the paper's Fig. 8 scenario under leave/join reweighting.
func ExampleScheduler_Initiate() {
	tasks := repro.Replicate(35, repro.Spec{Name: "A", Weight: repro.NewRat(1, 10)})
	tasks = append(tasks, repro.Spec{Name: "T", Weight: repro.NewRat(1, 10)})
	s, err := repro.NewScheduler(repro.Config{M: 4, Policy: repro.PolicyLJ, Police: true},
		repro.System{M: 4, Tasks: tasks})
	if err != nil {
		panic(err)
	}
	s.RunTo(4)
	if err := s.Initiate("T", repro.NewRat(1, 2)); err != nil {
		panic(err)
	}
	s.RunTo(12)
	m, _ := s.Metrics("T")
	fmt.Println("drift:", m.Drift)
	// Output:
	// drift: 12/5
}
