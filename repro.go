// Package repro is the public API of this reproduction of "Fine-Grained
// Task Reweighting on Multiprocessors" (Block, Anderson, Bishop; TR06-008,
// the extended version of the 2005 "Task Reweighting on Multiprocessors:
// Efficiency versus Accuracy" line of work).
//
// The library simulates PD² Pfair scheduling of adaptable intra-sporadic
// (AIS) task systems on M processors, with three reweighting policies:
//
//   - PolicyOI: the paper's fine-grained rules O and I — constant drift per
//     weight change, no deadline misses (Theorems 2 and 5);
//   - PolicyLJ: the leave/join baseline — correct but coarse-grained, with
//     unbounded per-event drift (Theorem 3);
//   - PolicyHybrid: per-event choice between the two, trading reweighting
//     overhead for accuracy (the companion paper's knob).
//
// A typical use:
//
//	sys := repro.System{M: 2, Tasks: []repro.Spec{
//		{Name: "video", Weight: repro.NewRat(1, 3)},
//		{Name: "audio", Weight: repro.NewRat(1, 10)},
//	}}
//	s, err := repro.NewScheduler(repro.Config{M: 2, Policy: repro.PolicyOI, Police: true}, sys)
//	if err != nil { ... }
//	s.RunTo(100)                                  // simulate 100 quanta
//	s.Initiate("video", repro.NewRat(1, 2))       // request a new share
//	s.RunTo(200)
//	m, _ := s.Metrics("video")                    // drift, lag, allocations
//
// The Whisper tracking workload of the paper's evaluation, the experiment
// harness that regenerates its figures, and schedule/figure rendering are
// exposed from the internal packages via the aliases below.
package repro

import (
	"repro/internal/core"
	"repro/internal/edf"
	"repro/internal/expr"
	"repro/internal/frac"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/whisper"
	"repro/internal/workload"
)

// Core scheduling types.
type (
	// Rat is an exact rational number; all weights, allocations and drift
	// values are exact.
	Rat = frac.Rat
	// Time is a slot index; slot t covers real time [t, t+1) quanta.
	Time = model.Time
	// Spec describes one task: name, initial weight, join time, tie-break
	// group.
	Spec = model.Spec
	// System is a task set plus processor count.
	System = model.System
	// Window is a subtask's [release, deadline) interval.
	Window = model.Window
	// Config parameterizes a Scheduler (processors, policy, tie-breaks,
	// policing, recording).
	Config = core.Config
	// Scheduler is the PD² engine for adaptable task systems.
	Scheduler = core.Scheduler
	// PolicyKind selects the reweighting scheme.
	PolicyKind = core.PolicyKind
	// TaskMetrics is a snapshot of one task's accounting (drift, lag,
	// ideal and actual allocations).
	TaskMetrics = core.TaskMetrics
	// MissEvent records a deadline miss.
	MissEvent = core.MissEvent
	// DriftEvent records a drift update at an enactment.
	DriftEvent = core.DriftEvent
	// TieBreak orders tasks tied on deadline and b-bit.
	TieBreak = core.TieBreak
	// EPDFPS is the EPDF-with-projected-deadlines scheduler used to exhibit
	// the Theorem 4 counterexample.
	EPDFPS = core.EPDFPS
)

// Reweighting policies.
const (
	PolicyOI     = core.PolicyOI
	PolicyLJ     = core.PolicyLJ
	PolicyHybrid = core.PolicyHybrid
)

// Whisper workload and experiment harness types.
type (
	// WhisperParams configures the paper's tracking scenario.
	WhisperParams = whisper.Params
	// WhisperSimulation holds scenario kinematics and emits weight-change
	// requests.
	WhisperSimulation = whisper.Simulation
	// RunResult summarizes one simulation run.
	RunResult = expr.RunResult
	// Cell aggregates a configuration over randomized runs.
	Cell = expr.Cell
	// Options controls experiment repetition and parallelism.
	Options = expr.Options
	// Figure is a reproduced evaluation figure.
	Figure = expr.Figure
	// Series is one labeled curve of a Figure.
	Series = expr.Series
	// Chooser decides whether a hybrid handles an event with rules O/I.
	Chooser = expr.Chooser
	// Summary is a sample mean with its 98% confidence interval.
	Summary = stats.Summary
	// Scheme identifies a scheduling approach in the cross-scheme
	// comparison (PD²-OI, PD²-LJ, global EDF, partitioned EDF).
	Scheme = expr.Scheme
	// SchemeTable is the cross-scheme comparison table.
	SchemeTable = expr.SchemeTable
	// SchemeRow is one scheme's aggregated results.
	SchemeRow = expr.SchemeRow
	// EDFScheduler is the unit-job EDF baseline (global or partitioned).
	EDFScheduler = edf.Scheduler
	// EDFResult summarizes one EDF run against the requested-weight ideal.
	EDFResult = expr.EDFResult
	// WorkloadParams configures the abstract bursty workload generator
	// (vision/signal-processing-style adaptivity from the paper's intro).
	WorkloadParams = workload.Params
	// WorkloadGenerator drives one bursty workload instance.
	WorkloadGenerator = workload.Generator
	// Workload is any source of adaptive demand (Whisper, the bursty
	// generator, or user code).
	Workload = expr.Workload
	// WeightRequest is one weight-change request from a workload.
	WeightRequest = model.WeightRequest
	// WhisperRunConfig parameterizes a run (policy, hybrid chooser,
	// overhead costs).
	WhisperRunConfig = expr.WhisperRunConfig
)

// Cross-scheme comparison identifiers.
const (
	SchemePD2OI = expr.SchemePD2OI
	SchemePD2LJ = expr.SchemePD2LJ
	SchemeGEDF  = expr.SchemeGEDF
	SchemePEDF  = expr.SchemePEDF
)

// NewRat returns the exact rational num/den.
func NewRat(num, den int64) Rat { return frac.New(num, den) }

// ParseRat parses "a/b" or "a".
func ParseRat(s string) (Rat, error) { return frac.Parse(s) }

// Periodic returns the spec of a periodic task with execution cost e and
// period p.
func Periodic(name string, e, p int64) Spec { return model.Periodic(name, e, p) }

// Replicate returns n copies of a base spec with unique names.
func Replicate(n int, base Spec) []Spec { return model.Replicate(n, base) }

// NewScheduler builds a PD² scheduler over the given system.
func NewScheduler(cfg Config, sys System) (*Scheduler, error) { return core.New(cfg, sys) }

// NewEPDFPS returns the EPDF-with-projected-deadlines counterexample
// scheduler on m processors.
func NewEPDFPS(m int) *EPDFPS { return core.NewEPDFPS(m) }

// FavorGroup returns a tie-break preferring tasks of the named group.
func FavorGroup(group string) TieBreak { return core.FavorGroup(group) }

// DefaultWhisperParams returns the paper's Whisper configuration (Sec. 5).
func DefaultWhisperParams() WhisperParams { return whisper.DefaultParams() }

// NewWhisper builds a Whisper scenario.
func NewWhisper(p WhisperParams) (*WhisperSimulation, error) { return whisper.NewSimulation(p) }

// RunWhisper simulates one Whisper scenario under a policy.
func RunWhisper(p WhisperParams, kind PolicyKind, choose Chooser) (RunResult, error) {
	return expr.RunWhisper(p, kind, choose)
}

// RunCell evaluates one configuration across repeated randomized runs.
func RunCell(p WhisperParams, kind PolicyKind, choose Chooser, o Options) (Cell, error) {
	return expr.RunCell(p, kind, choose, o)
}

// DefaultOptions returns the paper's 61-run experiment setup.
func DefaultOptions() Options { return expr.DefaultOptions() }

// ThresholdChooser routes events with |Δw| >= threshold to rules O/I.
func ThresholdChooser(threshold float64) Chooser { return expr.ThresholdChooser(threshold) }

// Fig11AB regenerates Fig. 11(a) (max drift vs speed) and Fig. 11(b)
// (percent of ideal vs speed).
func Fig11AB(o Options) (a, b Figure, err error) { return expr.Fig11AB(o) }

// Fig11CD regenerates Fig. 11(c) (max drift vs radius) and Fig. 11(d)
// (percent of ideal vs radius).
func Fig11CD(o Options) (c, d Figure, err error) { return expr.Fig11CD(o) }

// HybridAblation regenerates the hybrid OI/LJ efficiency-versus-accuracy
// sweep.
func HybridAblation(o Options) (Figure, error) { return expr.HybridAblation(o) }

// SchemeComparison runs the Whisper workload under PD²-OI, PD²-LJ, global
// EDF and partitioned EDF — the trade-off matrix of the paper's Sec. 6.
func SchemeComparison(p WhisperParams, o Options) (SchemeTable, error) {
	return expr.SchemeComparison(p, o)
}

// GammaAblation sweeps the cost model's dynamic-range exponent, the main
// calibration choice of this reproduction (see DESIGN.md).
func GammaAblation(o Options) (Figure, error) { return expr.GammaAblation(o) }

// OverheadTradeoff runs the companion paper's headline experiment: the
// hybrid threshold sweep with per-event reweighting costs charged against
// the processors (efficiency versus accuracy).
func OverheadTradeoff(o Options) (Figure, error) { return expr.OverheadTradeoff(o) }

// DefaultWorkloadParams returns the abstract bursty workload configuration.
func DefaultWorkloadParams() WorkloadParams { return workload.DefaultParams() }

// NewWorkload builds a bursty workload generator.
func NewWorkload(p WorkloadParams) (*WorkloadGenerator, error) { return workload.New(p) }

// RunWorkload simulates any adaptive workload on m processors.
func RunWorkload(w Workload, m int, horizon Time, rc WhisperRunConfig) (RunResult, error) {
	return expr.RunWorkload(w, m, horizon, rc)
}

// BurstyComparison evaluates OI vs LJ on the abstract bursty workload as
// burstiness grows.
func BurstyComparison(o Options) (Figure, error) { return expr.BurstyComparison(o) }

// NewGlobalEDF returns the global-EDF baseline scheduler on m processors.
func NewGlobalEDF(m int) *EDFScheduler { return edf.NewGlobal(m) }

// NewPartitionedEDF returns the partitioned-EDF baseline scheduler on m
// processors (first-fit placement).
func NewPartitionedEDF(m int) *EDFScheduler { return edf.NewPartitioned(m) }

// RunWhisperEDF runs one Whisper scenario under an EDF baseline.
func RunWhisperEDF(p WhisperParams, partitioned bool) (EDFResult, error) {
	return expr.RunWhisperEDF(p, partitioned)
}

// Gantt renders a recorded schedule as ASCII (Config.RecordSchedule).
func Gantt(s *Scheduler, from, to Time) string { return trace.Gantt(s, from, to) }

// GanttGrouped renders per-slot counts for groups of tasks.
func GanttGrouped(s *Scheduler, groupOf func(string) string, from, to Time) string {
	return trace.GanttGrouped(s, groupOf, from, to)
}

// WindowsDiagram renders the Pfair windows of a task of the given weight in
// the style of the paper's Fig. 1.
func WindowsDiagram(weight string, n int64, offsets ...Time) string {
	return trace.Windows(weight, n, offsets...)
}

// Chart renders series as a rough ASCII line chart.
func Chart(title string, height int, xs []float64, series map[string][]float64) string {
	return trace.Chart(title, height, xs, series)
}

// AllocTable renders a task's exact per-slot ideal (I_SW) allocations in
// the style of the paper's Figs. 1, 3 and 7 (Config.RecordSubtasks).
func AllocTable(s *Scheduler, task string, from, to Time) string {
	return trace.AllocTable(s, task, from, to)
}
