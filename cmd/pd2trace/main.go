// Command pd2trace renders the paper's worked scheduling examples: Pfair
// window layouts (Fig. 1), the one-processor halting schedule (Fig. 4), the
// Fig. 6 reweighting scenarios with their exact drift values, the Theorem 3
// leave/join drift blow-up (Fig. 8), and the Theorem 4 EPDF deadline miss
// (Fig. 9).
//
// It can also run an arbitrary scenario from a JSON spec file (see
// internal/spec for the format and specs/ for examples):
//
//	pd2trace [-demo fig1|fig4|fig6a|fig6b|fig6c|fig6d|fig8|fig9|all]
//	pd2trace -spec specs/fig6b.json [-gantt 0:30]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/spec"
)

func main() {
	demo := flag.String("demo", "all", "which worked example to render (fig1, fig4, fig6a, fig6b, fig6c, fig6d, fig8, fig9, all)")
	specPath := flag.String("spec", "", "run a JSON scenario spec instead of a built-in demo")
	ganttRange := flag.String("gantt", "", "slot range from:to to render for -spec (default the whole horizon)")
	allocTask := flag.String("alloc", "", "also render the named task's per-slot ideal allocations (-spec runs)")
	flag.Parse()

	if *specPath != "" {
		if err := runSpec(*specPath, *ganttRange, *allocTask); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	demos := map[string]func() error{
		"fig1":  fig1,
		"fig3":  fig3,
		"fig4":  fig4,
		"fig6a": fig6a,
		"fig6b": func() error { return fig6Reweight("b") },
		"fig6c": func() error { return fig6Reweight("c") },
		"fig6d": func() error { return fig6Reweight("d") },
		"fig8":  fig8,
		"fig9":  fig9,
	}
	order := []string{"fig1", "fig3", "fig4", "fig6a", "fig6b", "fig6c", "fig6d", "fig8", "fig9"}

	run := func(name string) {
		fmt.Printf("=== %s ===\n", name)
		if err := demos[name](); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if *demo == "all" {
		for _, name := range order {
			run(name)
		}
		return
	}
	if _, ok := demos[*demo]; !ok {
		fmt.Fprintf(os.Stderr, "unknown demo %q\n", *demo)
		os.Exit(2)
	}
	run(*demo)
}

// fig1 renders the window layouts of Fig. 1: a periodic and an IS task of
// weight 5/16.
func fig1() error {
	fmt.Println("Fig. 1(a): periodic task, weight 5/16")
	fmt.Print(repro.WindowsDiagram("5/16", 6))
	fmt.Println("\nFig. 1(b): IS task, weight 5/16, releases of T_2 and T_3 delayed")
	fmt.Print(repro.WindowsDiagram("5/16", 6, 0, 2, 3))
	return nil
}

// fig3 reproduces the per-slot allocation tables of Figs. 3(b) and 7(a): a
// task X of weight 3/19 that enacts an increase to 2/5 at time 8 via rule
// I. The boosted rate completes X_2 early (D = 10, deadline 13) and X_3 is
// released at 11 with full new-weight allocations.
func fig3() error {
	sys := repro.System{M: 1, Tasks: []repro.Spec{{Name: "X", Weight: repro.NewRat(3, 19)}}}
	s, err := repro.NewScheduler(repro.Config{
		M: 1, Policy: repro.PolicyOI, Police: true, RecordSubtasks: true,
	}, sys)
	if err != nil {
		return err
	}
	s.RunTo(8)
	if err := s.Initiate("X", repro.NewRat(2, 5)); err != nil {
		return err
	}
	s.RunTo(16)
	fmt.Println("X: 3/19 -> 2/5 at t=8 via rule I (ideal-changeable increase).")
	fmt.Print(repro.AllocTable(s, "X", 0, 14))
	return nil
}

// fig4 reproduces the one-processor schedule of Fig. 4: T (2/5) and U
// (2/5 -> 1/2 at time 3 via rule O, halting U_2).
func fig4() error {
	sys := repro.System{M: 1, Tasks: []repro.Spec{
		{Name: "T", Weight: repro.NewRat(2, 5), Group: "T"},
		{Name: "U", Weight: repro.NewRat(2, 5), Group: "U"},
	}}
	s, err := repro.NewScheduler(repro.Config{
		M: 1, Policy: repro.PolicyOI, Police: true,
		RecordSchedule: true, TieBreak: repro.FavorGroup("T"),
	}, sys)
	if err != nil {
		return err
	}
	s.RunTo(3)
	if err := s.Initiate("U", repro.NewRat(1, 2)); err != nil {
		return err
	}
	s.RunTo(10)
	fmt.Println("U increases 2/5 -> 1/2 at t=3; U_2 is halted (omission-changeable).")
	fmt.Print(repro.Gantt(s, 0, 10))
	m, _ := s.Metrics("U")
	fmt.Printf("U: scheduled=%d drift=%s misses=%d\n", m.Scheduled, m.Drift, m.Misses)
	return nil
}

func fig6System(tWeight repro.Rat) repro.System {
	tasks := repro.Replicate(19, repro.Spec{Name: "C", Weight: repro.NewRat(3, 20), Group: "C"})
	tasks = append(tasks, repro.Spec{Name: "T", Weight: tWeight, Group: "T"})
	return repro.System{M: 4, Tasks: tasks}
}

func groupOf(task string) string {
	if task[0] == 'C' {
		return "C(19x3/20)"
	}
	return task
}

// fig6a reproduces Fig. 6(a): T leaves at 8, U joins at 10.
func fig6a() error {
	s, err := repro.NewScheduler(repro.Config{
		M: 4, Policy: repro.PolicyOI, Police: true,
		RecordSchedule: true, TieBreak: repro.FavorGroup("C"),
	}, fig6System(repro.NewRat(3, 20)))
	if err != nil {
		return err
	}
	s.RunTo(8)
	if err := s.Leave("T"); err != nil {
		return err
	}
	s.RunTo(10)
	if err := s.Join(repro.Spec{Name: "U", Weight: repro.NewRat(1, 2), Group: "U"}); err != nil {
		return err
	}
	s.RunTo(20)
	fmt.Println("T (3/20) leaves at t=8 (rule L); U (1/2) joins at t=10 (rule J).")
	fmt.Print(repro.GanttGrouped(s, groupOf, 0, 20))
	fmt.Printf("misses=%d\n", len(s.Misses()))
	return nil
}

// fig6Reweight reproduces Fig. 6(b)-(d): T reweights via rule O or I.
func fig6Reweight(inset string) error {
	var (
		initial, target repro.Rat
		at              repro.Time
		tie             string
		blurb           string
	)
	switch inset {
	case "b":
		initial, target, at, tie = repro.NewRat(3, 20), repro.NewRat(1, 2), 10, "C"
		blurb = "T (3/20 -> 1/2 at t=10, ties favor C): omission-changeable, rule O halts T_2; drift +1/2"
	case "c":
		initial, target, at, tie = repro.NewRat(3, 20), repro.NewRat(1, 2), 10, "T"
		blurb = "T (3/20 -> 1/2 at t=10, ties favor T): ideal-changeable increase, rule I enacts immediately; drift +1/2"
	case "d":
		initial, target, at, tie = repro.NewRat(2, 5), repro.NewRat(3, 20), 1, "T"
		blurb = "T (2/5 -> 3/20 at t=1, ties favor T): ideal-changeable decrease, rule I enacts at D+b; drift -3/20"
	}
	s, err := repro.NewScheduler(repro.Config{
		M: 4, Policy: repro.PolicyOI, Police: true,
		RecordSchedule: true, TieBreak: repro.FavorGroup(tie), RecordDriftEvents: true,
	}, fig6System(initial))
	if err != nil {
		return err
	}
	s.RunTo(at)
	if err := s.Initiate("T", target); err != nil {
		return err
	}
	s.RunTo(20)
	fmt.Println(blurb)
	fmt.Print(repro.GanttGrouped(s, groupOf, 0, 20))
	m, _ := s.Metrics("T")
	fmt.Printf("T: drift=%s  A(I_PS)=%s  A(I_CSW)=%s  misses=%d\n", m.Drift, m.CumPS, m.CumCSW, m.Misses)
	for _, ev := range s.DriftEvents("T") {
		fmt.Printf("  drift event at t=%d: %s\n", ev.At, ev.Value)
	}
	return nil
}

// fig8 reproduces the Theorem 3 example: under PD²-LJ, T's drift reaches
// 24/10.
func fig8() error {
	tasks := repro.Replicate(35, repro.Spec{Name: "A", Weight: repro.NewRat(1, 10), Group: "A"})
	tasks = append(tasks, repro.Spec{Name: "T", Weight: repro.NewRat(1, 10), Group: "T"})
	s, err := repro.NewScheduler(repro.Config{
		M: 4, Policy: repro.PolicyLJ, Police: true, RecordSchedule: true,
	}, repro.System{M: 4, Tasks: tasks})
	if err != nil {
		return err
	}
	s.RunTo(4)
	if err := s.Initiate("T", repro.NewRat(1, 2)); err != nil {
		return err
	}
	s.RunTo(20)
	fmt.Println("PD²-LJ: T (1/10 -> 1/2 at t=4) cannot rejoin before t=10; drift reaches 24/10.")
	fmt.Print(repro.GanttGrouped(s, func(task string) string {
		if task[0] == 'A' {
			return "A(35x1/10)"
		}
		return task
	}, 0, 20))
	m, _ := s.Metrics("T")
	fmt.Printf("T: drift=%s (paper: 24/10)  misses=%d\n", m.Drift, m.Misses)
	return nil
}

// fig9 reproduces the Theorem 4 counterexample: EPDF with projected I_PS
// deadlines misses a deadline at t=9.
func fig9() error {
	e := repro.NewEPDFPS(2)
	e.RunTo(12, func(now repro.Time, e *repro.EPDFPS) {
		switch now {
		case 0:
			for i := 0; i < 10; i++ {
				must(e.Join(fmt.Sprintf("A#%d", i), repro.NewRat(1, 7)))
			}
			for i := 0; i < 2; i++ {
				must(e.Join(fmt.Sprintf("B#%d", i), repro.NewRat(1, 6)))
			}
			for i := 0; i < 5; i++ {
				must(e.Join(fmt.Sprintf("D#%d", i), repro.NewRat(1, 21)))
			}
		case 6:
			must(e.Leave("B#0"))
			must(e.Leave("B#1"))
			must(e.Join("C#0", repro.NewRat(1, 14)))
			must(e.Join("C#1", repro.NewRat(1, 14)))
		case 7:
			for i := 0; i < 10; i++ {
				must(e.Leave(fmt.Sprintf("A#%d", i)))
			}
			for i := 0; i < 5; i++ {
				must(e.SetWeight(fmt.Sprintf("D#%d", i), repro.NewRat(1, 3)))
			}
		}
	})
	fmt.Println("Two processors; D tasks reweight 1/21 -> 1/3 at t=7, pulling their")
	fmt.Println("projected deadlines from 21 in to 9. Any EPDF scheme misses:")
	for _, m := range e.Misses() {
		fmt.Printf("  deadline miss: task %s quantum %d at t=%d\n", m.Task, m.Subtask, m.Deadline)
	}
	if len(e.Misses()) == 0 {
		return fmt.Errorf("expected a deadline miss")
	}
	return nil
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// runSpec executes a JSON scenario and prints its schedule and metrics.
func runSpec(path, ganttRange, allocTask string) error {
	f, err := spec.Load(path)
	if err != nil {
		return err
	}
	s, err := f.Run()
	if err != nil {
		return err
	}
	from, to := repro.Time(0), f.Horizon
	if ganttRange != "" {
		parts := strings.SplitN(ganttRange, ":", 2)
		if len(parts) != 2 {
			return fmt.Errorf("bad -gantt %q (want from:to)", ganttRange)
		}
		a, err1 := strconv.ParseInt(parts[0], 10, 64)
		b, err2 := strconv.ParseInt(parts[1], 10, 64)
		if err1 != nil || err2 != nil || a < 0 || b <= a {
			return fmt.Errorf("bad -gantt %q", ganttRange)
		}
		from, to = a, b
	}
	fmt.Printf("spec %s: M=%d policy=%s horizon=%d\n\n", path, f.M, f.PolicyKind(), f.Horizon)
	if len(s.TaskNames()) <= 24 {
		fmt.Print(repro.Gantt(s, from, to))
	} else {
		fmt.Print(repro.GanttGrouped(s, func(task string) string {
			if i := strings.IndexByte(task, '#'); i >= 0 {
				return task[:i]
			}
			return task
		}, from, to))
	}
	fmt.Println()
	for _, name := range s.TaskNames() {
		m, _ := s.Metrics(name)
		if m.Initiations == 0 && m.Drift.IsZero() {
			continue
		}
		fmt.Printf("%-10s weight=%-7s swt=%-7s scheduled=%3d drift=%-8s lag=%s\n",
			name, m.Weight, m.SchedWeight, m.Scheduled, m.Drift, m.Lag)
	}
	if misses := s.Misses(); len(misses) > 0 {
		fmt.Printf("DEADLINE MISSES: %v\n", misses)
	} else {
		fmt.Println("no deadline misses")
	}
	if allocTask != "" {
		fmt.Println()
		fmt.Print(repro.AllocTable(s, allocTask, from, to))
	}
	return nil
}
