// Command whispersim runs the Whisper tracking-system evaluation of the
// paper (Sec. 5): the Fig. 11 sweeps comparing PD²-OI against PD²-LJ and
// the hybrid OI/LJ ablation of the companion paper.
//
// Usage:
//
//	whispersim -fig 11a            # one figure to stdout (TSV + ASCII chart)
//	whispersim -fig all -runs 61   # the paper's full 61-run setup
//	whispersim -single -speed 2.9  # a single scenario's metrics
//	whispersim -print-geometry     # the Fig. 10 set-up
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 11a, 11b, 11c, 11d, hybrid, gamma, overhead, bursty, schemes, all")
	runs := flag.Int("runs", 15, "randomized runs per configuration (the paper uses 61)")
	seed := flag.Uint64("seed", 1000, "base seed; run i uses seed+i")
	outDir := flag.String("out", "", "directory to also write TSV files into")
	single := flag.Bool("single", false, "run a single scenario instead of a sweep")
	speed := flag.Float64("speed", 2.9, "speed (m/s) for -single")
	radius := flag.Float64("radius", 0.25, "orbit radius (m) for -single")
	policy := flag.String("policy", "oi", "policy for -single: oi, lj")
	geometry := flag.Bool("print-geometry", false, "print the simulated Whisper set-up (Fig. 10)")
	flag.Parse()

	if *geometry {
		printGeometry()
		return
	}
	if *single {
		runSingle(*speed, *radius, *policy, *seed)
		return
	}

	o := repro.Options{Runs: *runs, BaseSeed: *seed}
	type gen struct {
		ids []string
		run func() ([]repro.Figure, error)
	}
	gens := []gen{
		{[]string{"11a", "11b"}, func() ([]repro.Figure, error) {
			a, b, err := repro.Fig11AB(o)
			return []repro.Figure{a, b}, err
		}},
		{[]string{"11c", "11d"}, func() ([]repro.Figure, error) {
			c, d, err := repro.Fig11CD(o)
			return []repro.Figure{c, d}, err
		}},
		{[]string{"hybrid"}, func() ([]repro.Figure, error) {
			h, err := repro.HybridAblation(o)
			return []repro.Figure{h}, err
		}},
		{[]string{"gamma"}, func() ([]repro.Figure, error) {
			g, err := repro.GammaAblation(o)
			return []repro.Figure{g}, err
		}},
		{[]string{"overhead"}, func() ([]repro.Figure, error) {
			f, err := repro.OverheadTradeoff(o)
			return []repro.Figure{f}, err
		}},
		{[]string{"bursty"}, func() ([]repro.Figure, error) {
			f, err := repro.BurstyComparison(o)
			return []repro.Figure{f}, err
		}},
	}
	wanted := func(id string) bool { return *fig == "all" || *fig == id }
	any := false
	if wanted("schemes") {
		any = true
		p := repro.DefaultWhisperParams()
		p.Speed = *speed
		p.Radius = *radius
		table, err := repro.SchemeComparison(p, o)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(table.TSV())
		fmt.Println()
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := os.WriteFile(*outDir+"/schemes.tsv", []byte(table.TSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	for _, g := range gens {
		need := false
		for _, id := range g.ids {
			if wanted(id) {
				need = true
			}
		}
		if !need {
			continue
		}
		any = true
		figs, err := g.run()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for i, f := range figs {
			if !wanted(g.ids[i]) {
				continue
			}
			emit(f, *outDir)
		}
	}
	if !any {
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
}

func emit(f repro.Figure, outDir string) {
	fmt.Print(f.TSV())
	series := make(map[string][]float64, len(f.Series))
	var xs []float64
	for _, s := range f.Series {
		series[s.Label] = s.Mean
		xs = s.X
	}
	if len(xs) > 1 {
		fmt.Println(repro.Chart(f.Title, 10, xs, series))
	}
	if outDir != "" {
		path, err := writeTSV(outDir, f)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", path)
	}
	fmt.Println()
}

func writeTSV(dir string, f repro.Figure) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := dir + "/" + f.ID + ".tsv"
	return path, os.WriteFile(path, []byte(f.TSV()), 0o644)
}

func runSingle(speed, radius float64, policy string, seed uint64) {
	p := repro.DefaultWhisperParams()
	p.Speed = speed
	p.Radius = radius
	p.Seed = seed
	kind := repro.PolicyOI
	if policy == "lj" {
		kind = repro.PolicyLJ
	}
	res, err := repro.RunWhisper(p, kind, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("policy=%s speed=%.2f radius=%.2f seed=%d\n", kind, speed, radius, seed)
	fmt.Printf("  max |drift| at t=%d : %.4f quanta\n", p.Horizon, res.MaxAbsDrift)
	fmt.Printf("  peak |drift|        : %.4f quanta\n", res.PeakAbsDrift)
	fmt.Printf("  %% of ideal (mean)   : %.2f%%\n", res.PctIdeal*100)
	fmt.Printf("  %% of ideal (worst)  : %.2f%%\n", res.MinPctIdeal*100)
	fmt.Printf("  initiations=%d enactments=%d misses=%d\n", res.Initiations, res.Enactments, res.Misses)
}

func printGeometry() {
	p := repro.DefaultWhisperParams()
	fmt.Println("Simulated Whisper system (paper Fig. 10):")
	fmt.Printf("  room      : %.1fm x %.1fm, microphones in all four corners\n", p.RoomSize, p.RoomSize)
	fmt.Printf("  pole      : radius %.3fm at the center (occluding)\n", p.PoleRadius)
	fmt.Printf("  speakers  : %d, orbiting at radius %.2fm, random initial phases\n", p.Speakers, p.Radius)
	fmt.Printf("  tasks     : %d (one per speaker/microphone pair) on 4 processors\n", p.Speakers*4)
	fmt.Printf("  quantum   : %.0fms, horizon %d quanta\n", p.QuantumSec*1000, p.Horizon)
	fmt.Printf("  weights   : %s..%s, w = %.3g * d_eff^%.1f (x%.0f when occluded), 5cm buckets\n",
		p.WMin, p.WMax, p.Alpha, p.Gamma, p.OccFactor)
}
