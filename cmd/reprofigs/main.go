// Command reprofigs regenerates every evaluation artifact of the paper in
// one invocation and writes the data files that EXPERIMENTS.md references:
//
//   - Fig. 11(a)-(d): the Whisper sweeps (PD²-OI vs PD²-LJ, pole vs no
//     pole) with 98% confidence intervals over randomized runs;
//   - the hybrid OI/LJ ablation of the companion paper;
//   - the worked-example checks (Figs. 4, 6, 8, 9 and Theorems 3-5 values),
//     re-verified at run time.
//
// Usage:
//
//	reprofigs [-runs 61] [-out out]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
)

func main() {
	runs := flag.Int("runs", 61, "randomized runs per configuration (paper: 61)")
	seed := flag.Uint64("seed", 1000, "base seed")
	outDir := flag.String("out", "out", "output directory for TSV data")
	alsoJSON := flag.Bool("json", false, "also write .json files beside the .tsv data")
	flag.Parse()

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	o := repro.Options{Runs: *runs, BaseSeed: *seed}

	fmt.Printf("Regenerating evaluation figures (%d runs per point, 98%% CIs)...\n\n", *runs)
	start := time.Now()

	a, b, err := repro.Fig11AB(o)
	if err != nil {
		fatal(err)
	}
	c, d, err := repro.Fig11CD(o)
	if err != nil {
		fatal(err)
	}
	h, err := repro.HybridAblation(o)
	if err != nil {
		fatal(err)
	}
	g, err := repro.GammaAblation(o)
	if err != nil {
		fatal(err)
	}
	ov, err := repro.OverheadTradeoff(o)
	if err != nil {
		fatal(err)
	}
	bu, err := repro.BurstyComparison(o)
	if err != nil {
		fatal(err)
	}
	for _, f := range []repro.Figure{a, b, c, d, h, g, ov, bu} {
		path := *outDir + "/" + f.ID + ".tsv"
		if err := os.WriteFile(path, []byte(f.TSV()), 0o644); err != nil {
			fatal(err)
		}
		if *alsoJSON {
			data, err := f.JSON()
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*outDir+"/"+f.ID+".json", data, 0o644); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("%s -> %s\n", f.ID, path)
	}
	// Cross-scheme comparison (Sec. 6): PD²-OI vs PD²-LJ vs global EDF vs
	// partitioned EDF on the fast occluded workload.
	sp := repro.DefaultWhisperParams()
	sp.Speed = 2.9
	schemes, err := repro.SchemeComparison(sp, o)
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*outDir+"/schemes.tsv", []byte(schemes.TSV()), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("schemes -> %s/schemes.tsv\n", *outDir)
	fmt.Printf("\nsweeps took %s\n\n", time.Since(start).Round(time.Millisecond))
	fmt.Println("Scheme comparison (Sec. 6 trade-offs):")
	fmt.Print(schemes.TSV())
	fmt.Println()

	// Headline comparison (paper Sec. 5): LJ completes at most ~85% of the
	// I_PS allocations while OI is always within ~95%.
	fmt.Println("Headline (Fig. 11(b), fastest speed):")
	printEndpoint(b, "PD2-OI/pole")
	printEndpoint(b, "PD2-LJ/pole")

	fmt.Println("\nDrift at t=1000 (Fig. 11(a), fastest speed):")
	printEndpoint(a, "PD2-OI/pole")
	printEndpoint(a, "PD2-LJ/pole")

	fmt.Println("\nWorked-example checks:")
	checkWorkedExamples()
	fmt.Println("\nAll artifacts regenerated. Compare against EXPERIMENTS.md.")
}

func printEndpoint(f repro.Figure, label string) {
	for _, s := range f.Series {
		if s.Label != label {
			continue
		}
		i := len(s.Mean) - 1
		fmt.Printf("  %-16s x=%.2f: %.4f ±%.4f\n", label, s.X[i], s.Mean[i], s.CI[i])
	}
}

func checkWorkedExamples() {
	check := func(name, got, want string) {
		status := "ok "
		if got != want {
			status = "FAIL"
		}
		fmt.Printf("  [%s] %-34s got %-8s want %s\n", status, name, got, want)
	}

	// Fig. 6(b): rule O drift = 1/2.
	check("Fig6(b) rule-O drift", fig6Drift("b"), "1/2")
	// Fig. 6(c): rule I increase drift = 1/2.
	check("Fig6(c) rule-I increase drift", fig6Drift("c"), "1/2")
	// Fig. 6(d): rule I decrease drift = -3/20.
	check("Fig6(d) rule-I decrease drift", fig6Drift("d"), "-3/20")
	// Fig. 8 / Theorem 3: PD²-LJ drift = 24/10 = 12/5.
	check("Fig8 (Thm 3) PD2-LJ drift", fig8Drift(), "12/5")
	// Fig. 9 / Theorem 4: EPDF miss at t=9.
	check("Fig9 (Thm 4) EPDF miss time", fig9Miss(), "9")
}

func fig6Drift(inset string) string {
	initial, target, at, tie := repro.NewRat(3, 20), repro.NewRat(1, 2), repro.Time(10), "C"
	switch inset {
	case "c":
		tie = "T"
	case "d":
		initial, target, at, tie = repro.NewRat(2, 5), repro.NewRat(3, 20), 1, "T"
	}
	tasks := repro.Replicate(19, repro.Spec{Name: "C", Weight: repro.NewRat(3, 20), Group: "C"})
	tasks = append(tasks, repro.Spec{Name: "T", Weight: initial, Group: "T"})
	s, err := repro.NewScheduler(repro.Config{
		M: 4, Policy: repro.PolicyOI, Police: true, TieBreak: repro.FavorGroup(tie),
	}, repro.System{M: 4, Tasks: tasks})
	if err != nil {
		fatal(err)
	}
	s.RunTo(at)
	if err := s.Initiate("T", target); err != nil {
		fatal(err)
	}
	s.RunTo(20)
	m, _ := s.Metrics("T")
	return m.Drift.String()
}

func fig8Drift() string {
	tasks := repro.Replicate(35, repro.Spec{Name: "A", Weight: repro.NewRat(1, 10)})
	tasks = append(tasks, repro.Spec{Name: "T", Weight: repro.NewRat(1, 10)})
	s, err := repro.NewScheduler(repro.Config{M: 4, Policy: repro.PolicyLJ, Police: true},
		repro.System{M: 4, Tasks: tasks})
	if err != nil {
		fatal(err)
	}
	s.RunTo(4)
	if err := s.Initiate("T", repro.NewRat(1, 2)); err != nil {
		fatal(err)
	}
	s.RunTo(12)
	m, _ := s.Metrics("T")
	return m.Drift.String()
}

func fig9Miss() string {
	e := repro.NewEPDFPS(2)
	e.RunTo(12, func(now repro.Time, e *repro.EPDFPS) {
		switch now {
		case 0:
			for i := 0; i < 10; i++ {
				_ = e.Join(fmt.Sprintf("A#%d", i), repro.NewRat(1, 7))
			}
			_ = e.Join("B#0", repro.NewRat(1, 6))
			_ = e.Join("B#1", repro.NewRat(1, 6))
			for i := 0; i < 5; i++ {
				_ = e.Join(fmt.Sprintf("D#%d", i), repro.NewRat(1, 21))
			}
		case 6:
			_ = e.Leave("B#0")
			_ = e.Leave("B#1")
			_ = e.Join("C#0", repro.NewRat(1, 14))
			_ = e.Join("C#1", repro.NewRat(1, 14))
		case 7:
			for i := 0; i < 10; i++ {
				_ = e.Leave(fmt.Sprintf("A#%d", i))
			}
			for i := 0; i < 5; i++ {
				_ = e.SetWeight(fmt.Sprintf("D#%d", i), repro.NewRat(1, 3))
			}
		}
	})
	if m := e.Misses(); len(m) > 0 {
		return fmt.Sprintf("%d", m[0].Deadline)
	}
	return "none"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
