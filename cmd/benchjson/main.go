// Command benchjson converts `go test -bench` output on stdin into a JSON
// record of ns/op per benchmark, suitable for committing as a performance
// baseline (BENCH_core.json at the repository root).
//
// Usage:
//
//	go test -bench 'SchedulerSlot|ReweightStorm' -run XXX . | go run ./cmd/benchjson -out BENCH_core.json
//
// If the output file already exists, its "baseline" section is preserved
// verbatim and per-benchmark speedups against it are recomputed; the fresh
// numbers land in "current". To re-baseline, delete the file (the next run
// seeds "baseline" from its own "current" numbers).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

type report struct {
	Note     string             `json:"note,omitempty"`
	Baseline map[string]float64 `json:"baseline_ns_per_op,omitempty"`
	Current  map[string]float64 `json:"current_ns_per_op"`
	Speedup  map[string]string  `json:"speedup,omitempty"`
}

func main() {
	out := flag.String("out", "BENCH_core.json", "output JSON path")
	note := flag.String("note", "", "optional note stored in the report")
	flag.Parse()

	cur, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(cur) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	rep := report{Current: cur}
	if data, err := os.ReadFile(*out); err == nil {
		var prev report
		if err := json.Unmarshal(data, &prev); err == nil {
			rep.Baseline = prev.Baseline
			if rep.Note == "" {
				rep.Note = prev.Note
			}
		}
	}
	if *note != "" {
		rep.Note = *note
	}
	if rep.Baseline == nil {
		rep.Baseline = cur // first run seeds the baseline
	}
	rep.Speedup = make(map[string]string)
	for name, ns := range cur {
		if base, ok := rep.Baseline[name]; ok && ns > 0 {
			rep.Speedup[name] = fmt.Sprintf("%.2fx", base/ns)
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("%-40s %12.0f ns/op  %s\n", name, cur[name], rep.Speedup[name])
	}
}

// parseBench extracts "BenchmarkName-P  iters  ns ns/op" lines.
func parseBench(f *os.File) (map[string]float64, error) {
	res := make(map[string]float64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		// Strip the trailing -GOMAXPROCS suffix.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		res[name] = ns
	}
	return res, sc.Err()
}
