// Command benchjson converts `go test -bench` output on stdin into a JSON
// record of ns/op per benchmark, suitable for committing as a performance
// baseline (BENCH_core.json at the repository root).
//
// Usage:
//
//	go test -bench 'SchedulerSlot|ReweightStorm' -run XXX . | go run ./cmd/benchjson -out BENCH_core.json
//
// If the output file already exists, its "baseline" section is preserved
// verbatim and per-benchmark speedups against it are recomputed; the fresh
// numbers land in "current". To re-baseline, delete the file (the next run
// seeds "baseline" from its own "current" numbers).
//
// With -check the file is never written: fresh numbers on stdin are
// compared against the committed current_ns_per_op section and the exit
// status is non-zero if any shared benchmark is more than -max-regress
// percent slower (`make bench-check`, the CI perf gate).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

type report struct {
	Note     string             `json:"note,omitempty"`
	Baseline map[string]float64 `json:"baseline_ns_per_op,omitempty"`
	Current  map[string]float64 `json:"current_ns_per_op"`
	Speedup  map[string]string  `json:"speedup,omitempty"`
}

func main() {
	out := flag.String("out", "BENCH_core.json", "output JSON path")
	note := flag.String("note", "", "optional note stored in the report")
	check := flag.Bool("check", false, "compare stdin against -out read-only; exit non-zero on ns/op regression beyond -max-regress")
	maxRegress := flag.Float64("max-regress", 25, "with -check: percent ns/op slowdown tolerated per benchmark")
	flag.Parse()

	cur, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(cur) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	if *check {
		os.Exit(checkAgainst(*out, cur, *maxRegress))
	}

	rep := report{Current: cur}
	if data, err := os.ReadFile(*out); err == nil {
		var prev report
		if err := json.Unmarshal(data, &prev); err == nil {
			rep.Baseline = prev.Baseline
			if rep.Note == "" {
				rep.Note = prev.Note
			}
		}
	}
	if *note != "" {
		rep.Note = *note
	}
	if rep.Baseline == nil {
		rep.Baseline = cur // first run seeds the baseline
	}
	rep.Speedup = make(map[string]string)
	for name, ns := range cur {
		if base, ok := rep.Baseline[name]; ok && ns > 0 {
			rep.Speedup[name] = fmt.Sprintf("%.2fx", base/ns)
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("%-40s %12.0f ns/op  %s\n", name, cur[name], rep.Speedup[name])
	}
}

// checkAgainst is the CI regression gate: it compares the fresh numbers
// against the committed report in path (read-only — the file is never
// rewritten) and returns 1 if any benchmark present in both is more than
// maxRegress percent slower than the committed current_ns_per_op number.
// Benchmarks missing on either side are reported but do not fail the
// gate; a renamed benchmark should fail review, not the build.
func checkAgainst(path string, cur map[string]float64, maxRegress float64) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: -check: %v\n", err)
		return 1
	}
	var prev report
	if err := json.Unmarshal(data, &prev); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: -check: decoding %s: %v\n", path, err)
		return 1
	}
	committed := prev.Current
	if len(committed) == 0 {
		committed = prev.Baseline
	}
	if len(committed) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: -check: %s has no numbers to compare against\n", path)
		return 1
	}

	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := false
	matched := 0
	for _, name := range names {
		base, ok := committed[name]
		if !ok || base <= 0 {
			fmt.Printf("%-40s %12.0f ns/op  (no committed number; skipped)\n", name, cur[name])
			continue
		}
		matched++
		delta := (cur[name] - base) / base * 100
		verdict := "ok"
		if delta > maxRegress {
			verdict = fmt.Sprintf("REGRESSION (limit +%.0f%%)", maxRegress)
			failed = true
		}
		fmt.Printf("%-40s %12.0f ns/op  vs %12.0f  %+6.1f%%  %s\n", name, cur[name], base, delta, verdict)
	}
	if matched == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: -check: no benchmark on stdin matches a committed number in %s\n", path)
		return 1
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchjson: -check: ns/op regressed more than %.0f%% against %s\n", maxRegress, path)
		return 1
	}
	return 0
}

// parseBench extracts "BenchmarkName-P  iters  ns ns/op" lines.
func parseBench(f *os.File) (map[string]float64, error) {
	res := make(map[string]float64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		// Strip the trailing -GOMAXPROCS suffix.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		res[name] = ns
	}
	return res, sc.Err()
}
