// Command pd2cluster is the cluster coordinator for multi-node pd2d
// deployments: it registers nodes, computes the rendezvous shard
// placement once enough nodes joined, serves and pushes the versioned
// routing table (/v1/cluster/route), orchestrates live shard
// migrations (/v1/cluster/migrate), and health-checks nodes to drive
// promote-on-primary-death failover. See docs/CLUSTER.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8370", "listen address")
		shards    = flag.Int("shards", 8, "global shard count (must match the nodes' -shards)")
		replicas  = flag.Int("replicas", 1, "followers per shard")
		minNodes  = flag.Int("min-nodes", 1, "defer the initial placement until this many nodes registered")
		heartbeat = flag.Duration("heartbeat", 500*time.Millisecond, "node health-check interval")
		misses    = flag.Int("heartbeat-misses", 2, "consecutive failed health checks before failover")
	)
	flag.Parse()
	if err := run(*addr, *shards, *replicas, *minNodes, *heartbeat, *misses); err != nil {
		log.Fatalf("pd2cluster: %v", err)
	}
}

func run(addr string, shards, replicas, minNodes int, heartbeat time.Duration, misses int) error {
	coord, err := cluster.NewCoordinator(cluster.CoordinatorOptions{
		Shards:          shards,
		Replicas:        replicas,
		MinNodes:        minNodes,
		HeartbeatMisses: misses,
	})
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           coord.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		errc <- httpSrv.ListenAndServe()
	}()
	coord.Start(heartbeat)
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)

	log.Printf("pd2cluster listening on %s: %d shard(s), %d replica(s), placing at %d node(s)",
		addr, shards, replicas, minNodes)
	select {
	case err := <-errc:
		return fmt.Errorf("listen on %s: %w", addr, err)
	case sig := <-sigc:
		log.Printf("received %s; shutting down", sig)
	}
	coord.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if serveErr := <-errc; !errors.Is(serveErr, http.ErrServerClosed) {
		log.Printf("serve loop: %v", serveErr)
	}
	log.Printf("clean shutdown")
	return nil
}
