package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// writeTree lays out a temp module from a map of relative path -> body.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, body := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

const tmpGoMod = "module tmpmod\n\ngo 1.22\n"

// dirtyGo seeds one floatcmp violation (float equality).
const dirtyGo = `package dirty

func Eq(a, b float64) bool { return a == b }
`

// cleanGo has no findings under any check.
const cleanGo = `package clean

func Add(a, b int) int { return a + b }
`

// brokenGo does not type-check.
const brokenGo = `package broken

var x int = "not an int"
`

// staleGo carries a //lint:allow that suppresses nothing.
const staleGo = `package stale

//lint:allow floatcmp nothing to suppress here
func Add(a, b int) int { return a + b }
`

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestExitCleanIsZero(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":        tmpGoMod,
		"clean/a.go":    cleanGo,
		"clean/unused":  "",
		"clean/.hidden": "",
	})
	code, stdout, stderr := runCLI(t, filepath.Join(root, "clean"))
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
}

func TestExitDiagnosticsIsOne(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":     tmpGoMod,
		"dirty/a.go": dirtyGo,
	})
	code, stdout, _ := runCLI(t, filepath.Join(root, "dirty"))
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout: %s", code, stdout)
	}
	if !strings.Contains(stdout, "floatcmp") {
		t.Fatalf("stdout missing floatcmp diagnostic:\n%s", stdout)
	}
}

func TestExitLoadErrorIsTwo(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":      tmpGoMod,
		"broken/a.go": brokenGo,
	})
	code, _, stderr := runCLI(t, filepath.Join(root, "broken"))
	if code != 2 {
		t.Fatalf("exit %d, want 2\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "type-checking") {
		t.Fatalf("stderr missing load error:\n%s", stderr)
	}
}

// TestDiagnosticsBeatLoadErrors is the exit-code contract: a load error
// in one directory must not mask diagnostics collected from another —
// exit 1 wins over exit 2 when both occur.
func TestDiagnosticsBeatLoadErrors(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":      tmpGoMod,
		"dirty/a.go":  dirtyGo,
		"broken/a.go": brokenGo,
	})
	code, stdout, stderr := runCLI(t,
		filepath.Join(root, "dirty"), filepath.Join(root, "broken"))
	if code != 1 {
		t.Fatalf("exit %d, want 1 (diagnostics win)\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "floatcmp") {
		t.Fatalf("diagnostics lost:\n%s", stdout)
	}
	if !strings.Contains(stderr, "type-checking") {
		t.Fatalf("load error not reported on stderr:\n%s", stderr)
	}
}

func TestStrictSuppressFlagsStaleDirective(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":     tmpGoMod,
		"stale/a.go": staleGo,
	})
	dir := filepath.Join(root, "stale")
	// Without the flag the stale directive is tolerated.
	code, stdout, _ := runCLI(t, dir)
	if code != 0 {
		t.Fatalf("exit %d without -strict-suppress, want 0\n%s", code, stdout)
	}
	// With it, the dead directive is itself a diagnostic.
	code, stdout, _ = runCLI(t, "-strict-suppress", dir)
	if code != 1 {
		t.Fatalf("exit %d with -strict-suppress, want 1\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "[suppress]") || !strings.Contains(stdout, "stale suppression") {
		t.Fatalf("missing stale-suppression diagnostic:\n%s", stdout)
	}
}

func TestJSONOutput(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":     tmpGoMod,
		"dirty/a.go": dirtyGo,
	})
	code, stdout, _ := runCLI(t, "-json", filepath.Join(root, "dirty"))
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stdout, `"check": "floatcmp"`) {
		t.Fatalf("JSON output missing check field:\n%s", stdout)
	}
}

// TestSARIFOutput decodes the -sarif log and checks the slice of the
// schema consumers depend on: version, driver name, a rules entry per
// selected check, and one result per diagnostic with a forward-slash
// URI and a 1-based region.
func TestSARIFOutput(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":     tmpGoMod,
		"dirty/a.go": dirtyGo,
	})
	code, stdout, _ := runCLI(t, "-sarif", filepath.Join(root, "dirty"))
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Message   struct{ Text string }
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(stdout), &log); err != nil {
		t.Fatalf("decoding SARIF: %v\n%s", err, stdout)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version %q, %d runs; want 2.1.0 with 1 run", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "pd2lint" {
		t.Errorf("driver name %q", run.Tool.Driver.Name)
	}
	if got, want := len(run.Tool.Driver.Rules), len(analysis.All()); got != want {
		t.Errorf("%d rules, want %d (one per check)", got, want)
	}
	if len(run.Results) == 0 {
		t.Fatal("no results for a dirty package")
	}
	r := run.Results[0]
	if r.RuleID != "floatcmp" || r.Level != "error" {
		t.Errorf("result rule=%q level=%q, want floatcmp/error", r.RuleID, r.Level)
	}
	if len(r.Locations) != 1 {
		t.Fatalf("%d locations, want 1", len(r.Locations))
	}
	loc := r.Locations[0].PhysicalLocation
	if strings.Contains(loc.ArtifactLocation.URI, "\\") {
		t.Errorf("URI %q not forward-slash", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine < 1 || loc.Region.StartColumn < 1 {
		t.Errorf("region %+v not 1-based", loc.Region)
	}
}

// TestSARIFCleanRun: a clean run still emits a complete, decodable log
// with an empty results array — the code-scanning upload contract.
func TestSARIFCleanRun(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":     tmpGoMod,
		"clean/a.go": cleanGo,
	})
	code, stdout, _ := runCLI(t, "-sarif", filepath.Join(root, "clean"))
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	if !strings.Contains(stdout, `"results": []`) {
		t.Fatalf("clean SARIF log missing empty results array:\n%s", stdout)
	}
}

func TestJSONAndSARIFExclusive(t *testing.T) {
	if code, _, stderr := runCLI(t, "-json", "-sarif", "."); code != 2 || !strings.Contains(stderr, "mutually exclusive") {
		t.Fatalf("exit %d, stderr %q; want 2 with mutually-exclusive error", code, stderr)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCLI(t); code != 2 {
		t.Fatalf("no args: exit %d, want 2", code)
	}
	if code, _, _ := runCLI(t, "-checks", "nonexistent", "."); code != 2 {
		t.Fatalf("unknown check: exit %d, want 2", code)
	}
	if code, _, _ := runCLI(t, "internal/..."); code != 2 {
		t.Fatalf("unsupported pattern: exit %d, want 2", code)
	}
}

func TestListChecks(t *testing.T) {
	code, stdout, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("-list: exit %d, want 0", code)
	}
	for _, name := range []string{"fracexact", "poolescape", "heapkey", "gocapture", "eventexhaust"} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout)
		}
	}
}
