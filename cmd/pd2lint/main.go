// Command pd2lint runs the repository's invariant checks: a stdlib-only
// static-analysis suite that keeps the PD² simulator on exact rational
// arithmetic, a deterministic, replayable schedule, and a sound pooled
// wire path — thirteen checks across AST, dataflow, call-graph, and
// CFG flow-sensitive layers (see docs/LINT.md for the full rationale
// and the suppression syntax).
//
// Usage:
//
//	pd2lint ./...                  # lint the whole module (scoped checks)
//	pd2lint internal/core          # lint one directory (all checks apply)
//	pd2lint -checks errdrop ./...  # run a subset of the checks
//	pd2lint -json ./...            # machine-readable diagnostics
//	pd2lint -sarif ./...           # SARIF 2.1.0 (code-scanning upload format)
//	pd2lint -strict-suppress ./... # also flag stale //lint:allow comments
//	pd2lint -list                  # describe the available checks
//
// With the ./... pattern each check is applied to the packages it is
// scoped to (fracexact to the exact-arithmetic packages, determinism to
// the simulator, and so on). When explicit directories are named, every
// selected check runs on them regardless of scope — that is how seeded
// violations and the testdata fixtures are exercised. The loader is
// anchored at the first explicit directory, so pd2lint can be pointed
// at another module's packages from outside that module.
//
// Exit status: 0 when clean, 1 when diagnostics were reported, 2 on
// usage or load errors. A load error in one directory does not abort
// the run: the remaining directories are still linted, and diagnostics
// win — exit 1 beats exit 2 when both occur, so CI never mistakes
// "broken and dirty" for merely "broken".
package main

//lint:file-allow errdrop CLI boundary: diagnostics print to caller-supplied writers (terminal or test buffers); a failed report write has no further channel to report on

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses argv, lints, writes
// reports to stdout and errors to stderr, and returns the exit status.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pd2lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	sarifOut := fs.Bool("sarif", false, "emit diagnostics as a SARIF 2.1.0 log")
	checkList := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := fs.Bool("list", false, "list the available checks and exit")
	strict := fs.Bool("strict-suppress", false, "report //lint:allow directives that suppress nothing")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: pd2lint [-json|-sarif] [-checks list] [-strict-suppress] [-list] ./... | dir...\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(stderr, "pd2lint: -json and -sarif are mutually exclusive")
		return 2
	}

	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	checks, err := analysis.ByName(*checkList)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	args := fs.Args()
	if len(args) == 0 {
		fs.Usage()
		return 2
	}

	// Anchor the loader at the first explicit directory so explicit-dir
	// invocations work from outside the target module; ./... always
	// means the module enclosing the working directory.
	anchor := "."
	for _, arg := range args {
		if !strings.HasSuffix(arg, "...") {
			anchor = arg
			break
		}
	}
	loader, err := analysis.NewLoader(anchor)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	dirs, ignoreScope, err := resolvePatterns(loader, args)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	// Load every directory, collecting — not aborting on — load errors,
	// so diagnostics already found elsewhere are never masked.
	var pkgs []*analysis.Package
	var loadErrs []error
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			loadErrs = append(loadErrs, err)
			continue
		}
		pkgs = append(pkgs, pkg)
	}

	diags := analysis.RunChecksOpts(pkgs, checks, analysis.RunOptions{
		IgnoreScope:   ignoreScope,
		StaleSuppress: *strict,
	})
	for i := range diags {
		diags[i].File = relPath(loader.ModRoot, diags[i].File)
	}
	switch {
	case *jsonOut:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	case *sarifOut:
		if err := writeSARIF(stdout, checks, diags); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(stderr, "pd2lint: %d issue(s) in %d package(s)\n", len(diags), len(pkgs))
		}
	}
	for _, err := range loadErrs {
		fmt.Fprintln(stderr, err)
	}
	switch {
	case len(diags) > 0:
		return 1 // diagnostics win: exit 1 beats exit 2
	case len(loadErrs) > 0:
		return 2
	}
	return 0
}

// resolvePatterns expands the command-line package patterns. A trailing
// /... walks the module; explicit directories disable scope filtering
// so every selected check applies to them.
func resolvePatterns(loader *analysis.Loader, args []string) (dirs []string, ignoreScope bool, err error) {
	seen := make(map[string]bool)
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	explicit := false
	for _, arg := range args {
		if arg == "./..." || arg == "..." || strings.HasSuffix(arg, "/...") {
			base := strings.TrimSuffix(strings.TrimSuffix(arg, "..."), "/")
			if base == "" || base == "." {
				all, err := loader.ModuleDirs()
				if err != nil {
					return nil, false, err
				}
				for _, d := range all {
					add(d)
				}
				continue
			}
			return nil, false, fmt.Errorf("pd2lint: only ./... and explicit directories are supported, not %q", arg)
		}
		explicit = true
		abs, err := filepath.Abs(arg)
		if err != nil {
			return nil, false, err
		}
		st, err := os.Stat(abs)
		if err != nil || !st.IsDir() {
			return nil, false, fmt.Errorf("pd2lint: %s is not a directory", arg)
		}
		add(abs)
	}
	return dirs, explicit, nil
}

// relPath shortens file names to be module-relative when possible.
func relPath(root, file string) string {
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return file
}
