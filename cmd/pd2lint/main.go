// Command pd2lint runs the repository's invariant checks: a stdlib-only
// static-analysis suite that keeps the PD² simulator on exact rational
// arithmetic and a deterministic, replayable schedule (see docs/LINT.md
// for the full rationale and the suppression syntax).
//
// Usage:
//
//	pd2lint ./...                  # lint the whole module (scoped checks)
//	pd2lint internal/core          # lint one directory (all checks apply)
//	pd2lint -checks errdrop ./...  # run a subset of the checks
//	pd2lint -json ./...            # machine-readable diagnostics
//	pd2lint -list                  # describe the available checks
//
// With the ./... pattern each check is applied to the packages it is
// scoped to (fracexact to the exact-arithmetic packages, determinism to
// the simulator, and so on). When explicit directories are named, every
// selected check runs on them regardless of scope — that is how seeded
// violations and the testdata fixtures are exercised.
//
// Exit status: 0 when clean, 1 when diagnostics were reported, 2 on
// usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	checkList := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := flag.Bool("list", false, "list the available checks and exit")
	flag.Usage = usage
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	checks, err := analysis.ByName(*checkList)
	if err != nil {
		fatal(err)
	}
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fatal(err)
	}
	dirs, ignoreScope, err := resolvePatterns(loader, args)
	if err != nil {
		fatal(err)
	}
	var pkgs []*analysis.Package
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fatal(err)
		}
		pkgs = append(pkgs, pkg)
	}

	diags := analysis.RunChecks(pkgs, checks, ignoreScope)
	for i := range diags {
		diags[i].File = relPath(loader.ModRoot, diags[i].File)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(os.Stderr, "pd2lint: %d issue(s) in %d package(s)\n", len(diags), len(pkgs))
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// resolvePatterns expands the command-line package patterns. A trailing
// /... walks the module; explicit directories disable scope filtering
// so every selected check applies to them.
func resolvePatterns(loader *analysis.Loader, args []string) (dirs []string, ignoreScope bool, err error) {
	seen := make(map[string]bool)
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	explicit := false
	for _, arg := range args {
		if arg == "./..." || arg == "..." || strings.HasSuffix(arg, "/...") {
			base := strings.TrimSuffix(strings.TrimSuffix(arg, "..."), "/")
			if base == "" || base == "." {
				all, err := loader.ModuleDirs()
				if err != nil {
					return nil, false, err
				}
				for _, d := range all {
					add(d)
				}
				continue
			}
			return nil, false, fmt.Errorf("pd2lint: only ./... and explicit directories are supported, not %q", arg)
		}
		explicit = true
		abs, err := filepath.Abs(arg)
		if err != nil {
			return nil, false, err
		}
		st, err := os.Stat(abs)
		if err != nil || !st.IsDir() {
			return nil, false, fmt.Errorf("pd2lint: %s is not a directory", arg)
		}
		add(abs)
	}
	return dirs, explicit, nil
}

// relPath shortens file names to be module-relative when possible.
func relPath(root, file string) string {
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return file
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: pd2lint [-json] [-checks list] [-list] ./... | dir...\n")
	flag.PrintDefaults()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
