package main

// SARIF 2.1.0 output: the interchange format GitHub code scanning and
// most editor lint panels ingest. Only the slice of the (large) SARIF
// schema pd2lint actually populates is modeled here; the field names
// and nesting follow the OASIS spec so the output validates against
// https://json.schemastore.org/sarif-2.1.0.json.

import (
	"encoding/json"
	"io"
	"path/filepath"

	"repro/internal/analysis"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name string `json:"name"`
	// InformationURI must be an absolute URI per the spec, so it is
	// omitted rather than pointed at the in-repo docs/LINT.md.
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// writeSARIF renders the diagnostics as one SARIF run. The rules array
// describes every check that was selected — not only the ones that
// fired — so a consumer can distinguish "ran clean" from "did not run".
// Stale-suppression findings (check "suppress") are not a selectable
// analyzer; their rule is appended on demand.
func writeSARIF(w io.Writer, checks []*analysis.Analyzer, diags []analysis.Diagnostic) error {
	rules := make([]sarifRule, 0, len(checks)+1)
	index := make(map[string]int, len(checks)+1)
	for _, a := range checks {
		index[a.Name] = len(rules)
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		idx, ok := index[d.Check]
		if !ok {
			idx = len(rules)
			index[d.Check] = idx
			rules = append(rules, sarifRule{ID: d.Check,
				ShortDescription: sarifText{Text: "a //lint:allow directive that suppressed nothing"}})
		}
		results = append(results, sarifResult{
			RuleID:    d.Check,
			RuleIndex: idx,
			Level:     "error",
			Message:   sarifText{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(d.File)},
				Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
			}}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:  "pd2lint",
				Rules: rules,
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
