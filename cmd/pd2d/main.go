// Command pd2d serves PD² engine shards over HTTP: joins, leaves, and
// reweights are admitted against property (W), batched per slot, and
// applied atomically at slot boundaries (see internal/serve and
// docs/SERVE.md). The daemon owns everything the deterministic serve
// layer must not touch: the listener, the wall-clock ticker that
// advances shards in real time, signal handling, and snapshot files.
//
// On SIGTERM/SIGINT it shuts the HTTP side down, drains every shard
// mailbox, and (with -snapshot-dir) writes one snapshot per shard; a
// restart with the same -snapshot-dir restores them, verifying each
// engine digest.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/frac"
	"repro/internal/serve"
)

// clusterConfig carries the optional multi-node mode: when Coordinator
// is set, the daemon wraps its serve layer in a cluster.Node, registers
// with the coordinator, and routes/replicates per the routing table.
type clusterConfig struct {
	ID          string
	Coordinator string
	Advertise   string
	AntiEntropy time.Duration
}

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8377", "listen address")
		shards       = flag.Int("shards", 8, "number of engine shards")
		m            = flag.Int("m", 4, "processors per shard")
		policy       = flag.String("policy", "oi", "reweighting policy: oi, lj, hybrid")
		oiThreshold  = flag.String("oi-threshold", "1/8", "hybrid only: |to-from| below this uses rules O/I (exact rational)")
		earlyRelease = flag.Bool("early-release", false, "enable the ERfair early-release extension")
		recordSched  = flag.Bool("record-schedule", false, "record per-slot schedules (needed for byte-exact state dumps; unbounded memory)")
		driftBound   = flag.String("drift-bound", "0", "anomaly threshold for per-task |drift| (exact rational; 0 disables the excursion counter)")
		tick         = flag.Duration("tick", 0, "advance every shard one slot per tick (0 disables; slots then advance only on request)")
		mailbox      = flag.Int("mailbox", 256, "mailbox capacity per shard")
		retryAfter   = flag.Int("retry-after", 1, "Retry-After seconds advertised on 429")
		snapshotDir  = flag.String("snapshot-dir", "", "directory for shard snapshots (empty disables persistence)")

		clusterCoord = flag.String("cluster-coordinator", "", "coordinator base URL; enables cluster mode (routing, replication, migration)")
		clusterID    = flag.String("cluster-id", "", "cluster mode: this node's unique name (defaults to the listen address)")
		clusterAdv   = flag.String("cluster-advertise", "", "cluster mode: base URL peers reach this node at (defaults to http://<addr>)")
		antiEntropy  = flag.Duration("cluster-anti-entropy", 500*time.Millisecond, "cluster mode: follower catch-up push interval")
	)
	flag.Parse()
	cc := clusterConfig{
		ID:          *clusterID,
		Coordinator: *clusterCoord,
		Advertise:   *clusterAdv,
		AntiEntropy: *antiEntropy,
	}
	if cc.Coordinator != "" {
		if cc.ID == "" {
			cc.ID = *addr
		}
		if cc.Advertise == "" {
			cc.Advertise = "http://" + *addr
		}
	}
	if err := run(*addr, *shards, *m, *policy, *oiThreshold, *driftBound, *earlyRelease, *recordSched,
		*tick, *mailbox, *retryAfter, *snapshotDir, cc); err != nil {
		log.Fatalf("pd2d: %v", err)
	}
}

func run(addr string, shards, m int, policy, oiThreshold, driftBound string, earlyRelease, recordSched bool,
	tick time.Duration, mailbox, retryAfter int, snapshotDir string, cc clusterConfig) error {
	th, err := frac.Parse(oiThreshold)
	if err != nil {
		return fmt.Errorf("-oi-threshold: %w", err)
	}
	db, err := frac.Parse(driftBound)
	if err != nil {
		return fmt.Errorf("-drift-bound: %w", err)
	}
	if db.Sign() < 0 {
		return fmt.Errorf("-drift-bound: must be >= 0, got %s", db)
	}
	opts := serve.Options{
		Shards: shards,
		Config: serve.ShardConfig{
			M:              m,
			Policy:         policy,
			OIThreshold:    th,
			EarlyRelease:   earlyRelease,
			RecordSchedule: recordSched,
			DriftBound:     db,
		},
		MailboxCap:        mailbox,
		RetryAfterSeconds: retryAfter,
	}
	if snapshotDir != "" {
		snaps, err := loadSnapshots(snapshotDir)
		if err != nil {
			return err
		}
		if len(snaps) > 0 {
			log.Printf("restoring %d shard(s) from %s", len(snaps), snapshotDir)
		}
		opts.Snapshots = snaps
	}
	srv, err := serve.New(opts)
	if err != nil {
		return err
	}
	srv.Start()

	// Cluster mode wraps the serve handler in the node middleware:
	// routing, synchronous replication, and the migration protocol.
	var node *cluster.Node
	handler := srv.Handler()
	if cc.Coordinator != "" {
		cs := serve.NewClusterStats(srv.NumShards())
		srv.AttachClusterStats(cs)
		node, err = cluster.NewNode(cluster.NodeOptions{
			ID:     cc.ID,
			Base:   cc.Advertise,
			Server: srv,
			Stats:  cs,
		})
		if err != nil {
			return err
		}
		handler = node.Handler()
	}

	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Wall-clock slot ticker. serve itself never reads a clock; real time
	// enters the system only here. Ticks are delivered non-blocking, so a
	// shard busy with a long advance coalesces them instead of queueing.
	// In cluster mode only primary shards tick, and each advance is
	// replicated so followers track the clock.
	var ticker *time.Ticker
	tickDone := make(chan struct{})
	if tick > 0 {
		ticker = time.NewTicker(tick)
		go func() {
			defer close(tickDone)
			for range ticker.C {
				if node != nil {
					node.TickPrimaries(1)
					continue
				}
				for i := 0; i < srv.NumShards(); i++ {
					select {
					case srv.ShardTick(i) <- struct{}{}:
					default:
					}
				}
			}
		}()
	} else {
		close(tickDone)
	}

	errc := make(chan error, 1)
	go func() {
		errc <- httpSrv.ListenAndServe()
	}()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)

	if node != nil {
		// Register once the listener answers, retrying while the
		// coordinator comes up; then start the anti-entropy pushes.
		go func() {
			client := &http.Client{Timeout: 2 * time.Second}
			if err := cluster.WaitHealthy(client, cc.Advertise, 10*time.Second); err != nil {
				log.Printf("cluster: %v", err)
			}
			for attempt := 0; attempt < 40; attempt++ {
				if err := node.Register(cc.Coordinator); err == nil {
					log.Printf("cluster: registered as %s with %s", cc.ID, cc.Coordinator)
					return
				} else if attempt == 39 {
					log.Printf("cluster: giving up on registration: %v", err)
				}
				time.Sleep(250 * time.Millisecond)
			}
		}()
		node.Start(cc.AntiEntropy)
	}

	log.Printf("pd2d listening on %s: %d shard(s), M=%d, policy=%s, tick=%s", addr, shards, m, policy, tick)
	select {
	case err := <-errc:
		return fmt.Errorf("listen on %s: %w", addr, err)
	case sig := <-sigc:
		log.Printf("received %s; draining", sig)
	}

	// Orderly teardown: quiesce HTTP first so nothing submits to the
	// mailboxes, stop the ticker, then drain and stop the shards.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if serveErr := <-errc; !errors.Is(serveErr, http.ErrServerClosed) {
		log.Printf("serve loop: %v", serveErr)
	}
	if ticker != nil {
		ticker.Stop()
	}
	if node != nil {
		node.Stop()
	}
	srv.Stop()

	if snapshotDir != "" {
		if err := writeSnapshots(snapshotDir, srv.Snapshots()); err != nil {
			return fmt.Errorf("writing snapshots: %w", err)
		}
		log.Printf("snapshotted %d shard(s) to %s", srv.NumShards(), snapshotDir)
	}
	log.Printf("clean shutdown")
	return nil
}

// snapshotPath names shard i's snapshot file.
func snapshotPath(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%d.json", shard))
}

// loadSnapshots reads every shard-*.json in dir. A missing directory or
// an empty one means a fresh start.
func loadSnapshots(dir string) ([]*serve.Snapshot, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "shard-*.json"))
	if err != nil {
		return nil, err
	}
	var snaps []*serve.Snapshot
	for _, path := range matches {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var snap serve.Snapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			return nil, fmt.Errorf("decoding %s: %w", path, err)
		}
		snaps = append(snaps, &snap)
	}
	return snaps, nil
}

// writeSnapshots persists one file per shard, via a temp file + rename
// so a crash mid-write never leaves a truncated snapshot behind.
func writeSnapshots(dir string, snaps []*serve.Snapshot) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, snap := range snaps {
		data, err := json.MarshalIndent(snap, "", " ")
		if err != nil {
			return err
		}
		path := snapshotPath(dir, snap.Shard)
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, data, 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, path); err != nil {
			return err
		}
	}
	return nil
}
