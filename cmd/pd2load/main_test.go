package main

import (
	"fmt"
	"net"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/stats"
)

// TestSplitBudget pins the remainder distribution: the parts always sum
// to the request total and never differ by more than one.
func TestSplitBudget(t *testing.T) {
	cases := []struct{ requests, workers int }{
		{0, 1}, {0, 8}, {1, 1}, {1, 8}, {5, 8}, {8, 5},
		{100, 7}, {4000, 3}, {50000, 8}, {50001, 8},
	}
	for _, tc := range cases {
		parts := splitBudget(tc.requests, tc.workers)
		if len(parts) != tc.workers {
			t.Fatalf("split(%d,%d): %d parts", tc.requests, tc.workers, len(parts))
		}
		sum, lo, hi := 0, parts[0], parts[0]
		for _, p := range parts {
			sum += p
			if p < lo {
				lo = p
			}
			if p > hi {
				hi = p
			}
		}
		if sum != tc.requests {
			t.Errorf("split(%d,%d) sums to %d, dropping %d commands",
				tc.requests, tc.workers, sum, tc.requests-sum)
		}
		if hi-lo > 1 {
			t.Errorf("split(%d,%d) is uneven: min %d, max %d", tc.requests, tc.workers, lo, hi)
		}
	}
}

// TestBackoffDelay pins the retry schedule: exponential from 1ms,
// floored at the Retry-After hint, capped at maxBackoff, jitter <= 25%.
func TestBackoffDelay(t *testing.T) {
	rng := stats.NewStream(1, 0)
	for attempt := 0; attempt < 12; attempt++ {
		base := time.Millisecond << attempt
		if attempt > 10 {
			base = time.Millisecond << 10
		}
		if base > maxBackoff {
			base = maxBackoff
		}
		d := backoffDelay(attempt, 0, rng)
		if d < base || d > base+base/4 {
			t.Errorf("attempt %d: delay %v outside [%v, %v]", attempt, d, base, base+base/4)
		}
	}
	// A Retry-After hint floors the delay but stays capped.
	if d := backoffDelay(0, 5*time.Millisecond, rng); d < 5*time.Millisecond || d > 5*time.Millisecond*5/4 {
		t.Errorf("hinted delay %v outside [5ms, 6.25ms]", d)
	}
	if d := backoffDelay(0, 3*time.Second, rng); d < maxBackoff || d > maxBackoff*5/4 {
		t.Errorf("capped delay %v outside [%v, %v]", d, maxBackoff, maxBackoff*5/4)
	}
	// Determinism: the same (seed, worker) stream yields the same schedule.
	a, b := stats.NewStream(7, 3), stats.NewStream(7, 3)
	for attempt := 0; attempt < 8; attempt++ {
		if da, db := backoffDelay(attempt, 0, a), backoffDelay(attempt, 0, b); da != db {
			t.Fatalf("attempt %d: %v != %v from identical streams", attempt, da, db)
		}
	}
}

// serveResponse writes a canned HTTP response to whoever connects, for
// exercising pconn framing without a real server.
func serveResponse(t *testing.T, raw string) *pconn {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		c.Write([]byte(raw))
		c.Close()
	}()
	pc := &pconn{addr: ln.Addr().String(), host: "test"}
	if err := pc.ensure(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pc.close)
	return pc
}

func TestReadRespContentLength(t *testing.T) {
	pc := serveResponse(t, "HTTP/1.1 429 Too Many Requests\r\nRetry-After: 3\r\nContent-Length: 2\r\n\r\n{}")
	resp, err := pc.readResp()
	if err != nil {
		t.Fatal(err)
	}
	if resp.status != 429 || resp.retryAfter != 3*time.Second || string(resp.body) != "{}" {
		t.Fatalf("got status=%d retryAfter=%v body=%q", resp.status, resp.retryAfter, resp.body)
	}
}

func TestReadRespChunked(t *testing.T) {
	pc := serveResponse(t, "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"+
		"5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n")
	resp, err := pc.readResp()
	if err != nil {
		t.Fatal(err)
	}
	if resp.status != 200 || string(resp.body) != "hello world" {
		t.Fatalf("got status=%d body=%q", resp.status, resp.body)
	}
}

func TestReadRespConnectionClose(t *testing.T) {
	pc := serveResponse(t, "HTTP/1.1 413 Payload Too Large\r\nConnection: close\r\nContent-Length: 4\r\n\r\nbody")
	resp, err := pc.readResp()
	if err != nil {
		t.Fatal(err)
	}
	if resp.status != 413 || string(resp.body) != "body" {
		t.Fatalf("got status=%d body=%q", resp.status, resp.body)
	}
	if pc.c != nil {
		t.Fatal("connection not closed after Connection: close")
	}
}

// TestExactDeliveryEndToEnd runs the full generator against an
// in-process pd2d and checks the -requests budget is delivered exactly,
// including when workers do not divide requests and when some workers
// get no budget at all.
func TestExactDeliveryEndToEnd(t *testing.T) {
	srv, err := serve.New(serve.Options{Shards: 4, Config: serve.ShardConfig{M: 2}})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Stop()
	}()

	cases := []struct{ requests, workers, batch, pipeline int }{
		{1003, 7, 8, 4}, // 1003 = 7*143 + 2: two workers carry one extra
		{37, 5, 8, 2},   // budget smaller than a worker's first window
		{5, 8, 3, 1},    // more workers than requests: some sit idle
	}
	for i, tc := range cases {
		prefix := fmt.Sprintf("E%d", i)
		tot, err := run(config{
			base: ts.URL, shards: 4, workers: tc.workers, requests: tc.requests,
			batch: tc.batch, tasks: 4, advEvery: 16, pipeline: tc.pipeline,
			seed: 1, prefix: prefix,
		})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if tot.sent != int64(tc.requests) {
			t.Errorf("case %d: delivered %d commands, want exactly %d", i, tot.sent, tc.requests)
		}
		if tot.rejected != 0 || tot.serverErrors != 0 || tot.transportErrs != 0 {
			t.Errorf("case %d: not clean: %+v", i, tot)
		}
	}
}

// TestStatsLine pins the end-of-run summary formats so -strict audits
// and the smoke scripts can grep them.
func TestStatsLine(t *testing.T) {
	tot := workerStats{
		sent: 1200, posts: 150, retries: 3, rejected: 40,
		serverErrors: 1, transportErrs: 2, backoff: 250 * time.Millisecond,
	}
	got := statsLine(tot, 2*time.Second)
	want := "pd2load: 1200 commands in 2.00s = 600 commands/s (150 posts, 3 retries, 40 rejected, 1 5xx, 2 transport errors, 0.250s backoff)"
	if got != want {
		t.Errorf("statsLine:\n got %q\nwant %q", got, want)
	}
	rep := auditReport{deferredJoinPeak: 5, rejectSpikes: 7, driftExcursions: 2, backpressureSpikes: 1}
	got = anomalyLine(tot, rep)
	want = "pd2load: anomalies: 3 429s, 0.250s backoff, max deferred-join depth 5, reject spikes 7, drift excursions 2, backpressure spikes 1"
	if got != want {
		t.Errorf("anomalyLine:\n got %q\nwant %q", got, want)
	}
	// Zero elapsed must not divide by zero.
	if got := statsLine(workerStats{}, 0); got == "" {
		t.Error("empty stats line")
	}
}

// startTestDaemon brings up an in-process serve instance for end-to-end
// runs.
func startTestDaemon(t *testing.T, shards, m int) string {
	t.Helper()
	srv, err := serve.New(serve.Options{Shards: shards, Config: serve.ShardConfig{M: m}})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Stop()
	})
	return ts.URL
}

// TestTemplateRunsEndToEnd drives each pathological template through
// the full generator against an in-process daemon. Every run must
// finish (rejected commands count against the budget) and the
// rejection-expecting templates must actually provoke rejections.
func TestTemplateRunsEndToEnd(t *testing.T) {
	for _, tc := range []struct {
		template     string
		wantRejected bool
	}{
		{"reweight-storm", false},
		{"join-leave-churn", false}, // tolerated, but a clean run is the norm
		{"admission-camp", true},
		{"heavy-flood", true},
	} {
		t.Run(tc.template, func(t *testing.T) {
			base := startTestDaemon(t, 2, 2)
			tot, err := run(config{
				base: base, shards: 2, workers: 2, requests: 400,
				batch: 8, tasks: 4, advEvery: 8, pipeline: 2,
				seed: 1, prefix: "T", template: tc.template,
			})
			if err != nil {
				t.Fatal(err)
			}
			if tot.sent+tot.rejected < 400 {
				t.Errorf("delivered %d+%d commands, want >= 400", tot.sent, tot.rejected)
			}
			if tc.wantRejected && tot.rejected == 0 {
				t.Errorf("%s drew no rejections", tc.template)
			}
			if tot.serverErrors != 0 || tot.transportErrs != 0 {
				t.Errorf("unhealthy run: %+v", tot)
			}
		})
	}
}

// TestShapeRunEndToEnd drives a phase-modulated shape, including an
// idle phase, through the full generator.
func TestShapeRunEndToEnd(t *testing.T) {
	base := startTestDaemon(t, 2, 2)
	tot, err := run(config{
		base: base, shards: 2, workers: 2, requests: 300,
		batch: 8, tasks: 4, advEvery: 8, pipeline: 2,
		seed: 1, prefix: "S", shape: "idle=2:0:1:0,busy=4:1.5:4:0.2",
	})
	if err != nil {
		t.Fatal(err)
	}
	if tot.sent+tot.rejected < 300 {
		t.Errorf("delivered %d+%d commands, want >= 300", tot.sent, tot.rejected)
	}
	if tot.serverErrors != 0 || tot.transportErrs != 0 {
		t.Errorf("unhealthy run: %+v", tot)
	}
}

// TestRecordReplayThroughCLI runs generate→record against one daemon
// and replay against a fresh one, end to end through run().
func TestRecordReplayThroughCLI(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "run.trace")
	base := startTestDaemon(t, 2, 2)
	if _, err := run(config{
		base: base, shards: 2, workers: 2, requests: 200,
		batch: 8, tasks: 4, advEvery: 8, pipeline: 2,
		seed: 1, prefix: "R", record: tracePath,
	}); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(tracePath); err != nil || fi.Size() == 0 {
		t.Fatalf("trace not recorded: %v", err)
	}
	fresh := startTestDaemon(t, 2, 2)
	if _, err := run(config{base: fresh, replay: tracePath}); err != nil {
		t.Fatalf("replay: %v", err)
	}
}

// TestModeFlagValidation pins the mutual exclusions.
func TestModeFlagValidation(t *testing.T) {
	if _, err := run(config{
		base: "http://127.0.0.1:1", shards: 1, workers: 1, requests: 1, batch: 1,
		tasks: 1, pipeline: 1, shape: "diurnal", template: "reweight-storm",
	}); err == nil {
		t.Error("-shape with -template accepted")
	}
	if _, err := run(config{base: "http://127.0.0.1:1", replay: "/nonexistent/x.trace"}); err == nil {
		t.Error("replay of a missing file succeeded")
	}
	if _, err := run(config{
		base: "http://127.0.0.1:1", shards: 1, workers: 1, requests: 1, batch: 1,
		tasks: 1, pipeline: 1, shape: "idle=4:0:1:0",
	}); err == nil {
		t.Error("an all-idle shape should be rejected up front")
	}
}
