package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
	"repro/internal/stats"
)

// TestSplitBudget pins the remainder distribution: the parts always sum
// to the request total and never differ by more than one.
func TestSplitBudget(t *testing.T) {
	cases := []struct{ requests, workers int }{
		{0, 1}, {0, 8}, {1, 1}, {1, 8}, {5, 8}, {8, 5},
		{100, 7}, {4000, 3}, {50000, 8}, {50001, 8},
	}
	for _, tc := range cases {
		parts := splitBudget(tc.requests, tc.workers)
		if len(parts) != tc.workers {
			t.Fatalf("split(%d,%d): %d parts", tc.requests, tc.workers, len(parts))
		}
		sum, lo, hi := 0, parts[0], parts[0]
		for _, p := range parts {
			sum += p
			if p < lo {
				lo = p
			}
			if p > hi {
				hi = p
			}
		}
		if sum != tc.requests {
			t.Errorf("split(%d,%d) sums to %d, dropping %d commands",
				tc.requests, tc.workers, sum, tc.requests-sum)
		}
		if hi-lo > 1 {
			t.Errorf("split(%d,%d) is uneven: min %d, max %d", tc.requests, tc.workers, lo, hi)
		}
	}
}

// TestBackoffDelay pins the retry schedule: exponential from 1ms,
// floored at the Retry-After hint, capped at maxBackoff, jitter <= 25%.
func TestBackoffDelay(t *testing.T) {
	rng := stats.NewStream(1, 0)
	for attempt := 0; attempt < 12; attempt++ {
		base := time.Millisecond << attempt
		if attempt > 10 {
			base = time.Millisecond << 10
		}
		if base > maxBackoff {
			base = maxBackoff
		}
		d := backoffDelay(attempt, 0, rng)
		if d < base || d > base+base/4 {
			t.Errorf("attempt %d: delay %v outside [%v, %v]", attempt, d, base, base+base/4)
		}
	}
	// A Retry-After hint floors the delay but stays capped.
	if d := backoffDelay(0, 5*time.Millisecond, rng); d < 5*time.Millisecond || d > 5*time.Millisecond*5/4 {
		t.Errorf("hinted delay %v outside [5ms, 6.25ms]", d)
	}
	if d := backoffDelay(0, 3*time.Second, rng); d < maxBackoff || d > maxBackoff*5/4 {
		t.Errorf("capped delay %v outside [%v, %v]", d, maxBackoff, maxBackoff*5/4)
	}
	// Determinism: the same (seed, worker) stream yields the same schedule.
	a, b := stats.NewStream(7, 3), stats.NewStream(7, 3)
	for attempt := 0; attempt < 8; attempt++ {
		if da, db := backoffDelay(attempt, 0, a), backoffDelay(attempt, 0, b); da != db {
			t.Fatalf("attempt %d: %v != %v from identical streams", attempt, da, db)
		}
	}
}

// TestRouterResolveRefresh pins the routing-table cache: waitReady
// blocks for the first table, resolve maps a shard to its primary's
// base, noteVersion refetches only when a response advertises a newer
// version, and a stale advertisement can never roll the table back.
func TestRouterResolveRefresh(t *testing.T) {
	var mu sync.Mutex
	version := int64(1)
	base := "http://a1.test"
	fetches := 0
	coord := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/cluster/route" {
			http.NotFound(w, r)
			return
		}
		mu.Lock()
		defer mu.Unlock()
		fetches++
		_ = json.NewEncoder(w).Encode(routeTable{
			Version: version,
			Shards:  []routeShard{{Shard: 0, Primary: "a"}},
			Nodes:   map[string]string{"a": base},
		})
	}))
	defer coord.Close()

	rt := newRouter(coord.URL, coord.Client())
	if err := rt.waitReady(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got, err := rt.resolve(0); err != nil || got != "http://a1.test" {
		t.Fatalf("resolve(0) = %q, %v", got, err)
	}
	if _, err := rt.resolve(7); err == nil {
		t.Error("resolve outside the table succeeded")
	}
	mu.Lock()
	before := fetches
	mu.Unlock()
	rt.noteVersion(1) // matches the cache: no refetch
	mu.Lock()
	after := fetches
	version, base = 2, "http://a2.test"
	mu.Unlock()
	if after != before {
		t.Errorf("noteVersion(same) refetched: %d -> %d", before, after)
	}
	rt.noteVersion(2) // newer: refetch and adopt
	if got, err := rt.resolve(0); err != nil || got != "http://a2.test" {
		t.Fatalf("after refresh resolve(0) = %q, %v", got, err)
	}
	mu.Lock()
	version, base = 1, "http://a1.test" // coordinator "rolls back"
	mu.Unlock()
	rt.noteVersion(1) // older: ignored
	_ = rt.refresh()  // even an explicit refresh keeps the newer table
	if got, _ := rt.resolve(0); got != "http://a2.test" {
		t.Errorf("stale table rolled the cache back to %q", got)
	}
}

// TestNoteReroute pins the consecutive-redirect cap: the default is
// maxReroutes, any non-redirect response resets the streak.
func TestNoteReroute(t *testing.T) {
	g := &genState{}
	for i := 0; i < maxReroutes; i++ {
		if g.noteReroute() {
			t.Fatalf("cap fired after %d reroutes, want %d tolerated", i+1, maxReroutes)
		}
	}
	if !g.noteReroute() {
		t.Fatalf("cap did not fire after %d consecutive reroutes", maxReroutes+1)
	}
	g.reroutes = 0 // what drive does on any non-307 response
	if g.noteReroute() {
		t.Error("streak did not reset")
	}
	g2 := &genState{rerouteCap: 2}
	if g2.noteReroute() || g2.noteReroute() {
		t.Fatal("lowered cap fired early")
	}
	if !g2.noteReroute() {
		t.Error("lowered cap never fired")
	}
}

// TestDriveFollowsReroute points a worker at a server that answers 307
// with a Location on the real daemon: the batch must be requeued
// through the backoff path, the connection retargeted, and every
// command still delivered exactly once. With a router attached, the
// redirect must also refresh the cached table.
func TestDriveFollowsReroute(t *testing.T) {
	daemon := startTestDaemon(t, 1, 2)
	client := &http.Client{Timeout: 5 * time.Second}
	if err := setup(client, fixedResolver(daemon), "RR", 1, 4); err != nil {
		t.Fatal(err)
	}
	var redirects int32
	old := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&redirects, 1)
		w.Header().Set("Location", daemon+r.URL.RequestURI())
		w.WriteHeader(http.StatusTemporaryRedirect)
	}))
	defer old.Close()

	// Coordinator: the first table (v1) points at the stale server, every
	// fetch after it at the daemon — exactly what a live migration does.
	var mu sync.Mutex
	served := 0
	coord := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		served++
		tab := routeTable{Version: 1, Shards: []routeShard{{Shard: 0, Primary: "n"}},
			Nodes: map[string]string{"n": old.URL}}
		if served > 1 {
			tab.Version, tab.Nodes = 2, map[string]string{"n": daemon}
		}
		_ = json.NewEncoder(w).Encode(tab)
	}))
	defer coord.Close()
	rt := newRouter(coord.URL, coord.Client())
	if err := rt.waitReady(2 * time.Second); err != nil {
		t.Fatal(err)
	}

	addr, host, err := parseBase(old.URL)
	if err != nil {
		t.Fatal(err)
	}
	pc := &pconn{addr: addr, host: host}
	defer pc.close()
	g := &genState{kind: genUniform, prefix: "RR", shards: 1, tasks: 4,
		rng: stats.NewStream(1, 0), rt: rt}
	st := g.drive(pc, 32, 8, 0, 2)
	if st.sent != 32 || st.transportErrs != 0 || st.serverErrors != 0 {
		t.Fatalf("rerouted run not clean: %+v", st)
	}
	if n := atomic.LoadInt32(&redirects); n < 1 {
		t.Error("stale server saw no requests")
	}
	if st.retries < 1 {
		t.Errorf("307s drew no retries, got %d", st.retries)
	}
	if got, _ := rt.resolve(0); got != daemon {
		t.Errorf("redirect did not refresh the table: resolve(0) = %q", got)
	}
}

// TestDriveRerouteCap aims a worker at a redirect loop: it must give up
// with a transport error after the cap instead of spinning forever.
func TestDriveRerouteCap(t *testing.T) {
	var self *httptest.Server
	self = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Location", self.URL+r.URL.RequestURI())
		w.WriteHeader(http.StatusTemporaryRedirect)
	}))
	defer self.Close()
	addr, host, err := parseBase(self.URL)
	if err != nil {
		t.Fatal(err)
	}
	pc := &pconn{addr: addr, host: host}
	defer pc.close()
	g := &genState{kind: genUniform, prefix: "RC", shards: 1, tasks: 4,
		rng: stats.NewStream(1, 0), rerouteCap: 3}
	st := g.drive(pc, 8, 8, 0, 1)
	if st.transportErrs != 1 {
		t.Fatalf("redirect loop did not fail the worker: %+v", st)
	}
	if st.sent != 0 {
		t.Errorf("redirect loop claimed %d sent commands", st.sent)
	}
	if st.retries != 3 || g.reroutes != 4 {
		t.Errorf("got %d retries, %d reroutes; want 3 retried + the 4th tripping the cap", st.retries, g.reroutes)
	}
}

// serveResponse writes a canned HTTP response to whoever connects, for
// exercising pconn framing without a real server.
func serveResponse(t *testing.T, raw string) *pconn {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		c.Write([]byte(raw))
		c.Close()
	}()
	pc := &pconn{addr: ln.Addr().String(), host: "test"}
	if err := pc.ensure(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pc.close)
	return pc
}

func TestReadRespContentLength(t *testing.T) {
	pc := serveResponse(t, "HTTP/1.1 429 Too Many Requests\r\nRetry-After: 3\r\nContent-Length: 2\r\n\r\n{}")
	resp, err := pc.readResp()
	if err != nil {
		t.Fatal(err)
	}
	if resp.status != 429 || resp.retryAfter != 3*time.Second || string(resp.body) != "{}" {
		t.Fatalf("got status=%d retryAfter=%v body=%q", resp.status, resp.retryAfter, resp.body)
	}
}

func TestReadRespChunked(t *testing.T) {
	pc := serveResponse(t, "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"+
		"5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n")
	resp, err := pc.readResp()
	if err != nil {
		t.Fatal(err)
	}
	if resp.status != 200 || string(resp.body) != "hello world" {
		t.Fatalf("got status=%d body=%q", resp.status, resp.body)
	}
}

func TestReadRespConnectionClose(t *testing.T) {
	pc := serveResponse(t, "HTTP/1.1 413 Payload Too Large\r\nConnection: close\r\nContent-Length: 4\r\n\r\nbody")
	resp, err := pc.readResp()
	if err != nil {
		t.Fatal(err)
	}
	if resp.status != 413 || string(resp.body) != "body" {
		t.Fatalf("got status=%d body=%q", resp.status, resp.body)
	}
	if pc.c != nil {
		t.Fatal("connection not closed after Connection: close")
	}
}

// TestExactDeliveryEndToEnd runs the full generator against an
// in-process pd2d and checks the -requests budget is delivered exactly,
// including when workers do not divide requests and when some workers
// get no budget at all.
func TestExactDeliveryEndToEnd(t *testing.T) {
	srv, err := serve.New(serve.Options{Shards: 4, Config: serve.ShardConfig{M: 2}})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Stop()
	}()

	cases := []struct{ requests, workers, batch, pipeline int }{
		{1003, 7, 8, 4}, // 1003 = 7*143 + 2: two workers carry one extra
		{37, 5, 8, 2},   // budget smaller than a worker's first window
		{5, 8, 3, 1},    // more workers than requests: some sit idle
	}
	for i, tc := range cases {
		prefix := fmt.Sprintf("E%d", i)
		tot, err := run(config{
			base: ts.URL, shards: 4, workers: tc.workers, requests: tc.requests,
			batch: tc.batch, tasks: 4, advEvery: 16, pipeline: tc.pipeline,
			seed: 1, prefix: prefix,
		})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if tot.sent != int64(tc.requests) {
			t.Errorf("case %d: delivered %d commands, want exactly %d", i, tot.sent, tc.requests)
		}
		if tot.rejected != 0 || tot.serverErrors != 0 || tot.transportErrs != 0 {
			t.Errorf("case %d: not clean: %+v", i, tot)
		}
	}
}

// TestStatsLine pins the end-of-run summary formats so -strict audits
// and the smoke scripts can grep them.
func TestStatsLine(t *testing.T) {
	tot := workerStats{
		sent: 1200, posts: 150, retries: 3, rejected: 40,
		serverErrors: 1, transportErrs: 2, backoff: 250 * time.Millisecond,
	}
	got := statsLine(tot, 2*time.Second)
	want := "pd2load: 1200 commands in 2.00s = 600 commands/s (150 posts, 3 retries, 40 rejected, 1 5xx, 2 transport errors, 0.250s backoff)"
	if got != want {
		t.Errorf("statsLine:\n got %q\nwant %q", got, want)
	}
	rep := auditReport{deferredJoinPeak: 5, rejectSpikes: 7, driftExcursions: 2, backpressureSpikes: 1}
	got = anomalyLine(tot, rep)
	want = "pd2load: anomalies: 3 429s, 0.250s backoff, max deferred-join depth 5, reject spikes 7, drift excursions 2, backpressure spikes 1"
	if got != want {
		t.Errorf("anomalyLine:\n got %q\nwant %q", got, want)
	}
	// Zero elapsed must not divide by zero.
	if got := statsLine(workerStats{}, 0); got == "" {
		t.Error("empty stats line")
	}
}

// startTestDaemon brings up an in-process serve instance for end-to-end
// runs.
func startTestDaemon(t *testing.T, shards, m int) string {
	t.Helper()
	srv, err := serve.New(serve.Options{Shards: shards, Config: serve.ShardConfig{M: m}})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Stop()
	})
	return ts.URL
}

// TestTemplateRunsEndToEnd drives each pathological template through
// the full generator against an in-process daemon. Every run must
// finish (rejected commands count against the budget) and the
// rejection-expecting templates must actually provoke rejections.
func TestTemplateRunsEndToEnd(t *testing.T) {
	for _, tc := range []struct {
		template     string
		wantRejected bool
	}{
		{"reweight-storm", false},
		{"join-leave-churn", false}, // tolerated, but a clean run is the norm
		{"admission-camp", true},
		{"heavy-flood", true},
	} {
		t.Run(tc.template, func(t *testing.T) {
			base := startTestDaemon(t, 2, 2)
			tot, err := run(config{
				base: base, shards: 2, workers: 2, requests: 400,
				batch: 8, tasks: 4, advEvery: 8, pipeline: 2,
				seed: 1, prefix: "T", template: tc.template,
			})
			if err != nil {
				t.Fatal(err)
			}
			if tot.sent+tot.rejected < 400 {
				t.Errorf("delivered %d+%d commands, want >= 400", tot.sent, tot.rejected)
			}
			if tc.wantRejected && tot.rejected == 0 {
				t.Errorf("%s drew no rejections", tc.template)
			}
			if tot.serverErrors != 0 || tot.transportErrs != 0 {
				t.Errorf("unhealthy run: %+v", tot)
			}
		})
	}
}

// TestShapeRunEndToEnd drives a phase-modulated shape, including an
// idle phase, through the full generator.
func TestShapeRunEndToEnd(t *testing.T) {
	base := startTestDaemon(t, 2, 2)
	tot, err := run(config{
		base: base, shards: 2, workers: 2, requests: 300,
		batch: 8, tasks: 4, advEvery: 8, pipeline: 2,
		seed: 1, prefix: "S", shape: "idle=2:0:1:0,busy=4:1.5:4:0.2",
	})
	if err != nil {
		t.Fatal(err)
	}
	if tot.sent+tot.rejected < 300 {
		t.Errorf("delivered %d+%d commands, want >= 300", tot.sent, tot.rejected)
	}
	if tot.serverErrors != 0 || tot.transportErrs != 0 {
		t.Errorf("unhealthy run: %+v", tot)
	}
}

// TestRecordReplayThroughCLI runs generate→record against one daemon
// and replay against a fresh one, end to end through run().
func TestRecordReplayThroughCLI(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "run.trace")
	base := startTestDaemon(t, 2, 2)
	if _, err := run(config{
		base: base, shards: 2, workers: 2, requests: 200,
		batch: 8, tasks: 4, advEvery: 8, pipeline: 2,
		seed: 1, prefix: "R", record: tracePath,
	}); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(tracePath); err != nil || fi.Size() == 0 {
		t.Fatalf("trace not recorded: %v", err)
	}
	fresh := startTestDaemon(t, 2, 2)
	if _, err := run(config{base: fresh, replay: tracePath}); err != nil {
		t.Fatalf("replay: %v", err)
	}
}

// TestVerifyDigests drives a load, then checks -verify replays every
// shard's log to a matching digest.
func TestVerifyDigests(t *testing.T) {
	base := startTestDaemon(t, 2, 2)
	if _, err := run(config{
		base: base, shards: 2, workers: 2, requests: 100,
		batch: 8, tasks: 4, advEvery: 8, pipeline: 2, seed: 1, prefix: "V",
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := run(config{base: base, shards: 2, verify: true}); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

// hload lets an httptest server exist (so its URL is known) before the
// cluster node that handles its requests does.
type hload struct{ h http.Handler }

// startTestCluster brings up an in-process coordinator plus n cluster
// nodes, registers them, and returns the coordinator's base URL once
// the routing table is placed.
func startTestCluster(t *testing.T, n, shards int) string {
	t.Helper()
	coord, err := cluster.NewCoordinator(cluster.CoordinatorOptions{
		Shards: shards, Replicas: 1, MinNodes: n,
	})
	if err != nil {
		t.Fatal(err)
	}
	tsC := httptest.NewServer(coord.Handler())
	t.Cleanup(func() {
		tsC.Close()
		coord.Stop()
	})
	for i := 0; i < n; i++ {
		srv, err := serve.New(serve.Options{Shards: shards, Config: serve.ShardConfig{M: 2}})
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()
		var h atomic.Value
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			v := h.Load()
			if v == nil {
				http.Error(w, "starting", http.StatusServiceUnavailable)
				return
			}
			v.(hload).h.ServeHTTP(w, r)
		}))
		cs := serve.NewClusterStats(shards)
		srv.AttachClusterStats(cs)
		node, err := cluster.NewNode(cluster.NodeOptions{
			ID: fmt.Sprintf("n%d", i), Base: ts.URL, Server: srv, Stats: cs,
		})
		if err != nil {
			t.Fatal(err)
		}
		h.Store(hload{node.Handler()})
		node.Start(50 * time.Millisecond)
		if err := node.Register(tsC.URL); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			node.Stop()
			ts.Close()
			srv.Stop()
		})
	}
	if coord.Table() == nil {
		t.Fatal("coordinator placed no table after all nodes registered")
	}
	return tsC.URL
}

// TestRouteModeEndToEnd runs the full generator in -route mode against
// an in-process cluster (two nodes, every shard replicated), then
// verifies each shard's digest through the router. Exercises resolver
// setup, synchronous replication on the ack path, and the routed
// drain/audit helpers.
func TestRouteModeEndToEnd(t *testing.T) {
	coordURL := startTestCluster(t, 2, 2)
	tot, err := run(config{
		route: coordURL, shards: 2, workers: 2, requests: 200,
		batch: 8, tasks: 4, advEvery: 8, pipeline: 2, seed: 1, prefix: "CL",
	})
	if err != nil {
		t.Fatal(err)
	}
	if tot.sent != 200 {
		t.Errorf("delivered %d commands, want exactly 200", tot.sent)
	}
	if tot.rejected != 0 || tot.serverErrors != 0 || tot.transportErrs != 0 {
		t.Errorf("routed run not clean: %+v", tot)
	}
	if _, err := run(config{route: coordURL, shards: 2, verify: true}); err != nil {
		t.Fatalf("routed verify: %v", err)
	}
}

// TestModeFlagValidation pins the mutual exclusions.
func TestModeFlagValidation(t *testing.T) {
	if _, err := run(config{
		base: "http://127.0.0.1:1", shards: 1, workers: 1, requests: 1, batch: 1,
		tasks: 1, pipeline: 1, shape: "diurnal", template: "reweight-storm",
	}); err == nil {
		t.Error("-shape with -template accepted")
	}
	if _, err := run(config{base: "http://127.0.0.1:1", replay: "/nonexistent/x.trace"}); err == nil {
		t.Error("replay of a missing file succeeded")
	}
	if _, err := run(config{route: "http://127.0.0.1:1", replay: "x.trace"}); err == nil {
		t.Error("-route with -replay accepted")
	}
	if _, err := run(config{route: "http://127.0.0.1:1", record: "x.trace"}); err == nil {
		t.Error("-route with -record accepted")
	}
	if _, err := run(config{
		base: "http://127.0.0.1:1", shards: 1, workers: 1, requests: 1, batch: 1,
		tasks: 1, pipeline: 1, shape: "idle=4:0:1:0",
	}); err == nil {
		t.Error("an all-idle shape should be rejected up front")
	}
}
