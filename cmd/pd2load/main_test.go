package main

import (
	"fmt"
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/stats"
)

// TestSplitBudget pins the remainder distribution: the parts always sum
// to the request total and never differ by more than one.
func TestSplitBudget(t *testing.T) {
	cases := []struct{ requests, workers int }{
		{0, 1}, {0, 8}, {1, 1}, {1, 8}, {5, 8}, {8, 5},
		{100, 7}, {4000, 3}, {50000, 8}, {50001, 8},
	}
	for _, tc := range cases {
		parts := splitBudget(tc.requests, tc.workers)
		if len(parts) != tc.workers {
			t.Fatalf("split(%d,%d): %d parts", tc.requests, tc.workers, len(parts))
		}
		sum, lo, hi := 0, parts[0], parts[0]
		for _, p := range parts {
			sum += p
			if p < lo {
				lo = p
			}
			if p > hi {
				hi = p
			}
		}
		if sum != tc.requests {
			t.Errorf("split(%d,%d) sums to %d, dropping %d commands",
				tc.requests, tc.workers, sum, tc.requests-sum)
		}
		if hi-lo > 1 {
			t.Errorf("split(%d,%d) is uneven: min %d, max %d", tc.requests, tc.workers, lo, hi)
		}
	}
}

// TestBackoffDelay pins the retry schedule: exponential from 1ms,
// floored at the Retry-After hint, capped at maxBackoff, jitter <= 25%.
func TestBackoffDelay(t *testing.T) {
	rng := stats.NewStream(1, 0)
	for attempt := 0; attempt < 12; attempt++ {
		base := time.Millisecond << attempt
		if attempt > 10 {
			base = time.Millisecond << 10
		}
		if base > maxBackoff {
			base = maxBackoff
		}
		d := backoffDelay(attempt, 0, rng)
		if d < base || d > base+base/4 {
			t.Errorf("attempt %d: delay %v outside [%v, %v]", attempt, d, base, base+base/4)
		}
	}
	// A Retry-After hint floors the delay but stays capped.
	if d := backoffDelay(0, 5*time.Millisecond, rng); d < 5*time.Millisecond || d > 5*time.Millisecond*5/4 {
		t.Errorf("hinted delay %v outside [5ms, 6.25ms]", d)
	}
	if d := backoffDelay(0, 3*time.Second, rng); d < maxBackoff || d > maxBackoff*5/4 {
		t.Errorf("capped delay %v outside [%v, %v]", d, maxBackoff, maxBackoff*5/4)
	}
	// Determinism: the same (seed, worker) stream yields the same schedule.
	a, b := stats.NewStream(7, 3), stats.NewStream(7, 3)
	for attempt := 0; attempt < 8; attempt++ {
		if da, db := backoffDelay(attempt, 0, a), backoffDelay(attempt, 0, b); da != db {
			t.Fatalf("attempt %d: %v != %v from identical streams", attempt, da, db)
		}
	}
}

// serveResponse writes a canned HTTP response to whoever connects, for
// exercising pconn framing without a real server.
func serveResponse(t *testing.T, raw string) *pconn {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		c.Write([]byte(raw))
		c.Close()
	}()
	pc := &pconn{addr: ln.Addr().String(), host: "test"}
	if err := pc.ensure(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pc.close)
	return pc
}

func TestReadRespContentLength(t *testing.T) {
	pc := serveResponse(t, "HTTP/1.1 429 Too Many Requests\r\nRetry-After: 3\r\nContent-Length: 2\r\n\r\n{}")
	resp, err := pc.readResp()
	if err != nil {
		t.Fatal(err)
	}
	if resp.status != 429 || resp.retryAfter != 3*time.Second || string(resp.body) != "{}" {
		t.Fatalf("got status=%d retryAfter=%v body=%q", resp.status, resp.retryAfter, resp.body)
	}
}

func TestReadRespChunked(t *testing.T) {
	pc := serveResponse(t, "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"+
		"5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n")
	resp, err := pc.readResp()
	if err != nil {
		t.Fatal(err)
	}
	if resp.status != 200 || string(resp.body) != "hello world" {
		t.Fatalf("got status=%d body=%q", resp.status, resp.body)
	}
}

func TestReadRespConnectionClose(t *testing.T) {
	pc := serveResponse(t, "HTTP/1.1 413 Payload Too Large\r\nConnection: close\r\nContent-Length: 4\r\n\r\nbody")
	resp, err := pc.readResp()
	if err != nil {
		t.Fatal(err)
	}
	if resp.status != 413 || string(resp.body) != "body" {
		t.Fatalf("got status=%d body=%q", resp.status, resp.body)
	}
	if pc.c != nil {
		t.Fatal("connection not closed after Connection: close")
	}
}

// TestExactDeliveryEndToEnd runs the full generator against an
// in-process pd2d and checks the -requests budget is delivered exactly,
// including when workers do not divide requests and when some workers
// get no budget at all.
func TestExactDeliveryEndToEnd(t *testing.T) {
	srv, err := serve.New(serve.Options{Shards: 4, Config: serve.ShardConfig{M: 2}})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Stop()
	}()

	cases := []struct{ requests, workers, batch, pipeline int }{
		{1003, 7, 8, 4}, // 1003 = 7*143 + 2: two workers carry one extra
		{37, 5, 8, 2},   // budget smaller than a worker's first window
		{5, 8, 3, 1},    // more workers than requests: some sit idle
	}
	for i, tc := range cases {
		prefix := fmt.Sprintf("E%d", i)
		tot, err := run(ts.URL, 4, tc.workers, tc.requests, tc.batch, 4, 16, tc.pipeline, 1, prefix, false)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if tot.sent != int64(tc.requests) {
			t.Errorf("case %d: delivered %d commands, want exactly %d", i, tot.sent, tc.requests)
		}
		if tot.rejected != 0 || tot.serverErrors != 0 || tot.transportErrs != 0 {
			t.Errorf("case %d: not clean: %+v", i, tot)
		}
	}
}
