// Cluster routing for pd2load: a cached copy of the coordinator's
// versioned routing table (mirrored locally so the generator keeps
// sharing no code with the system under test), per-shard primary
// resolution for the pipelined workers and the plain-client helpers,
// and the -verify differential check that replays every shard's full
// log and compares digests.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/serve"
	"repro/internal/stats"
)

// routeShard and routeTable mirror the coordinator's wire format
// (internal/cluster.ShardRoute / RouteTable).
type routeShard struct {
	Shard   int    `json:"shard"`
	Primary string `json:"primary"`
}

type routeTable struct {
	Version int64             `json:"version"`
	Shards  []routeShard      `json:"shards"`
	Nodes   map[string]string `json:"nodes"`
}

// maxReroutes caps consecutive 307s without a successful response: a
// redirect loop (or a table that never converges) fails the worker with
// a transport error instead of spinning forever.
const maxReroutes = 32

// resolver maps a shard to the base URL its requests should target.
type resolver func(shard int) (string, error)

// fixedResolver targets every shard at one daemon — the single-node
// default.
func fixedResolver(base string) resolver {
	return func(int) (string, error) { return base, nil }
}

// router caches the coordinator's routing table and answers per-shard
// primary lookups. Refreshes are triggered by 307 responses and by
// X-PD2-Route-Version mismatches; the newest version always wins, so
// concurrent refreshes and stale advertisements cannot roll it back.
type router struct {
	coord  string
	client *http.Client
	mu     sync.Mutex
	tab    routeTable
}

func newRouter(coord string, client *http.Client) *router {
	return &router{coord: coord, client: client}
}

// refresh fetches the coordinator's current table and keeps it if newer
// than the cached one.
func (rt *router) refresh() error {
	resp, err := rt.client.Get(rt.coord + "/v1/cluster/route")
	if err != nil {
		return err
	}
	body, rerr := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil && rerr == nil {
		rerr = cerr
	}
	if rerr != nil {
		return rerr
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("route fetch: %d: %s", resp.StatusCode, body)
	}
	var tab routeTable
	if err := json.Unmarshal(body, &tab); err != nil {
		return fmt.Errorf("route fetch: %w", err)
	}
	rt.mu.Lock()
	if tab.Version > rt.tab.Version {
		rt.tab = tab
	}
	rt.mu.Unlock()
	return nil
}

// waitReady polls until the coordinator publishes a table (the initial
// placement is deferred until enough nodes register).
func (rt *router) waitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		err := rt.refresh()
		if err == nil && rt.version() > 0 {
			return nil
		}
		if time.Now().After(deadline) {
			if err == nil {
				err = fmt.Errorf("coordinator has not published a routing table")
			}
			return fmt.Errorf("waiting for routing table: %w", err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func (rt *router) version() int64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.tab.Version
}

// resolve returns the base URL of the shard's current primary.
func (rt *router) resolve(shard int) (string, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.tab.Version == 0 {
		return "", fmt.Errorf("no routing table cached")
	}
	if shard < 0 || shard >= len(rt.tab.Shards) {
		return "", fmt.Errorf("shard %d not in routing table (%d shards)", shard, len(rt.tab.Shards))
	}
	primary := rt.tab.Shards[shard].Primary
	base := rt.tab.Nodes[primary]
	if base == "" {
		return "", fmt.Errorf("shard %d primary %q has no advertised base", shard, primary)
	}
	return base, nil
}

// noteVersion refreshes the table when a response advertises a newer
// version than the cached one. Older advertisements (a node that has
// not caught up yet) are ignored.
func (rt *router) noteVersion(v int64) {
	rt.mu.Lock()
	stale := v > rt.tab.Version
	rt.mu.Unlock()
	if stale {
		_ = rt.refresh() // best effort; the next 307 retries it
	}
}

// retarget points the pconn at a new base URL (scheme://host; any path
// is ignored), closing the current connection so the next ensure()
// redials. A no-op when the target is unchanged.
func (p *pconn) retarget(rawURL string) error {
	addr, host, err := parseBase(rawURL)
	if err != nil {
		return err
	}
	if addr == p.addr && host == p.host {
		return nil
	}
	p.close()
	p.addr, p.host = addr, host
	return nil
}

// postShard posts v to shard s's op endpoint through the resolver,
// retrying backpressure (429) and transient cluster unavailability
// (503 while a table propagates, a migration gate drains, or a
// follower ack is outstanding) a bounded number of times on the usual
// backoff schedule. Any other status returns immediately.
func postShard(client *http.Client, resolve resolver, s int, op string, v any) (int, []byte, error) {
	rng := stats.NewStream(0, uint64(s))
	var code int
	var body []byte
	for attempt := 0; ; attempt++ {
		base, err := resolve(s)
		if err != nil {
			return 0, nil, err
		}
		code, body, err = post(client, fmt.Sprintf("%s/v1/shards/%d/%s", base, s, op), v)
		if err != nil {
			return 0, nil, err
		}
		if (code != http.StatusTooManyRequests && code != http.StatusServiceUnavailable) || attempt >= 16 {
			return code, body, nil
		}
		time.Sleep(backoffDelay(attempt, 0, rng))
	}
}

// runVerify fetches every shard's complete command log and replays it
// on a fresh engine (serve.VerifyTail): the differential check that a
// shard's live state — wherever routing placed it — is exactly
// core.Replay of its log. Prints one MATCH/MISMATCH line per shard.
func runVerify(cfg config) error {
	client := &http.Client{Timeout: 60 * time.Second}
	resolve := fixedResolver(cfg.base)
	if cfg.route != "" {
		rt := newRouter(cfg.route, client)
		//lint:allow detflow the clock only paces the table poll; the replayed commands all come from the fetched tail
		if err := rt.waitReady(10 * time.Second); err != nil {
			return err
		}
		resolve = rt.resolve
	}
	bad := 0
	for s := 0; s < cfg.shards; s++ {
		base, err := resolve(s)
		if err != nil {
			return fmt.Errorf("shard %d: %w", s, err)
		}
		resp, err := client.Get(fmt.Sprintf("%s/v1/shards/%d/log?from=0", base, s))
		if err != nil {
			return fmt.Errorf("shard %d log: %w", s, err)
		}
		body, rerr := io.ReadAll(resp.Body)
		if cerr := resp.Body.Close(); cerr != nil && rerr == nil {
			rerr = cerr
		}
		if rerr != nil {
			return fmt.Errorf("shard %d log: %w", s, rerr)
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("shard %d log: %d: %s", s, resp.StatusCode, body)
		}
		var tl serve.Tail
		if err := json.Unmarshal(body, &tl); err != nil {
			return fmt.Errorf("shard %d log: %w", s, err)
		}
		digest, err := serve.VerifyTail(&tl)
		if err != nil {
			return fmt.Errorf("shard %d replay: %w", s, err)
		}
		verdict := "MATCH"
		if digest != tl.Digest {
			verdict = "MISMATCH"
			bad++
		}
		fmt.Printf("pd2load: verify shard %d: %d commands over %d slots, digest %016x vs replayed %016x: %s\n",
			s, len(tl.Commands), tl.Now, tl.Digest, digest, verdict)
	}
	if bad > 0 {
		return fmt.Errorf("%d shard(s) failed digest verification", bad)
	}
	fmt.Printf("pd2load: verified %d shard(s): every digest matches a fresh replay\n", cfg.shards)
	return nil
}
