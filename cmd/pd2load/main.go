// Command pd2load is a closed-loop load generator for pd2d. It joins a
// population of tasks on every shard, then drives a stream of reweight
// commands (batched per request, optionally interleaved with advances)
// from N workers. Each worker owns one persistent TCP connection and
// keeps up to -pipeline requests in flight on it (HTTP/1.1 pipelining:
// pd2d frames every hot-path response with an explicit Content-Length,
// so responses are read back in order without chunked parsing).
// Backpressure (429) is honoured by retrying after a capped exponential
// backoff floored at the server's Retry-After hint — backpressured
// commands are retried, never dropped.
//
// The total -requests budget is split across workers with the remainder
// distributed one-per-worker, so exactly -requests commands are
// delivered for any (requests, workers) pair.
//
// With -strict it exits non-zero unless the run was admission-clean:
// no property-(W) rejections, no engine invariant violations, no failed
// applies, no server errors — the serve-smoke CI gate.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"sync"
	"time"

	"repro/internal/stats"
)

type workerStats struct {
	sent          int64         // commands queued by the server
	posts         int64         // HTTP requests issued (excluding retries)
	retries       int64         // 429 retry attempts
	rejected      int64         // per-command rejections (409/404/400)
	serverErrors  int64         // 5xx responses
	transportErrs int64         // connection-level failures
	backoff       time.Duration // total time slept honouring backpressure
}

func main() {
	var (
		base     = flag.String("addr", "http://127.0.0.1:8377", "pd2d base URL")
		shards   = flag.Int("shards", 8, "number of shards to target")
		workers  = flag.Int("workers", 8, "concurrent closed-loop workers")
		requests = flag.Int("requests", 50000, "total commands to send across all workers")
		batch    = flag.Int("batch", 8, "commands per HTTP request")
		pipeline = flag.Int("pipeline", 4, "requests in flight per worker connection (1 = strict closed loop)")
		tasks    = flag.Int("tasks", 16, "tasks to join per shard during setup")
		advEvery = flag.Int("advance-every", 64, "per worker, advance the target shard one slot every N posts (0 never)")
		seed     = flag.Int64("seed", 1, "RNG seed for the weight stream")
		prefix   = flag.String("prefix", "L", "task-name prefix (shard names are never reusable; pick a fresh prefix when rerunning against a restored daemon)")
		strict   = flag.Bool("strict", false, "exit non-zero unless the run is admission-clean")
	)
	flag.Parse()
	if _, err := run(*base, *shards, *workers, *requests, *batch, *tasks, *advEvery, *pipeline, *seed, *prefix, *strict); err != nil {
		log.Fatalf("pd2load: %v", err)
	}
}

func run(base string, shards, workers, requests, batch, tasks, advEvery, pipeline int, seed int64, prefix string, strict bool) (workerStats, error) {
	var tot workerStats
	if shards < 1 || workers < 1 || batch < 1 || tasks < 1 {
		return tot, fmt.Errorf("shards, workers, batch, tasks must all be >= 1")
	}
	if pipeline < 1 || pipeline > 64 {
		// The client writes a full window before reading any response;
		// an unbounded window could deadlock against kernel socket
		// buffers once window bytes outgrow them.
		return tot, fmt.Errorf("pipeline must be in [1, 64]")
	}
	addr, host, err := parseBase(base)
	if err != nil {
		return tot, err
	}
	client := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        workers * 2,
			MaxIdleConnsPerHost: workers * 2,
		},
		Timeout: 30 * time.Second,
	}

	if err := setup(client, base, prefix, shards, tasks); err != nil {
		return tot, fmt.Errorf("setup: %w", err)
	}

	// Each worker owns a slice of the total command budget and a
	// distinct stats slot (the results[i] worker-pool idiom).
	budgets := splitBudget(requests, workers)
	st := make([]workerStats, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pc := &pconn{addr: addr, host: host}
			defer pc.close()
			st[w] = drive(pc, prefix, w, shards, budgets[w], batch, tasks, advEvery, pipeline, seed)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	for _, s := range st {
		tot.sent += s.sent
		tot.posts += s.posts
		tot.retries += s.retries
		tot.rejected += s.rejected
		tot.serverErrors += s.serverErrors
		tot.transportErrs += s.transportErrs
		tot.backoff += s.backoff
	}
	rate := float64(tot.sent) / elapsed.Seconds()
	fmt.Printf("pd2load: %d commands in %.2fs = %.0f commands/s (%d posts, %d retries, %d rejected, %d 5xx, %d transport errors, %.3fs backoff)\n",
		tot.sent, elapsed.Seconds(), rate, tot.posts, tot.retries, tot.rejected, tot.serverErrors, tot.transportErrs, tot.backoff.Seconds())

	// Flush: one final advance per shard applies any still-staged batch,
	// so the audit sees applied == accepted for an admission-clean run.
	for s := 0; s < shards; s++ {
		if code, body, err := post(client, fmt.Sprintf("%s/v1/shards/%d/advance", base, s), map[string]int{"slots": 1}); err != nil || code != http.StatusOK {
			return tot, fmt.Errorf("final advance shard %d: %d %s: %v", s, code, body, err)
		}
	}

	clean, err := audit(client, base, shards)
	if err != nil {
		return tot, fmt.Errorf("audit: %w", err)
	}
	if strict {
		ok := clean && tot.rejected == 0 && tot.serverErrors == 0 && tot.transportErrs == 0
		if !ok {
			fmt.Println("pd2load: STRICT FAIL")
			os.Exit(1)
		}
		fmt.Println("pd2load: strict checks passed (admission-clean, zero failed applies, zero violations)")
	}
	return tot, nil
}

// splitBudget divides requests across workers so the parts sum exactly
// to requests: the first requests%workers workers carry one extra.
func splitBudget(requests, workers int) []int {
	parts := make([]int, workers)
	per, extra := requests/workers, requests%workers
	for i := range parts {
		parts[i] = per
		if i < extra {
			parts[i]++
		}
	}
	return parts
}

// parseBase extracts the dial address and Host header from the base URL.
func parseBase(base string) (addr, host string, err error) {
	u, err := url.Parse(base)
	if err != nil {
		return "", "", fmt.Errorf("parsing -addr: %w", err)
	}
	if u.Scheme != "http" {
		return "", "", fmt.Errorf("pipelined client speaks plain http, got scheme %q", u.Scheme)
	}
	if u.Host == "" {
		return "", "", fmt.Errorf("-addr %q has no host", base)
	}
	addr = u.Host
	if u.Port() == "" {
		addr = net.JoinHostPort(u.Hostname(), "80")
	}
	return addr, u.Host, nil
}

const maxBackoff = 250 * time.Millisecond

// backoffDelay is the sleep before the attempt-th consecutive 429
// retry: exponential from 1ms, floored at the server's Retry-After
// hint, capped at maxBackoff, plus up to 25% jitter drawn from the
// worker's own RNG stream so runs stay reproducible per (seed, worker).
func backoffDelay(attempt int, hint time.Duration, rng *stats.RNG) time.Duration {
	if attempt > 10 {
		attempt = 10
	}
	d := time.Millisecond << attempt
	if hint > d {
		d = hint
	}
	if d > maxBackoff {
		d = maxBackoff
	}
	return d + time.Duration(rng.Bounded(int(d/4)+1))
}

// taskName is the canonical load-task name for (shard, index).
func taskName(prefix string, shard, i int) string { return fmt.Sprintf("%s%d_%d", prefix, shard, i) }

// command mirrors serve's wire command (kept local so the generator
// shares no code with the system under test).
type command struct {
	Op     string `json:"op"`
	Task   string `json:"task"`
	Weight string `json:"weight,omitempty"`
}

// setup joins the task population on every shard and advances one slot
// so the joins are applied before the load starts.
func setup(client *http.Client, base, prefix string, shards, tasks int) error {
	for s := 0; s < shards; s++ {
		cmds := make([]command, tasks)
		for i := range cmds {
			// 1/64 each: even 16 tasks later reweighted up to 1/32 total
			// only 1/2, far inside any M >= 1 — the load stays
			// admission-clean by construction.
			cmds[i] = command{Op: "join", Task: taskName(prefix, s, i), Weight: "1/64"}
		}
		code, body, err := post(client, fmt.Sprintf("%s/v1/shards/%d/commands", base, s), cmds)
		if err != nil {
			return err
		}
		if code != http.StatusOK {
			return fmt.Errorf("shard %d setup joins: %d: %s", s, code, body)
		}
		var results []struct {
			Status string `json:"status"`
			Reason string `json:"reason"`
		}
		if err := json.Unmarshal(body, &results); err != nil {
			return err
		}
		for i, r := range results {
			if r.Status != "queued" {
				return fmt.Errorf("shard %d setup join %d: %s (%s)", s, i, r.Status, r.Reason)
			}
		}
		if code, body, err = post(client, fmt.Sprintf("%s/v1/shards/%d/advance", base, s), map[string]int{"slots": 1}); err != nil || code != http.StatusOK {
			return fmt.Errorf("shard %d setup advance: %d %s: %v", s, code, body, err)
		}
	}
	return nil
}

// wireReq is one encoded request awaiting its response: the batch body
// and how many commands it carries (so retries keep the budget exact).
type wireReq struct {
	path string
	body []byte
	n    int
}

// queuedMarker counts accepted commands in a batch reply without a JSON
// decode. Safe here because the generator only sends reweights of its
// own alphanumeric task names, so the marker cannot appear inside a
// rejection reason.
var queuedMarker = []byte(`"status":"queued"`)

// drive is one worker's loop: keep up to `pipeline` batch requests in
// flight on one connection, read replies in order, retry 429s.
func drive(pc *pconn, prefix string, w, shards, budget, batch, tasks, advEvery, pipeline int, seed int64) workerStats {
	var st workerStats
	// One deterministic stats.RNG stream per worker: the command
	// sequence of a given (-seed, worker) pair is reproducible, and
	// Bounded keeps the per-command draw cost to a single multiply
	// (Lemire's nearly-divisionless mapping — see internal/stats).
	rng := stats.NewStream(uint64(seed), uint64(w))
	shard := w % shards
	cmdPaths := make([]string, shards)
	advPaths := make([]string, shards)
	for s := range cmdPaths {
		cmdPaths[s] = fmt.Sprintf("/v1/shards/%d/commands", s)
		advPaths[s] = fmt.Sprintf("/v1/shards/%d/advance", s)
	}
	window := make([]wireReq, 0, pipeline)
	var retryQ []wireReq
	var free [][]byte
	attempt := 0
	var advancesDone int64
	for st.sent < int64(budget) || len(retryQ) > 0 {
		// Assemble the window: queued retries first, then fresh batches
		// up to the part of the budget not already in flight or queued.
		window = window[:0]
		nr := len(retryQ)
		if nr > pipeline {
			nr = pipeline
		}
		window = append(window, retryQ[:nr]...)
		retryQ = retryQ[:copy(retryQ, retryQ[nr:])]
		pendingCmds := 0
		for _, it := range retryQ {
			pendingCmds += it.n
		}
		for _, it := range window {
			pendingCmds += it.n
		}
		for len(window) < pipeline {
			need := budget - int(st.sent) - pendingCmds
			if need <= 0 {
				break
			}
			n := batch
			if need < n {
				n = need
			}
			var body []byte
			if len(free) > 0 {
				body, free = free[len(free)-1], free[:len(free)-1]
			}
			body = appendBatch(body[:0], prefix, shard, n, tasks, rng)
			window = append(window, wireReq{path: cmdPaths[shard], body: body, n: n})
			pendingCmds += n
			st.posts++
			// Spread workers across shards over time so every shard
			// sees load even when workers < shards.
			if shards > 1 && st.posts%13 == 0 {
				shard = (shard + 1) % shards
			}
		}
		if len(window) == 0 {
			break
		}
		if err := pc.ensure(); err != nil {
			st.transportErrs++
			return st
		}
		for i := range window {
			if err := pc.writeReq(window[i].path, window[i].body); err != nil {
				st.transportErrs++
				return st
			}
		}
		if err := pc.flush(); err != nil {
			st.transportErrs++
			return st
		}
		var hint time.Duration
		got429 := false
		for i := range window {
			resp, err := pc.readResp()
			if err != nil {
				st.transportErrs++
				pc.close()
				return st
			}
			it := window[i]
			switch {
			case resp.status == http.StatusTooManyRequests:
				st.retries++
				got429 = true
				if resp.retryAfter > hint {
					hint = resp.retryAfter
				}
				retryQ = append(retryQ, it)
			case resp.status >= 500:
				st.serverErrors++
				free = append(free, it.body)
			case resp.status != http.StatusOK:
				st.rejected += int64(it.n)
				free = append(free, it.body)
			default:
				q := bytes.Count(resp.body, queuedMarker)
				st.sent += int64(q)
				st.rejected += int64(it.n - q)
				free = append(free, it.body)
			}
		}
		if got429 {
			d := backoffDelay(attempt, hint, rng)
			attempt++
			st.backoff += d
			time.Sleep(d)
		} else {
			attempt = 0
		}
		if advEvery > 0 {
			for due := st.posts / int64(advEvery); advancesDone < due; advancesDone++ {
				if err := pc.ensure(); err != nil {
					st.transportErrs++
					return st
				}
				if err := pc.writeReq(advPaths[shard], []byte(`{"slots":1}`)); err != nil {
					st.transportErrs++
					return st
				}
				if err := pc.flush(); err != nil {
					st.transportErrs++
					return st
				}
				resp, err := pc.readResp()
				if err != nil {
					st.transportErrs++
					pc.close()
					return st
				}
				if resp.status >= 500 {
					st.serverErrors++
				}
			}
		}
	}
	return st
}

// appendBatch encodes n reweight commands as a JSON array. Weights move
// between 1/64 and 1/32 — always within the admitted budget, so a 409
// under load is a server-side bug. Assumes an alphanumeric prefix (the
// names are embedded without JSON escaping).
func appendBatch(b []byte, prefix string, shard, n, tasks int, rng *stats.RNG) []byte {
	b = append(b, '[')
	for i := 0; i < n; i++ {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"op":"reweight","task":"`...)
		b = append(b, prefix...)
		b = strconv.AppendInt(b, int64(shard), 10)
		b = append(b, '_')
		b = strconv.AppendInt(b, int64(rng.Bounded(tasks)), 10)
		b = append(b, `","weight":"`...)
		b = strconv.AppendInt(b, int64(1+rng.Bounded(2)), 10)
		b = append(b, `/64"}`...)
	}
	return append(b, ']')
}

// pconn is a persistent HTTP/1.1 connection with request pipelining:
// write up to a window of requests, flush once, read the responses back
// in order. pd2d sends explicit Content-Length on the hot path; chunked
// framing is parsed as a fallback for other handlers.
type pconn struct {
	addr string
	host string
	c    net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	body []byte
}

type wireResp struct {
	status     int
	retryAfter time.Duration
	body       []byte // valid until the next readResp
}

func (p *pconn) ensure() error {
	if p.c != nil {
		return nil
	}
	c, err := net.DialTimeout("tcp", p.addr, 5*time.Second)
	if err != nil {
		return err
	}
	p.c = c
	if p.br == nil {
		p.br = bufio.NewReaderSize(c, 64<<10)
		p.bw = bufio.NewWriterSize(c, 64<<10)
	} else {
		p.br.Reset(c)
		p.bw.Reset(c)
	}
	return nil
}

func (p *pconn) close() {
	if p.c != nil {
		_ = p.c.Close() // best effort; the conn is being abandoned
		p.c = nil
	}
}

// writeReq buffers one request. bufio errors are sticky, so the
// intermediate write errors are dropped and flush reports them.
func (p *pconn) writeReq(path string, body []byte) error {
	_ = p.c.SetWriteDeadline(time.Now().Add(30 * time.Second))
	var tmp [20]byte
	_, _ = p.bw.WriteString("POST ")
	_, _ = p.bw.WriteString(path)
	_, _ = p.bw.WriteString(" HTTP/1.1\r\nHost: ")
	_, _ = p.bw.WriteString(p.host)
	_, _ = p.bw.WriteString("\r\nContent-Type: application/json\r\nContent-Length: ")
	_, _ = p.bw.Write(strconv.AppendInt(tmp[:0], int64(len(body)), 10))
	_, _ = p.bw.WriteString("\r\n\r\n")
	_, err := p.bw.Write(body)
	return err
}

func (p *pconn) flush() error { return p.bw.Flush() }

func (p *pconn) readResp() (wireResp, error) {
	var r wireResp
	_ = p.c.SetReadDeadline(time.Now().Add(30 * time.Second))
	line, err := p.readLine()
	if err != nil {
		return r, err
	}
	if len(line) < 12 || !bytes.HasPrefix(line, []byte("HTTP/1.")) {
		return r, fmt.Errorf("malformed status line %q", line)
	}
	status, ok := atoiBytes(line[9:12])
	if !ok {
		return r, fmt.Errorf("malformed status line %q", line)
	}
	r.status = status
	contentLen := -1
	chunked, closeAfter := false, false
	for {
		line, err = p.readLine()
		if err != nil {
			return r, err
		}
		if len(line) == 0 {
			break
		}
		colon := bytes.IndexByte(line, ':')
		if colon < 0 {
			continue
		}
		key, val := line[:colon], bytes.TrimSpace(line[colon+1:])
		switch {
		case headerIs(key, "content-length"):
			if n, ok := atoiBytes(val); ok {
				contentLen = n
			}
		case headerIs(key, "transfer-encoding"):
			chunked = headerIs(val, "chunked")
		case headerIs(key, "connection"):
			closeAfter = headerIs(val, "close")
		case headerIs(key, "retry-after"):
			if n, ok := atoiBytes(val); ok {
				r.retryAfter = time.Duration(n) * time.Second
			}
		}
	}
	p.body = p.body[:0]
	switch {
	case chunked:
		for {
			line, err = p.readLine()
			if err != nil {
				return r, err
			}
			size, ok := htoiBytes(line)
			if !ok {
				return r, fmt.Errorf("malformed chunk size %q", line)
			}
			if size == 0 {
				for { // trailers end at an empty line
					line, err = p.readLine()
					if err != nil {
						return r, err
					}
					if len(line) == 0 {
						break
					}
				}
				break
			}
			if err := p.readBody(size); err != nil {
				return r, err
			}
			if line, err = p.readLine(); err != nil {
				return r, err
			} else if len(line) != 0 {
				return r, fmt.Errorf("chunk not terminated by CRLF")
			}
		}
	case contentLen >= 0:
		if err := p.readBody(contentLen); err != nil {
			return r, err
		}
	case status == http.StatusNoContent || status == http.StatusNotModified:
		// no body
	case closeAfter:
		if p.body, err = io.ReadAll(p.br); err != nil {
			return r, err
		}
	default:
		return r, fmt.Errorf("response %d has neither Content-Length nor chunked framing", status)
	}
	r.body = p.body
	if closeAfter {
		p.close()
	}
	return r, nil
}

// readBody appends n bytes from the connection to p.body.
func (p *pconn) readBody(n int) error {
	off := len(p.body)
	if cap(p.body) < off+n {
		grown := make([]byte, off+n, 2*(off+n))
		copy(grown, p.body)
		p.body = grown
	} else {
		p.body = p.body[:off+n]
	}
	_, err := io.ReadFull(p.br, p.body[off:])
	return err
}

// readLine reads one CRLF-terminated line; the slice is valid until the
// next read.
func (p *pconn) readLine() ([]byte, error) {
	line, err := p.br.ReadSlice('\n')
	if err != nil {
		return nil, err
	}
	line = line[:len(line)-1]
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, nil
}

// headerIs reports whether b equals the lower-case token name,
// ASCII-case-insensitively.
func headerIs(b []byte, name string) bool {
	if len(b) != len(name) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c := b[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != name[i] {
			return false
		}
	}
	return true
}

func atoiBytes(b []byte) (int, bool) {
	if len(b) == 0 {
		return 0, false
	}
	n := 0
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

func htoiBytes(b []byte) (int, bool) {
	if len(b) == 0 {
		return 0, false
	}
	n := 0
	for _, c := range b {
		switch {
		case c >= '0' && c <= '9':
			n = n<<4 | int(c-'0')
		case c >= 'a' && c <= 'f':
			n = n<<4 | int(c-'a'+10)
		case c >= 'A' && c <= 'F':
			n = n<<4 | int(c-'A'+10)
		case c == ';': // chunk extension: ignore the rest
			return n, true
		default:
			return 0, false
		}
	}
	return n, true
}

// audit fetches every shard's status and reports whether the run was
// admission-clean server-side.
func audit(client *http.Client, base string, shards int) (bool, error) {
	clean := true
	for s := 0; s < shards; s++ {
		resp, err := client.Get(fmt.Sprintf("%s/v1/shards/%d", base, s))
		if err != nil {
			return false, err
		}
		body, rerr := io.ReadAll(resp.Body)
		if cerr := resp.Body.Close(); cerr != nil {
			return false, cerr
		}
		if rerr != nil {
			return false, rerr
		}
		if resp.StatusCode != http.StatusOK {
			return false, fmt.Errorf("shard %d status: %d: %s", s, resp.StatusCode, body)
		}
		var st struct {
			Now           int64 `json:"now"`
			RejectedW     int64 `json:"rejected_weight"`
			FailedApplies int64 `json:"failed_applies"`
			Violations    int64 `json:"violations"`
			Accepted      int64 `json:"accepted"`
			Applied       int64 `json:"applied"`
		}
		if err := json.Unmarshal(body, &st); err != nil {
			return false, err
		}
		fmt.Printf("pd2load: shard %d: now=%d accepted=%d applied=%d rejectedW=%d failed=%d violations=%d\n",
			s, st.Now, st.Accepted, st.Applied, st.RejectedW, st.FailedApplies, st.Violations)
		if st.RejectedW != 0 || st.FailedApplies != 0 || st.Violations != 0 {
			clean = false
		}
	}
	return clean, nil
}

// post marshals v and POSTs it, returning status and body.
func post(client *http.Client, url string, v any) (int, []byte, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return 0, nil, err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return 0, nil, err
	}
	body, rerr := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil {
		return 0, nil, cerr
	}
	if rerr != nil {
		return 0, nil, rerr
	}
	return resp.StatusCode, body, nil
}
