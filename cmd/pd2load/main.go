// Command pd2load is a closed-loop load generator for pd2d. It joins a
// population of tasks on every shard, then drives a stream of reweight
// commands (optionally batched per request, optionally interleaved with
// advances) from N workers, each waiting for every reply before sending
// the next request. Backpressure (429) is honoured by retrying after a
// short pause — backpressured commands are retried, never dropped.
//
// With -strict it exits non-zero unless the run was admission-clean:
// no property-(W) rejections, no engine invariant violations, no failed
// applies, no server errors — the serve-smoke CI gate.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/stats"
)

type workerStats struct {
	sent          int64 // commands queued by the server
	posts         int64 // HTTP requests issued (excluding retries)
	retries       int64 // 429 retry attempts
	rejected      int64 // per-command rejections (409/404/400)
	serverErrors  int64 // 5xx responses
	transportErrs int64 // connection-level failures
}

func main() {
	var (
		base     = flag.String("addr", "http://127.0.0.1:8377", "pd2d base URL")
		shards   = flag.Int("shards", 8, "number of shards to target")
		workers  = flag.Int("workers", 8, "concurrent closed-loop workers")
		requests = flag.Int("requests", 50000, "total commands to send across all workers")
		batch    = flag.Int("batch", 8, "commands per HTTP request")
		tasks    = flag.Int("tasks", 16, "tasks to join per shard during setup")
		advEvery = flag.Int("advance-every", 64, "per worker, advance the target shard one slot every N posts (0 never)")
		seed     = flag.Int64("seed", 1, "RNG seed for the weight stream")
		prefix   = flag.String("prefix", "L", "task-name prefix (shard names are never reusable; pick a fresh prefix when rerunning against a restored daemon)")
		strict   = flag.Bool("strict", false, "exit non-zero unless the run is admission-clean")
	)
	flag.Parse()
	if err := run(*base, *shards, *workers, *requests, *batch, *tasks, *advEvery, *seed, *prefix, *strict); err != nil {
		log.Fatalf("pd2load: %v", err)
	}
}

func run(base string, shards, workers, requests, batch, tasks, advEvery int, seed int64, prefix string, strict bool) error {
	if shards < 1 || workers < 1 || batch < 1 || tasks < 1 {
		return fmt.Errorf("shards, workers, batch, tasks must all be >= 1")
	}
	client := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        workers * 2,
			MaxIdleConnsPerHost: workers * 2,
		},
		Timeout: 30 * time.Second,
	}

	if err := setup(client, base, prefix, shards, tasks); err != nil {
		return fmt.Errorf("setup: %w", err)
	}

	// Closed loop: each worker owns a slice of the total command budget
	// and a distinct stats slot (the results[i] worker-pool idiom).
	stats := make([]workerStats, workers)
	perWorker := requests / workers
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			stats[w] = drive(client, base, prefix, w, shards, perWorker, batch, tasks, advEvery, seed)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var tot workerStats
	for _, s := range stats {
		tot.sent += s.sent
		tot.posts += s.posts
		tot.retries += s.retries
		tot.rejected += s.rejected
		tot.serverErrors += s.serverErrors
		tot.transportErrs += s.transportErrs
	}
	rate := float64(tot.sent) / elapsed.Seconds()
	fmt.Printf("pd2load: %d commands in %.2fs = %.0f commands/s (%d posts, %d retries, %d rejected, %d 5xx, %d transport errors)\n",
		tot.sent, elapsed.Seconds(), rate, tot.posts, tot.retries, tot.rejected, tot.serverErrors, tot.transportErrs)

	// Flush: one final advance per shard applies any still-staged batch,
	// so the audit sees applied == accepted for an admission-clean run.
	for s := 0; s < shards; s++ {
		if code, body, err := post(client, fmt.Sprintf("%s/v1/shards/%d/advance", base, s), map[string]int{"slots": 1}); err != nil || code != http.StatusOK {
			return fmt.Errorf("final advance shard %d: %d %s: %v", s, code, body, err)
		}
	}

	clean, err := audit(client, base, shards)
	if err != nil {
		return fmt.Errorf("audit: %w", err)
	}
	if strict {
		ok := clean && tot.rejected == 0 && tot.serverErrors == 0 && tot.transportErrs == 0
		if !ok {
			fmt.Println("pd2load: STRICT FAIL")
			os.Exit(1)
		}
		fmt.Println("pd2load: strict checks passed (admission-clean, zero failed applies, zero violations)")
	}
	return nil
}

// taskName is the canonical load-task name for (shard, index).
func taskName(prefix string, shard, i int) string { return fmt.Sprintf("%s%d_%d", prefix, shard, i) }

// command mirrors serve's wire command (kept local so the generator
// shares no code with the system under test).
type command struct {
	Op     string `json:"op"`
	Task   string `json:"task"`
	Weight string `json:"weight,omitempty"`
}

// setup joins the task population on every shard and advances one slot
// so the joins are applied before the load starts.
func setup(client *http.Client, base, prefix string, shards, tasks int) error {
	for s := 0; s < shards; s++ {
		cmds := make([]command, tasks)
		for i := range cmds {
			// 1/64 each: even 16 tasks later reweighted up to 1/32 total
			// only 1/2, far inside any M >= 1 — the load stays
			// admission-clean by construction.
			cmds[i] = command{Op: "join", Task: taskName(prefix, s, i), Weight: "1/64"}
		}
		code, body, err := post(client, fmt.Sprintf("%s/v1/shards/%d/commands", base, s), cmds)
		if err != nil {
			return err
		}
		if code != http.StatusOK {
			return fmt.Errorf("shard %d setup joins: %d: %s", s, code, body)
		}
		var results []struct {
			Status string `json:"status"`
			Reason string `json:"reason"`
		}
		if err := json.Unmarshal(body, &results); err != nil {
			return err
		}
		for i, r := range results {
			if r.Status != "queued" {
				return fmt.Errorf("shard %d setup join %d: %s (%s)", s, i, r.Status, r.Reason)
			}
		}
		if code, body, err = post(client, fmt.Sprintf("%s/v1/shards/%d/advance", base, s), map[string]int{"slots": 1}); err != nil || code != http.StatusOK {
			return fmt.Errorf("shard %d setup advance: %d %s: %v", s, code, body, err)
		}
	}
	return nil
}

// drive is one worker's closed loop.
func drive(client *http.Client, base, prefix string, w, shards, budget, batch, tasks, advEvery int, seed int64) workerStats {
	var st workerStats
	// One deterministic stats.RNG stream per worker: the command
	// sequence of a given (-seed, worker) pair is reproducible, and
	// Bounded keeps the per-command draw cost to a single multiply
	// (Lemire's nearly-divisionless mapping — see internal/stats).
	rng := stats.NewStream(uint64(seed), uint64(w))
	shard := w % shards
	cmds := make([]command, 0, batch)
	var buf bytes.Buffer
	for st.sent < int64(budget) {
		n := batch
		if rest := int64(budget) - st.sent; rest < int64(n) {
			n = int(rest)
		}
		cmds = cmds[:0]
		for i := 0; i < n; i++ {
			// Reweight a random task between 1/64 and 1/32 — always within
			// the admitted budget, so a 409 here is a server-side bug.
			cmds = append(cmds, command{
				Op:     "reweight",
				Task:   taskName(prefix, shard, rng.Bounded(tasks)),
				Weight: fmt.Sprintf("%d/64", 1+rng.Bounded(2)),
			})
		}
		buf.Reset()
		if err := json.NewEncoder(&buf).Encode(cmds); err != nil {
			st.transportErrs++
			return st
		}
		url := fmt.Sprintf("%s/v1/shards/%d/commands", base, shard)
		st.posts++
		for {
			resp, err := client.Post(url, "application/json", bytes.NewReader(buf.Bytes()))
			if err != nil {
				st.transportErrs++
				return st
			}
			body, rerr := io.ReadAll(resp.Body)
			cerr := resp.Body.Close()
			if rerr != nil || cerr != nil {
				st.transportErrs++
				return st
			}
			if resp.StatusCode == http.StatusTooManyRequests {
				st.retries++
				time.Sleep(time.Millisecond)
				continue
			}
			if resp.StatusCode >= 500 {
				st.serverErrors++
				break
			}
			if resp.StatusCode != http.StatusOK {
				st.rejected += int64(n)
				break
			}
			var results []struct {
				Status string `json:"status"`
			}
			if err := json.Unmarshal(body, &results); err != nil {
				st.transportErrs++
				return st
			}
			for _, r := range results {
				if r.Status == "queued" {
					st.sent++
				} else {
					st.rejected++
				}
			}
			break
		}
		if advEvery > 0 && st.posts%int64(advEvery) == 0 {
			code, _, err := post(client, fmt.Sprintf("%s/v1/shards/%d/advance", base, shard), map[string]int{"slots": 1})
			if err != nil {
				st.transportErrs++
				return st
			}
			if code >= 500 {
				st.serverErrors++
			}
		}
		// Spread workers across shards over time so every shard sees load
		// even when workers < shards.
		if shards > 1 && st.posts%13 == 0 {
			shard = (shard + 1) % shards
		}
	}
	return st
}

// audit fetches every shard's status and reports whether the run was
// admission-clean server-side.
func audit(client *http.Client, base string, shards int) (bool, error) {
	clean := true
	for s := 0; s < shards; s++ {
		resp, err := client.Get(fmt.Sprintf("%s/v1/shards/%d", base, s))
		if err != nil {
			return false, err
		}
		body, rerr := io.ReadAll(resp.Body)
		if cerr := resp.Body.Close(); cerr != nil {
			return false, cerr
		}
		if rerr != nil {
			return false, rerr
		}
		if resp.StatusCode != http.StatusOK {
			return false, fmt.Errorf("shard %d status: %d: %s", s, resp.StatusCode, body)
		}
		var st struct {
			Now           int64 `json:"now"`
			RejectedW     int64 `json:"rejected_weight"`
			FailedApplies int64 `json:"failed_applies"`
			Violations    int64 `json:"violations"`
			Accepted      int64 `json:"accepted"`
			Applied       int64 `json:"applied"`
		}
		if err := json.Unmarshal(body, &st); err != nil {
			return false, err
		}
		fmt.Printf("pd2load: shard %d: now=%d accepted=%d applied=%d rejectedW=%d failed=%d violations=%d\n",
			s, st.Now, st.Accepted, st.Applied, st.RejectedW, st.FailedApplies, st.Violations)
		if st.RejectedW != 0 || st.FailedApplies != 0 || st.Violations != 0 {
			clean = false
		}
	}
	return clean, nil
}

// post marshals v and POSTs it, returning status and body.
func post(client *http.Client, url string, v any) (int, []byte, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return 0, nil, err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return 0, nil, err
	}
	body, rerr := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil {
		return 0, nil, cerr
	}
	if rerr != nil {
		return 0, nil, rerr
	}
	return resp.StatusCode, body, nil
}
