// Command pd2load is a closed-loop load generator for pd2d. It joins a
// population of tasks on every shard, then drives a stream of reweight
// commands (batched per request, optionally interleaved with advances)
// from N workers. Each worker owns one persistent TCP connection and
// keeps up to -pipeline requests in flight on it (HTTP/1.1 pipelining:
// pd2d frames every hot-path response with an explicit Content-Length,
// so responses are read back in order without chunked parsing).
// Backpressure (429) is honoured by retrying after a capped exponential
// backoff floored at the server's Retry-After hint — backpressured
// commands are retried, never dropped.
//
// The total -requests budget is split across workers with the remainder
// distributed one-per-worker, so exactly -requests commands are
// delivered for any (requests, workers) pair.
//
// With -strict it exits non-zero unless the run was admission-clean:
// no property-(W) rejections, no engine invariant violations, no failed
// applies, no server errors — the serve-smoke CI gate.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"sync"
	"time"

	"repro/internal/stats"
	"repro/internal/workgen"
)

type workerStats struct {
	sent          int64         // commands queued by the server
	posts         int64         // HTTP requests issued (excluding retries)
	retries       int64         // 429 retry attempts
	rejected      int64         // per-command rejections (409/404/400)
	serverErrors  int64         // 5xx responses
	transportErrs int64         // connection-level failures
	backoff       time.Duration // total time slept honouring backpressure
}

// config is the resolved flag set; run takes it whole so tests can
// drive every mode without re-parsing flags.
type config struct {
	base     string
	shards   int
	workers  int
	requests int
	batch    int
	tasks    int
	advEvery int
	pipeline int
	seed     int64
	prefix   string
	strict   bool
	shape    string // load-shape name or inline grammar ("" = uniform)
	template string // pathological template name ("" = none)
	record   string // trace output path ("" = no recording)
	replay   string // trace input path ("" = generate load instead)
	route    string // cluster coordinator base URL ("" = single daemon at base)
	verify   bool   // replay every shard's log locally and compare digests
}

func main() {
	var cfg config
	flag.StringVar(&cfg.base, "addr", "http://127.0.0.1:8377", "pd2d base URL")
	flag.IntVar(&cfg.shards, "shards", 8, "number of shards to target")
	flag.IntVar(&cfg.workers, "workers", 8, "concurrent closed-loop workers")
	flag.IntVar(&cfg.requests, "requests", 50000, "total commands to send across all workers")
	flag.IntVar(&cfg.batch, "batch", 8, "commands per HTTP request")
	flag.IntVar(&cfg.pipeline, "pipeline", 4, "requests in flight per worker connection (1 = strict closed loop)")
	flag.IntVar(&cfg.tasks, "tasks", 16, "tasks to join per shard during setup")
	flag.IntVar(&cfg.advEvery, "advance-every", 64, "per worker, advance the target shard one slot every N posts (0 never)")
	flag.Int64Var(&cfg.seed, "seed", 1, "RNG seed for the weight stream")
	flag.StringVar(&cfg.prefix, "prefix", "L", "task-name prefix (shard names are never reusable; pick a fresh prefix when rerunning against a restored daemon)")
	flag.BoolVar(&cfg.strict, "strict", false, "exit non-zero unless the run is admission-clean (with -shape/-template: unless it degrades gracefully)")
	flag.StringVar(&cfg.shape, "shape", "", "temporal load shape: a built-in name (uniform, diurnal, ramp, spike, sine, flash-crowd) or inline name=rounds:rate:spread:churn,... (see docs/WORKGEN.md)")
	flag.StringVar(&cfg.template, "template", "", "pathological client template: reweight-storm, join-leave-churn, admission-camp, heavy-flood")
	flag.StringVar(&cfg.record, "record", "", "record the applied command stream to this trace file after the run")
	flag.StringVar(&cfg.replay, "replay", "", "replay a recorded trace against a fresh daemon and verify per-shard digests (ignores the generation flags)")
	flag.StringVar(&cfg.route, "route", "", "cluster coordinator base URL: resolve each shard's primary from its routing table and follow 307 reroutes (mutually exclusive with -record/-replay)")
	flag.BoolVar(&cfg.verify, "verify", false, "generate no load; fetch every shard's full log, replay it locally, and compare digests")
	flag.Parse()
	if _, err := run(cfg); err != nil {
		log.Fatalf("pd2load: %v", err)
	}
}

func run(cfg config) (workerStats, error) {
	var tot workerStats
	if cfg.route != "" && (cfg.record != "" || cfg.replay != "") {
		// Traces are per-daemon state; a routed cluster has no single
		// daemon to record from or replay against.
		return tot, fmt.Errorf("-record/-replay are not supported with -route")
	}
	if cfg.replay != "" {
		return tot, runReplay(cfg)
	}
	if cfg.verify {
		return tot, runVerify(cfg)
	}
	if cfg.shards < 1 || cfg.workers < 1 || cfg.batch < 1 || cfg.tasks < 1 {
		return tot, fmt.Errorf("shards, workers, batch, tasks must all be >= 1")
	}
	if cfg.pipeline < 1 || cfg.pipeline > 64 {
		// The client writes a full window before reading any response;
		// an unbounded window could deadlock against kernel socket
		// buffers once window bytes outgrow them.
		return tot, fmt.Errorf("pipeline must be in [1, 64]")
	}
	if cfg.shape != "" && cfg.template != "" {
		return tot, fmt.Errorf("-shape and -template are mutually exclusive")
	}
	client := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        cfg.workers * 2,
			MaxIdleConnsPerHost: cfg.workers * 2,
		},
		Timeout: 30 * time.Second,
	}
	// Route mode resolves each shard's primary from the coordinator's
	// table; workers then retarget their connections per window, so
	// -addr is only dialled in the single-daemon default.
	var addr, host string
	var err error
	resolve := fixedResolver(cfg.base)
	var rt *router
	if cfg.route != "" {
		rt = newRouter(cfg.route, client)
		if err := rt.waitReady(10 * time.Second); err != nil {
			return tot, fmt.Errorf("route: %w", err)
		}
		resolve = rt.resolve
	} else {
		if addr, host, err = parseBase(cfg.base); err != nil {
			return tot, err
		}
	}

	gens, tolerateRejections, err := buildGenerators(client, cfg, rt, resolve)
	if err != nil {
		return tot, err
	}
	if err := setupRun(client, cfg, resolve, gens, tolerateRejections); err != nil {
		return tot, fmt.Errorf("setup: %w", err)
	}

	// Each worker owns a slice of the total command budget and a
	// distinct stats slot (the results[i] worker-pool idiom).
	budgets := splitBudget(cfg.requests, cfg.workers)
	st := make([]workerStats, cfg.workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pc := &pconn{addr: addr, host: host}
			defer pc.close()
			st[w] = gens[w].drive(pc, budgets[w], cfg.batch, cfg.advEvery, cfg.pipeline)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	for _, s := range st {
		tot.sent += s.sent
		tot.posts += s.posts
		tot.retries += s.retries
		tot.rejected += s.rejected
		tot.serverErrors += s.serverErrors
		tot.transportErrs += s.transportErrs
		tot.backoff += s.backoff
	}

	// Drain: advance each shard until no admitted work is pending, so
	// the audit (and any recording) sees every accepted command applied
	// — an admission-clean run then shows applied == accepted, and
	// deferred-join queues are proven to empty.
	if err := drainShards(client, resolve, cfg.shards); err != nil {
		return tot, fmt.Errorf("drain: %w", err)
	}

	if cfg.record != "" {
		if err := recordTrace(client, cfg.base, cfg.record, cfg.shards); err != nil {
			return tot, fmt.Errorf("record: %w", err)
		}
		fmt.Printf("pd2load: recorded trace to %s\n", cfg.record)
	}

	rep, err := audit(client, resolve, cfg.shards)
	if err != nil {
		return tot, fmt.Errorf("audit: %w", err)
	}
	fmt.Println(statsLine(tot, elapsed))
	fmt.Println(anomalyLine(tot, rep))
	if cfg.strict {
		ok := rep.healthy && tot.serverErrors == 0 && tot.transportErrs == 0
		if !tolerateRejections {
			ok = ok && rep.admissionClean && tot.rejected == 0
		}
		if !ok {
			fmt.Println("pd2load: STRICT FAIL")
			os.Exit(1)
		}
		if tolerateRejections {
			fmt.Println("pd2load: strict checks passed (graceful degradation: zero failed applies, zero violations)")
		} else {
			fmt.Println("pd2load: strict checks passed (admission-clean, zero failed applies, zero violations)")
		}
	}
	return tot, nil
}

// statsLine renders the end-of-run throughput summary; TestStatsLine
// pins the format.
func statsLine(tot workerStats, elapsed time.Duration) string {
	rate := 0.0
	if elapsed > 0 {
		rate = float64(tot.sent) / elapsed.Seconds()
	}
	return fmt.Sprintf("pd2load: %d commands in %.2fs = %.0f commands/s (%d posts, %d retries, %d rejected, %d 5xx, %d transport errors, %.3fs backoff)",
		tot.sent, elapsed.Seconds(), rate, tot.posts, tot.retries, tot.rejected, tot.serverErrors, tot.transportErrs, tot.backoff.Seconds())
}

// anomalyLine renders the degradation summary: client-side backpressure
// plus the server's anomaly counters from the audit. TestStatsLine pins
// the format.
func anomalyLine(tot workerStats, rep auditReport) string {
	return fmt.Sprintf("pd2load: anomalies: %d 429s, %.3fs backoff, max deferred-join depth %d, reject spikes %d, drift excursions %d, backpressure spikes %d",
		tot.retries, tot.backoff.Seconds(), rep.deferredJoinPeak, rep.rejectSpikes, rep.driftExcursions, rep.backpressureSpikes)
}

// runReplay replays a recorded trace against a fresh daemon and
// verifies every shard reproduces its recorded digest byte-for-byte.
func runReplay(cfg config) error {
	f, err := os.Open(cfg.replay)
	if err != nil {
		return err
	}
	tr, derr := workgen.DecodeTrace(f)
	if cerr := f.Close(); cerr != nil && derr == nil {
		derr = cerr
	}
	if derr != nil {
		return derr
	}
	client := &http.Client{Timeout: 60 * time.Second}
	results, rerr := workgen.Replay(client, cfg.base, tr)
	for _, r := range results {
		verdict := "MATCH"
		if !r.Match {
			verdict = "MISMATCH"
		}
		fmt.Printf("pd2load: replayed shard %d: %d commands over %d slots, digest %016x vs recorded %016x: %s\n",
			r.Shard, r.Commands, r.Slots, r.Digest, r.Want, verdict)
	}
	if rerr != nil {
		return rerr
	}
	fmt.Printf("pd2load: replay verified %d shard(s) byte-identical\n", len(results))
	return nil
}

// recordTrace snapshots every shard into a trace file (temp file +
// rename, so a crash never leaves a truncated trace).
func recordTrace(client *http.Client, base, path string, shards int) error {
	tr, err := workgen.Record(client, base, shards)
	if err != nil {
		return err
	}
	data, err := tr.EncodeToBytes()
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// drainShards advances each shard until its staged batch and deferral
// queues are empty. Admission guarantees every admitted command
// eventually applies, so a queue that refuses to drain is a bug.
func drainShards(client *http.Client, resolve resolver, shards int) error {
	for s := 0; s < shards; s++ {
		pending := 1
		for i := 0; pending > 0; i++ {
			if i >= 256 {
				return fmt.Errorf("shard %d still has %d pending commands after 256 drain advances", s, pending)
			}
			if code, body, err := postShard(client, resolve, s, "advance", map[string]int{"slots": 1}); err != nil || code != http.StatusOK {
				return fmt.Errorf("drain advance shard %d: %d %s: %v", s, code, body, err)
			}
			base, err := resolve(s)
			if err != nil {
				return err
			}
			var st struct {
				PendingBatch   int `json:"pending_batch"`
				DeferredJoins  int `json:"deferred_joins"`
				DeferredLeaves int `json:"deferred_leaves"`
			}
			if err := getStatus(client, base, s, &st); err != nil {
				return err
			}
			pending = st.PendingBatch + st.DeferredJoins + st.DeferredLeaves
		}
	}
	return nil
}

// splitBudget divides requests across workers so the parts sum exactly
// to requests: the first requests%workers workers carry one extra.
func splitBudget(requests, workers int) []int {
	parts := make([]int, workers)
	per, extra := requests/workers, requests%workers
	for i := range parts {
		parts[i] = per
		if i < extra {
			parts[i]++
		}
	}
	return parts
}

// parseBase extracts the dial address and Host header from the base URL.
func parseBase(base string) (addr, host string, err error) {
	u, err := url.Parse(base)
	if err != nil {
		return "", "", fmt.Errorf("parsing -addr: %w", err)
	}
	if u.Scheme != "http" {
		return "", "", fmt.Errorf("pipelined client speaks plain http, got scheme %q", u.Scheme)
	}
	if u.Host == "" {
		return "", "", fmt.Errorf("-addr %q has no host", base)
	}
	addr = u.Host
	if u.Port() == "" {
		addr = net.JoinHostPort(u.Hostname(), "80")
	}
	return addr, u.Host, nil
}

const maxBackoff = 250 * time.Millisecond

// backoffDelay is the sleep before the attempt-th consecutive 429
// retry: exponential from 1ms, floored at the server's Retry-After
// hint, capped at maxBackoff, plus up to 25% jitter drawn from the
// worker's own RNG stream so runs stay reproducible per (seed, worker).
func backoffDelay(attempt int, hint time.Duration, rng *stats.RNG) time.Duration {
	if attempt > 10 {
		attempt = 10
	}
	d := time.Millisecond << attempt
	if hint > d {
		d = hint
	}
	if d > maxBackoff {
		d = maxBackoff
	}
	return d + time.Duration(rng.Bounded(int(d/4)+1))
}

// taskName is the canonical load-task name for (shard, index).
func taskName(prefix string, shard, i int) string { return fmt.Sprintf("%s%d_%d", prefix, shard, i) }

// command mirrors serve's wire command (kept local so the generator
// shares no code with the system under test).
type command struct {
	Op     string `json:"op"`
	Task   string `json:"task"`
	Weight string `json:"weight,omitempty"`
}

// genKind selects how a worker produces batches.
type genKind int

const (
	genUniform  genKind = iota // the classic anchor-reweight stream
	genShape                   // phase-modulated stream (workgen.ShapeStream)
	genTemplate                // pathological template (workgen.TemplateStream)
)

// genState is one worker's command source. Uniform workers rotate
// across shards over time; shape and template workers stay pinned to
// one shard, because their churn leaves must land on the shard that
// admitted the matching joins.
type genState struct {
	kind    genKind
	prefix  string
	shards  int
	shard   int  // current target shard
	rotate  bool // uniform only
	tasks   int
	batch   int // shape phases scale off the configured batch, not the tail
	rng     *stats.RNG
	sstream *workgen.ShapeStream
	tstream *workgen.TemplateStream
	scratch []workgen.Cmd

	rt         *router // nil = single daemon, no routing
	reroutes   int     // consecutive 307s without a non-redirect response
	rerouteCap int     // 0 = maxReroutes; tests lower it
}

// noteReroute counts a 307 and reports whether the worker should give
// up: the cap bounds a redirect loop (two nodes pointing at each other,
// or a table that never converges) at rerouteCap consecutive redirects.
func (g *genState) noteReroute() bool {
	g.reroutes++
	limit := g.rerouteCap
	if limit == 0 {
		limit = maxReroutes
	}
	return g.reroutes > limit
}

// nextBatch appends one batch's JSON body to b and reports how many
// commands it carries. Uniform and template streams emit exactly n;
// a shape stream emits whatever the current phase dictates (possibly
// zero for an idle phase), so -requests is a target rather than an
// exact count under -shape.
func (g *genState) nextBatch(b []byte, n int) ([]byte, int) {
	switch g.kind {
	case genUniform:
		return appendBatch(b, g.prefix, g.shard, n, g.tasks, g.rng), n
	case genShape:
		g.scratch = g.sstream.NextBatch(g.scratch[:0], g.batch)
		return appendCmds(b, g.scratch), len(g.scratch)
	case genTemplate:
		g.scratch = g.tstream.Next(g.scratch[:0], n)
		return appendCmds(b, g.scratch), len(g.scratch)
	default:
		panic("pd2load: unknown generator kind")
	}
}

// maybeRotate moves a uniform worker to the next shard every 13 posts
// so every shard sees load even when workers < shards.
func (g *genState) maybeRotate(posts int64) {
	if g.rotate && g.shards > 1 && posts%13 == 0 {
		g.shard = (g.shard + 1) % g.shards
	}
}

// advanced tells the stream a slot boundary passed on its shard, so
// churn joins posted before it may now be left.
func (g *genState) advanced() {
	if g.sstream != nil {
		g.sstream.Advanced()
	}
	if g.tstream != nil {
		g.tstream.Advanced()
	}
}

// appendCmds encodes workgen commands as a JSON array of wire commands.
// Task names go through AppendQuote, so arbitrary names stay valid JSON.
func appendCmds(b []byte, cmds []workgen.Cmd) []byte {
	b = append(b, '[')
	for i, c := range cmds {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"op":"`...)
		switch c.Op {
		case workgen.TraceJoin:
			b = append(b, "join"...)
		case workgen.TraceLeave:
			b = append(b, "leave"...)
		case workgen.TraceReweight:
			b = append(b, "reweight"...)
		default:
			panic("pd2load: generator emitted a non-wire trace op")
		}
		b = append(b, `","task":`...)
		b = strconv.AppendQuote(b, c.Task)
		if c.Op != workgen.TraceLeave {
			b = append(b, `,"weight":"`...)
			b = append(b, c.Weight.String()...)
			b = append(b, '"')
		}
		b = append(b, '}')
	}
	return append(b, ']')
}

// shardM fetches the shard list and returns shard 0's processor count
// (all shards share one config); template and shape weight envelopes
// are sized against it.
func shardM(client *http.Client, resolve resolver) (int, error) {
	base, err := resolve(0)
	if err != nil {
		return 0, err
	}
	resp, err := client.Get(base + "/v1/shards")
	if err != nil {
		return 0, err
	}
	body, rerr := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil {
		return 0, cerr
	}
	if rerr != nil {
		return 0, rerr
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("listing shards: %d: %s", resp.StatusCode, body)
	}
	var shards []struct {
		M int `json:"m"`
	}
	if err := json.Unmarshal(body, &shards); err != nil {
		return 0, err
	}
	if len(shards) == 0 {
		return 0, fmt.Errorf("daemon reports no shards")
	}
	return shards[0].M, nil
}

// buildGenerators constructs one command source per worker and reports
// whether strict mode should tolerate per-command rejections (true for
// shapes, whose churn races slot boundaries, and for templates that
// exist to provoke rejections).
func buildGenerators(client *http.Client, cfg config, rt *router, resolve resolver) ([]*genState, bool, error) {
	gens := make([]*genState, cfg.workers)
	switch {
	case cfg.template != "":
		tmpl, err := workgen.TemplateByName(cfg.template)
		if err != nil {
			return nil, false, err
		}
		m, err := shardM(client, resolve)
		if err != nil {
			return nil, false, err
		}
		for w := range gens {
			rng := stats.NewStream(uint64(cfg.seed), uint64(w))
			ts, err := workgen.NewTemplateStream(tmpl, rng, fmt.Sprintf("%sw%d", cfg.prefix, w), m, cfg.tasks)
			if err != nil {
				return nil, false, err
			}
			gens[w] = &genState{kind: genTemplate, shards: cfg.shards, shard: w % cfg.shards, batch: cfg.batch, tstream: ts, rt: rt}
		}
		return gens, tmpl.ExpectsRejections(), nil
	case cfg.shape != "":
		sh, err := workgen.ShapeByName(cfg.shape)
		if err != nil {
			return nil, false, err
		}
		productive := false
		for i := range sh.Phases {
			if sh.Phases[i].BatchSize(cfg.batch) > 0 {
				productive = true
				break
			}
		}
		if !productive {
			return nil, false, fmt.Errorf("shape %s produces no commands at batch %d", sh.Name, cfg.batch)
		}
		m, err := shardM(client, resolve)
		if err != nil {
			return nil, false, err
		}
		maxNum := (32 * m) / cfg.tasks // total anchor weight stays <= m/2
		for w := range gens {
			rng := stats.NewStream(uint64(cfg.seed), uint64(w))
			shard := w % cfg.shards
			prefix := cfg.prefix
			anchor := func(i int) string { return taskName(prefix, shard, i) }
			ss, err := workgen.NewShapeStream(sh, rng, fmt.Sprintf("%sw%d", cfg.prefix, w), anchor, cfg.tasks, maxNum)
			if err != nil {
				return nil, false, err
			}
			gens[w] = &genState{kind: genShape, shards: cfg.shards, shard: shard, batch: cfg.batch, sstream: ss, rt: rt}
		}
		return gens, true, nil
	default:
		for w := range gens {
			gens[w] = &genState{
				kind: genUniform, prefix: cfg.prefix, shards: cfg.shards, shard: w % cfg.shards,
				// Routed workers stay pinned to one shard: rotation would
				// redial a different primary every 13 posts for no gain.
				rotate: cfg.route == "", tasks: cfg.tasks, batch: cfg.batch,
				rng: stats.NewStream(uint64(cfg.seed), uint64(w)),
				rt:  rt,
			}
		}
		return gens, false, nil
	}
}

// setupRun prepares the shards' task populations. Uniform and shape
// runs share the anchor tasks joined by setup; template runs post each
// worker stream's own setup commands to its pinned shard. tolerate
// allows per-command rejections during setup — expected when several
// camp workers share a shard and the later ones find it full.
func setupRun(client *http.Client, cfg config, resolve resolver, gens []*genState, tolerate bool) error {
	if cfg.template == "" {
		return setup(client, resolve, cfg.prefix, cfg.shards, cfg.tasks)
	}
	var buf []byte
	for w, g := range gens {
		g.scratch = g.tstream.Setup(g.scratch[:0])
		if len(g.scratch) == 0 {
			continue
		}
		buf = appendCmds(buf[:0], g.scratch)
		code, body, err := postShard(client, resolve, g.shard, "commands", json.RawMessage(buf))
		if err != nil {
			return err
		}
		if code != http.StatusOK {
			return fmt.Errorf("worker %d template setup: %d: %s", w, code, body)
		}
		var results []struct {
			Status string `json:"status"`
			Reason string `json:"reason"`
		}
		if err := json.Unmarshal(body, &results); err != nil {
			return err
		}
		for i, r := range results {
			if r.Status != "queued" && !tolerate {
				return fmt.Errorf("worker %d template setup command %d: %s (%s)", w, i, r.Status, r.Reason)
			}
		}
	}
	for s := 0; s < cfg.shards; s++ {
		if code, body, err := postShard(client, resolve, s, "advance", map[string]int{"slots": 1}); err != nil || code != http.StatusOK {
			return fmt.Errorf("shard %d setup advance: %d %s: %v", s, code, body, err)
		}
	}
	for _, g := range gens {
		g.advanced()
	}
	return nil
}

// setup joins the task population on every shard and advances one slot
// so the joins are applied before the load starts.
func setup(client *http.Client, resolve resolver, prefix string, shards, tasks int) error {
	for s := 0; s < shards; s++ {
		cmds := make([]command, tasks)
		for i := range cmds {
			// 1/64 each: even 16 tasks later reweighted up to 1/32 total
			// only 1/2, far inside any M >= 1 — the load stays
			// admission-clean by construction.
			cmds[i] = command{Op: "join", Task: taskName(prefix, s, i), Weight: "1/64"}
		}
		code, body, err := postShard(client, resolve, s, "commands", cmds)
		if err != nil {
			return err
		}
		if code != http.StatusOK {
			return fmt.Errorf("shard %d setup joins: %d: %s", s, code, body)
		}
		var results []struct {
			Status string `json:"status"`
			Reason string `json:"reason"`
		}
		if err := json.Unmarshal(body, &results); err != nil {
			return err
		}
		for i, r := range results {
			if r.Status != "queued" {
				return fmt.Errorf("shard %d setup join %d: %s (%s)", s, i, r.Status, r.Reason)
			}
		}
		if code, body, err = postShard(client, resolve, s, "advance", map[string]int{"slots": 1}); err != nil || code != http.StatusOK {
			return fmt.Errorf("shard %d setup advance: %d %s: %v", s, code, body, err)
		}
	}
	return nil
}

// wireReq is one encoded request awaiting its response: the batch body
// and how many commands it carries (so retries keep the budget exact).
type wireReq struct {
	path string
	body []byte
	n    int
}

// queuedMarker counts accepted commands in a batch reply without a JSON
// decode. Safe here because the generator only sends reweights of its
// own alphanumeric task names, so the marker cannot appear inside a
// rejection reason.
var queuedMarker = []byte(`"status":"queued"`)

// drive is one worker's loop: keep up to `pipeline` batch requests in
// flight on one connection, read replies in order, retry 429s. The
// budget counts *delivered* commands — queued or rejected — so
// templates built to be rejected (admission camping, heavy flood)
// still terminate.
func (g *genState) drive(pc *pconn, budget, batch, advEvery, pipeline int) workerStats {
	var st workerStats
	// rng also feeds the backoff jitter; fall back to a fixed stream for
	// generators that carry their RNG inside a workgen stream.
	rng := g.rng
	if rng == nil {
		rng = stats.NewStream(uint64(g.shard), 1)
	}
	cmdPaths := make([]string, g.shards)
	advPaths := make([]string, g.shards)
	for s := range cmdPaths {
		cmdPaths[s] = fmt.Sprintf("/v1/shards/%d/commands", s)
		advPaths[s] = fmt.Sprintf("/v1/shards/%d/advance", s)
	}
	window := make([]wireReq, 0, pipeline)
	var retryQ []wireReq
	var free [][]byte
	attempt := 0
	var advancesDone int64
	for st.sent+st.rejected < int64(budget) || len(retryQ) > 0 {
		// Assemble the window: queued retries first, then fresh batches
		// up to the part of the budget not already in flight or queued.
		window = window[:0]
		nr := len(retryQ)
		if nr > pipeline {
			nr = pipeline
		}
		window = append(window, retryQ[:nr]...)
		retryQ = retryQ[:copy(retryQ, retryQ[nr:])]
		pendingCmds := 0
		for _, it := range retryQ {
			pendingCmds += it.n
		}
		for _, it := range window {
			pendingCmds += it.n
		}
		for len(window) < pipeline {
			need := budget - int(st.sent+st.rejected) - pendingCmds
			if need <= 0 {
				break
			}
			n := batch
			if need < n {
				n = need
			}
			var body []byte
			if len(free) > 0 {
				body, free = free[len(free)-1], free[:len(free)-1]
			}
			var got int
			body, got = g.nextBatch(body[:0], n)
			st.posts++ // idle shape rounds still count, so advance pacing stays phase-driven
			if got == 0 {
				// Idle phase round: nothing to post. Fall through so the
				// pending advances still fire; the shape cycle is
				// guaranteed to reach a productive phase.
				free = append(free, body)
				break
			}
			window = append(window, wireReq{path: cmdPaths[g.shard], body: body, n: got})
			pendingCmds += got
			g.maybeRotate(st.posts)
		}
		var hint time.Duration
		got429 := false
		if len(window) > 0 {
			// Routed workers re-resolve their shard's primary before every
			// window; a table refresh (307 or version mismatch last round)
			// retargets the connection here.
			if g.rt != nil {
				if base, err := g.rt.resolve(g.shard); err == nil {
					if err := pc.retarget(base); err != nil {
						st.transportErrs++
						return st
					}
				}
			}
			if err := pc.ensure(); err != nil {
				st.transportErrs++
				return st
			}
			for i := range window {
				if err := pc.writeReq(window[i].path, window[i].body); err != nil {
					st.transportErrs++
					return st
				}
			}
			if err := pc.flush(); err != nil {
				st.transportErrs++
				return st
			}
			// Retargeting must wait until the whole window is read off the
			// old connection; remember the redirect and apply it after.
			redirectTo := ""
			for i := range window {
				resp, err := pc.readResp()
				if err != nil {
					st.transportErrs++
					pc.close()
					return st
				}
				if g.rt != nil && resp.routeVersion > 0 {
					g.rt.noteVersion(resp.routeVersion)
				}
				it := window[i]
				if resp.status != http.StatusTemporaryRedirect {
					g.reroutes = 0
				}
				switch {
				case resp.status == http.StatusTooManyRequests:
					st.retries++
					got429 = true
					if resp.retryAfter > hint {
						hint = resp.retryAfter
					}
					retryQ = append(retryQ, it)
				case resp.status == http.StatusTemporaryRedirect:
					// Stale route: the shard moved. Requeue through the same
					// capped backoff path as a 429 and chase Location.
					if g.noteReroute() {
						st.transportErrs++
						pc.close()
						return st
					}
					st.retries++
					got429 = true
					if resp.retryAfter > hint {
						hint = resp.retryAfter
					}
					if resp.location != "" {
						redirectTo = resp.location
					}
					retryQ = append(retryQ, it)
				case resp.status == http.StatusServiceUnavailable && g.rt != nil:
					// Cluster backpressure (migration gate draining, a
					// follower ack outstanding, table propagating): the
					// command was not acked, so retry it like a 429.
					st.retries++
					got429 = true
					if resp.retryAfter > hint {
						hint = resp.retryAfter
					}
					retryQ = append(retryQ, it)
				case resp.status >= 500:
					st.serverErrors++
					free = append(free, it.body)
				case resp.status != http.StatusOK:
					st.rejected += int64(it.n)
					free = append(free, it.body)
				default:
					q := bytes.Count(resp.body, queuedMarker)
					st.sent += int64(q)
					st.rejected += int64(it.n - q)
					free = append(free, it.body)
				}
			}
			if redirectTo != "" {
				if g.rt != nil {
					_ = g.rt.refresh() // best effort; resolve falls back to the cached table
				}
				if err := pc.retarget(redirectTo); err != nil {
					st.transportErrs++
					return st
				}
			}
		}
		if got429 {
			d := backoffDelay(attempt, hint, rng)
			attempt++
			st.backoff += d
			time.Sleep(d)
		} else {
			attempt = 0
		}
		if advEvery > 0 {
			advanced := false
			for due := st.posts / int64(advEvery); advancesDone < due; advancesDone++ {
				if err := pc.ensure(); err != nil {
					st.transportErrs++
					return st
				}
				if err := pc.writeReq(advPaths[g.shard], []byte(`{"slots":1}`)); err != nil {
					st.transportErrs++
					return st
				}
				if err := pc.flush(); err != nil {
					st.transportErrs++
					return st
				}
				resp, err := pc.readResp()
				if err != nil {
					st.transportErrs++
					pc.close()
					return st
				}
				if g.rt != nil && resp.routeVersion > 0 {
					g.rt.noteVersion(resp.routeVersion)
				}
				switch {
				case resp.status == http.StatusTemporaryRedirect:
					// The shard moved: chase the redirect for subsequent
					// requests. This advance is dropped — advances pace
					// the load, they are not part of the budget.
					if g.rt != nil {
						_ = g.rt.refresh()
					}
					if resp.location != "" {
						if err := pc.retarget(resp.location); err != nil {
							st.transportErrs++
							return st
						}
					}
				case resp.status == http.StatusServiceUnavailable && g.rt != nil:
					// Cluster backpressure; the next due advance retries.
				case resp.status >= 500:
					st.serverErrors++
				}
				advanced = true
			}
			if advanced {
				// The advance was written after every window response was
				// read, so all posted joins reached the shard first; churn
				// streams may now leave them. (A 429'd join still waiting
				// in retryQ can slip past this and draw a 404 on its
				// leave — tolerated, shape/template runs expect strays.)
				g.advanced()
			}
		}
	}
	return st
}

// appendBatch encodes n reweight commands as a JSON array. Weights move
// between 1/64 and 1/32 — always within the admitted budget, so a 409
// under load is a server-side bug. Assumes an alphanumeric prefix (the
// names are embedded without JSON escaping).
func appendBatch(b []byte, prefix string, shard, n, tasks int, rng *stats.RNG) []byte {
	b = append(b, '[')
	for i := 0; i < n; i++ {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"op":"reweight","task":"`...)
		b = append(b, prefix...)
		b = strconv.AppendInt(b, int64(shard), 10)
		b = append(b, '_')
		b = strconv.AppendInt(b, int64(rng.Bounded(tasks)), 10)
		b = append(b, `","weight":"`...)
		b = strconv.AppendInt(b, int64(1+rng.Bounded(2)), 10)
		b = append(b, `/64"}`...)
	}
	return append(b, ']')
}

// pconn is a persistent HTTP/1.1 connection with request pipelining:
// write up to a window of requests, flush once, read the responses back
// in order. pd2d sends explicit Content-Length on the hot path; chunked
// framing is parsed as a fallback for other handlers.
type pconn struct {
	addr string
	host string
	c    net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	body []byte
}

type wireResp struct {
	status       int
	retryAfter   time.Duration
	body         []byte // valid until the next readResp
	location     string // Location header ("" if absent); 307 reroute target
	routeVersion int64  // X-PD2-Route-Version header (0 if absent)
}

func (p *pconn) ensure() error {
	if p.c != nil {
		return nil
	}
	c, err := net.DialTimeout("tcp", p.addr, 5*time.Second)
	if err != nil {
		return err
	}
	p.c = c
	if p.br == nil {
		p.br = bufio.NewReaderSize(c, 64<<10)
		p.bw = bufio.NewWriterSize(c, 64<<10)
	} else {
		p.br.Reset(c)
		p.bw.Reset(c)
	}
	return nil
}

func (p *pconn) close() {
	if p.c != nil {
		_ = p.c.Close() // best effort; the conn is being abandoned
		p.c = nil
	}
}

// writeReq buffers one request. bufio errors are sticky, so the
// intermediate write errors are dropped and flush reports them.
func (p *pconn) writeReq(path string, body []byte) error {
	_ = p.c.SetWriteDeadline(time.Now().Add(30 * time.Second))
	var tmp [20]byte
	_, _ = p.bw.WriteString("POST ")
	_, _ = p.bw.WriteString(path)
	_, _ = p.bw.WriteString(" HTTP/1.1\r\nHost: ")
	_, _ = p.bw.WriteString(p.host)
	_, _ = p.bw.WriteString("\r\nContent-Type: application/json\r\nContent-Length: ")
	_, _ = p.bw.Write(strconv.AppendInt(tmp[:0], int64(len(body)), 10))
	_, _ = p.bw.WriteString("\r\n\r\n")
	_, err := p.bw.Write(body)
	return err
}

func (p *pconn) flush() error { return p.bw.Flush() }

func (p *pconn) readResp() (wireResp, error) {
	var r wireResp
	_ = p.c.SetReadDeadline(time.Now().Add(30 * time.Second))
	line, err := p.readLine()
	if err != nil {
		return r, err
	}
	if len(line) < 12 || !bytes.HasPrefix(line, []byte("HTTP/1.")) {
		return r, fmt.Errorf("malformed status line %q", line)
	}
	status, ok := atoiBytes(line[9:12])
	if !ok {
		return r, fmt.Errorf("malformed status line %q", line)
	}
	r.status = status
	contentLen := -1
	chunked, closeAfter := false, false
	for {
		line, err = p.readLine()
		if err != nil {
			return r, err
		}
		if len(line) == 0 {
			break
		}
		colon := bytes.IndexByte(line, ':')
		if colon < 0 {
			continue
		}
		key, val := line[:colon], bytes.TrimSpace(line[colon+1:])
		switch {
		case headerIs(key, "content-length"):
			if n, ok := atoiBytes(val); ok {
				contentLen = n
			}
		case headerIs(key, "transfer-encoding"):
			chunked = headerIs(val, "chunked")
		case headerIs(key, "connection"):
			closeAfter = headerIs(val, "close")
		case headerIs(key, "retry-after"):
			if n, ok := atoiBytes(val); ok {
				r.retryAfter = time.Duration(n) * time.Second
			}
		case headerIs(key, "location"):
			r.location = string(val) // copied: the line buffer is reused
		case headerIs(key, "x-pd2-route-version"):
			if n, ok := atoiBytes(val); ok {
				r.routeVersion = int64(n)
			}
		}
	}
	p.body = p.body[:0]
	switch {
	case chunked:
		for {
			line, err = p.readLine()
			if err != nil {
				return r, err
			}
			size, ok := htoiBytes(line)
			if !ok {
				return r, fmt.Errorf("malformed chunk size %q", line)
			}
			if size == 0 {
				for { // trailers end at an empty line
					line, err = p.readLine()
					if err != nil {
						return r, err
					}
					if len(line) == 0 {
						break
					}
				}
				break
			}
			if err := p.readBody(size); err != nil {
				return r, err
			}
			if line, err = p.readLine(); err != nil {
				return r, err
			} else if len(line) != 0 {
				return r, fmt.Errorf("chunk not terminated by CRLF")
			}
		}
	case contentLen >= 0:
		if err := p.readBody(contentLen); err != nil {
			return r, err
		}
	case status == http.StatusNoContent || status == http.StatusNotModified:
		// no body
	case closeAfter:
		if p.body, err = io.ReadAll(p.br); err != nil {
			return r, err
		}
	default:
		return r, fmt.Errorf("response %d has neither Content-Length nor chunked framing", status)
	}
	r.body = p.body
	if closeAfter {
		p.close()
	}
	return r, nil
}

// readBody appends n bytes from the connection to p.body.
func (p *pconn) readBody(n int) error {
	off := len(p.body)
	if cap(p.body) < off+n {
		grown := make([]byte, off+n, 2*(off+n))
		copy(grown, p.body)
		p.body = grown
	} else {
		p.body = p.body[:off+n]
	}
	_, err := io.ReadFull(p.br, p.body[off:])
	return err
}

// readLine reads one CRLF-terminated line; the slice is valid until the
// next read.
func (p *pconn) readLine() ([]byte, error) {
	line, err := p.br.ReadSlice('\n')
	if err != nil {
		return nil, err
	}
	line = line[:len(line)-1]
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, nil
}

// headerIs reports whether b equals the lower-case token name,
// ASCII-case-insensitively.
func headerIs(b []byte, name string) bool {
	if len(b) != len(name) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c := b[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != name[i] {
			return false
		}
	}
	return true
}

func atoiBytes(b []byte) (int, bool) {
	if len(b) == 0 {
		return 0, false
	}
	n := 0
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

func htoiBytes(b []byte) (int, bool) {
	if len(b) == 0 {
		return 0, false
	}
	n := 0
	for _, c := range b {
		switch {
		case c >= '0' && c <= '9':
			n = n<<4 | int(c-'0')
		case c >= 'a' && c <= 'f':
			n = n<<4 | int(c-'a'+10)
		case c >= 'A' && c <= 'F':
			n = n<<4 | int(c-'A'+10)
		case c == ';': // chunk extension: ignore the rest
			return n, true
		default:
			return 0, false
		}
	}
	return n, true
}

// auditReport aggregates the per-shard post-run audit. admissionClean
// means no property-(W) rejections anywhere; healthy means zero failed
// applies and zero lag-bound violations — the invariant every
// pathological template must leave intact. The anomaly fields sum the
// per-shard spike counters and take the maximum deferred-join depth.
type auditReport struct {
	admissionClean     bool
	healthy            bool
	deferredJoinPeak   int64
	rejectSpikes       int64
	driftExcursions    int64
	backpressureSpikes int64
}

// audit fetches every shard's status, prints the per-shard line, and
// folds the results into one report.
func audit(client *http.Client, resolve resolver, shards int) (auditReport, error) {
	rep := auditReport{admissionClean: true, healthy: true}
	for s := 0; s < shards; s++ {
		base, err := resolve(s)
		if err != nil {
			return rep, err
		}
		var st struct {
			Now                int64 `json:"now"`
			RejectedW          int64 `json:"rejected_weight"`
			FailedApplies      int64 `json:"failed_applies"`
			Violations         int64 `json:"violations"`
			Accepted           int64 `json:"accepted"`
			Applied            int64 `json:"applied"`
			DeferredJoinPeak   int64 `json:"deferred_join_peak"`
			RejectSpikes       int64 `json:"anomaly_reject_spikes"`
			DriftExcursions    int64 `json:"anomaly_drift_excursions"`
			BackpressureSpikes int64 `json:"anomaly_backpressure_spikes"`
		}
		if err := getStatus(client, base, s, &st); err != nil {
			return rep, err
		}
		fmt.Printf("pd2load: shard %d: now=%d accepted=%d applied=%d rejectedW=%d failed=%d violations=%d\n",
			s, st.Now, st.Accepted, st.Applied, st.RejectedW, st.FailedApplies, st.Violations)
		if st.RejectedW != 0 {
			rep.admissionClean = false
		}
		if st.FailedApplies != 0 || st.Violations != 0 {
			rep.healthy = false
		}
		if st.DeferredJoinPeak > rep.deferredJoinPeak {
			rep.deferredJoinPeak = st.DeferredJoinPeak
		}
		rep.rejectSpikes += st.RejectSpikes
		rep.driftExcursions += st.DriftExcursions
		rep.backpressureSpikes += st.BackpressureSpikes
	}
	return rep, nil
}

// getStatus decodes shard s's status reply into v.
func getStatus(client *http.Client, base string, s int, v any) error {
	resp, err := client.Get(fmt.Sprintf("%s/v1/shards/%d", base, s))
	if err != nil {
		return err
	}
	body, rerr := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil {
		return cerr
	}
	if rerr != nil {
		return rerr
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("shard %d status: %d: %s", s, resp.StatusCode, body)
	}
	return json.Unmarshal(body, v)
}

// post marshals v and POSTs it, returning status and body.
func post(client *http.Client, url string, v any) (int, []byte, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return 0, nil, err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return 0, nil, err
	}
	body, rerr := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil {
		return 0, nil, cerr
	}
	if rerr != nil {
		return 0, nil, rerr
	}
	return resp.StatusCode, body, nil
}
