// Whisper: one full run of the paper's evaluation application — three
// speakers orbiting an occluding pole in a 1m x 1m room with microphones in
// the corners, one task per speaker/microphone pair on four processors —
// under both reweighting policies.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	p := repro.DefaultWhisperParams()
	p.Speed = 2.9   // m/s, typical fast human motion
	p.Radius = 0.25 // m from the pole
	p.Seed = 7

	sim, err := repro.NewWhisper(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Whisper scenario: %d tasks, initial total weight %s on 4 CPUs, %d quanta\n\n",
		len(sim.TaskSpecs()), sim.TotalInitialWeight(), p.Horizon)

	for _, kind := range []repro.PolicyKind{repro.PolicyOI, repro.PolicyLJ} {
		res, err := repro.RunWhisper(p, kind, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", kind)
		fmt.Printf("  weight-change requests : %d (enacted %d)\n", res.Initiations, res.Enactments)
		fmt.Printf("  max |drift| at t=%d  : %.3f quanta\n", p.Horizon, res.MaxAbsDrift)
		fmt.Printf("  %% of ideal allocation  : mean %.2f%%, worst task %.2f%%\n",
			res.PctIdeal*100, res.MinPctIdeal*100)
		fmt.Printf("  deadline misses        : %d\n\n", res.Misses)
	}

	// The hybrid knob: use the (more costly) rules O/I only for large
	// changes, leave/join for small ones.
	res, err := repro.RunWhisper(p, repro.PolicyHybrid, repro.ThresholdChooser(0.05))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Hybrid (rules O/I only for |Δw| >= 0.05; %.0f%% of events):\n",
		float64(res.OIEvents)/float64(res.Initiations)*100)
	fmt.Printf("  max |drift| %.3f, %% of ideal %.2f%%, misses %d\n",
		res.MaxAbsDrift, res.PctIdeal*100, res.Misses)
}
