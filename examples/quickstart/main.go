// Quickstart: schedule a small periodic task set under PD² on two
// processors, reweight one task at run time with the paper's fine-grained
// rules, and inspect the resulting schedule and drift.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Three tasks on two processors. Weights are exact rationals; a
	// periodic task with execution cost e and period p has weight e/p.
	sys := repro.System{M: 2, Tasks: []repro.Spec{
		{Name: "video", Weight: repro.NewRat(1, 3)},
		{Name: "audio", Weight: repro.NewRat(1, 10)},
		repro.Periodic("control", 1, 4),
	}}
	s, err := repro.NewScheduler(repro.Config{
		M:              2,
		Policy:         repro.PolicyOI, // the paper's rules O and I
		Police:         true,           // enforce total weight <= M (property (W))
		RecordSchedule: true,
	}, sys)
	if err != nil {
		log.Fatal(err)
	}

	// Run 20 quanta, then double the video task's share mid-flight.
	s.RunTo(20)
	if err := s.Initiate("video", repro.NewRat(1, 2)); err != nil {
		log.Fatal(err)
	}
	s.RunTo(40)

	fmt.Println("PD² schedule ('#' = scheduled quantum; video reweights 1/3 -> 1/2 at t=20):")
	fmt.Print(repro.Gantt(s, 0, 40))
	fmt.Println()

	for _, name := range s.TaskNames() {
		m, _ := s.Metrics(name)
		fmt.Printf("%-8s weight=%-5s scheduled=%2d quanta  lag=%-6s drift=%s\n",
			name, m.Weight, m.Scheduled, m.Lag, m.Drift)
	}
	fmt.Printf("\ndeadline misses: %d (Theorem 2 guarantees zero)\n", len(s.Misses()))
}
