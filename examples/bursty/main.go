// Bursty: the paper's introduction motivates fine-grained adaptivity with
// vision and signal-processing pipelines whose shares swing over two
// orders of magnitude within milliseconds. This example runs such a
// workload — abstract, with no tracking geometry: twelve tasks whose
// weights random-walk a geometric ladder with occasional bursts — and
// shows that the PD²-OI vs PD²-LJ separation is a property of wide, abrupt
// share changes, not of the Whisper scenario.
//
// It also demonstrates plugging a custom workload into the harness: any
// type with TaskSpecs() and StepRequests(t) drives repro.RunWorkload.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	p := repro.DefaultWorkloadParams()
	fmt.Printf("Abstract bursty workload: %d tasks on %d CPUs, weight ladder %s..%s,\n",
		p.Tasks, p.M, p.WMin, p.WMax)
	fmt.Printf("mean dwell %.0f slots, %d quanta horizon.\n\n", p.MeanDwell, p.Horizon)

	for _, burst := range []float64{0, 0.4, 0.8} {
		fmt.Printf("burst probability %.1f:\n", burst)
		for _, kind := range []repro.PolicyKind{repro.PolicyOI, repro.PolicyLJ} {
			pp := p
			pp.BurstProb = burst
			pp.Seed = 7
			gen, err := repro.NewWorkload(pp)
			if err != nil {
				log.Fatal(err)
			}
			res, err := repro.RunWorkload(gen, pp.M, pp.Horizon, repro.WhisperRunConfig{Kind: kind})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-7s %% of ideal %6.2f%% (worst task %6.2f%%)  max |drift| %6.2f  misses %d\n",
				kind, res.PctIdeal*100, res.MinPctIdeal*100, res.MaxAbsDrift, res.Misses)
		}
	}
	fmt.Println("\nThe gap grows with burstiness: leave/join pays a full old-weight window")
	fmt.Println("per change, which is exactly what wide, abrupt share swings maximize.")
}
