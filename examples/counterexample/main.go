// Counterexample: the paper's two negative results, demonstrated.
//
// Theorem 3 — PD²-LJ is not fine-grained: lowering a task's initial weight
// makes the drift of a single weight-change event grow without bound.
//
// Theorem 4 — every EPDF scheme whose deadlines track the true ideal
// allocations can be forced to miss a deadline (Fig. 9), which is why
// PD²-OI keeps fixed per-subtask deadlines and accepts constant drift
// instead.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	fmt.Println("Theorem 3: PD²-LJ per-event drift is unbounded.")
	fmt.Println("A task with initial weight 1/(2k) requests weight 1/2 at t=1:")
	for k := int64(2); k <= 32; k *= 2 {
		w := repro.NewRat(1, 2*k)
		s, err := repro.NewScheduler(repro.Config{M: 1, Policy: repro.PolicyLJ, Police: true},
			repro.System{M: 1, Tasks: []repro.Spec{{Name: "T", Weight: w}}})
		if err != nil {
			log.Fatal(err)
		}
		s.RunTo(1)
		if err := s.Initiate("T", repro.NewRat(1, 2)); err != nil {
			log.Fatal(err)
		}
		s.RunTo(2*k + 2)
		m, _ := s.Metrics("T")
		fmt.Printf("  initial weight %-5s -> drift %s (%.3f quanta)\n", w, m.Drift, m.Drift.Float64())
	}
	fmt.Println("Under PD²-OI the same requests incur at most 2 quanta each (Theorem 5).")
	fmt.Println()

	fmt.Println("Theorem 4 (Fig. 9): EPDF with projected I_PS deadlines on 2 CPUs.")
	fmt.Println("Five tasks of weight 1/21 reweight to 1/3 at t=7; their projected")
	fmt.Println("deadlines jump from 21 to 9, and only 4 quanta fit in [7,9):")
	e := repro.NewEPDFPS(2)
	e.RunTo(12, func(now repro.Time, e *repro.EPDFPS) {
		switch now {
		case 0:
			for i := 0; i < 10; i++ {
				must(e.Join(fmt.Sprintf("A#%d", i), repro.NewRat(1, 7)))
			}
			must(e.Join("B#0", repro.NewRat(1, 6)))
			must(e.Join("B#1", repro.NewRat(1, 6)))
			for i := 0; i < 5; i++ {
				must(e.Join(fmt.Sprintf("D#%d", i), repro.NewRat(1, 21)))
			}
		case 6:
			must(e.Leave("B#0"))
			must(e.Leave("B#1"))
			must(e.Join("C#0", repro.NewRat(1, 14)))
			must(e.Join("C#1", repro.NewRat(1, 14)))
		case 7:
			for i := 0; i < 10; i++ {
				must(e.Leave(fmt.Sprintf("A#%d", i)))
			}
			for i := 0; i < 5; i++ {
				must(e.SetWeight(fmt.Sprintf("D#%d", i), repro.NewRat(1, 3)))
			}
		}
	})
	for _, m := range e.Misses() {
		fmt.Printf("  deadline miss: task %s, quantum %d, deadline t=%d\n", m.Task, m.Subtask, m.Deadline)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
