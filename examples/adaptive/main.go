// Adaptive: the same weight-change request handled by the paper's
// fine-grained rules (PD²-OI) and by the leave/join baseline (PD²-LJ),
// side by side — the essence of Figs. 6 and 8.
//
// A task T of weight 1/10 shares four processors with 35 identical
// background tasks and asks to grow to 1/2 at time 4 (it suddenly has five
// times the work — think of a tracked object becoming occluded). PD²-OI
// enacts the change within about a quantum; PD²-LJ must wait for the end of
// T's old window (rule L), accumulating 24/10 quanta of drift.
package main

import (
	"fmt"
	"log"

	"repro"
)

func run(policy repro.PolicyKind) *repro.Scheduler {
	tasks := repro.Replicate(35, repro.Spec{Name: "A", Weight: repro.NewRat(1, 10), Group: "A"})
	tasks = append(tasks, repro.Spec{Name: "T", Weight: repro.NewRat(1, 10), Group: "T"})
	s, err := repro.NewScheduler(repro.Config{
		M: 4, Policy: policy, Police: true,
		RecordSchedule: true, RecordDriftEvents: true,
	}, repro.System{M: 4, Tasks: tasks})
	if err != nil {
		log.Fatal(err)
	}
	s.RunTo(4)
	if err := s.Initiate("T", repro.NewRat(1, 2)); err != nil {
		log.Fatal(err)
	}
	s.RunTo(24)
	return s
}

func main() {
	group := func(task string) string {
		if task[0] == 'A' {
			return "A(35x1/10)"
		}
		return task
	}
	for _, policy := range []repro.PolicyKind{repro.PolicyOI, repro.PolicyLJ} {
		s := run(policy)
		fmt.Printf("=== %s: T requests 1/10 -> 1/2 at t=4 ===\n", policy)
		fmt.Print(repro.GanttGrouped(s, group, 0, 24))
		m, _ := s.Metrics("T")
		fmt.Printf("T: scheduled=%d quanta  drift=%s  misses=%d\n", m.Scheduled, m.Drift, m.Misses)
		for _, ev := range s.DriftEvents("T") {
			fmt.Printf("   drift event at t=%-3d -> %s\n", ev.At, ev.Value)
		}
		fmt.Println()
	}
	fmt.Println("PD²-OI reacts within ~a quantum (constant drift, Theorem 5); PD²-LJ")
	fmt.Println("waits out the old window and drifts by 24/10 (Theorem 3: unbounded).")
}
