// Feedback: the paper's conclusion points at feedback-control mechanisms
// (its reference [8]) as the missing piece that decides *how and when* to
// adapt — the scheduling rules only decide how fast an adaptation can be
// enacted. This example closes that loop: a task serves work arriving at a
// time-varying rate; a proportional controller watches the task's backlog
// and requests weight changes through the scheduler. The same controller
// runs on top of PD²-OI and PD²-LJ, showing how much enactment latency
// costs a control loop: the LJ-driven queue grows several times deeper on
// every demand burst.
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
)

// demand returns the work-arrival rate (quanta per slot) at slot t: a low
// baseline with periodic 15x bursts — the two-orders-of-magnitude swings
// the paper attributes to tracking workloads. The low baseline is what
// stresses leave/join: its rejoin delay is a full window of the *old*
// (small) weight.
func demand(t repro.Time) float64 {
	base := 0.02 + 0.01*math.Sin(2*math.Pi*float64(t)/400)
	if t%250 < 40 { // a burst every 250 slots
		base *= 15
	}
	return base
}

// run simulates the served queue under one policy and returns the mean and
// maximum backlog (in quanta of unserved work).
func run(kind repro.PolicyKind) (mean, max float64) {
	const horizon = 1500
	sys := repro.System{M: 2, Tasks: []repro.Spec{
		{Name: "served", Weight: repro.NewRat(2, 100)},
		{Name: "bg1", Weight: repro.NewRat(1, 2)},
		{Name: "bg2", Weight: repro.NewRat(1, 2)},
	}}
	s, err := repro.NewScheduler(repro.Config{M: 2, Policy: kind, Police: true}, sys)
	if err != nil {
		log.Fatal(err)
	}
	backlog := 0.0
	served := int64(0)
	lastReq := 0.02
	var sum float64
	s.Run(horizon, func(t repro.Time, sch *repro.Scheduler) {
		backlog += demand(t)
		m, _ := sch.Metrics("served")
		backlog -= float64(m.Scheduled - served)
		if backlog < 0 {
			backlog = 0
		}
		served = m.Scheduled
		sum += backlog
		if backlog > max {
			max = backlog
		}
		// Proportional controller, every 10 slots: request the arrival rate
		// plus a backlog-draining term.
		if t%10 == 0 {
			want := demand(t) + 0.05*backlog
			want = math.Min(math.Max(want, 0.01), 0.5)
			if math.Abs(want-lastReq) >= 0.005 {
				lastReq = want
				w := repro.NewRat(int64(math.Round(want*1000)), 1000)
				if err := sch.Initiate("served", w); err != nil {
					log.Fatal(err)
				}
			}
		}
	})
	if len(s.Misses()) != 0 {
		log.Fatalf("misses under %v", kind)
	}
	return sum / horizon, max
}

func main() {
	fmt.Println("A proportional controller adapts one task's share to bursty demand")
	fmt.Println("(arrival rate 0.01-0.45 quanta/slot) on two processors with two")
	fmt.Println("half-weight background tasks. Same controller, two reweighting schemes:")
	fmt.Println()
	for _, kind := range []repro.PolicyKind{repro.PolicyOI, repro.PolicyLJ} {
		mean, max := run(kind)
		fmt.Printf("  %-7s backlog: mean %5.2f quanta, worst %5.2f quanta\n", kind, mean, max)
	}
	fmt.Println()
	fmt.Println("Fine-grained enactment keeps the control loop tight; under leave/join")
	fmt.Println("every burst outruns the old window before the new share lands.")
}
