// Schemes: the trade-off matrix of the paper's concluding remarks — the
// same adaptive Whisper workload under four approaches:
//
//   - PD²-OI: fine-grained Pfair reweighting (the paper's contribution):
//     best accuracy, no misses, but frequent migrations;
//   - PD²-LJ: leave/join Pfair reweighting: correct but coarse-grained;
//   - global EDF: reacts quickly and migrates rarely, but fine-grained
//     reweighting is only possible because deadline misses (tardiness) are
//     permissible;
//   - partitioned EDF: no migrations at all, but weight increases that do
//     not fit on a processor must repartition or be rejected — fine-grained
//     reweighting under partitioning is provably impossible.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	p := repro.DefaultWhisperParams()
	p.Speed = 2.9
	table, err := repro.SchemeComparison(p, repro.Options{Runs: 10, BaseSeed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(table.Title)
	fmt.Println()
	fmt.Printf("%-8s %12s %10s %10s %8s %8s %9s\n",
		"scheme", "% of ideal", "worst task", "max dev", "moves", "tardy", "misses")
	for _, r := range table.Rows {
		fmt.Printf("%-8s %11.2f%% %9.2f%% %10.2f %8.1f %8.1f %9d\n",
			r.Scheme.String(), r.PctIdeal.Mean*100, r.MinPct*100, r.MaxDev.Mean,
			r.Moves.Mean, r.TardyJobs.Mean, r.Misses)
	}
	fmt.Println()
	fmt.Println("moves = migrations (global schemes) or repartitioning moves (PEDF);")
	fmt.Println("tardy = jobs completing after their deadline (EDF only; Pfair never misses).")
}
