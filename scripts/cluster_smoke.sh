#!/usr/bin/env bash
# Cluster smoke (`make cluster-smoke`, the CI cluster gate): a
# race-instrumented 3-node pd2d cluster behind a pd2cluster coordinator
# must deliver routed load exactly, survive a live shard migration
# under load and a kill -9 primary failover without losing an acked
# command, and end with every shard's digest matching a fresh replay of
# its log (pd2load -verify). See docs/CLUSTER.md.
set -euo pipefail

cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
pids=()
cleanup() {
  for p in "${pids[@]:-}"; do kill -9 "$p" 2>/dev/null || true; done
  rm -rf "$tmp"
}
trap cleanup EXIT

port="${PD2_CLUSTER_SMOKE_PORT:-8460}"
coord="127.0.0.1:$port"
n1="127.0.0.1:$((port + 1))"
n2="127.0.0.1:$((port + 2))"
n3="127.0.0.1:$((port + 3))"

echo "cluster-smoke: building race-instrumented pd2d, pd2cluster, pd2load"
go build -race -o "$tmp/pd2d" ./cmd/pd2d
go build -race -o "$tmp/pd2cluster" ./cmd/pd2cluster
go build -race -o "$tmp/pd2load" ./cmd/pd2load

echo "cluster-smoke: starting coordinator on $coord (4 shards, 1 replica, placing at 3 nodes)"
"$tmp/pd2cluster" -addr "$coord" -shards 4 -replicas 1 -min-nodes 3 \
  -heartbeat 250ms -heartbeat-misses 2 >"$tmp/coord.log" 2>&1 &
pids+=($!)

declare -A node_pid
for node in n1 n2 n3; do
  addr_var="$node"
  addr="${!addr_var}"
  "$tmp/pd2d" -addr "$addr" -shards 4 -m 2 \
    -cluster-coordinator "http://$coord" -cluster-id "$node" \
    -cluster-anti-entropy 250ms >"$tmp/$node.log" 2>&1 &
  node_pid[$node]=$!
  pids+=("${node_pid[$node]}")
done

# The coordinator defers placement until all three nodes register.
route() { curl -fsS "http://$coord/v1/cluster/route" 2>/dev/null; }
for i in $(seq 1 100); do
  if route >/dev/null; then break; fi
  if [ "$i" -eq 100 ]; then
    echo "cluster-smoke: no routing table after 10s" >&2
    sed 's/^/coord: /' "$tmp/coord.log" >&2 || true
    exit 1
  fi
  sleep 0.1
done
echo "cluster-smoke: routing table placed: $(route)"

# primary_of N: the node id currently primary for shard N.
primary_of() { route | sed -n "s/.*\"shard\":$1,\"primary\":\"\\([^\"]*\\)\".*/\\1/p"; }

echo "cluster-smoke: driving 3000 commands through the router (strict)"
"$tmp/pd2load" -route "http://$coord" -shards 4 -workers 3 \
  -requests 3000 -batch 8 -tasks 16 -advance-every 32 -strict \
  | tee "$tmp/load1.out"
grep -q "^pd2load: 3000 commands " "$tmp/load1.out" || {
  echo "cluster-smoke: routed run did not deliver exactly 3000 commands" >&2
  exit 1
}

# Live migration under load: move shard 1 to a node that is not its
# primary while a second strict run is in flight. The writes queued at
# the old primary must drain to the new one; the run stays exact.
src="$(primary_of 1)"
dst=""
for node in n1 n2 n3; do
  if [ "$node" != "$src" ]; then dst="$node"; break; fi
done
echo "cluster-smoke: migrating shard 1 from $src to $dst under load"
"$tmp/pd2load" -route "http://$coord" -shards 4 -workers 3 \
  -requests 2000 -batch 8 -tasks 16 -advance-every 32 -prefix M -strict \
  >"$tmp/load2.out" 2>&1 &
load_pid=$!
sleep 0.3
curl -fsS -X POST "http://$coord/v1/cluster/migrate" \
  -d "{\"shard\":1,\"to\":\"$dst\"}" >"$tmp/migrate.out"
echo "cluster-smoke: migration reply: $(cat "$tmp/migrate.out")"
wait "$load_pid" || {
  echo "cluster-smoke: load under migration failed" >&2
  sed 's/^/load2: /' "$tmp/load2.out" >&2
  exit 1
}
grep -q "^pd2load: 2000 commands " "$tmp/load2.out" || {
  echo "cluster-smoke: run under migration did not deliver exactly 2000 commands" >&2
  sed 's/^/load2: /' "$tmp/load2.out" >&2
  exit 1
}
[ "$(primary_of 1)" = "$dst" ] || {
  echo "cluster-smoke: routing table still maps shard 1 to $(primary_of 1), want $dst" >&2
  exit 1
}

echo "cluster-smoke: verifying every shard digest against a fresh replay"
"$tmp/pd2load" -route "http://$coord" -shards 4 -verify | tee "$tmp/verify1.out"
[ "$(grep -c ": MATCH$" "$tmp/verify1.out")" -eq 4 ] || {
  echo "cluster-smoke: digest verification after migration failed" >&2
  exit 1
}

# Failover: kill -9 the primary of shard 0 and wait for the coordinator
# to promote a follower and publish a table that no longer routes to it.
victim="$(primary_of 0)"
echo "cluster-smoke: kill -9 $victim (primary of shard 0)"
kill -9 "${node_pid[$victim]}"
for i in $(seq 1 100); do
  if ! route | grep -q "\"primary\":\"$victim\""; then break; fi
  if [ "$i" -eq 100 ]; then
    echo "cluster-smoke: $victim still in the routing table 10s after its death" >&2
    exit 1
  fi
  sleep 0.1
done
echo "cluster-smoke: failed over: $(route)"

echo "cluster-smoke: driving 2000 commands through the post-failover cluster (strict)"
"$tmp/pd2load" -route "http://$coord" -shards 4 -workers 3 \
  -requests 2000 -batch 8 -tasks 16 -advance-every 32 -prefix F -strict \
  | tee "$tmp/load3.out"
grep -q "^pd2load: 2000 commands " "$tmp/load3.out" || {
  echo "cluster-smoke: post-failover run did not deliver exactly 2000 commands" >&2
  exit 1
}
# Explicit zero-failed-applies assertion on every shard's audit line
# (strict already requires it; this keeps the guarantee greppable).
[ "$(grep -c "failed=0" "$tmp/load3.out")" -eq 4 ] || {
  echo "cluster-smoke: a shard reported failed applies" >&2
  exit 1
}

echo "cluster-smoke: final digest verification"
"$tmp/pd2load" -route "http://$coord" -shards 4 -verify | tee "$tmp/verify2.out"
[ "$(grep -c ": MATCH$" "$tmp/verify2.out")" -eq 4 ] || {
  echo "cluster-smoke: final digest verification failed" >&2
  exit 1
}

echo "cluster-smoke: OK"
