#!/usr/bin/env bash
# Workgen smoke (`make workgen-smoke`, the CI trace gate): drive a
# pathological template through a race-instrumented pd2d, record the
# applied command stream as a trace, then replay the trace against a
# fresh daemon and require byte-identical per-shard state digests.
# Along the way the anomaly counters must prove graceful degradation:
# the camp run draws rejections while failed applies stay zero.
set -euo pipefail

cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
daemon_pid=""
cleanup() {
  if [ -n "$daemon_pid" ]; then kill "$daemon_pid" 2>/dev/null || true; fi
  rm -rf "$tmp"
}
trap cleanup EXIT

addr="127.0.0.1:${PD2D_SMOKE_PORT:-8400}"

echo "workgen-smoke: building race-instrumented pd2d and pd2load"
go build -race -o "$tmp/pd2d" ./cmd/pd2d
go build -race -o "$tmp/pd2load" ./cmd/pd2load

wait_healthy() {
  for _ in $(seq 1 100); do
    if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "workgen-smoke: daemon on $addr never became healthy" >&2
  sed 's/^/pd2d: /' "$1" >&2 || true
  return 1
}

echo "workgen-smoke: starting pd2d (2 shards, M=2, drift bound 1/1024) on $addr"
"$tmp/pd2d" -addr "$addr" -shards 2 -m 2 -drift-bound 1/1024 >"$tmp/pd2d.log" 2>&1 &
daemon_pid=$!
wait_healthy "$tmp/pd2d.log"

# Admission camping: the shard is filled to M - 1/64 and then flooded
# with fitting-looking joins. -strict here asserts graceful degradation
# (zero failed applies, zero violations) while the 409s flow; -record
# captures the applied log for the replay differential below.
echo "workgen-smoke: admission-camp template, 1200 commands, recording trace"
"$tmp/pd2load" -addr "http://$addr" -shards 2 -workers 2 \
  -requests 1200 -batch 8 -advance-every 16 \
  -template admission-camp -record "$tmp/camp.trace" -strict \
  | tee "$tmp/camp.out"
grep -q "graceful degradation" "$tmp/camp.out" || {
  echo "workgen-smoke: camp run did not pass the strict degradation audit" >&2
  exit 1
}
grep -q "rejected" "$tmp/camp.out" || {
  echo "workgen-smoke: camp run output lost its stats line" >&2
  exit 1
}
# The camp must actually bounce joins: a zero rejection count means the
# template never hit the admission wall.
rejected="$(sed -n 's/^pd2load: [0-9]* commands in .*posts, [0-9]* retries, \([0-9]*\) rejected.*/\1/p' "$tmp/camp.out")"
if [ -z "$rejected" ] || [ "$rejected" -eq 0 ]; then
  echo "workgen-smoke: camp run drew no rejections (rejected=${rejected:-unset})" >&2
  exit 1
fi
[ -s "$tmp/camp.trace" ] || {
  echo "workgen-smoke: no trace recorded" >&2
  exit 1
}

# The anomaly counters must have fired server-side.
curl -fsS "http://$addr/metrics" >"$tmp/metrics.out"
grep -q 'pd2d_anomaly_reject_spikes_total{shard="0"} [1-9]' "$tmp/metrics.out" || {
  echo "workgen-smoke: reject-spike anomaly counter never fired" >&2
  grep pd2d_anomaly "$tmp/metrics.out" >&2 || true
  exit 1
}

echo "workgen-smoke: stopping the recorded daemon"
kill -TERM "$daemon_pid"
wait "$daemon_pid"
daemon_pid=""

echo "workgen-smoke: replaying the trace against a fresh daemon"
"$tmp/pd2d" -addr "$addr" -shards 2 -m 2 >"$tmp/pd2d-replay.log" 2>&1 &
daemon_pid=$!
wait_healthy "$tmp/pd2d-replay.log"

"$tmp/pd2load" -addr "http://$addr" -replay "$tmp/camp.trace" | tee "$tmp/replay.out"
grep -q "replay verified 2 shard(s) byte-identical" "$tmp/replay.out" || {
  echo "workgen-smoke: replay did not verify both shards" >&2
  exit 1
}

# A phase-modulated shape run proves the shape path end to end too.
# The replayed daemon is camped at M - 1/64 per shard, so the shape
# anchors need a fresh daemon of their own.
echo "workgen-smoke: restarting for the shape run"
kill -TERM "$daemon_pid"
wait "$daemon_pid"
daemon_pid=""
"$tmp/pd2d" -addr "$addr" -shards 2 -m 2 >"$tmp/pd2d-shape.log" 2>&1 &
daemon_pid=$!
wait_healthy "$tmp/pd2d-shape.log"

echo "workgen-smoke: flash-crowd shape, 1500 commands (strict)"
"$tmp/pd2load" -addr "http://$addr" -shards 2 -workers 2 \
  -requests 1500 -batch 8 -tasks 8 -advance-every 16 \
  -shape flash-crowd -prefix W -strict \
  | tee "$tmp/shape.out"
grep -q "strict checks passed" "$tmp/shape.out" || {
  echo "workgen-smoke: shape run failed its strict audit" >&2
  exit 1
}

kill -TERM "$daemon_pid"
wait "$daemon_pid"
daemon_pid=""

echo "workgen-smoke: OK"
