#!/usr/bin/env bash
# Serve-layer smoke (`make serve-smoke`, the CI serve gate): a
# race-instrumented pd2d hosting four shards must stay admission-clean
# under a few thousand closed-loop pd2load commands, drain and snapshot
# cleanly on SIGTERM, and restore those snapshots on restart.
set -euo pipefail

cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
daemon_pid=""
cleanup() {
  if [ -n "$daemon_pid" ]; then kill "$daemon_pid" 2>/dev/null || true; fi
  rm -rf "$tmp"
}
trap cleanup EXIT

addr="127.0.0.1:${PD2D_SMOKE_PORT:-8399}"

echo "serve-smoke: building race-instrumented pd2d and pd2load"
go build -race -o "$tmp/pd2d" ./cmd/pd2d
go build -race -o "$tmp/pd2load" ./cmd/pd2load

wait_healthy() {
  for _ in $(seq 1 100); do
    if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "serve-smoke: daemon on $addr never became healthy" >&2
  sed 's/^/pd2d: /' "$1" >&2 || true
  return 1
}

echo "serve-smoke: starting pd2d (4 shards, M=2) on $addr"
"$tmp/pd2d" -addr "$addr" -shards 4 -m 2 -snapshot-dir "$tmp/snap" >"$tmp/pd2d.log" 2>&1 &
daemon_pid=$!
wait_healthy "$tmp/pd2d.log"

# Three workers deliberately do not divide 4000: the remainder split
# plus the exact-count assertion below guard the delivered-command
# accounting end to end.
echo "serve-smoke: driving 4000 commands through 3 workers (strict)"
"$tmp/pd2load" -addr "http://$addr" -shards 4 -workers 3 \
  -requests 4000 -batch 8 -tasks 16 -advance-every 32 -strict \
  | tee "$tmp/load1.out"
grep -q "^pd2load: 4000 commands " "$tmp/load1.out" || {
  echo "serve-smoke: first run did not deliver exactly 4000 commands" >&2
  exit 1
}

echo "serve-smoke: SIGTERM drain"
kill -TERM "$daemon_pid"
wait "$daemon_pid" # a non-zero daemon exit fails the smoke
daemon_pid=""
grep -q "clean shutdown" "$tmp/pd2d.log" || {
  echo "serve-smoke: daemon log records no clean shutdown" >&2
  sed 's/^/pd2d: /' "$tmp/pd2d.log" >&2
  exit 1
}
for s in 0 1 2 3; do
  [ -s "$tmp/snap/shard-$s.json" ] || {
    echo "serve-smoke: missing snapshot for shard $s" >&2
    exit 1
  }
done

echo "serve-smoke: restarting from snapshots"
"$tmp/pd2d" -addr "$addr" -shards 4 -m 2 -snapshot-dir "$tmp/snap" >"$tmp/pd2d-restart.log" 2>&1 &
daemon_pid=$!
wait_healthy "$tmp/pd2d-restart.log"

# The restored shard clock must carry over from the first run.
now="$(curl -fsS "http://$addr/v1/shards/0" | sed -n 's/.*"now":\([0-9][0-9]*\).*/\1/p')"
if [ -z "$now" ] || [ "$now" -le 0 ]; then
  echo "serve-smoke: shard 0 clock not restored (now=${now:-unset})" >&2
  exit 1
fi

# A second strict load run against the restored daemon (fresh task-name
# prefix: shard names are never reusable) proves the restored books
# still admit cleanly.
"$tmp/pd2load" -addr "http://$addr" -shards 4 -workers 4 \
  -requests 2000 -batch 8 -tasks 16 -advance-every 32 -prefix R -strict \
  | tee "$tmp/load2.out"
grep -q "^pd2load: 2000 commands " "$tmp/load2.out" || {
  echo "serve-smoke: restored-daemon run did not deliver exactly 2000 commands" >&2
  exit 1
}

kill -TERM "$daemon_pid"
wait "$daemon_pid"
daemon_pid=""
grep -q "clean shutdown" "$tmp/pd2d-restart.log"

echo "serve-smoke: OK"
