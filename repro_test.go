package repro

import (
	"strings"
	"testing"
)

// TestQuickstartFlow drives the public API end to end the way the README's
// quickstart does.
func TestQuickstartFlow(t *testing.T) {
	sys := System{M: 2, Tasks: []Spec{
		{Name: "video", Weight: NewRat(1, 3)},
		{Name: "audio", Weight: NewRat(1, 10)},
		Periodic("control", 1, 4),
	}}
	s, err := NewScheduler(Config{M: 2, Policy: PolicyOI, Police: true, RecordSchedule: true}, sys)
	if err != nil {
		t.Fatal(err)
	}
	s.RunTo(60)
	if err := s.Initiate("video", NewRat(1, 2)); err != nil {
		t.Fatal(err)
	}
	s.RunTo(120)
	m, ok := s.Metrics("video")
	if !ok {
		t.Fatal("no metrics for video")
	}
	if !m.SchedWeight.Eq(NewRat(1, 2)) {
		t.Errorf("video swt = %s, want 1/2", m.SchedWeight)
	}
	if len(s.Misses()) != 0 {
		t.Errorf("misses: %v", s.Misses())
	}
	// 60 slots at 1/3 plus ~60 at 1/2 is about 50 quanta.
	if m.Scheduled < 45 || m.Scheduled > 55 {
		t.Errorf("video got %d quanta, want ~50", m.Scheduled)
	}
	g := Gantt(s, 0, 40)
	if !strings.Contains(g, "video") || !strings.Contains(g, "#") {
		t.Errorf("gantt malformed:\n%s", g)
	}
}

// TestWhisperThroughFacade runs one Whisper scenario via the facade.
func TestWhisperThroughFacade(t *testing.T) {
	p := DefaultWhisperParams()
	p.Speed = 2.0
	res, err := RunWhisper(p, PolicyOI, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses != 0 {
		t.Errorf("misses: %d", res.Misses)
	}
	if res.PctIdeal < 0.9 {
		t.Errorf("OI pct of ideal = %.4f", res.PctIdeal)
	}
	if res.Initiations == 0 || res.Enactments == 0 {
		t.Errorf("no reweighting activity: %+v", res)
	}
}

func TestRatHelpers(t *testing.T) {
	r, err := ParseRat("3/19")
	if err != nil || !r.Eq(NewRat(3, 19)) {
		t.Fatalf("ParseRat: %v %v", r, err)
	}
	if _, err := ParseRat("x"); err == nil {
		t.Error("bad rational accepted")
	}
}

func TestWindowsDiagramFacade(t *testing.T) {
	out := WindowsDiagram("5/16", 5)
	if !strings.Contains(out, "r=3 d=7 b=1") {
		t.Errorf("diagram wrong:\n%s", out)
	}
}

func TestReplicateFacade(t *testing.T) {
	specs := Replicate(19, Spec{Name: "C", Weight: NewRat(3, 20), Group: "C"})
	if len(specs) != 19 || specs[18].Name != "C#18" {
		t.Errorf("replicate wrong: %d %s", len(specs), specs[len(specs)-1].Name)
	}
}

// TestEPDFPSFacade spot-checks the counterexample scheduler via the facade.
func TestEPDFPSFacade(t *testing.T) {
	e := NewEPDFPS(1)
	if err := e.Join("a", NewRat(1, 2)); err != nil {
		t.Fatal(err)
	}
	e.RunTo(10, nil)
	if got := e.Scheduled("a"); got != 5 {
		t.Errorf("a completed %d quanta in 10 slots at weight 1/2, want 5", got)
	}
	if len(e.Misses()) != 0 {
		t.Errorf("misses: %v", e.Misses())
	}
}

// TestAllFiguresThroughFacade drives every figure generator and the
// cross-scheme comparison through the public API with single-run sweeps,
// verifying they produce well-formed, non-empty artifacts.
func TestAllFiguresThroughFacade(t *testing.T) {
	o := Options{Runs: 1, BaseSeed: 5}
	a, b, err := Fig11AB(o)
	if err != nil {
		t.Fatal(err)
	}
	c, d, err := Fig11CD(o)
	if err != nil {
		t.Fatal(err)
	}
	h, err := HybridAblation(o)
	if err != nil {
		t.Fatal(err)
	}
	g, err := GammaAblation(o)
	if err != nil {
		t.Fatal(err)
	}
	ov, err := OverheadTradeoff(o)
	if err != nil {
		t.Fatal(err)
	}
	bu, err := BurstyComparison(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, fig := range []Figure{a, b, c, d, h, g, ov, bu} {
		if len(fig.Series) == 0 || len(fig.Series[0].X) == 0 {
			t.Errorf("figure %s empty", fig.ID)
		}
		if !strings.Contains(fig.TSV(), fig.ID) {
			t.Errorf("figure %s TSV malformed", fig.ID)
		}
	}

	p := DefaultWhisperParams()
	table, err := SchemeComparison(p, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 4 {
		t.Errorf("scheme rows = %d", len(table.Rows))
	}
	if _, err := table.JSON(); err != nil {
		t.Errorf("scheme JSON: %v", err)
	}

	cell, err := RunCell(p, PolicyHybrid, ThresholdChooser(0.05), DefaultOptionsWith(2))
	if err != nil {
		t.Fatal(err)
	}
	if cell.Misses != 0 {
		t.Errorf("misses: %d", cell.Misses)
	}

	if _, err := RunWhisperEDF(p, true); err != nil {
		t.Fatal(err)
	}
	e := NewPartitionedEDF(2)
	if err := e.Join("x", NewRat(1, 3)); err != nil {
		t.Fatal(err)
	}
	e.RunTo(10, nil)

	sim, err := NewWhisper(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(sim.Pairs()) != 12 {
		t.Errorf("pairs = %d", len(sim.Pairs()))
	}

	// Rendering helpers.
	tie := FavorGroup("G")
	if tie("a", "G", "b", "") >= 0 {
		t.Error("FavorGroup wrong")
	}
	chart := Chart("t", 4, []float64{1, 2}, map[string][]float64{"s": {1, 2}})
	if !strings.Contains(chart, "s") {
		t.Error("chart empty")
	}
}

// DefaultOptionsWith returns the paper's options with a custom run count.
func DefaultOptionsWith(runs int) Options {
	o := DefaultOptions()
	o.Runs = runs
	return o
}

// TestFacadeGanttGroupedAndAllocTable covers the grouped renderers.
func TestFacadeGanttGroupedAndAllocTable(t *testing.T) {
	sys := System{M: 1, Tasks: []Spec{{Name: "X", Weight: NewRat(3, 19)}}}
	s, err := NewScheduler(Config{M: 1, Policy: PolicyOI, Police: true,
		RecordSchedule: true, RecordSubtasks: true}, sys)
	if err != nil {
		t.Fatal(err)
	}
	s.RunTo(8)
	if err := s.Initiate("X", NewRat(2, 5)); err != nil {
		t.Fatal(err)
	}
	s.RunTo(16)
	if out := AllocTable(s, "X", 0, 14); !strings.Contains(out, "32/95") {
		t.Errorf("alloc table missing the Fig. 7 value:\n%s", out)
	}
	if out := GanttGrouped(s, func(string) string { return "all" }, 0, 10); !strings.Contains(out, "all") {
		t.Errorf("grouped gantt malformed:\n%s", out)
	}
}

// TestWorkloadThroughFacade runs the bursty generator via the facade.
func TestWorkloadThroughFacade(t *testing.T) {
	p := DefaultWorkloadParams()
	p.Horizon = 300
	gen, err := NewWorkload(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunWorkload(gen, p.M, p.Horizon, WhisperRunConfig{Kind: PolicyOI})
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses != 0 {
		t.Errorf("misses: %d", res.Misses)
	}
}
