# Reproduction build targets. Everything is stdlib-only Go; no network.

GO ?= go

.PHONY: all build test test-race bench bench-json bench-check lint-bench serve-smoke workgen-smoke cluster-smoke figures demos lint check clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Per-figure benchmark harness (reduced run counts; see cmd/reprofigs for
# the full protocol).
bench:
	$(GO) test -bench=. -benchmem -run XXX ./...

# Refresh BENCH_core.json with the scheduler, wire, cluster, and lint
# numbers. The file's committed baseline_ns_per_op section (the
# pre-event-engine per-slot loop) is preserved; only current_ns_per_op
# and the speedups are rewritten — every benchmark the file carries must
# therefore be piped in here, or a refresh would drop it.
bench-json:
	{ $(GO) test -bench 'SchedulerSlot|ReweightStorm' -benchtime=1s -run XXX . ; \
	  $(GO) test -bench WirePath -benchtime=1s -run XXX ./internal/serve ; \
	  $(GO) test -bench ClusterMigration -benchtime=1s -run XXX ./internal/cluster ; \
	  $(GO) test -bench 'LintModule|CFGBuild' -benchtime=3x -run XXX ./internal/analysis ; } \
		| $(GO) run ./cmd/benchjson -out BENCH_core.json

# Perf regression gate: rerun the hot-path benchmarks and fail if any is
# more than 25% slower than the committed BENCH_core.json numbers. Never
# writes the file.
bench-check:
	{ $(GO) test -bench 'SchedulerSlot|ReweightStorm' -benchtime=1s -run XXX . ; \
	  $(GO) test -bench WirePath -benchtime=1s -run XXX ./internal/serve ; } \
		| $(GO) run ./cmd/benchjson -check -out BENCH_core.json

# Lint-suite perf gate: one warm full-module pd2lint pass (load,
# typecheck, all 13 checks, interprocedural call graph and per-function
# CFGs included) must stay within 50% of the committed LintModule ns/op
# in BENCH_core.json, and a fresh CFG construction pass over every
# module function (CFGBuild) within 50% of its committed number.
# 3 iterations so the process-wide stdlib import cache is warm — the
# load-once architecture is exactly what this benchmark guards. The
# wider margin (vs bench-check's 25%) absorbs the higher variance of a
# full-module load. Never writes the file.
lint-bench:
	$(GO) test -bench 'LintModule|CFGBuild' -benchtime=3x -run XXX ./internal/analysis \
		| $(GO) run ./cmd/benchjson -check -max-regress 50 -out BENCH_core.json

# Serve-layer smoke: race-instrumented pd2d + pd2load closed loop,
# SIGTERM drain, snapshot, restore (scripts/serve_smoke.sh; the CI gate).
serve-smoke:
	./scripts/serve_smoke.sh

# Workload-generator smoke: pathological template -> record -> replay
# digest compare against race-instrumented binaries (the CI trace gate).
workgen-smoke:
	./scripts/workgen_smoke.sh

# Cluster smoke: race-instrumented 3-node pd2d cluster + pd2cluster
# coordinator; routed load, a live migration under load, a kill -9
# primary failover, and a full digest verification of every shard
# (scripts/cluster_smoke.sh; the CI cluster gate).
cluster-smoke:
	./scripts/cluster_smoke.sh

# Regenerate every evaluation artifact with the paper's 61-run protocol.
figures:
	$(GO) run ./cmd/reprofigs -runs 61 -out out

# Render the paper's worked examples (Figs. 1-9) to the terminal.
demos:
	$(GO) run ./cmd/pd2trace

# Invariant checks (all thirteen: the AST pattern checks, the dataflow
# checks poolescape/heapkey/gocapture/eventexhaust, the interprocedural
# checks hotalloc/detflow/lockorder, and the CFG flow-sensitive check
# ownxfer — see docs/LINT.md). Strict mode also flags stale
# //lint:allow directives so the allowlist cannot rot.
lint:
	$(GO) run ./cmd/pd2lint -strict-suppress ./...

check: build lint
	$(GO) vet ./...
	gofmt -l . | (! grep .) || (echo "gofmt needed" && exit 1)
	$(GO) test ./...

clean:
	rm -rf out test_output.txt bench_output.txt
