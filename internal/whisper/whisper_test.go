package whisper

import (
	"math"
	"testing"

	"repro/internal/frac"
	"repro/internal/model"
)

func TestSegmentIntersectsCircle(t *testing.T) {
	origin := Point{0, 0}
	cases := []struct {
		a, b Point
		r    float64
		want bool
	}{
		// Segment straight through the center.
		{Point{-1, 0}, Point{1, 0}, 0.1, true},
		// Segment passing above the circle.
		{Point{-1, 0.2}, Point{1, 0.2}, 0.1, false},
		// Segment grazing the circle boundary.
		{Point{-1, 0.1}, Point{1, 0.1}, 0.1, true},
		// Segment ending before reaching the circle.
		{Point{-1, 0}, Point{-0.5, 0}, 0.1, false},
		// Segment starting inside the circle.
		{Point{0.05, 0}, Point{1, 0}, 0.1, true},
		// Degenerate segment (point) inside / outside.
		{Point{0.01, 0}, Point{0.01, 0}, 0.1, true},
		{Point{0.5, 0.5}, Point{0.5, 0.5}, 0.1, false},
		// Diagonal corner-to-corner line through the center pole.
		{Point{-0.5, -0.5}, Point{0.5, 0.5}, 0.025, true},
		// Diagonal that misses the pole.
		{Point{-0.5, -0.5}, Point{0.5, -0.4}, 0.025, false},
	}
	for i, c := range cases {
		if got := SegmentIntersectsCircle(c.a, c.b, origin, c.r); got != c.want {
			t.Errorf("case %d: got %v, want %v", i, got, c.want)
		}
	}
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	mutations := []func(*Params){
		func(p *Params) { p.Speakers = 0 },
		func(p *Params) { p.RoomSize = 0 },
		func(p *Params) { p.Radius = 0.6 },  // outside the room
		func(p *Params) { p.Radius = 0.01 }, // inside the pole
		func(p *Params) { p.Horizon = 0 },
		func(p *Params) { p.QuantumSec = 0 },
		func(p *Params) { p.Alpha = 0 },
		func(p *Params) { p.OccFactor = 0.5 },
		func(p *Params) { p.Bucket = 0 },
		func(p *Params) { p.WMin = frac.Zero },
		func(p *Params) { p.WMax = frac.New(2, 3) },
		func(p *Params) { p.WMax = frac.New(1, 100); p.WMin = frac.New(1, 10) },
	}
	for i, mut := range mutations {
		p := DefaultParams()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestMicsAtCorners(t *testing.T) {
	p := DefaultParams()
	mics := p.Mics()
	if len(mics) != 4 {
		t.Fatalf("mics = %d", len(mics))
	}
	for _, m := range mics {
		if math.Abs(m.X) != 0.5 || math.Abs(m.Y) != 0.5 {
			t.Errorf("mic not at a corner: %+v", m)
		}
	}
}

func TestSimulationSetup(t *testing.T) {
	sim, err := NewSimulation(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	specs := sim.TaskSpecs()
	if len(specs) != 12 {
		t.Fatalf("tasks = %d, want 3 speakers x 4 mics = 12", len(specs))
	}
	sys := model.System{M: 4, Tasks: specs}
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	if !sim.TotalInitialWeight().LessEq(frac.FromInt(4)) {
		t.Errorf("initial weight %s exceeds 4 processors", sim.TotalInitialWeight())
	}
	for _, spec := range specs {
		p := DefaultParams()
		if spec.Weight.Less(p.WMin) || p.WMax.Less(spec.Weight) {
			t.Errorf("task %s weight %s outside [%s, %s]", spec.Name, spec.Weight, p.WMin, p.WMax)
		}
	}
}

func TestSpeakerKinematics(t *testing.T) {
	p := DefaultParams()
	p.Speed = 1.0
	p.Radius = 0.25
	sim, err := NewSimulation(p)
	if err != nil {
		t.Fatal(err)
	}
	// Speakers stay on the orbit circle.
	for _, tt := range []model.Time{0, 100, 500, 999} {
		for i := 0; i < p.Speakers; i++ {
			pos := sim.SpeakerPos(i, tt)
			if r := Dist(pos, Point{0, 0}); math.Abs(r-p.Radius) > 1e-9 {
				t.Errorf("speaker %d at t=%d off orbit: r=%v", i, tt, r)
			}
		}
	}
	// Arc length per quantum equals speed*quantum.
	a, b := sim.SpeakerPos(0, 0), sim.SpeakerPos(0, 1)
	chord := Dist(a, b)
	want := p.Speed * p.QuantumSec
	if math.Abs(chord-want) > want*0.01 {
		t.Errorf("per-quantum chord = %v, want ~%v", chord, want)
	}
}

func TestWeightMonotoneInDistance(t *testing.T) {
	sim, err := NewSimulation(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	prev := frac.Zero
	for d := 0.1; d <= 2.0; d += 0.05 {
		w := sim.WeightFor(d)
		if w.Less(prev) {
			t.Fatalf("weight decreased with distance at d=%v: %s < %s", d, w, prev)
		}
		prev = w
	}
	// Bucket quantization: weights within a bucket are identical.
	if !sim.WeightFor(0.601).Eq(sim.WeightFor(0.649)) {
		t.Error("weights differ within one 5cm bucket")
	}
	if sim.WeightFor(0.601).Eq(sim.WeightFor(0.651)) {
		t.Error("weights equal across buckets (cost model too flat to exercise reweighting)")
	}
	// The model spans roughly two orders of magnitude, as the paper reports
	// for Whisper's correlation costs.
	lo, hi := sim.WeightFor(0.46), sim.WeightFor(1.91)
	if ratio := hi.Float64() / lo.Float64(); ratio < 30 {
		t.Errorf("weight dynamic range %.1fx too narrow (lo=%s hi=%s)", ratio, lo, hi)
	}
}

func TestStepRequestsFireOnBucketCrossings(t *testing.T) {
	p := DefaultParams()
	p.Speed = 3.0
	sim, err := NewSimulation(p)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for tt := model.Time(1); tt < p.Horizon; tt++ {
		reqs := sim.StepRequests(tt)
		total += len(reqs)
		for _, r := range reqs {
			if r.Weight.Less(p.WMin) || p.WMax.Less(r.Weight) {
				t.Fatalf("request weight %s out of bounds", r.Weight)
			}
		}
	}
	// At 3 m/s a speaker crosses a 5cm boundary every ~17ms per pair; with
	// 12 pairs over 1000ms there must be hundreds of requests.
	if total < 200 {
		t.Errorf("only %d weight-change requests at 3 m/s; cost model too static", total)
	}
	// Re-running from a fresh simulation with the same seed reproduces the
	// exact request stream.
	sim2, _ := NewSimulation(p)
	for tt := model.Time(1); tt < 50; tt++ {
		a, b := len(sim.StepRequests(tt)), len(sim2.StepRequests(tt))
		_ = a
		_ = b
	}
}

func TestOcclusionMattersAtSmallRadius(t *testing.T) {
	p := DefaultParams()
	p.Radius = 0.10
	sim, err := NewSimulation(p)
	if err != nil {
		t.Fatal(err)
	}
	occluded := 0
	for tt := model.Time(0); tt < p.Horizon; tt++ {
		for i := 0; i < p.Speakers; i++ {
			for m := 0; m < 4; m++ {
				if sim.Occluded(i, m, tt) {
					occluded++
				}
			}
		}
	}
	if occluded == 0 {
		t.Error("pole never occludes at 10cm radius; geometry is wrong")
	}
	// With the pole disabled there are no occlusions.
	p.Occlusion = false
	sim2, _ := NewSimulation(p)
	for tt := model.Time(0); tt < 100; tt++ {
		for i := 0; i < p.Speakers; i++ {
			for m := 0; m < 4; m++ {
				if sim2.Occluded(i, m, tt) {
					t.Fatal("occlusion reported with pole disabled")
				}
			}
		}
	}
}

func TestSeedChangesPhases(t *testing.T) {
	p := DefaultParams()
	a, _ := NewSimulation(p)
	p.Seed = 2
	b, _ := NewSimulation(p)
	if Dist(a.SpeakerPos(0, 0), b.SpeakerPos(0, 0)) < 1e-9 {
		t.Error("different seeds produced identical placements")
	}
	p.Seed = 1
	c, _ := NewSimulation(p)
	if Dist(a.SpeakerPos(0, 0), c.SpeakerPos(0, 0)) > 1e-12 {
		t.Error("same seed produced different placements")
	}
}

func TestPairsNaming(t *testing.T) {
	sim, _ := NewSimulation(DefaultParams())
	names := sim.Pairs()
	if len(names) != 12 || names[0] != "S0M0" || names[11] != "S2M3" {
		t.Errorf("pair names wrong: %v", names)
	}
}
