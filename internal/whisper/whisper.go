// Package whisper simulates the workload of the Whisper acoustic tracking
// system that the paper uses as its evaluation application (Sec. 5).
//
// Whisper tracks speakers attached to users via microphones in the corners
// of a room: each speaker emits a unique white-noise signal, and the
// time-shift between the transmitted and received signal is found with a
// correlation computation. The amount of correlation work — and hence the
// processor share of the task handling a speaker/microphone pair — grows
// with the distance between the speaker and the microphone, and grows
// further when the line of sight is occluded by the pole in the middle of
// the room (an inaccurate prediction forces a larger search).
//
// This package reproduces the paper's simulation set-up and its simplifying
// assumptions: a 1m x 1m room with a microphone in each corner and a 5cm
// pole in the center; three speakers orbiting the pole at equal radius and
// constant speed with random initial phases; two-dimensional motion; no
// ambient noise or speaker interference; one task per speaker/microphone
// pair (12 tasks); omnidirectional speakers and microphones; and a task
// weight that changes only when the (occlusion-adjusted) speaker-microphone
// distance crosses a 5cm boundary.
//
// The paper derived its distance-to-weight map by timing the correlation
// kernel (an accumulate-and-multiply loop) on a 2.7GHz testbed. We use the
// analytic equivalent: weight proportional to the effective distance
// (doubled under occlusion, since the search space grows), quantized to a
// rational with denominator 1000 and clamped to [WMin, WMax] with
// WMax = 1/3, matching the paper's statement that Whisper needs task
// weights of at most 1/3. See DESIGN.md for the substitution rationale.
package whisper

import (
	"fmt"
	"math"

	"repro/internal/frac"
	"repro/internal/model"
	"repro/internal/stats"
)

// Point is a position in the room plane, in meters, with the pole at the
// origin.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between two points.
func Dist(a, b Point) float64 {
	return math.Hypot(a.X-b.X, a.Y-b.Y)
}

// SegmentIntersectsCircle reports whether the segment a-b passes within
// radius r of center c — the occlusion test for a speaker-microphone pair
// against the pole.
func SegmentIntersectsCircle(a, b, c Point, r float64) bool {
	// Project c onto the segment and clamp.
	abx, aby := b.X-a.X, b.Y-a.Y
	acx, acy := c.X-a.X, c.Y-a.Y
	len2 := abx*abx + aby*aby
	t := 0.0
	if len2 > 0 {
		t = (acx*abx + acy*aby) / len2
		if t < 0 {
			t = 0
		} else if t > 1 {
			t = 1
		}
	}
	closest := Point{a.X + t*abx, a.Y + t*aby}
	return Dist(closest, c) <= r
}

// Params configures a Whisper scenario.
type Params struct {
	Speakers   int     // number of tracked objects (paper: 3)
	RoomSize   float64 // room edge length in meters (paper: 1.0)
	PoleRadius float64 // occluding pole radius in meters (paper: 5cm pole)
	Radius     float64 // speaker orbit radius in meters (paper: 0.10-0.50)
	Speed      float64 // speaker speed in m/s (paper: 0.1-3.5)
	Occlusion  bool    // whether the pole occludes (paper compares both)
	Horizon    int64   // simulation length in quanta (paper: 1000)
	QuantumSec float64 // quantum length in seconds (paper: 1ms)

	// Cost model: weight = clamp(quantize(Alpha * effectiveDistance^Gamma)),
	// where effectiveDistance is scaled by OccFactor while the pair is
	// occluded. Gamma > 1 spreads the weights over the roughly two orders
	// of magnitude the paper reports for Whisper's correlation costs.
	Alpha     float64
	Gamma     float64
	OccFactor float64
	WMin      frac.Rat
	WMax      frac.Rat
	// Bucket is the effective-distance granularity at which weight changes
	// are issued (paper: 5cm).
	Bucket float64

	Seed uint64 // randomizes the speakers' initial phases
}

// DefaultParams returns the paper's configuration: 3 speakers in a 1m room
// with a 5cm-diameter pole, 25cm orbit radius, 1ms quantum, 1000 quanta,
// occlusion enabled, and a cost model calibrated so that task weights span
// roughly two orders of magnitude up to the paper's 1/3 cap.
func DefaultParams() Params {
	return Params{
		Speakers:   3,
		RoomSize:   1.0,
		PoleRadius: 0.025,
		Radius:     0.25,
		Speed:      1.0,
		Occlusion:  true,
		Horizon:    1000,
		QuantumSec: 0.001,
		Alpha:      0.05,
		Gamma:      3.0,
		OccFactor:  2.0,
		WMin:       frac.New(1, 250),
		WMax:       frac.New(1, 3),
		Bucket:     0.05,
		Seed:       1,
	}
}

// Validate checks the parameters for consistency.
func (p Params) Validate() error {
	switch {
	case p.Speakers < 1:
		return fmt.Errorf("whisper: need at least one speaker")
	case p.RoomSize <= 0 || p.Radius <= 0 || p.Speed < 0:
		return fmt.Errorf("whisper: non-positive geometry")
	case p.Radius >= p.RoomSize/2:
		return fmt.Errorf("whisper: orbit radius %.2f does not fit in the room", p.Radius)
	case p.Radius <= p.PoleRadius:
		return fmt.Errorf("whisper: orbit radius %.2f inside the pole", p.Radius)
	case p.Horizon < 1 || p.QuantumSec <= 0:
		return fmt.Errorf("whisper: bad horizon/quantum")
	case p.Alpha <= 0 || p.Gamma < 1 || p.OccFactor < 1 || p.Bucket <= 0:
		return fmt.Errorf("whisper: bad cost model")
	case p.WMin.Sign() <= 0 || p.WMax.Less(p.WMin) || model.MaxLightWeight.Less(p.WMax):
		return fmt.Errorf("whisper: weight bounds must satisfy 0 < WMin <= WMax <= 1/2")
	}
	return nil
}

// Mics returns the microphone positions: one in each corner of the room.
func (p Params) Mics() []Point {
	h := p.RoomSize / 2
	return []Point{{-h, -h}, {-h, h}, {h, -h}, {h, h}}
}

// Simulation holds the kinematic state of one scenario and translates
// geometry into weight-change requests.
type Simulation struct {
	p      Params
	mics   []Point
	phases []float64 // initial angle per speaker
	omega  float64   // angular velocity, rad/s
	pairs  []*pair
}

// pair is one speaker/microphone task.
type pair struct {
	name    string
	speaker int
	mic     int
	bucket  int64 // last effective-distance bucket
	weight  frac.Rat
}

// NewSimulation builds a scenario, randomizing speaker phases from the
// seed. Speakers are placed at equal angular spacing plus a common random
// rotation (the paper places them "randomly around the pole, at an equal
// distance from the pole").
func NewSimulation(p Params) (*Simulation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := stats.NewStream(p.Seed, 0)
	s := &Simulation{
		p:     p,
		mics:  p.Mics(),
		omega: p.Speed / p.Radius,
	}
	for i := 0; i < p.Speakers; i++ {
		s.phases = append(s.phases, rng.Angle())
	}
	for sp := 0; sp < p.Speakers; sp++ {
		for mi := range s.mics {
			pr := &pair{
				name:    fmt.Sprintf("S%dM%d", sp, mi),
				speaker: sp,
				mic:     mi,
			}
			d := s.effectiveDistance(sp, mi, 0)
			pr.bucket = s.bucketOf(d)
			pr.weight = s.WeightFor(d)
			s.pairs = append(s.pairs, pr)
		}
	}
	return s, nil
}

// SpeakerPos returns speaker i's position at slot t.
func (s *Simulation) SpeakerPos(i int, t model.Time) Point {
	angle := s.phases[i] + s.omega*float64(t)*s.p.QuantumSec
	return Point{s.p.Radius * math.Cos(angle), s.p.Radius * math.Sin(angle)}
}

// Occluded reports whether the path from speaker i to microphone m is
// blocked by the pole at slot t.
func (s *Simulation) Occluded(i, m int, t model.Time) bool {
	if !s.p.Occlusion {
		return false
	}
	return SegmentIntersectsCircle(s.SpeakerPos(i, t), s.mics[m], Point{0, 0}, s.p.PoleRadius)
}

// effectiveDistance is the speaker-microphone distance, scaled by OccFactor
// while occluded (an occlusion widens the correlation search window).
func (s *Simulation) effectiveDistance(i, m int, t model.Time) float64 {
	d := Dist(s.SpeakerPos(i, t), s.mics[m])
	if s.Occluded(i, m, t) {
		d *= s.p.OccFactor
	}
	return d
}

func (s *Simulation) bucketOf(d float64) int64 {
	return int64(math.Floor(d / s.p.Bucket))
}

// WeightFor maps an effective distance to a task weight: proportional to
// the (bucket-quantized) distance raised to Gamma, rounded to a rational
// with denominator 1000 and clamped to [WMin, WMax]. Quantizing on the
// bucket midpoint makes the weight a pure function of the bucket, so weight
// changes happen exactly when the bucket changes (the paper's "once per
// 5cm").
func (s *Simulation) WeightFor(d float64) frac.Rat {
	mid := (float64(s.bucketOf(d)) + 0.5) * s.p.Bucket
	w := frac.Quantize(s.p.Alpha*math.Pow(mid, s.p.Gamma), 1000)
	return frac.Clamp(w, s.p.WMin, s.p.WMax)
}

// TaskSpecs returns the initial task set: one task per speaker/microphone
// pair with its weight at t = 0.
func (s *Simulation) TaskSpecs() []model.Spec {
	specs := make([]model.Spec, len(s.pairs))
	for i, pr := range s.pairs {
		specs[i] = model.Spec{Name: pr.name, Weight: pr.weight, Group: fmt.Sprintf("S%d", pr.speaker)}
	}
	return specs
}

// Request is one weight-change request produced by the kinematics.
type Request = model.WeightRequest

// StepRequests advances the geometry to slot t and returns the
// weight-change requests triggered by effective-distance bucket crossings.
func (s *Simulation) StepRequests(t model.Time) []Request {
	var reqs []Request
	for _, pr := range s.pairs {
		d := s.effectiveDistance(pr.speaker, pr.mic, t)
		b := s.bucketOf(d)
		if b == pr.bucket {
			continue
		}
		pr.bucket = b
		w := s.WeightFor(d)
		if w.Eq(pr.weight) {
			continue
		}
		pr.weight = w
		reqs = append(reqs, Request{Task: pr.name, Weight: w})
	}
	return reqs
}

// Pairs returns the task names in creation order.
func (s *Simulation) Pairs() []string {
	names := make([]string, len(s.pairs))
	for i, pr := range s.pairs {
		names[i] = pr.name
	}
	return names
}

// TotalInitialWeight returns the sum of initial weights (must be at most M
// for the scheduler to accept the system).
func (s *Simulation) TotalInitialWeight() frac.Rat {
	total := frac.Zero
	for _, pr := range s.pairs {
		total = total.Add(pr.weight)
	}
	return total
}

// Params returns the scenario parameters.
func (s *Simulation) Params() Params { return s.p }
