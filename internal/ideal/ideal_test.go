package ideal

import (
	"math/rand"
	"testing"

	"repro/internal/frac"
	"repro/internal/model"
)

func rat(s string) frac.Rat { return frac.MustParse(s) }

// TestFig1aPeriodicAllocations reproduces the per-slot ideal allocations of
// Fig. 1(a): a periodic task of weight 5/16.
func TestFig1aPeriodicAllocations(t *testing.T) {
	a := NewAllocator(MustTask(frac.New(5, 16)))
	// Subtask -> slot -> allocation (sixteenths), from the figure.
	want := map[int64]map[model.Time]string{
		1: {0: "5/16", 1: "5/16", 2: "5/16", 3: "1/16"},
		2: {3: "4/16", 4: "5/16", 5: "5/16", 6: "2/16"},
		3: {6: "3/16", 7: "5/16", 8: "5/16", 9: "3/16"},
		4: {9: "2/16", 10: "5/16", 11: "5/16", 12: "4/16"},
		5: {12: "1/16", 13: "5/16", 14: "5/16", 15: "5/16"},
	}
	for i, slots := range want {
		for slot, alloc := range slots {
			if got := a.Alloc(i, slot); !got.Eq(rat(alloc)) {
				t.Errorf("A(T_%d, %d) = %s, want %s", i, slot, got, alloc)
			}
		}
	}
	// Outside the window the allocation is zero.
	if !a.Alloc(2, 2).IsZero() || !a.Alloc(2, 7).IsZero() {
		t.Error("allocation outside window is nonzero")
	}
	// The figure's worked example: A(I, T, 6) = 2/16 + 3/16 = 5/16.
	if got := a.TaskSlot(6); !got.Eq(rat("5/16")) {
		t.Errorf("A(I,T,6) = %s, want 5/16", got)
	}
}

// TestFig1bISAllocations reproduces Fig. 1(b): the same weight-5/16 task
// with IS separations θ = (0, 2, 3, 3, ...).
func TestFig1bISAllocations(t *testing.T) {
	a := NewAllocator(MustTask(frac.New(5, 16), 0, 2, 3, 3, 3))
	// T_2's window shifts to [5, 9); its first-slot allocation still pairs
	// with T_1's last-slot allocation (1/16) to make the weight.
	if got := a.Alloc(2, 5); !got.Eq(rat("4/16")) {
		t.Errorf("A(T_2, 5) = %s, want 4/16", got)
	}
	if got := a.Alloc(2, 8); !got.Eq(rat("2/16")) {
		t.Errorf("A(T_2, 8) = %s, want 2/16", got)
	}
	// Slot 4 is the inactive gap: no allocation at all.
	if got := a.TaskSlot(4); !got.IsZero() {
		t.Errorf("A(I,T,4) = %s, want 0", got)
	}
	// T_3 window [9,13): first slot pairs with T_2's 2/16.
	if got := a.Alloc(3, 9); !got.Eq(rat("3/16")) {
		t.Errorf("A(T_3, 9) = %s, want 3/16", got)
	}
	// Every subtask still sums to exactly one quantum.
	for i := int64(1); i <= 5; i++ {
		win := a.task.Window(i)
		sum := frac.Zero
		for s := win.Release; s < win.Deadline; s++ {
			sum = sum.Add(a.Alloc(i, s))
		}
		if !sum.Eq(frac.One) {
			t.Errorf("subtask %d total = %s, want 1", i, sum)
		}
	}
}

func TestSubtaskCum(t *testing.T) {
	a := NewAllocator(MustTask(frac.New(5, 16)))
	cases := []struct {
		i    int64
		t    model.Time
		want string
	}{
		{1, 0, "0"},
		{1, 1, "5/16"},
		{1, 3, "15/16"},
		{1, 4, "1"},
		{1, 100, "1"},
		{2, 3, "0"},
		{2, 4, "4/16"},
		{2, 6, "14/16"},
		{2, 7, "1"},
	}
	for _, c := range cases {
		if got := a.SubtaskCum(c.i, c.t); !got.Eq(rat(c.want)) {
			t.Errorf("SubtaskCum(%d, %d) = %s, want %s", c.i, c.t, got, c.want)
		}
	}
}

// TestPeriodicPerSlotTotalIsWeight checks the defining property of the ideal
// schedule for periodic tasks: the task receives exactly its weight in every
// slot, so the cumulative allocation is w*t.
func TestPeriodicPerSlotTotalIsWeight(t *testing.T) {
	weights := []frac.Rat{
		frac.New(5, 16), frac.New(3, 19), frac.New(2, 5), frac.New(1, 2),
		frac.New(1, 10), frac.New(3, 20), frac.New(1, 21), frac.New(1, 3),
	}
	for _, w := range weights {
		a := NewAllocator(MustTask(w))
		for slot := model.Time(0); slot < 3*w.Den(); slot++ {
			if got := a.TaskSlot(slot); !got.Eq(w) {
				t.Errorf("w=%s: A(I,T,%d) = %s, want %s", w, slot, got, w)
			}
		}
		for _, tt := range []model.Time{0, 1, 7, w.Den(), 2*w.Den() + 3} {
			if got, want := a.TaskCum(tt), PSCum(w, tt); !got.Eq(want) {
				t.Errorf("w=%s: TaskCum(%d) = %s, want %s", w, tt, got, want)
			}
		}
	}
}

// TestAllocationsWithinBounds checks 0 <= A(T_i, t) <= w and per-subtask
// totals of one for randomized weights and IS offsets.
func TestAllocationsWithinBounds(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		den := r.Int63n(60) + 2
		num := r.Int63n(den-1) + 1
		w := frac.New(num, den)
		var offsets []model.Time
		cur := model.Time(0)
		for i := 0; i < 8; i++ {
			cur += r.Int63n(3)
			offsets = append(offsets, cur)
		}
		a := NewAllocator(MustTask(w, offsets...))
		for i := int64(1); i <= 8; i++ {
			win := a.task.Window(i)
			sum := frac.Zero
			for s := win.Release; s < win.Deadline; s++ {
				al := a.Alloc(i, s)
				if al.Sign() < 0 || w.Less(al) {
					t.Fatalf("w=%s θ=%v: A(T_%d,%d) = %s out of [0,%s]", w, offsets, i, s, al, w)
				}
				sum = sum.Add(al)
			}
			if !sum.Eq(frac.One) {
				t.Fatalf("w=%s θ=%v: subtask %d total = %s", w, offsets, i, sum)
			}
			// Boundary pairing: first(T_i) + last(T_{i-1}) == w when
			// b(T_{i-1}) == 1.
			if i > 1 && a.task.BBit(i-1) == 1 {
				prev := a.task.Window(i - 1)
				pair := a.Alloc(i, win.Release).Add(a.Alloc(i-1, prev.Deadline-1))
				if !pair.Eq(w) {
					t.Fatalf("w=%s θ=%v: boundary pair of T_%d = %s, want %s", w, offsets, i, pair, w)
				}
			}
		}
	}
}

// TestTaskSlotAtMostWeight: the per-slot allocation to a whole IS task never
// exceeds its weight (property (AF1) restricted to static systems).
func TestTaskSlotAtMostWeight(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		den := r.Int63n(40) + 2
		num := r.Int63n(den-1) + 1
		w := frac.New(num, den)
		var offsets []model.Time
		cur := model.Time(0)
		for i := 0; i < 10; i++ {
			cur += r.Int63n(4)
			offsets = append(offsets, cur)
		}
		a := NewAllocator(MustTask(w, offsets...))
		horizon := a.task.Window(10).Deadline
		for s := model.Time(0); s < horizon; s++ {
			if got := a.TaskSlot(s); w.Less(got) {
				t.Fatalf("w=%s θ=%v: A(I,T,%d) = %s > w", w, offsets, s, got)
			}
		}
	}
}

func TestNewTaskValidation(t *testing.T) {
	if _, err := NewTask(frac.Zero); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := NewTask(frac.New(1, 3), 0, 2, 1); err == nil {
		t.Error("decreasing offsets accepted")
	}
	if _, err := NewTask(frac.New(1, 3), 0, 0, 5); err != nil {
		t.Errorf("valid offsets rejected: %v", err)
	}
}

func TestThetaExtension(t *testing.T) {
	task := MustTask(frac.New(1, 4), 0, 2, 3)
	if task.Theta(1) != 0 || task.Theta(2) != 2 || task.Theta(3) != 3 {
		t.Error("explicit offsets wrong")
	}
	if task.Theta(4) != 3 || task.Theta(100) != 3 {
		t.Error("offset extension wrong")
	}
	none := MustTask(frac.New(1, 4))
	if none.Theta(5) != 0 {
		t.Error("empty-offset theta wrong")
	}
}

func TestWeightOneTask(t *testing.T) {
	a := NewAllocator(MustTask(frac.One))
	for s := model.Time(0); s < 5; s++ {
		if got := a.Alloc(s+1, s); !got.Eq(frac.One) {
			t.Errorf("weight-1 A(T_%d,%d) = %s, want 1", s+1, s, got)
		}
	}
	if got := a.TaskCum(5); !got.Eq(frac.FromInt(5)) {
		t.Errorf("weight-1 cum = %s", got)
	}
}

func TestLag(t *testing.T) {
	w := frac.New(2, 5)
	// After 5 slots the ideal is 2; an actual allocation of 2 gives lag 0.
	if got := Lag(w, 5, frac.FromInt(2)); !got.IsZero() {
		t.Errorf("lag = %s, want 0", got)
	}
	if got := Lag(w, 3, frac.One); !got.Eq(rat("1/5")) {
		t.Errorf("lag = %s, want 1/5", got)
	}
}

// TestClosedFormMatchesAllocator: the arithmetic closed form and the Fig. 2
// pseudo-code allocator agree on every slot of every subtask, for random
// weights and IS offsets.
func TestClosedFormMatchesAllocator(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	for trial := 0; trial < 300; trial++ {
		den := r.Int63n(40) + 2
		num := r.Int63n(den) + 1 // any weight in (0, 1]
		w := frac.New(num, den)
		var offsets []model.Time
		cur := model.Time(0)
		for i := 0; i < 10; i++ {
			cur += r.Int63n(3)
			offsets = append(offsets, cur)
		}
		task := MustTask(w, offsets...)
		a := NewAllocator(task)
		for i := int64(1); i <= 10; i++ {
			win := task.Window(i)
			for s := win.Release - 1; s <= win.Deadline; s++ {
				if s < 0 {
					continue
				}
				got := ClosedForm(task, i, s)
				want := a.Alloc(i, s)
				if !got.Eq(want) {
					t.Fatalf("w=%s θ=%v: ClosedForm(T_%d,%d)=%s, allocator says %s",
						w, offsets, i, s, got, want)
				}
			}
		}
	}
}
