// Package ideal implements the ideal per-slot allocations of the
// intra-sporadic (IS) task model — the A(I_IS, T_j, t) function of Fig. 2 in
// the paper.
//
// The ideal IS schedule allocates each subtask T_i some processing time in
// every slot of its window [r(T_i), d(T_i)). For slots other than the first
// and last, the allocation is wt(T). The first and last slots are adjusted
// so that (i) the subtask's total allocation across its window is exactly
// one quantum, and (ii) the allocation in the first slot plus the
// predecessor's allocation in its last slot equals wt(T) whenever the
// predecessor's b-bit is 1.
//
// These static allocations are the base case of the dynamic I_SW/I_CSW
// trackers in internal/core; they are also used directly for golden tests of
// the paper's Fig. 1 and for lag computations on non-adaptive systems.
package ideal

import (
	"fmt"

	"repro/internal/frac"
	"repro/internal/model"
)

// Task describes one IS task for the ideal allocator: a constant weight and
// per-subtask release offsets. Offsets[i-1] is θ(T_i); subtasks beyond the
// slice reuse the last offset (or 0 if the slice is empty), matching the IS
// requirement that offsets are non-decreasing.
type Task struct {
	W       frac.Rat
	Offsets []model.Time
}

// NewTask returns a Task after validating the weight and the offsets
// (offsets must be non-negative and non-decreasing).
func NewTask(w frac.Rat, offsets ...model.Time) (Task, error) {
	if err := model.CheckWeight(w); err != nil {
		return Task{}, err
	}
	prev := model.Time(0)
	for i, th := range offsets {
		if th < prev {
			return Task{}, fmt.Errorf("ideal: offsets must be non-decreasing (offset %d is %d after %d)", i+1, th, prev)
		}
		prev = th
	}
	return Task{W: w, Offsets: offsets}, nil
}

// MustTask is NewTask but panics on error; for tests and examples.
func MustTask(w frac.Rat, offsets ...model.Time) Task {
	t, err := NewTask(w, offsets...)
	if err != nil {
		panic(err)
	}
	return t
}

// Theta returns θ(T_i).
func (t Task) Theta(i int64) model.Time {
	if len(t.Offsets) == 0 {
		return 0
	}
	if int(i) <= len(t.Offsets) {
		return t.Offsets[i-1]
	}
	return t.Offsets[len(t.Offsets)-1]
}

// Window returns the window of subtask i.
func (t Task) Window(i int64) model.Window {
	return model.SubtaskWindow(t.W, t.Theta(i), i)
}

// BBit returns b(T_i).
func (t Task) BBit(i int64) int64 { return model.BBit(t.W, i) }

// Allocator computes and memoizes A(I_IS, T_i, t) for one task.
type Allocator struct {
	task  Task
	first []frac.Rat // first[i-1] = allocation in slot r(T_i)
	last  []frac.Rat // last[i-1]  = allocation in slot d(T_i)-1
}

// NewAllocator returns an allocator for the given task.
func NewAllocator(task Task) *Allocator {
	return &Allocator{task: task}
}

// ensure computes first/last boundary allocations for subtasks 1..i.
func (a *Allocator) ensure(i int64) {
	for int64(len(a.first)) < i {
		j := int64(len(a.first)) + 1
		w := a.task.W
		win := a.task.Window(j)
		var first frac.Rat
		if j == 1 || a.task.BBit(j-1) == 0 {
			first = w
		} else {
			first = w.Sub(a.last[j-2])
		}
		// Middle slots receive w each; the final slot tops the total up to 1.
		middle := win.Len() - 2
		var last frac.Rat
		if win.Len() == 1 {
			// Weight-1 task: the single slot holds the whole quantum.
			first = frac.One
			last = frac.One
		} else {
			last = frac.One.Sub(first).Sub(w.MulInt(middle))
			last = frac.Min(last, w)
		}
		a.first = append(a.first, first)
		a.last = append(a.last, last)
	}
}

// Alloc returns A(I_IS, T_i, t), the ideal allocation to subtask i in slot t.
func (a *Allocator) Alloc(i int64, t model.Time) frac.Rat {
	win := a.task.Window(i)
	if !win.Contains(t) {
		return frac.Zero
	}
	a.ensure(i)
	switch {
	case t == win.Release:
		return a.first[i-1]
	case t == win.Deadline-1:
		return a.last[i-1]
	default:
		return a.task.W
	}
}

// SubtaskCum returns A(I_IS, T_i, 0, t), subtask i's cumulative ideal
// allocation before time t.
func (a *Allocator) SubtaskCum(i int64, t model.Time) frac.Rat {
	win := a.task.Window(i)
	switch {
	case t <= win.Release:
		return frac.Zero
	case t >= win.Deadline:
		return frac.One
	}
	a.ensure(i)
	// Slots r..t-1 are covered; the first holds first[i-1] and every other
	// covered slot holds w (the last slot d-1 is only covered when t == d,
	// which the guard above already resolved to 1).
	return a.first[i-1].Add(a.task.W.MulInt(t - win.Release - 1))
}

// TaskSlot returns A(I_IS, T, t) = Σ_i A(I_IS, T_i, t) for the at-most-two
// subtasks whose windows can contain slot t.
func (a *Allocator) TaskSlot(t model.Time) frac.Rat {
	total := frac.Zero
	for _, i := range a.subtasksAt(t) {
		total = total.Add(a.Alloc(i, t))
	}
	return total
}

// subtasksAt returns the indices of subtasks whose windows contain t. For
// weights <= 1 at most two consecutive windows can overlap a slot, so a
// short scan around the density estimate suffices.
func (a *Allocator) subtasksAt(t model.Time) []int64 {
	if t < a.task.Window(1).Release {
		return nil
	}
	// Lower bound: index such that d(T_i) > t. Without offsets, i ~ w*t.
	// Offsets only delay windows, so start at max(1, floor(w*t) - 1) and
	// scan forward until windows start after t.
	start := a.task.W.MulInt(t).Floor() - 1
	if start < 1 {
		start = 1
	}
	// Offsets shift releases later, never earlier, so windows at or after
	// index `start` may still be too late; scan back while the previous
	// window's deadline exceeds t.
	for start > 1 && a.task.Window(start-1).Deadline > t {
		start--
	}
	var out []int64
	for i := start; ; i++ {
		win := a.task.Window(i)
		if win.Release > t {
			break
		}
		if win.Contains(t) {
			out = append(out, i)
		}
	}
	return out
}

// TaskCum returns A(I_IS, T, 0, t), the cumulative ideal allocation to the
// whole task before time t.
func (a *Allocator) TaskCum(t model.Time) frac.Rat {
	total := frac.Zero
	for i := int64(1); ; i++ {
		win := a.task.Window(i)
		if win.Release >= t {
			break
		}
		total = total.Add(a.SubtaskCum(i, t))
	}
	return total
}

// ClosedForm returns A(I_IS, T_i, t) by the arithmetic expression the paper
// alludes to ("A(I_IS, T_j, u) can be defined using an arithmetic
// expression, but we have opted instead for a more intuitive
// pseudo-code-based definition"):
//
//	A(I_IS, T_i, t) = max(0, min( w,
//	                              w·(t-θ+1) - (i-1),   // ramp-in at the release
//	                              i - w·(t-θ) ))       // ramp-out at the deadline
//
// for t in the window and 0 outside. The first boundary term says the
// subtask only receives what lies beyond the (i-1)-quantum mark of the
// task's fluid allocation; the second that it stops at the i-quantum mark.
// Their sum with the neighbouring subtasks' boundary slots is always
// exactly w, which is the pairing property the recursive definition
// maintains. TestClosedFormMatchesAllocator checks equivalence.
func ClosedForm(task Task, i int64, t model.Time) frac.Rat {
	win := task.Window(i)
	if !win.Contains(t) {
		return frac.Zero
	}
	w := task.W
	rel := t - task.Theta(i)
	rampIn := w.MulInt(rel + 1).Sub(frac.FromInt(i - 1))
	rampOut := frac.FromInt(i).Sub(w.MulInt(rel))
	alloc := frac.Min(w, frac.Min(rampIn, rampOut))
	return frac.Max(frac.Zero, alloc)
}

// PSCum returns the processor-sharing ideal allocation w*t to a task of
// constant weight w over [0, t) — the I_PS schedule of a non-adaptive task.
func PSCum(w frac.Rat, t model.Time) frac.Rat {
	return w.MulInt(t)
}

// Lag returns lag(T, t) = w*t - actual for a periodic task of weight w whose
// actual allocation before t is given. The Pfair correctness condition is
// -1 < lag < 1 for all t.
func Lag(w frac.Rat, t model.Time, actual frac.Rat) frac.Rat {
	return PSCum(w, t).Sub(actual)
}
