// Package agis implements the displacement analysis of the paper's
// appendix (the AGIS — adaptive generalized intra-sporadic — machinery).
//
// An instance of a task system is modified by *removing* a subtask (making
// it absent). If the removed subtask was scheduled in slot t₁, the
// next-priority subtask X⁽²⁾ may shift from its slot t₂ into t₁, which may
// in turn cause X⁽³⁾ to shift, and so on: a *chain of displacements*
// Δᵢ = ⟨X⁽ⁱ⁾, tᵢ, X⁽ⁱ⁺¹⁾, tᵢ₊₁⟩. The correctness proof of PD²-OI rests on
// three structural lemmas about such chains:
//
//	Lemma 1: displacements move forward — tᵢ₊₁ > tᵢ;
//	Lemma 2: across a slot with a hole, the displaced subtask is the
//	         removed subtask's own successor;
//	Lemma 3: a hole inside a displacement's span can only sit at its start,
//	         and then the moved subtask is the predecessor's successor.
//
// This package extracts displacement chains from two recorded schedules
// (original and with one subtask marked absent) and checks the lemmas,
// letting the proof machinery be validated on randomized systems.
package agis

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/model"
)

// SubtaskID identifies one subtask by task name and absolute index.
type SubtaskID struct {
	Task  string
	Index int64
}

func (id SubtaskID) String() string { return fmt.Sprintf("%s_%d", id.Task, id.Index) }

// Displacement is the four-tuple ⟨From, FromSlot, To, ToSlot⟩: removing or
// shifting From out of FromSlot pulled To forward from ToSlot into
// FromSlot.
type Displacement struct {
	From     SubtaskID
	FromSlot model.Time
	To       SubtaskID
	ToSlot   model.Time
}

func (d Displacement) String() string {
	return fmt.Sprintf("<%v,%d,%v,%d>", d.From, d.FromSlot, d.To, d.ToSlot)
}

// Analysis holds one extracted displacement chain plus the hole profile of
// the original schedule.
type Analysis struct {
	M       int
	Removed SubtaskID
	// RemovedSlot is where the removed subtask ran in the original
	// schedule.
	RemovedSlot model.Time
	// Links is the displacement chain, in order.
	Links []Displacement
	// Holes maps slot -> number of idle processors in the original
	// schedule.
	Holes map[model.Time]int
}

// Source is the part of core.Scheduler the analysis needs.
type Source interface {
	ScheduleEntries(t model.Time) []core.SlotEntry
}

// Analyze extracts the displacement chain caused by removing `removed` by
// diffing the original and modified schedules over [0, horizon). It errors
// if the schedules differ in any way not explained by a single forward
// chain — which would falsify the appendix's structure, not just a lemma.
func Analyze(orig, mod Source, m int, removed SubtaskID, horizon model.Time) (*Analysis, error) {
	type slotSet map[SubtaskID]bool
	origAt := make([]slotSet, horizon)
	modAt := make([]slotSet, horizon)
	origPos := make(map[SubtaskID]model.Time)
	holes := make(map[model.Time]int)
	for t := model.Time(0); t < horizon; t++ {
		origAt[t] = slotSet{}
		for _, e := range orig.ScheduleEntries(t) {
			id := SubtaskID{e.Task, e.Subtask}
			origAt[t][id] = true
			origPos[id] = t
		}
		if h := m - len(origAt[t]); h > 0 {
			holes[t] = h
		}
		modAt[t] = slotSet{}
		for _, e := range mod.ScheduleEntries(t) {
			modAt[t][SubtaskID{e.Task, e.Subtask}] = true
		}
	}
	t1, ok := origPos[removed]
	if !ok {
		return nil, fmt.Errorf("agis: removed subtask %v was not scheduled in the original", removed)
	}
	if modAt[t1][removed] {
		return nil, fmt.Errorf("agis: %v still scheduled in the modified schedule", removed)
	}

	a := &Analysis{M: m, Removed: removed, RemovedSlot: t1, Holes: holes}
	explained := map[model.Time]bool{}
	cur, curSlot := removed, t1
	for {
		explained[curSlot] = true
		// Who is scheduled at curSlot in the modified schedule but was not
		// there originally?
		var moved []SubtaskID
		for id := range modAt[curSlot] {
			if !origAt[curSlot][id] {
				moved = append(moved, id)
			}
		}
		// Map iteration order is random; keep the chain (and the error
		// text below) replay-stable.
		sort.Slice(moved, func(i, j int) bool {
			if moved[i].Task != moved[j].Task {
				return moved[i].Task < moved[j].Task
			}
			return moved[i].Index < moved[j].Index
		})
		if len(moved) == 0 {
			break // hole absorbed the removal; chain ends
		}
		if len(moved) > 1 {
			return nil, fmt.Errorf("agis: %d subtasks moved into slot %d; not a simple chain", len(moved), curSlot)
		}
		next := moved[0]
		nextSlot, wasScheduled := origPos[next]
		if !wasScheduled {
			// The subtask ran only in the modified schedule (it was pushed
			// past the horizon originally); treat as chain end after
			// recording the link with its (unknown) origin at the horizon.
			a.Links = append(a.Links, Displacement{From: cur, FromSlot: curSlot, To: next, ToSlot: horizon})
			break
		}
		a.Links = append(a.Links, Displacement{From: cur, FromSlot: curSlot, To: next, ToSlot: nextSlot})
		cur, curSlot = next, nextSlot
		if len(a.Links) > int(horizon)*m {
			return nil, fmt.Errorf("agis: displacement chain does not terminate")
		}
	}
	// Every slot whose contents differ must lie on the chain.
	for t := model.Time(0); t < horizon; t++ {
		if explained[t] {
			continue
		}
		for id := range origAt[t] {
			if !modAt[t][id] {
				return nil, fmt.Errorf("agis: unexplained difference at slot %d: %v missing", t, id)
			}
		}
		for id := range modAt[t] {
			if !origAt[t][id] {
				return nil, fmt.Errorf("agis: unexplained difference at slot %d: %v extra", t, id)
			}
		}
	}
	return a, nil
}

// CheckLemma1 verifies that the chain moves strictly forward in time:
// tᵢ₊₁ > tᵢ for every link.
func (a *Analysis) CheckLemma1() error {
	for _, d := range a.Links {
		if d.ToSlot <= d.FromSlot {
			return fmt.Errorf("agis: Lemma 1 violated by %v", d)
		}
	}
	return nil
}

// isSuccessor reports whether b is a's successor among present subtasks:
// same task, next index, skipping the removed (absent) subtask.
func (a *Analysis) isSuccessor(x, y SubtaskID) bool {
	if x.Task != y.Task {
		return false
	}
	next := x.Index + 1
	if (SubtaskID{x.Task, next}) == a.Removed {
		next++
	}
	return y.Index == next
}

// CheckLemma2 verifies: for every valid displacement with a hole in its
// starting slot (in the original schedule), the displaced subtask is the
// predecessor's successor.
func (a *Analysis) CheckLemma2() error {
	for _, d := range a.Links {
		if d.FromSlot < d.ToSlot && a.Holes[d.FromSlot] > 0 {
			if !a.isSuccessor(d.From, d.To) {
				return fmt.Errorf("agis: Lemma 2 violated by %v (hole in slot %d)", d, d.FromSlot)
			}
		}
	}
	return nil
}

// CheckLemma3 verifies: if a hole lies in [tᵢ, tᵢ₊₁), it lies at tᵢ and the
// displaced subtask is the predecessor's successor.
func (a *Analysis) CheckLemma3() error {
	for _, d := range a.Links {
		if d.FromSlot >= d.ToSlot {
			continue
		}
		for t := d.FromSlot; t < d.ToSlot; t++ {
			if a.Holes[t] == 0 {
				continue
			}
			if t != d.FromSlot {
				return fmt.Errorf("agis: Lemma 3 violated by %v (hole at interior slot %d)", d, t)
			}
			if !a.isSuccessor(d.From, d.To) {
				return fmt.Errorf("agis: Lemma 3 violated by %v (hole at %d but not successor)", d, t)
			}
		}
	}
	return nil
}
