package agis

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/frac"
	"repro/internal/model"
)

// buildPair runs the same system twice — once untouched and once with the
// given subtask marked absent — and returns both schedulers.
func buildPair(t *testing.T, sys model.System, removed SubtaskID, horizon model.Time) (orig, mod *core.Scheduler) {
	t.Helper()
	mk := func(mark bool) *core.Scheduler {
		s, err := core.New(core.Config{
			M: sys.M, Policy: core.PolicyOI, Police: true,
			RecordSchedule: true, CheckInvariants: true,
		}, sys)
		if err != nil {
			t.Fatal(err)
		}
		if mark {
			if err := s.MarkAbsent(removed.Task, removed.Index); err != nil {
				t.Fatal(err)
			}
		}
		s.RunTo(horizon)
		if len(s.Misses()) != 0 {
			t.Fatalf("misses: %v", s.Misses())
		}
		return s
	}
	return mk(false), mk(true)
}

// TestFig14Displacements mirrors the paper's Fig. 14 set-up: four tasks of
// weight 3/7 and one of weight 1/7 on two processors; removing the light
// task's first subtask causes a chain of forward displacements.
func TestFig14Displacements(t *testing.T) {
	tasks := model.Replicate(4, model.Spec{Name: "T", Weight: frac.New(3, 7)})
	tasks = append(tasks, model.Spec{Name: "U", Weight: frac.New(1, 7)})
	sys := model.System{M: 2, Tasks: tasks}
	removed := SubtaskID{"U", 1}
	orig, mod := buildPair(t, sys, removed, 21)

	a, err := Analyze(orig, mod, 2, removed, 21)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CheckLemma1(); err != nil {
		t.Error(err)
	}
	if err := a.CheckLemma2(); err != nil {
		t.Error(err)
	}
	if err := a.CheckLemma3(); err != nil {
		t.Error(err)
	}
	// Utilization is 4*3/7 + 1/7 = 13/7 < 2, so holes exist and the chain
	// is finite; the removal must not lengthen the schedule.
	if len(a.Links) == 0 {
		t.Log("removal absorbed immediately by a hole (legal)")
	}
}

// TestRandomizedDisplacementLemmas removes random subtasks from random
// feasible systems and checks Lemmas 1-3 on every resulting chain.
func TestRandomizedDisplacementLemmas(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	horizon := model.Time(80)
	checked := 0
	for trial := 0; trial < 80; trial++ {
		m := int(r.Int63n(3)) + 1
		var tasks []model.Spec
		total := frac.Zero
		for i := 0; i < 12; i++ {
			den := r.Int63n(18) + 2
			num := r.Int63n(den/2) + 1
			w := frac.New(num, den)
			if frac.FromInt(int64(m)).Less(total.Add(w)) {
				continue
			}
			total = total.Add(w)
			tasks = append(tasks, model.Spec{Name: fmt.Sprintf("T%d", i), Weight: w})
		}
		if len(tasks) < 2 {
			continue
		}
		sys := model.System{M: m, Tasks: tasks}
		// Pick a random task and subtask index that will be scheduled well
		// inside the horizon.
		victim := tasks[r.Intn(len(tasks))]
		idx := r.Int63n(3) + 1
		if model.Deadline(victim.Weight, 0, idx) > horizon-10 {
			continue
		}
		removed := SubtaskID{victim.Name, idx}
		orig, mod := buildPair(t, sys, removed, horizon)
		a, err := Analyze(orig, mod, m, removed, horizon)
		if err != nil {
			t.Fatalf("trial %d (%v, M=%d): %v", trial, removed, m, err)
		}
		if err := a.CheckLemma1(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := a.CheckLemma2(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := a.CheckLemma3(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checked++
	}
	if checked < 30 {
		t.Fatalf("only %d chains analyzed; generator too restrictive", checked)
	}
}

// TestFullUtilizationChains: at total utilization exactly M there are no
// holes before the removal, so chains run long; the lemmas still hold.
func TestFullUtilizationChains(t *testing.T) {
	tasks := model.Replicate(4, model.Spec{Name: "H", Weight: frac.Half})
	sys := model.System{M: 2, Tasks: tasks}
	for idx := int64(1); idx <= 4; idx++ {
		removed := SubtaskID{"H#0", idx}
		orig, mod := buildPair(t, sys, removed, 60)
		a, err := Analyze(orig, mod, 2, removed, 60)
		if err != nil {
			t.Fatalf("idx %d: %v", idx, err)
		}
		for _, check := range []func() error{a.CheckLemma1, a.CheckLemma2, a.CheckLemma3} {
			if err := check(); err != nil {
				t.Errorf("idx %d: %v", idx, err)
			}
		}
	}
}

func TestAnalyzeErrors(t *testing.T) {
	tasks := model.Replicate(2, model.Spec{Name: "A", Weight: frac.New(1, 4)})
	sys := model.System{M: 1, Tasks: tasks}
	orig, mod := buildPair(t, sys, SubtaskID{"A#0", 2}, 30)
	// Removed subtask that was never scheduled in the original.
	if _, err := Analyze(orig, mod, 1, SubtaskID{"A#0", 99}, 30); err == nil {
		t.Error("unscheduled removal accepted")
	}
	// Comparing a schedule against itself: the removed subtask is still
	// scheduled, which must be rejected.
	if _, err := Analyze(orig, orig, 1, SubtaskID{"A#0", 2}, 30); err == nil {
		t.Error("identical schedules accepted")
	}
}

func TestSubtaskIDString(t *testing.T) {
	id := SubtaskID{"T", 3}
	if id.String() != "T_3" {
		t.Errorf("String = %s", id)
	}
	d := Displacement{From: id, FromSlot: 1, To: SubtaskID{"T", 4}, ToSlot: 5}
	if d.String() != "<T_3,1,T_4,5>" {
		t.Errorf("String = %s", d)
	}
}
