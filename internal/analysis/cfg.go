// Control-flow graphs and the generic forward dataflow engine: the
// flow-sensitive layer under ownxfer and the CFG-based rewrites of
// lockorder's held-lock facts and poolescape's use-after-free rule.
//
// buildCFG lowers one function body to basic blocks connected by
// labelled edges. The shape is deliberately small:
//
//   - A block holds the nodes evaluated when control passes through it
//     (simple statements, if/for/switch Init statements, branch
//     conditions, switch case expressions, select comm statements), in
//     evaluation order. A *ast.RangeStmt appears as a block node for its
//     header only — the range operand and the iteration-variable
//     definitions are evaluated there, the body belongs to other blocks
//     (walkEvaluated encodes this).
//   - Edges carry a kind: edgeTrue/edgeFalse out of a two-way branch
//     (the block's cond field names the condition expression, which is
//     what refinement hooks key on), edgeCase out of a switch or select
//     dispatch, edgeFall otherwise.
//   - Returns edge to one shared exit block, calls to the predeclared
//     panic to a separate panicExit block, so "every path frees exactly
//     once" style rules can exempt failure paths. Deferred statements
//     are additionally collected on the graph (they run between the
//     last block and either exit).
//   - Compound statements and branch statements are recorded as marks
//     on the block where their dispatch begins; marks carry no
//     evaluated nodes and exist so every statement of the body lands in
//     exactly one block (FuzzCFG pins this).
//
// Block IDs are assigned in construction order, which is a pure
// recursion over the AST — two builds of the same body yield the same
// graph, and the solver iterates blocks in ID order, so every
// flow-sensitive check inherits the determinism the byte-identical
// diagnostics property test demands.
//
// Function literal bodies are not lowered into the enclosing graph
// (matching nestedStmtLists: a literal body runs whenever the value is
// invoked, not where it is written). Flow-sensitive checks see the
// whole *ast.FuncLit as one node of the block that evaluates it.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// edgeKind classifies a CFG edge.
type edgeKind uint8

const (
	edgeFall  edgeKind = iota // unconditional continuation
	edgeTrue                  // branch condition true (loop iterates)
	edgeFalse                 // branch condition false (loop exhausted)
	edgeCase                  // switch/select clause dispatch
)

func (k edgeKind) String() string {
	switch k {
	case edgeTrue:
		return "true"
	case edgeFalse:
		return "false"
	case edgeCase:
		return "case"
	}
	return "fall"
}

// cfgEdge is one directed control-flow edge.
type cfgEdge struct {
	to   *cfgBlock
	kind edgeKind
}

// cfgBlock is one basic block.
type cfgBlock struct {
	id    int
	nodes []ast.Node // evaluated nodes, in evaluation order
	cond  ast.Expr   // two-way branch condition; nil otherwise
	marks []ast.Stmt // compound/branch statements dispatched here
	succs []cfgEdge
}

// cfg is the control-flow graph of one function body. entry is always
// blocks[0]; exit and panicExit are ordinary members of blocks with no
// successors.
type cfg struct {
	fn        *ast.FuncDecl
	blocks    []*cfgBlock
	entry     *cfgBlock
	exit      *cfgBlock // normal returns and body fall-off
	panicExit *cfgBlock // calls to the predeclared panic
	defers    []*ast.DeferStmt
}

// funcCFG returns the control-flow graph of fd's body, cached per
// package — lockorder, poolescape and ownxfer all walk the same
// functions and must not pay for three builds.
func (pkg *Package) funcCFG(fd *ast.FuncDecl) *cfg {
	if g, ok := pkg.cfgs[fd]; ok {
		return g
	}
	g := buildCFG(fd, pkg.Info)
	if pkg.cfgs == nil {
		pkg.cfgs = make(map[*ast.FuncDecl]*cfg)
	}
	pkg.cfgs[fd] = g
	return g
}

// ---------------------------------------------------------------------
// Construction.

// cfgLabel is the target set of one declared label.
type cfgLabel struct {
	start *cfgBlock // goto target: the labelled statement's block
	brk   *cfgBlock // break L target (loops, switch, select)
	cont  *cfgBlock // continue L target (loops)
}

// pendingGoto is a goto awaiting its label (labels are function-scoped,
// so a forward goto resolves only after the whole body is built).
type pendingGoto struct {
	from  *cfgBlock
	label string
}

// flowCtx is the enclosing-statement context threaded through the
// recursion.
type flowCtx struct {
	brk      *cfgBlock // innermost break target
	cont     *cfgBlock // innermost continue target
	nextCase *cfgBlock // fallthrough target inside a switch case
	label    string    // label naming the statement about to be built
}

type cfgBuilder struct {
	g      *cfg
	info   *types.Info
	labels map[string]*cfgLabel
	gotos  []pendingGoto
}

// buildCFG lowers fd's body. A nil body yields the trivial
// entry->exit graph.
func buildCFG(fd *ast.FuncDecl, info *types.Info) *cfg {
	g := &cfg{fn: fd}
	b := &cfgBuilder{g: g, info: info, labels: make(map[string]*cfgLabel)}
	g.entry = b.newBlock()
	g.exit = b.newBlock()
	g.panicExit = b.newBlock()
	if fd.Body == nil {
		link(g.entry, g.exit, edgeFall)
		return g
	}
	if out := b.stmts(fd.Body.List, g.entry, flowCtx{}); out != nil {
		link(out, g.exit, edgeFall)
	}
	for _, pg := range b.gotos {
		if l := b.labels[pg.label]; l != nil && l.start != nil {
			link(pg.from, l.start, edgeFall)
		}
	}
	return g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{id: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func link(from, to *cfgBlock, kind edgeKind) {
	from.succs = append(from.succs, cfgEdge{to: to, kind: kind})
}

// stmts builds a statement list into cur, returning the continuation
// block, or nil if control cannot fall off the end of the list.
// Statements after a terminator still get (unreachable) blocks, so the
// every-statement-lands-somewhere invariant holds for dead code too.
func (b *cfgBuilder) stmts(list []ast.Stmt, cur *cfgBlock, ctx flowCtx) *cfgBlock {
	for _, st := range list {
		if cur == nil {
			cur = b.newBlock()
		}
		cur = b.stmt(st, cur, ctx)
	}
	return cur
}

// stmt builds one statement into cur, returning the continuation block
// or nil when the statement terminates flow.
func (b *cfgBuilder) stmt(st ast.Stmt, cur *cfgBlock, ctx flowCtx) *cfgBlock {
	// The label and fallthrough contexts apply only to the statement
	// they immediately precede.
	inner := ctx
	inner.label, inner.nextCase = "", nil

	switch s := st.(type) {
	case *ast.BlockStmt:
		cur.marks = append(cur.marks, s)
		return b.stmts(s.List, cur, inner)

	case *ast.IfStmt:
		cur.marks = append(cur.marks, s)
		if s.Init != nil {
			cur.nodes = append(cur.nodes, s.Init)
		}
		cur.nodes = append(cur.nodes, s.Cond)
		cur.cond = s.Cond
		thenB := b.newBlock()
		link(cur, thenB, edgeTrue)
		thenOut := b.stmts(s.Body.List, thenB, inner)
		if s.Else == nil {
			join := b.newBlock()
			link(cur, join, edgeFalse)
			if thenOut != nil {
				link(thenOut, join, edgeFall)
			}
			return join
		}
		elseB := b.newBlock()
		link(cur, elseB, edgeFalse)
		elseOut := b.stmt(s.Else, elseB, inner)
		if thenOut == nil && elseOut == nil {
			return nil
		}
		join := b.newBlock()
		if thenOut != nil {
			link(thenOut, join, edgeFall)
		}
		if elseOut != nil {
			link(elseOut, join, edgeFall)
		}
		return join

	case *ast.ForStmt:
		cur.marks = append(cur.marks, s)
		if s.Init != nil {
			cur.nodes = append(cur.nodes, s.Init)
		}
		header := b.newBlock()
		link(cur, header, edgeFall)
		body := b.newBlock()
		after := b.newBlock()
		contTgt := header
		if s.Post != nil {
			post := b.newBlock()
			post.nodes = append(post.nodes, s.Post)
			link(post, header, edgeFall)
			contTgt = post
		}
		if s.Cond != nil {
			header.nodes = append(header.nodes, s.Cond)
			header.cond = s.Cond
			link(header, body, edgeTrue)
			link(header, after, edgeFalse)
		} else {
			link(header, body, edgeFall)
		}
		if ctx.label != "" {
			b.labels[ctx.label].brk = after
			b.labels[ctx.label].cont = contTgt
		}
		inner.brk, inner.cont = after, contTgt
		if out := b.stmts(s.Body.List, body, inner); out != nil {
			link(out, contTgt, edgeFall)
		}
		return after

	case *ast.RangeStmt:
		header := b.newBlock()
		link(cur, header, edgeFall)
		header.nodes = append(header.nodes, s)
		body := b.newBlock()
		after := b.newBlock()
		link(header, body, edgeTrue)
		link(header, after, edgeFalse)
		if ctx.label != "" {
			b.labels[ctx.label].brk = after
			b.labels[ctx.label].cont = header
		}
		inner.brk, inner.cont = after, header
		if out := b.stmts(s.Body.List, body, inner); out != nil {
			link(out, header, edgeFall)
		}
		return after

	case *ast.SwitchStmt:
		cur.marks = append(cur.marks, s)
		if s.Init != nil {
			cur.nodes = append(cur.nodes, s.Init)
		}
		if s.Tag != nil {
			cur.nodes = append(cur.nodes, s.Tag)
		}
		return b.switchClauses(s.Body, cur, ctx, inner, true)

	case *ast.TypeSwitchStmt:
		cur.marks = append(cur.marks, s)
		if s.Init != nil {
			cur.nodes = append(cur.nodes, s.Init)
		}
		cur.nodes = append(cur.nodes, s.Assign)
		return b.switchClauses(s.Body, cur, ctx, inner, false)

	case *ast.SelectStmt:
		cur.marks = append(cur.marks, s)
		after := b.newBlock()
		if ctx.label != "" {
			b.labels[ctx.label].brk = after
		}
		inner.brk = after
		var caseBlocks []*cfgBlock
		var clauses []*ast.CommClause
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			blk := b.newBlock()
			link(cur, blk, edgeCase)
			if cc.Comm != nil {
				blk.nodes = append(blk.nodes, cc.Comm)
			}
			caseBlocks = append(caseBlocks, blk)
			clauses = append(clauses, cc)
		}
		for i, cc := range clauses {
			if out := b.stmts(cc.Body, caseBlocks[i], inner); out != nil {
				link(out, after, edgeFall)
			}
		}
		if len(clauses) == 0 {
			return nil // select {} blocks forever
		}
		return after

	case *ast.LabeledStmt:
		cur.marks = append(cur.marks, s)
		lblk := b.newBlock()
		link(cur, lblk, edgeFall)
		l := b.labels[s.Label.Name]
		if l == nil {
			l = &cfgLabel{}
			b.labels[s.Label.Name] = l
		}
		l.start = lblk
		inner.label = s.Label.Name
		return b.stmt(s.Stmt, lblk, inner)

	case *ast.BranchStmt:
		cur.marks = append(cur.marks, s)
		switch s.Tok {
		case token.BREAK:
			tgt := ctx.brk
			if s.Label != nil {
				tgt = nil
				if l := b.labels[s.Label.Name]; l != nil {
					tgt = l.brk
				}
			}
			if tgt != nil {
				link(cur, tgt, edgeFall)
			}
		case token.CONTINUE:
			tgt := ctx.cont
			if s.Label != nil {
				tgt = nil
				if l := b.labels[s.Label.Name]; l != nil {
					tgt = l.cont
				}
			}
			if tgt != nil {
				link(cur, tgt, edgeFall)
			}
		case token.GOTO:
			if s.Label != nil {
				b.gotos = append(b.gotos, pendingGoto{from: cur, label: s.Label.Name})
			}
		case token.FALLTHROUGH:
			if ctx.nextCase != nil {
				link(cur, ctx.nextCase, edgeFall)
			}
		}
		return nil

	case *ast.ReturnStmt:
		cur.nodes = append(cur.nodes, s)
		link(cur, b.g.exit, edgeFall)
		return nil

	case *ast.ExprStmt:
		cur.nodes = append(cur.nodes, s)
		if call, ok := unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := unparen(call.Fun).(*ast.Ident); ok &&
				id.Name == "panic" && isBuiltinUse(b.info, id) {
				link(cur, b.g.panicExit, edgeFall)
				return nil
			}
		}
		return cur

	case *ast.DeferStmt:
		cur.nodes = append(cur.nodes, s)
		b.g.defers = append(b.g.defers, s)
		return cur

	case *ast.EmptyStmt:
		cur.marks = append(cur.marks, s)
		return cur

	default:
		// Assign, Decl, Send, IncDec, Go: straight-line evaluated nodes.
		cur.nodes = append(cur.nodes, s)
		return cur
	}
}

// switchClauses builds the clause blocks of a (type) switch dispatched
// from cur. Value-switch case expressions are evaluated on the clause's
// block; type-switch case lists are types, not evaluations, and carry
// nothing.
func (b *cfgBuilder) switchClauses(body *ast.BlockStmt, cur *cfgBlock, ctx, inner flowCtx, valueSwitch bool) *cfgBlock {
	after := b.newBlock()
	if ctx.label != "" {
		b.labels[ctx.label].brk = after
	}
	inner.brk = after
	var caseBlocks []*cfgBlock
	var clauses []*ast.CaseClause
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		link(cur, blk, edgeCase)
		if valueSwitch {
			for _, e := range cc.List {
				blk.nodes = append(blk.nodes, e)
			}
		}
		if cc.List == nil {
			hasDefault = true
		}
		caseBlocks = append(caseBlocks, blk)
		clauses = append(clauses, cc)
	}
	if !hasDefault {
		link(cur, after, edgeCase)
	}
	for i, cc := range clauses {
		cctx := inner
		if valueSwitch && i+1 < len(caseBlocks) {
			cctx.nextCase = caseBlocks[i+1]
		}
		if out := b.stmts(cc.Body, caseBlocks[i], cctx); out != nil {
			link(out, after, edgeFall)
		}
	}
	return after
}

// walkEvaluated visits the subtree evaluated when n executes as a block
// node. For a *ast.RangeStmt header only the range operand and the
// iteration-variable expressions are evaluated here — the body belongs
// to other blocks. Everything else is walked whole, including function
// literal bodies; checks that must not descend into a literal return
// false from f at the *ast.FuncLit.
func walkEvaluated(n ast.Node, f func(ast.Node) bool) {
	if rs, ok := n.(*ast.RangeStmt); ok {
		ast.Inspect(rs.X, f)
		if rs.Key != nil {
			ast.Inspect(rs.Key, f)
		}
		if rs.Value != nil {
			ast.Inspect(rs.Value, f)
		}
		return
	}
	ast.Inspect(n, f)
}

// ---------------------------------------------------------------------
// The forward dataflow engine.

// flowFns packages one forward dataflow problem over a cfg.
//
// The lattice contract: join(dst, src) merges src into dst and reports
// whether dst changed; it may read src but must not retain references
// into it (copy what it keeps). transfer receives an owned state (the
// solver clones before every call) and may mutate it freely. refine,
// when non-nil, sharpens the out-state along one edge — it must treat
// the state as shared and clone before modifying. Monotone joins over a
// finite lattice converge; the solver additionally caps iteration as a
// backstop so a buggy transfer cannot hang the lint run.
type flowFns[S any] struct {
	init     S
	clone    func(S) S
	join     func(dst, src S) (S, bool)
	transfer func(b *cfgBlock, s S) S
	refine   func(b *cfgBlock, e cfgEdge, s S) S
}

// solveForward computes the fixpoint in-state of every block, round-
// robin in block ID order (construction order approximates reverse
// postorder, so acyclic regions converge in one pass). reached[id]
// reports whether the block is reachable from entry; unreached blocks
// keep the zero state and must be skipped by callers replaying
// transfers for reporting.
func solveForward[S any](g *cfg, f flowFns[S]) (in []S, reached []bool) {
	in = make([]S, len(g.blocks))
	reached = make([]bool, len(g.blocks))
	in[g.entry.id] = f.init
	reached[g.entry.id] = true
	maxRounds := 32*len(g.blocks) + 64
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, b := range g.blocks {
			if !reached[b.id] {
				continue
			}
			out := f.transfer(b, f.clone(in[b.id]))
			for _, e := range b.succs {
				s := out
				if f.refine != nil {
					s = f.refine(b, e, out)
				}
				if !reached[e.to.id] {
					reached[e.to.id] = true
					in[e.to.id] = f.clone(s)
					changed = true
				} else if merged, ch := f.join(in[e.to.id], s); ch {
					in[e.to.id] = merged
					changed = true
				} else {
					in[e.to.id] = merged
				}
			}
		}
		if !changed {
			break
		}
	}
	return in, reached
}
