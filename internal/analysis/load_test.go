package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree lays out a temp tree from relative path -> body.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, body := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestFindModuleNested(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":        "module example.com/mod\n\ngo 1.22\n",
		"a/b/c/keep.go": "package c\n",
	})
	gotRoot, modPath, err := findModule(filepath.Join(root, "a", "b", "c"))
	if err != nil {
		t.Fatalf("findModule: %v", err)
	}
	if gotRoot != root {
		t.Errorf("root = %s, want %s", gotRoot, root)
	}
	if modPath != "example.com/mod" {
		t.Errorf("module path = %q, want example.com/mod", modPath)
	}
}

func TestFindModuleQuotedPath(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": "module \"quoted.example/m\"\n",
	})
	_, modPath, err := findModule(root)
	if err != nil {
		t.Fatalf("findModule: %v", err)
	}
	if modPath != "quoted.example/m" {
		t.Errorf("module path = %q, want quoted.example/m", modPath)
	}
}

func TestFindModuleMissing(t *testing.T) {
	// An isolated tree with no go.mod anywhere up to the filesystem root
	// cannot be guaranteed, so assert on a tree whose go.mod is broken:
	// the nearest go.mod lacking a module line is an error, not a silent
	// walk past it.
	root := writeTree(t, map[string]string{
		"go.mod":    "// no module line\n",
		"pkg/a.go":  "package pkg\n",
		"pkg/b.txt": "",
	})
	_, _, err := findModule(filepath.Join(root, "pkg"))
	if err == nil || !strings.Contains(err.Error(), "no module line") {
		t.Fatalf("err = %v, want no-module-line error", err)
	}
}

func TestModuleDirsScoping(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":                   "module scoped.example/m\n\ngo 1.22\n",
		"root.go":                  "package m\n",
		"inner/inner.go":           "package inner\n",
		"inner/inner_test.go":      "package inner\n", // test-only files don't make a dir a package
		"testonly/only_test.go":    "package testonly\n",
		"testdata/src/fix/f.go":    "package fix\n", // testdata is skipped
		"_build/gen.go":            "package gen\n", // underscore dirs are skipped
		".hidden/h.go":             "package h\n",   // hidden dirs are skipped
		"vendor/dep/d.go":          "package dep\n", // vendor is skipped
		"out/artifact.go":          "package out\n", // build output is skipped
		"docs/readme.txt":          "",
		"nested/deep/pkg/p.go":     "package pkg\n",
		"nested/deep/pkg/skip.txt": "",
	})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	dirs, err := loader.ModuleDirs()
	if err != nil {
		t.Fatalf("ModuleDirs: %v", err)
	}
	var rel []string
	for _, d := range dirs {
		r, err := filepath.Rel(root, d)
		if err != nil {
			t.Fatal(err)
		}
		rel = append(rel, filepath.ToSlash(r))
	}
	want := []string{".", "inner", "nested/deep/pkg"}
	if len(rel) != len(want) {
		t.Fatalf("dirs = %v, want %v", rel, want)
	}
	for i := range want {
		if rel[i] != want[i] {
			t.Fatalf("dirs = %v, want %v", rel, want)
		}
	}
}

func TestLoadDirImportPathsAndCache(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":     "module path.example/m\n\ngo 1.22\n",
		"root.go":    "package m\n\nimport \"path.example/m/lib\"\n\nvar _ = lib.Answer\n",
		"lib/lib.go": "package lib\n\nconst Answer = 42\n",
	})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	rootPkg, err := loader.LoadDir(root)
	if err != nil {
		t.Fatalf("LoadDir(root): %v", err)
	}
	if rootPkg.Path != "path.example/m" {
		t.Errorf("root import path = %q", rootPkg.Path)
	}
	libPkg, err := loader.LoadDir(filepath.Join(root, "lib"))
	if err != nil {
		t.Fatalf("LoadDir(lib): %v", err)
	}
	if libPkg.Path != "path.example/m/lib" {
		t.Errorf("lib import path = %q", libPkg.Path)
	}
	// The dependency was loaded during root's type check; the explicit
	// LoadDir must hit the cache and return the same *Package.
	again, err := loader.LoadDir(filepath.Join(root, "lib"))
	if err != nil {
		t.Fatal(err)
	}
	if again != libPkg {
		t.Error("LoadDir did not cache: distinct *Package for the same dir")
	}
}

func TestLoadDirErrors(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":       "module err.example/m\n\ngo 1.22\n",
		"empty/x.txt":  "",
		"badtype/a.go": "package badtype\n\nvar x int = \"s\"\n",
		"badsyn/a.go":  "package badsyn\n\nfunc {\n",
	})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if _, err := loader.LoadDir(filepath.Join(root, "empty")); err == nil {
		t.Error("LoadDir(empty) succeeded, want no-source error")
	}
	if _, err := loader.LoadDir(filepath.Join(root, "badtype")); err == nil ||
		!strings.Contains(err.Error(), "type-checking") {
		t.Errorf("LoadDir(badtype) err = %v, want type-checking error", err)
	}
	if _, err := loader.LoadDir(filepath.Join(root, "badsyn")); err == nil {
		t.Error("LoadDir(badsyn) succeeded, want parse error")
	}
}

func TestLoadDirImportCycle(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":   "module cyc.example/m\n\ngo 1.22\n",
		"a/a.go":   "package a\n\nimport \"cyc.example/m/b\"\n\nvar _ = b.V\n",
		"b/b.go":   "package b\n\nimport \"cyc.example/m/a\"\n\nvar V = 1\nvar _ = a.W\n",
		"README":   "",
		"c/ok.go":  "package c\n",
		"c/t.tmpl": "",
	})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if _, err := loader.LoadDir(filepath.Join(root, "a")); err == nil {
		t.Error("import cycle not detected")
	}
	// Unrelated packages still load after the failure.
	if _, err := loader.LoadDir(filepath.Join(root, "c")); err != nil {
		t.Errorf("LoadDir(c) after cycle failure: %v", err)
	}
}
