// The detflow check: determinism taint must never reach the replayable
// command surface.
//
// ROADMAP item 4 puts the adaptive controller's decisions into the
// command log and replays them; the differential replay test then
// demands that Apply/ReplayLog/Replay produce bit-identical state
// digests. That only holds if no input to the command surface depends
// on the wall clock, the unseeded global rand source, or map iteration
// order. The v1 determinism check bans those sources *inside simulator
// packages*; detflow closes the interprocedural gap: a cmd/ tool may
// freely read time.Now for its own reporting, but the moment a function
// that (transitively) reads nondeterministic input also (transitively)
// calls a registered replay sink, that meeting point is reported.
//
// The sinks are registered in replaySinkTable (annotations.go) and
// validated against the type-checked package like every other
// annotation table. Taint does not propagate through dynamic or
// goroutine-spawned edges — the call graph is deliberately
// under-approximate there, a polarity docs/LINT.md documents — and the
// diagnostic is emitted at the *lowest* meeting point so one tainted
// helper does not cascade into a report in every caller above it.
package analysis

import "go/ast"

// DetFlow returns the detflow analyzer.
func DetFlow() *Analyzer {
	return &Analyzer{
		Name: "detflow",
		Doc:  "nondeterministic input (time/rand/map order) must not reach the replayable command surface",
		Run: func(p *Pass) []Diagnostic {
			ip := p.interpFacts()
			diags := append([]Diagnostic(nil), ip.detflowBuckets()[p.Pkg.Path]...)
			validateReplaySinks(p, &diags)
			return diags
		},
	}
}

// validateReplaySinks checks the annotation table entries naming this
// package, so a renamed sink makes the stale entry itself a diagnostic.
func validateReplaySinks(p *Pass, diags *[]Diagnostic) {
	for _, spec := range replaySinkSpecsFor(p.Pkg.Path) {
		for _, f := range spec.Funcs {
			if !hasFuncNamed(p, f) {
				p.reportAtPkg(diags, "detflow",
					"stale replaySinkTable entry: %s declares no function %q", p.Pkg.Path, f)
			}
		}
	}
}

// taintBits orders the taint sources for witness selection; the first
// bit present in a summary is the one reported.
var taintBits = []effect{effTime, effRand, effMapOrder}

// detflowBuckets computes the check once per run, bucketed by package.
func (ip *interp) detflowBuckets() map[string][]Diagnostic {
	if ip.detflow != nil {
		return ip.detflow
	}
	out := make(map[string][]Diagnostic)
	add := func(pkg *Package, n ast.Node, format string, args ...any) {
		pass := &Pass{Pkg: pkg}
		var ds []Diagnostic
		pass.report(&ds, "detflow", n, format, args...)
		out[pkg.Path] = append(out[pkg.Path], ds...)
	}
	ip.detflow = out

	for _, fn := range ip.byQname() {
		taint := fn.eff & taintMask
		if taint == 0 || !(fn.sink || fn.reaches) {
			continue
		}
		// Lowest meeting point: if a direct callee already carries both
		// the taint and the sink, the defect is (or is below) that
		// callee — report there, not in every transitive caller.
		deferred := false
		for _, cs := range fn.calls {
			if cs.dynamic || cs.spawned {
				continue
			}
			if c := ip.fnOf(cs.callee); c != nil && c.eff&taintMask != 0 && (c.sink || c.reaches) {
				deferred = true
				break
			}
		}
		if deferred {
			continue
		}
		var bit effect
		for _, b := range taintBits {
			if taint&b != 0 {
				bit = b
				break
			}
		}
		node, desc := ip.taintWitness(fn, bit)
		if node == nil {
			continue // unreachable: a set bit always has a witness
		}
		if fn.sink {
			add(fn.pkg, node,
				"replay sink %s itself reads nondeterministic input (%s); replayed commands must be bit-for-bit deterministic", fn.short, desc)
			continue
		}
		_, sinkName := ip.sinkWitness(fn)
		add(fn.pkg, node,
			"nondeterministic input (%s) reaches replay sink %s; replayed commands must be bit-for-bit deterministic", desc, sinkName)
	}
	return out
}

// taintWitness picks the deterministic anchor for a taint bit inside
// fn: the intrinsic site when the function reads the source itself,
// otherwise the first call site (in source order) whose callee carries
// the bit.
func (ip *interp) taintWitness(fn *interpFn, bit effect) (ast.Node, string) {
	if fn.intr&bit != 0 {
		s := fn.effSite[bit]
		return s.node, s.desc
	}
	for _, cs := range fn.calls {
		if cs.dynamic || cs.spawned {
			continue
		}
		if c := ip.fnOf(cs.callee); c != nil && c.eff&bit != 0 {
			return cs.call, "call to " + c.short + ", which transitively " + bit.describe()
		}
	}
	return nil, ""
}
