// The interprocedural layer: a deterministic call graph over every
// package of one lint run plus bottom-up function effect summaries.
//
// pd2lint v1/v2 checks are intraprocedural: they can flag a time.Now()
// or a heap escape only inside the function that contains it. The
// invariants the next engine milestones lean on are *transitive*
// properties — "the slot loop is allocation-free all the way down",
// "nothing nondeterministic feeds the command log", "locks are always
// taken in one global order" — so this file lifts the existing per-
// function facts to the call graph:
//
//   - Static call edges are resolved through go/types: direct function
//     calls, concrete method calls (including cross-package ones — the
//     loader shares type objects, so a *types.Func is identical however
//     it is reached), and generic instantiations via Origin(). Calls
//     through interfaces or function values are kept as explicit
//     *dynamic* edges: no effect propagates through them (taint could
//     be missed; docs/LINT.md spells the polarity out) but hotalloc
//     flags them, because "unknown callee" and "allocation-free" cannot
//     coexist.
//   - Effect summaries (allocates, reads-time, reads-unseeded-rand,
//     ranges-over-map order-sensitively, blocks-on-channel, acquires
//     locks) are joined bottom-up to a fixpoint. The lattice is a
//     finite powerset and the transfer function is monotone union, so
//     the fixpoint is unique — summaries do not depend on package load
//     order, which the byte-identical-diagnostics property test pins.
//
// Everything is cached per interp (one per RunChecks invocation) and
// per package; building is lazy, so runs that select none of the
// interprocedural checks pay nothing.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ---------------------------------------------------------------------
// Effect lattice.

// effect is a bitset of function effects, joined bottom-up over the
// call graph.
type effect uint8

const (
	// effAlloc: the function may allocate on the heap (it has at least
	// one alloc site of its own; see allocSite for the catalog).
	effAlloc effect = 1 << iota
	// effTime: reads the wall clock (time.Now/Since/Until).
	effTime
	// effRand: draws from the unseeded global math/rand source.
	effRand
	// effMapOrder: iterates a map order-sensitively with no following
	// deterministic sort (the determinism check's classifier).
	effMapOrder
	// effBlock: may block on a channel (send, receive, select without
	// default, range over channel), a WaitGroup/Cond wait, or a sleep.
	effBlock
)

// taintMask is the subset of effects that make a function's output
// nondeterministic across runs — the detflow taint sources.
const taintMask = effTime | effRand | effMapOrder

func (e effect) describe() string {
	var parts []string
	if e&effAlloc != 0 {
		parts = append(parts, "allocates")
	}
	if e&effTime != 0 {
		parts = append(parts, "reads the wall clock")
	}
	if e&effRand != 0 {
		parts = append(parts, "reads unseeded randomness")
	}
	if e&effMapOrder != 0 {
		parts = append(parts, "depends on map iteration order")
	}
	if e&effBlock != 0 {
		parts = append(parts, "may block")
	}
	if len(parts) == 0 {
		return "pure"
	}
	return strings.Join(parts, ", ")
}

// ---------------------------------------------------------------------
// Per-function records.

// callSite is one call expression with its resolution.
type callSite struct {
	call    *ast.CallExpr
	callee  *types.Func // static callee (Origin-normalized); nil if dynamic
	dynamic bool        // dispatch through an interface or function value
	inPanic bool        // appears inside panic(...) arguments (failure path)
	spawned bool        // the call is the operand of a go statement
}

// allocSite is one intrinsic heap-allocation site.
type allocSite struct {
	node ast.Node
	kind string // human-readable classification
}

// blockSite is one intrinsic potentially-blocking operation.
type blockSite struct {
	node ast.Node
	kind string
}

// lockAcq is one mutex acquisition, identified canonically (see lockID).
type lockAcq struct {
	id   string
	node ast.Node
}

// heldLock is one lock known to be held on some path, with the
// acquisition that introduced it (the earliest across joined paths).
type heldLock struct {
	id  string
	acq ast.Node
}

// lockFlowAcq is one acquisition with the set of locks already held on
// some path reaching it — the lock-order graph's same-function edges.
type lockFlowAcq struct {
	id   string
	node ast.Node
	held []heldLock // held before this acquisition; sorted, may be empty
}

// lockFlowLeak is one lock that is released on some path of the
// function but still held when the exit block is reached on another.
type lockFlowLeak struct {
	id  string
	acq ast.Node
}

// interpFn is the interprocedural summary of one declared function.
type interpFn struct {
	obj   *types.Func
	fi    *funcInfo
	pkg   *Package
	qname string // "importpath.Recv.Method" — the global key
	short string // "pkgbase.Recv.Method" — the message form

	noalloc bool // //lint:noalloc on the doc comment
	allocok bool // //lint:allocok on the doc comment

	calls    []callSite
	allocs   []allocSite
	blocks   []blockSite
	lockAcqs []lockAcq

	// CFG-derived lock facts (scanLockFlow): acquisitions with their
	// may-held sets, held sets at calls and at intrinsic blocking sites,
	// and locks leaked past a return on some path.
	acqs      []lockFlowAcq
	heldCall  map[*ast.CallExpr][]heldLock
	heldBlock map[ast.Node][]heldLock
	lockLeaks []lockFlowLeak

	intr    effect              // intrinsic effects (this body only)
	eff     effect              // transitive effects (fixpoint)
	effSite map[effect]*effSite // first intrinsic site per bit, source order
	locks   map[string]bool     // transitive lock-acquisition set

	sink     bool // this function is a registered replay sink
	reaches  bool // transitively calls a replay sink
	sinkSite ast.Node
	sinkName string
}

// effSite records where an intrinsic effect first occurs.
type effSite struct {
	node ast.Node
	desc string // e.g. "time.Now", "channel send"
}

// ---------------------------------------------------------------------
// The interp container.

// interp holds the call graph and summaries for one RunChecks
// invocation. It is shared by every Pass of the run and built lazily on
// first use.
type interp struct {
	pkgs  []*Package // sorted by import path — load order never leaks
	built bool

	fns   map[*types.Func]*interpFn
	order []*interpFn // deterministic: (pkg path, file order, decl order)

	// Memoized per-run check results, bucketed by package path; the
	// interprocedural checks compute globally once and each Pass returns
	// its own bucket.
	hotalloc  map[string][]Diagnostic
	detflow   map[string][]Diagnostic
	lockorder map[string][]Diagnostic
}

func newInterp(pkgs []*Package) *interp {
	sorted := make([]*Package, len(pkgs))
	copy(sorted, pkgs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })
	return &interp{pkgs: sorted}
}

// interpFacts returns the run-wide interprocedural layer, creating a
// single-package one when the Pass was built outside RunChecks.
func (p *Pass) interpFacts() *interp {
	if p.interp == nil {
		p.interp = newInterp([]*Package{p.Pkg})
	}
	p.interp.ensure()
	return p.interp
}

// ensure builds the call graph and runs the effect fixpoints.
func (ip *interp) ensure() {
	if ip.built {
		return
	}
	ip.built = true
	ip.fns = make(map[*types.Func]*interpFn)
	for _, pkg := range ip.pkgs {
		for _, fi := range collectFuncs(pkg) {
			obj, _ := pkg.Info.Defs[fi.Decl.Name].(*types.Func)
			if obj == nil {
				continue
			}
			fn := &interpFn{
				obj:     obj,
				fi:      fi,
				pkg:     pkg,
				qname:   pkg.Path + "." + fi.Name,
				short:   shortPkg(pkg.Path) + "." + fi.Name,
				effSite: make(map[effect]*effSite),
				locks:   make(map[string]bool),
			}
			fn.noalloc = hasFuncDirective(fi.Decl, noallocPrefix)
			fn.allocok = hasFuncDirective(fi.Decl, allocokPrefix)
			fn.sink = isReplaySink(fn.qname)
			ip.fns[obj] = fn
			ip.order = append(ip.order, fn)
		}
	}
	for _, fn := range ip.order {
		ip.scanBody(fn)
	}
	for _, fn := range ip.order {
		ip.scanLockFlow(fn)
	}
	ip.fixpoint()
}

// shortPkg renders an import path's base for messages ("repro/internal/
// core" -> "core").
func shortPkg(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// byQname returns the summaries sorted by qualified name — the
// deterministic iteration order every interprocedural check reports in.
func (ip *interp) byQname() []*interpFn {
	out := make([]*interpFn, len(ip.order))
	copy(out, ip.order)
	sort.Slice(out, func(i, j int) bool { return out[i].qname < out[j].qname })
	return out
}

// fnOf resolves a static callee to its in-run summary, or nil.
func (ip *interp) fnOf(obj *types.Func) *interpFn {
	if obj == nil {
		return nil
	}
	return ip.fns[obj]
}

// ---------------------------------------------------------------------
// Function directives (//lint:noalloc, //lint:allocok).

const (
	noallocPrefix = "lint:noalloc"
	allocokPrefix = "lint:allocok"
)

// hasFuncDirective reports whether the declaration's doc comment
// carries the directive. Directives live on the doc comment — a
// trailing comment inside the body does not count, mirroring how
// //lint:exhaustive anchors to type declarations.
func hasFuncDirective(fd *ast.FuncDecl, prefix string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		body := strings.TrimSpace(trimCommentMarkers(c.Text))
		if body == prefix || strings.HasPrefix(body, prefix+" ") {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------
// Body scanning: call sites, alloc sites, blocking sites, lock facts.

// scanBody fills the intrinsic facts of fn in one traversal family.
func (ip *interp) scanBody(fn *interpFn) {
	body := fn.fi.Decl.Body
	info := fn.pkg.Info

	skip := skippedNodes(body)
	params := paramObjects(fn.fi.Decl, info)

	// Accepted append targets: slices rooted in long-lived storage
	// (struct fields) or caller-owned buffers (parameters), plus locals
	// assigned from either — the `buf := s.buf[:0]` reuse idiom. Growth
	// of such a buffer is amortized: steady state re-appends into
	// retained capacity, which the runtime zero-alloc tests confirm.
	reused := reusedBuffers(body, info, params)

	// Map lookups keyed by string(byteSlice): the compiler compiles an
	// rvalue m[string(b)] without materializing the string, so the
	// conversion is free. Assignments (m[string(b)] = v) still intern
	// the key and stay flagged.
	mapIdxOK := mapIndexStringLookups(body, info)

	// Non-blocking select statements: their comm clauses are polls, not
	// waits, so the sends/receives inside the clause headers are exempt.
	nonBlockComm := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if hasDefault {
			for _, c := range sel.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					nonBlockComm[cc.Comm] = true
				}
			}
		}
		return true
	})

	addEff := func(bit effect, node ast.Node, desc string) {
		fn.intr |= bit
		if fn.effSite[bit] == nil {
			fn.effSite[bit] = &effSite{node: node, desc: desc}
		}
	}
	addAlloc := func(node ast.Node, kind string) {
		fn.allocs = append(fn.allocs, allocSite{node: node, kind: kind})
		addEff(effAlloc, node, kind)
	}
	addBlock := func(node ast.Node, kind string) {
		fn.blocks = append(fn.blocks, blockSite{node: node, kind: kind})
		addEff(effBlock, node, kind)
	}

	var walk func(n ast.Node, inPanic bool)
	walk = func(root ast.Node, inPanic bool) {
		ast.Inspect(root, func(n ast.Node) bool {
			if n == nil || skip[n] {
				return n != nil && !skip[n]
			}
			switch n := n.(type) {
			case *ast.GoStmt:
				addAlloc(n, "go statement allocates a goroutine")
				// The spawned body runs concurrently: its effects are not
				// the caller's. The call operand is recorded as a spawned
				// site so hotalloc can still see it if needed.
				if cs, ok := resolveCall(info, n.Call); ok {
					cs.spawned = true
					fn.calls = append(fn.calls, cs)
				}
				for _, arg := range n.Call.Args {
					walk(arg, inPanic)
				}
				return false
			case *ast.CallExpr:
				if id, ok := unparen(n.Fun).(*ast.Ident); ok && id.Name == "panic" && isBuiltinUse(info, id) {
					// Failure path: the function is about to die, so
					// allocation and effects inside the arguments are
					// exempt from hotalloc (the call edge is still kept,
					// marked inPanic).
					for _, arg := range n.Args {
						walk(arg, true)
					}
					return false
				}
				ip.scanCall(fn, n, info, inPanic, reused, mapIdxOK, addAlloc)
				if cs, ok := resolveCall(info, n); ok {
					cs.inPanic = inPanic
					fn.calls = append(fn.calls, cs)
					if !inPanic {
						if ext := externEffect(cs.callee, ip); ext != 0 {
							desc := "call to " + externName(cs.callee)
							for _, bit := range []effect{effTime, effRand, effBlock} {
								if ext&bit != 0 {
									addEff(bit, n, desc)
								}
							}
						}
					}
				}
			case *ast.UnaryExpr:
				switch n.Op {
				case token.AND:
					if _, ok := unparen(n.X).(*ast.CompositeLit); ok && !inPanic {
						addAlloc(n, "escaping composite literal allocates")
						walk(n.X, inPanic)
						return false
					}
				case token.ARROW:
					if !nonBlockComm[enclosingCommStmt(n, nonBlockComm)] {
						addBlock(n, "channel receive")
					}
				}
			case *ast.CompositeLit:
				if inPanic {
					return true
				}
				if t := exprType(info, n); t != nil {
					switch t.Underlying().(type) {
					case *types.Slice:
						addAlloc(n, "slice literal allocates")
					case *types.Map:
						addAlloc(n, "map literal allocates")
					}
				}
			case *ast.FuncLit:
				if !inPanic && !acceptedFuncLit(body, n) {
					addAlloc(n, "closure may be heap-allocated")
				}
				// The literal's body executes on this goroutine when
				// invoked; scan it as part of the enclosing function.
			case *ast.SendStmt:
				if !nonBlockComm[n] {
					addBlock(n, "channel send")
				}
			case *ast.SelectStmt:
				hasDefault := false
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
						hasDefault = true
					}
				}
				if !hasDefault {
					addBlock(n, "select with no default case")
				}
			case *ast.RangeStmt:
				if t := exprType(info, n.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						addBlock(n, "range over channel")
					}
				}
			case *ast.BinaryExpr:
				if !inPanic && n.Op == token.ADD {
					if t := exprType(info, n.X); t != nil && isStringType(t) {
						addAlloc(n, "string concatenation allocates")
					}
				}
			case *ast.AssignStmt:
				if !inPanic && n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 {
					if t := exprType(info, n.Lhs[0]); t != nil && isStringType(t) {
						addAlloc(n, "string concatenation allocates")
					}
				}
			}
			return true
		})
	}
	walk(body, false)

	// Map-order sensitivity: reuse the determinism check's classifier
	// (range over map + order-sensitive accumulation + no following
	// sort) so the two checks cannot drift apart.
	var scanRanges func(stmts []ast.Stmt)
	scanRanges = func(stmts []ast.Stmt) {
		for i, stmt := range stmts {
			if rs, ok := stmt.(*ast.RangeStmt); ok {
				if t := exprType(info, rs.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						if kind, sensitive := mapBodyOrderSensitive(rs, info); sensitive && !sortFollows(stmts[i+1:], info) {
							addEff(effMapOrder, rs, "map iteration that "+kind)
						}
					}
				}
			}
			for _, nested := range nestedStmtLists(stmt) {
				scanRanges(nested)
			}
		}
	}
	scanRanges(body.List)

	// Lock facts: acquisitions anywhere in the body (conservative
	// may-acquire set, including closures). The path-sensitive held
	// sets are computed separately by scanLockFlow on the CFG.
	ast.Inspect(body, func(n ast.Node) bool {
		if skip[n] {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if kind := lockCallKind(call, info); kind == "Lock" || kind == "RLock" {
			if id := lockIDOf(call, info, fn); id != "" {
				fn.lockAcqs = append(fn.lockAcqs, lockAcq{id: id, node: call})
			}
		}
		return true
	})
	for _, a := range fn.lockAcqs {
		fn.locks[a.id] = true
	}
}

// ---------------------------------------------------------------------
// CFG lock flow.

// lockFlowState is the forward dataflow state of scanLockFlow: the
// locks held on some path reaching a point, and the lock IDs with a
// pending defer-unlock.
type lockFlowState struct {
	held     []heldLock      // sorted by (acq position, id), one per id
	deferred map[string]bool // defer mu.Unlock() seen on the path
}

func cloneLockFlow(s lockFlowState) lockFlowState {
	out := lockFlowState{deferred: make(map[string]bool, len(s.deferred))}
	out.held = append([]heldLock(nil), s.held...)
	for id := range s.deferred {
		out.deferred[id] = true
	}
	return out
}

// holds reports whether id is in the held set.
func (s *lockFlowState) holds(id string) bool {
	for _, h := range s.held {
		if h.id == id {
			return true
		}
	}
	return false
}

// acquire adds id to the held set, keeping sorted order and the
// earliest acquisition as the witness.
func (s *lockFlowState) acquire(id string, node ast.Node) {
	if s.holds(id) {
		return
	}
	s.held = append(s.held, heldLock{id: id, acq: node})
	sortHeld(s.held)
}

// release removes id from the held set.
func (s *lockFlowState) release(id string) {
	for i, h := range s.held {
		if h.id == id {
			s.held = append(s.held[:i], s.held[i+1:]...)
			return
		}
	}
}

func sortHeld(held []heldLock) {
	sort.Slice(held, func(i, j int) bool {
		if held[i].acq.Pos() != held[j].acq.Pos() {
			return held[i].acq.Pos() < held[j].acq.Pos()
		}
		return held[i].id < held[j].id
	})
}

// scanLockFlow computes fn's path-sensitive lock facts on its CFG:
// which locks may be held at each acquisition, call, and intrinsic
// blocking site, and which locks can leak past a return. Replaces the
// lexical lock spans the v3 layer used — conditional unlocks and early
// returns are now modelled by the flow itself.
func (ip *interp) scanLockFlow(fn *interpFn) {
	body := fn.fi.Decl.Body
	if body == nil {
		return
	}
	info := fn.pkg.Info
	// Skip the flow entirely for functions that never touch a lock
	// (neither their own acquisitions nor unlocks of a caller's lock).
	touches := false
	ast.Inspect(body, func(n ast.Node) bool {
		if touches {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && lockCallKind(call, info) != "" {
			touches = true
		}
		return !touches
	})
	if !touches {
		return
	}

	g := fn.pkg.funcCFG(fn.fi.Decl)
	blockSites := make(map[ast.Node]bool, len(fn.blocks))
	for _, b := range fn.blocks {
		blockSites[b.node] = true
	}

	rec := false
	releases := make(map[string]bool) // ids this body unlocks anywhere

	// apply processes one CFG node (or mark) against the state.
	var apply func(n ast.Node, s *lockFlowState)
	apply = func(n ast.Node, s *lockFlowState) {
		// Blocking sites that the evaluated walk does not visit as
		// expressions (select statements live in block marks; range
		// headers are their own node).
		if rec && blockSites[n] && len(s.held) > 0 && fn.heldBlock[n] == nil {
			fn.heldBlock[n] = append([]heldLock(nil), s.held...)
		}
		walkEvaluated(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				// The literal runs when invoked, possibly elsewhere; its
				// body must not change this flow's state. But calls and
				// blocking operations written inside it while a lock is
				// held here are still performed under the lock whenever
				// the literal is invoked in place (the conservative
				// reading the lexical spans used).
				if rec && len(s.held) > 0 {
					snap := append([]heldLock(nil), s.held...)
					ast.Inspect(m.Body, func(mm ast.Node) bool {
						switch mm := mm.(type) {
						case *ast.CallExpr:
							if lockCallKind(mm, info) == "" && fn.heldCall[mm] == nil {
								fn.heldCall[mm] = snap
							}
						default:
							if blockSites[mm] && fn.heldBlock[mm] == nil {
								fn.heldBlock[mm] = snap
							}
						}
						return true
					})
				}
				return false
			case *ast.DeferStmt:
				switch lockCallKind(m.Call, info) {
				case "Unlock", "RUnlock":
					if id := lockIDOf(m.Call, info, fn); id != "" {
						s.deferred[id] = true
						releases[id] = true
					}
					return false
				}
				for _, a := range m.Call.Args {
					apply(a, s)
				}
				if rec && len(s.held) > 0 && fn.heldCall[m.Call] == nil {
					fn.heldCall[m.Call] = append([]heldLock(nil), s.held...)
				}
				return false
			case *ast.CallExpr:
				switch lockCallKind(m, info) {
				case "Lock", "RLock":
					if id := lockIDOf(m, info, fn); id != "" {
						if rec {
							fn.acqs = append(fn.acqs, lockFlowAcq{
								id: id, node: m,
								held: append([]heldLock(nil), s.held...),
							})
						}
						s.acquire(id, m)
					}
					return false
				case "Unlock", "RUnlock":
					if id := lockIDOf(m, info, fn); id != "" {
						s.release(id)
						releases[id] = true
					}
					return false
				}
				if rec && len(s.held) > 0 && fn.heldCall[m] == nil {
					fn.heldCall[m] = append([]heldLock(nil), s.held...)
				}
			default:
				if rec && blockSites[m] && len(s.held) > 0 && fn.heldBlock[m] == nil {
					fn.heldBlock[m] = append([]heldLock(nil), s.held...)
				}
			}
			return true
		})
	}

	fns := flowFns[lockFlowState]{
		init:  lockFlowState{deferred: make(map[string]bool)},
		clone: cloneLockFlow,
		join: func(dst, src lockFlowState) (lockFlowState, bool) {
			changed := false
			for _, h := range src.held {
				found := false
				for i, d := range dst.held {
					if d.id == h.id {
						found = true
						if h.acq.Pos() < d.acq.Pos() {
							dst.held[i].acq = h.acq
							changed = true
						}
					}
				}
				if !found {
					dst.held = append(dst.held, h)
					changed = true
				}
			}
			if changed {
				sortHeld(dst.held)
			}
			for id := range src.deferred {
				if !dst.deferred[id] {
					dst.deferred[id] = true
					changed = true
				}
			}
			return dst, changed
		},
		transfer: func(b *cfgBlock, s lockFlowState) lockFlowState {
			for _, n := range b.nodes {
				apply(n, &s)
			}
			for _, m := range b.marks {
				if rec && blockSites[m] && len(s.held) > 0 && fn.heldBlock[m] == nil {
					fn.heldBlock[m] = append([]heldLock(nil), s.held...)
				}
			}
			return s
		},
	}
	in, reached := solveForward(g, fns)

	// Replay with recording on, blocks in ID order, for deterministic
	// fact collection.
	rec = true
	fn.heldCall = make(map[*ast.CallExpr][]heldLock)
	fn.heldBlock = make(map[ast.Node][]heldLock)
	for _, b := range g.blocks {
		if !reached[b.id] {
			continue
		}
		s := cloneLockFlow(in[b.id])
		for _, n := range b.nodes {
			apply(n, &s)
		}
		for _, m := range b.marks {
			if blockSites[m] && len(s.held) > 0 && fn.heldBlock[m] == nil {
				fn.heldBlock[m] = append([]heldLock(nil), s.held...)
			}
		}
	}

	// Leaks: a lock this body releases on some path but still holds at
	// a normal return on another. Bodies that never release (explicit
	// lock-helper wrappers) are the caller's protocol, not a leak.
	if reached[g.exit.id] {
		exit := in[g.exit.id]
		for _, h := range exit.held {
			if releases[h.id] && !exit.deferred[h.id] {
				fn.lockLeaks = append(fn.lockLeaks, lockFlowLeak{id: h.id, acq: h.acq})
			}
		}
	}
}

// scanCall classifies one call expression's allocation behaviour:
// builtins (make/new/append) and conversions. Plain call edges are
// handled by the caller.
func (ip *interp) scanCall(fn *interpFn, call *ast.CallExpr, info *types.Info, inPanic bool, reused map[types.Object]bool, mapIdxOK map[ast.Node]bool, addAlloc func(ast.Node, string)) {
	if inPanic {
		return
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				addAlloc(call, "make allocates")
			case "new":
				addAlloc(call, "new allocates")
			case "append":
				if len(call.Args) > 0 && !bufferRooted(call.Args[0], info, reused) {
					addAlloc(call, "append to a fresh (non-reused) buffer may allocate")
				}
			}
			return
		}
	}
	// Conversions.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := exprType(info, call.Args[0])
		if src == nil {
			return
		}
		if types.IsInterface(dst.Underlying()) && !types.IsInterface(src.Underlying()) {
			addAlloc(call, "conversion to interface boxes its operand")
			return
		}
		if stringBytesConversion(dst, src) && !mapIdxOK[call] {
			addAlloc(call, "string conversion copies and allocates")
		}
	}
}

// mapIndexStringLookups collects the string([]byte) conversion calls
// used directly as the key of a map *read* (m[string(b)], including the
// comma-ok form). The compiler special-cases these lookups to avoid
// materializing the string, so hotalloc accepts them; conversions used
// as an assignment target's key (m[string(b)] = v) intern the key and
// are excluded.
func mapIndexStringLookups(body ast.Node, info *types.Info) map[ast.Node]bool {
	// Index expressions written to (assignment LHS, ++/--): their key
	// conversion still allocates.
	written := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				written[unparen(lhs)] = true
			}
		case *ast.IncDecStmt:
			written[unparen(n.X)] = true
		}
		return true
	})
	ok := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		ix, isIx := n.(*ast.IndexExpr)
		if !isIx || written[ix] {
			return true
		}
		mt, isMap := exprTypeUnderlying(info, ix.X).(*types.Map)
		if !isMap || !isStringType(mt.Key()) {
			return true
		}
		call, isCall := unparen(ix.Index).(*ast.CallExpr)
		if !isCall || len(call.Args) != 1 {
			return true
		}
		tv, found := info.Types[call.Fun]
		if !found || !tv.IsType() || !isStringType(tv.Type) {
			return true
		}
		src := exprType(info, call.Args[0])
		if src != nil && stringBytesConversion(tv.Type, src) {
			ok[call] = true
		}
		return true
	})
	return ok
}

// exprTypeUnderlying is exprType's underlying-type form.
func exprTypeUnderlying(info *types.Info, e ast.Expr) types.Type {
	t := exprType(info, e)
	if t == nil {
		return nil
	}
	return t.Underlying()
}

// stringBytesConversion reports string <-> []byte / []rune conversions,
// which copy.
func stringBytesConversion(dst, src types.Type) bool {
	isStr := func(t types.Type) bool { return isStringType(t) }
	isByteRuneSlice := func(t types.Type) bool {
		sl, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := sl.Elem().Underlying().(*types.Basic)
		if !ok {
			return false
		}
		return b.Kind() == types.Byte || b.Kind() == types.Rune ||
			b.Kind() == types.Uint8 || b.Kind() == types.Int32
	}
	return (isStr(dst) && isByteRuneSlice(src)) || (isByteRuneSlice(dst) && isStr(src))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isBuiltinUse reports whether the identifier resolves to a predeclared
// builtin (and is not shadowed by a user declaration).
func isBuiltinUse(info *types.Info, id *ast.Ident) bool {
	_, ok := info.Uses[id].(*types.Builtin)
	return ok
}

// skippedNodes collects subtrees the scanners must not descend into:
// the bodies of goroutine-spawned function literals (they run on
// another goroutine; the go statement itself is the caller's cost).
func skippedNodes(body ast.Node) map[ast.Node]bool {
	skip := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if lit, ok := unparen(g.Call.Fun).(*ast.FuncLit); ok {
			skip[lit.Body] = true
		}
		return true
	})
	return skip
}

// paramObjects collects the declaration's parameter and receiver
// objects (callers own buffers passed in, so appends to them are the
// strconv.AppendInt idiom, amortized by the caller).
func paramObjects(fd *ast.FuncDecl, info *types.Info) map[types.Object]bool {
	objs := make(map[types.Object]bool)
	addField := func(f *ast.Field) {
		for _, name := range f.Names {
			if obj := info.Defs[name]; obj != nil {
				objs[obj] = true
			}
		}
	}
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			addField(f)
		}
	}
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			addField(f)
		}
	}
	// Function-literal parameters count too: the closure's caller owns
	// those buffers.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Type.Params != nil {
			for _, f := range lit.Type.Params.List {
				addField(f)
			}
		}
		return true
	})
	return objs
}

// bufferRooted reports whether e denotes a reused buffer: an expression
// rooted in a struct field (retained capacity across calls), a
// parameter (caller-owned), or a local assigned from either.
func bufferRooted(e ast.Expr, info *types.Info, reused map[types.Object]bool) bool {
	e = unparen(e)
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			// x.f — a field (or package var) backed buffer.
			return true
		case *ast.SliceExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.Ident:
			obj := identObj(info, x)
			return obj != nil && reused[obj]
		default:
			return false
		}
	}
}

// reusedBuffers computes the locals that alias a reused buffer: params
// and receivers seed the set, and assignment from a buffer-rooted
// expression (including append results) extends it, iterated to a
// fixpoint for loop-carried chains.
func reusedBuffers(body ast.Node, info *types.Info, params map[types.Object]bool) map[types.Object]bool {
	reused := make(map[types.Object]bool, len(params))
	for obj := range params {
		reused[obj] = true
	}
	rooted := func(e ast.Expr) bool {
		e = unparen(e)
		if call, ok := e.(*ast.CallExpr); ok {
			if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && len(call.Args) > 0 {
					return bufferRooted(call.Args[0], info, reused)
				}
			}
			return false
		}
		return bufferRooted(e, info, reused)
	}
	add := func(id *ast.Ident) bool {
		if id == nil || id.Name == "_" {
			return false
		}
		obj := identObj(info, id)
		if obj == nil || reused[obj] {
			return false
		}
		reused[obj] = true
		return true
	}
	for round := 0; round < 8; round++ {
		changed := false
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, rhs := range n.Rhs {
					if !rooted(rhs) {
						continue
					}
					if id, ok := unparen(n.Lhs[i]).(*ast.Ident); ok && add(id) {
						changed = true
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) != len(n.Values) {
					return true
				}
				for i, v := range n.Values {
					if rooted(v) && add(n.Names[i]) {
						changed = true
					}
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
	return reused
}

// acceptedFuncLit reports whether a function literal is in a position
// the compiler stack-allocates in practice: immediately invoked, or
// passed directly as a call argument (a non-escaping parameter). The
// runtime zero-alloc tests back this acceptance; stored, returned or
// spawned closures stay flagged.
func acceptedFuncLit(body ast.Node, lit *ast.FuncLit) bool {
	accepted := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if unparen(call.Fun) == lit {
			accepted = true // immediately invoked
			return false
		}
		for _, arg := range call.Args {
			if unparen(arg) == lit {
				accepted = true
				return false
			}
		}
		return true
	})
	return accepted
}

// enclosingCommStmt is a helper for receive expressions used directly
// as a select comm statement (`case <-ch:` parses the receive as the
// comm's expression); the caller passes the known comm set.
func enclosingCommStmt(n ast.Node, comms map[ast.Node]bool) ast.Node {
	// A receive in a comm clause appears as an ExprStmt or AssignStmt
	// comm; match by position since we only have the expression here.
	for c := range comms {
		if c.Pos() <= n.Pos() && n.End() <= c.End() {
			return c
		}
	}
	return n
}

// ---------------------------------------------------------------------
// Call resolution.

// resolveCall classifies a call expression. ok=false means the
// expression is not a function call at all (conversion, builtin,
// immediately-invoked literal — each handled elsewhere).
func resolveCall(info *types.Info, call *ast.CallExpr) (callSite, bool) {
	fun := unparen(call.Fun)
	// Generic instantiation: G[int](x) / m[K,V](x).
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		if tv, ok := info.Types[ix.X]; ok && !tv.IsType() {
			fun = unparen(ix.X)
		}
	case *ast.IndexListExpr:
		fun = unparen(ix.X)
	}
	switch f := fun.(type) {
	case *ast.Ident:
		switch o := info.Uses[f].(type) {
		case *types.Func:
			return callSite{call: call, callee: funcOrigin(o)}, true
		case *types.Builtin:
			return callSite{}, false
		case *types.TypeName:
			return callSite{}, false // conversion
		case *types.Var:
			return callSite{call: call, dynamic: true}, true // func-valued variable
		case *types.Nil:
			return callSite{}, false
		}
		if tv, ok := info.Types[f]; ok && tv.IsType() {
			return callSite{}, false
		}
		return callSite{call: call, dynamic: true}, true
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			if m, ok := sel.Obj().(*types.Func); ok {
				if recvIsInterface(m) {
					return callSite{call: call, dynamic: true}, true
				}
				return callSite{call: call, callee: funcOrigin(m)}, true
			}
			return callSite{call: call, dynamic: true}, true // func-typed field
		}
		switch o := info.Uses[f.Sel].(type) {
		case *types.Func:
			return callSite{call: call, callee: funcOrigin(o)}, true
		case *types.TypeName:
			return callSite{}, false // qualified conversion
		case *types.Var:
			return callSite{call: call, dynamic: true}, true
		}
		return callSite{call: call, dynamic: true}, true
	case *ast.FuncLit:
		return callSite{}, false // immediately invoked; body scanned inline
	}
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return callSite{}, false
	}
	return callSite{call: call, dynamic: true}, true
}

func funcOrigin(f *types.Func) *types.Func {
	if o := f.Origin(); o != nil {
		return o
	}
	return f
}

func recvIsInterface(m *types.Func) bool {
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return types.IsInterface(t.Underlying())
}

// externName renders a callee outside the run for messages:
// "time.Now", "(*sync.WaitGroup).Wait".
func externName(obj *types.Func) string {
	if obj == nil {
		return "an unknown function"
	}
	sig, _ := obj.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if rn := recvShortName(sig); rn != "" {
			return rn + "." + obj.Name()
		}
	}
	if obj.Pkg() != nil {
		return shortPkg(obj.Pkg().Path()) + "." + obj.Name()
	}
	return obj.Name()
}

// externKey renders the allocFree-table key of a callee:
// "strconv.AppendInt" (functions) or "sync.WaitGroup.Wait" (methods,
// pointer receivers spelled without the star).
func externKey(obj *types.Func) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	sig, _ := obj.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if rn := recvBareName(sig); rn != "" {
			return obj.Pkg().Path() + "." + rn + "." + obj.Name()
		}
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

func recvBareName(sig *types.Signature) string {
	t := sig.Recv().Type()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

func recvShortName(sig *types.Signature) string {
	t := sig.Recv().Type()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			return shortPkg(obj.Pkg().Path()) + "." + obj.Name()
		}
		return obj.Name()
	}
	return ""
}

// externEffect returns the effects of a callee with no body in the run,
// from a small curated table of standard-library sources. Unknown
// externals contribute no effects (the conservative direction for the
// *reporting* checks differs per check and is handled there).
func externEffect(obj *types.Func, ip *interp) effect {
	if obj == nil || obj.Pkg() == nil {
		return 0
	}
	if ip != nil && ip.fns[obj] != nil {
		return 0 // in-run; propagated by the fixpoint instead
	}
	sig, _ := obj.Type().(*types.Signature)
	recv := ""
	if sig != nil && sig.Recv() != nil {
		recv = recvBareName(sig)
	}
	switch obj.Pkg().Path() {
	case "time":
		if recv == "" {
			switch obj.Name() {
			case "Now", "Since", "Until":
				return effTime
			case "Sleep":
				return effBlock
			}
		}
	case "math/rand", "math/rand/v2":
		if recv == "" && !globalRandConstructors[obj.Name()] {
			return effRand
		}
	case "sync":
		if (recv == "WaitGroup" || recv == "Cond") && obj.Name() == "Wait" {
			return effBlock
		}
	}
	return 0
}

// ---------------------------------------------------------------------
// Lock identity.

// lockIDOf canonicalizes the receiver of a Lock/RLock call. Field
// locks are identified by their owning named type ("<pkg>.<Type>.<field>"
// — every instance of the type shares one ordering discipline),
// package-level locks by the variable path, locals by function scope.
func lockIDOf(call *ast.CallExpr, info *types.Info, fn *interpFn) string {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	return lockExprID(sel.X, info, fn)
}

func lockExprID(e ast.Expr, info *types.Info, fn *interpFn) string {
	e = unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = unparen(u.X)
	}
	switch x := e.(type) {
	case *ast.SelectorExpr:
		// base.field: prefer the named type of base; fall back to a
		// package-level variable path.
		if t := exprType(info, x.X); t != nil {
			if tn := namedTypePath(t); tn != "" {
				return tn + "." + x.Sel.Name
			}
		}
		if id, ok := unparen(x.X).(*ast.Ident); ok {
			if obj := identObj(info, id); obj != nil {
				if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
					return v.Pkg().Path() + "." + v.Name() + "." + x.Sel.Name
				}
				if pn, ok := obj.(*types.PkgName); ok {
					return pn.Imported().Path() + "." + x.Sel.Name
				}
			}
		}
		// Nested unnamed structure: qualify with the root identifier.
		if root := rootIdent(x.X); root != nil {
			return fn.pkg.Path + "." + root.Name + "." + x.Sel.Name
		}
		return ""
	case *ast.Ident:
		obj := identObj(info, x)
		if obj == nil {
			return ""
		}
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
		return fn.qname + "#" + x.Name // function-local mutex
	}
	return ""
}

// namedTypePath renders "<import path>.<TypeName>" of t, peeling one
// pointer.
func namedTypePath(t types.Type) string {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj == nil {
		return ""
	}
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// shortLockID renders a lock ID for messages: the import path prefix is
// reduced to its base ("repro/internal/serve.pendingPool.mu" ->
// "serve.pendingPool.mu").
func shortLockID(id string) string {
	if i := strings.LastIndexByte(id, '/'); i >= 0 {
		return id[i+1:]
	}
	return id
}

// ---------------------------------------------------------------------
// Fixpoints.

// fixpoint joins callee effects, lock sets and sink reachability up the
// call graph until stable. Dynamic and spawned edges propagate nothing
// (see the package comment for the polarity argument); panic-path edges
// propagate normally — an effect on a failure path is still an effect.
func (ip *interp) fixpoint() {
	for {
		changed := false
		for _, fn := range ip.order {
			eff := fn.eff | fn.intr
			for _, cs := range fn.calls {
				if cs.dynamic || cs.spawned {
					continue
				}
				if callee := ip.fnOf(cs.callee); callee != nil {
					eff |= callee.eff
					for id := range callee.locks {
						if !fn.locks[id] {
							fn.locks[id] = true
							changed = true
						}
					}
					if (callee.sink || callee.reaches) && !fn.reaches {
						fn.reaches = true
						changed = true
					}
				} else {
					eff |= externEffect(cs.callee, ip)
					if isReplaySinkObj(cs.callee) && !fn.reaches {
						fn.reaches = true
						changed = true
					}
				}
			}
			if eff != fn.eff {
				fn.eff = eff
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// sinkWitness fills fn.sinkSite/sinkName deterministically: the first
// call site in source order that leads to a replay sink.
func (ip *interp) sinkWitness(fn *interpFn) (ast.Node, string) {
	if fn.sinkSite != nil {
		return fn.sinkSite, fn.sinkName
	}
	for _, cs := range fn.calls {
		if cs.dynamic || cs.spawned {
			continue
		}
		if callee := ip.fnOf(cs.callee); callee != nil {
			if callee.sink {
				fn.sinkSite, fn.sinkName = cs.call, callee.short
				return fn.sinkSite, fn.sinkName
			}
			if callee.reaches {
				_, name := ip.sinkWitness(callee)
				fn.sinkSite, fn.sinkName = cs.call, name
				return fn.sinkSite, fn.sinkName
			}
		} else if isReplaySinkObj(cs.callee) {
			fn.sinkSite, fn.sinkName = cs.call, externName(cs.callee)
			return fn.sinkSite, fn.sinkName
		}
	}
	return nil, ""
}

// effectTrail locates the intrinsic site a transitive effect bit comes
// from, following first-in-source-order call edges. It returns the
// describing site plus the chain of functions between fn and it.
func (ip *interp) effectTrail(fn *interpFn, bit effect) (*effSite, []string) {
	visited := make(map[*interpFn]bool)
	var chain []string
	for {
		if visited[fn] {
			return nil, nil
		}
		visited[fn] = true
		if fn.intr&bit != 0 {
			return fn.effSite[bit], chain
		}
		next := (*interpFn)(nil)
		for _, cs := range fn.calls {
			if cs.dynamic || cs.spawned {
				continue
			}
			if callee := ip.fnOf(cs.callee); callee != nil && callee.eff&bit != 0 {
				next = callee
				break
			}
		}
		if next == nil {
			return nil, nil
		}
		chain = append(chain, next.short)
		fn = next
	}
}

// posOf renders a node's position in file:line form relative to its
// package for compact cross-function messages.
func (ip *interp) posOf(fn *interpFn, n ast.Node) string {
	pos := fn.pkg.Fset.Position(n.Pos())
	file := pos.Filename
	if i := strings.LastIndexByte(file, '/'); i >= 0 {
		file = file[i+1:]
	}
	return fmt.Sprintf("%s:%d", file, pos.Line)
}
