package analysis

import (
	"go/ast"
	"go/types"
)

// ErrDrop flags call statements that silently discard an error result
// in library and command packages. The figure pipeline writes TSV/JSON
// artifacts that EXPERIMENTS.md quotes verbatim; a short write that
// nobody notices produces a truncated artifact that still "passes".
// Explicitly assigning the error to _ is accepted as a deliberate,
// reviewable decision; a bare call statement is not.
//
// Calls that cannot meaningfully fail are exempt: fmt printing to
// stdout, fmt.Fprint* to os.Stdout/os.Stderr or to in-memory buffers
// (*bytes.Buffer, *strings.Builder), and the Write* methods of those
// buffer types (documented to always return a nil error).
func ErrDrop() *Analyzer {
	return &Analyzer{
		Name:      "errdrop",
		Doc:       "no silently dropped error returns in library and command code",
		AppliesTo: isCheckedPkg,
		Run:       runErrDrop,
	}
}

func runErrDrop(p *Pass) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			var how string
			switch n := n.(type) {
			case *ast.ExprStmt:
				if c, ok := n.X.(*ast.CallExpr); ok {
					call, how = c, "call statement"
				}
			case *ast.DeferStmt:
				call, how = n.Call, "deferred call"
			case *ast.GoStmt:
				call, how = n.Call, "go statement"
			}
			if call == nil {
				return true
			}
			if !returnsError(p.Pkg.Info, call) || errSafeCall(p.Pkg.Info, call) {
				return true
			}
			p.report(&diags, "errdrop",
				call, "%s drops an error result from %s; handle it or assign it to _ explicitly",
				how, calleeName(call))
			return true
		})
	}
	return diags
}

// returnsError reports whether any result of call has type error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	t := exprType(info, call)
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

// errSafeCall reports whether call is on the cannot-fail allowlist.
func errSafeCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// fmt.Print/Printf/Println to stdout: interactive reporting only.
	if selectorFromPkg(info, sel, "fmt") {
		switch sel.Sel.Name {
		case "Print", "Printf", "Println":
			return true
		case "Fprint", "Fprintf", "Fprintln":
			return len(call.Args) > 0 && safeWriter(info, call.Args[0])
		}
		return false
	}
	// Methods of *bytes.Buffer and *strings.Builder are documented to
	// return a nil error always.
	if recv := exprType(info, sel.X); recv != nil && bufferLike(recv) {
		return true
	}
	return false
}

// safeWriter reports whether e is os.Stdout, os.Stderr, or an in-memory
// buffer — writers whose failures either cannot happen or cannot be
// usefully handled by the caller.
func safeWriter(info *types.Info, e ast.Expr) bool {
	if sel, ok := e.(*ast.SelectorExpr); ok && selectorFromPkg(info, sel, "os") {
		return sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr"
	}
	t := exprType(info, e)
	return t != nil && bufferLike(t)
}

// bufferLike reports whether t is bytes.Buffer or strings.Builder
// (pointer or value — method calls on an addressable value record the
// value type as the receiver).
func bufferLike(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg, name := named.Obj().Pkg().Path(), named.Obj().Name()
	return (pkg == "bytes" && name == "Buffer") || (pkg == "strings" && name == "Builder")
}

// calleeName renders a best-effort name for the called function.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}
