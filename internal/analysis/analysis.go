// Package analysis implements pd2lint, a stdlib-only static-analysis
// suite that mechanically enforces the invariants the paper's drift
// bounds depend on.
//
// The PD² reweighting theorems (rules O and I, the per-reweight drift
// ≤ 1 quantum bound) are statements about *exact* quantities: weights,
// lags, and group deadlines computed in rational arithmetic on a
// deterministic, replayable slot schedule. A stray float64 comparison,
// an unseeded random source, or an order-dependent map iteration in a
// tie-break path does not fail a unit test — it silently corrupts the
// reproduced figures. This package turns those implicit rules into
// machine-checked ones.
//
// Thirteen checks are provided (see docs/LINT.md for the full
// rationale), in four layers:
//
// AST pattern matchers:
//
//   - fracexact:   no float arithmetic/comparison/conversion inside the
//     exact-arithmetic packages (internal/core, internal/agis,
//     internal/frac); reporting boundaries are annotated.
//   - floatcmp:    no ==/!= between floating-point operands anywhere.
//   - determinism: no time.Now/Since/Until, global math/rand, or
//     os.Getenv in simulator packages; no order-sensitive accumulation
//     from map iteration without a following deterministic sort.
//   - errdrop:     no silently dropped error returns in library and
//     command code.
//   - panicdoc:    panics in library packages must carry a message that
//     names the violated invariant (or propagate an error value).
//
// Intraprocedural dataflow (dataflow.go):
//
//   - poolescape:  pooled records never escape their slot unstamped.
//   - heapkey:     heap ordering keys are written only by their owners.
//   - gocapture:   goroutine closures do not race on captured state.
//   - eventexhaust: switches over //lint:exhaustive enums stay total.
//
// Interprocedural, on the run-wide call graph (interp.go):
//
//   - hotalloc:  //lint:noalloc functions are transitively
//     allocation-free, up to //lint:allocok boundaries.
//   - detflow:   no time/rand/map-order taint reaches the registered
//     replay sinks (core.Apply, ReplayLog, WriteState, StateDigest).
//   - lockorder: one global lock-acquisition order, no blocking
//     operation while a lock is held, and no path that returns with a
//     lock still held.
//
// Flow-sensitive, on per-function CFGs (cfg.go):
//
//   - ownxfer: pooled-record ownership transfers exactly once per
//     path — no use after a record is sent/freed, no double free, no
//     acquire path that leaks the record (annotations.go's
//     ownerXferTable). lockorder's held-set facts and poolescape's
//     use-after-free rule are also computed on the CFG, so conditional
//     unlocks, early returns, and loop-carried aliases are analyzed
//     path-sensitively.
//
// Diagnostics can be suppressed per line with
//
//	//lint:allow <check>[,<check>...] [reason]
//
// placed on the offending line or the line directly above it, or for a
// whole file with //lint:file-allow <check> [reason]. Everything here
// uses only the standard library (go/parser, go/ast, go/types,
// go/importer), preserving the module's zero-dependency constraint.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is a single finding at a source position.
type Diagnostic struct {
	Pos     token.Position `json:"-"`
	File    string         `json:"file"`
	Line    int            `json:"line"`
	Col     int            `json:"col"`
	Check   string         `json:"check"`
	Message string         `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// Pass carries everything an analyzer needs to inspect one package:
// the loaded package plus the shared fact cache (functions, exhaustive
// enums) built once per package no matter how many checks run.
type Pass struct {
	Pkg   *Package
	facts *packageFacts
	// interp is the run-wide interprocedural layer (call graph + effect
	// summaries), shared by every pass of one RunChecks invocation so the
	// graph is built once. Nil for a standalone pass; interpFacts()
	// falls back to a single-package graph then.
	interp *interp
}

// report appends a diagnostic for node n.
func (p *Pass) report(diags *[]Diagnostic, check string, n ast.Node, format string, args ...any) {
	pos := p.Pkg.Fset.Position(n.Pos())
	*diags = append(*diags, Diagnostic{
		Pos:     pos,
		File:    pos.Filename,
		Line:    pos.Line,
		Col:     pos.Column,
		Check:   check,
		Message: fmt.Sprintf(format, args...),
	})
}

// reportAtPkg appends a diagnostic anchored at the package clause of
// the package's first file — used for findings that have no AST node,
// such as stale annotation-table entries.
func (p *Pass) reportAtPkg(diags *[]Diagnostic, check string, format string, args ...any) {
	if len(p.Pkg.Files) == 0 {
		return
	}
	p.report(diags, check, p.Pkg.Files[0].Name, format, args...)
}

// Analyzer is one named invariant check.
type Analyzer struct {
	Name string
	Doc  string
	// AppliesTo filters by import path; nil means every package.
	AppliesTo func(pkgPath string) bool
	Run       func(p *Pass) []Diagnostic
}

// All is the full pd2lint suite in reporting order: the five v1
// AST-pattern checks, the four v2 dataflow checks, the three v3
// interprocedural checks built on the call-graph layer (interp.go),
// and the v4 flow-sensitive ownership check built on the CFG layer
// (cfg.go).
func All() []*Analyzer {
	return []*Analyzer{
		FracExact(),
		FloatCmp(),
		Determinism(),
		ErrDrop(),
		PanicDoc(),
		PoolEscape(),
		HeapKey(),
		GoCapture(),
		EventExhaust(),
		HotAlloc(),
		DetFlow(),
		LockOrder(),
		OwnXfer(),
	}
}

// ByName resolves a comma-separated list of check names against All.
func ByName(list string) ([]*Analyzer, error) {
	if list == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown check %q", name)
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("analysis: empty check list %q", list)
	}
	return out, nil
}

// Scope lists for the individual checks. Paths are import paths within
// this module. Keep these in sync with docs/LINT.md.
var (
	// exactPkgs compute scheduling state in exact rational arithmetic;
	// float arithmetic inside them voids the drift bounds.
	exactPkgs = []string{
		"repro/internal/core",
		"repro/internal/agis",
		"repro/internal/frac",
	}
	// reportingPkgs are the designated float boundaries (figure output,
	// statistics, Whisper geometry); fracexact never applies there.
	reportingPkgs = []string{
		"repro/internal/stats",
		"repro/internal/expr",
		"repro/internal/whisper",
	}
)

func pathIn(pkgPath string, list []string) bool {
	for _, p := range list {
		if pkgPath == p {
			return true
		}
	}
	return false
}

// isSimulatorPkg reports whether pkgPath is part of the deterministic
// simulator (the root package and everything under internal/ except the
// analysis tooling itself and the reporting boundary's RNG seeding).
func isSimulatorPkg(pkgPath string) bool {
	if pkgPath == "repro" {
		return true
	}
	if !strings.HasPrefix(pkgPath, "repro/internal/") {
		return false
	}
	// The lint tooling is not part of the simulated system.
	return pkgPath != "repro/internal/analysis"
}

// isLibraryPkg reports whether pkgPath holds library (non-main) code.
func isLibraryPkg(pkgPath string) bool {
	return pkgPath == "repro" || strings.HasPrefix(pkgPath, "repro/internal/")
}

// isCheckedPkg reports whether errdrop applies: library code plus the
// command binaries (their writers feed EXPERIMENTS.md artifacts), but
// not the pedagogical examples.
func isCheckedPkg(pkgPath string) bool {
	return isLibraryPkg(pkgPath) || strings.HasPrefix(pkgPath, "repro/cmd/")
}

// RunOptions configures a RunChecksOpts invocation.
type RunOptions struct {
	// IgnoreScope disables per-check AppliesTo filters (used when linting
	// explicit directories such as seeded-violation fixtures).
	IgnoreScope bool
	// StaleSuppress reports //lint:allow and //lint:file-allow directives
	// that suppressed nothing during the run (check "suppress"). Only
	// meaningful when the full suite runs, so it is opt-in via
	// -strict-suppress.
	StaleSuppress bool
}

// RunChecks applies the analyzers to the packages, honouring scope
// filters unless ignoreScope is set, strips suppressed diagnostics,
// and returns the rest sorted by position.
func RunChecks(pkgs []*Package, checks []*Analyzer, ignoreScope bool) []Diagnostic {
	return RunChecksOpts(pkgs, checks, RunOptions{IgnoreScope: ignoreScope})
}

// RunChecksOpts is RunChecks with full options. One Pass (with its
// shared fact cache) is built per package and reused by every analyzer,
// so functions and enum registries are computed once per package.
func RunChecksOpts(pkgs []*Package, checks []*Analyzer, opts RunOptions) []Diagnostic {
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	var diags []Diagnostic
	ip := newInterp(pkgs)
	for _, pkg := range pkgs {
		pass := newPass(pkg)
		pass.interp = ip
		ran := make(map[string]bool)
		for _, a := range checks {
			if !opts.IgnoreScope && a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
				continue
			}
			ran[a.Name] = true
			for _, d := range a.Run(pass) {
				if pkg.suppressed(d) {
					continue
				}
				diags = append(diags, d)
			}
		}
		if opts.StaleSuppress {
			diags = append(diags, pkg.staleSuppressions(ran, known)...)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return diags
}

// ---------------------------------------------------------------------
// Shared type helpers.

// isFloat reports whether t's underlying type is a floating-point basic
// type (or an untyped float constant).
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&types.IsFloat != 0
}

// exprType returns the recorded type of e, or nil.
func exprType(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// pkgFunc reports whether call invokes the package-level function
// pkgPath.name, resolving through the type info (robust to import
// renaming).
func pkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return selectorFromPkg(info, sel, pkgPath) && sel.Sel.Name == name
}

// selectorFromPkg reports whether sel.X names the package with the given
// import path.
func selectorFromPkg(info *types.Info, sel *ast.SelectorExpr, pkgPath string) bool {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	return pn.Imported().Path() == pkgPath
}
