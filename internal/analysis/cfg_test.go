package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// trackedStmt collects every statement the CFG builder is responsible
// for placing: statement-list members plus the statement-valued fields
// the builder evaluates on a block (if/for/switch Init, for Post, the
// type-switch Assign, select Comm statements, the statement under a
// label). Function literal bodies are excluded by construction — the
// collector only descends through statement structure, and a literal
// is an expression.
func trackedStmt(st ast.Stmt, out []ast.Stmt) []ast.Stmt {
	out = append(out, st)
	switch s := st.(type) {
	case *ast.BlockStmt:
		for _, c := range s.List {
			out = trackedStmt(c, out)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			out = append(out, s.Init)
		}
		for _, c := range s.Body.List {
			out = trackedStmt(c, out)
		}
		if s.Else != nil {
			out = trackedStmt(s.Else, out)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			out = append(out, s.Init)
		}
		if s.Post != nil {
			out = append(out, s.Post)
		}
		for _, c := range s.Body.List {
			out = trackedStmt(c, out)
		}
	case *ast.RangeStmt:
		for _, c := range s.Body.List {
			out = trackedStmt(c, out)
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			out = append(out, s.Init)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, bs := range cc.Body {
					out = trackedStmt(bs, out)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			out = append(out, s.Init)
		}
		out = append(out, s.Assign)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, bs := range cc.Body {
					out = trackedStmt(bs, out)
				}
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					out = append(out, cc.Comm)
				}
				for _, bs := range cc.Body {
					out = trackedStmt(bs, out)
				}
			}
		}
	case *ast.LabeledStmt:
		out = trackedStmt(s.Stmt, out)
	}
	return out
}

// renderCFG produces a canonical textual form of the graph — block ids,
// node/cond/mark positions, and labelled edges — so two builds can be
// compared byte for byte.
func renderCFG(g *cfg) string {
	var sb strings.Builder
	for _, b := range g.blocks {
		fmt.Fprintf(&sb, "b%d:", b.id)
		for _, n := range b.nodes {
			fmt.Fprintf(&sb, " n@%d", n.Pos())
		}
		if b.cond != nil {
			fmt.Fprintf(&sb, " cond@%d", b.cond.Pos())
		}
		for _, m := range b.marks {
			fmt.Fprintf(&sb, " m@%d", m.Pos())
		}
		for _, e := range b.succs {
			fmt.Fprintf(&sb, " ->%d[%s]", e.to.id, e.kind)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// checkCFGInvariants asserts the builder contract the flow-sensitive
// checks depend on: blocks[0..2] are entry/exit/panicExit, exits have
// no successors, every edge targets a block that lives in the graph at
// its own id, every tracked statement of the body lands in exactly one
// block (nodes or marks), and a rebuild yields a byte-identical graph.
func checkCFGInvariants(t *testing.T, g *cfg, fd *ast.FuncDecl, info *types.Info) {
	t.Helper()
	pos := func(n ast.Node) string { return fmt.Sprintf("offset %d", n.Pos()) }
	if len(g.blocks) < 3 || g.entry != g.blocks[0] || g.exit != g.blocks[1] || g.panicExit != g.blocks[2] {
		t.Fatalf("entry/exit/panicExit must be blocks 0/1/2 (%d blocks)", len(g.blocks))
	}
	if len(g.exit.succs) != 0 || len(g.panicExit.succs) != 0 {
		t.Fatalf("exit blocks must have no successors")
	}
	for i, b := range g.blocks {
		if b.id != i {
			t.Fatalf("block at index %d has id %d; ids must be dense construction order", i, b.id)
		}
		for _, e := range b.succs {
			if e.to == nil || e.to.id < 0 || e.to.id >= len(g.blocks) || g.blocks[e.to.id] != e.to {
				t.Fatalf("edge from block %d targets a block outside the graph", b.id)
			}
		}
	}
	var tracked []ast.Stmt
	if fd.Body != nil {
		for _, st := range fd.Body.List {
			tracked = trackedStmt(st, tracked)
		}
	}
	count := make(map[ast.Stmt]int)
	for _, b := range g.blocks {
		for _, n := range b.nodes {
			if st, ok := n.(ast.Stmt); ok {
				count[st]++
			}
		}
		for _, st := range b.marks {
			count[st]++
		}
	}
	for _, st := range tracked {
		if count[st] != 1 {
			t.Errorf("%s: statement (%T) placed in %d blocks; every statement must land in exactly one",
				pos(st), st, count[st])
		}
	}
	if again := renderCFG(buildCFG(fd, info)); again != renderCFG(g) {
		t.Errorf("rebuild of %s produced a different graph; construction must be deterministic", fd.Name.Name)
	}
}

// fuzzTypeInfo best-effort type-checks a fuzzed file: most fuzz inputs
// do not type-check, which is fine — the builder needs the Info only to
// recognise the predeclared panic, and a partially filled Uses map
// degrades that edge, not the invariants.
func fuzzTypeInfo(fset *token.FileSet, file *ast.File) *types.Info {
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Error: func(error) {}}
	conf.Check("p", fset, []*ast.File{file}, info) //nolint:errcheck // partial Info is the point
	return info
}

// FuzzCFG feeds arbitrary function bodies to the builder and pins its
// invariants. The seed corpus covers every statement shape the builder
// special-cases, including dead code and an unterminated select.
func FuzzCFG(f *testing.F) {
	seeds := []string{
		"x := 1\nx++\n_ = x",
		"if x := f(); x > 0 {\n\treturn\n} else if x < 0 {\n\tpanic(\"neg\")\n}\n_ = 1",
		"for i := 0; i < 10; i++ {\n\tif i == 3 {\n\t\tcontinue\n\t}\n\tif i == 7 {\n\t\tbreak\n\t}\n}",
		"for {\n\treturn\n}",
		"for range xs {\n\tfor _, v := range xs {\n\t\t_ = v\n\t}\n}",
		"switch x := f(); x {\ncase 1, 2:\n\tfallthrough\ncase 3:\n\treturn\ndefault:\n\tx++\n}",
		"switch v := any(x).(type) {\ncase int:\n\t_ = v\ncase string:\n}",
		"select {\ncase v := <-ch:\n\t_ = v\ncase ch <- 1:\ndefault:\n}",
		"select {}",
		"L:\n\tfor {\n\t\tfor {\n\t\t\tcontinue L\n\t\t}\n\t}",
		"goto done\n_ = 1\ndone:\n\treturn",
		"defer f()\nreturn\n_ = 1",
		"g := func() {\n\treturn\n}\ng()",
		"{\n\t{\n\t\t;\n\t}\n}",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		src := "package p\n\nfunc fuzzed() {\n" + body + "\n}\n"
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.SkipObjectResolution)
		if err != nil {
			return
		}
		info := fuzzTypeInfo(fset, file)
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				checkCFGInvariants(t, buildCFG(fd, info), fd, info)
			}
		}
	})
}

// TestCFGInvariantsOnModule runs the same invariants over every
// function of the real module — the code the flow-sensitive checks
// actually analyze.
func TestCFGInvariantsOnModule(t *testing.T) {
	for _, pkg := range loadModulePkgs(t) {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					checkCFGInvariants(t, buildCFG(fd, pkg.Info), fd, pkg.Info)
				}
			}
		}
	}
}

// BenchmarkCFGBuild measures one fresh CFG construction pass over every
// function in the module — the incremental cost the v4 flow-sensitive
// layer adds on top of a loaded, type-checked module. Guarded by
// BENCH_core.json via make lint-bench.
func BenchmarkCFGBuild(b *testing.B) {
	pkgs := loadModulePkgs(b)
	type unit struct {
		fd   *ast.FuncDecl
		info *types.Info
	}
	var units []unit
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
					units = append(units, unit{fd, pkg.Info})
				}
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, u := range units {
			buildCFG(u.fd, u.info)
		}
	}
}
