// The heapkey check: heap ordering keys may only change under the
// owning heap's push/pop/fix discipline.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HeapKey flags writes to (and escaping addresses of) fields that a
// heap's comparison function reads, outside the owning heap's methods
// and the annotation table's explicitly allowed functions.
//
// The event-driven engine orders six calendar heaps by (tevent.at,
// tevent.seq) and the indexed PD² ready-heap by the offered subtask's
// (deadline, b-bit, group deadline) through taskState.offer/readyIdx.
// An in-place write to any of those fields while the element sits in a
// heap silently breaks the heap invariant: pops come out mis-ordered,
// the schedule diverges from the reference engine, and no unit test
// fails until a differential replay happens to cover the path. The
// key fields are registered in the annotation table (annotations.go);
// a stale table entry is itself a diagnostic.
func HeapKey() *Analyzer {
	return &Analyzer{
		Name: "heapkey",
		Doc:  "heap ordering keys are written only inside the owning heap's push/pop/fix call chain (annotation table)",
		AppliesTo: func(pkgPath string) bool {
			return len(heapKeySpecsFor(pkgPath)) > 0
		},
		Run: runHeapKey,
	}
}

func runHeapKey(p *Pass) []Diagnostic {
	specs := heapKeySpecsFor(p.Pkg.Path)
	if len(specs) == 0 {
		return nil
	}
	var diags []Diagnostic
	specs = validateHeapKeySpecs(p, specs, &diags)

	// keyFields: field object -> owning spec, resolved through go/types
	// so shadowed names and embedded selectors cannot confuse matching.
	keyOf := make(map[*types.Var]*heapKeySpec)
	for i := range specs {
		s := &specs[i]
		st, ok := lookupStruct(p.Pkg.Types, s.Struct)
		if !ok {
			continue
		}
		for j := 0; j < st.NumFields(); j++ {
			f := st.Field(j)
			for _, name := range s.Fields {
				if f.Name() == name {
					keyOf[f] = s
				}
			}
		}
	}
	if len(keyOf) == 0 {
		return diags
	}

	for _, fi := range p.Funcs() {
		allowed := func(s *heapKeySpec) bool {
			if fi.Recv == s.Owner {
				return true
			}
			for _, name := range s.AllowIn {
				if fi.Name == name {
					return true
				}
			}
			return false
		}
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if f, s := keyField(p.Pkg.Info, lhs, keyOf); f != nil && !allowed(s) {
						p.report(&diags, "heapkey", lhs,
							"write to heap ordering key %s.%s outside %s's methods (allowed: %s); reorder only via the owning heap",
							s.Struct, f.Name(), s.Owner, allowedList(s))
					}
				}
			case *ast.IncDecStmt:
				if f, s := keyField(p.Pkg.Info, n.X, keyOf); f != nil && !allowed(s) {
					p.report(&diags, "heapkey", n,
						"in-place %s of heap ordering key %s.%s outside %s's methods (allowed: %s)",
						n.Tok, s.Struct, f.Name(), s.Owner, allowedList(s))
				}
			case *ast.UnaryExpr:
				if n.Op != token.AND {
					return true
				}
				if f, s := keyField(p.Pkg.Info, n.X, keyOf); f != nil && !allowed(s) {
					p.report(&diags, "heapkey", n,
						"address of heap ordering key %s.%s taken outside %s's methods; the escaping pointer can mutate heap order",
						s.Struct, f.Name(), s.Owner)
				}
			}
			return true
		})
	}
	return diags
}

// keyField resolves e (if it is a selector of a registered ordering
// key) to the field object and its spec.
func keyField(info *types.Info, e ast.Expr, keyOf map[*types.Var]*heapKeySpec) (*types.Var, *heapKeySpec) {
	sel, ok := unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	// Prefer the recorded selection (handles embedded fields); fall back
	// to the Uses entry for direct selectors.
	if s, ok := info.Selections[sel]; ok {
		if f, ok := s.Obj().(*types.Var); ok {
			if spec, ok := keyOf[f]; ok {
				return f, spec
			}
		}
		return nil, nil
	}
	if f, ok := info.Uses[sel.Sel].(*types.Var); ok {
		if spec, ok := keyOf[f]; ok {
			return f, spec
		}
	}
	return nil, nil
}

// allowedList renders the allowed writers of a spec for diagnostics.
func allowedList(s *heapKeySpec) string {
	names := append([]string{s.Owner + ".*"}, s.AllowIn...)
	return qualifyList(names)
}

// validateHeapKeySpecs drops (and reports) table entries whose struct,
// fields, owner type, or allow-listed functions no longer exist — the
// annotation table must not rot silently.
func validateHeapKeySpecs(p *Pass, specs []heapKeySpec, diags *[]Diagnostic) []heapKeySpec {
	var out []heapKeySpec
	for _, s := range specs {
		ok := true
		st, found := lookupStruct(p.Pkg.Types, s.Struct)
		if !found {
			p.reportAtPkg(diags, "heapkey",
				"stale annotation: heapkey table names struct %s.%s, which does not exist", s.Pkg, s.Struct)
			ok = false
		} else {
			for _, f := range s.Fields {
				if !structHasField(st, f) {
					p.reportAtPkg(diags, "heapkey",
						"stale annotation: heapkey table names field %s.%s, which does not exist", s.Struct, f)
					ok = false
				}
			}
		}
		if !typeDeclared(p.Pkg.Types, s.Owner) {
			p.reportAtPkg(diags, "heapkey",
				"stale annotation: heapkey table names owner type %s.%s, which does not exist", s.Pkg, s.Owner)
			ok = false
		}
		for _, name := range s.AllowIn {
			if !hasFuncNamed(p, name) {
				p.reportAtPkg(diags, "heapkey",
					"stale annotation: heapkey table allows %s in %s, which does not exist", name, s.Pkg)
				ok = false
			}
		}
		if ok {
			out = append(out, s)
		}
	}
	return out
}
