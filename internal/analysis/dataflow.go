// The multi-pass layer: per-package facts shared by every analyzer in a
// run, plus a lightweight intraprocedural dataflow toolkit (def/alias
// tracking, lock-region tracking, position-ordered kill/use scanning)
// built only on go/ast and go/types.
//
// pd2lint v1 checks were single-walk AST pattern matchers. The
// event-driven engine's invariants (pool reuse stamps, heap-key
// discipline, goroutine capture safety) are *dataflow* properties: they
// concern where a value came from and where it is still live, not what
// one expression looks like. The helpers here stay deliberately modest —
// flow-insensitive may-alias sets and lexical lock spans, all
// intraprocedural — because every diagnostic they feed is suppressible
// and reviewed; soundness beyond the function boundary is documented as
// out of scope in docs/LINT.md.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ---------------------------------------------------------------------
// Per-package shared facts.

// funcInfo describes one top-level function or method declaration.
type funcInfo struct {
	Decl *ast.FuncDecl
	File *ast.File
	// Recv is the bare receiver type name ("" for plain functions);
	// Name is "Recv.Method" for methods and the identifier for functions.
	Recv string
	Name string
}

// packageFacts caches artifacts every analyzer of a run may need, so
// each is computed once per package no matter how many checks run.
type packageFacts struct {
	funcs      []*funcInfo
	funcsBuilt bool
	enums      []*enumInfo
	enumsBuilt bool
}

// newPass builds the Pass (with its shared fact cache) for one package.
func newPass(pkg *Package) *Pass {
	return &Pass{Pkg: pkg, facts: &packageFacts{}}
}

// Funcs returns every top-level function and method of the package, in
// file order. Built once per package and shared across analyzers.
func (p *Pass) Funcs() []*funcInfo {
	if p.facts.funcsBuilt {
		return p.facts.funcs
	}
	p.facts.funcsBuilt = true
	p.facts.funcs = collectFuncs(p.Pkg)
	return p.facts.funcs
}

// collectFuncs lists the package's top-level declarations in file order.
// Shared by the per-package fact cache and the interprocedural layer.
func collectFuncs(pkg *Package) []*funcInfo {
	var out []*funcInfo
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fi := &funcInfo{Decl: fd, File: f, Name: fd.Name.Name}
			if fd.Recv != nil && len(fd.Recv.List) > 0 {
				fi.Recv = recvTypeName(fd.Recv.List[0].Type)
				if fi.Recv != "" {
					fi.Name = fi.Recv + "." + fd.Name.Name
				}
			}
			out = append(out, fi)
		}
	}
	return out
}

// recvTypeName extracts the bare type name of a receiver expression,
// peeling pointers and (for generic types) type parameter lists.
func recvTypeName(e ast.Expr) string {
	for {
		switch t := e.(type) {
		case *ast.StarExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.IndexListExpr:
			e = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}

// ---------------------------------------------------------------------
// Expression helpers shared by the dataflow checks.

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}

// rootIdent walks to the base identifier of an lvalue-shaped expression
// (x, x.f, x[i], *x, (x).f ...), or nil if the base is not an identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch t := unparen(e).(type) {
		case *ast.Ident:
			return t
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.SliceExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		default:
			return nil
		}
	}
}

// identObj resolves an identifier to its object (use or def).
func identObj(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// namedTypeName returns the name of the named (possibly pointed-to)
// type of t declared in pkg, or "".
func namedTypeName(t types.Type, pkg *types.Package) string {
	if t == nil {
		return ""
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		if ptr, ok := t.(*types.Pointer); ok {
			named, ok = ptr.Elem().(*types.Named)
			if !ok {
				return ""
			}
		} else {
			return ""
		}
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() != pkg {
		return ""
	}
	return obj.Name()
}

// ---------------------------------------------------------------------
// Def/alias tracking.

// aliasSet is the result of one intraprocedural def/alias pass: local
// objects that may alias a seeded value, with the position where each
// first joined the set.
type aliasSet struct {
	objs map[types.Object]token.Pos
}

// contains reports whether e is an identifier aliasing a seeded value.
func (s *aliasSet) contains(info *types.Info, e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	obj := identObj(info, id)
	if obj == nil {
		return false
	}
	_, in := s.objs[obj]
	return in
}

// trackAliases runs forward def/alias propagation over body: a variable
// assigned from an expression for which seed returns true — or from an
// existing alias — joins the set. Propagation iterates to a fixpoint so
// aliases established lexically later still flow through loops. The
// analysis is flow-insensitive (reassignment from a clean value does not
// remove an object): the result is a may-alias set, which is the right
// polarity for a linter whose false positives are suppressible.
func trackAliases(body ast.Node, info *types.Info, seed func(ast.Expr) bool) *aliasSet {
	s := &aliasSet{objs: make(map[types.Object]token.Pos)}
	if body == nil {
		return s
	}
	tainted := func(e ast.Expr) bool {
		e = unparen(e)
		if seed(e) {
			return true
		}
		return s.contains(info, e)
	}
	add := func(id *ast.Ident) bool {
		if id == nil || id.Name == "_" {
			return false
		}
		obj := identObj(info, id)
		if obj == nil {
			return false
		}
		if _, ok := s.objs[obj]; ok {
			return false
		}
		s.objs[obj] = id.Pos()
		return true
	}
	for round := 0; round < 8; round++ { // fixpoint; depth 8 covers any sane chain
		changed := false
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true // tuple-from-call: seeds are single-valued here
				}
				for i, rhs := range n.Rhs {
					if !tainted(rhs) {
						continue
					}
					if id, ok := unparen(n.Lhs[i]).(*ast.Ident); ok && add(id) {
						changed = true
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) != len(n.Values) {
					return true
				}
				for i, v := range n.Values {
					if tainted(v) && add(n.Names[i]) {
						changed = true
					}
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
	return s
}

// ---------------------------------------------------------------------
// Lock-region tracking.

// span is a half-open source interval.
type span struct{ from, to token.Pos }

// spanSet answers "is this position inside a held-lock region".
type spanSet []span

func (ss spanSet) contains(p token.Pos) bool {
	for _, s := range ss {
		if s.from <= p && p < s.to {
			return true
		}
	}
	return false
}

// lockedSpans computes the source spans of body during which a
// sync.Mutex / sync.RWMutex / sync.Locker is lexically held: from an
// x.Lock() (or x.RLock()) statement to the matching x.Unlock()
// (x.RUnlock()) later in the same statement list, or — for the
// Lock-then-defer-Unlock idiom — to the end of the surrounding body.
// Nested blocks inherit the region by position containment.
func lockedSpans(body *ast.BlockStmt, info *types.Info) spanSet {
	var spans spanSet
	if body == nil {
		return spans
	}
	var scan func(list []ast.Stmt, end token.Pos)
	scan = func(list []ast.Stmt, end token.Pos) {
		var start token.Pos // NoPos = not currently locked
		for _, st := range list {
			switch st := st.(type) {
			case *ast.ExprStmt:
				switch lockCallKind(st.X, info) {
				case "Lock", "RLock":
					if start == token.NoPos {
						start = st.End()
					}
				case "Unlock", "RUnlock":
					if start != token.NoPos {
						spans = append(spans, span{start, st.Pos()})
						start = token.NoPos
					}
				}
			case *ast.DeferStmt:
				switch lockCallKind(st.Call, info) {
				case "Unlock", "RUnlock":
					if start != token.NoPos {
						spans = append(spans, span{start, end})
						start = token.NoPos
					}
				}
			}
			// Recurse into nested statement lists; a Lock held at this
			// level covers them by position containment, so the nested
			// scan only needs to discover locks taken inside.
			for _, nested := range nestedStmtLists(st) {
				scan(nested, end)
			}
		}
		if start != token.NoPos {
			spans = append(spans, span{start, end})
		}
	}
	scan(body.List, body.End())
	return spans
}

// nestedStmtLists returns the statement lists directly nested in st.
func nestedStmtLists(st ast.Stmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	switch st := st.(type) {
	case *ast.BlockStmt:
		out = append(out, st.List)
	case *ast.IfStmt:
		out = append(out, st.Body.List)
		switch e := st.Else.(type) {
		case *ast.BlockStmt:
			out = append(out, e.List)
		case *ast.IfStmt:
			out = append(out, nestedStmtLists(e)...)
		}
	case *ast.ForStmt:
		out = append(out, st.Body.List)
	case *ast.RangeStmt:
		out = append(out, st.Body.List)
	case *ast.SwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.LabeledStmt:
		out = append(out, nestedStmtLists(st.Stmt)...)
	}
	return out
}

// lockCallKind classifies e as a Lock/RLock/Unlock/RUnlock method call
// on a sync.Mutex, sync.RWMutex, or sync.Locker; "" otherwise.
func lockCallKind(e ast.Expr, info *types.Info) string {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return ""
	}
	if !isSyncLocker(exprType(info, sel.X)) {
		return ""
	}
	return name
}

// isSyncLocker reports whether t is (a pointer to) a sync mutex type or
// the sync.Locker interface.
func isSyncLocker(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	switch obj.Name() {
	case "Mutex", "RWMutex", "Locker":
		return true
	}
	return false
}

// ---------------------------------------------------------------------
// Misc shared predicates.

// containsPanic reports whether any statement in list calls panic.
func containsPanic(list []ast.Stmt) bool {
	found := false
	for _, st := range list {
		ast.Inspect(st, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					found = true
					return false
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// qualify renders "Recv.Method" / "Func" names for diagnostics.
func qualifyList(names []string) string {
	return strings.Join(names, ", ")
}
