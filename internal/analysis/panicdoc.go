package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// PanicDoc requires that panic calls in library packages either
// propagate an error value or carry a "pkg: message" string naming the
// violated invariant. The exact-arithmetic layer deliberately panics on
// impossible states (overflow, zero denominators, malformed windows) —
// those panics are load-bearing documentation of the paper's
// preconditions, and a bare panic("oops") or panic(42) tells a future
// reader nothing about which invariant broke.
func PanicDoc() *Analyzer {
	return &Analyzer{
		Name:      "panicdoc",
		Doc:       "library panics must name the violated invariant or wrap an error",
		AppliesTo: isLibraryPkg,
		Run:       runPanicDoc,
	}
}

func runPanicDoc(p *Pass) []Diagnostic {
	var diags []Diagnostic
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" || len(call.Args) != 1 {
				return true
			}
			if obj := info.Uses[id]; obj != nil {
				if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
					return true // a shadowing user-defined panic
				}
			}
			if panicArgDocumented(info, call.Args[0]) {
				return true
			}
			p.report(&diags, "panicdoc",
				call, "panic message must reference the violated invariant (\"pkg: what broke\") or wrap an error value")
			return true
		})
	}
	return diags
}

// panicArgDocumented reports whether the panic argument is acceptable:
// an error value (including fmt.Errorf), or a string whose constant
// value — directly or as a fmt.Sprintf format — has the "pkg: message"
// shape.
func panicArgDocumented(info *types.Info, arg ast.Expr) bool {
	if t := exprType(info, arg); t != nil && isErrorType(t) {
		return true
	}
	if s, ok := constString(info, arg); ok {
		return invariantShaped(s)
	}
	if call, ok := arg.(*ast.CallExpr); ok {
		if pkgFunc(info, call, "fmt", "Sprintf") && len(call.Args) > 0 {
			if s, ok := constString(info, call.Args[0]); ok {
				return invariantShaped(s)
			}
		}
	}
	return false
}

// constString extracts a compile-time string value from e.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// invariantShaped checks for the "pkg: what broke" message convention.
func invariantShaped(s string) bool {
	i := strings.IndexByte(s, ':')
	if i <= 0 {
		return false
	}
	return strings.TrimSpace(s[i+1:]) != ""
}
