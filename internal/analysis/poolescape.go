// The poolescape check: pooled records must not outlive their reuse
// stamp.
package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// PoolEscape flags pooled free-list pointers (the scheduler's subtask
// records) that escape the slot without a reuse-stamp guard, and
// aliases used after the record was freed.
//
// The event-driven engine recycles subtask records through a free list;
// calendar events that reference a record capture its reuse stamp at
// push time and are invalidated when the record is recycled
// (subtask.stamp). That protocol only works if every long-lived store
// of a pooled pointer carries the stamp: an unstamped alias surviving
// free() dangles into a recycled record and silently corrupts a later
// task's schedule. Three rules, driven by the annotation table
// (annotations.go) and the def/alias layer (dataflow.go):
//
//  1. A composite literal of a registered sink struct (tevent) that
//     sets the pointer field must also set the stamp field from that
//     same pointer's stamp.
//  2. An alias of an Alloc() result may be stored only into the
//     registered owner fields (the subtask chain, the free list) or a
//     guarded sink; stores into other fields, maps, slices-held-in-
//     fields, or non-invoked closures are flagged.
//  3. After Free(x), any use of an alias of x before reassignment is
//     flagged. This rule runs on the function's CFG (cfg.go), so a
//     free on one branch poisons exactly the paths through that
//     branch: error-path frees followed by a return never leak into
//     the happy path, and a loop-carried alias freed at the bottom of
//     an iteration is caught at the next iteration's use.
//
// The analysis is intraprocedural: pointers received as parameters or
// read from fields are trusted to already be owned (docs/LINT.md,
// "scope and limits").
func PoolEscape() *Analyzer {
	return &Analyzer{
		Name: "poolescape",
		Doc:  "pooled free-list pointers may not escape the slot unstamped or be used after free (annotation table)",
		AppliesTo: func(pkgPath string) bool {
			return len(poolSpecsFor(pkgPath)) > 0
		},
		Run: runPoolEscape,
	}
}

func runPoolEscape(p *Pass) []Diagnostic {
	specs := poolSpecsFor(p.Pkg.Path)
	if len(specs) == 0 {
		return nil
	}
	var diags []Diagnostic
	specs = validatePoolSpecs(p, specs, &diags)
	for i := range specs {
		p.runPoolSpec(&specs[i], &diags)
	}
	return diags
}

func (p *Pass) runPoolSpec(spec *poolSpec, diags *[]Diagnostic) {
	info := p.Pkg.Info
	owner := make(map[string]bool)
	for _, f := range spec.OwnerFields {
		owner[f] = true
	}
	for _, fi := range p.Funcs() {
		body := fi.Decl.Body

		// Rule 1: stamp guards on sink literals. Purely syntactic on the
		// literal, so it also catches pointers the alias pass cannot see
		// (e.g. a chain head stored into a calendar event).
		for _, sink := range spec.Sinks {
			p.checkSinkLiterals(body, spec, sink, diags)
		}

		// Seed the alias set with Alloc() call results.
		aliases := trackAliases(body, info, func(e ast.Expr) bool {
			call, ok := e.(*ast.CallExpr)
			return ok && p.callsPoolFunc(call, spec.Alloc)
		})

		if len(aliases.objs) > 0 {
			p.checkEscapes(fi, spec, aliases, owner, diags)
		}
		p.checkUseAfterFree(fi, spec, aliases, diags)
	}
}

// callsPoolFunc reports whether call invokes a function or method of
// this package with the given name (the table's Alloc/Free).
func (p *Pass) callsPoolFunc(call *ast.CallExpr, name string) bool {
	var id *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	fn, ok := p.Pkg.Info.Uses[id].(*types.Func)
	if !ok {
		return false
	}
	return fn.Name() == name && fn.Pkg() == p.Pkg.Types
}

// checkSinkLiterals enforces rule 1 on every composite literal of the
// sink struct in body.
func (p *Pass) checkSinkLiterals(body *ast.BlockStmt, spec *poolSpec, sink poolSink, diags *[]Diagnostic) {
	info := p.Pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		t := exprType(info, lit)
		if namedTypeName(t, p.Pkg.Types) != sink.Struct {
			return true
		}
		var ptrExpr ast.Expr
		stamped := false
		for _, el := range lit.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue // positional literals of long-lived events are not used here
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			switch key.Name {
			case sink.PtrField:
				if !isNilExpr(kv.Value) {
					ptrExpr = kv.Value
				}
			case sink.StampField:
				// The guard must read the stamp off the stored pointer
				// itself: sel.X textually matching the pointer field's
				// value is checked below once both are seen.
				if sel, ok := unparen(kv.Value).(*ast.SelectorExpr); ok &&
					sel.Sel.Name == spec.StampField {
					stamped = true
				}
			}
		}
		if ptrExpr != nil && !stamped {
			p.report(diags, "poolescape", lit,
				"pooled %s pointer stored into %s.%s without the %s reuse-stamp guard; a recycled record would alias a live event",
				spec.Elem, sink.Struct, sink.PtrField, sink.StampField)
		}
		return true
	})
}

// checkEscapes enforces rule 2: stores of tracked aliases outside the
// ownership structure.
func (p *Pass) checkEscapes(fi *funcInfo, spec *poolSpec, aliases *aliasSet, owner map[string]bool, diags *[]Diagnostic) {
	info := p.Pkg.Info
	body := fi.Decl.Body

	// Closures that are invoked on the spot run within the slot; go
	// statements and stored/returned closures escape it.
	immediate := make(map[*ast.FuncLit]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if lit, ok := unparen(call.Fun).(*ast.FuncLit); ok {
			immediate[lit] = true
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		if gs, ok := n.(*ast.GoStmt); ok {
			if lit, ok := unparen(gs.Call.Fun).(*ast.FuncLit); ok {
				immediate[lit] = false
			}
		}
		return true
	})

	storedVia := func(rhs ast.Expr) ast.Expr {
		// A tracked alias stored directly, or appended into a container:
		// append(xs, alias) — return the alias expression, else nil.
		rhs = unparen(rhs)
		if aliases.contains(info, rhs) {
			return rhs
		}
		if call, ok := rhs.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
				for _, arg := range call.Args[1:] {
					if aliases.contains(info, arg) {
						return arg
					}
				}
			}
		}
		return nil
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				alias := storedVia(rhs)
				if alias == nil {
					continue
				}
				lhs := unparen(n.Lhs[i])
				switch lhs := lhs.(type) {
				case *ast.Ident:
					// Plain alias propagation; rule 3 keeps tracking it.
				case *ast.SelectorExpr:
					if name := p.fieldQualName(lhs); name != "" && !owner[name] {
						p.report(diags, "poolescape", n,
							"pooled %s pointer stored into %s, which outlives the slot without a reuse-stamp guard (owner fields: %s)",
							spec.Elem, name, qualifyList(spec.OwnerFields))
					}
				case *ast.IndexExpr:
					// Element stores into field-held containers (maps or
					// slices reachable beyond the slot).
					if inner, ok := unparen(lhs.X).(*ast.SelectorExpr); ok {
						if name := p.fieldQualName(inner); name != "" && !owner[name] {
							p.report(diags, "poolescape", n,
								"pooled %s pointer stored into element of %s, which outlives the slot without a reuse-stamp guard",
								spec.Elem, name)
						}
					}
				}
			}
		case *ast.FuncLit:
			if immediate[n] {
				return true
			}
			for obj, pos := range aliases.objs {
				_ = pos
				used := false
				ast.Inspect(n.Body, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && identObj(info, id) == obj {
						used = true
						return false
					}
					return !used
				})
				if used {
					p.report(diags, "poolescape", n,
						"pooled %s pointer %s captured by a closure that may outlive the slot; pass the (pointer, stamp) pair instead",
						spec.Elem, obj.Name())
					break
				}
			}
		}
		return true
	})
}

// fieldQualName renders a selector store target as "Type.field" when
// the selected object is a struct field; "" otherwise.
func (p *Pass) fieldQualName(sel *ast.SelectorExpr) string {
	f, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Var)
	if !ok || !f.IsField() {
		if s, ok := p.Pkg.Info.Selections[sel]; ok {
			if v, okv := s.Obj().(*types.Var); okv && v.IsField() {
				f = v
			} else {
				return ""
			}
		} else {
			return ""
		}
	}
	tn := namedTypeName(exprType(p.Pkg.Info, sel.X), p.Pkg.Types)
	if tn == "" {
		return ""
	}
	return tn + "." + f.Name()
}

// poolFlowState is the per-path state of rule 3: the aliases that may
// dangle into a recycled record. Free(alias) adds the whole tracked
// set (every alias names the same record); reassigning an alias
// removes just that alias on that path.
type poolFlowState struct {
	dangling map[types.Object]bool
}

func clonePoolFlow(s poolFlowState) poolFlowState {
	out := poolFlowState{dangling: make(map[types.Object]bool, len(s.dangling))}
	for obj := range s.dangling {
		out.dangling[obj] = true
	}
	return out
}

// checkUseAfterFree enforces rule 3 on the function's CFG: a use of an
// alias on some path where the record was freed and the alias not
// reassigned since. Dangling is a may-property — one freeing path
// poisons the join — while a reassignment cleans exactly the paths
// that run through it.
func (p *Pass) checkUseAfterFree(fi *funcInfo, spec *poolSpec, aliases *aliasSet, diags *[]Diagnostic) {
	info := p.Pkg.Info
	body := fi.Decl.Body

	// Cheap pre-check: no Free(alias) in the body means no state to
	// track (the common case for most functions of the package).
	anyFree := false
	ast.Inspect(body, func(n ast.Node) bool {
		if anyFree {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if ok && p.callsPoolFunc(call, spec.Free) && len(call.Args) == 1 &&
			aliases.contains(info, call.Args[0]) {
			anyFree = true
		}
		return !anyFree
	})
	if !anyFree {
		return
	}

	tracked := func(id *ast.Ident) types.Object {
		obj := identObj(info, id)
		if obj == nil {
			return nil
		}
		if _, ok := aliases.objs[obj]; !ok {
			return nil
		}
		return obj
	}

	rec := false
	type uafCand struct {
		obj types.Object
		id  *ast.Ident
	}
	var cands []uafCand
	use := func(id *ast.Ident, s *poolFlowState) {
		if !rec || len(s.dangling) == 0 {
			return
		}
		if obj := tracked(id); obj != nil && s.dangling[obj] {
			cands = append(cands, uafCand{obj: obj, id: id})
		}
	}

	var apply func(n ast.Node, s *poolFlowState)
	apply = func(n ast.Node, s *poolFlowState) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, r := range n.Rhs {
				apply(r, s)
			}
			for _, l := range n.Lhs {
				if id, ok := unparen(l).(*ast.Ident); ok {
					if obj := tracked(id); obj != nil {
						// Reassignment re-arms this alias on this path; the
						// target identifier itself is not a use.
						delete(s.dangling, obj)
						continue
					}
				}
				apply(l, s)
			}
		case *ast.DeferStmt:
			// The deferred call runs at return; only its arguments are
			// evaluated here, and a deferred Free poisons nothing before
			// the exit block.
			for _, a := range n.Call.Args {
				if id, ok := unparen(a).(*ast.Ident); ok {
					use(id, s)
					continue
				}
				apply(a, s)
			}
		default:
			walkEvaluated(n, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.AssignStmt:
					apply(m, s)
					return false
				case *ast.DeferStmt:
					apply(m, s)
					return false
				case *ast.FuncLit:
					// The literal's body runs when invoked; scan it for
					// uses against the current state but let none of its
					// frees or reassignments leak into this flow.
					ast.Inspect(m.Body, func(mm ast.Node) bool {
						if id, ok := mm.(*ast.Ident); ok {
							use(id, s)
						}
						return true
					})
					return false
				case *ast.CallExpr:
					if p.callsPoolFunc(m, spec.Free) && len(m.Args) == 1 &&
						aliases.contains(info, m.Args[0]) {
						// Freeing one alias frees the record every alias
						// points at: the whole set dangles from here.
						for obj := range aliases.objs {
							s.dangling[obj] = true
						}
						return false
					}
				case *ast.Ident:
					use(m, s)
				}
				return true
			})
		}
	}

	g := p.Pkg.funcCFG(fi.Decl)
	fns := flowFns[poolFlowState]{
		init:  poolFlowState{dangling: make(map[types.Object]bool)},
		clone: clonePoolFlow,
		join: func(dst, src poolFlowState) (poolFlowState, bool) {
			changed := false
			for obj := range src.dangling {
				if !dst.dangling[obj] {
					dst.dangling[obj] = true
					changed = true
				}
			}
			return dst, changed
		},
		transfer: func(b *cfgBlock, s poolFlowState) poolFlowState {
			for _, n := range b.nodes {
				apply(n, &s)
			}
			return s
		},
	}
	in, reached := solveForward(g, fns)

	// Replay reached blocks in ID order with recording on.
	rec = true
	for _, b := range g.blocks {
		if !reached[b.id] {
			continue
		}
		s := clonePoolFlow(in[b.id])
		for _, n := range b.nodes {
			apply(n, &s)
		}
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].id.Pos() < cands[j].id.Pos() })
	reported := make(map[types.Object]bool)
	for _, cd := range cands {
		if reported[cd.obj] {
			continue
		}
		reported[cd.obj] = true
		p.report(diags, "poolescape", cd.id,
			"alias %s of a pooled %s used after %s; the reuse stamp has advanced and the record may be recycled",
			cd.obj.Name(), spec.Elem, spec.Free)
	}
}

// isNilExpr reports whether e is the predeclared nil.
func isNilExpr(e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// validatePoolSpecs drops (and reports) stale table entries.
func validatePoolSpecs(p *Pass, specs []poolSpec, diags *[]Diagnostic) []poolSpec {
	var out []poolSpec
	for _, s := range specs {
		ok := true
		st, found := lookupStruct(p.Pkg.Types, s.Elem)
		if !found {
			p.reportAtPkg(diags, "poolescape",
				"stale annotation: pool table names record type %s.%s, which does not exist", s.Pkg, s.Elem)
			ok = false
		} else if !structHasField(st, s.StampField) {
			p.reportAtPkg(diags, "poolescape",
				"stale annotation: pool table names stamp field %s.%s, which does not exist", s.Elem, s.StampField)
			ok = false
		}
		for _, fn := range []string{s.Alloc, s.Free} {
			if !p.pkgDeclaresFunc(fn) {
				p.reportAtPkg(diags, "poolescape",
					"stale annotation: pool table names %s in %s, which does not exist", fn, s.Pkg)
				ok = false
			}
		}
		for _, sink := range s.Sinks {
			sst, found := lookupStruct(p.Pkg.Types, sink.Struct)
			if !found || !structHasField(sst, sink.PtrField) || !structHasField(sst, sink.StampField) {
				p.reportAtPkg(diags, "poolescape",
					"stale annotation: pool table sink %s.%s/%s does not resolve in %s", sink.Struct, sink.PtrField, sink.StampField, s.Pkg)
				ok = false
			}
		}
		if ok {
			out = append(out, s)
		}
	}
	return out
}

// pkgDeclaresFunc reports whether any top-level function or method of
// the package has the given bare name.
func (p *Pass) pkgDeclaresFunc(name string) bool {
	for _, fi := range p.Funcs() {
		if fi.Decl.Name.Name == name {
			return true
		}
	}
	return false
}
