// The poolescape check: pooled records must not outlive their reuse
// stamp.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolEscape flags pooled free-list pointers (the scheduler's subtask
// records) that escape the slot without a reuse-stamp guard, and
// aliases used after the record was freed.
//
// The event-driven engine recycles subtask records through a free list;
// calendar events that reference a record capture its reuse stamp at
// push time and are invalidated when the record is recycled
// (subtask.stamp). That protocol only works if every long-lived store
// of a pooled pointer carries the stamp: an unstamped alias surviving
// free() dangles into a recycled record and silently corrupts a later
// task's schedule. Three rules, driven by the annotation table
// (annotations.go) and the def/alias layer (dataflow.go):
//
//  1. A composite literal of a registered sink struct (tevent) that
//     sets the pointer field must also set the stamp field from that
//     same pointer's stamp.
//  2. An alias of an Alloc() result may be stored only into the
//     registered owner fields (the subtask chain, the free list) or a
//     guarded sink; stores into other fields, maps, slices-held-in-
//     fields, or non-invoked closures are flagged.
//  3. After Free(x), any use of an alias of x before reassignment is
//     flagged.
//
// The analysis is intraprocedural: pointers received as parameters or
// read from fields are trusted to already be owned (docs/LINT.md,
// "scope and limits").
func PoolEscape() *Analyzer {
	return &Analyzer{
		Name: "poolescape",
		Doc:  "pooled free-list pointers may not escape the slot unstamped or be used after free (annotation table)",
		AppliesTo: func(pkgPath string) bool {
			return len(poolSpecsFor(pkgPath)) > 0
		},
		Run: runPoolEscape,
	}
}

func runPoolEscape(p *Pass) []Diagnostic {
	specs := poolSpecsFor(p.Pkg.Path)
	if len(specs) == 0 {
		return nil
	}
	var diags []Diagnostic
	specs = validatePoolSpecs(p, specs, &diags)
	for i := range specs {
		p.runPoolSpec(&specs[i], &diags)
	}
	return diags
}

func (p *Pass) runPoolSpec(spec *poolSpec, diags *[]Diagnostic) {
	info := p.Pkg.Info
	owner := make(map[string]bool)
	for _, f := range spec.OwnerFields {
		owner[f] = true
	}
	for _, fi := range p.Funcs() {
		body := fi.Decl.Body

		// Rule 1: stamp guards on sink literals. Purely syntactic on the
		// literal, so it also catches pointers the alias pass cannot see
		// (e.g. a chain head stored into a calendar event).
		for _, sink := range spec.Sinks {
			p.checkSinkLiterals(body, spec, sink, diags)
		}

		// Seed the alias set with Alloc() call results.
		aliases := trackAliases(body, info, func(e ast.Expr) bool {
			call, ok := e.(*ast.CallExpr)
			return ok && p.callsPoolFunc(call, spec.Alloc)
		})

		if len(aliases.objs) > 0 {
			p.checkEscapes(fi, spec, aliases, owner, diags)
		}
		p.checkUseAfterFree(fi, spec, aliases, diags)
	}
}

// callsPoolFunc reports whether call invokes a function or method of
// this package with the given name (the table's Alloc/Free).
func (p *Pass) callsPoolFunc(call *ast.CallExpr, name string) bool {
	var id *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	fn, ok := p.Pkg.Info.Uses[id].(*types.Func)
	if !ok {
		return false
	}
	return fn.Name() == name && fn.Pkg() == p.Pkg.Types
}

// checkSinkLiterals enforces rule 1 on every composite literal of the
// sink struct in body.
func (p *Pass) checkSinkLiterals(body *ast.BlockStmt, spec *poolSpec, sink poolSink, diags *[]Diagnostic) {
	info := p.Pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		t := exprType(info, lit)
		if namedTypeName(t, p.Pkg.Types) != sink.Struct {
			return true
		}
		var ptrExpr ast.Expr
		stamped := false
		for _, el := range lit.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue // positional literals of long-lived events are not used here
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			switch key.Name {
			case sink.PtrField:
				if !isNilExpr(kv.Value) {
					ptrExpr = kv.Value
				}
			case sink.StampField:
				// The guard must read the stamp off the stored pointer
				// itself: sel.X textually matching the pointer field's
				// value is checked below once both are seen.
				if sel, ok := unparen(kv.Value).(*ast.SelectorExpr); ok &&
					sel.Sel.Name == spec.StampField {
					stamped = true
				}
			}
		}
		if ptrExpr != nil && !stamped {
			p.report(diags, "poolescape", lit,
				"pooled %s pointer stored into %s.%s without the %s reuse-stamp guard; a recycled record would alias a live event",
				spec.Elem, sink.Struct, sink.PtrField, sink.StampField)
		}
		return true
	})
}

// checkEscapes enforces rule 2: stores of tracked aliases outside the
// ownership structure.
func (p *Pass) checkEscapes(fi *funcInfo, spec *poolSpec, aliases *aliasSet, owner map[string]bool, diags *[]Diagnostic) {
	info := p.Pkg.Info
	body := fi.Decl.Body

	// Closures that are invoked on the spot run within the slot; go
	// statements and stored/returned closures escape it.
	immediate := make(map[*ast.FuncLit]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if lit, ok := unparen(call.Fun).(*ast.FuncLit); ok {
			immediate[lit] = true
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		if gs, ok := n.(*ast.GoStmt); ok {
			if lit, ok := unparen(gs.Call.Fun).(*ast.FuncLit); ok {
				immediate[lit] = false
			}
		}
		return true
	})

	storedVia := func(rhs ast.Expr) ast.Expr {
		// A tracked alias stored directly, or appended into a container:
		// append(xs, alias) — return the alias expression, else nil.
		rhs = unparen(rhs)
		if aliases.contains(info, rhs) {
			return rhs
		}
		if call, ok := rhs.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
				for _, arg := range call.Args[1:] {
					if aliases.contains(info, arg) {
						return arg
					}
				}
			}
		}
		return nil
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				alias := storedVia(rhs)
				if alias == nil {
					continue
				}
				lhs := unparen(n.Lhs[i])
				switch lhs := lhs.(type) {
				case *ast.Ident:
					// Plain alias propagation; rule 3 keeps tracking it.
				case *ast.SelectorExpr:
					if name := p.fieldQualName(lhs); name != "" && !owner[name] {
						p.report(diags, "poolescape", n,
							"pooled %s pointer stored into %s, which outlives the slot without a reuse-stamp guard (owner fields: %s)",
							spec.Elem, name, qualifyList(spec.OwnerFields))
					}
				case *ast.IndexExpr:
					// Element stores into field-held containers (maps or
					// slices reachable beyond the slot).
					if inner, ok := unparen(lhs.X).(*ast.SelectorExpr); ok {
						if name := p.fieldQualName(inner); name != "" && !owner[name] {
							p.report(diags, "poolescape", n,
								"pooled %s pointer stored into element of %s, which outlives the slot without a reuse-stamp guard",
								spec.Elem, name)
						}
					}
				}
			}
		case *ast.FuncLit:
			if immediate[n] {
				return true
			}
			for obj, pos := range aliases.objs {
				_ = pos
				used := false
				ast.Inspect(n.Body, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && identObj(info, id) == obj {
						used = true
						return false
					}
					return !used
				})
				if used {
					p.report(diags, "poolescape", n,
						"pooled %s pointer %s captured by a closure that may outlive the slot; pass the (pointer, stamp) pair instead",
						spec.Elem, obj.Name())
					break
				}
			}
		}
		return true
	})
}

// fieldQualName renders a selector store target as "Type.field" when
// the selected object is a struct field; "" otherwise.
func (p *Pass) fieldQualName(sel *ast.SelectorExpr) string {
	f, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Var)
	if !ok || !f.IsField() {
		if s, ok := p.Pkg.Info.Selections[sel]; ok {
			if v, okv := s.Obj().(*types.Var); okv && v.IsField() {
				f = v
			} else {
				return ""
			}
		} else {
			return ""
		}
	}
	tn := namedTypeName(exprType(p.Pkg.Info, sel.X), p.Pkg.Types)
	if tn == "" {
		return ""
	}
	return tn + "." + f.Name()
}

// checkUseAfterFree enforces rule 3 with a position-ordered scan: a use
// of an alias after Free(alias) with no intervening reassignment.
func (p *Pass) checkUseAfterFree(fi *funcInfo, spec *poolSpec, aliases *aliasSet, diags *[]Diagnostic) {
	info := p.Pkg.Info
	body := fi.Decl.Body

	// Free positions per object, plus the alias group freed together:
	// freeing one alias frees every alias of the same record, so the
	// whole tracked set is invalidated at the free position. Frees on a
	// terminating path — the enclosing block returns before any alias
	// use, the free-then-error-reply-then-return shape of handler error
	// branches — cannot poison code after the block and are excluded
	// from the position scan.
	terminal := terminalFrees(p, body, info, spec, aliases)
	var freeEnd token.Pos
	freeCalls := 0
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !p.callsPoolFunc(call, spec.Free) {
			return true
		}
		if len(call.Args) == 1 {
			if aliases.contains(info, call.Args[0]) && !terminal[call] {
				freeCalls++
				if freeEnd == token.NoPos || call.End() < freeEnd {
					freeEnd = call.End()
				}
			}
		}
		return true
	})
	if freeCalls == 0 {
		return
	}

	// Reassignment positions kill the freed state for one object.
	reassign := make(map[types.Object][]token.Pos)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, ok := unparen(lhs).(*ast.Ident); ok {
				if obj := identObj(info, id); obj != nil {
					if _, tracked := aliases.objs[obj]; tracked {
						reassign[obj] = append(reassign[obj], id.Pos())
					}
				}
			}
		}
		return true
	})

	reported := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id.Pos() <= freeEnd {
			return true
		}
		obj := identObj(info, id)
		if obj == nil || reported[obj] {
			return true
		}
		if _, tracked := aliases.objs[obj]; !tracked {
			return true
		}
		// A reassignment between the free and this use re-arms the alias;
		// the reassigning identifier itself is also exempt.
		for _, rp := range reassign[obj] {
			if rp > freeEnd && rp <= id.Pos() {
				return true
			}
		}
		reported[obj] = true
		p.report(diags, "poolescape", id,
			"alias %s of a pooled %s used after %s; the reuse stamp has advanced and the record may be recycled",
			obj.Name(), spec.Elem, spec.Free)
		return true
	})
}

// terminalFrees marks Free(alias) calls on terminating paths: the free
// is a statement whose following siblings in the enclosing block are
// straight-line statements (no branches, no alias touches) ending in a
// return that does not mention the alias either. Control cannot reach
// code after the block from such a free, so it must not poison later
// uses on other paths. Anything less obviously terminal — an
// intervening if, loop, branch statement, or alias use — keeps the
// free in the position scan.
func terminalFrees(p *Pass, body *ast.BlockStmt, info *types.Info, spec *poolSpec, aliases *aliasSet) map[*ast.CallExpr]bool {
	out := make(map[*ast.CallExpr]bool)
	usesAlias := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if obj := identObj(info, id); obj != nil {
					if _, tracked := aliases.objs[obj]; tracked {
						found = true
					}
				}
			}
			return !found
		})
		return found
	}
	ast.Inspect(body, func(n ast.Node) bool {
		blk, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, st := range blk.List {
			es, ok := st.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := unparen(es.X).(*ast.CallExpr)
			if !ok || !p.callsPoolFunc(call, spec.Free) {
				continue
			}
			if len(call.Args) != 1 || !aliases.contains(info, call.Args[0]) {
				continue
			}
		rest:
			for _, after := range blk.List[i+1:] {
				switch after := after.(type) {
				case *ast.ReturnStmt:
					if !usesAlias(after) {
						out[call] = true
					}
					break rest
				case *ast.ExprStmt, *ast.AssignStmt, *ast.DeclStmt, *ast.IncDecStmt:
					if usesAlias(after) {
						break rest
					}
				default:
					break rest
				}
			}
		}
		return true
	})
	return out
}

// isNilExpr reports whether e is the predeclared nil.
func isNilExpr(e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// validatePoolSpecs drops (and reports) stale table entries.
func validatePoolSpecs(p *Pass, specs []poolSpec, diags *[]Diagnostic) []poolSpec {
	var out []poolSpec
	for _, s := range specs {
		ok := true
		st, found := lookupStruct(p.Pkg.Types, s.Elem)
		if !found {
			p.reportAtPkg(diags, "poolescape",
				"stale annotation: pool table names record type %s.%s, which does not exist", s.Pkg, s.Elem)
			ok = false
		} else if !structHasField(st, s.StampField) {
			p.reportAtPkg(diags, "poolescape",
				"stale annotation: pool table names stamp field %s.%s, which does not exist", s.Elem, s.StampField)
			ok = false
		}
		for _, fn := range []string{s.Alloc, s.Free} {
			if !p.pkgDeclaresFunc(fn) {
				p.reportAtPkg(diags, "poolescape",
					"stale annotation: pool table names %s in %s, which does not exist", fn, s.Pkg)
				ok = false
			}
		}
		for _, sink := range s.Sinks {
			sst, found := lookupStruct(p.Pkg.Types, sink.Struct)
			if !found || !structHasField(sst, sink.PtrField) || !structHasField(sst, sink.StampField) {
				p.reportAtPkg(diags, "poolescape",
					"stale annotation: pool table sink %s.%s/%s does not resolve in %s", sink.Struct, sink.PtrField, sink.StampField, s.Pkg)
				ok = false
			}
		}
		if ok {
			out = append(out, s)
		}
	}
	return out
}

// pkgDeclaresFunc reports whether any top-level function or method of
// the package has the given bare name.
func (p *Pass) pkgDeclaresFunc(name string) bool {
	for _, fi := range p.Funcs() {
		if fi.Decl.Name.Name == name {
			return true
		}
	}
	return false
}
