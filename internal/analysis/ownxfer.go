// The ownxfer check: pooled-record ownership must transfer exactly
// once along every path.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// OwnXfer verifies the ownership protocol of pooled records on the
// wire path, flow-sensitively over the CFG (cfg.go).
//
// The mailbox design moves one pooled record per request across the
// handler/shard goroutine boundary and back: the handler acquires it,
// submits it into the shard's mailbox, blocks on the record's reply
// channel, and releases it after reading the reply. poolescape's
// stamp/escape rules cannot see the hand-off — the record never escapes
// into a long-lived field, it changes *owner*. A handler touching the
// record while the shard holds it is a data race that corrupts the
// byte-exact replay story without ever failing a test.
//
// ownxfer tracks each record's may-state along every path of the
// owning function, driven by the validated ownerXferTable
// (annotations.go):
//
//   - Records are born owned at an Acquire call result or a receive
//     from a channel of records; parameters of the record type enter
//     owned (a borrow — the caller enforces its own protocol).
//   - Ownership leaves through a send into a channel, a send on a
//     channel rooted at the record itself (the reply hand-back), a
//     registered transfer function, a return of the record, or a store
//     into a field (poolescape's owner-field rules police where).
//     Conditional transfers (Shard.submit, Server.exchange) bind the
//     outcome to the callee's bool result and the state is refined
//     along the branch edges that test it.
//   - A receive from a channel rooted at the record re-acquires it
//     (reading the reply channel is the sanctioned hand-back).
//
// Violations: any read or write of a record that was freed or handed
// off on every path reaching the use; releasing a record twice or
// after a hand-off; and a record born from Acquire or a receive that
// can reach a normal return still owned (a pool leak). Paths ending in
// panic are exempt — the process is dying.
func OwnXfer() *Analyzer {
	return &Analyzer{
		Name: "ownxfer",
		Doc:  "pooled-record ownership must transfer exactly once per path: no use after send/free, no double free, no leaked acquire (annotation table)",
		AppliesTo: func(pkgPath string) bool {
			return len(ownXferSpecsFor(pkgPath)) > 0
		},
		Run: runOwnXfer,
	}
}

func runOwnXfer(p *Pass) []Diagnostic {
	specs := ownXferSpecsFor(p.Pkg.Path)
	if len(specs) == 0 {
		return nil
	}
	var diags []Diagnostic
	specs = validateOwnXferSpecs(p, specs, &diags)
	for i := range specs {
		c := &ownxferChecker{p: p, spec: &specs[i], xfers: make(map[string]*ownXferFunc)}
		for j := range specs[i].Transfers {
			xf := &specs[i].Transfers[j]
			c.xfers[xf.Func] = xf
		}
		for _, fi := range p.Funcs() {
			c.checkFunc(fi, &diags)
		}
	}
	return diags
}

// ---------------------------------------------------------------------
// Per-record flow state.

// ownBits is the may-state powerset of one tracked record: a bit is set
// when the fact holds on at least one path reaching the point.
type ownBits uint8

const (
	ownOwned  ownBits = 1 << iota // this function owns the record
	ownFreed                      // released back to the pool
	ownXfered                     // sent or handed off to another owner
	ownStored                     // parked in an owner field/container
)

// ownState is the flow state of one tracked object.
type ownState struct {
	bits     ownBits
	acquired bool         // born in this function: the leak rule applies
	acqNode  ast.Node     // birth site, anchors leak reports
	site     ast.Node     // earliest discharge site (free/hand-off)
	siteDesc string       // how it was discharged, for messages
	deferRel bool         // a defer Release(x) is pending
	condVar  types.Object // bool variable carrying a conditional outcome
	condOwn  bool         // caller owns iff condVar == condOwn
}

type ownMap map[types.Object]*ownState

func cloneOwnMap(s ownMap) ownMap {
	out := make(ownMap, len(s))
	for k, v := range s {
		cp := *v
		out[k] = &cp
	}
	return out
}

// mergeOwn joins src into dst (may-union), reporting change. Earliest
// positions win for the witness nodes so messages are deterministic.
func mergeOwn(dst, src *ownState) bool {
	changed := false
	if nb := dst.bits | src.bits; nb != dst.bits {
		dst.bits = nb
		changed = true
	}
	if src.acquired && !dst.acquired {
		dst.acquired = true
		changed = true
	}
	if src.deferRel && !dst.deferRel {
		dst.deferRel = true
		changed = true
	}
	if src.acqNode != nil && (dst.acqNode == nil || src.acqNode.Pos() < dst.acqNode.Pos()) {
		dst.acqNode = src.acqNode
		changed = true
	}
	if src.site != nil && (dst.site == nil || src.site.Pos() < dst.site.Pos()) {
		dst.site = src.site
		dst.siteDesc = src.siteDesc
		changed = true
	}
	if dst.condVar != src.condVar && dst.condVar != nil {
		// Outcome bindings that disagree across paths degrade to the
		// unresolved owned-or-transferred state.
		dst.condVar = nil
		changed = true
	}
	return changed
}

// ---------------------------------------------------------------------
// The checker.

// ownCand kinds, deduplicated per (object, kind).
const (
	candUseAfterFree = iota
	candUseAfterXfer
	candDoubleFree
	candFreeAfterXfer
	candLeak
)

type ownCand struct {
	obj  types.Object
	kind int
	node ast.Node
	msg  string
	args []any
}

type ownxferChecker struct {
	p     *Pass
	spec  *ownXferSpec
	xfers map[string]*ownXferFunc

	record bool // replay phase: collect candidates
	cands  []ownCand
}

func (c *ownxferChecker) info() *types.Info { return c.p.Pkg.Info }

func (c *ownxferChecker) checkFunc(fi *funcInfo, diags *[]Diagnostic) {
	// Skip functions that cannot touch the protocol at all: no record-
	// typed values and no pool/transfer calls means no state to track.
	if !c.mentionsProtocol(fi) {
		return
	}
	g := c.p.Pkg.funcCFG(fi.Decl)
	init := make(ownMap)
	c.seedParams(fi, init)

	fns := flowFns[ownMap]{
		init:  init,
		clone: cloneOwnMap,
		join: func(dst, src ownMap) (ownMap, bool) {
			changed := false
			for obj, st := range src {
				if d, ok := dst[obj]; ok {
					if mergeOwn(d, st) {
						changed = true
					}
				} else {
					cp := *st
					dst[obj] = &cp
					changed = true
				}
			}
			return dst, changed
		},
		transfer: func(b *cfgBlock, s ownMap) ownMap {
			for _, n := range b.nodes {
				c.node(n, s)
			}
			return s
		},
		refine: c.refine,
	}
	c.record, c.cands = false, nil
	in, reached := solveForward(g, fns)

	// Replay with recording on: every reached block once, in ID order,
	// from its fixpoint in-state.
	c.record = true
	for _, b := range g.blocks {
		if !reached[b.id] || in[b.id] == nil {
			continue
		}
		s := cloneOwnMap(in[b.id])
		for _, n := range b.nodes {
			c.node(n, s)
		}
	}

	// Leaks: records born here that can reach a normal return still
	// owned, with no deferred release pending.
	if reached[g.exit.id] && in[g.exit.id] != nil {
		for obj, st := range in[g.exit.id] {
			if st.acquired && st.bits&ownOwned != 0 && !st.deferRel {
				c.cand(obj, candLeak, st.acqNode,
					"pooled %s %s acquired here is still owned when %s returns on some path; every acquire path must release or hand off the record exactly once",
					c.spec.Elem, obj.Name(), fi.Name)
			}
		}
	}
	c.emit(diags)
}

// mentionsProtocol is a cheap syntactic pre-filter: the body names the
// record type, the pool functions, or a transfer function.
func (c *ownxferChecker) mentionsProtocol(fi *funcInfo) bool {
	found := false
	ast.Inspect(fi.Decl, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		switch id.Name {
		case c.spec.Elem, c.spec.Acquire, c.spec.Release:
			found = true
		default:
			for name := range c.xfers {
				if i := len(name) - len(id.Name); i >= 0 && name[i:] == id.Name &&
					(i == 0 || name[i-1] == '.') {
					found = true
				}
			}
		}
		return !found
	})
	if found {
		return true
	}
	// A parameter or receiver of the record type also opts in.
	tmp := make(ownMap)
	c.seedParams(fi, tmp)
	return len(tmp) > 0
}

// seedParams enters every parameter and receiver of the record type as
// owned-but-borrowed (no leak obligation: the caller's protocol covers
// disposal unless this function disposes of it itself).
func (c *ownxferChecker) seedParams(fi *funcInfo, s ownMap) {
	addField := func(f *ast.Field) {
		for _, name := range f.Names {
			obj := c.info().Defs[name]
			if obj == nil {
				continue
			}
			if c.isElemPtr(obj.Type()) {
				s[obj] = &ownState{bits: ownOwned, acqNode: name}
			}
		}
	}
	if fi.Decl.Recv != nil {
		for _, f := range fi.Decl.Recv.List {
			addField(f)
		}
	}
	if fi.Decl.Type.Params != nil {
		for _, f := range fi.Decl.Type.Params.List {
			addField(f)
		}
	}
}

// isElemPtr reports whether t is *Elem for the spec's record type.
func (c *ownxferChecker) isElemPtr(t types.Type) bool {
	if t == nil {
		return false
	}
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	return namedTypeName(ptr.Elem(), c.p.Pkg.Types) == c.spec.Elem
}

// isElemChan reports whether t is a channel of *Elem.
func (c *ownxferChecker) isElemChan(t types.Type) bool {
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	return ok && c.isElemPtr(ch.Elem())
}

// xferOf resolves a call to its registered transfer entry, or nil.
func (c *ownxferChecker) xferOf(call *ast.CallExpr) *ownXferFunc {
	if len(c.xfers) == 0 {
		return nil
	}
	var id *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := c.info().Uses[id].(*types.Func)
	if !ok || fn.Pkg() != c.p.Pkg.Types {
		return nil
	}
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if rn := recvBareName(sig); rn != "" {
			name = rn + "." + name
		}
	}
	return c.xfers[name]
}

// trackedIdent returns the tracked object e denotes, when e is a plain
// identifier in the state.
func (c *ownxferChecker) trackedIdent(e ast.Expr, s ownMap) types.Object {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := identObj(c.info(), id)
	if obj == nil {
		return nil
	}
	if _, ok := s[obj]; !ok {
		return nil
	}
	return obj
}

// trackedIn is trackedIdent extended through append(dst, x...): storing
// via append parks the appended record, not the container.
func (c *ownxferChecker) trackedIn(e ast.Expr, s ownMap) types.Object {
	e = unparen(e)
	if obj := c.trackedIdent(e, s); obj != nil {
		return obj
	}
	if call, ok := e.(*ast.CallExpr); ok {
		if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" && isBuiltinUse(c.info(), id) {
			for _, arg := range call.Args[1:] {
				if obj := c.trackedIdent(arg, s); obj != nil {
					return obj
				}
			}
		}
	}
	return nil
}

// defOf returns the object a plain-ident assignment target denotes
// (through Defs for := and Uses for =), skipping the blank identifier.
func (c *ownxferChecker) defOf(e ast.Expr) types.Object {
	if e == nil {
		return nil
	}
	id, ok := unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := c.info().Defs[id]; obj != nil {
		return obj
	}
	return c.info().Uses[id]
}

// clearCondBindings drops outcome bindings whose bool variable is
// being reassigned by as.
func (c *ownxferChecker) clearCondBindings(as *ast.AssignStmt, s ownMap) {
	for _, l := range as.Lhs {
		obj := c.defOf(l)
		if obj == nil {
			continue
		}
		for _, st := range s {
			if st.condVar == obj {
				st.condVar = nil
			}
		}
	}
}

// ---------------------------------------------------------------------
// Transfer function.

// node applies one block node to the state (shared between the solve
// and replay phases; candidates are recorded only when c.record).
func (c *ownxferChecker) node(n ast.Node, s ownMap) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		c.assign(n, s)
	case *ast.DeclStmt:
		c.decl(n, s)
	case *ast.SendStmt:
		c.send(n, s)
	case *ast.ReturnStmt:
		c.scan(n, s, nil)
		for _, r := range n.Results {
			if obj := c.trackedIdent(r, s); obj != nil {
				st := s[obj]
				st.bits = ownXfered
				st.site, st.siteDesc = n, "returned to the caller"
				st.condVar = nil
			}
		}
	case *ast.DeferStmt:
		if c.p.callsPoolFunc(n.Call, c.spec.Release) {
			if obj, _ := c.releaseArg(n.Call, s); obj != nil {
				s[obj].deferRel = true
				return
			}
		}
		// The deferred call's arguments are evaluated now; the call
		// itself runs at return and is not modelled.
		for _, a := range n.Call.Args {
			c.scan(a, s, nil)
		}
	case *ast.RangeStmt:
		c.scan(n.X, s, nil)
		if obj := c.defOf(n.Key); obj != nil {
			delete(s, obj)
			if c.isElemChan(exprType(c.info(), n.X)) {
				s[obj] = &ownState{bits: ownOwned, acquired: true, acqNode: n}
			}
		}
		if obj := c.defOf(n.Value); obj != nil {
			delete(s, obj)
		}
	default:
		c.scan(n, s, nil)
	}
}

// assign handles the binding forms: acquire results, conditional
// transfers with a bound outcome, receives, alias copies, owner-field
// stores, and kills.
func (c *ownxferChecker) assign(as *ast.AssignStmt, s ownMap) {
	if len(as.Rhs) == 1 {
		rhs := unparen(as.Rhs[0])
		if call, ok := rhs.(*ast.CallExpr); ok {
			if c.p.callsPoolFunc(call, c.spec.Acquire) {
				c.scan(call, s, nil)
				c.clearCondBindings(as, s)
				c.killTargets(as, s)
				if obj := c.defOf(as.Lhs[0]); obj != nil {
					s[obj] = &ownState{bits: ownOwned, acquired: true, acqNode: call}
				}
				return
			}
			if xf := c.xferOf(call); xf != nil {
				tracked := c.xferArgs(call, s)
				c.scan(call, s, nil)
				c.clearCondBindings(as, s)
				var condObj types.Object
				if xf.Cond && xf.BoolResult < len(as.Lhs) {
					condObj = c.defOf(as.Lhs[xf.BoolResult])
				}
				c.killTargets(as, s)
				c.applyXfer(call, xf, tracked, condObj, s)
				return
			}
		}
		if ue, ok := rhs.(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
			c.scan(ue, s, nil) // performs the re-acquire for record-rooted channels
			c.clearCondBindings(as, s)
			c.killTargets(as, s)
			if c.isElemChan(exprType(c.info(), ue.X)) {
				if obj := c.defOf(as.Lhs[0]); obj != nil {
					s[obj] = &ownState{bits: ownOwned, acquired: true, acqNode: ue}
				}
			}
			return
		}
	}

	// General form: evaluate uses, then move states element-wise.
	for _, r := range as.Rhs {
		c.scan(r, s, nil)
	}
	for _, l := range as.Lhs {
		if _, ok := unparen(l).(*ast.Ident); !ok {
			c.scan(l, s, nil)
		}
	}
	c.clearCondBindings(as, s)

	var moved []*ownState
	if len(as.Lhs) == len(as.Rhs) {
		moved = make([]*ownState, len(as.Rhs))
		for i, r := range as.Rhs {
			obj := c.trackedIn(r, s)
			if obj == nil {
				continue
			}
			cp := *s[obj]
			moved[i] = &cp
			if _, plain := unparen(as.Lhs[i]).(*ast.Ident); !plain {
				// Stored into a field, element or dereference: ownership
				// parks there (poolescape polices which fields qualify).
				st := s[obj]
				st.bits = ownStored
				st.condVar = nil
			}
		}
	}
	c.killTargets(as, s)
	for i := range moved {
		if moved[i] == nil {
			continue
		}
		if obj := c.defOf(as.Lhs[i]); obj != nil {
			s[obj] = moved[i]
		}
	}
}

// killTargets deletes the state of every plain-ident assignment target.
func (c *ownxferChecker) killTargets(as *ast.AssignStmt, s ownMap) {
	for _, l := range as.Lhs {
		if obj := c.defOf(l); obj != nil {
			delete(s, obj)
		}
	}
}

// decl handles var declarations, seeding acquire-call initializers.
func (c *ownxferChecker) decl(ds *ast.DeclStmt, s ownMap) {
	gd, ok := ds.Decl.(*ast.GenDecl)
	if !ok {
		c.scan(ds, s, nil)
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, v := range vs.Values {
			c.scan(v, s, nil)
		}
		for i, nm := range vs.Names {
			obj := c.info().Defs[nm]
			if obj == nil || nm.Name == "_" {
				continue
			}
			delete(s, obj)
			if i < len(vs.Values) {
				if call, ok := unparen(vs.Values[i]).(*ast.CallExpr); ok && c.p.callsPoolFunc(call, c.spec.Acquire) {
					s[obj] = &ownState{bits: ownOwned, acquired: true, acqNode: call}
				}
			}
		}
	}
}

// send applies a channel send: sending a tracked record transfers it,
// and sending on a channel rooted at a tracked record (p.reply <- ...)
// hands the record back to the peer blocked on that channel.
func (c *ownxferChecker) send(st *ast.SendStmt, s ownMap) {
	c.scan(st.Chan, s, nil)
	c.scan(st.Value, s, nil)
	if obj := c.trackedIdent(st.Value, s); obj != nil {
		o := s[obj]
		o.bits = ownXfered
		o.site, o.siteDesc = st, "sent into a channel"
		o.condVar = nil
	}
	if ch := unparen(st.Chan); ch != nil {
		if _, plain := ch.(*ast.Ident); !plain {
			if root := rootIdent(ch); root != nil {
				if obj := identObj(c.info(), root); obj != nil {
					if o, ok := s[obj]; ok {
						o.bits = ownXfered
						o.site, o.siteDesc = st, "replied on its channel"
						o.condVar = nil
					}
				}
			}
		}
	}
}

// applyXfer discharges the tracked arguments of a transfer call.
func (c *ownxferChecker) applyXfer(call *ast.CallExpr, xf *ownXferFunc, tracked []types.Object, condObj types.Object, s ownMap) {
	for _, obj := range tracked {
		st := s[obj]
		if xf.Cond {
			st.bits = ownOwned | ownXfered
			st.site, st.siteDesc = call, "handed to "+xf.Func
			st.condVar = condObj
			st.condOwn = xf.OwnerWhen
		} else {
			st.bits = ownXfered
			st.site, st.siteDesc = call, "handed to "+xf.Func
			st.condVar = nil
		}
	}
}

// xferArgs lists the tracked plain-ident arguments of a call.
func (c *ownxferChecker) xferArgs(call *ast.CallExpr, s ownMap) []types.Object {
	var out []types.Object
	for _, a := range call.Args {
		if obj := c.trackedIdent(a, s); obj != nil {
			out = append(out, obj)
		}
	}
	return out
}

// scan walks an evaluated subtree: generic uses are checked against the
// state, and release/transfer/re-acquire operations nested in
// expression position are applied. Function-literal bodies are scanned
// for uses only — the literal runs elsewhere, so it must not mutate
// this flow's state.
func (c *ownxferChecker) scan(n ast.Node, s ownMap, exempt map[types.Object]bool) {
	if n == nil {
		return
	}
	info := c.info()
	reacq := make(map[types.Object]bool)
	walkEvaluated(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			ast.Inspect(m.Body, func(mm ast.Node) bool {
				if id, ok := mm.(*ast.Ident); ok {
					c.useIdent(id, s, exempt, reacq)
				}
				return true
			})
			return false
		case *ast.CallExpr:
			if c.p.callsPoolFunc(m, c.spec.Release) {
				c.releaseCall(m, s)
				return false
			}
			if xf := c.xferOf(m); xf != nil {
				tracked := c.xferArgs(m, s)
				for _, a := range m.Args {
					c.scan(a, s, exempt)
				}
				c.applyXfer(m, xf, tracked, nil, s)
				return false
			}
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				ch := unparen(m.X)
				if _, plain := ch.(*ast.Ident); !plain {
					if root := rootIdent(ch); root != nil {
						if obj := identObj(info, root); obj != nil {
							if st, ok := s[obj]; ok {
								// Receiving from the record's own channel is
								// the sanctioned hand-back: the record is
								// owned again from here on.
								st.bits = ownOwned
								st.condVar = nil
								reacq[obj] = true
							}
						}
					}
				}
			}
		case *ast.Ident:
			c.useIdent(m, s, exempt, reacq)
		}
		return true
	})
}

// useIdent applies the use rule: touching a record that was freed or
// handed off on every path reaching here (no path still owns it).
func (c *ownxferChecker) useIdent(id *ast.Ident, s ownMap, exempt, reacq map[types.Object]bool) {
	obj := c.info().Uses[id]
	if obj == nil || exempt[obj] || reacq[obj] {
		return
	}
	st, ok := s[obj]
	if !ok {
		return
	}
	if st.bits&ownOwned != 0 || st.bits&(ownFreed|ownXfered) == 0 {
		return
	}
	if st.bits&ownFreed != 0 {
		c.cand(obj, candUseAfterFree, id,
			"pooled %s %s used after %s released it (%s); the record may already be recycled",
			c.spec.Elem, obj.Name(), c.spec.Release, c.sitePos(st))
	} else {
		c.cand(obj, candUseAfterXfer, id,
			"pooled %s %s used after it was %s (%s); the new owner may be touching it concurrently",
			c.spec.Elem, obj.Name(), st.siteDesc, c.sitePos(st))
	}
}

// releaseArg finds the released record among a Release call's
// arguments: the first tracked plain-ident argument of the record type.
func (c *ownxferChecker) releaseArg(call *ast.CallExpr, s ownMap) (types.Object, int) {
	for i, a := range call.Args {
		if obj := c.trackedIdent(a, s); obj != nil && c.isElemPtr(obj.Type()) {
			return obj, i
		}
	}
	return nil, -1
}

// releaseCall applies Release(x): double frees and frees of handed-off
// records are flagged with dedicated messages; the state becomes freed
// either way.
func (c *ownxferChecker) releaseCall(call *ast.CallExpr, s ownMap) {
	obj, argIdx := c.releaseArg(call, s)
	for i, a := range call.Args {
		if i == argIdx {
			continue // the released record itself is not a generic use
		}
		c.scan(a, s, nil)
	}
	if obj == nil {
		return
	}
	st := s[obj]
	if st.bits&ownOwned == 0 {
		switch {
		case st.bits&ownFreed != 0:
			c.cand(obj, candDoubleFree, call,
				"pooled %s %s released twice (first %s); a double free corrupts the free list",
				c.spec.Elem, obj.Name(), c.sitePos(st))
		case st.bits&ownXfered != 0:
			c.cand(obj, candFreeAfterXfer, call,
				"pooled %s %s released after it was %s (%s); the new owner will also release it",
				c.spec.Elem, obj.Name(), st.siteDesc, c.sitePos(st))
		}
	}
	st.bits = ownFreed
	st.site, st.siteDesc = call, c.spec.Release
	st.condVar = nil
}

// sitePos renders the discharge site position for messages.
func (c *ownxferChecker) sitePos(st *ownState) string {
	if st.site == nil {
		return "earlier"
	}
	pos := c.p.Pkg.Fset.Position(st.site.Pos())
	return fmt.Sprintf("%s:%d", trimPath(pos.Filename), pos.Line)
}

// ---------------------------------------------------------------------
// Branch refinement.

// refine sharpens conditional-transfer outcomes along the true/false
// edges of a branch testing the outcome: `if !sh.submit(p)` directly,
// or `ok := ...; if !ok` through the bound variable.
func (c *ownxferChecker) refine(b *cfgBlock, e cfgEdge, s ownMap) ownMap {
	if b.cond == nil || (e.kind != edgeTrue && e.kind != edgeFalse) {
		return s
	}
	cond := unparen(b.cond)
	neg := false
	if ue, ok := cond.(*ast.UnaryExpr); ok && ue.Op == token.NOT {
		neg = true
		cond = unparen(ue.X)
	}
	condVal := e.kind == edgeTrue
	if neg {
		condVal = !condVal
	}
	if call, ok := cond.(*ast.CallExpr); ok {
		xf := c.xferOf(call)
		if xf == nil || !xf.Cond {
			return s
		}
		tracked := c.xferArgs(call, s)
		if len(tracked) == 0 {
			return s
		}
		out := cloneOwnMap(s)
		for _, obj := range tracked {
			c.resolveCond(out[obj], condVal == xf.OwnerWhen)
		}
		return out
	}
	if id, ok := cond.(*ast.Ident); ok {
		vobj := identObj(c.info(), id)
		if vobj == nil {
			return s
		}
		var out ownMap
		for obj, st := range s {
			if st.condVar != vobj {
				continue
			}
			if out == nil {
				out = cloneOwnMap(s)
			}
			c.resolveCond(out[obj], condVal == st.condOwn)
		}
		if out != nil {
			return out
		}
	}
	return s
}

// resolveCond collapses an owned-or-transferred state to the branch's
// outcome.
func (c *ownxferChecker) resolveCond(st *ownState, ownerNow bool) {
	if ownerNow {
		st.bits = ownOwned
	} else {
		st.bits = ownXfered
	}
	st.condVar = nil
}

// ---------------------------------------------------------------------
// Reporting.

func (c *ownxferChecker) cand(obj types.Object, kind int, node ast.Node, msg string, args ...any) {
	if !c.record || node == nil {
		return
	}
	c.cands = append(c.cands, ownCand{obj: obj, kind: kind, node: node, msg: msg, args: args})
}

// emit sorts the candidates by position and reports the earliest
// witness per (object, kind).
func (c *ownxferChecker) emit(diags *[]Diagnostic) {
	sort.SliceStable(c.cands, func(i, j int) bool {
		if c.cands[i].node.Pos() != c.cands[j].node.Pos() {
			return c.cands[i].node.Pos() < c.cands[j].node.Pos()
		}
		return c.cands[i].kind < c.cands[j].kind
	})
	type key struct {
		obj  types.Object
		kind int
	}
	seen := make(map[key]bool)
	for _, cd := range c.cands {
		k := key{cd.obj, cd.kind}
		if seen[k] {
			continue
		}
		seen[k] = true
		c.p.report(diags, "ownxfer", cd.node, cd.msg, cd.args...)
	}
	c.cands = nil
}

// ---------------------------------------------------------------------
// Table validation.

// validateOwnXferSpecs drops (and reports) stale table entries.
func validateOwnXferSpecs(p *Pass, specs []ownXferSpec, diags *[]Diagnostic) []ownXferSpec {
	var out []ownXferSpec
	for _, s := range specs {
		ok := true
		if _, found := lookupStruct(p.Pkg.Types, s.Elem); !found {
			p.reportAtPkg(diags, "ownxfer",
				"stale annotation: owner-transfer table names record type %s.%s, which does not exist", s.Pkg, s.Elem)
			ok = false
		}
		for _, fn := range []string{s.Acquire, s.Release} {
			if !p.pkgDeclaresFunc(fn) {
				p.reportAtPkg(diags, "ownxfer",
					"stale annotation: owner-transfer table names %s in %s, which does not exist", fn, s.Pkg)
				ok = false
			}
		}
		for _, xf := range s.Transfers {
			if !hasFuncNamed(p, xf.Func) {
				p.reportAtPkg(diags, "ownxfer",
					"stale annotation: owner-transfer table names %s in %s, which does not exist", xf.Func, s.Pkg)
				ok = false
				continue
			}
			if xf.Cond && !funcHasBoolResult(p, xf.Func, xf.BoolResult) {
				p.reportAtPkg(diags, "ownxfer",
					"stale annotation: owner-transfer entry %s in %s marks a conditional transfer but has no bool result at index %d", xf.Func, s.Pkg, xf.BoolResult)
				ok = false
			}
		}
		if ok {
			out = append(out, s)
		}
	}
	return out
}

// funcHasBoolResult checks the outcome-result contract of a Cond entry.
func funcHasBoolResult(p *Pass, name string, idx int) bool {
	for _, fi := range p.Funcs() {
		if fi.Name != name {
			continue
		}
		fn, ok := p.Pkg.Info.Defs[fi.Decl.Name].(*types.Func)
		if !ok {
			return false
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || idx >= sig.Results().Len() {
			return false
		}
		b, ok := sig.Results().At(idx).Type().Underlying().(*types.Basic)
		return ok && b.Kind() == types.Bool
	}
	return false
}
