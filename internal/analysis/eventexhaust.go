// The eventexhaust check: switches over registered enum types must
// cover every declared member, with no silent default.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// enumInfo describes one type registered as an exhaustive enum via a
//
//	//lint:exhaustive [ignore=Name[,Name...]] [reason]
//
// directive on its type declaration. Members are the package-scope
// constants of the type, in declaration order; Ignored names (e.g. a
// numEventKinds sentinel) are exempt from coverage.
type enumInfo struct {
	TypeName *types.TypeName
	Name     string
	Members  []*types.Const
	Ignored  map[string]bool
	Decl     ast.Node // the type spec, for stale-directive diagnostics

	staleIgnored []string // ignore= names that match no constant
}

// ExhaustiveEnums returns the package's registered exhaustive enums.
// Built once per package and shared across analyzers.
func (p *Pass) ExhaustiveEnums() []*enumInfo {
	if p.facts.enumsBuilt {
		return p.facts.enums
	}
	p.facts.enumsBuilt = true
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				ignored, found := exhaustiveDirective(gd.Doc, ts.Doc, ts.Comment)
				if !found {
					continue
				}
				tn, ok := info.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				e := &enumInfo{
					TypeName: tn,
					Name:     tn.Name(),
					Ignored:  make(map[string]bool),
					Decl:     ts,
				}
				for _, name := range ignored {
					e.Ignored[name] = true
				}
				p.facts.enums = append(p.facts.enums, e)
			}
		}
	}
	// Collect members in declaration order by scanning const decls.
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					c, ok := info.Defs[name].(*types.Const)
					if !ok {
						continue
					}
					for _, e := range p.facts.enums {
						if types.Identical(c.Type(), e.TypeName.Type()) {
							e.Members = append(e.Members, c)
						}
					}
				}
			}
		}
	}
	// Validate ignore= names so the directive cannot rot silently.
	for _, e := range p.facts.enums {
		names := make(map[string]bool, len(e.Members))
		for _, m := range e.Members {
			names[m.Name()] = true
		}
		for name := range e.Ignored {
			if !names[name] {
				e.staleIgnored = append(e.staleIgnored, name)
			}
		}
		sortStrings(e.staleIgnored)
	}
	return p.facts.enums
}

// exhaustiveDirective scans the comment groups of a type declaration
// for a //lint:exhaustive directive and returns its ignore= names.
func exhaustiveDirective(groups ...*ast.CommentGroup) (ignored []string, found bool) {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if !strings.HasPrefix(text, "//lint:exhaustive") {
				continue
			}
			rest := strings.TrimPrefix(text, "//lint:exhaustive")
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // e.g. //lint:exhaustiveX
			}
			found = true
			for _, field := range strings.Fields(rest) {
				if list, ok := strings.CutPrefix(field, "ignore="); ok {
					for _, name := range strings.Split(list, ",") {
						if name = strings.TrimSpace(name); name != "" {
							ignored = append(ignored, name)
						}
					}
				}
			}
		}
	}
	return ignored, found
}

// EventExhaust flags switches over //lint:exhaustive enum types that
// miss declared members or hide future ones behind a silent default.
//
// The calendar event-kind type is the motivating registrant: every
// event kind popped from a calendar heap must be handled at pop time,
// so adding a kind must fail lint until each kind-dispatch switch
// handles it. A default clause that panics is "loud" and accepted (it
// turns an unhandled kind into an immediate, named failure); a default
// that silently absorbs unknown kinds is itself a diagnostic even when
// today's members are all covered, because it converts tomorrow's
// missing case into silent mis-scheduling.
func EventExhaust() *Analyzer {
	return &Analyzer{
		Name: "eventexhaust",
		Doc:  "switches over //lint:exhaustive enum types cover every member, with no silent default",
		Run:  runEventExhaust,
	}
}

func runEventExhaust(p *Pass) []Diagnostic {
	enums := p.ExhaustiveEnums()
	if len(enums) == 0 {
		return nil
	}
	var diags []Diagnostic
	for _, e := range enums {
		for _, name := range e.staleIgnored {
			p.report(&diags, "eventexhaust", e.Decl,
				"stale directive: ignore=%s names no constant of type %s", name, e.Name)
		}
		if len(e.Members) == 0 {
			p.report(&diags, "eventexhaust", e.Decl,
				"//lint:exhaustive on type %s, but the package declares no constants of that type", e.Name)
		}
	}
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tagType := exprType(info, sw.Tag)
			if tagType == nil {
				return true
			}
			var e *enumInfo
			for _, cand := range enums {
				if types.Identical(tagType, cand.TypeName.Type()) {
					e = cand
					break
				}
			}
			if e == nil || len(e.Members) == 0 {
				return true
			}
			covered := make(map[string]bool)
			var defaultClause *ast.CaseClause
			for _, cl := range sw.Body.List {
				cc, ok := cl.(*ast.CaseClause)
				if !ok {
					continue
				}
				if cc.List == nil {
					defaultClause = cc
					continue
				}
				for _, expr := range cc.List {
					var id *ast.Ident
					switch x := unparen(expr).(type) {
					case *ast.Ident:
						id = x
					case *ast.SelectorExpr:
						id = x.Sel
					}
					if id == nil {
						continue
					}
					if c, ok := identObj(info, id).(*types.Const); ok {
						covered[c.Name()] = true
					}
				}
			}
			if defaultClause != nil && !containsPanic(defaultClause.Body) {
				p.report(&diags, "eventexhaust", defaultClause,
					"silent default in switch over exhaustive enum %s; handle each member explicitly and panic on unknown values", e.Name)
			}
			if defaultClause == nil || !containsPanic(defaultClauseBody(defaultClause)) {
				var missing []string
				for _, m := range e.Members {
					if !covered[m.Name()] && !e.Ignored[m.Name()] {
						missing = append(missing, m.Name())
					}
				}
				if len(missing) > 0 {
					p.report(&diags, "eventexhaust", sw,
						"switch over %s does not cover %s; every declared kind must be handled", e.Name, strings.Join(missing, ", "))
				}
			}
			return true
		})
	}
	return diags
}

// defaultClauseBody returns the clause body, tolerating nil.
func defaultClauseBody(cc *ast.CaseClause) []ast.Stmt {
	if cc == nil {
		return nil
	}
	return cc.Body
}

// sortStrings sorts in place (tiny helper to keep imports tight).
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
