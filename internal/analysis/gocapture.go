// The gocapture check: goroutine closures may not mutate shared
// captured state without a synchronization guard.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoCapture flags data races latent in `go func() { ... }()` closures:
//
//  1. a write inside the goroutine to a variable captured from the
//     spawning function, unless the write is under a mutex held inside
//     the closure, targets a distinct element through a closure-local
//     index (the worker-pool `results[i] = ...` idiom), or targets a
//     variable rebound per iteration by the loop that spawns the
//     goroutine (Go 1.22 loop-variable semantics);
//  2. a write by the spawner, lexically after the `go` statement, to a
//     variable the goroutine captures, unless a WaitGroup.Wait()
//     barrier sits between spawn and write or the write is under a
//     mutex.
//
// The targets are internal/expr's worker pools: every per-scheme slice
// must be filled through the index idiom or joined behind Wait before
// the spawner aggregates it, or the 61-run experiment streams stop
// being replayable. Both rules are intraprocedural and lexical
// (documented in docs/LINT.md); suppression is the escape hatch for
// protocols the analysis cannot see.
func GoCapture() *Analyzer {
	return &Analyzer{
		Name:      "gocapture",
		Doc:       "goroutine closures mutate captured state only via sync guards, per-iteration bindings, or closure-local indices; spawner writes after spawn need a Wait barrier",
		AppliesTo: isCheckedPkg,
		Run:       runGoCapture,
	}
}

// goSpawn is one `go func(...) { ... }(...)` statement.
type goSpawn struct {
	stmt *ast.GoStmt
	lit  *ast.FuncLit
	// captures: objects declared in the enclosing function (outside the
	// closure) that the closure reads or writes.
	captures map[types.Object]bool
	// loop is the innermost for/range statement containing the spawn
	// (nil if not spawned from a loop).
	loop ast.Stmt
}

func runGoCapture(p *Pass) []Diagnostic {
	var diags []Diagnostic
	info := p.Pkg.Info
	for _, fi := range p.Funcs() {
		body := fi.Decl.Body
		spawns := collectSpawns(body, info)
		if len(spawns) == 0 {
			continue
		}
		outerLocks := lockedSpans(body, info)
		waits := waitBarriers(body, info, spawns)

		// Rule 1: writes inside each goroutine to captured variables.
		for _, g := range spawns {
			innerLocks := lockedSpans(g.lit.Body, info)
			seen := make(map[ast.Node]bool)
			ast.Inspect(g.lit.Body, func(n ast.Node) bool {
				var targets []ast.Expr
				switch n := n.(type) {
				case *ast.AssignStmt:
					targets = n.Lhs
				case *ast.IncDecStmt:
					targets = []ast.Expr{n.X}
				default:
					return true
				}
				for _, lhs := range targets {
					obj := writtenObj(info, lhs)
					if obj == nil || !g.captures[obj] {
						continue
					}
					if innerLocks.contains(lhs.Pos()) {
						continue // guarded inside the closure
					}
					if indexedByClosureLocal(info, lhs, g.lit) {
						continue // results[i] worker-pool idiom
					}
					if g.loop != nil && within(obj.Pos(), g.loop) {
						continue // per-iteration binding (Go 1.22)
					}
					if seen[n] {
						continue
					}
					seen[n] = true
					p.report(&diags, "gocapture", lhs,
						"goroutine closure writes captured variable %s without a sync guard; pass it by channel, guard with a mutex, or write through a closure-local index", obj.Name())
				}
				return true
			})
		}

		// Rule 2: spawner writes after spawn to captured variables.
		type key struct {
			obj types.Object
			pos token.Pos
		}
		reported := make(map[key]bool)
		ast.Inspect(body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && isSpawnLit(lit, spawns) {
				return false // rule 1 territory
			}
			var targets []ast.Expr
			switch n := n.(type) {
			case *ast.AssignStmt:
				targets = n.Lhs
			case *ast.IncDecStmt:
				targets = []ast.Expr{n.X}
			default:
				return true
			}
			for _, lhs := range targets {
				obj := writtenObj(info, lhs)
				if obj == nil {
					continue
				}
				pos := lhs.Pos()
				if outerLocks.contains(pos) {
					continue
				}
				for _, g := range spawns {
					if !g.captures[obj] || pos <= g.stmt.End() {
						continue
					}
					if barrierBetween(waits, g.stmt.End(), pos) {
						continue
					}
					k := key{obj, pos}
					if reported[k] {
						continue
					}
					reported[k] = true
					p.report(&diags, "gocapture", lhs,
						"write to %s after spawning a goroutine that captures it, with no WaitGroup barrier between; join the workers with Wait before mutating shared state", obj.Name())
				}
			}
			return true
		})
	}
	return diags
}

// collectSpawns finds every `go func(){...}(...)` in body and computes
// each closure's captured-object set and enclosing loop.
func collectSpawns(body *ast.BlockStmt, info *types.Info) []*goSpawn {
	var spawns []*goSpawn
	var loops []ast.Stmt
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n.(ast.Stmt))
			for _, l := range nestedStmtLists(n.(ast.Stmt)) {
				for _, st := range l {
					ast.Inspect(st, visit)
				}
			}
			loops = loops[:len(loops)-1]
			return false
		case *ast.GoStmt:
			lit, ok := unparen(n.Call.Fun).(*ast.FuncLit)
			if !ok {
				return true
			}
			g := &goSpawn{stmt: n, lit: lit, captures: make(map[types.Object]bool)}
			if len(loops) > 0 {
				g.loop = loops[len(loops)-1]
			}
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				id, ok := m.(*ast.Ident)
				if !ok {
					return true
				}
				obj := identObj(info, id)
				v, isVar := obj.(*types.Var)
				if !isVar || v.IsField() {
					return true
				}
				// Captured: declared in the enclosing function but not
				// inside the closure itself (params and locals are not
				// captures), and not package-scope.
				if within(obj.Pos(), body) && !within(obj.Pos(), lit) {
					g.captures[obj] = true
				}
				return true
			})
			spawns = append(spawns, g)
			// Still scan inside the closure for nested spawns.
			return true
		}
		return true
	}
	ast.Inspect(body, visit)
	return spawns
}

// writtenObj resolves the base object mutated by an assignment target.
// For `x = v`, `x.f = v`, `x[i] = v`, `*x = v` it is x's object; nil if
// the base is not a function-scoped identifier.
func writtenObj(info *types.Info, lhs ast.Expr) types.Object {
	id := rootIdent(lhs)
	if id == nil || id.Name == "_" {
		return nil
	}
	obj := identObj(info, id)
	if v, ok := obj.(*types.Var); ok && !v.IsField() {
		return obj
	}
	return nil
}

// indexedByClosureLocal reports whether lhs writes through an index
// expression whose index is rooted in a variable declared inside lit —
// the worker-pool idiom where each goroutine owns a distinct element.
func indexedByClosureLocal(info *types.Info, lhs ast.Expr, lit *ast.FuncLit) bool {
	for {
		switch t := unparen(lhs).(type) {
		case *ast.IndexExpr:
			if id := rootIdent(t.Index); id != nil {
				if obj := identObj(info, id); obj != nil && within(obj.Pos(), lit) {
					return true
				}
			}
			lhs = t.X
		case *ast.SelectorExpr:
			lhs = t.X
		case *ast.StarExpr:
			lhs = t.X
		default:
			return false
		}
	}
}

// waitBarriers returns the positions of sync.WaitGroup Wait() calls in
// body that sit outside every spawned closure.
func waitBarriers(body *ast.BlockStmt, info *types.Info, spawns []*goSpawn) []token.Pos {
	var waits []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && isSpawnLit(lit, spawns) {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Wait" {
			return true
		}
		if isWaitGroup(exprType(info, sel.X)) {
			waits = append(waits, call.Pos())
		}
		return true
	})
	return waits
}

// barrierBetween reports whether any Wait() barrier lies strictly
// between from and to.
func barrierBetween(waits []token.Pos, from, to token.Pos) bool {
	for _, w := range waits {
		if from < w && w < to {
			return true
		}
	}
	return false
}

// isWaitGroup reports whether t is (a pointer to) sync.WaitGroup.
func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// isSpawnLit reports whether lit is one of the spawned closures.
func isSpawnLit(lit *ast.FuncLit, spawns []*goSpawn) bool {
	for _, g := range spawns {
		if g.lit == lit {
			return true
		}
	}
	return false
}

// within reports whether pos lies inside node n's source extent.
func within(pos token.Pos, n ast.Node) bool {
	return n != nil && n.Pos() <= pos && pos < n.End()
}
