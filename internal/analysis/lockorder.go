// The lockorder check: one global lock-acquisition order, no blocking
// operations while a mutex is held, and no path that returns with a
// lock still held.
//
// The serving layer is a single-writer design — each Shard goroutine
// owns its engine — so the only mutexes in the hot path guard tiny
// shared structures (the pending-record free list, the shared importer
// cache). Precisely because locking is rare, nobody is thinking about
// lock hierarchies when a second mutex appears; a pair of functions
// that take two locks in opposite orders is a deadlock that no unit
// test will ever produce and one loaded weekend will.
//
// lockorder lifts the per-function held-lock facts (interp.go's
// scanLockFlow, computed path-sensitively on the CFG of cfg.go) into a
// global acquisition-order graph:
//
//   - An edge A -> B is recorded when B is acquired while A may be held
//     on some path (same function), or when a call performed while A is
//     held has a callee that transitively acquires B.
//   - A cycle A -> ... -> B -> ... -> A means two executions can each
//     hold one lock and wait for the other; every cyclic edge is
//     reported with the position of the counter-ordered acquisition.
//
// Lock identity is canonical per declaration: field locks are keyed by
// their owning named type (every instance of serve.pendingPool shares
// one ordering discipline), package-level locks by variable path,
// locals by function. Because held sets come from the dataflow rather
// than lexical spans, a conditional unlock or an early return releases
// exactly the paths it runs on: code after `if cond { mu.Unlock() }`
// is held-A only on the paths where cond was false.
//
// Separately, any potentially blocking operation — channel send or
// receive, select without default, range over a channel, a call whose
// summary blocks (mailbox waits) — performed while holding a mutex is
// reported: a blocked lock holder stalls every other acquirer, which in
// serve means the HTTP handlers, not just one shard.
//
// Finally, a lock this function releases on some path but still holds
// when the exit block is reached on another — the classic early-return
// leak — is reported at its acquisition. Bodies that never release a
// lock (explicit lock-helper wrappers) follow the caller's protocol
// and are exempt.
package analysis

import (
	"go/ast"
	"sort"
)

// LockOrder returns the lockorder analyzer.
func LockOrder() *Analyzer {
	return &Analyzer{
		Name: "lockorder",
		Doc:  "global lock-acquisition order must be acyclic; no blocking operations while holding a mutex; no path may return with a lock held",
		Run: func(p *Pass) []Diagnostic {
			ip := p.interpFacts()
			return ip.lockorderBuckets()[p.Pkg.Path]
		},
	}
}

// lockEdge is one observed acquisition ordering with its first witness.
type lockEdge struct {
	from, to string
	pkg      *Package
	node     ast.Node // the inner acquisition (or the call leading to it)
}

// lockorderBuckets computes the check once per run, bucketed by
// package.
func (ip *interp) lockorderBuckets() map[string][]Diagnostic {
	if ip.lockorder != nil {
		return ip.lockorder
	}
	out := make(map[string][]Diagnostic)
	add := func(pkg *Package, n ast.Node, format string, args ...any) {
		pass := &Pass{Pkg: pkg}
		var ds []Diagnostic
		pass.report(&ds, "lockorder", n, format, args...)
		out[pkg.Path] = append(out[pkg.Path], ds...)
	}
	ip.lockorder = out

	// Collect ordered-acquisition edges, first witness per (from, to).
	// Iteration order (functions by qualified name, spans and calls in
	// source order) makes the witness choice deterministic.
	edges := make(map[[2]string]*lockEdge)
	record := func(from, to string, pkg *Package, n ast.Node) {
		if from == to {
			return
		}
		key := [2]string{from, to}
		if edges[key] == nil {
			edges[key] = &lockEdge{from: from, to: to, pkg: pkg, node: n}
		}
	}
	fns := ip.byQname()
	for _, fn := range fns {
		// Nested acquisition in the same function: the held set at each
		// acquisition is the set of outer locks.
		for _, a := range fn.acqs {
			for _, h := range a.held {
				record(h.id, a.id, fn.pkg, a.node)
			}
		}
		// Calls under a held lock into functions that lock.
		for _, cs := range fn.calls {
			if cs.dynamic || cs.spawned {
				continue
			}
			held := fn.heldCall[cs.call]
			if len(held) == 0 {
				continue
			}
			if callee := ip.fnOf(cs.callee); callee != nil {
				ids := make([]string, 0, len(callee.locks))
				for id := range callee.locks {
					ids = append(ids, id)
				}
				sort.Strings(ids)
				for _, h := range held {
					for _, id := range ids {
						record(h.id, id, fn.pkg, cs.call)
					}
				}
			}
		}
	}

	// Reachability over the edge set (the graphs here are tiny — a
	// handful of locks — so repeated DFS is fine).
	next := make(map[string][]string)
	for key := range edges {
		next[key[0]] = append(next[key[0]], key[1])
	}
	for _, succ := range next {
		sort.Strings(succ)
	}
	reaches := func(from, to string) bool {
		seen := map[string]bool{from: true}
		stack := []string{from}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, s := range next[n] {
				if s == to {
					return true
				}
				if !seen[s] {
					seen[s] = true
					stack = append(stack, s)
				}
			}
		}
		return false
	}

	keys := make([][2]string, 0, len(edges))
	for key := range edges {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, key := range keys {
		e := edges[key]
		if !reaches(e.to, e.from) {
			continue
		}
		msg := "acquiring %s while holding %s conflicts with the opposite acquisition order elsewhere"
		if counter := edges[[2]string{e.to, e.from}]; counter != nil {
			cp := counter.pkg.Fset.Position(counter.node.Pos())
			add(e.pkg, e.node, msg+" (%s:%d); the cycle can deadlock",
				shortLockID(e.to), shortLockID(e.from), trimPath(cp.Filename), cp.Line)
		} else {
			add(e.pkg, e.node, msg+"; the cycle can deadlock",
				shortLockID(e.to), shortLockID(e.from))
		}
	}

	// Blocking operations under a held lock. held[0] is the earliest
	// acquisition still held — the lock named in the message.
	seenBlock := make(map[ast.Node]bool)
	for _, fn := range fns {
		for _, b := range fn.blocks {
			held := fn.heldBlock[b.node]
			if len(held) == 0 || seenBlock[b.node] {
				continue
			}
			seenBlock[b.node] = true
			add(fn.pkg, b.node,
				"%s while holding %s; a blocked lock holder stalls every other acquirer", b.kind, shortLockID(held[0].id))
		}
		for _, cs := range fn.calls {
			if cs.dynamic || cs.spawned || cs.inPanic || seenBlock[cs.call] {
				continue
			}
			held := fn.heldCall[cs.call]
			if len(held) == 0 {
				continue
			}
			blockingCallee := ""
			if callee := ip.fnOf(cs.callee); callee != nil {
				if callee.eff&effBlock != 0 {
					blockingCallee = callee.short
				}
			} else if externEffect(cs.callee, ip)&effBlock != 0 {
				blockingCallee = externName(cs.callee)
			}
			if blockingCallee != "" {
				seenBlock[cs.call] = true
				add(fn.pkg, cs.call,
					"call to %s, which may block, while holding %s; a blocked lock holder stalls every other acquirer", blockingCallee, shortLockID(held[0].id))
			}
		}
	}

	// Locks leaked past a return on some path.
	for _, fn := range fns {
		seenLeak := make(map[string]bool)
		for _, lk := range fn.lockLeaks {
			if seenLeak[lk.id] {
				continue
			}
			seenLeak[lk.id] = true
			add(fn.pkg, lk.acq,
				"%s is still held when %s returns on some path; release it on every path or defer the unlock",
				shortLockID(lk.id), fn.short)
		}
	}
	return out
}

// trimPath reduces a file path to its base name for cross-file
// positions embedded in messages (golden files must not depend on the
// checkout directory).
func trimPath(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return p[i+1:]
		}
	}
	return p
}
