// Package loading. pd2lint must not pull in golang.org/x/tools, so this
// file implements a small module-aware loader on top of go/parser,
// go/types, and go/importer: module-internal imports are resolved by
// mapping import paths onto directories under the module root and
// type-checking recursively; standard-library imports go through the
// toolchain's default importer (with a source-importer fallback for
// environments without export data).
package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path, e.g. "repro/internal/core"
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File // non-test files, sorted by file name
	Types *types.Package
	Info  *types.Info

	supp map[string]*fileSuppressions // by filename, built lazily
	cfgs map[*ast.FuncDecl]*cfg       // per-function CFGs, built lazily
}

// Loader loads packages of a single module (plus the standard library).
type Loader struct {
	Fset    *token.FileSet
	ModRoot string // absolute path of the directory holding go.mod
	ModPath string // module path from go.mod

	pkgs    map[string]*Package // keyed by absolute directory
	loading map[string]bool     // cycle detection, keyed by directory
}

// NewLoader locates the enclosing module of dir and returns a loader
// for it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	return &Loader{
		Fset:    token.NewFileSet(),
		ModRoot: root,
		ModPath: modPath,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// sharedStd serves standard-library imports for every Loader in the
// process. Export data (or, as a fallback, the type-checked stdlib
// source) is loaded once and reused: the lint suite, golden tests, and
// benchmarks all create loaders, and re-importing fmt/sync/sort per
// loader dominated `make lint` before this cache existed. The source
// importer keeps its own FileSet — stdlib positions never surface in
// diagnostics, so sharing it across loaders is safe.
var sharedStd struct {
	once sync.Once
	mu   sync.Mutex
	def  types.Importer
	src  types.Importer
}

// stdImport resolves a standard-library import through the shared
// process-wide importer pair.
func stdImport(path string) (*types.Package, error) {
	sharedStd.once.Do(func() {
		sharedStd.def = importer.Default()
		sharedStd.src = importer.ForCompiler(token.NewFileSet(), "source", nil)
	})
	sharedStd.mu.Lock()
	defer sharedStd.mu.Unlock()
	pkg, err := sharedStd.def.Import(path)
	if err == nil {
		return pkg, nil
	}
	// Fall back to type-checking the standard library from source, for
	// toolchains without prebuilt export data.
	return sharedStd.src.Import(path)
}

// findModule walks upward from dir looking for go.mod.
func findModule(dir string) (root, modPath string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					mp := strings.TrimSpace(rest)
					if unq, err := strconv.Unquote(mp); err == nil {
						mp = unq
					}
					return d, mp, nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// ModuleDirs returns every directory under the module root that holds at
// least one non-test .go file, in sorted order, skipping testdata,
// hidden directories, and build-output directories.
func (l *Loader) ModuleDirs() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "out" || name == "vendor") {
			return filepath.SkipDir
		}
		names, err := goSources(path)
		if err != nil {
			return err
		}
		if len(names) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// goSources lists the non-test .go files of dir, sorted.
func goSources(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// LoadDir parses and type-checks the package in dir (non-test files
// only). Results are cached, so shared dependencies are checked once.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.pkgs[abs]; ok {
		return pkg, nil
	}
	if l.loading[abs] {
		return nil, fmt.Errorf("analysis: import cycle through %s", abs)
	}
	l.loading[abs] = true
	defer delete(l.loading, abs)

	names, err := goSources(abs)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go source files in %s", abs)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(abs, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	importPath := l.importPathFor(abs)
	var firstErr error
	conf := types.Config{
		Importer: &moduleImporter{l: l},
		// Record the first error but keep checking, so a single bad file
		// yields one crisp diagnostic instead of a panic mid-walk.
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if firstErr != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, firstErr)
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	pkg := &Package{
		Path:  importPath,
		Dir:   abs,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
		supp:  make(map[string]*fileSuppressions),
	}
	l.pkgs[abs] = pkg
	return pkg, nil
}

// importPathFor maps an absolute directory inside the module to its
// import path.
func (l *Loader) importPathFor(abs string) string {
	rel, err := filepath.Rel(l.ModRoot, abs)
	if err != nil || rel == "." {
		return l.ModPath
	}
	return l.ModPath + "/" + filepath.ToSlash(rel)
}

// dirForImport maps a module-internal import path to a directory.
func (l *Loader) dirForImport(path string) (string, bool) {
	if path == l.ModPath {
		return l.ModRoot, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
		return filepath.Join(l.ModRoot, filepath.FromSlash(rest)), true
	}
	return "", false
}

// moduleImporter resolves imports during type checking.
type moduleImporter struct {
	l *Loader
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if dir, ok := m.l.dirForImport(path); ok {
		pkg, err := m.l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return stdImport(path)
}
