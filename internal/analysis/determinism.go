package analysis

import (
	"go/ast"
	"go/types"
)

// Determinism flags sources of run-to-run nondeterminism in the
// simulator packages. The replay harness (internal/core/replay.go)
// asserts that a schedule re-executed from the same spec is identical
// slot for slot; that only holds if no scheduling decision consults the
// wall clock, an unseeded global RNG, the process environment, or the
// iteration order of a Go map.
//
// Four patterns are flagged:
//
//  1. time.Now / time.Since / time.Until — simulated time is the only
//     clock the scheduler may read.
//  2. package-level math/rand functions (rand.Intn, rand.Shuffle,
//     rand.Seed, ...) — all randomness must come from an explicitly
//     seeded source (stats.RNG or a *rand.Rand built via rand.New).
//  3. os.Getenv / os.LookupEnv / os.Environ — configuration must arrive
//     through typed parameters recorded in the scenario spec.
//  4. range over a map that accumulates results (append) or selects a
//     candidate (compare-and-assign to an outer variable) with no
//     deterministic sort following the loop in the same block.
func Determinism() *Analyzer {
	return &Analyzer{
		Name:      "determinism",
		Doc:       "no wall clock, global rand, env reads, or unsorted map-order dependence in simulator packages",
		AppliesTo: isSimulatorPkg,
		Run:       runDeterminism,
	}
}

// globalRandConstructors are the math/rand package-level functions that
// are deterministic to call (they only build explicitly seeded
// sources).
var globalRandConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	// math/rand/v2:
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runDeterminism(p *Pass) []Diagnostic {
	var diags []Diagnostic
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch {
			case selectorFromPkg(info, sel, "time"):
				switch sel.Sel.Name {
				case "Now", "Since", "Until":
					p.report(&diags, "determinism",
						call, "time.%s in simulator package; use simulated slot time", sel.Sel.Name)
				}
			case selectorFromPkg(info, sel, "math/rand"), selectorFromPkg(info, sel, "math/rand/v2"):
				if !globalRandConstructors[sel.Sel.Name] {
					p.report(&diags, "determinism",
						call, "global math/rand.%s in simulator package; use a seeded stats.RNG or rand.New", sel.Sel.Name)
				}
			case selectorFromPkg(info, sel, "os"):
				switch sel.Sel.Name {
				case "Getenv", "LookupEnv", "Environ":
					p.report(&diags, "determinism",
						call, "os.%s in simulator package; pass configuration through the scenario spec", sel.Sel.Name)
				}
			}
			return true
		})
		// Map-order dependence needs block context, so walk statement
		// lists rather than using a flat Inspect.
		ast.Inspect(f, func(n ast.Node) bool {
			if block, ok := n.(*ast.BlockStmt); ok {
				p.checkMapRanges(block.List, info, &diags)
			}
			if cc, ok := n.(*ast.CaseClause); ok {
				p.checkMapRanges(cc.Body, info, &diags)
			}
			return true
		})
	}
	return diags
}

// checkMapRanges scans one statement list for range-over-map loops that
// accumulate order-sensitively without a following sort.
func (p *Pass) checkMapRanges(stmts []ast.Stmt, info *types.Info, diags *[]Diagnostic) {
	for i, stmt := range stmts {
		rs, ok := stmt.(*ast.RangeStmt)
		if !ok {
			continue
		}
		t := exprType(info, rs.X)
		if t == nil {
			continue
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			continue
		}
		kind, sensitive := mapBodyOrderSensitive(rs, info)
		if !sensitive {
			continue
		}
		if sortFollows(stmts[i+1:], info) {
			continue
		}
		p.report(diags, "determinism", rs,
			"range over map %s with no deterministic sort after the loop; iterate a sorted key slice or sort the result",
			kind)
	}
}

// mapBodyOrderSensitive classifies the body of a range-over-map loop.
// It reports ("appends to a slice", true) when the body appends,
// ("selects a candidate", true) when an if-statement compares loop
// variables and assigns a variable declared outside the loop, and
// ("", false) for order-insensitive bodies (pure reads, counting,
// deletes).
func mapBodyOrderSensitive(rs *ast.RangeStmt, info *types.Info) (string, bool) {
	loopObjs := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				loopObjs[obj] = true
			}
			if obj := info.Uses[id]; obj != nil {
				loopObjs[obj] = true
			}
		}
	}
	mentionsLoopVar := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && loopObjs[info.Uses[id]] {
				found = true
				return false
			}
			return !found
		})
		return found
	}
	declaredInBody := declaredObjects(rs.Body, info)
	assignsOuter := func(s ast.Stmt) bool {
		as, ok := s.(*ast.AssignStmt)
		if !ok {
			return false
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := info.Uses[id]
			if obj == nil {
				obj = info.Defs[id]
			}
			if obj != nil && !declaredInBody[obj] && !loopObjs[obj] {
				return true
			}
		}
		return false
	}

	var kind string
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if kind != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			// Builtin append (a shadowing user-defined append would be
			// exotic enough to deserve the flag too).
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" {
				kind = "appends to a slice"
				return false
			}
		case *ast.IfStmt:
			cond, ok := n.Cond.(*ast.BinaryExpr)
			if !ok || !arithmeticOrCmp(cond.Op) {
				return true
			}
			if !mentionsLoopVar(cond.X) && !mentionsLoopVar(cond.Y) {
				return true
			}
			for _, s := range n.Body.List {
				if assignsOuter(s) {
					kind = "selects a candidate"
					return false
				}
			}
		}
		return true
	})
	return kind, kind != ""
}

// declaredObjects collects every object declared within node.
func declaredObjects(node ast.Node, info *types.Info) map[types.Object]bool {
	objs := make(map[types.Object]bool)
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				objs[obj] = true
			}
		}
		return true
	})
	return objs
}

// sortFollows reports whether any later statement in the same block is
// a deterministic sort call (sort.* or slices.Sort*).
func sortFollows(rest []ast.Stmt, info *types.Info) bool {
	for _, s := range rest {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		if selectorFromPkg(info, sel, "sort") ||
			(selectorFromPkg(info, sel, "slices") && len(sel.Sel.Name) >= 4 && sel.Sel.Name[:4] == "Sort") {
			return true
		}
	}
	return false
}
