package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FracExact flags floating-point arithmetic, comparison, assignment, or
// conversion inside the exact-arithmetic packages. Task weights, lags,
// and group deadlines must flow through frac.Rat; the paper's drift
// bounds are exact statements and do not survive rounding. Designated
// reporting boundaries (frac.Rat.Float64, frac.Quantize, metric
// percentages) carry //lint:allow fracexact annotations.
func FracExact() *Analyzer {
	return &Analyzer{
		Name: "fracexact",
		Doc:  "no float arithmetic/comparison/conversion in exact-arithmetic packages",
		AppliesTo: func(pkgPath string) bool {
			return pathIn(pkgPath, exactPkgs) && !pathIn(pkgPath, reportingPkgs)
		},
		Run: runFracExact,
	}
}

func runFracExact(p *Pass) []Diagnostic {
	var diags []Diagnostic
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if !arithmeticOrCmp(n.Op) {
					return true
				}
				if floatOperand(info, n.X) || floatOperand(info, n.Y) {
					p.report(&diags, "fracexact",
						n, "float %s expression in exact-arithmetic package; use frac.Rat", n.Op)
				}
			case *ast.AssignStmt:
				if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
					return true
				}
				// Compound assignment: x += y etc.
				for _, lhs := range n.Lhs {
					if floatOperand(info, lhs) {
						p.report(&diags, "fracexact",
							n, "float compound assignment %s in exact-arithmetic package; use frac.Rat", n.Tok)
						break
					}
				}
			case *ast.CallExpr:
				// Conversion to a float type: float64(x), float32(x),
				// or a named type whose underlying type is float.
				if len(n.Args) != 1 {
					return true
				}
				tv, ok := info.Types[n.Fun]
				if !ok || !tv.IsType() {
					return true
				}
				if isFloat(tv.Type) {
					p.report(&diags, "fracexact",
						n, "conversion to %s in exact-arithmetic package; keep values in frac.Rat", tv.Type)
				}
			}
			return true
		})
	}
	return diags
}

func arithmeticOrCmp(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
		token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		return true
	}
	return false
}

func floatOperand(info *types.Info, e ast.Expr) bool {
	t := exprType(info, e)
	return t != nil && isFloat(t)
}
