package analysis

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from current analyzer output")

// moduleLoader is the one Loader every test in this package shares:
// each package (fixtures included — they live inside this module) is
// parsed and type-checked exactly once per `go test` run, and the
// standard library import cache is shared process-wide (load.go). This
// is the same load-once discipline cmd/pd2lint uses.
var (
	moduleLoaderOnce sync.Once
	moduleLoaderVal  *Loader
	moduleLoaderErr  error
)

func moduleLoader(t testing.TB) *Loader {
	t.Helper()
	moduleLoaderOnce.Do(func() {
		moduleLoaderVal, moduleLoaderErr = NewLoader(".")
	})
	if moduleLoaderErr != nil {
		t.Fatalf("NewLoader: %v", moduleLoaderErr)
	}
	return moduleLoaderVal
}

func loadFixture(t testing.TB, check string) *Package {
	t.Helper()
	dir := filepath.Join("testdata", "src", check)
	pkg, err := moduleLoader(t).LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	return pkg
}

// TestGolden runs each analyzer over its fixture package under
// testdata/src/<check>/ and compares the rendered diagnostics against
// testdata/<check>.golden. Suppressed lines (//lint:allow) must already
// be filtered, so every fixture doubles as a suppression test.
func TestGolden(t *testing.T) {
	for _, a := range All() {
		t.Run(a.Name, func(t *testing.T) {
			pkg := loadFixture(t, a.Name)
			diags := RunChecks([]*Package{pkg}, []*Analyzer{a}, true)
			var b strings.Builder
			for _, d := range diags {
				fmt.Fprintf(&b, "%s:%d:%d: [%s] %s\n", filepath.Base(d.File), d.Line, d.Col, d.Check, d.Message)
			}
			got := b.String()

			goldenPath := filepath.Join("testdata", a.Name+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatalf("update golden: %v", err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("read golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch for %s\n--- got ---\n%s--- want ---\n%s", a.Name, got, want)
			}
		})
	}
}

// TestGoldenFixturesSeedViolations asserts that every fixture seeds at
// least one violation of its own category — the acceptance criterion
// that pd2lint exits non-zero on each check is anchored here.
func TestGoldenFixturesSeedViolations(t *testing.T) {
	for _, a := range All() {
		pkg := loadFixture(t, a.Name)
		diags := RunChecks([]*Package{pkg}, []*Analyzer{a}, true)
		if len(diags) == 0 {
			t.Errorf("fixture %s produced no %s diagnostics", pkg.Dir, a.Name)
		}
		for _, d := range diags {
			if d.Check != a.Name {
				t.Errorf("fixture %s produced foreign diagnostic %s", pkg.Dir, d)
			}
		}
	}
}

// loadModulePkgs loads every package of the module through the shared
// loader.
func loadModulePkgs(t testing.TB) []*Package {
	t.Helper()
	loader := moduleLoader(t)
	dirs, err := loader.ModuleDirs()
	if err != nil {
		t.Fatalf("ModuleDirs: %v", err)
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatalf("LoadDir(%s): %v", dir, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs
}

// TestModuleClean asserts the repository itself passes its own suite —
// including stale-suppression strictness — on every go test run, not
// only in make check.
func TestModuleClean(t *testing.T) {
	diags := RunChecksOpts(loadModulePkgs(t), All(), RunOptions{StaleSuppress: true})
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// BenchmarkLintModule guards the load-once architecture: one iteration
// loads the module (warm stdlib cache, cold module packages) and runs
// the full suite. A regression that re-loads or re-type-checks per
// check shows up here as a step change.
func BenchmarkLintModule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		loader, err := NewLoader(".")
		if err != nil {
			b.Fatalf("NewLoader: %v", err)
		}
		dirs, err := loader.ModuleDirs()
		if err != nil {
			b.Fatalf("ModuleDirs: %v", err)
		}
		var pkgs []*Package
		for _, dir := range dirs {
			pkg, err := loader.LoadDir(dir)
			if err != nil {
				b.Fatalf("LoadDir(%s): %v", dir, err)
			}
			pkgs = append(pkgs, pkg)
		}
		if diags := RunChecksOpts(pkgs, All(), RunOptions{}); len(diags) != 0 {
			b.Fatalf("module not clean: %d diagnostics", len(diags))
		}
	}
}
