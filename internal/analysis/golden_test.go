package analysis

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from current analyzer output")

// TestGolden runs each analyzer over its fixture package under
// testdata/src/<check>/ and compares the rendered diagnostics against
// testdata/<check>.golden. Suppressed lines (//lint:allow) must already
// be filtered, so every fixture doubles as a suppression test.
func TestGolden(t *testing.T) {
	for _, a := range All() {
		t.Run(a.Name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", a.Name)
			loader, err := NewLoader(dir)
			if err != nil {
				t.Fatalf("NewLoader: %v", err)
			}
			pkg, err := loader.LoadDir(dir)
			if err != nil {
				t.Fatalf("LoadDir(%s): %v", dir, err)
			}
			diags := RunChecks([]*Package{pkg}, []*Analyzer{a}, true)
			var b strings.Builder
			for _, d := range diags {
				fmt.Fprintf(&b, "%s:%d:%d: [%s] %s\n", filepath.Base(d.File), d.Line, d.Col, d.Check, d.Message)
			}
			got := b.String()

			goldenPath := filepath.Join("testdata", a.Name+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatalf("update golden: %v", err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("read golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch for %s\n--- got ---\n%s--- want ---\n%s", a.Name, got, want)
			}
		})
	}
}

// TestGoldenFixturesSeedViolations asserts that every fixture seeds at
// least one violation of its own category — the acceptance criterion
// that pd2lint exits non-zero on each check is anchored here.
func TestGoldenFixturesSeedViolations(t *testing.T) {
	for _, a := range All() {
		dir := filepath.Join("testdata", "src", a.Name)
		loader, err := NewLoader(dir)
		if err != nil {
			t.Fatalf("NewLoader: %v", err)
		}
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatalf("LoadDir(%s): %v", dir, err)
		}
		diags := RunChecks([]*Package{pkg}, []*Analyzer{a}, true)
		if len(diags) == 0 {
			t.Errorf("fixture %s produced no %s diagnostics", dir, a.Name)
		}
		for _, d := range diags {
			if d.Check != a.Name {
				t.Errorf("fixture %s produced foreign diagnostic %s", dir, d)
			}
		}
	}
}

// TestModuleClean asserts the repository itself passes its own suite —
// the linter is dogfooded on every go test run, not only in make check.
func TestModuleClean(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	dirs, err := loader.ModuleDirs()
	if err != nil {
		t.Fatalf("ModuleDirs: %v", err)
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatalf("LoadDir(%s): %v", dir, err)
		}
		pkgs = append(pkgs, pkg)
	}
	diags := RunChecks(pkgs, All(), false)
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
