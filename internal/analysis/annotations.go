// The annotation table: the declarative registry that scopes the
// dataflow checks to the engine structures whose invariants they
// enforce. docs/LINT.md ("Annotation table") and DESIGN.md link here.
//
// The table is code, reviewed like code. Every entry is validated
// against the type-checked package it names — a renamed struct, field,
// or function makes the stale entry itself a diagnostic, so the table
// cannot silently rot out of sync with the engine.
package analysis

import "go/types"

// ---------------------------------------------------------------------
// heapkey annotations.

// heapKeySpec registers the ordering-key fields of one heap-organized
// struct. Writes to a key field are only legal inside methods of Owner
// (the heap's push/pop/fix/sift call chain) or in the explicitly listed
// AllowIn functions — everywhere else a write can silently corrupt heap
// order without failing a test.
type heapKeySpec struct {
	Pkg    string   // import path the entry applies to
	Struct string   // struct type whose fields are ordering keys
	Fields []string // the key fields
	Owner  string   // heap type; all its methods may write the keys
	// AllowIn lists additional "Recv.Method" / "Func" names allowed to
	// write (constructors that stamp keys before insertion, and
	// update-then-Fix protocols). Keep each entry justified by Why.
	AllowIn []string
	Why     string
}

// heapKeyTable registers the event-driven engine's heaps (the indexed
// PD² ready-heap and the six calendar heaps share two key structs) and
// the self-test fixture. Keep in sync with docs/LINT.md.
var heapKeyTable = []heapKeySpec{
	{
		Pkg:     "repro/internal/core",
		Struct:  "tevent",
		Fields:  []string{"at", "seq"},
		Owner:   "eventHeap",
		AllowIn: []string{"Scheduler.pushEvent"},
		Why:     "calendar entries are ordered by (at, seq); pushEvent stamps seq before insertion and events are immutable afterwards",
	},
	{
		Pkg:     "repro/internal/core",
		Struct:  "subtask",
		Fields:  []string{"deadline", "bbit", "groupDeadline"},
		Owner:   "readyHeap",
		AllowIn: []string{"Scheduler.release"},
		Why:     "PD² priority fields are fixed at release (Sec. 3.2) before the record can be offered to the ready heap",
	},
	{
		Pkg:     "repro/internal/core",
		Struct:  "taskState",
		Fields:  []string{"offer", "readyIdx"},
		Owner:   "readyHeap",
		AllowIn: []string{"Scheduler.updateOffer"},
		Why:     "offer is the ready-heap comparator input and readyIdx its index slot; updateOffer recomputes offer and immediately re-fixes membership",
	},
	// Fixture entries (internal/analysis/testdata/src/heapkey).
	{
		Pkg:     "repro/internal/analysis/testdata/src/heapkey",
		Struct:  "item",
		Fields:  []string{"key", "idx"},
		Owner:   "minheap",
		AllowIn: []string{"rekey"},
		Why:     "fixture: rekey updates the key and immediately fixes the heap",
	},
}

// heapKeySpecsFor returns the table entries applying to pkgPath.
func heapKeySpecsFor(pkgPath string) []heapKeySpec {
	var out []heapKeySpec
	for _, s := range heapKeyTable {
		if s.Pkg == pkgPath {
			out = append(out, s)
		}
	}
	return out
}

// ---------------------------------------------------------------------
// poolescape annotations.

// poolSink is a long-lived struct that may hold a pooled pointer only
// together with its reuse stamp: a composite literal that sets PtrField
// must also set StampField (from the pointer's own stamp), so a stale
// entry is detectable at pop time.
type poolSink struct {
	Struct     string
	PtrField   string
	StampField string
}

// poolSpec registers one free-list pool: where pooled pointers are born
// (Alloc), where they die (Free), which struct they point to, and the
// only places they may be stored.
type poolSpec struct {
	Pkg        string
	Alloc      string // function/method whose call yields a pooled pointer
	Free       string // function/method retiring a pointer to the pool
	Elem       string // pooled record type
	StampField string // reuse-generation field on Elem
	Sinks      []poolSink
	// OwnerFields lists "Type.field" stores that are the ownership
	// structure itself (the task's subtask chain, the pool's free list):
	// they are retired through Free and therefore need no stamp.
	OwnerFields []string
	Why         string
}

// poolTable registers the scheduler's subtask pool and the self-test
// fixture. Keep in sync with docs/LINT.md.
var poolTable = []poolSpec{
	{
		Pkg:        "repro/internal/core",
		Alloc:      "newSubtask",
		Free:       "freeSubtask",
		Elem:       "subtask",
		StampField: "stamp",
		Sinks: []poolSink{
			{Struct: "tevent", PtrField: "sub", StampField: "stamp"},
		},
		OwnerFields: []string{
			"taskState.lastReleased", // head of the one-generation chain
			"taskState.live",         // I_SW live set, trimmed by syncAccrual
			"taskState.history",      // RecordSubtasks mode: records are never freed
			"taskState.retired",      // one-release grace slot before freeSubtask
			"subtask.prev",           // the chain link itself
			"Scheduler.subPool",      // the free list
		},
		Why: "calendar events outlive slots; only stamped tevents and the owning chain may hold subtask pointers",
	},
	{
		Pkg:        "repro/internal/serve",
		Alloc:      "newPending",
		Free:       "freePending",
		Elem:       "pending",
		StampField: "stamp",
		OwnerFields: []string{
			"pendingPool.free", // the free list
		},
		Why: "mailbox records are recycled across requests; the stamp generation catches an HTTP handler touching a record after freePending recycled it",
	},
	// Fixture entry (internal/analysis/testdata/src/poolescape).
	{
		Pkg:        "repro/internal/analysis/testdata/src/poolescape",
		Alloc:      "alloc",
		Free:       "free",
		Elem:       "rec",
		StampField: "stamp",
		Sinks: []poolSink{
			{Struct: "event", PtrField: "sub", StampField: "stamp"},
		},
		OwnerFields: []string{"owner.last", "owner.live", "owner.pool"},
		Why:         "fixture: miniature subtask pool with reuse stamps",
	},
}

// poolSpecsFor returns the table entries applying to pkgPath.
func poolSpecsFor(pkgPath string) []poolSpec {
	var out []poolSpec
	for _, s := range poolTable {
		if s.Pkg == pkgPath {
			out = append(out, s)
		}
	}
	return out
}

// ---------------------------------------------------------------------
// ownxfer annotations: pooled-record ownership transfer.

// ownXferFunc registers one in-package function or method through which
// ownership of a pooled record leaves (or returns to) the caller. A
// plain entry is an unconditional transfer: after the call the caller
// owns none of the pooled arguments it passed. A Cond entry transfers
// conditionally: the callee reports the outcome through the bool result
// at index BoolResult, and the caller still owns the record iff that
// bool equals OwnerWhen (ownxfer refines the state along the true/false
// edges of a branch on that result).
type ownXferFunc struct {
	Func       string // "Recv.Method" / "Func" name, as in funcInfo.Name
	Cond       bool   // outcome-dependent transfer
	BoolResult int    // index of the bool result reporting the outcome
	OwnerWhen  bool   // caller still owns the record iff the bool equals this
	Why        string
}

// ownXferSpec registers the ownership protocol of one pooled record
// type: where owned records are born and die (mirroring the poolTable
// entry for the same Elem) and the functions that move ownership across
// a goroutine or call boundary. ownxfer verifies that after a record is
// sent into a channel, handed to a Transfers function, or released, no
// path in the sender reads, writes or re-frees it, and that every
// acquire->release path disposes of the record exactly once.
type ownXferSpec struct {
	Pkg       string
	Elem      string // pooled record type (a poolTable Elem)
	Acquire   string // function whose call result is a fresh owned record
	Release   string // function retiring an owned record to the pool
	Transfers []ownXferFunc
	Why       string
}

// ownerXferTable registers the mailbox wire path, the scheduler's
// subtask pool, and the self-test fixture. Keep in sync with
// docs/LINT.md.
var ownerXferTable = []ownXferSpec{
	{
		Pkg:     "repro/internal/serve",
		Elem:    "pending",
		Acquire: "newPending",
		Release: "freePending",
		Transfers: []ownXferFunc{
			{Func: "Shard.submit", Cond: true, BoolResult: 0, OwnerWhen: false,
				Why: "true means the record entered the mailbox and the shard goroutine owns it until the reply is sent; false means the mailbox was full and the caller still holds it"},
			{Func: "Server.exchange", Cond: true, BoolResult: 1, OwnerWhen: true,
				Why: "ok means the round trip completed and the handler owns the record again; on !ok exchange has already freed it or left it with the draining shard"},
			{Func: "Server.exchangeErr",
				Why: "the in-process exchange consumes the record on every path: replies carry fresh copies so it frees the record itself, or abandons it to the draining shard"},
			{Func: "Shard.drainAndHandle",
				Why: "consumes the mailbox record passed in: every drained record is handled and replied to"},
			{Func: "Shard.handle",
				Why: "replies on the record's channel, handing ownership back to the blocked submitter"},
		},
		Why: "pooled pending records cross the handler/shard goroutine boundary twice per request; a sender touching a record after handing it off races the shard and breaks byte-exact replay",
	},
	{
		Pkg:     "repro/internal/core",
		Elem:    "subtask",
		Acquire: "newSubtask",
		Release: "freeSubtask",
		// No Transfers: subtask records never cross a goroutine; they are
		// parked in the owning chain (poolTable OwnerFields) or freed.
		Why: "subtask records are recycled through the scheduler free list; releasing one twice or touching it after freeSubtask corrupts a later task's schedule",
	},
	// Fixture entry (internal/analysis/testdata/src/ownxfer).
	{
		Pkg:     "repro/internal/analysis/testdata/src/ownxfer",
		Elem:    "rec",
		Acquire: "get",
		Release: "put",
		Transfers: []ownXferFunc{
			{Func: "svc.post", Cond: true, BoolResult: 0, OwnerWhen: false,
				Why: "fixture: conditional mailbox submit"},
			{Func: "consume",
				Why: "fixture: unconditional hand-off"},
		},
		Why: "fixture: miniature mailbox protocol with a reply channel",
	},
}

// ownXferSpecsFor returns the table entries applying to pkgPath.
func ownXferSpecsFor(pkgPath string) []ownXferSpec {
	var out []ownXferSpec
	for _, s := range ownerXferTable {
		if s.Pkg == pkgPath {
			out = append(out, s)
		}
	}
	return out
}

// ---------------------------------------------------------------------
// detflow annotations: the replayable command surface.

// replaySinkSpec registers the functions of one package that form the
// replayable command surface: everything that feeds them must be
// deterministic, because a replay re-executes the logged commands and
// compares state digests byte for byte.
type replaySinkSpec struct {
	Pkg   string
	Funcs []string // "Recv.Method" / "Func" names, as in funcInfo.Name
	Why   string
}

// replaySinkTable registers the engine's command surface and the
// self-test fixture. Keep in sync with docs/LINT.md.
var replaySinkTable = []replaySinkSpec{
	{
		Pkg: "repro/internal/core",
		Funcs: []string{
			"Scheduler.Apply",
			"Scheduler.ReplayLog",
			"Replay",
			"Scheduler.WriteState",
			"Scheduler.StateDigest",
		},
		Why: "Apply/ReplayLog/Replay re-execute the command log and WriteState/StateDigest certify the result; a wall-clock read or unseeded draw on any path into them breaks bit-exact replay (ROADMAP item 4)",
	},
	// Fixture entry (internal/analysis/testdata/src/detflow).
	{
		Pkg:   "repro/internal/analysis/testdata/src/detflow",
		Funcs: []string{"Apply", "Digest", "Stamp"},
		Why:   "fixture: miniature command log with a digest",
	},
}

// replaySinkSpecsFor returns the table entries applying to pkgPath.
func replaySinkSpecsFor(pkgPath string) []replaySinkSpec {
	var out []replaySinkSpec
	for _, s := range replaySinkTable {
		if s.Pkg == pkgPath {
			out = append(out, s)
		}
	}
	return out
}

// isReplaySink reports whether the qualified name ("importpath.Recv.
// Method") is a registered replay sink.
func isReplaySink(qname string) bool {
	for _, s := range replaySinkTable {
		for _, f := range s.Funcs {
			if qname == s.Pkg+"."+f {
				return true
			}
		}
	}
	return false
}

// isReplaySinkObj is isReplaySink for a callee resolved outside the
// current run (a partial-module invocation still tracks calls into the
// registered surface).
func isReplaySinkObj(obj *types.Func) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	name := obj.Name()
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		if rn := recvBareName(sig); rn != "" {
			name = rn + "." + name
		}
	}
	return isReplaySink(obj.Pkg().Path() + "." + name)
}

// ---------------------------------------------------------------------
// hotalloc annotations: externals proven allocation-free.

// allocFreeTable lists callees outside the lint run (standard library)
// that hotalloc accepts on a //lint:noalloc path. Keys are
// "importpath.Func" or "importpath.Recv.Method" (pointer receivers
// without the star). Keep every entry justified: an entry here is a
// trusted axiom the check cannot verify.
var allocFreeTable = map[string]string{
	"strconv.AppendInt":               "appends into the caller's buffer; allocates only on growth, amortized by reuse",
	"strconv.AppendUint":              "appends into the caller's buffer; allocates only on growth, amortized by reuse",
	"sync.Mutex.Lock":                 "uncontended fast path is a CAS; never allocates",
	"sync.Mutex.Unlock":               "atomic store; never allocates",
	"sync.RWMutex.RLock":              "atomic counter; never allocates",
	"sync.RWMutex.RUnlock":            "atomic counter; never allocates",
	"math/bits.Mul64":                 "compiler intrinsic; pure register arithmetic",
	"sort.Search":                     "binary search over caller state; no allocation",
	"sync/atomic.Int64.Add":           "hardware atomic; never allocates",
	"sync/atomic.Int64.Load":          "hardware atomic; never allocates",
	"sync/atomic.Int64.Store":         "hardware atomic; never allocates",
	"sync/atomic.Uint64.Add":          "hardware atomic; never allocates",
	"sync/atomic.Uint64.Load":         "hardware atomic; never allocates",
	"sync/atomic.Pointer.Load":        "hardware atomic on a pointer slot; never allocates",
	"sync/atomic.Pointer.Store":       "hardware atomic on a pointer slot; never allocates",
	"errors.Is":                       "walks the existing error chain; allocates nothing",
	"errors.As":                       "walks the existing error chain into a caller-owned target; allocates nothing",
	"bytes.Equal":                     "byte comparison over caller buffers; never allocates",
	"bytes.IndexByte":                 "vectorized scan over a caller buffer; never allocates",
	"unicode/utf8.DecodeRune":         "pure decode of a caller buffer; never allocates",
	"unicode/utf8.DecodeRuneInString": "pure decode of a caller string; never allocates",
	"unicode/utf8.EncodeRune":         "writes into the caller's buffer; never allocates",
	"unicode/utf8.AppendRune":         "appends into the caller's buffer; growth is the caller's amortized pool",
	"bytes.TrimSpace":                 "returns a subslice of the caller's buffer; never allocates",
	"unicode/utf8.RuneLen":            "pure computation; never allocates",
	"unicode/utf16.DecodeRune":        "pure surrogate-pair arithmetic; never allocates",
	"unicode/utf16.IsSurrogate":       "pure range test; never allocates",
}

// isAllocFree reports whether a callee outside the run is a registered
// allocation-free axiom.
func isAllocFree(obj *types.Func) bool {
	key := externKey(obj)
	if key == "" {
		return false
	}
	_, ok := allocFreeTable[key]
	return ok
}

// ---------------------------------------------------------------------
// Table validation (shared by heapkey and poolescape).

// lookupStruct resolves a package-scope struct type by name.
func lookupStruct(pkg *types.Package, name string) (*types.Struct, bool) {
	obj := pkg.Scope().Lookup(name)
	if obj == nil {
		return nil, false
	}
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil, false
	}
	st, ok := tn.Type().Underlying().(*types.Struct)
	return st, ok
}

// structHasField reports whether the named struct has the field.
func structHasField(st *types.Struct, field string) bool {
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == field {
			return true
		}
	}
	return false
}

// hasFuncNamed reports whether the package declares a function or
// method matching a "Recv.Method" / "Func" table name.
func hasFuncNamed(p *Pass, name string) bool {
	for _, fi := range p.Funcs() {
		if fi.Name == name {
			return true
		}
	}
	return false
}

// typeDeclared reports whether the package scope declares a type name.
func typeDeclared(pkg *types.Package, name string) bool {
	obj := pkg.Scope().Lookup(name)
	_, ok := obj.(*types.TypeName)
	return ok
}
