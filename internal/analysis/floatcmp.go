package analysis

import (
	"go/ast"
	"go/token"
)

// FloatCmp flags == and != between floating-point operands in every
// package. Exact float equality is almost never what a simulation
// means: two runs that differ only in instruction scheduling (or in a
// future refactor's association order) produce values that are equal
// mathematically but not bit-for-bit, and an == turns that into a
// behavioural divergence. Compare via an explicit tolerance helper, or
// move the comparison into frac.Rat where equality is exact.
func FloatCmp() *Analyzer {
	return &Analyzer{
		Name:      "floatcmp",
		Doc:       "no ==/!= between floating-point operands",
		AppliesTo: nil, // everywhere
		Run:       runFloatCmp,
	}
}

func runFloatCmp(p *Pass) []Diagnostic {
	var diags []Diagnostic
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt, yt := exprType(info, be.X), exprType(info, be.Y)
			if xt == nil || yt == nil {
				return true
			}
			if !isFloat(xt) && !isFloat(yt) {
				return true
			}
			// Comparisons between two compile-time constants are exact by
			// construction and carry no runtime nondeterminism.
			if info.Types[be.X].Value != nil && info.Types[be.Y].Value != nil {
				return true
			}
			p.report(&diags, "floatcmp",
				be, "%s between floating-point operands; use a tolerance helper or frac.Rat equality", be.Op)
			return true
		})
	}
	return diags
}
