package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/token"
	"go/types"
	"math/rand"
	"sort"
	"testing"
)

// loadAllFixtures loads every check's fixture package through the given
// loader, in the order requested.
func loadAllFixtures(t *testing.T, loader *Loader, order []int) []*Package {
	t.Helper()
	checks := All()
	pkgs := make([]*Package, 0, len(checks))
	for _, i := range order {
		dir := "testdata/src/" + checks[i].Name
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatalf("LoadDir(%s): %v", dir, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs
}

// renderJSON marshals diagnostics the way cmd/pd2lint -json does; the
// property tests compare these bytes, so any nondeterminism in message
// text, ordering, or position renders as a byte diff.
func renderJSON(t *testing.T, diags []Diagnostic) []byte {
	t.Helper()
	data, err := json.MarshalIndent(diags, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return data
}

// TestDiagnosticsByteIdentical is the determinism property test for the
// whole suite, interprocedural layer included: the JSON rendering of
// every diagnostic over the full fixture set must be byte-identical
// (a) across independent loader runs — nothing may leak map iteration
// order or pointer identity into messages — and (b) under any package
// load order — the call graph sorts its inputs and the effect fixpoint
// is a unique least fixpoint, so load order must not be observable.
func TestDiagnosticsByteIdentical(t *testing.T) {
	n := len(All())
	identity := make([]int, n)
	for i := range identity {
		identity[i] = i
	}

	var want []byte
	for run := 0; run < 3; run++ {
		loader, err := NewLoader(".")
		if err != nil {
			t.Fatalf("NewLoader: %v", err)
		}
		pkgs := loadAllFixtures(t, loader, identity)
		got := renderJSON(t, RunChecks(pkgs, All(), true))
		if run == 0 {
			want = got
			if !bytes.Contains(want, []byte("hotalloc")) {
				t.Fatalf("fixture run produced no hotalloc diagnostics; property test lost its subject")
			}
			continue
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("run %d diagnostics differ from run 0:\n--- run %d ---\n%s\n--- run 0 ---\n%s", run, run, got, want)
		}
	}

	// Shuffled load orders over one loader: the packages are identical
	// objects, only the order RunChecks receives them in changes.
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	rng := rand.New(rand.NewSource(20260807))
	for trial := 0; trial < 5; trial++ {
		order := append([]int(nil), identity...)
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		pkgs := loadAllFixtures(t, loader, order)
		got := renderJSON(t, RunChecks(pkgs, All(), true))
		if !bytes.Equal(got, want) {
			t.Fatalf("shuffled load order %v changed diagnostics:\n--- shuffled ---\n%s\n--- canonical ---\n%s", order, got, want)
		}
	}
}

// ---------------------------------------------------------------------
// Fixpoint fuzzing.

// synthInterp decodes fuzz bytes into a synthetic call graph: data[0]
// picks the function count, then each function consumes one byte of
// intrinsic state (effect bits, sink flag, an intrinsic lock), and the
// remaining bytes pair up into call edges with dynamic/spawned flags.
// The same bytes always build the same graph, so two decodes with
// different processing orders are the experiment, not the noise.
func synthInterp(data []byte, reversed bool) *interp {
	n := 2
	if len(data) > 0 {
		n += int(data[0]) % 14
	}
	pkg := types.NewPackage("fuzz", "fuzz")
	sig := types.NewSignatureType(nil, nil, nil, nil, nil, false)
	ip := &interp{built: true, fns: make(map[*types.Func]*interpFn)}
	fns := make([]*interpFn, n)
	for i := range fns {
		obj := types.NewFunc(token.NoPos, pkg, fmt.Sprintf("f%02d", i), sig)
		fn := &interpFn{
			obj:     obj,
			qname:   fmt.Sprintf("fuzz.f%02d", i),
			short:   fmt.Sprintf("fuzz.f%02d", i),
			effSite: make(map[effect]*effSite),
			locks:   make(map[string]bool),
		}
		if i+1 < len(data) {
			b := data[i+1]
			fn.intr = effect(b) & (effAlloc | effTime | effRand | effMapOrder | effBlock)
			fn.sink = b%7 == 0
			if b%5 == 0 {
				fn.locks[fmt.Sprintf("L%d", b%3)] = true
			}
		}
		fns[i] = fn
		ip.fns[obj] = fn
	}
	edges := data
	if len(edges) > n+1 {
		edges = edges[n+1:]
	} else {
		edges = nil
	}
	for i := 0; i+1 < len(edges); i += 2 {
		caller := fns[int(edges[i])%n]
		callee := fns[int(edges[i+1])%n]
		caller.calls = append(caller.calls, callSite{
			callee:  callee.obj,
			dynamic: edges[i]%11 == 0,
			spawned: edges[i+1]%13 == 0,
		})
	}
	ip.order = fns
	if reversed {
		rev := make([]*interpFn, n)
		for i, fn := range fns {
			rev[n-1-i] = fn
		}
		ip.order = rev
	}
	return ip
}

// summarize renders the post-fixpoint summary of every function in a
// canonical form for comparison.
func summarize(ip *interp) map[string]string {
	out := make(map[string]string, len(ip.order))
	for _, fn := range ip.order {
		locks := make([]string, 0, len(fn.locks))
		for id := range fn.locks {
			locks = append(locks, id)
		}
		sort.Strings(locks)
		out[fn.qname] = fmt.Sprintf("eff=%05b locks=%v reaches=%v", fn.eff, locks, fn.reaches)
	}
	return out
}

// FuzzEffectFixpoint drives the effect fixpoint over arbitrary call
// graphs and asserts its two load-bearing properties: it terminates
// with processing-order-independent summaries (the lattice join is a
// monotone union, so the least fixpoint is unique), and every summary
// is closed — a function's transitive effects, lock set, and sink
// reachability contain its own intrinsics plus everything its static
// non-spawned callees expose.
func FuzzEffectFixpoint(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 7, 0, 255, 90, 0, 1, 1, 2, 2, 0})
	f.Add([]byte{13, 5, 10, 35, 70, 140, 7, 21, 0, 1, 1, 2, 2, 3, 3, 4, 4, 0, 11, 13, 5, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		fwd := synthInterp(data, false)
		rev := synthInterp(data, true)
		fwd.fixpoint()
		rev.fixpoint()

		a, b := summarize(fwd), summarize(rev)
		for name, sa := range a {
			if sb := b[name]; sa != sb {
				t.Fatalf("fixpoint depends on processing order: %s is %q forward, %q reversed", name, sa, sb)
			}
		}

		// Closure: each summary dominates its intrinsics and its static
		// callees' summaries.
		for _, fn := range fwd.order {
			if fn.eff&fn.intr != fn.intr {
				t.Fatalf("%s lost intrinsic effects: eff=%05b intr=%05b", fn.qname, fn.eff, fn.intr)
			}
			for _, cs := range fn.calls {
				if cs.dynamic || cs.spawned {
					continue
				}
				callee := fwd.fnOf(cs.callee)
				if callee == nil {
					continue
				}
				if fn.eff&callee.eff != callee.eff {
					t.Fatalf("%s (eff=%05b) does not include callee %s (eff=%05b)", fn.qname, fn.eff, callee.qname, callee.eff)
				}
				for id := range callee.locks {
					if !fn.locks[id] {
						t.Fatalf("%s missing lock %s from callee %s", fn.qname, id, callee.qname)
					}
				}
				if (callee.sink || callee.reaches) && !fn.reaches {
					t.Fatalf("%s does not reach the sink its callee %s does", fn.qname, callee.qname)
				}
			}
		}
	})
}
