// Suppression directives.
//
//	//lint:allow <check>[,<check>...] [reason]        — this line or the next
//	//lint:file-allow <check>[,<check>...] [reason]   — whole file
//
// A line directive written as a trailing comment suppresses matching
// diagnostics on its own line; written on a line of its own it
// suppresses the line below. (Both interpretations are honoured: a
// directive at line L covers L and L+1.) Reasons are free text and are
// strongly encouraged — the allowlist is itself reviewed.
package analysis

import (
	"go/ast"
	"strings"
)

const (
	allowPrefix     = "lint:allow"
	fileAllowPrefix = "lint:file-allow"
)

// directive is one parsed //lint:allow or //lint:file-allow comment.
type directive struct {
	Line      int // 1-based line of the comment; 0 for file scope
	FileScope bool
	Checks    []string
	Reason    string
}

// parseDirective parses the text of a single comment. The text must
// still carry its // or /* marker, as in ast.Comment.Text. It returns
// ok=false for comments that are not lint directives.
func parseDirective(text string) (directive, bool) {
	body := strings.TrimSpace(trimCommentMarkers(text))
	var rest string
	var d directive
	switch {
	case strings.HasPrefix(body, fileAllowPrefix):
		d.FileScope = true
		rest = body[len(fileAllowPrefix):]
	case strings.HasPrefix(body, allowPrefix):
		rest = body[len(allowPrefix):]
	default:
		return directive{}, false
	}
	// The check list is the first whitespace-separated field; everything
	// after it is the reason.
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return directive{}, false // malformed: no checks named
	}
	list := rest
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		list, d.Reason = rest[:i], strings.TrimSpace(rest[i+1:])
	}
	for _, c := range strings.Split(list, ",") {
		c = strings.TrimSpace(c)
		if c != "" {
			d.Checks = append(d.Checks, c)
		}
	}
	if len(d.Checks) == 0 {
		return directive{}, false
	}
	return d, true
}

// trimCommentMarkers strips // or /* */ from a comment's raw text.
func trimCommentMarkers(text string) string {
	if rest, ok := strings.CutPrefix(text, "//"); ok {
		return rest
	}
	if rest, ok := strings.CutPrefix(text, "/*"); ok {
		return strings.TrimSuffix(rest, "*/")
	}
	return text
}

// fileSuppressions indexes the directives of one file.
type fileSuppressions struct {
	fileAllow map[string]bool         // check -> allowed file-wide
	byLine    map[int]map[string]bool // line -> check -> allowed
}

func (fs *fileSuppressions) allows(check string, line int) bool {
	if fs.fileAllow[check] {
		return true
	}
	// A directive at line L covers diagnostics at L (trailing comment)
	// and L+1 (standalone comment above the statement).
	if fs.byLine[line][check] || fs.byLine[line-1][check] {
		return true
	}
	return false
}

// buildSuppressions scans every comment of f.
func buildSuppressions(pkg *Package, f *ast.File) *fileSuppressions {
	fs := &fileSuppressions{
		fileAllow: make(map[string]bool),
		byLine:    make(map[int]map[string]bool),
	}
	for _, group := range f.Comments {
		for _, c := range group.List {
			d, ok := parseDirective(c.Text)
			if !ok {
				continue
			}
			if d.FileScope {
				for _, check := range d.Checks {
					fs.fileAllow[check] = true
				}
				continue
			}
			line := pkg.Fset.Position(c.Pos()).Line
			m := fs.byLine[line]
			if m == nil {
				m = make(map[string]bool)
				fs.byLine[line] = m
			}
			for _, check := range d.Checks {
				m[check] = true
			}
		}
	}
	return fs
}

// suppressed reports whether d is covered by a lint directive.
func (p *Package) suppressed(d Diagnostic) bool {
	fs, ok := p.supp[d.File]
	if !ok {
		for _, f := range p.Files {
			if p.Fset.Position(f.Pos()).Filename == d.File {
				fs = buildSuppressions(p, f)
				break
			}
		}
		if fs == nil {
			fs = &fileSuppressions{
				fileAllow: make(map[string]bool),
				byLine:    make(map[int]map[string]bool),
			}
		}
		p.supp[d.File] = fs
	}
	return fs.allows(d.Check, d.Line)
}
