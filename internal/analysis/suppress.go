// Suppression directives.
//
//	//lint:allow <check>[,<check>...] [reason]        — this line or the next
//	//lint:file-allow <check>[,<check>...] [reason]   — whole file
//
// A line directive written as a trailing comment suppresses matching
// diagnostics on its own line; written on a line of its own it
// suppresses the line below. (Both interpretations are honoured: a
// directive at line L covers L and L+1.) Reasons are free text and are
// strongly encouraged — the allowlist is itself reviewed.
//
// Every suppression is hit-counted during a run: a directive that
// suppresses nothing is dead weight that hides nothing today and may
// hide a regression tomorrow (a renamed check, code moved off the
// annotated line). Under -strict-suppress such stale directives are
// themselves diagnostics (check "suppress"), as is a directive naming
// a check that does not exist.
package analysis

import (
	"go/ast"
	"sort"
	"strings"
)

const (
	allowPrefix     = "lint:allow"
	fileAllowPrefix = "lint:file-allow"
)

// directive is one parsed //lint:allow or //lint:file-allow comment.
type directive struct {
	Line      int // 1-based line of the comment; 0 for file scope
	FileScope bool
	Checks    []string
	Reason    string
}

// parseDirective parses the text of a single comment. The text must
// still carry its // or /* marker, as in ast.Comment.Text. It returns
// ok=false for comments that are not lint directives.
func parseDirective(text string) (directive, bool) {
	body := strings.TrimSpace(trimCommentMarkers(text))
	var rest string
	var d directive
	switch {
	case strings.HasPrefix(body, fileAllowPrefix):
		d.FileScope = true
		rest = body[len(fileAllowPrefix):]
	case strings.HasPrefix(body, allowPrefix):
		rest = body[len(allowPrefix):]
	default:
		return directive{}, false
	}
	// The check list is the first whitespace-separated field; everything
	// after it is the reason.
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return directive{}, false // malformed: no checks named
	}
	list := rest
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		list, d.Reason = rest[:i], strings.TrimSpace(rest[i+1:])
	}
	for _, c := range strings.Split(list, ",") {
		c = strings.TrimSpace(c)
		if c != "" {
			d.Checks = append(d.Checks, c)
		}
	}
	if len(d.Checks) == 0 {
		return directive{}, false
	}
	return d, true
}

// trimCommentMarkers strips // or /* */ from a comment's raw text.
func trimCommentMarkers(text string) string {
	if rest, ok := strings.CutPrefix(text, "//"); ok {
		return rest
	}
	if rest, ok := strings.CutPrefix(text, "/*"); ok {
		return strings.TrimSuffix(rest, "*/")
	}
	return text
}

// suppEntry is one (directive, check) pair, hit-counted over a run.
type suppEntry struct {
	file      string
	line      int // line of the directive comment; 0 for file scope
	col       int
	fileScope bool
	check     string
	hits      int
}

// fileSuppressions indexes the suppression entries of one file.
type fileSuppressions struct {
	fileAllow map[string]*suppEntry         // check -> file-wide entry
	byLine    map[int]map[string]*suppEntry // line -> check -> entry
	entries   []*suppEntry                  // all, in source order
}

// match returns the entry covering (check, line), or nil. A line
// directive at line L covers diagnostics at L (trailing comment) and
// L+1 (standalone comment above the statement).
func (fs *fileSuppressions) match(check string, line int) *suppEntry {
	if e := fs.byLine[line][check]; e != nil {
		return e
	}
	if e := fs.byLine[line-1][check]; e != nil {
		return e
	}
	return fs.fileAllow[check]
}

// buildSuppressions scans every comment of f.
func buildSuppressions(pkg *Package, f *ast.File) *fileSuppressions {
	fs := &fileSuppressions{
		fileAllow: make(map[string]*suppEntry),
		byLine:    make(map[int]map[string]*suppEntry),
	}
	for _, group := range f.Comments {
		for _, c := range group.List {
			d, ok := parseDirective(c.Text)
			if !ok {
				continue
			}
			pos := pkg.Fset.Position(c.Pos())
			for _, check := range d.Checks {
				e := &suppEntry{
					file:      pos.Filename,
					line:      pos.Line,
					col:       pos.Column,
					fileScope: d.FileScope,
					check:     check,
				}
				if d.FileScope {
					if fs.fileAllow[check] == nil {
						fs.fileAllow[check] = e
						fs.entries = append(fs.entries, e)
					}
					continue
				}
				m := fs.byLine[pos.Line]
				if m == nil {
					m = make(map[string]*suppEntry)
					fs.byLine[pos.Line] = m
				}
				if m[check] == nil {
					m[check] = e
					fs.entries = append(fs.entries, e)
				}
			}
		}
	}
	return fs
}

// fileSupp returns (building if needed) the suppression index for the
// named file.
func (p *Package) fileSupp(filename string) *fileSuppressions {
	if fs, ok := p.supp[filename]; ok {
		return fs
	}
	var fs *fileSuppressions
	for _, f := range p.Files {
		if p.Fset.Position(f.Pos()).Filename == filename {
			fs = buildSuppressions(p, f)
			break
		}
	}
	if fs == nil {
		fs = &fileSuppressions{
			fileAllow: make(map[string]*suppEntry),
			byLine:    make(map[int]map[string]*suppEntry),
		}
	}
	p.supp[filename] = fs
	return fs
}

// suppressed reports whether d is covered by a lint directive, and
// counts the hit against the covering entry.
func (p *Package) suppressed(d Diagnostic) bool {
	e := p.fileSupp(d.File).match(d.Check, d.Line)
	if e == nil {
		return false
	}
	e.hits++
	return true
}

// staleSuppressions reports directives that suppressed nothing during
// the run. ran is the set of checks that actually executed on this
// package (a directive for a check that was out of scope or deselected
// is not stale — it just was not exercised); known is the full check
// registry, so a directive naming a nonexistent check is always
// reported. Diagnostics carry the pseudo-check "suppress" and are not
// themselves suppressible.
func (p *Package) staleSuppressions(ran, known map[string]bool) []Diagnostic {
	// Ensure every file's directives are indexed, including files that
	// produced no diagnostics at all.
	for _, f := range p.Files {
		p.fileSupp(p.Fset.Position(f.Pos()).Filename)
	}
	var diags []Diagnostic
	for _, fs := range p.supp {
		for _, e := range fs.entries {
			if e.hits > 0 {
				continue
			}
			scope := "lint:allow"
			if e.fileScope {
				scope = "lint:file-allow"
			}
			switch {
			case !known[e.check]:
				diags = append(diags, Diagnostic{
					File: e.file, Line: e.line, Col: e.col, Check: "suppress",
					Message: "//" + scope + " names unknown check \"" + e.check + "\"; no such check exists",
				})
			case ran[e.check]:
				diags = append(diags, Diagnostic{
					File: e.file, Line: e.line, Col: e.col, Check: "suppress",
					Message: "stale suppression: //" + scope + " " + e.check + " matched no diagnostic in this run; remove it or re-anchor it to the offending line",
				})
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Message < b.Message
	})
	return diags
}
