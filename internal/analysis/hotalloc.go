// The hotalloc check: functions annotated //lint:noalloc must be
// transitively allocation-free.
//
// The engine's throughput claims rest on steady-state zero allocation
// in three paths — the slot loop (core.Scheduler.Step), the mailbox
// drain (serve.Shard.run), and the digest writer — and until now that
// was enforced only by runtime AllocsPerRun assertions, which test one
// configuration of one path. hotalloc makes the property structural:
// every function reachable from a //lint:noalloc root through static
// call edges is checked for the full intrinsic allocation catalog
// (escaping composites, make/new, fresh-buffer append growth, interface
// boxing, string conversion/concatenation, closures, go statements),
// and edges the analysis cannot see through — dynamic calls, calls into
// standard-library functions not in allocFreeTable — are themselves
// diagnostics: "unknown callee" and "allocation-free" cannot coexist.
//
// Two escape hatches, both annotations reviewed like code:
//
//	//lint:noalloc [reason]   on a function declaration makes it a root.
//	//lint:allocok [reason]   marks a deliberate allocation boundary: the
//	                          callee is priced in (pool growth, error
//	                          paths) and traversal stops there.
//
// An //lint:allocok that no noalloc root reaches is reported as stale,
// the same discipline the annotation tables get, so the escape hatches
// cannot rot.
package analysis

import "go/ast"

// HotAlloc returns the hotalloc analyzer.
func HotAlloc() *Analyzer {
	return &Analyzer{
		Name: "hotalloc",
		Doc:  "functions annotated //lint:noalloc must be transitively allocation-free",
		Run: func(p *Pass) []Diagnostic {
			ip := p.interpFacts()
			return ip.hotallocBuckets()[p.Pkg.Path]
		},
	}
}

// hotallocBuckets computes the check once per run and buckets the
// diagnostics by the package owning each reported site (so per-package
// suppression applies where the code is).
func (ip *interp) hotallocBuckets() map[string][]Diagnostic {
	if ip.hotalloc != nil {
		return ip.hotalloc
	}
	out := make(map[string][]Diagnostic)
	add := func(pkg *Package, n ast.Node, format string, args ...any) {
		pass := &Pass{Pkg: pkg}
		var ds []Diagnostic
		pass.report(&ds, "hotalloc", n, format, args...)
		out[pkg.Path] = append(out[pkg.Path], ds...)
	}
	ip.hotalloc = out

	fns := ip.byQname()

	// Annotation hygiene first: the two directives contradict each
	// other on one declaration.
	for _, fn := range fns {
		if fn.noalloc && fn.allocok {
			add(fn.pkg, fn.fi.Decl.Name,
				"%s is annotated both //lint:noalloc and //lint:allocok; a function cannot be a checked root and an accepted boundary at once", fn.short)
		}
	}

	// Walk from each root in qualified-name order. One global visited
	// set: a function's sites are reported once, attributed to the
	// first root (in that order) that reaches them.
	reported := make(map[ast.Node]bool)
	visited := make(map[*interpFn]bool)
	shielded := make(map[*interpFn]bool) // allocok boundaries actually reached

	var visit func(fn, root *interpFn)
	visit = func(fn, root *interpFn) {
		if visited[fn] {
			return
		}
		visited[fn] = true
		for _, a := range fn.allocs {
			if reported[a.node] {
				continue
			}
			reported[a.node] = true
			add(fn.pkg, a.node, "%s on a //lint:noalloc path (root %s)", a.kind, root.short)
		}
		for _, cs := range fn.calls {
			// Failure paths are about to panic and goroutine spawns are
			// already priced as the go statement's own allocation.
			if cs.inPanic || cs.spawned {
				continue
			}
			if cs.dynamic {
				if !reported[cs.call] {
					reported[cs.call] = true
					add(fn.pkg, cs.call,
						"dynamic call (interface or function value) cannot be proven allocation-free on a //lint:noalloc path (root %s)", root.short)
				}
				continue
			}
			callee := ip.fnOf(cs.callee)
			if callee == nil {
				if !isAllocFree(cs.callee) && !reported[cs.call] {
					reported[cs.call] = true
					add(fn.pkg, cs.call,
						"call to %s, which is not proven allocation-free, on a //lint:noalloc path (root %s)", externName(cs.callee), root.short)
				}
				continue
			}
			if callee.allocok {
				shielded[callee] = true
				continue
			}
			visit(callee, root)
		}
	}
	for _, fn := range fns {
		if fn.noalloc && !fn.allocok {
			visit(fn, fn)
		}
	}

	// Stale boundaries: an //lint:allocok nobody reaches guards nothing.
	for _, fn := range fns {
		if fn.allocok && !fn.noalloc && !shielded[fn] {
			add(fn.pkg, fn.fi.Decl.Name,
				"//lint:allocok on %s is stale: no //lint:noalloc root reaches it", fn.short)
		}
	}
	return out
}
