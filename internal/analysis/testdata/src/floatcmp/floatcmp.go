// Package floatcmp is a pd2lint fixture: exact float equality that must
// be flagged, plus acceptable comparisons.
package floatcmp

import "math"

type Meters float64

// BadEq compares floats with ==.
func BadEq(a, b float64) bool {
	return a == b // want floatcmp
}

// BadNeq compares floats with !=.
func BadNeq(a float64) bool {
	return a != 0.0 // want floatcmp
}

// BadNamed compares a named float type.
func BadNamed(a, b Meters) bool {
	return a == b // want floatcmp
}

// BadMixed compares an untyped constant against a float variable.
func BadMixed(a float64) bool {
	return 1.5 == a // want floatcmp
}

// OKTolerance is the sanctioned pattern.
func OKTolerance(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

// OKOrdered comparisons are allowed; only ==/!= are flagged.
func OKOrdered(a, b float64) bool {
	return a < b
}

// OKConst folds at compile time; no runtime nondeterminism.
const widthOK = 1.5 == 3.0/2.0

// OKInt equality on integers is exact.
func OKInt(a, b int) bool {
	return a == b
}

// OKAllowed is suppressed with a standalone directive.
func OKAllowed(a, b float64) bool {
	//lint:allow floatcmp fixture: deliberate bit-exact sentinel compare
	return a == b
}
