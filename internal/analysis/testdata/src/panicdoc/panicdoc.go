// Package panicdoc is a pd2lint fixture: undocumented panics that must
// be flagged, plus the sanctioned message shapes.
package panicdoc

import (
	"errors"
	"fmt"
)

// ErrBroken mimics a sentinel invariant error.
var ErrBroken = errors.New("panicdoc: invariant broken")

// BadBare panics with a message that names no invariant.
func BadBare() {
	panic("oops") // want panicdoc
}

// BadEmpty panics with an empty message.
func BadEmpty() {
	panic("") // want panicdoc
}

// BadValue panics with a bare value.
func BadValue(code int) {
	panic(code) // want panicdoc
}

// BadTrailingColon has a colon but nothing after it.
func BadTrailingColon() {
	panic("panicdoc:") // want panicdoc
}

// BadSprintf formats a message that still names no invariant.
func BadSprintf(n int) {
	panic(fmt.Sprintf("bad %d", n)) // want panicdoc
}

// OKInvariant names the package and the violated invariant.
func OKInvariant(den int64) {
	if den == 0 {
		panic("panicdoc: zero denominator violates Rat invariant")
	}
}

// OKSprintf formats an invariant-shaped message.
func OKSprintf(i int) {
	panic(fmt.Sprintf("panicdoc: subtask index %d < 1", i))
}

// OKError propagates an error value.
func OKError(err error) {
	if err != nil {
		panic(err)
	}
}

// OKSentinel propagates a sentinel error.
func OKSentinel() {
	panic(ErrBroken)
}

// OKAllowed is suppressed.
func OKAllowed() {
	panic("fixture") //lint:allow panicdoc fixture: suppression demonstration
}
