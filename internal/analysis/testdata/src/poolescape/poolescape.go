// Fixture for the poolescape check: a miniature subtask pool with
// reuse stamps, mirroring the scheduler's free list. The annotation
// table (annotations.go) registers alloc/free/rec/stamp, the event
// sink, and the owner fields last/live/pool.
package poolescape

// rec is the pooled record; stamp is its reuse generation.
type rec struct {
	stamp uint64
	key   int64
}

// event is the registered sink: it may hold a pooled pointer only
// together with the pointer's stamp.
type event struct {
	at    int64
	sub   *rec
	stamp uint64
}

// owner holds the pool and the registered ownership fields.
type owner struct {
	last *rec   // owner field
	live []*rec // owner field
	pool []*rec // owner field (the free list)
	held *rec   // NOT an owner field
	byID map[int64]*rec
	evs  []event
}

func (o *owner) alloc() *rec {
	n := len(o.pool)
	if n == 0 {
		return &rec{}
	}
	r := o.pool[n-1]
	o.pool = o.pool[:n-1]
	return r
}

func (o *owner) free(r *rec) {
	r.stamp++
	o.pool = append(o.pool, r)
}

// ---------------------------------------------------------------------
// True positives.

// badUnstampedEvent stores a pooled pointer into the sink without the
// reuse-stamp guard (rule 1).
func (o *owner) badUnstampedEvent(at int64) {
	r := o.alloc()
	o.evs = append(o.evs, event{at: at, sub: r})
	o.last = r
}

// badHold stores a pooled pointer into an unregistered field (rule 2).
func (o *owner) badHold() {
	r := o.alloc()
	o.held = r
}

// badIndex stores a pooled pointer into an element of an unregistered
// container field (rule 2).
func (o *owner) badIndex(id int64) {
	r := o.alloc()
	o.byID[id] = r
}

// badClosure captures a pooled pointer in a closure that outlives the
// slot (rule 2).
func (o *owner) badClosure() func() uint64 {
	r := o.alloc()
	return func() uint64 { return r.stamp }
}

// badUseAfterFree reads through an alias after the record was retired
// (rule 3).
func (o *owner) badUseAfterFree() int64 {
	r := o.alloc()
	o.free(r)
	return int64(r.stamp)
}

// ---------------------------------------------------------------------
// Accepted negatives.

// okStamped stores the pointer together with its stamp.
func (o *owner) okStamped(at int64) {
	r := o.alloc()
	o.evs = append(o.evs, event{at: at, sub: r, stamp: r.stamp})
	o.last = r
}

// okOwner stores only into registered owner fields.
func (o *owner) okOwner() {
	r := o.alloc()
	o.last = r
	o.live = append(o.live, r)
}

// okImmediate invokes the closure on the spot; the pointer does not
// outlive the slot.
func (o *owner) okImmediate() uint64 {
	r := o.alloc()
	v := func() uint64 { return r.stamp }()
	o.last = r
	return v
}

// okRealloc re-arms the alias by reallocating after free.
func (o *owner) okRealloc() *rec {
	r := o.alloc()
	o.free(r)
	r = o.alloc()
	o.last = r
	return r
}

// ---------------------------------------------------------------------
// Path-sensitive rule-3 cases: the dangling set comes from the CFG
// dataflow, so a free poisons only the paths that run through it.

// okFreeOnErrPath frees on the error branch only; the happy path never
// runs through the free, so its reads are clean (TN).
func (o *owner) okFreeOnErrPath(n int) uint64 {
	r := o.alloc()
	if n < 0 {
		o.free(r)
		return 0
	}
	v := r.stamp
	o.last = r
	return v
}

// badLoopCarriedFree frees at the bottom of the loop body; the
// back-edge carries the dangling alias into the next iteration's read.
func badLoopCarriedFree(o *owner, n int) int64 {
	r := o.alloc()
	var sum int64
	for i := 0; i < n; i++ {
		sum += int64(r.stamp) // TP on the second iteration
		o.free(r)
	}
	return sum
}

// ---------------------------------------------------------------------
// Suppression.

// suppressedHold shows //lint:allow is honoured.
func (o *owner) suppressedHold() {
	r := o.alloc()
	o.held = r //lint:allow poolescape fixture: suppression must be honoured
}
