// Fixture for the eventexhaust check: a registered enum with a
// sentinel, mirroring the engine's calendar event-kind type.
package eventexhaust

// kind is the fixture's exhaustive enum.
//
//lint:exhaustive ignore=numKinds sentinel counts the kinds
type kind uint8

const (
	kindA kind = iota
	kindB
	kindC
	numKinds // sentinel
)

// color carries a stale ignore= name: "ghost" is not a constant.
//
//lint:exhaustive ignore=ghost stale on purpose
type color uint8

const (
	red color = iota
	green
)

// ---------------------------------------------------------------------
// True positives.

// badMissing omits kindC.
func badMissing(k kind) string {
	switch k {
	case kindA:
		return "a"
	case kindB:
		return "b"
	}
	return ""
}

// badSilentDefault hides future kinds behind a silent default.
func badSilentDefault(k kind) string {
	switch k {
	case kindA:
		return "a"
	case kindB:
		return "b"
	case kindC:
		return "c"
	default:
		return "unknown"
	}
}

// ---------------------------------------------------------------------
// Accepted negatives.

// okFull covers every member; the sentinel is ignored.
func okFull(k kind) string {
	switch k {
	case kindA:
		return "a"
	case kindB:
		return "b"
	case kindC:
		return "c"
	}
	return "out-of-range"
}

// okLoudDefault panics on unknown values — a loud default is accepted
// even with members grouped per case.
func okLoudDefault(k kind) int {
	switch k {
	case kindA, kindB:
		return 1
	case kindC:
		return 2
	default:
		panic("eventexhaust fixture: unknown kind")
	}
}

// okOtherSwitch switches over an unregistered type.
func okOtherSwitch(n int) int {
	switch n {
	case 0:
		return 1
	default:
		return 2
	}
}

// okColorFull keeps the stale-directive enum's switches clean.
func okColorFull(c color) bool {
	switch c {
	case red:
		return true
	case green:
		return false
	}
	return false
}

// ---------------------------------------------------------------------
// Suppression.

// suppressedMissing shows //lint:allow is honoured.
func suppressedMissing(k kind) bool {
	//lint:allow eventexhaust fixture: suppression must be honoured
	switch k {
	case kindA:
		return true
	}
	return false
}
