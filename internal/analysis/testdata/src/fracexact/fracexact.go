// Package fracexact is a pd2lint fixture: float arithmetic that must be
// flagged inside an exact-arithmetic package, plus allowed patterns.
package fracexact

// Weight mimics a task weight that should be a frac.Rat.
type Weight = float64

// BadArith does float arithmetic on weights.
func BadArith(a, b float64) float64 {
	return a + b // want fracexact
}

// BadCmp compares float weights.
func BadCmp(a, b float64) bool {
	return a < b // want fracexact
}

// BadConv converts a lag to float.
func BadConv(lag int64) float64 {
	return float64(lag) // want fracexact
}

// BadCompound uses a float compound assignment.
func BadCompound(total *float64, x float64) {
	*total += x // want fracexact (compound assignment)
}

// BadNamed converts through a named float type.
func BadNamed(x int) Weight {
	return Weight(x) // want fracexact
}

// OKInt is exact integer arithmetic and must not be flagged.
func OKInt(a, b int64) int64 {
	return a*b + 1
}

// OKAllowed is a designated reporting boundary.
func OKAllowed(num, den int64) float64 {
	return float64(num) / float64(den) //lint:allow fracexact reporting boundary fixture
}
