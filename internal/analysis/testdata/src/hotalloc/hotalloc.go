// Fixture for the hotalloc check: a miniature slot loop annotated
// //lint:noalloc, with true positives across the allocation catalog and
// true negatives for every accepted idiom (reused buffers, parameter
// buffers, allocation-free externals, allocok boundaries).
package hotalloc

import "strconv"

type record struct{ v int }

type state struct {
	n    int
	name string
	buf  []int
	recs []*record
	out  []byte
	cb   func() int
	m    map[int]int
	idx  map[string]int
	box  any
}

// step is the fixture's hot loop.
//
//lint:noalloc fixture root: the steady-state loop
func step(s *state) {
	s.buf = append(s.buf, s.n) // TN: append into a retained field buffer
	kept := s.recs[:0]         // TN: local aliasing a field buffer
	kept = append(kept, nil)   // TN: the alias keeps the field's capacity
	s.recs = kept
	s.out = strconv.AppendInt(s.out, int64(s.n), 10) // TN: allocFreeTable external
	s.n = twice(s.n)                                 // TN: pure callee
	s.n += s.idx[string(s.out)]                      // TN: map lookup keyed by string(bytes) — compiled without the string
	if v, ok := s.idx[string(s.out)]; ok {           // TN: comma-ok lookup form
		s.n += v
	}
	s.idx[string(s.out)] = s.n // TP: map *assignment* interns the key string

	r := &record{v: s.n} // TP: escaping composite literal
	s.recs = append(s.recs, r)
	s.name += "!"                    // TP: string concatenation
	s.out = []byte(s.name)           // TP: string conversion copies
	s.box = any(s.n)                 // TP: conversion to interface boxes
	s.n += s.cb()                    // TP: dynamic call through a function value
	s.name = strconv.Itoa(s.n)       // TP: external not proven allocation-free
	s.cb = func() int { return s.n } // TP: stored closure
	go tick(s)                       // TP: go statement (spawned body not traversed)

	grow(s)   // descend: TP inside grow
	refill(s) // TN: allocok boundary, priced in
	if fresh() {
		s.n++
	}
	s.name = s.name + "?" //lint:allow hotalloc fixture: suppression keeps this concat out of the golden
}

// twice is allocation-free and reachable from the root.
func twice(n int) int { return n * 2 }

// grow allocates two calls below the root.
func grow(s *state) {
	s.m = make(map[int]int, 4) // TP: make on a noalloc path
}

// fresh appends into a buffer born in this frame.
func fresh() bool {
	var tmp []int
	tmp = append(tmp, 1) // TP: append to a fresh (non-reused) buffer
	return len(tmp) == 1
}

// tick runs on its own goroutine; its body is not part of the loop.
func tick(s *state) {
	s.recs = append(s.recs, new(record)) // TN: unreachable from the root on this goroutine
}

// refill is a deliberate allocation boundary: pool growth is priced in.
//
//lint:allocok fixture boundary: pool growth is amortized
func refill(s *state) {
	s.recs = append(s.recs, new(record))
}

// orphan carries a boundary annotation no root ever reaches.
//
//lint:allocok fixture: stale boundary
func orphan() []int {
	return make([]int, 1) // the stale annotation is the diagnostic, not this line
}

// confused carries both directives at once.
//
//lint:noalloc fixture conflict
//lint:allocok fixture conflict
func confused() {}
