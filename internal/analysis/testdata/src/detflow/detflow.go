// Fixture for the detflow check: a miniature command log whose Apply/
// Digest/Stamp functions are registered replay sinks in replaySinkTable.
// True positives cover all three taint sources (wall clock, unseeded
// rand, map order) and the sink-itself case; true negatives cover
// taint that never reaches a sink, sink calls with deterministic
// inputs, and the lowest-meeting-point rule.
package detflow

import (
	"math/rand"
	"time"
)

type entry struct {
	op  string
	arg int64
}

type log struct {
	entries []entry
	seq     int64
}

// Apply is the fixture's replay sink (see replaySinkTable).
func Apply(l *log, e entry) {
	l.entries = append(l.entries, e)
	l.seq++
}

// Digest is the second sink: it certifies replayed state.
func Digest(l *log) int64 {
	var h int64
	for _, e := range l.entries {
		h = h*31 + e.arg
	}
	return h
}

// Stamp is a sink that reads the clock itself — the report lands on the
// sink, not on its callers.
func Stamp(l *log) {
	Apply(l, entry{op: "stamp", arg: time.Now().UnixNano()}) // TP: sink reads time
}

// recordNow feeds a wall-clock read into the sink.
func recordNow(l *log) {
	Apply(l, entry{op: "tick", arg: time.Now().UnixNano()}) // TP: time -> Apply
}

// driver calls recordNow; the meeting point is recordNow, so driver
// itself is clean (TN: lowest meeting point).
func driver(l *log) {
	recordNow(l)
}

// jitter is tainted but sink-free (TN on its own).
func jitter() int64 {
	return rand.Int63()
}

// recordJitter is where jitter's taint meets the sink.
func recordJitter(l *log) {
	Apply(l, entry{op: "jit", arg: jitter()}) // TP: rand -> Apply via helper
}

// recordAll logs map values in iteration order.
func recordAll(l *log, m map[string]int64) {
	var vals []int64
	for _, v := range m { // TP: map order -> Apply
		vals = append(vals, v)
	}
	for _, v := range vals {
		Apply(l, entry{op: "fold", arg: v})
	}
	_ = Digest(l)
}

// sample is tainted but never reaches a sink (TN).
func sample() int64 {
	return time.Now().UnixNano() + rand.Int63()
}

// recordFixed reaches the sink with deterministic input (TN).
func recordFixed(l *log) {
	Apply(l, entry{op: "fixed", arg: 42})
}

// recordEnv would be a true positive, suppressed for the fixture's
// suppression coverage.
func recordEnv(l *log) {
	Apply(l, entry{op: "env", arg: time.Now().Unix()}) //lint:allow detflow fixture: suppression coverage
}
