// Fixture for the gocapture check: worker-pool closures mirroring
// internal/expr's fan-out idioms.
package gocapture

import "sync"

func sink(int) {}

// ---------------------------------------------------------------------
// True positives.

// badSharedCounter increments a captured counter from every worker.
func badSharedCounter(n int) int {
	total := 0
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			total++
		}()
	}
	wg.Wait()
	return total
}

// badSharedAppend appends to a captured slice from every worker.
func badSharedAppend(inputs []int) []int {
	var results []int
	var wg sync.WaitGroup
	for _, v := range inputs {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			results = append(results, v*v)
		}(v)
	}
	wg.Wait()
	return results
}

// badSpawnerWrite mutates a captured variable after spawning, with no
// barrier between.
func badSpawnerWrite() int {
	sum := 0
	done := make(chan struct{})
	go func() {
		sink(sum)
		close(done)
	}()
	sum = 42
	<-done
	return sum
}

// ---------------------------------------------------------------------
// Accepted negatives.

// okIndexed writes distinct elements through a closure-local index —
// the worker-pool idiom.
func okIndexed(inputs []int) []int {
	results := make([]int, len(inputs))
	var wg sync.WaitGroup
	for i, v := range inputs {
		wg.Add(1)
		go func(i, v int) {
			defer wg.Done()
			results[i] = v * v
		}(i, v)
	}
	wg.Wait()
	return results
}

// okLocked guards the shared accumulator with a mutex.
func okLocked(inputs []int) int {
	var mu sync.Mutex
	total := 0
	var wg sync.WaitGroup
	for _, v := range inputs {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			mu.Lock()
			total += v
			mu.Unlock()
		}(v)
	}
	wg.Wait()
	return total
}

// okAfterWait mutates shared state only after the Wait barrier.
func okAfterWait(inputs []int) []int {
	out := make([]int, len(inputs))
	var wg sync.WaitGroup
	for i, v := range inputs {
		wg.Add(1)
		go func(i, v int) {
			defer wg.Done()
			out[i] = v + 1
		}(i, v)
	}
	wg.Wait()
	out = append(out, 0)
	return out
}

// okLoopVar mutates a per-iteration loop variable: each goroutine owns
// its own binding (Go 1.22 semantics).
func okLoopVar(inputs []int) {
	var wg sync.WaitGroup
	for _, v := range inputs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v *= 2
			sink(v)
		}()
	}
	wg.Wait()
}

// ---------------------------------------------------------------------
// Suppression.

// suppressedShared shows //lint:allow is honoured.
func suppressedShared(done chan struct{}) {
	flag := false
	go func() {
		flag = true //lint:allow gocapture fixture: suppression must be honoured
		close(done)
	}()
	<-done
	if flag {
		sink(1)
	}
}

// ---------------------------------------------------------------------
// Mailbox single-writer (the internal/serve shard pattern).

type mboxReq struct {
	delta int
	reply chan int
}

// okMailboxSingleWriter owns all mutable state inside one consumer
// goroutine; callers communicate by message, never by shared write —
// internal/serve's shard loop in miniature. The accumulator lives
// inside the closure, so nothing is captured mutably, and the spawner's
// own writes touch only variables the goroutine never sees.
func okMailboxSingleWriter(reqs []int) int {
	mbox := make(chan mboxReq, 4)
	done := make(chan struct{})
	go func() {
		total := 0 // owned by this goroutine alone
		for r := range mbox {
			total += r.delta
			r.reply <- total
		}
		sink(total)
		close(done)
	}()
	last := 0
	reply := make(chan int, 1)
	for _, d := range reqs {
		mbox <- mboxReq{delta: d, reply: reply}
		last = <-reply
	}
	close(mbox)
	<-done
	return last
}

// badTwoConsumers breaks the single-writer rule: two goroutines drain
// the same mailbox and both write the captured accumulator.
func badTwoConsumers(reqs []int) int {
	mbox := make(chan int, 4)
	total := 0
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for d := range mbox {
				total += d
			}
		}()
	}
	for _, d := range reqs {
		mbox <- d
	}
	close(mbox)
	wg.Wait()
	return total
}
