// Fixture for the ownxfer check: a miniature mailbox protocol,
// mirroring the serving layer's pending-record wire path. The
// annotation table (annotations.go) registers rec/get/put, the
// conditional transfer svc.post (true = the mailbox owns the record),
// and the unconditional hand-off consume.
package ownxfer

// rec is the pooled record; reply is the hand-back channel the
// consumer answers on.
type rec struct {
	stamp uint64
	out   []byte
	reply chan int
}

// svc holds the free list and the mailbox.
type svc struct {
	pool []*rec
	mbox chan *rec
}

// get returns a fresh owned record.
func (s *svc) get() *rec {
	n := len(s.pool)
	if n == 0 {
		return &rec{reply: make(chan int, 1)}
	}
	r := s.pool[n-1]
	s.pool = s.pool[:n-1]
	return r
}

// put retires an owned record to the free list.
func (s *svc) put(r *rec) {
	r.stamp++
	s.pool = append(s.pool, r)
}

// post tries to enqueue r; true means the mailbox owns it from here.
func (s *svc) post(r *rec) bool {
	select {
	case s.mbox <- r:
		return true
	default:
		return false
	}
}

// consume handles one record and replies on its channel, handing
// ownership back to the poster.
func consume(r *rec) {
	r.out = r.out[:0]
	r.reply <- 1
}

// ---------------------------------------------------------------------
// True positives.

// badUseAfterPut reads through the record after retiring it.
func badUseAfterPut(s *svc) uint64 {
	r := s.get()
	s.put(r)
	return r.stamp
}

// badDoubleFree retires the same record twice.
func badDoubleFree(s *svc) {
	r := s.get()
	s.put(r)
	s.put(r)
}

// badUseAfterSend touches the record after the mailbox took it.
func badUseAfterSend(s *svc) int {
	r := s.get()
	s.mbox <- r
	return len(r.out)
}

// badFreeAfterPost retires the record on the branch where the mailbox
// already owns it.
func badFreeAfterPost(s *svc) {
	r := s.get()
	if s.post(r) {
		s.put(r)
		return
	}
	s.put(r)
}

// badLeak returns still owning the record on the error path.
func badLeak(s *svc, n int) bool {
	r := s.get()
	if n < 0 {
		return false
	}
	s.put(r)
	return true
}

// ---------------------------------------------------------------------
// Accepted negatives.

// okHandshake runs the full protocol: post, block on the reply,
// re-own, retire.
func okHandshake(s *svc, n int) int {
	r := s.get()
	r.out = append(r.out[:0], byte(n))
	if !s.post(r) {
		s.put(r)
		return -1
	}
	v := <-r.reply
	s.put(r)
	return v
}

// okBoundOutcome binds the transfer outcome to a variable first; the
// branch on that variable is refined the same way the direct
// `if s.post(r)` form is.
func okBoundOutcome(s *svc) {
	r := s.get()
	ok := s.post(r)
	if !ok {
		s.put(r)
	}
}

// okConsume hands the record off unconditionally and never touches it
// again.
func okConsume(s *svc) {
	r := s.get()
	consume(r)
}

// okDefer retires via defer; every path is covered.
func okDefer(s *svc) int {
	r := s.get()
	defer s.put(r)
	return len(r.out)
}

// okStore parks the record in the free list through put on every path
// of a branch, freeing exactly once each.
func okStore(s *svc, n int) {
	r := s.get()
	if n > 0 {
		r.out = append(r.out[:0], byte(n))
	}
	s.put(r)
}

// ---------------------------------------------------------------------
// Suppression.

// suppressedUse shows //lint:allow is honoured.
func suppressedUse(s *svc) int {
	r := s.get()
	s.put(r)
	return len(r.out) //lint:allow ownxfer fixture: suppression must be honoured
}
