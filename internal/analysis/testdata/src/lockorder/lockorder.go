// Fixture for the lockorder check: a pair of mutexes taken in opposite
// orders in two functions (an intra-function cycle), a second cycle
// closed through a callee's lock summary, and blocking operations
// performed while holding a mutex. True negatives cover a consistent
// two-lock hierarchy and blocking after release.
package lockorder

import "sync"

type box struct {
	a  sync.Mutex
	b  sync.Mutex
	ch chan int
	v  int
}

// forward takes a then b; reversed takes b then a — a deadlock cycle.
func forward(x *box) {
	x.a.Lock()
	x.b.Lock() // TP: a -> b, counter-ordered by reversed
	x.v++
	x.b.Unlock()
	x.a.Unlock()
}

func reversed(x *box) {
	x.b.Lock()
	x.a.Lock() // TP: b -> a, counter-ordered by forward
	x.v++
	x.a.Unlock()
	x.b.Unlock()
}

type pair struct {
	c sync.Mutex
	d sync.Mutex
	n int
}

// lockD acquires d; viaCall holds c across the call, so the graph gains
// c -> d interprocedurally.
func lockD(p *pair) {
	p.d.Lock()
	p.n++
	p.d.Unlock()
}

func viaCall(p *pair) {
	p.c.Lock()
	lockD(p) // TP: c -> d through the callee's lock summary
	p.c.Unlock()
}

func dThenC(p *pair) {
	p.d.Lock()
	p.c.Lock() // TP: d -> c closes the cycle with viaCall
	p.n++
	p.c.Unlock()
	p.d.Unlock()
}

// sendLocked blocks on a channel while holding a mutex.
func sendLocked(x *box) {
	x.a.Lock()
	x.ch <- 1 // TP: channel send under lock
	x.a.Unlock()
}

// waitRecv blocks; recvLocked calls it with the lock held.
func waitRecv(x *box) int {
	return <-x.ch
}

func recvLocked(x *box) {
	x.a.Lock()
	x.v = waitRecv(x) // TP: call to a blocking function under lock
	x.a.Unlock()
}

type ordered struct {
	e sync.Mutex
	f sync.Mutex
	n int
}

// consistent nests e -> f and nothing ever orders f -> e (TN).
func consistent(o *ordered) {
	o.e.Lock()
	o.f.Lock()
	o.n++
	o.f.Unlock()
	o.e.Unlock()
}

// sendUnlocked blocks only after releasing the lock (TN).
func sendUnlocked(x *box) {
	x.a.Lock()
	x.v++
	x.a.Unlock()
	x.ch <- 2
}

// sendAllowed is a true positive suppressed for suppression coverage.
func sendAllowed(x *box) {
	x.a.Lock()
	x.ch <- 3 //lint:allow lockorder fixture: suppression coverage
	x.a.Unlock()
}

// ---------------------------------------------------------------------
// Path-sensitive cases: the held set comes from the CFG dataflow, not
// lexical Lock..Unlock spans.

// pathSend releases before blocking on the early branch; the lock is
// gone on the only path that reaches the send (TN).
func pathSend(x *box, n int) {
	x.a.Lock()
	if n > 0 {
		x.a.Unlock()
		x.ch <- n
		return
	}
	x.v++
	x.a.Unlock()
}

// leakyFastPath returns with the lock still held on the fast path
// while the slow path releases it.
func leakyFastPath(x *box, n int) int {
	x.a.Lock() // TP: still held when the fast path returns
	if n > 0 {
		return x.v
	}
	x.v++
	x.a.Unlock()
	return 0
}

// okDeferUnlock releases via defer; every return path is covered (TN).
func okDeferUnlock(x *box) int {
	x.a.Lock()
	defer x.a.Unlock()
	if x.v > 0 {
		return x.v
	}
	return 0
}
