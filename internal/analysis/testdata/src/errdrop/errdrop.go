// Package errdrop is a pd2lint fixture: silently dropped errors that
// must be flagged, plus the sanctioned handling patterns.
package errdrop

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strings"
)

func write(p []byte) (int, error) { return 0, errors.New("errdrop: fixture") }
func flush() error                { return errors.New("errdrop: fixture") }

// BadCall drops a lone error result.
func BadCall() {
	flush() // want errdrop
}

// BadMulti drops the error of a multi-result call.
func BadMulti(p []byte) {
	write(p) // want errdrop
}

// BadDefer drops an error in a deferred close-like call.
func BadDefer() {
	defer flush() // want errdrop
}

// BadGo drops an error on a goroutine boundary.
func BadGo() {
	go flush() // want errdrop
}

// BadFprintf writes to a real (failable) writer without checking.
func BadFprintf(f *os.File) {
	fmt.Fprintf(f, "x") // want errdrop
}

// OKChecked handles the error.
func OKChecked() error {
	if err := flush(); err != nil {
		return err
	}
	return nil
}

// OKExplicitDrop documents the decision with a blank assignment.
func OKExplicitDrop() {
	_ = flush()
}

// OKStdout prints to stdout; interactive reporting is exempt.
func OKStdout() {
	fmt.Println("hello")
	fmt.Fprintln(os.Stderr, "usage")
}

// OKBuffers writes to in-memory buffers, which never fail.
func OKBuffers() string {
	var b strings.Builder
	b.WriteString("x")
	var buf bytes.Buffer
	buf.WriteByte('y')
	fmt.Fprintf(&b, "%d", 1)
	return b.String() + buf.String()
}

// OKAllowed is suppressed.
func OKAllowed() {
	flush() //lint:allow errdrop fixture: best-effort flush on shutdown
}
