// Package determinism is a pd2lint fixture: wall-clock reads, global
// randomness, environment reads, and map-order dependence that must be
// flagged, plus the sanctioned deterministic patterns.
package determinism

import (
	"math/rand"
	"os"
	"sort"
	"time"
)

// BadClock reads the wall clock.
func BadClock() int64 {
	return time.Now().Unix() // want determinism
}

// BadSince measures wall-clock elapsed time.
func BadSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want determinism
}

// BadGlobalRand draws from the unseeded global source.
func BadGlobalRand(n int) int {
	return rand.Intn(n) // want determinism
}

// BadSeed reseeds the global source (still order-dependent across goroutines).
func BadSeed() {
	rand.Seed(42) // want determinism
}

// BadEnv consults the process environment.
func BadEnv() string {
	return os.Getenv("PD2_MODE") // want determinism
}

// BadMapAppend accumulates candidates in map order.
func BadMapAppend(ready map[string]int) []string {
	var names []string
	for name := range ready { // want determinism
		names = append(names, name)
	}
	return names
}

// BadMapSelect picks a candidate by map-order-dependent tie-break.
func BadMapSelect(lag map[string]int) string {
	best, bestLag := "", -1
	for name, l := range lag { // want determinism
		if l > bestLag {
			best, bestLag = name, l
		}
	}
	return best
}

// OKSeededRand builds an explicitly seeded source.
func OKSeededRand(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}

// OKMapAppendSorted appends and then sorts — replay-stable.
func OKMapAppendSorted(ready map[string]int) []string {
	var names []string
	for name := range ready {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// OKMapCount only counts; no order sensitivity.
func OKMapCount(ready map[string]int) int {
	total := 0
	for range ready {
		total++
	}
	return total
}

// OKAllowed is suppressed.
func OKAllowed() string {
	return os.Getenv("CI") //lint:allow determinism fixture: CI detection outside the simulator
}
