// Fixture for the heapkey check: a miniature indexed min-heap whose
// ordering keys (item.key, item.idx) are registered in the annotation
// table with owner minheap and allowed writer rekey.
package heapkey

// item is heap-organized; key orders it, idx is its heap slot.
type item struct {
	key int64
	idx int
	val string
}

// minheap owns the ordering keys: all its methods may write them.
type minheap struct {
	items []*item
}

func (h *minheap) push(it *item) {
	it.idx = len(h.items)
	h.items = append(h.items, it)
	h.siftUp(it.idx)
}

func (h *minheap) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h.items[p].key <= h.items[i].key {
			break
		}
		h.items[i], h.items[p] = h.items[p], h.items[i]
		h.items[i].idx = i
		h.items[p].idx = p
		i = p
	}
}

// rekey is the allow-listed update-then-fix protocol.
func rekey(h *minheap, it *item, key int64) {
	it.key = key
	h.siftUp(it.idx)
}

// ---------------------------------------------------------------------
// True positives.

// badDirectWrite mutates an ordering key outside the heap discipline.
func badDirectWrite(it *item) {
	it.key = 7
}

// badIncrement mutates the index slot in place.
func badIncrement(it *item) {
	it.idx++
}

// badAddress leaks a pointer through which heap order can be mutated.
func badAddress(it *item) *int64 {
	return &it.key
}

// ---------------------------------------------------------------------
// Accepted negatives.

// okValueWrite touches a non-key field.
func okValueWrite(it *item) {
	it.val = "renamed"
}

// okReadKey only reads the keys.
func okReadKey(it *item) int64 {
	if it.idx >= 0 {
		return it.key
	}
	return -1
}

// ---------------------------------------------------------------------
// Suppression.

// suppressedWrite shows //lint:allow is honoured.
func suppressedWrite(it *item) {
	it.key = 9 //lint:allow heapkey fixture: suppression must be honoured
}
