package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// copyModuleSource copies the module's go.mod and non-test Go sources
// (minus this analysis package, testdata, and the commands) into a temp
// module, so a mutation can be applied without touching the working
// tree. The copy keeps the module path "repro", which is what the
// annotation tables are keyed by.
func copyModuleSource(t *testing.T) string {
	t.Helper()
	root := moduleLoader(t).ModRoot
	dst := t.TempDir()
	skipRel := map[string]bool{
		filepath.Join("internal", "analysis"): true,
		"cmd":                                 true,
	}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, rerr := filepath.Rel(root, path)
		if rerr != nil {
			return rerr
		}
		if d.IsDir() {
			name := d.Name()
			if rel != "." && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "out" || name == "vendor" || skipRel[rel]) {
				return filepath.SkipDir
			}
			return nil
		}
		if rel != "go.mod" && (!strings.HasSuffix(rel, ".go") || strings.HasSuffix(rel, "_test.go")) {
			return nil
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		out := filepath.Join(dst, rel)
		if rerr := os.MkdirAll(filepath.Dir(out), 0o755); rerr != nil {
			return rerr
		}
		return os.WriteFile(out, data, 0o644)
	})
	if err != nil {
		t.Fatalf("copy module: %v", err)
	}
	return dst
}

// srcEdit is one string replacement applied to a module-relative file
// of the temp copy. A mutation is a list of edits so a seeded bug can
// span an import block plus the code that needs it.
type srcEdit struct {
	file string // module-relative, forward slashes
	old  string
	new  string
}

// applyEdits applies a mutation's edits under the temp module root. An
// anchor that no longer matches fails the test: the mutation table must
// track the engine sources it mutates.
func applyEdits(t *testing.T, root string, edits []srcEdit) {
	t.Helper()
	for _, e := range edits {
		target := filepath.Join(root, filepath.FromSlash(e.file))
		src, err := os.ReadFile(target)
		if err != nil {
			t.Fatal(err)
		}
		mutated := strings.Replace(string(src), e.old, e.new, 1)
		if mutated == string(src) {
			t.Fatalf("mutation anchor %q not found in %s; keep the mutation test in sync with the engine", e.old, e.file)
		}
		if err := os.WriteFile(target, []byte(mutated), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSeededMutationsAreCaught is the acceptance test for the dataflow
// and call-graph checks: reintroducing each of the silent-corruption
// bugs the checks were built for — deleting the reuse-stamp guard,
// mutating a heap ordering key in place, dropping an event kind from
// the dispatch switch, racing a worker pool on captured state, hiding
// an allocation in the digest hot path, feeding the wall clock into the
// replayable command surface, inverting a lock order, touching a pooled
// record after its hand-off, leaking a held lock past an early return —
// must produce a diagnostic from the corresponding check on the real
// engine sources.
func TestSeededMutationsAreCaught(t *testing.T) {
	cases := []struct {
		name  string
		check string
		load  string // module-relative package dir to analyze
		edits []srcEdit
	}{
		{
			name:  "delete-stamp-guard",
			check: "poolescape",
			load:  "internal/core",
			edits: []srcEdit{{
				file: "internal/core/scheduler.go",
				old:  "sub: sub, stamp: sub.stamp}",
				new:  "sub: sub}",
			}},
		},
		{
			name:  "mutate-heap-key-in-place",
			check: "heapkey",
			load:  "internal/core",
			edits: []srcEdit{{
				file: "internal/core/scheduler.go",
				old:  "s.runBuf = append(s.runBuf, ts.offer)",
				new:  "ts.offer.deadline = 0\n\t\ts.runBuf = append(s.runBuf, ts.offer)",
			}},
		},
		{
			name:  "drop-calendar-case",
			check: "eventexhaust",
			load:  "internal/core",
			edits: []srcEdit{{
				file: "internal/core/scheduler.go",
				old:  "\tcase evKindResolve:\n\t\treturn &s.evResolve\n",
				new:  "",
			}},
		},
		{
			name:  "unguarded-shared-write",
			check: "gocapture",
			load:  "internal/expr",
			edits: []srcEdit{{
				file: "internal/expr/expr.go",
				old:  "results[i], errs[i] = RunWhisperCfg(pp, rc)",
				new:  "results[i], errs[i] = RunWhisperCfg(pp, rc)\n\t\t\t\tresults = results[:1]",
			}},
		},
		// The v3 interprocedural checks. Each seeds the exact bug class
		// the check exists for, at the place it would realistically creep
		// in.
		{
			// A "quick fix" swaps the hand-rolled integer render for
			// fmt.Sprintf deep inside the digest path: every slot now
			// allocates under pd2d status reporting. hotalloc sees the
			// extern call on the //lint:noalloc appendState root.
			name:  "hidden-alloc-in-digest",
			check: "hotalloc",
			load:  "internal/core",
			edits: []srcEdit{
				{
					file: "internal/core/digest.go",
					old:  "import \"io\"",
					new:  "import (\n\t\"fmt\"\n\t\"io\"\n)",
				},
				{
					file: "internal/core/digest.go",
					old:  "dst = appendInt(dst, int64(s.now))",
					new:  "dst = append(dst, fmt.Sprintf(\"%d\", s.now)...)",
				},
			},
		},
		{
			// The flush boundary stamps commands with the wall clock
			// instead of the engine clock: the log still applies, but a
			// replay at a different wall time diverges. detflow sees
			// time.Now taint reaching the registered core.Scheduler.Apply
			// sink.
			name:  "wallclock-feeds-apply",
			check: "detflow",
			load:  "internal/serve",
			edits: []srcEdit{
				{
					file: "internal/serve/shard.go",
					old:  "\t\"strings\"\n\n\t\"repro/internal/core\"",
					new:  "\t\"strings\"\n\t\"time\"\n\n\t\"repro/internal/core\"",
				},
				{
					file: "internal/serve/shard.go",
					old:  "now := sh.eng.Now()\n\n\tkept := sh.defLeaves[:0]",
					new:  "now := model.Time(time.Now().UnixNano())\n\n\tkept := sh.defLeaves[:0]",
				},
			},
		},
		{
			// A stats counter bolted onto the pending pool acquires its
			// new mutex in opposite orders on the alloc and free sides —
			// the classic incremental-change deadlock. lockorder sees the
			// mu -> statsMu -> mu cycle.
			name:  "inverted-lock-order",
			check: "lockorder",
			load:  "internal/serve",
			edits: []srcEdit{
				{
					file: "internal/serve/mailbox.go",
					old:  "type pendingPool struct {\n\tmu   sync.Mutex\n\tfree []*pending\n}",
					new:  "type pendingPool struct {\n\tmu      sync.Mutex\n\tstatsMu sync.Mutex\n\tgets    int64\n\tfree    []*pending\n}",
				},
				{
					file: "internal/serve/mailbox.go",
					old:  "\tpp.mu.Lock()\n\tif n := len(pp.free); n > 0 {",
					new:  "\tpp.mu.Lock()\n\tpp.statsMu.Lock()\n\tpp.gets++\n\tpp.statsMu.Unlock()\n\tif n := len(pp.free); n > 0 {",
				},
				{
					file: "internal/serve/mailbox.go",
					old:  "\tpp.mu.Lock()\n\tpp.free = append(pp.free, p)\n\tpp.mu.Unlock()",
					new:  "\tpp.statsMu.Lock()\n\tpp.mu.Lock()\n\tpp.free = append(pp.free, p)\n\tpp.mu.Unlock()\n\tpp.statsMu.Unlock()",
				},
			},
		},
		// The v4 flow-sensitive checks. Each seeds the bug class on the
		// pooled wire path that motivated the CFG layer.
		{
			// A "cleanup" resets the record's request fields after the
			// reply send — but the send handed the record to the blocked
			// handler, which may already be freeing it on another CPU.
			// ownxfer sees the write on the path after the hand-off.
			name:  "use-after-send-of-pooled-record",
			check: "ownxfer",
			load:  "internal/serve",
			edits: []srcEdit{{
				file: "internal/serve/shard.go",
				old:  "\t\tsh.advance(p.slots)\n\t\tp.reply <- reply{now: sh.eng.Now()}\n",
				new:  "\t\tsh.advance(p.slots)\n\t\tp.reply <- reply{now: sh.eng.Now()}\n\t\tp.slots = 0\n",
			}},
		},
		{
			// The pool-hit fast path returns without releasing the pool
			// mutex: every later newPending call deadlocks. The lexical
			// spans closed this hole at the end of the body; the CFG leak
			// rule sees the held lock reach the return.
			name:  "early-return-leaks-pool-lock",
			check: "lockorder",
			load:  "internal/serve",
			edits: []srcEdit{{
				file: "internal/serve/mailbox.go",
				old:  "\t\tpp.free = pp.free[:n-1]\n\t\tpp.mu.Unlock()\n\t\treturn p\n",
				new:  "\t\tpp.free = pp.free[:n-1]\n\t\treturn p\n",
			}},
		},
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dst := copyModuleSource(t)
			applyEdits(t, dst, tc.edits)

			loader, err := NewLoader(dst)
			if err != nil {
				t.Fatalf("NewLoader: %v", err)
			}
			pkgDir := filepath.Join(dst, filepath.FromSlash(tc.load))
			pkg, err := loader.LoadDir(pkgDir)
			if err != nil {
				t.Fatalf("LoadDir(%s): %v", pkgDir, err)
			}
			diags := RunChecks([]*Package{pkg}, []*Analyzer{byName[tc.check]}, false)
			if len(diags) == 0 {
				t.Fatalf("mutation %s not caught by %s", tc.name, tc.check)
			}
			for _, d := range diags {
				if d.Check != tc.check {
					t.Errorf("unexpected foreign diagnostic %s", d)
				}
			}
		})
	}
}
