package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// copyModuleSource copies the module's go.mod and non-test Go sources
// (minus this analysis package, testdata, and the commands) into a temp
// module, so a mutation can be applied without touching the working
// tree. The copy keeps the module path "repro", which is what the
// annotation tables are keyed by.
func copyModuleSource(t *testing.T) string {
	t.Helper()
	root := moduleLoader(t).ModRoot
	dst := t.TempDir()
	skipRel := map[string]bool{
		filepath.Join("internal", "analysis"): true,
		"cmd":                                 true,
	}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, rerr := filepath.Rel(root, path)
		if rerr != nil {
			return rerr
		}
		if d.IsDir() {
			name := d.Name()
			if rel != "." && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "out" || name == "vendor" || skipRel[rel]) {
				return filepath.SkipDir
			}
			return nil
		}
		if rel != "go.mod" && (!strings.HasSuffix(rel, ".go") || strings.HasSuffix(rel, "_test.go")) {
			return nil
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		out := filepath.Join(dst, rel)
		if rerr := os.MkdirAll(filepath.Dir(out), 0o755); rerr != nil {
			return rerr
		}
		return os.WriteFile(out, data, 0o644)
	})
	if err != nil {
		t.Fatalf("copy module: %v", err)
	}
	return dst
}

// TestSeededMutationsAreCaught is the acceptance test for the v2
// dataflow checks: reintroducing each of the silent-corruption bugs the
// checks were built for — deleting the reuse-stamp guard, mutating a
// heap ordering key in place, dropping an event kind from the dispatch
// switch, racing a worker pool on captured state — must produce a
// diagnostic from the corresponding check on the real engine sources.
func TestSeededMutationsAreCaught(t *testing.T) {
	cases := []struct {
		name  string
		check string
		file  string // module-relative, forward slashes
		old   string
		new   string
	}{
		{
			name:  "delete-stamp-guard",
			check: "poolescape",
			file:  "internal/core/scheduler.go",
			old:   "sub: sub, stamp: sub.stamp}",
			new:   "sub: sub}",
		},
		{
			name:  "mutate-heap-key-in-place",
			check: "heapkey",
			file:  "internal/core/scheduler.go",
			old:   "s.runBuf = append(s.runBuf, ts.offer)",
			new:   "ts.offer.deadline = 0\n\t\ts.runBuf = append(s.runBuf, ts.offer)",
		},
		{
			name:  "drop-calendar-case",
			check: "eventexhaust",
			file:  "internal/core/scheduler.go",
			old:   "\tcase evKindResolve:\n\t\treturn &s.evResolve\n",
			new:   "",
		},
		{
			name:  "unguarded-shared-write",
			check: "gocapture",
			file:  "internal/expr/expr.go",
			old:   "results[i], errs[i] = RunWhisperCfg(pp, rc)",
			new:   "results[i], errs[i] = RunWhisperCfg(pp, rc)\n\t\t\t\tresults = results[:1]",
		},
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dst := copyModuleSource(t)
			target := filepath.Join(dst, filepath.FromSlash(tc.file))
			src, err := os.ReadFile(target)
			if err != nil {
				t.Fatal(err)
			}
			mutated := strings.Replace(string(src), tc.old, tc.new, 1)
			if mutated == string(src) {
				t.Fatalf("mutation anchor %q not found in %s; keep the mutation test in sync with the engine", tc.old, tc.file)
			}
			if err := os.WriteFile(target, []byte(mutated), 0o644); err != nil {
				t.Fatal(err)
			}

			loader, err := NewLoader(dst)
			if err != nil {
				t.Fatalf("NewLoader: %v", err)
			}
			pkgDir := filepath.Dir(target)
			pkg, err := loader.LoadDir(pkgDir)
			if err != nil {
				t.Fatalf("LoadDir(%s): %v", pkgDir, err)
			}
			diags := RunChecks([]*Package{pkg}, []*Analyzer{byName[tc.check]}, false)
			if len(diags) == 0 {
				t.Fatalf("mutation %s not caught by %s", tc.name, tc.check)
			}
			for _, d := range diags {
				if d.Check != tc.check {
					t.Errorf("unexpected foreign diagnostic %s", d)
				}
			}
		})
	}
}
