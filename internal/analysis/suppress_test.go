package analysis

import (
	"go/parser"
	"go/token"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestParseDirective is the table test for the suppression-comment
// grammar (satellite requirement: the grammar is part of the lint
// contract and must not drift).
func TestParseDirective(t *testing.T) {
	cases := []struct {
		name string
		text string
		ok   bool
		want directive
	}{
		{
			name: "single check",
			text: "//lint:allow fracexact",
			ok:   true,
			want: directive{Checks: []string{"fracexact"}},
		},
		{
			name: "single check with reason",
			text: "//lint:allow fracexact reporting boundary only",
			ok:   true,
			want: directive{Checks: []string{"fracexact"}, Reason: "reporting boundary only"},
		},
		{
			name: "multiple checks",
			text: "//lint:allow fracexact,floatcmp",
			ok:   true,
			want: directive{Checks: []string{"fracexact", "floatcmp"}},
		},
		{
			name: "multiple checks with spaces and reason",
			text: "//lint:allow errdrop, panicdoc best-effort shutdown path",
			ok:   true,
			// The list ends at the first whitespace: "panicdoc" starts the reason.
			want: directive{Checks: []string{"errdrop"}, Reason: "panicdoc best-effort shutdown path"},
		},
		{
			name: "file scope",
			text: "//lint:file-allow determinism generated table",
			ok:   true,
			want: directive{FileScope: true, Checks: []string{"determinism"}, Reason: "generated table"},
		},
		{
			name: "leading space before directive",
			text: "// lint:allow floatcmp sentinel compare",
			ok:   true,
			want: directive{Checks: []string{"floatcmp"}, Reason: "sentinel compare"},
		},
		{
			name: "block comment",
			text: "/*lint:allow errdrop*/",
			ok:   true,
			want: directive{Checks: []string{"errdrop"}},
		},
		{
			name: "tab separated reason",
			text: "//lint:allow panicdoc\tdocumented elsewhere",
			ok:   true,
			want: directive{Checks: []string{"panicdoc"}, Reason: "documented elsewhere"},
		},
		{
			name: "trailing comma tolerated",
			text: "//lint:allow fracexact,",
			ok:   true,
			want: directive{Checks: []string{"fracexact"}},
		},
		{name: "no checks named", text: "//lint:allow", ok: false},
		{name: "no checks file scope", text: "//lint:file-allow   ", ok: false},
		{name: "only commas", text: "//lint:allow ,,", ok: false},
		{name: "unrelated comment", text: "// just a comment", ok: false},
		{name: "nolint is not our grammar", text: "//nolint:errcheck", ok: false},
		{name: "lint namespace but unknown verb", text: "//lint:ignore foo bar", ok: false},
		{name: "empty comment", text: "//", ok: false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := parseDirective(tc.text)
			if ok != tc.ok {
				t.Fatalf("parseDirective(%q) ok = %v, want %v", tc.text, ok, tc.ok)
			}
			if !ok {
				return
			}
			if !reflect.DeepEqual(got.Checks, tc.want.Checks) {
				t.Errorf("checks = %v, want %v", got.Checks, tc.want.Checks)
			}
			if got.Reason != tc.want.Reason {
				t.Errorf("reason = %q, want %q", got.Reason, tc.want.Reason)
			}
			if got.FileScope != tc.want.FileScope {
				t.Errorf("fileScope = %v, want %v", got.FileScope, tc.want.FileScope)
			}
		})
	}
}

// TestSuppressionScope checks line coverage (same line, next line) and
// file-wide coverage against a synthetic file.
func TestSuppressionScope(t *testing.T) {
	const src = `package p

//lint:file-allow panicdoc fixture file

func f() {
	bad() //lint:allow errdrop same-line
	//lint:allow determinism next-line
	alsoBad()
	clean()
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{Fset: fset, Files: nil}
	fs := buildSuppressions(pkg, f)

	cases := []struct {
		check string
		line  int
		want  bool
	}{
		{"errdrop", 6, true},      // trailing comment covers its own line
		{"errdrop", 8, false},     // but not unrelated lines
		{"determinism", 8, true},  // standalone comment covers the next line
		{"determinism", 7, true},  // and its own line
		{"determinism", 9, false}, // but not two lines down
		{"panicdoc", 6, true},     // file-allow covers everything
		{"panicdoc", 9, true},     // everywhere
		{"fracexact", 6, false},   // unnamed checks stay active
		{"floatcmp", 3, false},    // file-allow names only panicdoc
	}
	for _, tc := range cases {
		if got := fs.match(tc.check, tc.line) != nil; got != tc.want {
			t.Errorf("match(%q, line %d) = %v, want %v", tc.check, tc.line, got, tc.want)
		}
	}
}

// TestStaleSuppressions exercises the hit-counting layer end to end: a
// directive that suppresses a real diagnostic stays silent, a directive
// that suppresses nothing is reported, a directive naming an unknown
// check is reported, and a directive for a check that did not run on
// the package is left alone.
func TestStaleSuppressions(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": "module stale.example/m\n\ngo 1.22\n",
		"p/p.go": `package p

func eq(a, b float64) bool {
	return a == b //lint:allow floatcmp exercised: suppresses the diagnostic above
}

//lint:allow floatcmp dead: nothing on the next line violates floatcmp
func add(a, b int) int { return a + b }

//lint:allow nosuchcheck typo in the check name
func sub(a, b int) int { return a - b }

//lint:file-allow determinism whole-file directive, check not selected below
var _ = eq
`,
	})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.LoadDir(filepath.Join(root, "p"))
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	// Run only floatcmp: the determinism file-allow must not be called
	// stale, because determinism never ran.
	checks, err := ByName("floatcmp")
	if err != nil {
		t.Fatal(err)
	}
	diags := RunChecksOpts([]*Package{pkg}, checks, RunOptions{IgnoreScope: true, StaleSuppress: true})
	var got []string
	for _, d := range diags {
		if d.Check != "suppress" {
			t.Errorf("unexpected non-suppress diagnostic %s", d)
			continue
		}
		got = append(got, d.Message)
	}
	if len(got) != 2 {
		t.Fatalf("got %d suppress diagnostics, want 2:\n%s", len(got), strings.Join(got, "\n"))
	}
	if !strings.Contains(got[0], "stale suppression") || !strings.Contains(got[0], "floatcmp") {
		t.Errorf("first diagnostic = %q, want stale floatcmp directive", got[0])
	}
	if !strings.Contains(got[1], "unknown check") || !strings.Contains(got[1], "nosuchcheck") {
		t.Errorf("second diagnostic = %q, want unknown-check report", got[1])
	}
}
