package trace

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/frac"
	"repro/internal/model"
)

// AllocTable renders the per-slot ideal (I_SW) allocations of one task in
// the style of the paper's Figs. 1, 3 and 7: one row per subtask, one
// column per slot, each cell holding the exact fractional allocation. The
// scheduler must have been created with Config.RecordSubtasks.
//
// Halted subtasks are annotated "halted@t"; absent subtasks "absent"; the
// completion time D(I_SW, T_j) closes each row.
func AllocTable(s *core.Scheduler, task string, from, to model.Time) string {
	subs := s.SubtaskHistory(task)
	if subs == nil {
		return fmt.Sprintf("no recorded subtasks for %q (Config.RecordSubtasks required)", task)
	}
	swt := core.ExpandWeights(s.SwtHistory(task), s.Now())
	allocs := core.ReplayIdealAllocations(subs, swt)

	width := int(to - from)
	cells := make([][]string, len(subs))
	colw := make([]int, width)
	for c := range colw {
		colw[c] = 1
	}
	for j, sub := range subs {
		cells[j] = make([]string, width)
		for c := range cells[j] {
			cells[j][c] = "."
		}
		for i, a := range allocs[j] {
			t := sub.Release + model.Time(i)
			if t < from || t >= to {
				continue
			}
			cell := a.String()
			if a.IsZero() {
				cell = "0"
			}
			cells[j][t-from] = cell
			if len(cell) > colw[t-from] {
				colw[t-from] = len(cell)
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "I_SW per-slot allocations for %s (slots %d..%d)\n", task, from, to-1)
	// Header row of slot numbers.
	fmt.Fprintf(&b, "%-6s", "t")
	for c := 0; c < width; c++ {
		fmt.Fprintf(&b, " %*d", colw[c], from+model.Time(c))
	}
	b.WriteByte('\n')
	for j, sub := range subs {
		if sub.Release >= to {
			break
		}
		fmt.Fprintf(&b, "%s_%-4d", task, sub.Abs)
		for c := 0; c < width; c++ {
			fmt.Fprintf(&b, " %*s", colw[c], cells[j][c])
		}
		note := fmt.Sprintf("  w=[%d,%d) b=%d", sub.Release, sub.Deadline, sub.BBit)
		switch {
		case sub.Absent:
			note += " absent"
		case sub.Halted:
			note += fmt.Sprintf(" halted@%d", sub.HaltTime)
		case sub.SWDone:
			note += fmt.Sprintf(" D=%d", sub.SWDoneTime)
		}
		b.WriteString(note)
		b.WriteByte('\n')
	}
	// Per-slot task totals (equal the scheduling weight in steady state).
	fmt.Fprintf(&b, "%-6s", "total")
	for c := 0; c < width; c++ {
		total := frac.Zero
		for j := range subs {
			if cells[j][c] != "." {
				v, err := frac.Parse(cells[j][c])
				if err == nil {
					total = total.Add(v)
				}
			}
		}
		fmt.Fprintf(&b, " %*s", colw[c], total.String())
	}
	b.WriteByte('\n')
	return b.String()
}
