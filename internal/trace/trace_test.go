package trace

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/frac"
	"repro/internal/model"
)

func buildSchedule(t *testing.T) *core.Scheduler {
	t.Helper()
	sys := model.System{M: 1, Tasks: []model.Spec{
		{Name: "T", Weight: frac.New(2, 5), Group: "T"},
		{Name: "U", Weight: frac.New(2, 5), Group: "U"},
	}}
	s, err := core.New(core.Config{M: 1, Policy: core.PolicyOI, Police: true,
		RecordSchedule: true, TieBreak: core.FavorGroup("T")}, sys)
	if err != nil {
		t.Fatal(err)
	}
	s.RunTo(10)
	return s
}

func TestGantt(t *testing.T) {
	s := buildSchedule(t)
	g := Gantt(s, 0, 10)
	lines := strings.Split(strings.TrimSpace(g), "\n")
	if len(lines) != 3 {
		t.Fatalf("gantt lines = %d:\n%s", len(lines), g)
	}
	// Slot 0 goes to T (ties favor T), slot 1 to U — Fig. 4's opening.
	tRow := lines[1]
	uRow := lines[2]
	if !strings.Contains(tRow, "T") || !strings.Contains(uRow, "U") {
		t.Fatalf("rows mislabeled:\n%s", g)
	}
	tCells := tRow[len(tRow)-10:]
	uCells := uRow[len(uRow)-10:]
	if tCells[0] != '#' || uCells[0] != '.' {
		t.Errorf("slot 0 wrong: T=%c U=%c", tCells[0], uCells[0])
	}
	if uCells[1] != '#' || tCells[1] != '.' {
		t.Errorf("slot 1 wrong: T=%c U=%c", tCells[1], uCells[1])
	}
	// Each task of weight 2/5 runs 4 quanta in 10 slots.
	if n := strings.Count(tCells, "#"); n != 4 {
		t.Errorf("T ran %d quanta in [0,10), want 4", n)
	}
}

func TestGanttGrouped(t *testing.T) {
	s := buildSchedule(t)
	g := GanttGrouped(s, func(task string) string { return "all" }, 0, 10)
	lines := strings.Split(strings.TrimSpace(g), "\n")
	if len(lines) != 2 {
		t.Fatalf("grouped lines = %d:\n%s", len(lines), g)
	}
	row := lines[1]
	cells := row[len(row)-10:]
	// One processor: exactly one task per slot except possible holes.
	ones := strings.Count(cells, "1")
	if ones < 8 {
		t.Errorf("expected mostly busy slots, got %q", cells)
	}
}

func TestWindows(t *testing.T) {
	out := Windows("5/16", 5)
	if !strings.Contains(out, "weight 5/16") {
		t.Error("missing header")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Fig. 1(a): T_2's window is [3,7).
	if !strings.Contains(lines[2], "r=3 d=7 b=1") {
		t.Errorf("T_2 row wrong: %s", lines[2])
	}
	if !strings.Contains(lines[5], "r=12 d=16 b=0") {
		t.Errorf("T_5 row wrong: %s", lines[5])
	}
	// IS offsets shift the windows (Fig. 1(b)).
	out = Windows("5/16", 3, 0, 2, 3)
	if !strings.Contains(out, "r=5 d=9") {
		t.Errorf("offset windows wrong:\n%s", out)
	}
	if got := Windows("bogus", 3); !strings.Contains(got, "parse") {
		t.Errorf("bad weight not reported: %q", got)
	}
}

func TestChart(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	out := Chart("demo", 6, xs, map[string][]float64{
		"up":   {1, 2, 3, 4},
		"down": {4, 3, 2, 1},
	})
	if !strings.Contains(out, "demo") || !strings.Contains(out, "o = down") || !strings.Contains(out, "x = up") {
		t.Errorf("chart missing pieces:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1+6+1+2 {
		t.Errorf("chart lines = %d:\n%s", len(lines), out)
	}
	// Flat series does not divide by zero.
	flat := Chart("flat", 4, xs, map[string][]float64{"f": {2, 2, 2, 2}})
	if !strings.Contains(flat, "f") {
		t.Errorf("flat chart broken:\n%s", flat)
	}
}

func TestWriteFile(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sub")
	path, err := WriteFile(dir, "x.tsv", "hello\n")
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "hello\n" {
		t.Fatalf("read back %q, err %v", data, err)
	}
}

// TestAllocTableFig3 checks the rendered ideal-allocation table against the
// exact values of the paper's Figs. 3(b)/7(a).
func TestAllocTableFig3(t *testing.T) {
	sys := model.System{M: 1, Tasks: []model.Spec{{Name: "X", Weight: frac.New(3, 19)}}}
	s, err := core.New(core.Config{M: 1, Policy: core.PolicyOI, Police: true, RecordSubtasks: true}, sys)
	if err != nil {
		t.Fatal(err)
	}
	s.RunTo(8)
	if err := s.Initiate("X", frac.New(2, 5)); err != nil {
		t.Fatal(err)
	}
	s.RunTo(16)
	out := AllocTable(s, "X", 0, 14)
	for _, want := range []string{
		"2/19",              // X_2's paired first-slot allocation
		"32/95",             // the boosted final-slot allocation (Fig. 7)
		"w=[6,13) b=1 D=10", // early completion under the new rate
		"w=[11,14)",         // X_3 released at D + b = 11
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if got := AllocTable(s, "nope", 0, 5); !strings.Contains(got, "no recorded subtasks") {
		t.Errorf("missing-task message wrong: %q", got)
	}
}
