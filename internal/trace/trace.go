// Package trace renders schedules and experiment figures for terminals and
// files: ASCII Gantt charts of PD² schedules (to eyeball the paper's
// schedule figures), ASCII line charts of experiment series, and TSV file
// output for the reproduction data.
package trace

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/frac"
	"repro/internal/model"
)

// Gantt renders slots [from, to) of a recorded schedule as one row per task
// and one column per slot; '#' marks a scheduled quantum, '.' an idle slot.
// The scheduler must have been created with Config.RecordSchedule.
func Gantt(s *core.Scheduler, from, to model.Time) string {
	names := s.TaskNames()
	rows := make(map[string][]byte, len(names))
	width := int(to - from)
	for _, n := range names {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		rows[n] = row
	}
	for t := from; t < to; t++ {
		for _, n := range s.ScheduleRow(t) {
			if row, ok := rows[n]; ok {
				row[t-from] = '#'
			}
		}
	}
	nameWidth := 0
	for _, n := range names {
		if len(n) > nameWidth {
			nameWidth = len(n)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%*s  ", nameWidth, "slot")
	for t := from; t < to; t++ {
		b.WriteByte(byte('0' + t%10))
	}
	b.WriteByte('\n')
	for _, n := range names {
		fmt.Fprintf(&b, "%*s  %s\n", nameWidth, n, rows[n])
	}
	return b.String()
}

// GanttGrouped is Gantt with identically-grouped tasks folded into one row
// showing per-slot counts (the paper's figures draw "the number of tasks
// from each set scheduled in that slot").
func GanttGrouped(s *core.Scheduler, groupOf func(task string) string, from, to model.Time) string {
	width := int(to - from)
	counts := make(map[string][]int)
	var order []string
	for _, n := range s.TaskNames() {
		g := groupOf(n)
		if _, ok := counts[g]; !ok {
			counts[g] = make([]int, width)
			order = append(order, g)
		}
	}
	for t := from; t < to; t++ {
		for _, n := range s.ScheduleRow(t) {
			g := groupOf(n)
			counts[g][t-from]++
		}
	}
	nameWidth := 0
	for _, g := range order {
		if len(g) > nameWidth {
			nameWidth = len(g)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%*s  ", nameWidth, "slot")
	for t := from; t < to; t++ {
		b.WriteByte(byte('0' + t%10))
	}
	b.WriteByte('\n')
	for _, g := range order {
		fmt.Fprintf(&b, "%*s  ", nameWidth, g)
		for _, c := range counts[g] {
			switch {
			case c == 0:
				b.WriteByte('.')
			case c < 10:
				b.WriteByte(byte('0' + c))
			default:
				b.WriteByte('+')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Windows renders the windows of the first n subtasks of a task with weight
// w (offsets optional), in the style of the paper's Fig. 1: one row per
// subtask with '[' at the release, ')' just past the deadline, '=' inside.
func Windows(w string, n int64, offsets ...model.Time) string {
	weight, err := frac.Parse(w)
	if err != nil {
		return err.Error()
	}
	theta := func(i int64) model.Time {
		if len(offsets) == 0 {
			return 0
		}
		if int(i) <= len(offsets) {
			return offsets[i-1]
		}
		return offsets[len(offsets)-1]
	}
	horizon := model.Deadline(weight, theta(n), n)
	var b strings.Builder
	fmt.Fprintf(&b, "weight %s\n", w)
	for i := int64(1); i <= n; i++ {
		win := model.SubtaskWindow(weight, theta(i), i)
		row := make([]byte, horizon)
		for j := range row {
			row[j] = ' '
		}
		for t := win.Release; t < win.Deadline && int(t) < len(row); t++ {
			row[t] = '='
		}
		row[win.Release] = '['
		if int(win.Deadline-1) < len(row) {
			row[win.Deadline-1] = ')'
		}
		fmt.Fprintf(&b, "T_%-2d %s  r=%d d=%d b=%d\n", i, row, win.Release, win.Deadline, model.BBit(weight, i))
	}
	return b.String()
}

// Chart renders labeled series as a rough ASCII line chart (height rows),
// good enough to see the shape of a figure in a terminal.
func Chart(title string, height int, xs []float64, series map[string][]float64) string {
	if height < 2 {
		height = 8
	}
	var labels []string
	for l := range series {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, ys := range series {
		for _, y := range ys {
			lo, hi = math.Min(lo, y), math.Max(hi, y)
		}
	}
	//lint:allow floatcmp exact guard for a fully degenerate (constant) series; any nonzero spread takes the other branch
	if math.IsInf(lo, 1) || lo == hi {
		hi = lo + 1
	}
	width := len(xs)
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	marks := "ox*+@%&=~"
	for li, l := range labels {
		mark := marks[li%len(marks)]
		for c, y := range series[l] {
			if c >= width {
				break
			}
			r := int(math.Round((hi - y) / (hi - lo) * float64(height-1)))
			if grid[r][c] == ' ' {
				grid[r][c] = mark
			} else {
				grid[r][c] = '#' // collision
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for r, row := range grid {
		y := hi - (hi-lo)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%8.3f |%s|\n", y, row)
	}
	fmt.Fprintf(&b, "%8s  x: %.3g..%.3g (%d points)\n", "", xs[0], xs[len(xs)-1], len(xs))
	for li, l := range labels {
		fmt.Fprintf(&b, "%8s  %c = %s\n", "", marks[li%len(marks)], l)
	}
	return b.String()
}

// WriteFile writes content to dir/name, creating dir if needed.
func WriteFile(dir, name, content string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("trace: %w", err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		return "", fmt.Errorf("trace: %w", err)
	}
	return path, nil
}

// Fprintln writes a line, ignoring errors — convenience for CLI output.
func Fprintln(w io.Writer, args ...any) {
	_, _ = fmt.Fprintln(w, args...)
}
