package frac

import (
	"encoding/json"
	"testing"
)

func TestMarshalRoundTrip(t *testing.T) {
	for _, s := range []string{"0", "1/2", "-3/20", "8/11", "1", "24/10"} {
		r := MustParse(s)
		data, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("marshal %s: %v", s, err)
		}
		var back Rat
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if !back.Eq(r) {
			t.Errorf("round trip %s -> %s -> %s", s, data, back)
		}
	}
}

func TestMarshalInStruct(t *testing.T) {
	type payload struct {
		W Rat `json:"w"`
	}
	var p payload
	if err := json.Unmarshal([]byte(`{"w": "3/19"}`), &p); err != nil {
		t.Fatal(err)
	}
	if !p.W.Eq(New(3, 19)) {
		t.Errorf("w = %s", p.W)
	}
	data, err := json.Marshal(payload{W: New(2, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"w":"1/2"}` {
		t.Errorf("marshaled %s", data)
	}
	if err := json.Unmarshal([]byte(`{"w": "1/0"}`), &p); err == nil {
		t.Error("zero denominator accepted")
	}
	if err := json.Unmarshal([]byte(`{"w": "x"}`), &p); err == nil {
		t.Error("garbage accepted")
	}
}

func FuzzParse(f *testing.F) {
	for _, seed := range []string{"1/2", "-3/20", "0", "1", "9223372036854775807", " 5/16", "1/0", "a/b", "1.5", ""} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		r, err := Parse(s)
		if err != nil {
			return
		}
		// Anything that parses must round-trip and be normalized.
		back, err := Parse(r.String())
		if err != nil || !back.Eq(r) {
			t.Fatalf("round trip failed for %q -> %s", s, r)
		}
		if r.Den() < 1 {
			t.Fatalf("denominator %d < 1 for %q", r.Den(), s)
		}
	})
}
