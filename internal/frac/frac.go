// Package frac implements exact rational arithmetic on checked int64
// numerators and denominators.
//
// Pfair scheduling theory is built on exact fractions: task weights such as
// 3/19, per-slot ideal allocations such as 32/95, and drift values such as
// -3/20 must be computed without rounding, because correctness conditions
// (lag bounds, completion times, drift bounds) are stated as exact
// comparisons. All values that flow through the scheduler use this package;
// floating point appears only in the Whisper geometry layer, which quantizes
// to rationals before handing weights to the scheduler.
//
// Values are kept in lowest terms with a non-negative denominator. The zero
// value of Rat is the rational number 0 and is ready to use. All operations
// detect int64 overflow; on overflow they panic with ErrOverflow, since the
// quantities handled by this repository (denominators in the low thousands,
// time horizons in the low millions) are far from the representable range
// and an overflow indicates a programming error rather than a recoverable
// condition.
package frac

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ErrOverflow is the panic value used when an operation exceeds int64 range
// even after reduction to lowest terms.
var ErrOverflow = fmt.Errorf("frac: int64 overflow")

// Rat is an exact rational number num/den, always stored in lowest terms
// with den > 0. The zero value is 0/1.
type Rat struct {
	num int64
	den int64 // invariant: den >= 1 after normalization; zero value means den==1
}

// Common constants.
var (
	Zero = Rat{0, 1}
	One  = Rat{1, 1}
	Half = Rat{1, 2}
)

// New returns the rational num/den in lowest terms. It panics if den == 0.
func New(num, den int64) Rat {
	if den == 0 {
		panic("frac: zero denominator")
	}
	return norm(num, den)
}

// FromInt returns the rational n/1.
func FromInt(n int64) Rat {
	return Rat{n, 1}
}

// norm reduces num/den to lowest terms with a positive denominator.
func norm(num, den int64) Rat {
	if den < 0 {
		num, den = -num, -den
	}
	if num == 0 {
		return Rat{0, 1}
	}
	g := gcd64(abs64(num), den)
	return Rat{num / g, den / g}
}

func abs64(x int64) int64 {
	if x < 0 {
		if x == math.MinInt64 {
			panic(ErrOverflow)
		}
		return -x
	}
	return x
}

// gcd64 returns the greatest common divisor of a and b, both > 0 expected
// (a may be 0, in which case b is returned).
func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

// checked arithmetic helpers ------------------------------------------------

func addChecked(a, b int64) int64 {
	s := a + b
	if (a > 0 && b > 0 && s <= 0) || (a < 0 && b < 0 && s >= 0) {
		panic(ErrOverflow)
	}
	return s
}

func mulChecked(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	p := a * b
	if p/b != a {
		panic(ErrOverflow)
	}
	return p
}

// Num returns the numerator (in lowest terms; sign carried here).
func (r Rat) Num() int64 { return r.num }

// Den returns the denominator (in lowest terms, always >= 1).
func (r Rat) Den() int64 {
	if r.den == 0 { // zero value
		return 1
	}
	return r.den
}

// IsZero reports whether r == 0.
func (r Rat) IsZero() bool { return r.num == 0 }

// Sign returns -1, 0 or +1 according to the sign of r.
func (r Rat) Sign() int {
	switch {
	case r.num < 0:
		return -1
	case r.num > 0:
		return 1
	default:
		return 0
	}
}

// Neg returns -r.
func (r Rat) Neg() Rat {
	return Rat{-r.num, r.Den()}
}

// Abs returns |r|.
func (r Rat) Abs() Rat {
	if r.num < 0 {
		return r.Neg()
	}
	return Rat{r.num, r.Den()}
}

// Add returns r + s.
func (r Rat) Add(s Rat) Rat {
	rd, sd := r.Den(), s.Den()
	// Use the lcm-style reduction to keep intermediates small.
	g := gcd64(rd, sd)
	// r.num*(sd/g) + s.num*(rd/g), over rd*(sd/g)
	n := addChecked(mulChecked(r.num, sd/g), mulChecked(s.num, rd/g))
	d := mulChecked(rd, sd/g)
	return norm(n, d)
}

// Sub returns r - s.
func (r Rat) Sub(s Rat) Rat { return r.Add(s.Neg()) }

// Mul returns r * s.
func (r Rat) Mul(s Rat) Rat {
	rd, sd := r.Den(), s.Den()
	// Cross-reduce before multiplying to avoid overflow.
	g1 := gcd64(abs64(r.num), sd)
	g2 := gcd64(abs64(s.num), rd)
	n := mulChecked(r.num/g1, s.num/g2)
	d := mulChecked(rd/g2, sd/g1)
	return norm(n, d)
}

// Div returns r / s. It panics if s == 0.
func (r Rat) Div(s Rat) Rat {
	if s.num == 0 {
		panic("frac: division by zero")
	}
	return r.Mul(Rat{s.Den(), abs64(s.num)}.withSign(s.Sign()))
}

func (r Rat) withSign(sign int) Rat {
	if sign < 0 {
		return Rat{-r.num, r.Den()}
	}
	return r
}

// MulInt returns r * n.
func (r Rat) MulInt(n int64) Rat {
	g := gcd64(abs64(n), r.Den())
	return norm(mulChecked(r.num, n/g), r.Den()/g)
}

// Inv returns 1/r. It panics if r == 0.
func (r Rat) Inv() Rat {
	if r.num == 0 {
		panic("frac: division by zero")
	}
	if r.num < 0 {
		return Rat{-r.Den(), abs64(r.num)}
	}
	return Rat{r.Den(), r.num}
}

// Cmp compares r and s, returning -1 if r < s, 0 if r == s, +1 if r > s.
func (r Rat) Cmp(s Rat) int {
	// r.num/rd ? s.num/sd  <=>  r.num*sd ? s.num*rd (denominators positive).
	rd, sd := r.Den(), s.Den()
	g := gcd64(rd, sd)
	a := mulChecked(r.num, sd/g)
	b := mulChecked(s.num, rd/g)
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Eq reports whether r == s.
func (r Rat) Eq(s Rat) bool { return r.num == s.num && r.Den() == s.Den() }

// Less reports whether r < s.
func (r Rat) Less(s Rat) bool { return r.Cmp(s) < 0 }

// LessEq reports whether r <= s.
func (r Rat) LessEq(s Rat) bool { return r.Cmp(s) <= 0 }

// Min returns the smaller of r and s.
func Min(r, s Rat) Rat {
	if r.Cmp(s) <= 0 {
		return r
	}
	return s
}

// Max returns the larger of r and s.
func Max(r, s Rat) Rat {
	if r.Cmp(s) >= 0 {
		return r
	}
	return s
}

// Floor returns the greatest integer <= r.
func (r Rat) Floor() int64 {
	d := r.Den()
	q := r.num / d
	if r.num%d != 0 && r.num < 0 {
		q--
	}
	return q
}

// Ceil returns the least integer >= r.
func (r Rat) Ceil() int64 {
	d := r.Den()
	q := r.num / d
	if r.num%d != 0 && r.num > 0 {
		q++
	}
	return q
}

// IsInt reports whether r is an integer.
func (r Rat) IsInt() bool { return r.Den() == 1 }

// FloorDivInt returns floor(i / r) for r > 0. This is the ⌊i/wt(T)⌋ operation
// from the Pfair window equations. It panics if r <= 0.
func FloorDivInt(i int64, r Rat) int64 {
	if r.Sign() <= 0 {
		panic("frac: FloorDivInt requires positive divisor")
	}
	// i / (num/den) = i*den/num
	return FromInt(i).Mul(r.Inv()).Floor()
}

// CeilDivInt returns ceil(i / r) for r > 0. This is the ⌈i/wt(T)⌉ operation
// from the Pfair window equations. It panics if r <= 0.
func CeilDivInt(i int64, r Rat) int64 {
	if r.Sign() <= 0 {
		panic("frac: CeilDivInt requires positive divisor")
	}
	return FromInt(i).Mul(r.Inv()).Ceil()
}

// Float64 returns the nearest float64 to r. Intended for reporting only.
func (r Rat) Float64() float64 {
	return float64(r.num) / float64(r.Den()) //lint:allow fracexact designated exact→float reporting boundary
}

// String formats r as "num/den", or just "num" when r is an integer.
func (r Rat) String() string {
	if r.Den() == 1 {
		return strconv.FormatInt(r.num, 10)
	}
	return strconv.FormatInt(r.num, 10) + "/" + strconv.FormatInt(r.Den(), 10)
}

// Append appends String's exact bytes to dst and returns the extended
// slice, for allocation-free formatting on hot paths (the state-digest
// writer); TestAppendMatchesString pins the byte equivalence.
//
//lint:noalloc digest path formatter
func (r Rat) Append(dst []byte) []byte {
	dst = strconv.AppendInt(dst, r.num, 10)
	if den := r.Den(); den != 1 {
		dst = append(dst, '/')
		dst = strconv.AppendInt(dst, den, 10)
	}
	return dst
}

// Parse parses "a/b" or "a" into a Rat.
func Parse(s string) (Rat, error) {
	s = strings.TrimSpace(s)
	if i := strings.IndexByte(s, '/'); i >= 0 {
		num, err := strconv.ParseInt(strings.TrimSpace(s[:i]), 10, 64)
		if err != nil {
			return Rat{}, fmt.Errorf("frac: parse %q: %w", s, err)
		}
		den, err := strconv.ParseInt(strings.TrimSpace(s[i+1:]), 10, 64)
		if err != nil {
			return Rat{}, fmt.Errorf("frac: parse %q: %w", s, err)
		}
		if den == 0 {
			return Rat{}, fmt.Errorf("frac: parse %q: zero denominator", s)
		}
		return New(num, den), nil
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return Rat{}, fmt.Errorf("frac: parse %q: %w", s, err)
	}
	return FromInt(n), nil
}

// MustParse is Parse but panics on error. Intended for tests and constants.
func MustParse(s string) Rat {
	r, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return r
}

// MarshalText implements encoding.TextMarshaler using the "num/den" form,
// so rationals survive JSON round-trips exactly.
func (r Rat) MarshalText() ([]byte, error) {
	return []byte(r.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler, accepting "a/b" or "a".
func (r *Rat) UnmarshalText(text []byte) error {
	v, err := Parse(string(text))
	if err != nil {
		return err
	}
	*r = v
	return nil
}

// Sum returns the sum of the given rationals.
func Sum(rs ...Rat) Rat {
	total := Zero
	for _, r := range rs {
		total = total.Add(r)
	}
	return total
}

// Quantize returns the rational nearest to x with the given denominator
// (round half away from zero), in lowest terms. It is how floating-point
// weights from the Whisper cost model enter the exact-arithmetic scheduler.
// It panics if den <= 0 or x is not finite.
func Quantize(x float64, den int64) Rat {
	if den <= 0 {
		panic("frac: Quantize requires positive denominator")
	}
	if math.IsNaN(x) || math.IsInf(x, 0) {
		panic("frac: Quantize of non-finite value")
	}
	scaled := x * float64(den) //lint:allow fracexact designated float→exact entry point (Whisper cost model)
	var n int64
	if scaled >= 0 { //lint:allow fracexact sign test on the incoming float, before quantization
		n = int64(math.Floor(scaled + 0.5)) //lint:allow fracexact round-half-away rounding of the incoming float
	} else {
		n = int64(math.Ceil(scaled - 0.5)) //lint:allow fracexact round-half-away rounding of the incoming float
	}
	return New(n, den)
}

// Clamp returns r limited to the inclusive range [lo, hi].
func Clamp(r, lo, hi Rat) Rat {
	if r.Less(lo) {
		return lo
	}
	if hi.Less(r) {
		return hi
	}
	return r
}
