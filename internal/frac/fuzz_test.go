package frac

import (
	"math"
	"testing"
)

// FuzzRatArith fuzzes the algebraic laws the scheduler relies on:
// Add/Mul commutativity, Add/Sub round-trips, Cmp consistency, and
// String/Parse round-trips — all under the package's documented
// overflow behaviour (operations either return an exact result or
// panic with ErrOverflow; they never silently wrap). It mirrors the
// structure of internal/spec's FuzzParse: seed with the interesting
// boundary cases, then let the mutator explore.
func FuzzRatArith(f *testing.F) {
	f.Add(int64(1), int64(2), int64(1), int64(3))
	f.Add(int64(3), int64(20), int64(-3), int64(20))
	f.Add(int64(0), int64(1), int64(0), int64(1))
	f.Add(int64(-7), int64(5), int64(7), int64(-5))
	f.Add(int64(math.MaxInt64), int64(1), int64(1), int64(math.MaxInt64))
	f.Add(int64(math.MinInt64), int64(3), int64(5), int64(7))
	f.Add(int64(1), int64(math.MaxInt64), int64(1), int64(math.MaxInt64-1))
	f.Fuzz(func(t *testing.T, an, ad, bn, bd int64) {
		if ad == 0 || bd == 0 {
			return // New is specified to panic on zero denominators
		}
		a, ok := tryRat(t, func() Rat { return New(an, ad) })
		if !ok {
			return // |MinInt64| is not representable; overflow is the contract
		}
		b, ok := tryRat(t, func() Rat { return New(bn, bd) })
		if !ok {
			return
		}

		// Normalization invariants: lowest terms, positive denominator.
		for _, r := range []Rat{a, b} {
			if r.Den() < 1 {
				t.Fatalf("non-positive denominator: %v", r)
			}
			if g := gcd64(abs64nofail(r.Num()), r.Den()); r.Num() != 0 && g != 1 {
				t.Fatalf("not in lowest terms: %v (gcd %d)", r, g)
			}
		}

		// Add commutes; Sub inverts Add.
		if s1, ok := tryRat(t, func() Rat { return a.Add(b) }); ok {
			s2, ok2 := tryRat(t, func() Rat { return b.Add(a) })
			if !ok2 || !s1.Eq(s2) {
				t.Fatalf("Add not commutative: %v+%v = %v vs %v", a, b, s1, s2)
			}
			if back, ok := tryRat(t, func() Rat { return s1.Sub(b) }); ok && !back.Eq(a) {
				t.Fatalf("(%v+%v)-%v = %v, want %v", a, b, b, back, a)
			}
		}

		// Mul commutes; Div inverts Mul for nonzero b.
		if p1, ok := tryRat(t, func() Rat { return a.Mul(b) }); ok {
			p2, ok2 := tryRat(t, func() Rat { return b.Mul(a) })
			if !ok2 || !p1.Eq(p2) {
				t.Fatalf("Mul not commutative: %v*%v = %v vs %v", a, b, p1, p2)
			}
			if !b.IsZero() {
				if back, ok := tryRat(t, func() Rat { return p1.Div(b) }); ok && !back.Eq(a) {
					t.Fatalf("(%v*%v)/%v = %v, want %v", a, b, b, back, a)
				}
			}
		}

		// Cmp is antisymmetric and agrees with Sub's sign when Sub is
		// representable. (Cmp itself may overflow on extreme operands;
		// that, too, must surface as ErrOverflow, never a wrong answer.)
		c1, ok1 := tryInt(t, func() int { return a.Cmp(b) })
		c2, ok2 := tryInt(t, func() int { return b.Cmp(a) })
		if ok1 && ok2 && c1 != -c2 {
			t.Fatalf("Cmp not antisymmetric: Cmp(%v,%v)=%d, Cmp(%v,%v)=%d", a, b, c1, b, a, c2)
		}
		if ok1 {
			if d, ok := tryRat(t, func() Rat { return a.Sub(b) }); ok && d.Sign() != c1 {
				t.Fatalf("Cmp(%v,%v)=%d but Sub sign=%d", a, b, c1, d.Sign())
			}
			if (c1 == 0) != a.Eq(b) {
				t.Fatalf("Cmp(%v,%v)=%d disagrees with Eq=%v", a, b, c1, a.Eq(b))
			}
		}

		// String/Parse round-trip is exact (rationals must survive JSON).
		got, err := Parse(a.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", a.String(), err)
		}
		if !got.Eq(a) {
			t.Fatalf("Parse(String(%v)) = %v", a, got)
		}

		// Neg/Abs are involutive and sign-consistent.
		if !a.Neg().Neg().Eq(a) {
			t.Fatalf("Neg not involutive for %v", a)
		}
		if a.Abs().Sign() < 0 {
			t.Fatalf("Abs(%v) negative", a)
		}
	})
}

// tryRat runs fn, treating an ErrOverflow panic as the documented
// out-of-range outcome. Any other panic is a real bug and fails the
// fuzz run.
func tryRat(t *testing.T, fn func() Rat) (r Rat, ok bool) {
	t.Helper()
	defer func() {
		if rec := recover(); rec != nil {
			if rec != ErrOverflow {
				t.Fatalf("unexpected panic: %v", rec)
			}
			ok = false
		}
	}()
	return fn(), true
}

// tryInt is tryRat for int-valued operations (Cmp).
func tryInt(t *testing.T, fn func() int) (v int, ok bool) {
	t.Helper()
	defer func() {
		if rec := recover(); rec != nil {
			if rec != ErrOverflow {
				t.Fatalf("unexpected panic: %v", rec)
			}
			ok = false
		}
	}()
	return fn(), true
}

// abs64nofail is abs64 for values already known representable.
func abs64nofail(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
