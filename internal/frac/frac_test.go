package frac

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewNormalizes(t *testing.T) {
	cases := []struct {
		num, den     int64
		wantN, wantD int64
	}{
		{1, 2, 1, 2},
		{2, 4, 1, 2},
		{-2, 4, -1, 2},
		{2, -4, -1, 2},
		{-2, -4, 1, 2},
		{0, 5, 0, 1},
		{0, -5, 0, 1},
		{6, 3, 2, 1},
		{21, 14, 3, 2},
		{-21, 14, -3, 2},
	}
	for _, c := range cases {
		r := New(c.num, c.den)
		if r.Num() != c.wantN || r.Den() != c.wantD {
			t.Errorf("New(%d,%d) = %d/%d, want %d/%d", c.num, c.den, r.Num(), r.Den(), c.wantN, c.wantD)
		}
	}
}

func TestZeroValueIsZero(t *testing.T) {
	var r Rat
	if !r.IsZero() || r.Den() != 1 || r.Sign() != 0 {
		t.Fatalf("zero value misbehaves: %v den=%d sign=%d", r, r.Den(), r.Sign())
	}
	if !r.Add(One).Eq(One) {
		t.Fatalf("0 + 1 != 1")
	}
	if !r.Mul(Half).IsZero() {
		t.Fatalf("0 * 1/2 != 0")
	}
}

func TestNewPanicsOnZeroDen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(1,0) did not panic")
		}
	}()
	New(1, 0)
}

func TestArithmeticExamples(t *testing.T) {
	cases := []struct {
		a, b, add, sub, mul, div string
	}{
		{"1/2", "1/3", "5/6", "1/6", "1/6", "3/2"},
		{"3/19", "2/5", "53/95", "-23/95", "6/95", "15/38"},
		{"-1/2", "1/2", "0", "-1", "-1/4", "-1"},
		{"7", "2", "9", "5", "14", "7/2"},
		{"5/16", "5/16", "5/8", "0", "25/256", "1"},
		{"2/5", "-3/20", "1/4", "11/20", "-3/50", "-8/3"},
	}
	for _, c := range cases {
		a, b := MustParse(c.a), MustParse(c.b)
		if got := a.Add(b); !got.Eq(MustParse(c.add)) {
			t.Errorf("%s + %s = %s, want %s", c.a, c.b, got, c.add)
		}
		if got := a.Sub(b); !got.Eq(MustParse(c.sub)) {
			t.Errorf("%s - %s = %s, want %s", c.a, c.b, got, c.sub)
		}
		if got := a.Mul(b); !got.Eq(MustParse(c.mul)) {
			t.Errorf("%s * %s = %s, want %s", c.a, c.b, got, c.mul)
		}
		if got := a.Div(b); !got.Eq(MustParse(c.div)) {
			t.Errorf("%s / %s = %s, want %s", c.a, c.b, got, c.div)
		}
	}
}

func TestFloorCeil(t *testing.T) {
	cases := []struct {
		r           string
		floor, ceil int64
	}{
		{"7/2", 3, 4},
		{"-7/2", -4, -3},
		{"4", 4, 4},
		{"-4", -4, -4},
		{"0", 0, 0},
		{"1/10", 0, 1},
		{"-1/10", -1, 0},
		{"19/3", 6, 7},
		{"20/3", 6, 7},
		{"21/3", 7, 7},
	}
	for _, c := range cases {
		r := MustParse(c.r)
		if got := r.Floor(); got != c.floor {
			t.Errorf("Floor(%s) = %d, want %d", c.r, got, c.floor)
		}
		if got := r.Ceil(); got != c.ceil {
			t.Errorf("Ceil(%s) = %d, want %d", c.r, got, c.ceil)
		}
	}
}

func TestWindowDivisions(t *testing.T) {
	// The Pfair window equations from the paper, checked against the
	// examples in Fig. 1: a task of weight 5/16 has r(T_2)=3, d(T_2)=7.
	w := New(5, 16)
	if got := FloorDivInt(1, w); got != 3 { // floor((2-1)/w)
		t.Errorf("floor(1/(5/16)) = %d, want 3", got)
	}
	if got := CeilDivInt(2, w); got != 7 { // ceil(2/w)
		t.Errorf("ceil(2/(5/16)) = %d, want 7", got)
	}
	// Weight 3/19: d(T_1) = ceil(1/w) = ceil(19/3) = 7.
	if got := CeilDivInt(1, New(3, 19)); got != 7 {
		t.Errorf("ceil(19/3) = %d, want 7", got)
	}
	// Weight 2/5: d(T_1) = ceil(5/2) = 3.
	if got := CeilDivInt(1, New(2, 5)); got != 3 {
		t.Errorf("ceil(5/2) = %d, want 3", got)
	}
}

func TestCmpAndOrdering(t *testing.T) {
	vals := []string{"-2", "-7/2", "-1/10", "0", "1/10", "5/16", "1/3", "1/2", "2/5", "1", "24/10"}
	for _, a := range vals {
		for _, b := range vals {
			ra, rb := MustParse(a), MustParse(b)
			want := 0
			fa, fb := ra.Float64(), rb.Float64()
			if fa < fb {
				want = -1
			} else if fa > fb {
				want = 1
			}
			if got := ra.Cmp(rb); got != want {
				t.Errorf("Cmp(%s,%s) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestMinMaxClamp(t *testing.T) {
	a, b := New(1, 3), New(1, 2)
	if !Min(a, b).Eq(a) || !Min(b, a).Eq(a) {
		t.Error("Min wrong")
	}
	if !Max(a, b).Eq(b) || !Max(b, a).Eq(b) {
		t.Error("Max wrong")
	}
	if got := Clamp(New(3, 4), a, b); !got.Eq(b) {
		t.Errorf("Clamp above = %s", got)
	}
	if got := Clamp(New(1, 10), a, b); !got.Eq(a) {
		t.Errorf("Clamp below = %s", got)
	}
	if got := Clamp(New(2, 5), a, b); !got.Eq(New(2, 5)) {
		t.Errorf("Clamp inside = %s", got)
	}
}

func TestParse(t *testing.T) {
	good := map[string]Rat{
		"1/2":   Half,
		" 3/19": New(3, 19),
		"-2/4":  New(-1, 2),
		"5":     FromInt(5),
		"-7":    FromInt(-7),
		"0":     Zero,
	}
	for s, want := range good {
		got, err := Parse(s)
		if err != nil {
			t.Errorf("Parse(%q) error: %v", s, err)
			continue
		}
		if !got.Eq(want) {
			t.Errorf("Parse(%q) = %s, want %s", s, got, want)
		}
	}
	for _, s := range []string{"", "a", "1/0", "1/2/3", "1.5"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestString(t *testing.T) {
	cases := map[string]string{
		"2/4":  "1/2",
		"5":    "5",
		"-6/4": "-3/2",
		"0":    "0",
	}
	for in, want := range cases {
		if got := MustParse(in).String(); got != want {
			t.Errorf("String(%s) = %q, want %q", in, got, want)
		}
	}
}

func TestQuantize(t *testing.T) {
	cases := []struct {
		x    float64
		den  int64
		want Rat
	}{
		{0.333, 1000, New(333, 1000)},
		{0.3335, 1000, New(334, 1000)},
		{-0.3335, 1000, New(-334, 1000)},
		{0, 1000, Zero},
		{1, 7, One},
		{0.5, 2, Half},
	}
	for _, c := range cases {
		if got := Quantize(c.x, c.den); !got.Eq(c.want) {
			t.Errorf("Quantize(%v,%d) = %s, want %s", c.x, c.den, got, c.want)
		}
	}
}

func TestQuantizePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Quantize(1, 0) },
		func() { Quantize(math.NaN(), 10) },
		func() { Quantize(math.Inf(1), 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSum(t *testing.T) {
	got := Sum(New(1, 3), New(1, 3), New(1, 3))
	if !got.Eq(One) {
		t.Errorf("Sum(1/3 x3) = %s, want 1", got)
	}
	if !Sum().IsZero() {
		t.Error("Sum() != 0")
	}
}

func TestInvDivByZeroPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Zero.Inv() },
		func() { One.Div(Zero) },
		func() { FloorDivInt(1, Zero) },
		func() { CeilDivInt(1, Zero.Sub(One)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// randRat generates rationals with modest numerators/denominators, matching
// the magnitudes that occur in Pfair scheduling.
func randRat(r *rand.Rand) Rat {
	num := r.Int63n(2001) - 1000
	den := r.Int63n(999) + 1
	return New(num, den)
}

func TestPropertiesQuick(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 2000,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(randRat(r))
			}
		},
	}

	t.Run("AddCommutative", func(t *testing.T) {
		if err := quick.Check(func(a, b Rat) bool {
			return a.Add(b).Eq(b.Add(a))
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("AddAssociative", func(t *testing.T) {
		if err := quick.Check(func(a, b, c Rat) bool {
			return a.Add(b).Add(c).Eq(a.Add(b.Add(c)))
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("MulCommutative", func(t *testing.T) {
		if err := quick.Check(func(a, b Rat) bool {
			return a.Mul(b).Eq(b.Mul(a))
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("Distributive", func(t *testing.T) {
		if err := quick.Check(func(a, b, c Rat) bool {
			return a.Mul(b.Add(c)).Eq(a.Mul(b).Add(a.Mul(c)))
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("SubAddRoundTrip", func(t *testing.T) {
		if err := quick.Check(func(a, b Rat) bool {
			return a.Sub(b).Add(b).Eq(a)
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("DivMulRoundTrip", func(t *testing.T) {
		if err := quick.Check(func(a, b Rat) bool {
			if b.IsZero() {
				return true
			}
			return a.Div(b).Mul(b).Eq(a)
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("NormalForm", func(t *testing.T) {
		if err := quick.Check(func(a, b Rat) bool {
			c := a.Add(b)
			if c.Den() < 1 {
				return false
			}
			return gcd64(abs64(c.Num()), c.Den()) == 1 || c.Num() == 0
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("FloorCeilBracket", func(t *testing.T) {
		if err := quick.Check(func(a Rat) bool {
			f, c := a.Floor(), a.Ceil()
			if FromInt(f).Cmp(a) > 0 || a.Cmp(FromInt(c)) > 0 {
				return false
			}
			if a.IsInt() {
				return f == c
			}
			return c == f+1
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("CmpAntisymmetric", func(t *testing.T) {
		if err := quick.Check(func(a, b Rat) bool {
			return a.Cmp(b) == -b.Cmp(a)
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("OrderingTransitive", func(t *testing.T) {
		if err := quick.Check(func(a, b, c Rat) bool {
			x, y, z := a, b, c
			if y.Less(x) {
				x, y = y, x
			}
			if z.Less(y) {
				y, z = z, y
			}
			if y.Less(x) {
				x, y = y, x
			}
			return x.LessEq(y) && y.LessEq(z) && x.LessEq(z)
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("StringParseRoundTrip", func(t *testing.T) {
		if err := quick.Check(func(a Rat) bool {
			back, err := Parse(a.String())
			return err == nil && back.Eq(a)
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("AbsNonNegative", func(t *testing.T) {
		if err := quick.Check(func(a Rat) bool {
			return a.Abs().Sign() >= 0 && (a.Abs().Eq(a) || a.Abs().Eq(a.Neg()))
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("WindowIdentity", func(t *testing.T) {
		// For 0 < w <= 1 and i >= 1: floor(i/w) and ceil(i/w) differ by the
		// b-bit, which is 0 or 1.
		if err := quick.Check(func(a Rat) bool {
			w := a.Abs()
			if w.IsZero() {
				return true
			}
			if One.Less(w) {
				w = w.Inv()
			}
			for i := int64(1); i <= 5; i++ {
				b := CeilDivInt(i, w) - FloorDivInt(i, w)
				if b != 0 && b != 1 {
					return false
				}
			}
			return true
		}, cfg); err != nil {
			t.Error(err)
		}
	})
}
