package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// CoordinatorOptions configures the cluster coordinator.
type CoordinatorOptions struct {
	Shards   int // global shard count
	Replicas int // followers per shard; default 1
	// MinNodes gates the initial placement: the table stays unpublished
	// until this many nodes registered. Default 1.
	MinNodes int
	// HeartbeatMisses consecutive failed health checks declare a node
	// dead and trigger failover. Default 2.
	HeartbeatMisses int
	Client          *http.Client
}

// nodeInfo is the coordinator's registry entry for one node.
type nodeInfo struct {
	base   string
	missed int
	dead   bool
}

// A Coordinator owns the routing table: it registers nodes, computes
// the rendezvous placement once MinNodes joined, pushes every table
// change to all live nodes, orchestrates migrations, and health-checks
// nodes to drive promote-on-primary-death failover.
type Coordinator struct {
	opts   CoordinatorOptions
	client *http.Client
	mux    *http.ServeMux

	mu    sync.Mutex
	nodes map[string]*nodeInfo
	table *RouteTable // nil until the first placement

	stopc chan struct{}
	wg    sync.WaitGroup
}

// NewCoordinator builds a coordinator; Start launches the heartbeat.
func NewCoordinator(opts CoordinatorOptions) (*Coordinator, error) {
	if opts.Shards < 1 {
		return nil, fmt.Errorf("cluster: coordinator needs at least one shard")
	}
	if opts.Replicas < 1 {
		opts.Replicas = 1
	}
	if opts.MinNodes < 1 {
		opts.MinNodes = 1
	}
	if opts.HeartbeatMisses < 1 {
		opts.HeartbeatMisses = 2
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Timeout: 5 * time.Second}
	}
	c := &Coordinator{
		opts:   opts,
		client: opts.Client,
		nodes:  make(map[string]*nodeInfo),
		stopc:  make(chan struct{}),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cluster/nodes", c.handleRegister)
	mux.HandleFunc("GET /v1/cluster/route", c.handleRoute)
	mux.HandleFunc("POST /v1/cluster/migrate", c.handleMigrate)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("ok\n"))
	})
	c.mux = mux
	return c, nil
}

// Handler returns the coordinator's HTTP surface.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Start launches the heartbeat loop (default interval 500ms).
func (c *Coordinator) Start(interval time.Duration) {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-c.stopc:
				return
			case <-t.C:
				c.CheckNodes()
			}
		}
	}()
}

// Stop halts the heartbeat loop.
func (c *Coordinator) Stop() {
	close(c.stopc)
	c.wg.Wait()
}

// Table returns a copy of the current routing table (nil before the
// first placement).
func (c *Coordinator) Table() *RouteTable {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.table == nil {
		return nil
	}
	return c.table.Clone()
}

// aliveLocked lists the live node IDs, sorted for determinism.
func (c *Coordinator) aliveLocked() []string {
	ids := make([]string, 0, len(c.nodes))
	for id, ni := range c.nodes {
		if !ni.dead {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// publishLocked bumps the version, snapshots the node bases into the
// table, and returns (table copy, push list). Callers push outside the
// lock.
func (c *Coordinator) publishLocked() (*RouteTable, []string) {
	c.table.Version++
	c.table.Nodes = make(map[string]string, len(c.nodes))
	bases := make([]string, 0, len(c.nodes))
	for _, id := range c.aliveLocked() {
		c.table.Nodes[id] = c.nodes[id].base
		bases = append(bases, c.nodes[id].base)
	}
	return c.table.Clone(), bases
}

// pushTable POSTs the table to every base; failures are logged and
// healed by the next heartbeat's re-push.
func (c *Coordinator) pushTable(tab *RouteTable, bases []string) {
	body, err := json.Marshal(tab)
	if err != nil {
		return
	}
	for _, base := range bases {
		resp, err := c.client.Post(base+"/v1/cluster/route", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Printf("cluster: coordinator: pushing route v%d to %s: %v", tab.Version, base, err)
			continue
		}
		_ = resp.Body.Close()
	}
}

// handleRegister admits a node (idempotent; a changed base re-places
// the node) and answers with the current table.
func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		writeClusterError(w, http.StatusBadRequest, "invalid", "decoding register: "+err.Error())
		return
	}
	if req.ID == "" || req.Base == "" {
		writeClusterError(w, http.StatusBadRequest, "invalid", "register needs id and base")
		return
	}
	req.Base = strings.TrimRight(req.Base, "/")
	c.mu.Lock()
	ni := c.nodes[req.ID]
	if ni == nil {
		ni = &nodeInfo{}
		c.nodes[req.ID] = ni
	}
	ni.base = req.Base
	ni.missed = 0
	ni.dead = false
	var tab *RouteTable
	var bases []string
	switch {
	case c.table == nil && len(c.aliveLocked()) >= c.opts.MinNodes:
		c.table = &RouteTable{Shards: Place(c.aliveLocked(), c.opts.Shards, c.opts.Replicas)}
		tab, bases = c.publishLocked()
	case c.table != nil:
		// A join never moves a primary (that would need a migration); it
		// only refreshes follower sets.
		c.table.Shards = Rebalance(c.table.Shards, c.aliveLocked(), c.opts.Replicas)
		tab, bases = c.publishLocked()
	}
	reply := c.table
	if reply == nil {
		reply = &RouteTable{} // version 0: not placed yet
	}
	out, _ := json.Marshal(reply)
	c.mu.Unlock()
	if tab != nil {
		c.pushTable(tab, bases)
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(out)
}

// handleRoute serves the table with its version header; 503 until the
// initial placement happened.
func (c *Coordinator) handleRoute(w http.ResponseWriter, r *http.Request) {
	tab := c.Table()
	if tab == nil {
		writeClusterError(w, http.StatusServiceUnavailable, "no_route",
			fmt.Sprintf("waiting for %d nodes to register", c.opts.MinNodes))
		return
	}
	w.Header().Set(RouteVersionHeader, strconv.FormatInt(tab.Version, 10))
	writeJSONStatus(w, http.StatusOK, tab)
}

// MigrateShard moves one shard's primary to the target node: the
// source primary streams, freezes, digest-checks, and promotes (its
// /migrate endpoint); on success the coordinator flips the table and
// pushes it everywhere.
func (c *Coordinator) MigrateShard(shard int, to string) (*PromoteResponse, error) {
	c.mu.Lock()
	if c.table == nil || shard < 0 || shard >= len(c.table.Shards) {
		c.mu.Unlock()
		return nil, fmt.Errorf("cluster: no route for shard %d", shard)
	}
	target := c.nodes[to]
	if target == nil || target.dead {
		c.mu.Unlock()
		return nil, fmt.Errorf("cluster: target node %q is not alive", to)
	}
	src := c.table.Shards[shard].Primary
	if src == to {
		c.mu.Unlock()
		return nil, fmt.Errorf("cluster: shard %d is already on %s", shard, to)
	}
	srcBase := c.table.Nodes[src]
	targetBase := target.base
	c.mu.Unlock()
	if srcBase == "" {
		return nil, fmt.Errorf("cluster: shard %d primary %q has no base", shard, src)
	}

	body, _ := json.Marshal(migrateRequest{TargetID: to, TargetBase: targetBase})
	url := fmt.Sprintf("%s/v1/cluster/shards/%d/migrate", srcBase, shard)
	resp, err := c.client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("cluster: migrate shard %d: %w", shard, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		var e struct{ Error, Reason string }
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return nil, fmt.Errorf("cluster: migrate shard %d: %s (%s: %s)", shard, resp.Status, e.Error, e.Reason)
	}
	var prom PromoteResponse
	if err := json.NewDecoder(resp.Body).Decode(&prom); err != nil {
		return nil, fmt.Errorf("cluster: migrate shard %d reply: %w", shard, err)
	}

	c.mu.Lock()
	route := placeOne(c.aliveLocked(), shard, c.opts.Replicas, to)
	// Pin the digest-verified promotee even if a concurrent heartbeat
	// marked it dead mid-migration — placeOne would otherwise fall back
	// to rank order and crown a node without the shard's state. If the
	// target really is dead, the next round fails over from its
	// followers.
	route.Primary = to
	c.table.Shards[shard] = route
	tab, bases := c.publishLocked()
	c.mu.Unlock()
	c.pushTable(tab, bases)
	return &prom, nil
}

// handleMigrate is the HTTP face of MigrateShard.
func (c *Coordinator) handleMigrate(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Shard int    `json:"shard"`
		To    string `json:"to"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		writeClusterError(w, http.StatusBadRequest, "invalid", "decoding migrate: "+err.Error())
		return
	}
	prom, err := c.MigrateShard(req.Shard, req.To)
	if err != nil {
		writeClusterError(w, http.StatusBadGateway, "migrate", err.Error())
		return
	}
	writeJSONStatus(w, http.StatusOK, prom)
}

// CheckNodes runs one heartbeat round: health-check every live node,
// fail over the shards of any dead primary, and re-push the current
// table (heals nodes that missed a push). A shard's primary only moves
// in the table after a successful digest-verified promote; shards whose
// promotion failed (or that have no live follower) stay routed at their
// dead primary — effectively unrouted — and are retried every round, so
// a node without replicated state never inherits a shard by placement
// rank alone.
func (c *Coordinator) CheckNodes() {
	c.mu.Lock()
	type probe struct {
		id   string
		base string
	}
	probes := make([]probe, 0, len(c.nodes))
	for id, ni := range c.nodes {
		if !ni.dead {
			probes = append(probes, probe{id, ni.base})
		}
	}
	c.mu.Unlock()
	sort.Slice(probes, func(i, j int) bool { return probes[i].id < probes[j].id })

	healthy := make(map[string]bool, len(probes))
	for _, p := range probes {
		resp, err := c.client.Get(p.base + "/healthz")
		if err == nil {
			_ = resp.Body.Close()
		}
		healthy[p.id] = err == nil && resp.StatusCode == http.StatusOK
	}

	c.mu.Lock()
	var died []string
	for id, ok := range healthy {
		ni := c.nodes[id]
		if ni == nil || ni.dead {
			continue
		}
		if ok {
			ni.missed = 0
			continue
		}
		ni.missed++
		if ni.missed >= c.opts.HeartbeatMisses {
			ni.dead = true
			died = append(died, id)
		}
	}
	if c.table == nil {
		c.mu.Unlock()
		return
	}
	sort.Strings(died)
	if len(died) > 0 {
		log.Printf("cluster: coordinator: nodes %v declared dead, failing over", died)
	}
	// Orphaned shards: the table primary is dead — newly died this round
	// or still dead from an earlier round whose promotion failed. Promote
	// a surviving follower from the CURRENT table, because those
	// followers hold the replicated state; the promote endpoint
	// digest-verifies the install before the node takes the role.
	deadSet := make(map[string]bool, len(c.nodes))
	for id, ni := range c.nodes {
		if ni.dead {
			deadSet[id] = true
		}
	}
	type promotion struct {
		shard int
		id    string
		base  string
		rest  []string // fallback followers
	}
	var promos []promotion
	for s := range c.table.Shards {
		route := &c.table.Shards[s]
		if !deadSet[route.Primary] {
			continue
		}
		var cands []promotion
		for _, f := range route.Followers {
			ni := c.nodes[f]
			if ni != nil && !ni.dead {
				cands = append(cands, promotion{shard: s, id: f, base: ni.base})
			}
		}
		if len(cands) == 0 {
			log.Printf("cluster: coordinator: shard %d lost its primary %s and has no live follower; unrouted until one registers", s, route.Primary)
			continue
		}
		p := cands[0]
		for _, alt := range cands[1:] {
			p.rest = append(p.rest, alt.id)
		}
		promos = append(promos, p)
	}
	if len(died) == 0 && len(promos) == 0 {
		// Re-push the unchanged table so nodes that missed an update
		// converge.
		tab := c.table.Clone()
		var bases []string
		for _, id := range c.aliveLocked() {
			bases = append(bases, c.nodes[id].base)
		}
		c.mu.Unlock()
		c.pushTable(tab, bases)
		return
	}
	c.mu.Unlock()

	promoted := make(map[int]string, len(promos))
	for _, p := range promos {
		if _, err := c.postPromote(p.base, p.shard); err == nil {
			promoted[p.shard] = p.id
			continue
		} else {
			log.Printf("cluster: coordinator: promoting %s for shard %d: %v", p.id, p.shard, err)
		}
		for _, alt := range p.rest {
			c.mu.Lock()
			ni := c.nodes[alt]
			base := ""
			if ni != nil && !ni.dead {
				base = ni.base
			}
			c.mu.Unlock()
			if base == "" {
				continue
			}
			if _, err := c.postPromote(base, p.shard); err == nil {
				promoted[p.shard] = alt
				break
			}
		}
	}

	c.mu.Lock()
	for s, id := range promoted {
		c.table.Shards[s].Primary = id
	}
	// Recompute follower sets only for shards with a live primary;
	// orphaned shards keep their old route untouched (and are retried
	// next round) so placement rank alone can never crown a node that
	// holds no replica.
	aliveIDs := c.aliveLocked()
	aliveSet := make(map[string]bool, len(aliveIDs))
	for _, id := range aliveIDs {
		aliveSet[id] = true
	}
	for s := range c.table.Shards {
		if !aliveSet[c.table.Shards[s].Primary] {
			continue
		}
		c.table.Shards[s] = placeOne(aliveIDs, s, c.opts.Replicas, c.table.Shards[s].Primary)
	}
	var tab *RouteTable
	var bases []string
	if len(died) > 0 || len(promoted) > 0 {
		tab, bases = c.publishLocked()
	} else {
		// Every promotion failed: nothing moved, so re-push the current
		// table without burning a version.
		tab = c.table.Clone()
		for _, id := range aliveIDs {
			bases = append(bases, c.nodes[id].base)
		}
	}
	c.mu.Unlock()
	c.pushTable(tab, bases)
}

// postPromote asks a node to take over a shard from its replica.
func (c *Coordinator) postPromote(base string, shard int) (*PromoteResponse, error) {
	url := fmt.Sprintf("%s/v1/cluster/shards/%d/promote", base, shard)
	resp, err := c.client.Post(url, "application/json", nil)
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		var e struct{ Error, Reason string }
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return nil, fmt.Errorf("promote answered %d (%s: %s)", resp.StatusCode, e.Error, e.Reason)
	}
	var prom PromoteResponse
	if err := json.NewDecoder(resp.Body).Decode(&prom); err != nil {
		return nil, err
	}
	return &prom, nil
}
