package cluster

import (
	"reflect"
	"testing"
)

// TestPlaceDeterministic: the same inputs always give the same
// placement, the primary never appears in its own follower set, and
// every role lands on a real node.
func TestPlaceDeterministic(t *testing.T) {
	nodes := []string{"n1", "n2", "n3", "n4"}
	a := Place(nodes, 16, 2)
	b := Place([]string{"n4", "n2", "n3", "n1"}, 16, 2) // order must not matter
	if !reflect.DeepEqual(a, b) {
		t.Fatal("placement depends on node order")
	}
	known := map[string]bool{"n1": true, "n2": true, "n3": true, "n4": true}
	for _, r := range a {
		if !known[r.Primary] {
			t.Fatalf("shard %d primary %q unknown", r.Shard, r.Primary)
		}
		if len(r.Followers) != 2 {
			t.Fatalf("shard %d has %d followers, want 2", r.Shard, len(r.Followers))
		}
		seen := map[string]bool{r.Primary: true}
		for _, f := range r.Followers {
			if !known[f] || seen[f] {
				t.Fatalf("shard %d follower set %v invalid", r.Shard, r.Followers)
			}
			seen[f] = true
		}
	}
}

// TestPlaceSpreads: with enough shards, no node in a 4-node cluster is
// completely idle and no node owns everything — the hash actually
// spreads.
func TestPlaceSpreads(t *testing.T) {
	nodes := []string{"n1", "n2", "n3", "n4"}
	counts := map[string]int{}
	for _, r := range Place(nodes, 64, 1) {
		counts[r.Primary]++
	}
	for _, n := range nodes {
		if counts[n] == 0 {
			t.Fatalf("node %s owns no shards: %v", n, counts)
		}
		if counts[n] == 64 {
			t.Fatalf("node %s owns every shard", n)
		}
	}
}

// TestRebalanceKeepsPrimaries: adding a node must not move any existing
// primary (data lives there; moving it is a migration, not a routing
// edit), and removing a node must not re-home its shards either — a
// routing edit cannot know which survivor really holds the state, so
// the orphaned route stays untouched until a digest-verified promote
// (coordinator failover) flips it.
func TestRebalanceKeepsPrimaries(t *testing.T) {
	nodes := []string{"n1", "n2", "n3"}
	prev := Place(nodes, 32, 1)

	grown := Rebalance(prev, append(nodes, "n4"), 1)
	for s := range prev {
		if grown[s].Primary != prev[s].Primary {
			t.Fatalf("shard %d primary moved %s → %s on node join", s, prev[s].Primary, grown[s].Primary)
		}
	}

	shrunk := Rebalance(prev, []string{"n1", "n2"}, 1)
	for s := range prev {
		if shrunk[s].Primary != prev[s].Primary {
			t.Fatalf("shard %d primary moved %s → %s on a routing edit", s, prev[s].Primary, shrunk[s].Primary)
		}
		if prev[s].Primary == "n3" {
			// Orphaned: the whole route (followers included) is frozen so
			// failover can still promote from the recorded follower set.
			if len(shrunk[s].Followers) != len(prev[s].Followers) {
				t.Fatalf("shard %d orphaned route was edited: %v → %v", s, prev[s].Followers, shrunk[s].Followers)
			}
			continue
		}
		for _, f := range shrunk[s].Followers {
			if f == "n3" {
				t.Fatalf("shard %d keeps removed node %s as follower", s, f)
			}
		}
	}
}

// TestRouteTableHelpers: lookup, base resolution, and clone isolation.
func TestRouteTableHelpers(t *testing.T) {
	tab := &RouteTable{
		Version: 7,
		Shards:  Place([]string{"a", "b"}, 4, 1),
		Nodes:   map[string]string{"a": "http://a:1", "b": "http://b:2"},
	}
	if _, err := tab.Route(-1); err == nil {
		t.Fatal("negative shard accepted")
	}
	if _, err := tab.Route(4); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	base, err := tab.PrimaryBase(0)
	if err != nil || base == "" {
		t.Fatalf("PrimaryBase: %q, %v", base, err)
	}
	c := tab.Clone()
	c.Nodes["a"] = "mutated"
	c.Shards[0].Primary = "mutated"
	if tab.Nodes["a"] == "mutated" || tab.Shards[0].Primary == "mutated" {
		t.Fatal("Clone shares storage with the original")
	}
}
