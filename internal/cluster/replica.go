package cluster

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/serve"
)

// A Replica is a follower's warm copy of one shard: the full applied
// command log plus a live engine kept in lockstep by replaying each
// pushed tail. The engine is the digest-exchange witness — after every
// tail the replica's StateDigest must equal the digest the primary
// stamped on the tail, so divergence is caught at push time, not at
// promotion time.
//
// Replicas are owned by the node's replMu; methods are not safe for
// concurrent use.
type Replica struct {
	shard int
	eng   *core.Scheduler
	log   []core.Command
	// last is the most recent applied tail; its pending sets and
	// admission books make promotion lose no acknowledged command.
	last *serve.Tail
}

// errGap reports that a tail starts past the replica's log end; the
// follower answers the primary with the index it wants.
type errGap struct{ want int }

func (e errGap) Error() string { return fmt.Sprintf("cluster: tail gap, want log index %d", e.want) }

// wantIndex returns (index, true) when err is a replication gap.
func wantIndex(err error) (int, bool) {
	if g, ok := err.(errGap); ok {
		return g.want, true
	}
	return 0, false
}

// NewReplica returns an empty replica that accepts only a complete
// (From == 0) tail first.
func NewReplica(shard int) *Replica { return &Replica{shard: shard} }

// Len returns the replicated log length — the index the replica wants
// next.
func (r *Replica) Len() int { return len(r.log) }

// Now returns the replica engine's clock, or 0 before the first tail.
func (r *Replica) Now() int64 {
	if r.eng == nil {
		return 0
	}
	return r.eng.Now()
}

// Apply folds one pushed tail into the replica: append the new
// commands, replay them on the live engine up to the tail's clock, then
// verify the engine digest against the primary's. A tail starting past
// the log end is an errGap (the caller resyncs from the wanted index); a
// digest mismatch is a hard error (the caller must discard the replica
// and resync from 0). Overlapping tails — From inside the log — are
// fine: the overlap is skipped, only the suffix applies.
func (r *Replica) Apply(t *serve.Tail) error {
	if t.Shard != r.shard {
		return fmt.Errorf("cluster: tail for shard %d pushed to replica of %d", t.Shard, r.shard)
	}
	if r.eng == nil {
		if t.From != 0 {
			return errGap{want: 0}
		}
		ccfg, err := t.Config.CoreConfig()
		if err != nil {
			return fmt.Errorf("cluster: replica %d config: %w", r.shard, err)
		}
		eng, err := core.New(ccfg, t.Seed)
		if err != nil {
			return fmt.Errorf("cluster: replica %d seed: %w", r.shard, err)
		}
		r.eng = eng
	}
	if t.From > len(r.log) {
		return errGap{want: len(r.log)}
	}
	skip := len(r.log) - t.From
	if skip > len(t.Commands) {
		skip = len(t.Commands) // replica already past this tail's coverage
	}
	fresh := t.Commands[skip:]
	if err := r.eng.ReplayLog(fresh, t.Now); err != nil {
		return fmt.Errorf("cluster: replica %d replay: %w", r.shard, err)
	}
	r.log = append(r.log, fresh...)
	if got := r.eng.StateDigest(); got != t.Digest {
		return fmt.Errorf("cluster: replica %d digest mismatch at t=%d: replica %016x, primary %016x",
			r.shard, t.Now, got, t.Digest)
	}
	r.last = t
	return nil
}

// Snapshot assembles the full-shard snapshot a promotion installs: the
// latest tail's pending sets and admission books over the complete
// replicated log. Nil until the first tail has applied.
func (r *Replica) Snapshot() (*serve.Snapshot, error) {
	if r.last == nil {
		return nil, fmt.Errorf("cluster: replica %d has no tail to promote", r.shard)
	}
	return r.last.BuildSnapshot(r.log[:r.last.From])
}
