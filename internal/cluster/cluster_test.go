package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

// testNode is one in-process cluster member: a serve server wrapped by
// a Node, listening on an httptest server. The handler is swappable so
// the base URL exists before the Node does, and so a "crash" can be
// simulated by closing the listener and a "restart" by standing up a
// fresh node under a new base.
type testNode struct {
	id     string
	srv    *serve.Server
	node   *Node
	ts     *httptest.Server
	h      atomic.Value // hbox
	closed atomic.Bool
}

// hbox gives atomic.Value a single concrete type to store.
type hbox struct{ h http.Handler }

func newTestNode(t *testing.T, id string, shards int) *testNode {
	t.Helper()
	tn := &testNode{id: id}
	tn.h.Store(hbox{http.NotFoundHandler()})
	tn.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tn.h.Load().(hbox).h.ServeHTTP(w, r)
	}))
	srv, err := serve.New(serve.Options{Shards: shards, Config: serve.ShardConfig{M: 2}})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	cs := serve.NewClusterStats(shards)
	srv.AttachClusterStats(cs)
	node, err := NewNode(NodeOptions{
		ID: id, Base: tn.ts.URL, Server: srv, Stats: cs,
		Client:      &http.Client{Timeout: 2 * time.Second},
		GateTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	tn.srv, tn.node = srv, node
	tn.h.Store(hbox{node.Handler()})
	return tn
}

// crash kills the listener without draining — in-flight and future
// requests fail at the transport, like a killed process.
func (tn *testNode) crash() {
	if tn.closed.Swap(true) {
		return
	}
	tn.ts.CloseClientConnections()
	tn.ts.Close()
	tn.srv.Stop()
}

func (tn *testNode) close(t *testing.T) {
	t.Helper()
	if tn.closed.Swap(true) {
		return
	}
	tn.ts.Close()
	tn.srv.Stop()
}

// client follows 307s (Go re-sends the body automatically when GetBody
// is set, which http.Post does for byte readers).
func testClient() *http.Client { return &http.Client{Timeout: 5 * time.Second} }

func postJSON(t *testing.T, c *http.Client, url, body string) (int, []byte) {
	t.Helper()
	resp, err := c.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

// mustPost retries briefly on 503 (replication or hand-off windows) so
// tests survive the transient states they deliberately create.
func mustPost(t *testing.T, c *http.Client, url, body string) []byte {
	t.Helper()
	for attempt := 0; ; attempt++ {
		code, b := postJSON(t, c, url, body)
		if code == http.StatusOK {
			return b
		}
		if code == http.StatusServiceUnavailable && attempt < 40 {
			time.Sleep(50 * time.Millisecond)
			continue
		}
		t.Fatalf("POST %s: %d %s", url, code, b)
	}
}

func fetchTail(t *testing.T, c *http.Client, base string, shard int) *serve.Tail {
	t.Helper()
	resp, err := c.Get(fmt.Sprintf("%s/v1/shards/%d/log?from=0", base, shard))
	if err != nil {
		t.Fatalf("GET log shard %d: %v", shard, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET log shard %d: %d %s", shard, resp.StatusCode, b)
	}
	var tail serve.Tail
	if err := json.NewDecoder(resp.Body).Decode(&tail); err != nil {
		t.Fatal(err)
	}
	return &tail
}

func fetchStatus(t *testing.T, c *http.Client, base string, shard int) *serve.ShardStatus {
	t.Helper()
	resp, err := c.Get(fmt.Sprintf("%s/v1/shards/%d", base, shard))
	if err != nil {
		t.Fatalf("GET status shard %d: %v", shard, err)
	}
	defer resp.Body.Close()
	var st serve.ShardStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return &st
}

// verifyShard pulls the shard's complete tail through the cluster (any
// base; 307s route to the primary) and byte-compares its digest against
// a single core.Replay of the merged log — the cluster-level
// differential check.
func verifyShard(t *testing.T, c *http.Client, base string, shard int) *serve.Tail {
	t.Helper()
	tail := fetchTail(t, c, base, shard)
	digest, err := serve.VerifyTail(tail)
	if err != nil {
		t.Fatalf("shard %d: replaying merged log: %v", shard, err)
	}
	if digest != tail.Digest {
		t.Fatalf("shard %d: replayed digest %016x != cluster digest %016x", shard, digest, tail.Digest)
	}
	return tail
}

// TestClusterDifferential is the capstone: a 3-node cluster under
// joins, reweights, and advances, with one live migration under load
// and one primary-death failover, finishing with every shard's digest
// byte-identical to a fresh core.Replay of its merged log and zero
// failed applies anywhere.
func TestClusterDifferential(t *testing.T) {
	const shards = 4
	nodes := []*testNode{
		newTestNode(t, "n1", shards),
		newTestNode(t, "n2", shards),
		newTestNode(t, "n3", shards),
	}
	coord, err := NewCoordinator(CoordinatorOptions{
		Shards: shards, Replicas: 2, MinNodes: 3, HeartbeatMisses: 2,
		Client: &http.Client{Timeout: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(coord.Handler())
	defer cts.Close()

	for _, tn := range nodes {
		if err := tn.node.Register(cts.URL); err != nil {
			t.Fatal(err)
		}
	}
	tab := coord.Table()
	if tab == nil || tab.Version == 0 {
		t.Fatal("coordinator did not place after 3 registrations")
	}
	for _, tn := range nodes {
		if got := tn.node.Table(); got == nil || got.Version != tab.Version {
			t.Fatalf("node %s did not receive table v%d", tn.id, tab.Version)
		}
	}

	c := testClient()
	entry := nodes[0].ts.URL // all traffic enters here; 307s fan it out

	// Phase 1 — joins, advances, reweights on every shard.
	for s := 0; s < shards; s++ {
		for i := 0; i < 3; i++ {
			mustPost(t, c, fmt.Sprintf("%s/v1/shards/%d/commands", entry, s),
				fmt.Sprintf(`{"op":"join","task":"s%dt%d","weight":"1/8"}`, s, i))
		}
		mustPost(t, c, fmt.Sprintf("%s/v1/shards/%d/advance", entry, s), `{"slots":3}`)
		mustPost(t, c, fmt.Sprintf("%s/v1/shards/%d/commands", entry, s),
			fmt.Sprintf(`{"op":"reweight","task":"s%dt0","weight":"1/4"}`, s))
	}

	// Phase 2 — live migration of shard 1 while a writer hammers it.
	migShard := 1
	oldPrimary := tab.Shards[migShard].Primary
	var target string
	for _, tn := range nodes {
		if tn.id != oldPrimary {
			target = tn.id
			break
		}
	}
	stop := make(chan struct{})
	writerDone := make(chan int)
	go func() {
		writes := 0
		for i := 0; ; i++ {
			select {
			case <-stop:
				writerDone <- writes
				return
			default:
			}
			code, _ := postJSON(t, c, fmt.Sprintf("%s/v1/shards/%d/commands", entry, migShard),
				fmt.Sprintf(`{"op":"join","task":"mig%d","weight":"1/64"}`, i))
			if code == http.StatusOK {
				writes++
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	prom, err := coord.MigrateShard(migShard, target)
	if err != nil {
		t.Fatalf("migrating shard %d to %s: %v", migShard, target, err)
	}
	close(stop)
	acked := <-writerDone
	if acked == 0 {
		t.Fatal("writer landed no acked writes around the migration")
	}
	tab = coord.Table()
	if tab.Shards[migShard].Primary != target {
		t.Fatalf("table still routes shard %d to %s", migShard, tab.Shards[migShard].Primary)
	}
	// Every write acked before/around the hand-off must be in the log the
	// new primary serves. Admitted commands sit in the pending batch
	// until a slot boundary, so advance once to flush them into the log.
	mustPost(t, c, fmt.Sprintf("%s/v1/shards/%d/advance", entry, migShard), `{"slots":1}`)
	mtail := verifyShard(t, c, entry, migShard)
	joins := 0
	for _, cmd := range mtail.Commands {
		if strings.HasPrefix(cmd.Task, "mig") {
			joins++
		}
	}
	if joins < acked {
		t.Fatalf("migration lost acked writes: %d acked, %d in merged log", acked, joins)
	}
	if prom.Digest == 0 || mtail.Total != prom.Log+countSince(mtail, prom.Log) {
		t.Fatalf("inconsistent promote response: log %d of %d", prom.Log, mtail.Total)
	}

	// Phase 3 — kill shard 0's primary outright; the coordinator's
	// health checks promote a follower.
	deadID := tab.Shards[0].Primary
	var dead *testNode
	for _, tn := range nodes {
		if tn.id == deadID {
			dead = tn
		}
	}
	if dead == nil {
		t.Fatalf("primary %s of shard 0 is not a test node", deadID)
	}
	if entry == dead.ts.URL {
		for _, tn := range nodes {
			if tn != dead {
				entry = tn.ts.URL
				break
			}
		}
	}
	dead.crash()
	coord.CheckNodes()
	coord.CheckNodes() // second miss crosses the threshold
	tab = coord.Table()
	for s := 0; s < shards; s++ {
		if tab.Shards[s].Primary == deadID {
			t.Fatalf("shard %d still routed to dead node %s", s, deadID)
		}
	}

	// Phase 4 — the cluster keeps taking writes after the failover.
	for s := 0; s < shards; s++ {
		mustPost(t, c, fmt.Sprintf("%s/v1/shards/%d/commands", entry, s),
			fmt.Sprintf(`{"op":"join","task":"post%d","weight":"1/16"}`, s))
		mustPost(t, c, fmt.Sprintf("%s/v1/shards/%d/advance", entry, s), `{"slots":2}`)
	}

	// Final — differential check on every shard, and zero failed applies
	// on every surviving node.
	for s := 0; s < shards; s++ {
		verifyShard(t, c, entry, s)
		st := fetchStatus(t, c, entry, s)
		if st.FailedApplies != 0 {
			t.Fatalf("shard %d reports %d failed applies", s, st.FailedApplies)
		}
		if st.ClusterRole != "primary" {
			t.Fatalf("shard %d status came from a %q, not the primary", s, st.ClusterRole)
		}
	}
	for _, tn := range nodes {
		if tn == dead {
			continue
		}
		ok, fail := tn.node.Stats().Migrations()
		if tn.id == oldPrimary && (ok != 1 || fail != 0) {
			t.Fatalf("source node %s counted (ok=%d, fail=%d) migrations", tn.id, ok, fail)
		}
		resp, err := c.Get(tn.ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		for _, want := range []string{"pd2d_cluster_role{shard=\"0\"}", "pd2d_repl_lag_slots{shard=\"0\"}", "pd2d_migrations_total{result=\"ok\"}"} {
			if !bytes.Contains(b, []byte(want)) {
				t.Fatalf("node %s /metrics misses %s", tn.id, want)
			}
		}
		tn.close(t)
	}
}

// countSince counts merged-log commands at indices >= n (the writes the
// old primary drained to the new one after promotion).
func countSince(t *serve.Tail, n int) int {
	if n > t.Total {
		return 0
	}
	return t.Total - n
}

// TestFollowerCrashMidStream: killing a follower mid-replication leaves
// the shard routable (writes resume once the follower is back and
// resynced) and digest-clean.
func TestFollowerCrashMidStream(t *testing.T) {
	const shards = 2
	n1 := newTestNode(t, "n1", shards)
	defer n1.close(t)
	n2 := newTestNode(t, "n2", shards)
	coord, err := NewCoordinator(CoordinatorOptions{
		Shards: shards, Replicas: 1, MinNodes: 2,
		Client: &http.Client{Timeout: time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(coord.Handler())
	defer cts.Close()
	if err := n1.node.Register(cts.URL); err != nil {
		t.Fatal(err)
	}
	if err := n2.node.Register(cts.URL); err != nil {
		t.Fatal(err)
	}
	tab := coord.Table()

	// Find a shard n1 leads and n2 follows.
	shard := -1
	for s, r := range tab.Shards {
		if r.Primary == "n1" {
			shard = s
			break
		}
	}
	if shard < 0 {
		n1, n2 = n2, n1 // swap so n1 is a primary of something
		for s, r := range tab.Shards {
			if r.Primary == n1.id {
				shard = s
				break
			}
		}
	}
	c := testClient()
	url := fmt.Sprintf("%s/v1/shards/%d/commands", n1.ts.URL, shard)
	mustPost(t, c, url, `{"op":"join","task":"a","weight":"1/4"}`)

	// Crash the follower mid-stream: the next write must NOT be acked
	// (sync replication cannot reach the follower).
	n2.crash()
	code, _ := postJSON(t, c, url, `{"op":"join","task":"b","weight":"1/4"}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("write with dead follower answered %d, want 503", code)
	}

	// "Restart" the follower: a fresh process under a new base,
	// re-registering with the same identity. It resyncs from index 0.
	n2r := newTestNode(t, n2.id, shards)
	defer n2r.close(t)
	if err := n2r.node.Register(cts.URL); err != nil {
		t.Fatal(err)
	}
	// Writes flow again (the first may race the table re-push; mustPost
	// absorbs transient 503s), and the log — including the un-acked "b"
	// the primary kept — verifies clean after a boundary flush.
	mustPost(t, c, url, `{"op":"join","task":"c","weight":"1/4"}`)
	mustPost(t, c, fmt.Sprintf("%s/v1/shards/%d/advance", n1.ts.URL, shard), `{"slots":1}`)
	tail := verifyShard(t, c, n1.ts.URL, shard)
	if tail.Total < 3 {
		t.Fatalf("merged log holds %d commands, want >= 3", tail.Total)
	}
	// And the follower's replica caught up to the full log.
	st := fetchStatus(t, c, n1.ts.URL, shard)
	if st.FailedApplies != 0 {
		t.Fatalf("%d failed applies after follower restart", st.FailedApplies)
	}
}

// TestReceiverCrashMidMigration: a migration to a dead receiver aborts
// cleanly — the gate reopens, the source keeps the shard, the failure
// is counted, and the digest stays clean.
func TestReceiverCrashMidMigration(t *testing.T) {
	const shards = 2
	n1 := newTestNode(t, "n1", shards)
	defer n1.close(t)
	n2 := newTestNode(t, "n2", shards)
	coord, err := NewCoordinator(CoordinatorOptions{
		Shards: shards, Replicas: 1, MinNodes: 2, HeartbeatMisses: 2,
		Client: &http.Client{Timeout: time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(coord.Handler())
	defer cts.Close()
	if err := n1.node.Register(cts.URL); err != nil {
		t.Fatal(err)
	}
	if err := n2.node.Register(cts.URL); err != nil {
		t.Fatal(err)
	}
	tab := coord.Table()
	shard := -1
	for s, r := range tab.Shards {
		if r.Primary == "n1" {
			shard = s
			break
		}
	}
	if shard < 0 {
		n1, n2 = n2, n1
		for s, r := range tab.Shards {
			if r.Primary == n1.id {
				shard = s
				break
			}
		}
	}
	c := testClient()
	url := fmt.Sprintf("%s/v1/shards/%d/commands", n1.ts.URL, shard)
	mustPost(t, c, url, `{"op":"join","task":"a","weight":"1/4"}`)

	// Kill the receiver, then ask for a migration onto it. The
	// coordinator still believes it is alive (no heartbeat ran), so the
	// source discovers the death mid-stream and must abort.
	n2.crash()
	if _, err := coord.MigrateShard(shard, n2.id); err == nil {
		t.Fatal("migration to a dead receiver reported success")
	}
	if ok, fail := n1.node.Stats().Migrations(); ok != 0 || fail != 1 {
		t.Fatalf("source counted (ok=%d, fail=%d), want (0, 1)", ok, fail)
	}
	// The shard is still here and still routable; the gate reopened.
	// (Writes need the follower back for sync replication.)
	n2r := newTestNode(t, n2.id, shards)
	defer n2r.close(t)
	if err := n2r.node.Register(cts.URL); err != nil {
		t.Fatal(err)
	}
	mustPost(t, c, url, `{"op":"join","task":"b","weight":"1/4"}`)
	mustPost(t, c, fmt.Sprintf("%s/v1/shards/%d/advance", n1.ts.URL, shard), `{"slots":1}`)
	tail := verifyShard(t, c, n1.ts.URL, shard)
	if tail.Total != 2 {
		t.Fatalf("merged log holds %d commands, want 2", tail.Total)
	}
	tabNow := coord.Table()
	if tabNow.Shards[shard].Primary != n1.id {
		t.Fatalf("aborted migration still moved the route to %s", tabNow.Shards[shard].Primary)
	}
}

// TestTablePromoteRefusesWithoutState: a pushed table naming this node
// primary must not flip the role unless the node actually holds the
// shard's state. Only the initial placement (version 1 — no write can
// have been acked before the first table existed) seeds from the local
// engine; any later table is refused when the node has no replica, so
// an empty or stale node can never silently serve a shard whose acked
// writes live elsewhere.
func TestTablePromoteRefusesWithoutState(t *testing.T) {
	tn := newTestNode(t, "n1", 1)
	defer tn.close(t)
	v2 := &RouteTable{
		Version: 2,
		Shards:  []ShardRoute{{Shard: 0, Primary: "n1"}},
		Nodes:   map[string]string{"n1": tn.ts.URL},
	}
	tn.node.UpdateTable(v2)
	if got := tn.node.roleOf(0); got != RoleNone {
		t.Fatalf("empty node took the crown from a v2 table: role %d", got)
	}

	// The genuine fresh-cluster seed: version 1 crowns the local state.
	tn2 := newTestNode(t, "n2", 1)
	defer tn2.close(t)
	v1 := &RouteTable{
		Version: 1,
		Shards:  []ShardRoute{{Shard: 0, Primary: "n2"}},
		Nodes:   map[string]string{"n2": tn2.ts.URL},
	}
	tn2.node.UpdateTable(v1)
	if got := tn2.node.roleOf(0); got != RolePrimary {
		t.Fatalf("initial placement did not seed the primary: role %d", got)
	}
}

// TestOrphanShardStaysUnrouted: when a shard loses both its primary and
// its only follower, no survivor holds the state, so the coordinator
// must leave the shard routed at its dead primary (unrouted in
// practice) rather than crown a rank-chosen survivor — and further
// heartbeat rounds and registrations must not reassign it either.
func TestOrphanShardStaysUnrouted(t *testing.T) {
	const shards = 4
	byID := map[string]*testNode{}
	coord, err := NewCoordinator(CoordinatorOptions{
		Shards: shards, Replicas: 1, MinNodes: 3, HeartbeatMisses: 2,
		Client: &http.Client{Timeout: time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(coord.Handler())
	defer cts.Close()
	for _, id := range []string{"n1", "n2", "n3"} {
		tn := newTestNode(t, id, shards)
		byID[id] = tn
		if err := tn.node.Register(cts.URL); err != nil {
			t.Fatal(err)
		}
	}
	tab := coord.Table()
	doomed := 0
	primary := tab.Shards[doomed].Primary
	follower := tab.Shards[doomed].Followers[0]
	survivorID := ""
	for id := range byID {
		if id != primary && id != follower {
			survivorID = id
		}
	}
	survivor := byID[survivorID]
	defer survivor.close(t)

	// Land an acked write on the doomed shard so losing it would matter.
	c := testClient()
	mustPost(t, c, fmt.Sprintf("%s/v1/shards/%d/commands", byID[primary].ts.URL, doomed),
		`{"op":"join","task":"a","weight":"1/4"}`)

	byID[primary].crash()
	byID[follower].crash()
	coord.CheckNodes()
	coord.CheckNodes() // second miss crosses the threshold
	coord.CheckNodes() // retry round: still no holder of the state
	tab = coord.Table()
	if got := tab.Shards[doomed].Primary; got != primary {
		t.Fatalf("orphaned shard %d reassigned %s → %s without a verified promote", doomed, primary, got)
	}
	if got := survivor.node.roleOf(doomed); got == RolePrimary {
		t.Fatalf("survivor %s took primary for shard %d without the state", survivorID, doomed)
	}
	// A registration-triggered rebalance must not crown the survivor
	// either.
	late := newTestNode(t, "n4", shards)
	defer late.close(t)
	if err := late.node.Register(cts.URL); err != nil {
		t.Fatal(err)
	}
	tab = coord.Table()
	if got := tab.Shards[doomed].Primary; got != primary {
		t.Fatalf("join rebalance reassigned orphaned shard %d %s → %s", doomed, primary, got)
	}
	if got := late.node.roleOf(doomed); got != RoleNone {
		t.Fatalf("late joiner holds role %d for the orphaned shard", got)
	}
}

// BenchmarkClusterMigration measures one full live hand-off (warm
// stream, freeze, final delta, digest-checked promote, demote) of a
// shard with a populated log, ping-ponging between two nodes.
func BenchmarkClusterMigration(b *testing.B) {
	const shards = 1
	mk := func(id string) *testNode {
		tn := &testNode{id: id}
		tn.h.Store(hbox{http.NotFoundHandler()})
		tn.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			tn.h.Load().(hbox).h.ServeHTTP(w, r)
		}))
		srv, err := serve.New(serve.Options{Shards: shards, Config: serve.ShardConfig{M: 2}})
		if err != nil {
			b.Fatal(err)
		}
		srv.Start()
		cs := serve.NewClusterStats(shards)
		srv.AttachClusterStats(cs)
		node, err := NewNode(NodeOptions{ID: id, Base: tn.ts.URL, Server: srv, Stats: cs,
			Client: &http.Client{Timeout: 5 * time.Second}})
		if err != nil {
			b.Fatal(err)
		}
		tn.srv, tn.node = srv, node
		tn.h.Store(hbox{node.Handler()})
		return tn
	}
	n1, n2 := mk("n1"), mk("n2")
	defer func() { n1.ts.Close(); n1.srv.Stop(); n2.ts.Close(); n2.srv.Stop() }()
	coord, err := NewCoordinator(CoordinatorOptions{Shards: shards, Replicas: 1, MinNodes: 2,
		Client: &http.Client{Timeout: 5 * time.Second}})
	if err != nil {
		b.Fatal(err)
	}
	cts := httptest.NewServer(coord.Handler())
	defer cts.Close()
	if err := n1.node.Register(cts.URL); err != nil {
		b.Fatal(err)
	}
	if err := n2.node.Register(cts.URL); err != nil {
		b.Fatal(err)
	}
	c := testClient()
	primary := coord.Table().Shards[0].Primary
	base := n1.ts.URL
	for i := 0; i < 64; i++ {
		body := fmt.Sprintf(`{"op":"join","task":"t%d","weight":"1/128"}`, i)
		resp, err := c.Post(base+"/v1/shards/0/commands", "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	other := map[string]string{"n1": "n2", "n2": "n1"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		target := other[primary]
		if _, err := coord.MigrateShard(0, target); err != nil {
			b.Fatalf("iteration %d: %v", i, err)
		}
		primary = target
	}
}
