package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/serve"
)

// Primary-side replication push and the follower/migration endpoints.

// replicate is the anti-entropy push: skips followers that look caught
// up (same log length and clock). An admitted-but-unapplied command
// changes neither, so the mutation ack path must use replicateSync —
// this cheap form only heals laggards and carries tick progress.
func (n *Node) replicate(shard int) error { return n.replicateMode(shard, false) }

// replicateSync pushes the shard's tail to every follower
// unconditionally and returns nil only when all of them acked — the
// condition a mutation ack waits on. Unconditional because a freshly
// admitted command rides in the tail's pending batch without growing
// the log, which the caught-up check cannot see.
func (n *Node) replicateSync(shard int) error { return n.replicateMode(shard, true) }

func (n *Node) replicateMode(shard int, force bool) error {
	tab := n.Table()
	if tab == nil || shard >= len(tab.Shards) {
		return nil
	}
	st := &n.states[shard]
	st.replMu.Lock()
	defer st.replMu.Unlock()
	//lint:allow lockorder replMu exists to serialize pushes against each other without st.mu: a slow follower round trip blocks only other pushes of the same shard, never reads or the migration gate
	return n.replicatePush(shard, st, tab.Shards[shard], tab, force)
}

// replicatePush does the push with st.replMu held. st.mu is taken only
// to snapshot and reconcile follower progress around the network round
// trips, so reads and the gate path never wait on a follower, and two
// transient primaries pushing the same shard at each other cannot
// deadlock (handleRepl needs only st.mu, which is free mid-push).
func (n *Node) replicatePush(shard int, st *shardState, route ShardRoute, tab *RouteTable, force bool) error {
	type target struct {
		id string
		fs followerState // working copy; reconciled under st.mu after
	}
	st.mu.Lock()
	if st.role != RolePrimary {
		st.mu.Unlock()
		return fmt.Errorf("cluster: shard %d is no longer primary here", shard)
	}
	if st.frozen {
		st.mu.Unlock()
		return fmt.Errorf("cluster: shard %d is handing off", shard)
	}
	if st.followers == nil {
		st.followers = make(map[string]*followerState)
	}
	var targets []target
	minAcked := -1
	for _, fid := range route.Followers {
		if fid == n.id {
			continue
		}
		fs, ok := st.followers[fid]
		if !ok {
			fs = &followerState{}
			st.followers[fid] = fs
		}
		targets = append(targets, target{id: fid, fs: *fs})
		if minAcked < 0 || fs.acked < minAcked {
			minAcked = fs.acked
		}
	}
	st.mu.Unlock()
	if minAcked < 0 {
		n.cs.SetReplLag(shard, 0)
		return nil // no followers configured
	}
	tail, err := n.srv.ShardTail(shard, minAcked)
	if err != nil {
		// The log may have been replaced shorter than acked (reinstall);
		// fall back to a complete tail.
		tail, err = n.srv.ShardTail(shard, 0)
		if err != nil {
			return err
		}
	}
	var firstErr error
	var maxLag int64
	for i := range targets {
		tg := &targets[i]
		if !force && tg.fs.acked == tail.Total && tg.fs.now == tail.Now && !tg.fs.stale {
			continue // caught up (as far as log and clock can tell)
		}
		base := tab.Nodes[tg.id]
		if base == "" {
			tg.fs.stale = true
			if firstErr == nil {
				firstErr = fmt.Errorf("follower %s has no known base", tg.id)
			}
			continue
		}
		if err := n.pushToFollower(shard, base, tail, &tg.fs); err != nil {
			tg.fs.stale = true
			if firstErr == nil {
				firstErr = fmt.Errorf("follower %s: %w", tg.id, err)
			}
			continue
		}
		tg.fs.stale = false
		if lag := tail.Now - tg.fs.now; lag > maxLag {
			maxLag = lag
		}
	}
	// Reconcile progress, unless the shard was demoted or its follower
	// set replaced while we pushed — then the acks describe a role this
	// node no longer holds.
	st.mu.Lock()
	if st.role == RolePrimary && st.followers != nil {
		for i := range targets {
			if fs, ok := st.followers[targets[i].id]; ok {
				*fs = targets[i].fs
			}
		}
	}
	st.mu.Unlock()
	n.cs.SetReplLag(shard, maxLag)
	return firstErr
}

// pushToFollower sends the sub-tail the follower needs, following at
// most a few want-redirects (gap or refused pushes).
func (n *Node) pushToFollower(shard int, base string, tail *serve.Tail, fs *followerState) error {
	from := fs.acked
	for attempt := 0; attempt < 3; attempt++ {
		sub, err := subTail(tail, from)
		if err != nil {
			// The follower wants history older than the fetched tail; cut a
			// fresh one from its index.
			sub, err = n.srv.ShardTail(shard, from)
			if err != nil {
				return err
			}
		}
		ack, status, err := n.postTail(base, shard, sub)
		if err != nil {
			return err
		}
		switch status {
		case http.StatusOK:
			fs.acked, fs.now = ack.Acked, ack.Now
			return nil
		case http.StatusConflict:
			if ack.Want < 0 {
				return fmt.Errorf("push refused (receiver believes it is primary)")
			}
			from = ack.Want
		default:
			return fmt.Errorf("push answered %d", status)
		}
	}
	return fmt.Errorf("push did not converge after 3 attempts")
}

// subTail narrows a tail to start at `from` without refetching; errors
// when from precedes the tail's coverage.
func subTail(t *serve.Tail, from int) (*serve.Tail, error) {
	if from < t.From {
		return nil, fmt.Errorf("cluster: tail covers [%d,%d), need %d", t.From, t.Total, from)
	}
	if from == t.From {
		return t, nil
	}
	if from > t.Total {
		return nil, fmt.Errorf("cluster: from %d past log end %d", from, t.Total)
	}
	c := *t
	c.From = from
	c.Commands = t.Commands[from-t.From:]
	return &c, nil
}

// postTail POSTs one tail to a peer's repl endpoint.
func (n *Node) postTail(base string, shard int, t *serve.Tail) (replAck, int, error) {
	body, err := json.Marshal(t)
	if err != nil {
		return replAck{}, 0, err
	}
	url := fmt.Sprintf("%s/v1/cluster/shards/%d/repl", base, shard)
	resp, err := n.client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return replAck{}, 0, err
	}
	defer func() { _ = resp.Body.Close() }()
	var ack replAck
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusConflict {
		if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
			return replAck{}, resp.StatusCode, err
		}
	}
	return ack, resp.StatusCode, nil
}

// handleRepl is the follower half of the push: fold the tail into the
// local replica and ack with the new log length, or answer 409 with the
// index this node wants.
func (n *Node) handleRepl(w http.ResponseWriter, r *http.Request) {
	shard, ok := n.clusterShard(w, r)
	if !ok {
		return
	}
	var t serve.Tail
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&t); err != nil {
		writeClusterError(w, http.StatusBadRequest, "invalid", "decoding tail: "+err.Error())
		return
	}
	st := &n.states[shard]
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.role == RolePrimary {
		// Split-brain guard: a primary never accepts pushes.
		writeJSONStatus(w, http.StatusConflict, replAck{Want: -1})
		return
	}
	if st.replica == nil {
		// First contact (fresh follower or incoming migration stream).
		st.replica = NewReplica(shard)
	}
	if err := st.replica.Apply(&t); err != nil {
		if want, ok := wantIndex(err); ok {
			writeJSONStatus(w, http.StatusConflict, replAck{Want: want})
			return
		}
		// Divergence (digest mismatch or replay failure): drop the replica
		// and ask for a full resync.
		log.Printf("cluster: node %s shard %d replica reset: %v", n.id, shard, err)
		st.replica = nil
		writeJSONStatus(w, http.StatusConflict, replAck{Want: 0})
		return
	}
	n.cs.SetReplLag(shard, 0) // in lockstep with the primary's push
	writeJSONStatus(w, http.StatusOK, replAck{Acked: st.replica.Len(), Now: st.replica.Now()})
}

// handlePromote installs this node's replica as the live shard and
// takes the primary role. Idempotent: an already-primary node re-acks
// with its current state. The install path replays the full log and
// verifies the digest (serve.InstallShard), so a diverged replica can
// never take over silently.
func (n *Node) handlePromote(w http.ResponseWriter, r *http.Request) {
	shard, ok := n.clusterShard(w, r)
	if !ok {
		return
	}
	st := &n.states[shard]
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.role == RolePrimary {
		//lint:allow lockorder the idempotent re-ack reads the tail under st.mu so the answered state cannot race a demotion
		tail, err := n.srv.ShardTail(shard, 0)
		if err != nil {
			writeClusterError(w, http.StatusInternalServerError, "promote", err.Error())
			return
		}
		writeJSONStatus(w, http.StatusOK, PromoteResponse{Shard: shard, Digest: tail.Digest, Now: tail.Now, Log: tail.Total})
		return
	}
	if st.replica == nil || st.replica.last == nil {
		writeClusterError(w, http.StatusConflict, "no_replica",
			fmt.Sprintf("shard %d has no replicated state to promote", shard))
		return
	}
	snap, err := st.replica.Snapshot()
	if err != nil {
		writeClusterError(w, http.StatusInternalServerError, "promote", err.Error())
		return
	}
	//lint:allow lockorder the verified install must land before the role flips to primary, so it runs under st.mu
	if err := n.srv.InstallShard(snap); err != nil {
		writeClusterError(w, http.StatusConflict, "promote", "install: "+err.Error())
		return
	}
	st.role = RolePrimary
	st.replica = nil
	st.forward = ""
	st.followers = make(map[string]*followerState)
	n.cs.SetRole(shard, RolePrimary)
	writeJSONStatus(w, http.StatusOK, PromoteResponse{Shard: shard, Digest: snap.Digest, Now: snap.Now, Log: len(snap.Log)})
}

// handleMigrate hands the shard to the target node: stream the full
// state while writes continue, freeze the gate, push the final delta,
// promote the target (digest-checked), then demote and drain queued
// writes to the new primary. On any failure the gate reopens and the
// shard stays here.
func (n *Node) handleMigrate(w http.ResponseWriter, r *http.Request) {
	shard, ok := n.clusterShard(w, r)
	if !ok {
		return
	}
	var req migrateRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		writeClusterError(w, http.StatusBadRequest, "invalid", "decoding migrate: "+err.Error())
		return
	}
	if req.TargetBase == "" || req.TargetID == n.id {
		writeClusterError(w, http.StatusBadRequest, "invalid", "migrate needs a target other than the source")
		return
	}
	st := &n.states[shard]
	st.mu.Lock()
	if st.role != RolePrimary || st.frozen || st.migrating {
		st.mu.Unlock()
		writeClusterError(w, http.StatusConflict, "not_primary",
			fmt.Sprintf("shard %d is not an idle primary here", shard))
		return
	}
	// Claim the shard for this migration so a second concurrent migrate
	// cannot start a duplicate warm stream; the hand-off itself
	// re-validates role and gate after it reacquires st.mu.
	st.migrating = true
	st.mu.Unlock()
	defer func() {
		st.mu.Lock()
		st.migrating = false
		st.mu.Unlock()
	}()

	// Phase 1 — warm stream outside the gate: writes keep flowing while
	// the bulk of the log crosses over.
	fs := &followerState{}
	warm := func() error {
		for round := 0; round < 5; round++ {
			tail, err := n.srv.ShardTail(shard, fs.acked)
			if err != nil {
				tail, err = n.srv.ShardTail(shard, 0)
				if err != nil {
					return err
				}
			}
			if err := n.pushToFollower(shard, req.TargetBase, tail, fs); err != nil {
				return err
			}
			if fs.acked >= tail.Total {
				return nil
			}
		}
		return fmt.Errorf("warm stream did not converge")
	}
	if err := warm(); err != nil {
		n.cs.MigrationDone(false)
		writeClusterError(w, http.StatusBadGateway, "migrate", "warm stream: "+err.Error())
		return
	}

	prom, stage, err := n.migrateHandoff(shard, &req, fs)
	if err != nil {
		n.cs.MigrationDone(false)
		log.Printf("cluster: node %s shard %d migration to %s failed at %s: %v", n.id, shard, req.TargetID, stage, err)
		writeClusterError(w, http.StatusBadGateway, "migrate", stage+": "+err.Error())
		return
	}
	n.cs.SetRole(shard, RoleFollower)
	n.cs.MigrationDone(true)
	writeJSONStatus(w, http.StatusOK, prom)
}

// migrateHandoff is phase 2 of the migration: freeze the gate, push the
// final delta, promote the target (digest-checked), then demote this
// node to a forwarding follower. New writes queue at the gate;
// in-flight ones either made the final tail or fail their replication
// ack (so nothing acked can be missing on the target). On error the
// deferred reopen leaves the shard primary here, and the returned stage
// names the failed step. st.mu is held for the whole hand-off so queued
// writes observe either the old primary or the demoted forwarder, never
// a half-migrated shard.
func (n *Node) migrateHandoff(shard int, req *migrateRequest, fs *followerState) (PromoteResponse, string, error) {
	st := &n.states[shard]
	st.mu.Lock()
	froze := false
	defer func() {
		if froze {
			st.frozen = false
			close(st.unfrozen)
		}
		st.mu.Unlock()
	}()
	if st.role != RolePrimary || st.frozen {
		// The shard was demoted (failover, table push) or another gate
		// closed while the warm stream ran without the lock; handing off
		// now could cut a stale final tail or promote a second primary.
		return PromoteResponse{}, "handoff", fmt.Errorf("shard %d is no longer an idle primary here", shard)
	}
	st.frozen = true
	st.unfrozen = make(chan struct{})
	froze = true
	// The final delta and promote round trips deliberately run with
	// st.mu held: the gate freeze IS the serialization point, and every
	// other acquirer (mutations, replication pushes) must queue behind
	// it until the hand-off lands or is rolled back.
	//lint:allow lockorder the migration gate holds st.mu across the final delta by design; queued writers wait on st.unfrozen
	final, err := n.srv.ShardTail(shard, fs.acked)
	if err != nil {
		return PromoteResponse{}, "final tail", err
	}
	//lint:allow lockorder the final push runs under the closed gate so no acked write can miss the target
	if err := n.pushToFollower(shard, req.TargetBase, final, fs); err != nil {
		return PromoteResponse{}, "final push", err
	}
	if fs.acked != final.Total {
		return PromoteResponse{}, "final push", fmt.Errorf("target acked %d of %d", fs.acked, final.Total)
	}
	prom, err := n.postPromote(req.TargetBase, shard)
	if err != nil {
		return PromoteResponse{}, "promote", err
	}
	if prom.Digest != final.Digest || prom.Log != final.Total {
		return PromoteResponse{}, "promote", fmt.Errorf("target took over at (log=%d, %016x), expected (log=%d, %016x)",
			prom.Log, prom.Digest, final.Total, final.Digest)
	}
	// Hand-off done: demote, keep a warm replica seeded from the local
	// log (no network round trip), and drain queued writes forward.
	st.role = RoleFollower
	st.followers = nil
	st.forward = req.TargetBase
	rep := NewReplica(shard)
	//lint:allow lockorder seeding the warm replica from the local log happens before the gate reopens so the demoted state is complete
	if full, err := n.srv.ShardTail(shard, 0); err == nil {
		if err := rep.Apply(full); err == nil {
			st.replica = rep
		} else {
			st.replica = nil
		}
	}
	return prom, "", nil
}

// postPromote asks a peer to take over the shard.
func (n *Node) postPromote(base string, shard int) (PromoteResponse, error) {
	url := fmt.Sprintf("%s/v1/cluster/shards/%d/promote", base, shard)
	resp, err := n.client.Post(url, "application/json", nil)
	if err != nil {
		return PromoteResponse{}, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		var e serve.ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return PromoteResponse{}, fmt.Errorf("promote answered %d (%s: %s)", resp.StatusCode, e.Error, e.Reason)
	}
	var prom PromoteResponse
	if err := json.NewDecoder(resp.Body).Decode(&prom); err != nil {
		return PromoteResponse{}, err
	}
	return prom, nil
}

// handleRoutePush installs a table pushed by the coordinator.
func (n *Node) handleRoutePush(w http.ResponseWriter, r *http.Request) {
	var tab RouteTable
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&tab); err != nil {
		writeClusterError(w, http.StatusBadRequest, "invalid", "decoding route table: "+err.Error())
		return
	}
	n.UpdateTable(&tab)
	cur := n.Table()
	w.Header().Set(RouteVersionHeader, strconv.FormatInt(cur.Version, 10))
	writeJSONStatus(w, http.StatusOK, map[string]int64{"version": cur.Version})
}

// handleRouteGet serves the node's cached table, so clients can refresh
// from any node they already talk to.
func (n *Node) handleRouteGet(w http.ResponseWriter, r *http.Request) {
	tab := n.Table()
	if tab == nil {
		writeClusterError(w, http.StatusServiceUnavailable, "no_route", "node has no routing table yet")
		return
	}
	w.Header().Set(RouteVersionHeader, strconv.FormatInt(tab.Version, 10))
	writeJSONStatus(w, http.StatusOK, tab)
}

// clusterShard parses the {shard} path value for the cluster endpoints.
func (n *Node) clusterShard(w http.ResponseWriter, r *http.Request) (int, bool) {
	id, err := strconv.Atoi(r.PathValue("shard"))
	if err != nil || id < 0 || id >= len(n.states) {
		writeClusterError(w, http.StatusNotFound, "unknown_shard",
			fmt.Sprintf("shard %q not in [0,%d)", r.PathValue("shard"), len(n.states)))
		return 0, false
	}
	return id, true
}

func writeJSONStatus(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// WaitHealthy polls a base's /healthz until it answers or the deadline
// passes — a convenience for process orchestration (cmd, scripts).
func WaitHealthy(client *http.Client, base string, deadline time.Duration) error {
	//lint:allow determinism health polling is process orchestration, not simulation; the wall clock never reaches a scheduling decision
	stop := time.Now().Add(deadline)
	for {
		resp, err := client.Get(strings.TrimRight(base, "/") + "/healthz")
		if err == nil {
			_ = resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		//lint:allow determinism deadline check on the same orchestration clock
		if time.Now().After(stop) {
			if err != nil {
				return fmt.Errorf("cluster: %s never became healthy: %w", base, err)
			}
			return fmt.Errorf("cluster: %s never became healthy", base)
		}
		time.Sleep(25 * time.Millisecond)
	}
}
