package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Rendezvous (highest-random-weight) placement. Every (node, shard)
// pair gets a score from a stable hash; a shard's primary is the
// highest-scoring node, its followers the next ones down. Adding a node
// moves only the shards the new node now wins — no global reshuffle —
// and removing a node only re-homes the shards it held. The same
// property, applied to the follower ranks, keeps replica sets stable.

// score ranks node n for shard s. FNV-1a over "node\x00shard" keeps the
// function dependency-free and identical across processes, which is all
// rendezvous hashing needs (the engine's own digests also use FNV).
func score(node string, shard int) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(node))
	_, _ = h.Write([]byte{0})
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(shard) >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	return h.Sum64()
}

// rankNodes returns the node IDs ordered by descending rendezvous score
// for the shard, ties broken by ID so the order is total.
func rankNodes(nodes []string, shard int) []string {
	ranked := append([]string(nil), nodes...)
	sort.Slice(ranked, func(i, j int) bool {
		si, sj := score(ranked[i], shard), score(ranked[j], shard)
		if si != sj {
			return si > sj
		}
		return ranked[i] < ranked[j]
	})
	return ranked
}

// ShardRoute is one shard's placement: the node that owns writes and
// the nodes that hold warm replicas.
type ShardRoute struct {
	Shard     int      `json:"shard"`
	Primary   string   `json:"primary"`
	Followers []string `json:"followers,omitempty"`
}

// RouteTable is the versioned shard→node map the coordinator serves
// from /v1/cluster/route. Version increases on every placement change;
// nodes and clients compare it (X-PD2-Route-Version) to detect stale
// caches. Nodes maps node ID → HTTP base URL.
type RouteTable struct {
	Version int64             `json:"version"`
	Shards  []ShardRoute      `json:"shards"`
	Nodes   map[string]string `json:"nodes"`
}

// Place computes a fresh full placement of `shards` shards over the
// given nodes with up to `replicas` followers each. It ignores any
// previous placement — use Rebalance to preserve primaries across node
// joins.
func Place(nodes []string, shards, replicas int) []ShardRoute {
	routes := make([]ShardRoute, shards)
	for s := 0; s < shards; s++ {
		routes[s] = placeOne(nodes, s, replicas, "")
	}
	return routes
}

// placeOne ranks the nodes for one shard and keeps `keep` as primary if
// it is still alive (non-empty and present in nodes).
func placeOne(nodes []string, shard, replicas int, keep string) ShardRoute {
	ranked := rankNodes(nodes, shard)
	r := ShardRoute{Shard: shard}
	if keep != "" {
		for _, n := range ranked {
			if n == keep {
				r.Primary = keep
				break
			}
		}
	}
	if r.Primary == "" && len(ranked) > 0 {
		r.Primary = ranked[0]
	}
	for _, n := range ranked {
		if len(r.Followers) >= replicas {
			break
		}
		if n != r.Primary {
			r.Followers = append(r.Followers, n)
		}
	}
	return r
}

// Rebalance recomputes the follower sets over the current nodes while
// keeping every primary in place — including a dead one. Shard data
// lives on the primary; moving it is a migration (or, when the primary
// died, a digest-verified promote), never a routing edit, so a shard
// whose primary is gone keeps its old route untouched until failover
// crowns a follower that proved it holds the state. Follower sets of
// live-primary shards are recomputed freely (a new follower just
// resyncs from index 0).
func Rebalance(prev []ShardRoute, nodes []string, replicas int) []ShardRoute {
	alive := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		alive[n] = true
	}
	routes := make([]ShardRoute, len(prev))
	for s, old := range prev {
		if !alive[old.Primary] {
			// Crowning a survivor by placement rank alone could hand the
			// shard to a node without its state; leave it for failover.
			routes[s] = old
			continue
		}
		routes[s] = placeOne(nodes, s, replicas, old.Primary)
	}
	return routes
}

// Route returns the placement for one shard, or an error outside the
// table.
func (t *RouteTable) Route(shard int) (ShardRoute, error) {
	if shard < 0 || shard >= len(t.Shards) {
		return ShardRoute{}, fmt.Errorf("shard %d outside route table of %d", shard, len(t.Shards))
	}
	return t.Shards[shard], nil
}

// PrimaryBase resolves a shard to its primary's HTTP base URL.
func (t *RouteTable) PrimaryBase(shard int) (string, error) {
	r, err := t.Route(shard)
	if err != nil {
		return "", err
	}
	base, ok := t.Nodes[r.Primary]
	if !ok || base == "" {
		return "", fmt.Errorf("shard %d primary %q has no known base", shard, r.Primary)
	}
	return base, nil
}

// Clone deep-copies the table so handlers can serve it while the
// coordinator mutates its working copy.
func (t *RouteTable) Clone() *RouteTable {
	c := &RouteTable{Version: t.Version, Nodes: make(map[string]string, len(t.Nodes))}
	for id, base := range t.Nodes {
		c.Nodes[id] = base
	}
	c.Shards = make([]ShardRoute, len(t.Shards))
	for i, r := range t.Shards {
		cr := r
		cr.Followers = append([]string(nil), r.Followers...)
		c.Shards[i] = cr
	}
	return c
}
