// Package cluster turns a set of pd2d processes into one multi-node
// deployment: a coordinator assigns each shard a primary and followers
// by rendezvous hashing (rendezvous.go), every node hosts a serve
// server with all shards and wraps it in routing/replication middleware
// (node.go), primaries stream their applied command log to followers as
// serve.Tail deltas (replica.go), and shards move between nodes by
// snapshot-stream + log-tail-replay with a digest check before the
// routing table flips (migration in node.go, orchestrated by
// coordinator.go).
//
// docs/CLUSTER.md is the normative protocol description; keep the two
// in sync.
package cluster
