package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/serve"
)

// RouteVersionHeader carries the routing-table version on every reply
// that passed through a node (and on the coordinator's route endpoint).
// Clients cache the table and refresh when the header disagrees with
// their copy.
const RouteVersionHeader = "X-PD2-Route-Version"

// Role codes, aliased from serve so the two layers share one gauge
// vocabulary.
const (
	RoleNone     = serve.RoleNone
	RoleFollower = serve.RoleFollower
	RolePrimary  = serve.RolePrimary
)

// Wire types of the intra-cluster protocol (docs/CLUSTER.md).

// replAck answers a replication push: 200 carries the follower's log
// length and clock after applying the tail; 409 carries the log index
// the follower wants instead (Want = -1 refuses outright — the receiver
// believes it is the primary).
type replAck struct {
	Acked int   `json:"acked"`
	Now   int64 `json:"now"`
	Want  int   `json:"want"`
}

// PromoteResponse reports the state a node installed when it took over
// a shard; the caller compares Digest against its own expectation.
type PromoteResponse struct {
	Shard  int    `json:"shard"`
	Digest uint64 `json:"digest"`
	Now    int64  `json:"now"`
	Log    int    `json:"log"`
}

// migrateRequest asks a primary to hand one shard to the target node.
type migrateRequest struct {
	TargetID   string `json:"target_id"`
	TargetBase string `json:"target_base"`
}

// RegisterRequest announces a node to the coordinator.
type RegisterRequest struct {
	ID   string `json:"id"`
	Base string `json:"base"`
}

// followerState is a primary's view of one follower's progress.
type followerState struct {
	acked int   // log entries the follower confirmed
	now   int64 // follower clock at last ack
	stale bool  // last push failed; anti-entropy keeps retrying
}

// shardState is a node's cluster-side state for one shard slot. The
// serve layer underneath holds the engine; this layer holds the role,
// the replication progress (primary), the warm replica (follower), and
// the migration gate.
//
// Lock order: Node.updateMu before Node.mu before shardState.replMu
// before shardState.mu, never the reverse.
type shardState struct {
	mu        sync.Mutex
	role      int32
	frozen    bool          // migration hand-off in progress: mutations wait
	unfrozen  chan struct{} // closed when the gate opens
	migrating bool          // a migration owns the shard (warm phase included)
	forward   string        // drain target after a hand-off, until the table flips
	followers map[string]*followerState
	replica   *Replica

	// replMu serializes replication pushes for the shard so follower
	// progress advances monotonically without holding mu — which reads
	// and the migration gate consult — across network round trips.
	replMu sync.Mutex
}

// NodeOptions configures a cluster node around an existing serve
// server.
type NodeOptions struct {
	ID          string        // cluster-unique node name
	Base        string        // advertised HTTP base URL, e.g. http://host:port
	Server      *serve.Server // hosts every global shard; shard IDs are global
	Stats       *serve.ClusterStats
	Client      *http.Client  // intra-cluster client; default 5s timeout
	GateTimeout time.Duration // how long queued writes wait out a hand-off; default 5s
}

// A Node wraps a serve server with the cluster middleware: requests for
// shards this node is not primary of are redirected (307) to the
// primary, mutations on primary shards are synchronously replicated to
// every follower before the client sees its ack, and the migration
// endpoints move a shard out with a digest check before any traffic
// lands on the receiver.
type Node struct {
	id     string
	base   string
	srv    *serve.Server
	cs     *serve.ClusterStats
	client *http.Client
	gateTO time.Duration

	// updateMu serializes whole UpdateTable runs (version check plus the
	// per-shard role reconcile) so two concurrent pushes cannot
	// interleave their reconcile loops and leave a shard's role set from
	// the older table.
	updateMu sync.Mutex

	mu    sync.Mutex // guards table; ordered before any shardState.mu
	table *RouteTable

	states []shardState
	mux    *http.ServeMux

	stopc chan struct{}
	wg    sync.WaitGroup
}

// NewNode builds a node over the server. The server should already have
// the node's ClusterStats attached so /metrics and shard statuses carry
// the cluster gauges.
func NewNode(opts NodeOptions) (*Node, error) {
	if opts.ID == "" || opts.Base == "" {
		return nil, fmt.Errorf("cluster: node needs an ID and a base URL")
	}
	if opts.Server == nil {
		return nil, fmt.Errorf("cluster: node needs a serve.Server")
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Timeout: 5 * time.Second}
	}
	if opts.GateTimeout <= 0 {
		opts.GateTimeout = 5 * time.Second
	}
	if opts.Stats == nil {
		opts.Stats = serve.NewClusterStats(opts.Server.NumShards())
	}
	n := &Node{
		id:     opts.ID,
		base:   strings.TrimRight(opts.Base, "/"),
		srv:    opts.Server,
		cs:     opts.Stats,
		client: opts.Client,
		gateTO: opts.GateTimeout,
		states: make([]shardState, opts.Server.NumShards()),
		stopc:  make(chan struct{}),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cluster/shards/{shard}/repl", n.handleRepl)
	mux.HandleFunc("POST /v1/cluster/shards/{shard}/promote", n.handlePromote)
	mux.HandleFunc("POST /v1/cluster/shards/{shard}/migrate", n.handleMigrate)
	mux.HandleFunc("POST /v1/cluster/route", n.handleRoutePush)
	mux.HandleFunc("GET /v1/cluster/route", n.handleRouteGet)
	mux.Handle("/", http.HandlerFunc(n.route))
	n.mux = mux
	return n, nil
}

// Stats returns the node's cluster gauges (for wiring into the server).
func (n *Node) Stats() *serve.ClusterStats { return n.cs }

// Handler returns the node's HTTP surface: the cluster protocol plus
// the routed serve API.
func (n *Node) Handler() http.Handler { return n.mux }

// Start launches the anti-entropy loop: every interval, primaries push
// their tail to any follower that is behind or marked stale. This is
// what carries tick-only progress (advances grow no log) and what heals
// followers after transient push failures. Interval defaults to 500ms.
func (n *Node) Start(interval time.Duration) {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-n.stopc:
				return
			case <-t.C:
				for s := range n.states {
					_ = n.replicate(s) // stale followers retried next round
				}
			}
		}
	}()
}

// Stop halts the anti-entropy loop.
func (n *Node) Stop() {
	close(n.stopc)
	n.wg.Wait()
}

// Register announces the node to the coordinator and installs whatever
// routing table the coordinator already has.
func (n *Node) Register(coordBase string) error {
	body, _ := json.Marshal(RegisterRequest{ID: n.id, Base: n.base})
	resp, err := n.client.Post(strings.TrimRight(coordBase, "/")+"/v1/cluster/nodes",
		"application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("cluster: register with %s: %w", coordBase, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: register with %s: %s", coordBase, resp.Status)
	}
	var tab RouteTable
	if err := json.NewDecoder(resp.Body).Decode(&tab); err != nil {
		return fmt.Errorf("cluster: register reply: %w", err)
	}
	if tab.Version > 0 {
		n.UpdateTable(&tab)
	}
	return nil
}

// Table returns the node's current routing table (nil before the first
// placement).
func (n *Node) Table() *RouteTable {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.table
}

// UpdateTable installs a newer routing table and reconciles every
// shard's role against it. Stale versions are ignored.
func (n *Node) UpdateTable(tab *RouteTable) {
	n.updateMu.Lock()
	defer n.updateMu.Unlock()
	n.mu.Lock()
	if n.table != nil && tab.Version <= n.table.Version {
		n.mu.Unlock()
		return
	}
	n.table = tab.Clone()
	n.mu.Unlock()

	for s := range n.states {
		if s >= len(tab.Shards) {
			break
		}
		route := tab.Shards[s]
		st := &n.states[s]
		st.mu.Lock()
		switch {
		case route.Primary == n.id:
			//lint:allow lockorder the verified replica install must land before the role flips under st.mu, so a concurrent mutation never sees a promoted shard without its replicated state
			if st.role != RolePrimary && !n.takeTableCrownLocked(s, st, tab) {
				// Refused: keep the current role and replica so a later
				// explicit /promote (digest-verified) can still land. The
				// shard stays unrouted here until the coordinator heals it.
				n.cs.SetRole(s, st.role)
				st.mu.Unlock()
				continue
			}
			st.role = RolePrimary
			st.replica = nil
			st.forward = ""
			n.pruneFollowersLocked(st, route)
		case containsNode(route.Followers, n.id):
			if st.role == RolePrimary {
				// Demoted by the table (failover promoted someone else).
				// Anything unreplicated here was never acked; discard and
				// resync from the new primary.
				st.replica = nil
			}
			st.role = RoleFollower
			st.followers = nil
		default:
			st.role = RoleNone
			st.followers = nil
			st.replica = nil
		}
		n.cs.SetRole(s, st.role)
		st.mu.Unlock()
	}
}

// takeTableCrownLocked decides whether a pushed table naming this node
// primary may actually flip the role. The coordinator promotes
// explicitly (digest-verified) before flipping the table, so normally
// the role already matches and this never runs. Two exceptions are
// legitimate: the initial placement (version 1 — no write can have been
// acked anywhere before the first table existed, so the local seed
// state is the shard's origin), and a follower whose replica holds data
// (its /promote landed but the response was lost) — the replica is
// installed, digest-checked, before the flip. Anything else — a
// missing or empty replica past version 1, a failed install — refuses
// the crown: promoting over stale or empty local state would silently
// drop acknowledged commands. Requires st.mu.
func (n *Node) takeTableCrownLocked(shard int, st *shardState, tab *RouteTable) bool {
	if st.replica != nil && st.replica.last != nil {
		snap, err := st.replica.Snapshot()
		if err == nil {
			err = n.srv.InstallShard(snap)
		}
		if err != nil {
			log.Printf("cluster: node %s shard %d: refusing table promote, replica install failed: %v", n.id, shard, err)
			return false
		}
		return true
	}
	if st.role == RoleNone && st.replica == nil && tab.Version == 1 {
		return true
	}
	log.Printf("cluster: node %s shard %d: refusing table promote without replicated state (table v%d)", n.id, shard, tab.Version)
	return false
}

// pruneFollowersLocked drops progress for nodes that stopped following
// the shard. Requires st.mu.
func (n *Node) pruneFollowersLocked(st *shardState, route ShardRoute) {
	if st.followers == nil {
		return
	}
	for id := range st.followers {
		if !containsNode(route.Followers, id) {
			delete(st.followers, id)
		}
	}
}

func containsNode(ids []string, id string) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// roleOf reports the node's current role for a shard.
func (n *Node) roleOf(shard int) int32 {
	st := &n.states[shard]
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.role
}

// TickPrimaries advances every primary (non-migrating) shard by slots
// and replicates the advance — the cluster face of the pd2d ticker.
func (n *Node) TickPrimaries(slots int64) {
	for s := range n.states {
		st := &n.states[s]
		st.mu.Lock()
		tick := st.role == RolePrimary && !st.frozen
		st.mu.Unlock()
		if !tick {
			continue
		}
		if _, err := n.srv.Advance(s, slots); err != nil {
			continue
		}
		_ = n.replicate(s) // anti-entropy heals stale followers
	}
}

// route is the middleware in front of the serve API: shard-scoped
// requests are answered locally only on the shard's primary; everything
// else is redirected there. Mutations on the primary replicate to every
// follower before the client sees its ack.
func (n *Node) route(w http.ResponseWriter, r *http.Request) {
	shard, op, ok := splitShardPath(r.URL.Path)
	if !ok {
		// Not shard-scoped (list, metrics, healthz, pprof): always local.
		n.srv.Handler().ServeHTTP(w, r)
		return
	}
	tab := n.Table()
	if tab == nil {
		writeClusterError(w, http.StatusServiceUnavailable, "no_route", "node has no routing table yet")
		return
	}
	w.Header().Set(RouteVersionHeader, strconv.FormatInt(tab.Version, 10))
	if shard < 0 || shard >= len(tab.Shards) || shard >= len(n.states) {
		writeClusterError(w, http.StatusNotFound, "unknown_shard",
			fmt.Sprintf("shard %d not in [0,%d)", shard, len(tab.Shards)))
		return
	}
	mutation := r.Method == http.MethodPost && (op == "commands" || op == "advance")
	var body []byte
	if mutation {
		var err error
		body, err = io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			writeClusterError(w, http.StatusBadRequest, "invalid", "reading body: "+err.Error())
			return
		}
		st := &n.states[shard]
		if !n.waitGate(st) {
			w.Header().Set("Retry-After", "1")
			writeClusterError(w, http.StatusServiceUnavailable, "migrating",
				"shard hand-off exceeded the gate timeout; retry")
			return
		}
	}
	st := &n.states[shard]
	st.mu.Lock()
	role, forward := st.role, st.forward
	st.mu.Unlock()
	if role != RolePrimary {
		if mutation && forward != "" {
			// Post-hand-off drain: queued writes land on the new primary.
			n.proxy(w, r, forward, body)
			return
		}
		base, err := tab.PrimaryBase(shard)
		if err != nil || base == n.base {
			writeClusterError(w, http.StatusServiceUnavailable, "no_route",
				fmt.Sprintf("shard %d has no reachable primary", shard))
			return
		}
		w.Header().Set("Location", base+r.URL.RequestURI())
		w.WriteHeader(http.StatusTemporaryRedirect)
		return
	}
	if !mutation {
		n.srv.Handler().ServeHTTP(w, r)
		return
	}
	// Primary mutation: run the serve handler into a buffer, replicate,
	// and only then release the ack. A replication failure withholds the
	// ack (the command may exist locally, but the client never saw a 200
	// — "no acknowledged slot lost" is exactly this property).
	r.Body = io.NopCloser(bytes.NewReader(body))
	bw := &bufWriter{}
	n.srv.Handler().ServeHTTP(bw, r)
	if bw.code == http.StatusOK {
		if err := n.replicateSync(shard); err != nil {
			w.Header().Set("Retry-After", "1")
			writeClusterError(w, http.StatusServiceUnavailable, "replication",
				fmt.Sprintf("not acked by all followers: %v", err))
			return
		}
	}
	bw.flush(w)
}

// waitGate blocks while the shard's migration gate is closed; false on
// timeout.
func (n *Node) waitGate(st *shardState) bool {
	//lint:allow determinism the gate timeout is an HTTP-layer deadline; the wall clock never reaches a scheduling decision
	deadline := time.Now().Add(n.gateTO)
	for {
		st.mu.Lock()
		if !st.frozen {
			st.mu.Unlock()
			return true
		}
		ch := st.unfrozen
		st.mu.Unlock()
		//lint:allow determinism remaining wait on the same HTTP-layer deadline
		wait := time.Until(deadline)
		if wait <= 0 {
			return false
		}
		t := time.NewTimer(wait)
		select {
		case <-ch:
			t.Stop()
		case <-t.C:
			return false
		}
	}
}

// proxy forwards the (already-read) request to base and relays the
// response.
func (n *Node) proxy(w http.ResponseWriter, r *http.Request, base string, body []byte) {
	req, err := http.NewRequest(r.Method, base+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		writeClusterError(w, http.StatusBadGateway, "proxy", err.Error())
		return
	}
	req.Header.Set("Content-Type", r.Header.Get("Content-Type"))
	resp, err := n.client.Do(req)
	if err != nil {
		writeClusterError(w, http.StatusBadGateway, "proxy", err.Error())
		return
	}
	defer func() { _ = resp.Body.Close() }()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if v := resp.Header.Get(RouteVersionHeader); v != "" {
		w.Header().Set(RouteVersionHeader, v)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// splitShardPath recognizes /v1/shards/{id} and /v1/shards/{id}/{op};
// ok is false for everything else (including the bare list path).
func splitShardPath(path string) (shard int, op string, ok bool) {
	const prefix = "/v1/shards/"
	if !strings.HasPrefix(path, prefix) {
		return 0, "", false
	}
	rest := path[len(prefix):]
	seg, op, _ := strings.Cut(rest, "/")
	id, err := strconv.Atoi(seg)
	if err != nil {
		return 0, "", false
	}
	return id, op, true
}

// bufWriter buffers a serve response so the ack can be withheld until
// replication succeeds.
type bufWriter struct {
	code int
	hdr  http.Header
	buf  bytes.Buffer
}

func (b *bufWriter) Header() http.Header {
	if b.hdr == nil {
		b.hdr = make(http.Header)
	}
	return b.hdr
}

func (b *bufWriter) WriteHeader(code int) {
	if b.code == 0 {
		b.code = code
	}
}

func (b *bufWriter) Write(p []byte) (int, error) {
	if b.code == 0 {
		b.code = http.StatusOK
	}
	return b.buf.Write(p)
}

func (b *bufWriter) flush(w http.ResponseWriter) {
	for k, vs := range b.hdr {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	if b.code == 0 {
		b.code = http.StatusOK
	}
	w.WriteHeader(b.code)
	_, _ = b.buf.WriteTo(w)
}

func writeClusterError(w http.ResponseWriter, code int, kind, reason string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(serve.ErrorResponse{Error: kind, Reason: reason})
}
