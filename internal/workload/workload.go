// Package workload generates synthetic adaptive task sets beyond the
// Whisper tracker. The paper's introduction motivates fine-grained
// adaptivity with computer-vision and signal-processing applications whose
// processor shares vary "by as much as two orders of magnitude" within
// "time scales as short as 10 ms"; this package models such workloads
// directly: each task's weight performs a random walk over a geometric
// ladder of levels, with occasional bursts (jumps to a random level — the
// analogue of a tracking prediction going bad and the search space
// exploding).
//
// Unlike internal/whisper, nothing here is geometric: the generator is the
// minimal abstract workload with the paper's two stress ingredients — a
// wide dynamic range and abrupt changes — and is used to check that the
// PD²-OI vs PD²-LJ separation is a property of those ingredients, not of
// the tracking scenario.
package workload

import (
	"fmt"
	"math"

	"repro/internal/frac"
	"repro/internal/model"
	"repro/internal/stats"
)

// Params configures a bursty workload.
type Params struct {
	Tasks   int        // number of tasks
	M       int        // processors (for the capacity cap)
	Horizon model.Time // slots

	// Levels is the size of the geometric weight ladder between WMin and
	// WMax (inclusive); weights are quantized to thousandths.
	Levels int
	WMin   frac.Rat
	WMax   frac.Rat

	// MeanDwell is the mean number of slots between weight changes of one
	// task (changes are a Bernoulli process per slot).
	MeanDwell float64
	// BurstProb is the fraction of changes that jump to a uniformly random
	// level instead of stepping ±1.
	BurstProb float64

	Seed uint64
}

// DefaultParams returns a 12-task workload on 4 processors with a
// two-orders-of-magnitude weight ladder, ~25-slot dwell times and 20%
// bursts — the adaptivity regime the paper's introduction describes.
func DefaultParams() Params {
	return Params{
		Tasks:     12,
		M:         4,
		Horizon:   1000,
		Levels:    9,
		WMin:      frac.New(1, 250),
		WMax:      frac.New(1, 3),
		MeanDwell: 25,
		BurstProb: 0.2,
		Seed:      1,
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	switch {
	case p.Tasks < 1 || p.M < 1 || p.Horizon < 1:
		return fmt.Errorf("workload: need tasks, processors and a horizon")
	case p.Levels < 2:
		return fmt.Errorf("workload: need at least two weight levels")
	case p.WMin.Sign() <= 0 || p.WMax.LessEq(p.WMin) || model.MaxLightWeight.Less(p.WMax):
		return fmt.Errorf("workload: weight bounds must satisfy 0 < WMin < WMax <= 1/2")
	case p.MeanDwell < 1:
		return fmt.Errorf("workload: mean dwell below one slot")
	case p.BurstProb < 0 || p.BurstProb > 1:
		return fmt.Errorf("workload: burst probability outside [0,1]")
	}
	return nil
}

// Generator drives one instance of the workload.
type Generator struct {
	p      Params
	rng    *stats.RNG
	ladder []frac.Rat
	level  []int
}

// New builds a generator: the ladder is geometric between WMin and WMax,
// and each task starts at an independently random level (subject to the
// initial total fitting on M processors; lower levels are retried).
func New(p Params) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{p: p, rng: stats.NewStream(p.Seed, 0)}
	lo, hi := p.WMin.Float64(), p.WMax.Float64()
	ratio := math.Pow(hi/lo, 1/float64(p.Levels-1))
	for i := 0; i < p.Levels; i++ {
		w := frac.Quantize(lo*math.Pow(ratio, float64(i)), 1000)
		g.ladder = append(g.ladder, frac.Clamp(w, p.WMin, p.WMax))
	}
	g.level = make([]int, p.Tasks)
	total := frac.Zero
	capacity := frac.FromInt(int64(p.M))
	for i := range g.level {
		lvl := g.rng.Intn(p.Levels)
		for capacity.Less(total.Add(g.ladder[lvl])) && lvl > 0 {
			lvl--
		}
		g.level[i] = lvl
		total = total.Add(g.ladder[lvl])
	}
	if capacity.Less(total) {
		return nil, fmt.Errorf("workload: cannot fit %d tasks at the minimum level on %d processors", p.Tasks, p.M)
	}
	return g, nil
}

// Ladder returns the weight levels.
func (g *Generator) Ladder() []frac.Rat {
	return append([]frac.Rat(nil), g.ladder...)
}

// TaskSpecs returns the initial task set.
func (g *Generator) TaskSpecs() []model.Spec {
	specs := make([]model.Spec, g.p.Tasks)
	for i := range specs {
		specs[i] = model.Spec{Name: taskName(i), Weight: g.ladder[g.level[i]]}
	}
	return specs
}

func taskName(i int) string { return fmt.Sprintf("W%d", i) }

// StepRequests advances one slot and returns the weight-change requests it
// triggers. Each task changes with probability 1/MeanDwell; a change is a
// jump to a random level with probability BurstProb and a ±1 step
// otherwise.
func (g *Generator) StepRequests(t model.Time) []model.WeightRequest {
	var reqs []model.WeightRequest
	for i := range g.level {
		if g.rng.Float64() >= 1/g.p.MeanDwell {
			continue
		}
		old := g.level[i]
		next := old
		if g.rng.Float64() < g.p.BurstProb {
			next = g.rng.Intn(g.p.Levels)
		} else if g.rng.Intn(2) == 0 && old > 0 {
			next = old - 1
		} else if old < g.p.Levels-1 {
			next = old + 1
		}
		if next == old || g.ladder[next].Eq(g.ladder[old]) {
			continue
		}
		g.level[i] = next
		reqs = append(reqs, model.WeightRequest{Task: taskName(i), Weight: g.ladder[next]})
	}
	return reqs
}

// Params returns the configuration.
func (g *Generator) Params() Params { return g.p }
