package workload

import (
	"testing"

	"repro/internal/frac"
	"repro/internal/model"
)

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	mutations := []func(*Params){
		func(p *Params) { p.Tasks = 0 },
		func(p *Params) { p.M = 0 },
		func(p *Params) { p.Horizon = 0 },
		func(p *Params) { p.Levels = 1 },
		func(p *Params) { p.WMin = frac.Zero },
		func(p *Params) { p.WMax = p.WMin },
		func(p *Params) { p.WMax = frac.New(2, 3) },
		func(p *Params) { p.MeanDwell = 0.5 },
		func(p *Params) { p.BurstProb = 1.5 },
	}
	for i, mut := range mutations {
		p := DefaultParams()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestLadderGeometricAndClamped(t *testing.T) {
	g, err := New(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	ladder := g.Ladder()
	p := DefaultParams()
	if len(ladder) != p.Levels {
		t.Fatalf("ladder size %d", len(ladder))
	}
	prev := frac.Zero
	for i, w := range ladder {
		if w.Less(p.WMin) || p.WMax.Less(w) {
			t.Errorf("level %d = %s outside bounds", i, w)
		}
		if w.Less(prev) {
			t.Errorf("ladder not monotone at %d: %s < %s", i, w, prev)
		}
		prev = w
	}
	// The ladder spans the full dynamic range.
	if ratio := ladder[len(ladder)-1].Float64() / ladder[0].Float64(); ratio < 50 {
		t.Errorf("dynamic range %.1fx too narrow", ratio)
	}
}

func TestInitialSetFeasible(t *testing.T) {
	for seed := uint64(1); seed <= 30; seed++ {
		p := DefaultParams()
		p.Seed = seed
		g, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		sys := model.System{M: p.M, Tasks: g.TaskSpecs()}
		if err := sys.Validate(); err != nil {
			t.Fatal(err)
		}
		if !sys.Feasible() {
			t.Fatalf("seed %d: infeasible initial set (total %s)", seed, sys.TotalWeight())
		}
	}
}

func TestRequestsBoundedAndActive(t *testing.T) {
	p := DefaultParams()
	g, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for tt := model.Time(0); tt < p.Horizon; tt++ {
		for _, r := range g.StepRequests(tt) {
			if r.Weight.Less(p.WMin) || p.WMax.Less(r.Weight) {
				t.Fatalf("request weight %s out of bounds", r.Weight)
			}
			total++
		}
	}
	// Expected change rate ~ Tasks*Horizon/MeanDwell = 480; some changes
	// are suppressed (same level), so accept a broad band.
	if total < 200 || total > 700 {
		t.Errorf("requests = %d, want roughly 300-600", total)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	p := DefaultParams()
	a, _ := New(p)
	b, _ := New(p)
	for tt := model.Time(0); tt < 200; tt++ {
		ra, rb := a.StepRequests(tt), b.StepRequests(tt)
		if len(ra) != len(rb) {
			t.Fatalf("t=%d: diverged", tt)
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("t=%d: request %d differs", tt, i)
			}
		}
	}
}

func TestTooManyTasksRejected(t *testing.T) {
	p := DefaultParams()
	p.Tasks = 2000 // 2000 * WMin = 8 > 4 processors
	if _, err := New(p); err == nil {
		t.Error("infeasible task count accepted")
	}
}
