// Package topk provides partial selection: ordering only the k
// highest-priority elements of a slice. The PD² engine needs the top M
// subtasks of the eligible set every slot; selecting them in O(n) expected
// time (plus an O(M log M) sort of the winners) beats sorting the whole
// queue when n >> M, which is the common case for Pfair systems with many
// light tasks on few processors.
package topk

// Partial reorders items so that the k smallest elements under less (i.e.
// the highest-priority ones, if less means "higher priority") occupy
// items[:k] in sorted order. The order of the remaining elements is
// unspecified. The selected set and its order are fully determined by the
// total order less induces; if less is only a partial order, ties are
// broken by original position during the final insertion sort, keeping the
// result deterministic for a deterministic input.
func Partial[T any](items []T, k int, less func(a, b T) bool) {
	if k <= 0 || len(items) == 0 {
		return
	}
	if k > len(items) {
		k = len(items)
	}
	if k < len(items) {
		quickselect(items, k, less)
	}
	insertionSort(items[:k], less)
}

// quickselect partitions items so that the k smallest elements (under
// less) are in items[:k], in arbitrary order. Iterative, median-of-three
// pivoting, falling back to insertion sort on small ranges.
func quickselect[T any](items []T, k int, less func(a, b T) bool) {
	lo, hi := 0, len(items) // half-open working range containing index k-1
	for hi-lo > 12 {
		p := pivot(items, lo, hi, less)
		// Three-way partition around the pivot value.
		lt, gt := partition(items, lo, hi, p, less)
		switch {
		case k <= lt:
			hi = lt
		case k >= gt:
			lo = gt
		default:
			return // items[lt:gt] all equal the pivot and straddle k
		}
	}
	insertionSort(items[lo:hi], less)
}

// pivot returns the median-of-three of the range's first, middle and last
// elements.
func pivot[T any](items []T, lo, hi int, less func(a, b T) bool) T {
	a, b, c := items[lo], items[(lo+hi)/2], items[hi-1]
	if less(b, a) {
		a, b = b, a
	}
	if less(c, b) {
		b = c
		if less(b, a) {
			b = a
		}
	}
	return b
}

// partition three-way partitions items[lo:hi] around value p, returning
// (lt, gt) such that items[lo:lt] < p, items[lt:gt] == p, items[gt:hi] > p.
func partition[T any](items []T, lo, hi int, p T, less func(a, b T) bool) (int, int) {
	lt, i, gt := lo, lo, hi
	for i < gt {
		switch {
		case less(items[i], p):
			items[lt], items[i] = items[i], items[lt]
			lt++
			i++
		case less(p, items[i]):
			gt--
			items[gt], items[i] = items[i], items[gt]
		default:
			i++
		}
	}
	return lt, gt
}

// insertionSort is a stable in-place sort for small slices.
func insertionSort[T any](items []T, less func(a, b T) bool) {
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && less(items[j], items[j-1]); j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
}
