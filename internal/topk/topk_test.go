package topk

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func intLess(a, b int) bool { return a < b }

func TestPartialSmallCases(t *testing.T) {
	cases := []struct {
		in   []int
		k    int
		want []int
	}{
		{nil, 3, nil},
		{[]int{5}, 1, []int{5}},
		{[]int{5, 1}, 1, []int{1}},
		{[]int{5, 1, 4, 2, 3}, 3, []int{1, 2, 3}},
		{[]int{5, 1, 4, 2, 3}, 0, nil},
		{[]int{5, 1, 4, 2, 3}, 10, []int{1, 2, 3, 4, 5}},
		{[]int{2, 2, 2, 1, 1}, 3, []int{1, 1, 2}},
	}
	for _, c := range cases {
		in := append([]int(nil), c.in...)
		Partial(in, c.k, intLess)
		k := c.k
		if k > len(in) {
			k = len(in)
		}
		got := in[:k]
		if len(c.want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Partial(%v, %d) -> %v, want %v", c.in, c.k, got, c.want)
		}
	}
}

// TestPartialMatchesSortQuick: for random inputs, the top-k prefix equals
// the prefix of a full sort.
func TestPartialMatchesSortQuick(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 2000,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			n := r.Intn(200)
			xs := make([]int, n)
			for i := range xs {
				xs[i] = r.Intn(50) // plenty of duplicates
			}
			vals[0] = reflect.ValueOf(xs)
			vals[1] = reflect.ValueOf(r.Intn(n + 2))
		},
	}
	if err := quick.Check(func(xs []int, k int) bool {
		a := append([]int(nil), xs...)
		b := append([]int(nil), xs...)
		Partial(a, k, intLess)
		sort.Ints(b)
		kk := k
		if kk > len(a) {
			kk = len(a)
		}
		if !reflect.DeepEqual(a[:kk], b[:kk]) {
			return false
		}
		// The whole slice is still a permutation of the input.
		rest := append([]int(nil), a...)
		sort.Ints(rest)
		return reflect.DeepEqual(rest, b)
	}, cfg); err != nil {
		t.Error(err)
	}
}

// TestPartialDeterministic: same input yields the same output slice state.
func TestPartialDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		xs := make([]int, 100)
		for i := range xs {
			xs[i] = r.Intn(30)
		}
		a := append([]int(nil), xs...)
		b := append([]int(nil), xs...)
		Partial(a, 7, intLess)
		Partial(b, 7, intLess)
		if !reflect.DeepEqual(a[:7], b[:7]) {
			t.Fatalf("nondeterministic selection: %v vs %v", a[:7], b[:7])
		}
	}
}

// TestPartialStructs exercises the generic path with a composite priority,
// mirroring the PD² (deadline, b-bit, id) order.
func TestPartialStructs(t *testing.T) {
	type sub struct{ d, b, id int }
	less := func(a, b sub) bool {
		if a.d != b.d {
			return a.d < b.d
		}
		if a.b != b.b {
			return a.b > b.b
		}
		return a.id < b.id
	}
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 200; trial++ {
		n := r.Intn(60) + 1
		xs := make([]sub, n)
		for i := range xs {
			xs[i] = sub{d: r.Intn(10), b: r.Intn(2), id: i}
		}
		m := r.Intn(8) + 1
		a := append([]sub(nil), xs...)
		b := append([]sub(nil), xs...)
		Partial(a, m, less)
		sort.Slice(b, func(i, j int) bool { return less(b[i], b[j]) })
		if m > n {
			m = n
		}
		if !reflect.DeepEqual(a[:m], b[:m]) {
			t.Fatalf("trial %d: Partial top-%d = %v, want %v", trial, m, a[:m], b[:m])
		}
	}
}

func BenchmarkPartialVsSort(b *testing.B) {
	const n, k = 128, 4
	base := make([]int, n)
	r := rand.New(rand.NewSource(7))
	for i := range base {
		base[i] = r.Intn(1000)
	}
	b.Run("Partial", func(b *testing.B) {
		buf := make([]int, n)
		for i := 0; i < b.N; i++ {
			copy(buf, base)
			Partial(buf, k, intLess)
		}
	})
	b.Run("FullSort", func(b *testing.B) {
		buf := make([]int, n)
		for i := 0; i < b.N; i++ {
			copy(buf, base)
			sort.Slice(buf, func(x, y int) bool { return buf[x] < buf[y] })
		}
	})
}
