package core

import (
	"fmt"

	"repro/internal/model"
)

// This file implements the time-indexed calendar of the event-driven PD²
// engine. Instead of rescanning every task every slot (the original
// brute-force loop, preserved verbatim in internal/core/reference), the
// scheduler keeps one min-heap per event kind — pending joins, enactment
// times, release times, ERfair speculation candidates, subtask deadlines
// (miss detection) and D(I_SW,·)-waiter resolutions — keyed by
// (time, push sequence). Each Step pops only the events due now.
//
// Events are intentionally *lazy*: pushing is cheap and duplicates or
// stale entries are allowed. Every pop re-validates the event against the
// task's current state using exactly the predicate the original per-slot
// scan evaluated, so a stale event is simply dropped and the engine's
// observable behavior stays byte-for-byte identical to the scan. Events
// that reference a pooled subtask additionally carry the subtask's reuse
// stamp (see subtask.stamp).

// eventKind enumerates the calendar heaps of the event-driven engine.
// Each kind has its own heap on the Scheduler and its own pop-time
// re-validation predicate; dispatching from kind to heap goes through
// Scheduler.calendar, whose switch pd2lint's eventexhaust check keeps
// exhaustive — adding a kind here fails lint until every kind-dispatch
// switch handles it.
//
//lint:exhaustive ignore=numEventKinds -- sentinel counts the kinds, it is not one
type eventKind uint8

const (
	evKindJoin    eventKind = iota // deferred joins of the initial system
	evKindEnact                    // concrete enactment times
	evKindRelease                  // concrete release times
	evKindER                       // ERfair speculation candidates
	evKindMiss                     // subtask deadlines (miss detection)
	evKindResolve                  // D(I_SW,·)-waiter resolution forecasts
	numEventKinds                  // sentinel: number of kinds, not a kind
)

// String names the kind for diagnostics and tests. All kinds are
// covered; the fallthrough renders out-of-range values instead of
// hiding them behind a default case.
func (k eventKind) String() string {
	switch k {
	case evKindJoin:
		return "join"
	case evKindEnact:
		return "enact"
	case evKindRelease:
		return "release"
	case evKindER:
		return "erfair"
	case evKindMiss:
		return "miss"
	case evKindResolve:
		return "resolve"
	}
	return fmt.Sprintf("eventKind(%d)", uint8(k))
}

// tevent is one calendar entry. ts is the task it concerns; sub/stamp are
// set only for deadline-miss events.
type tevent struct {
	at    model.Time
	seq   uint64
	ts    *taskState
	sub   *subtask
	stamp uint64
}

// eventHeap is a binary min-heap of tevents ordered by (at, seq). seq is a
// global push counter, making the pop order deterministic.
type eventHeap struct {
	ev []tevent
}

func (h *eventHeap) push(e tevent) {
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.ev[i].before(h.ev[p]) {
			break
		}
		h.ev[i], h.ev[p] = h.ev[p], h.ev[i]
		i = p
	}
}

func (e tevent) before(f tevent) bool {
	if e.at != f.at {
		return e.at < f.at
	}
	return e.seq < f.seq
}

// popDue removes and returns the earliest event if it is due at or before
// t. The boolean is false when no event is due.
func (h *eventHeap) popDue(t model.Time) (tevent, bool) {
	if len(h.ev) == 0 || h.ev[0].at > t {
		return tevent{}, false
	}
	e := h.ev[0]
	last := len(h.ev) - 1
	h.ev[0] = h.ev[last]
	h.ev[last] = tevent{} // release pointers
	h.ev = h.ev[:last]
	h.siftDown(0)
	return e, true
}

func (h *eventHeap) siftDown(i int) {
	n := len(h.ev)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h.ev[r].before(h.ev[l]) {
			m = r
		}
		if !h.ev[m].before(h.ev[i]) {
			return
		}
		h.ev[i], h.ev[m] = h.ev[m], h.ev[i]
		i = m
	}
}

// readyHeap is an indexed min-heap of tasks ordered by the PD² priority of
// their offered subtask (ts.offer). It holds exactly the tasks whose offer
// would appear in the original engine's per-slot eligibility scan: every
// joined, non-left task with an earliest incomplete subtask (released
// subtasks never have a future release time outside ERfair speculation,
// and under ERfair an instantiated subtask is eligible regardless of its
// nominal release; so membership never depends on the current slot).
//
// The PD² order extended by task id is a strict total order, so the heap's
// pop sequence — and with it the schedule — is deterministic regardless of
// operation history.
type readyHeap struct {
	ts []*taskState
	// sched owns the PD² priority order; holding the scheduler (rather
	// than a comparison closure) keeps the sift paths' calls static, so
	// hotalloc can verify the slot loop end to end.
	sched *Scheduler
}

func (h *readyHeap) less(a, b *taskState) bool {
	return h.sched.higherPriority(a.offer, b.offer)
}

func (h *readyHeap) len() int { return len(h.ts) }

func (h *readyHeap) pushTask(ts *taskState) {
	ts.readyIdx = len(h.ts)
	h.ts = append(h.ts, ts)
	h.siftUp(ts.readyIdx)
}

// popMin removes and returns the highest-priority task.
func (h *readyHeap) popMin() *taskState {
	top := h.ts[0]
	last := len(h.ts) - 1
	h.ts[0] = h.ts[last]
	h.ts[0].readyIdx = 0
	h.ts[last] = nil
	h.ts = h.ts[:last]
	if last > 0 {
		h.siftDown(0)
	}
	top.readyIdx = -1
	return top
}

// remove deletes the task at index i.
func (h *readyHeap) remove(ts *taskState) {
	i := ts.readyIdx
	last := len(h.ts) - 1
	if i != last {
		h.ts[i] = h.ts[last]
		h.ts[i].readyIdx = i
	}
	h.ts[last] = nil
	h.ts = h.ts[:last]
	if i != last {
		h.fix(i)
	}
	ts.readyIdx = -1
}

// fix restores the heap property at index i after its key changed.
func (h *readyHeap) fix(i int) {
	if !h.siftUp(i) {
		h.siftDown(i)
	}
}

func (h *readyHeap) siftUp(i int) bool {
	moved := false
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(h.ts[i], h.ts[p]) {
			break
		}
		h.ts[i], h.ts[p] = h.ts[p], h.ts[i]
		h.ts[i].readyIdx = i
		h.ts[p].readyIdx = p
		i = p
		moved = true
	}
	return moved
}

func (h *readyHeap) siftDown(i int) {
	n := len(h.ts)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h.less(h.ts[r], h.ts[l]) {
			m = r
		}
		if !h.less(h.ts[m], h.ts[i]) {
			return
		}
		h.ts[i], h.ts[m] = h.ts[m], h.ts[i]
		h.ts[i].readyIdx = i
		h.ts[m].readyIdx = m
		i = m
	}
}
