package core

import (
	"fmt"
	"hash/fnv"
	"io"
	"strings"
)

// WriteState renders the scheduler's complete observable state — clock,
// global counters, per-task exact accounting, misses, violations, and
// (when recorded) the full schedule with processor assignments — in a
// canonical text form. Two schedulers that have followed the same
// history render identically; any divergence in schedules, CPUs,
// misses, drift or lag shows up as a differing byte. The rendering is
// deterministic: tasks in creation order, misses and schedule rows in
// the order they were recorded, all rationals in lowest terms.
//
// This is the engine's snapshot hook for differential testing and for
// internal/serve's snapshot/restore machinery: a restored shard proves
// itself by matching the digest of the shard it replaced.
func (s *Scheduler) WriteState(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "now=%d m=%d totalswt=%s holes=%d overhead=%d\n",
		s.now, s.cfg.M, s.totalSwt, s.holes, s.overheadSlots)
	for _, m := range s.AllMetrics() {
		fmt.Fprintf(&b, "task %s wt=%s swt=%s sched=%d sw=%s csw=%s ps=%s drift=%s maxdrift=%s lag=%s init=%d enact=%d miss=%d mig=%d pre=%d\n",
			m.Name, m.Weight, m.SchedWeight, m.Scheduled,
			m.CumSW, m.CumCSW, m.CumPS, m.Drift, m.MaxAbsDrift, m.Lag,
			m.Initiations, m.Enactments, m.Misses, m.Migrations, m.Preemptions)
	}
	for _, miss := range s.misses {
		fmt.Fprintf(&b, "miss %s sub=%d deadline=%d\n", miss.Task, miss.Subtask, miss.Deadline)
	}
	for _, v := range s.violations {
		fmt.Fprintf(&b, "violation %s\n", v)
	}
	for t, row := range s.schedule {
		fmt.Fprintf(&b, "slot %d:", t)
		for _, e := range row {
			fmt.Fprintf(&b, " %s/%d@%d", e.Task, e.Subtask, e.CPU)
		}
		fmt.Fprintf(&b, "\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// StateDigest returns a 64-bit FNV-1a hash of WriteState — a compact
// equality witness for "these two schedulers are in byte-identical
// observable states".
func (s *Scheduler) StateDigest() uint64 {
	h := fnv.New64a()
	var b strings.Builder
	_ = s.WriteState(&b) // strings.Builder writes cannot fail
	_, _ = h.Write([]byte(b.String()))
	return h.Sum64()
}
