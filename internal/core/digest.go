package core

import "io"

// appendState appends the scheduler's complete observable state —
// clock, global counters, per-task exact accounting, misses,
// violations, and (when recorded) the full schedule with processor
// assignments — to dst in the canonical text form and returns the
// extended slice. Two schedulers that have followed the same history
// render identically; any divergence in schedules, CPUs, misses, drift
// or lag shows up as a differing byte. The rendering is deterministic:
// tasks in creation order, misses and schedule rows in the order they
// were recorded, all rationals in lowest terms.
//
// TestWriteStateMatchesFmt pins these bytes against an fmt-based
// reference renderer, so the hand-rolled formatting cannot drift from
// the documented format:
//
//	now=%d m=%d totalswt=%s holes=%d overhead=%d
//	task %s wt=%s swt=%s sched=%d sw=%s csw=%s ps=%s drift=%s maxdrift=%s lag=%s init=%d enact=%d miss=%d mig=%d pre=%d
//	miss %s sub=%d deadline=%d
//	violation %s
//	slot %d:[ %s/%d@%d]...
//
//lint:noalloc digest path: snapshots run per slot under pd2d
func (s *Scheduler) appendState(dst []byte) []byte {
	dst = append(dst, "now="...)
	dst = appendInt(dst, int64(s.now))
	dst = append(dst, " m="...)
	dst = appendInt(dst, int64(s.cfg.M))
	dst = append(dst, " totalswt="...)
	dst = s.totalSwt.Append(dst)
	dst = append(dst, " holes="...)
	dst = appendInt(dst, s.holes)
	dst = append(dst, " overhead="...)
	dst = appendInt(dst, s.overheadSlots)
	dst = append(dst, '\n')
	for _, ts := range s.tasks {
		s.syncTask(ts, s.now)
		m := ts.metrics()
		dst = append(dst, "task "...)
		dst = append(dst, m.Name...)
		dst = append(dst, " wt="...)
		dst = m.Weight.Append(dst)
		dst = append(dst, " swt="...)
		dst = m.SchedWeight.Append(dst)
		dst = append(dst, " sched="...)
		dst = appendInt(dst, m.Scheduled)
		dst = append(dst, " sw="...)
		dst = m.CumSW.Append(dst)
		dst = append(dst, " csw="...)
		dst = m.CumCSW.Append(dst)
		dst = append(dst, " ps="...)
		dst = m.CumPS.Append(dst)
		dst = append(dst, " drift="...)
		dst = m.Drift.Append(dst)
		dst = append(dst, " maxdrift="...)
		dst = m.MaxAbsDrift.Append(dst)
		dst = append(dst, " lag="...)
		dst = m.Lag.Append(dst)
		dst = append(dst, " init="...)
		dst = appendInt(dst, m.Initiations)
		dst = append(dst, " enact="...)
		dst = appendInt(dst, m.Enactments)
		dst = append(dst, " miss="...)
		dst = appendInt(dst, m.Misses)
		dst = append(dst, " mig="...)
		dst = appendInt(dst, m.Migrations)
		dst = append(dst, " pre="...)
		dst = appendInt(dst, m.Preemptions)
		dst = append(dst, '\n')
	}
	for _, miss := range s.misses {
		dst = append(dst, "miss "...)
		dst = append(dst, miss.Task...)
		dst = append(dst, " sub="...)
		dst = appendInt(dst, miss.Subtask)
		dst = append(dst, " deadline="...)
		dst = appendInt(dst, int64(miss.Deadline))
		dst = append(dst, '\n')
	}
	for _, v := range s.violations {
		dst = append(dst, "violation "...)
		dst = append(dst, v...)
		dst = append(dst, '\n')
	}
	for t, row := range s.schedule {
		dst = append(dst, "slot "...)
		dst = appendInt(dst, int64(t))
		dst = append(dst, ':')
		for _, e := range row {
			dst = append(dst, ' ')
			dst = append(dst, e.Task...)
			dst = append(dst, '/')
			dst = appendInt(dst, e.Subtask)
			dst = append(dst, '@')
			dst = appendInt(dst, int64(e.CPU))
		}
		dst = append(dst, '\n')
	}
	return dst
}

// appendInt is strconv.AppendInt base 10, local so the digest path has
// a single formatting dependency set.
//
//lint:noalloc digest path helper
func appendInt(dst []byte, v int64) []byte {
	if v < 0 {
		dst = append(dst, '-')
		// -v overflows for MinInt64; render via the unsigned magnitude.
		return appendUint(dst, ^uint64(v)+1)
	}
	return appendUint(dst, uint64(v))
}

//lint:noalloc digest path helper
func appendUint(dst []byte, v uint64) []byte {
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return append(dst, buf[i:]...)
}

// WriteState writes the canonical rendering (see appendState) to w.
//
// This is the engine's snapshot hook for differential testing and for
// internal/serve's snapshot/restore machinery: a restored shard proves
// itself by matching the digest of the shard it replaced. The render
// buffer is retained on the scheduler, so steady-state snapshots do not
// allocate.
//
//lint:allocok writes through the caller's io.Writer; the render itself (appendState) is the checked hot path
func (s *Scheduler) WriteState(w io.Writer) error {
	s.stateBuf = s.appendState(s.stateBuf[:0])
	_, err := w.Write(s.stateBuf)
	return err
}

// StateDigest returns a 64-bit FNV-1a hash of WriteState — a compact
// equality witness for "these two schedulers are in byte-identical
// observable states".
//
//lint:noalloc digest path: hashed every slot by pd2d status reporting
func (s *Scheduler) StateDigest() uint64 {
	s.stateBuf = s.appendState(s.stateBuf[:0])
	// Inlined FNV-1a (hash/fnv's New64a allocates its state).
	const offset64 = 14695981039346656037
	const prime64 = 1099511628211
	h := uint64(offset64)
	for _, c := range s.stateBuf {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}
