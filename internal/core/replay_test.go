package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/frac"
	"repro/internal/model"
)

// replayer recomputes the ideal schedules I_SW and I_CSW of one task
// directly from the Fig. 5 definition, using only the recorded subtask
// parameters (releases, b-bits, epoch starts, halts) and the per-slot
// scheduling-weight series. It shares no state with the engine's online
// trackers, so agreement between the two is a strong differential check.
type replayer struct {
	subs []SubtaskInfo
	swt  []frac.Rat // scheduling weight in effect during each slot

	finalAlloc []frac.Rat   // allocation in slot D(I_SW, T_j)-1
	completion []model.Time // D(I_SW, T_j)
	allocs     [][]frac.Rat // per-subtask per-slot allocations (from release)
}

func newReplayer(subs []SubtaskInfo, swt []frac.Rat) *replayer {
	r := &replayer{
		subs:       subs,
		swt:        swt,
		finalAlloc: make([]frac.Rat, len(subs)),
		completion: make([]model.Time, len(subs)),
		allocs:     make([][]frac.Rat, len(subs)),
	}
	for j := range subs {
		r.compute(j)
	}
	return r
}

// compute evaluates subtask j's per-slot allocations per Fig. 5: the first
// slot pairs with the predecessor's final slot unless the subtask starts an
// epoch; later slots get min(swt(t), 1 - cum); completion is the first
// integral time the total reaches one, or the halt time.
func (r *replayer) compute(j int) {
	sub := r.subs[j]
	horizon := model.Time(len(r.swt))
	if sub.Absent {
		r.completion[j] = sub.Release
		r.finalAlloc[j] = frac.Zero
		return
	}
	cum := frac.Zero
	var allocs []frac.Rat
	t := sub.Release
	for ; t < horizon; t++ {
		if sub.Halted && t >= sub.HaltTime {
			break
		}
		var alloc frac.Rat
		if t == sub.Release {
			switch {
			case sub.EpochStart, j == 0,
				r.subs[j-1].Halted && r.subs[j-1].HaltTime <= sub.Release,
				r.subs[j-1].BBit == 0:
				alloc = r.swt[t]
			default:
				alloc = r.swt[t].Sub(r.finalAlloc[j-1])
			}
		} else {
			alloc = frac.Min(r.swt[t], frac.One.Sub(cum))
		}
		cum = cum.Add(alloc)
		allocs = append(allocs, alloc)
		if cum.Eq(frac.One) {
			t++
			break
		}
	}
	r.allocs[j] = allocs
	if sub.Halted {
		r.completion[j] = sub.HaltTime
		r.finalAlloc[j] = frac.Zero
		return
	}
	r.completion[j] = t
	if len(allocs) > 0 && cum.Eq(frac.One) {
		r.finalAlloc[j] = allocs[len(allocs)-1]
	}
}

// cumSW returns A(I_SW, T, 0, t); cumCSW excludes halted subtasks.
func (r *replayer) cumSW(t model.Time, clairvoyant bool) frac.Rat {
	total := frac.Zero
	for j, sub := range r.subs {
		if clairvoyant && sub.Halted {
			continue
		}
		for i, alloc := range r.allocs[j] {
			if sub.Release+model.Time(i) >= t {
				break
			}
			total = total.Add(alloc)
		}
	}
	return total
}

// runWithSampling drives a scenario while sampling per-slot swt and
// cumulative ideals for every task.
func runWithSampling(t *testing.T, s *Scheduler, horizon model.Time,
	hook func(model.Time, *Scheduler)) (swt map[string][]frac.Rat, sw, csw map[string][]frac.Rat) {
	t.Helper()
	swt = map[string][]frac.Rat{}
	sw = map[string][]frac.Rat{}
	csw = map[string][]frac.Rat{}
	for s.Now() < horizon {
		if hook != nil {
			hook(s.Now(), s)
		}
		s.Step()
		for _, name := range s.TaskNames() {
			m, _ := s.Metrics(name)
			swt[name] = append(swt[name], m.SchedWeight)
			sw[name] = append(sw[name], m.CumSW)
			csw[name] = append(csw[name], m.CumCSW)
		}
	}
	return swt, sw, csw
}

func checkReplay(t *testing.T, s *Scheduler, swt, sw, csw map[string][]frac.Rat, label string) {
	t.Helper()
	for _, name := range s.TaskNames() {
		subs := s.SubtaskHistory(name)
		r := newReplayer(subs, swt[name])
		// I_SW is causal: the engine's tracker must match the definition at
		// every slot.
		for tt := range sw[name] {
			at := model.Time(tt + 1) // samples taken after Step, i.e. A(·, 0, tt+1)
			if got, want := r.cumSW(at, false), sw[name][tt]; !got.Eq(want) {
				t.Fatalf("%s: task %s A(I_SW,0,%d): replay %s, engine %s", label, name, at, got, want)
			}
		}
		// I_CSW is clairvoyant: the engine erases a halted subtask's partial
		// allocation only when the halt happens, so intermediate samples may
		// exceed the clairvoyant value; the final values must agree exactly.
		if n := len(csw[name]); n > 0 {
			at := model.Time(n)
			if got, want := r.cumSW(at, true), csw[name][n-1]; !got.Eq(want) {
				t.Fatalf("%s: task %s A(I_CSW,0,%d): replay %s, engine %s", label, name, at, got, want)
			}
		}
	}
}

// TestIdealTrackerMatchesDefinition: the engine's online I_SW/I_CSW
// trackers agree exactly with an independent evaluation of the Fig. 5
// definition, across randomized adaptive scenarios under both policies.
func TestIdealTrackerMatchesDefinition(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		policy := PolicyOI
		if trial%3 == 1 {
			policy = PolicyLJ
		}
		var tasks []model.Spec
		for i := 0; i < 5; i++ {
			tasks = append(tasks, model.Spec{Name: fmt.Sprintf("T%d", i), Weight: randomLightWeight(r, 16)})
		}
		s := mustNew(t, Config{M: 3, Policy: policy, Police: true, RecordSubtasks: true}, model.System{M: 3, Tasks: tasks})
		swt, sw, csw := runWithSampling(t, s, 150, func(now model.Time, sch *Scheduler) {
			for i := 0; i < 5; i++ {
				if r.Intn(14) == 0 {
					if err := sch.Initiate(fmt.Sprintf("T%d", i), randomLightWeight(r, 16)); err != nil {
						t.Fatal(err)
					}
				}
			}
		})
		checkReplay(t, s, swt, sw, csw, fmt.Sprintf("trial %d (%v)", trial, policy))
	}
}

// TestIdealTrackerMatchesDefinitionAbsent: the differential check holds
// with absent subtasks in the mix (Fig. 12 semantics).
func TestIdealTrackerMatchesDefinitionAbsent(t *testing.T) {
	sys := model.System{M: 1, Tasks: []model.Spec{{Name: "V", Weight: frac.New(5, 16)}}}
	s := mustNew(t, Config{M: 1, Policy: PolicyOI, Police: true, RecordSubtasks: true}, sys)
	if err := s.MarkAbsent("V", 3); err != nil {
		t.Fatal(err)
	}
	if err := s.MarkAbsent("V", 7); err != nil {
		t.Fatal(err)
	}
	swt, sw, csw := runWithSampling(t, s, 50, nil)
	checkReplay(t, s, swt, sw, csw, "absent")
}

// TestIdealTrackerMatchesDefinitionFig6: the worked Fig. 6 scenarios pass
// the differential check too (halting, immediate enactment, deferred
// enactment).
func TestIdealTrackerMatchesDefinitionFig6(t *testing.T) {
	for _, inset := range []string{"b", "c", "d"} {
		initial, target, at, tie := rat("3/20"), frac.Half, model.Time(10), "C"
		switch inset {
		case "c":
			tie = "T"
		case "d":
			initial, target, at, tie = rat("2/5"), rat("3/20"), 1, "T"
		}
		s := mustNew(t, Config{M: 4, Policy: PolicyOI, Police: true, RecordSubtasks: true,
			TieBreak: FavorGroup(tie)}, fig6System(initial))
		swt, sw, csw := runWithSampling(t, s, 30, func(now model.Time, sch *Scheduler) {
			if now == at {
				if err := sch.Initiate("T", target); err != nil {
					t.Fatal(err)
				}
			}
		})
		checkReplay(t, s, swt, sw, csw, "fig6"+inset)
	}
}
