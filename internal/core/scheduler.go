package core

import (
	"errors"
	"fmt"

	"repro/internal/frac"
	"repro/internal/model"
)

// PolicyKind selects how weight-change requests are carried out.
type PolicyKind int

const (
	// PolicyOI applies the paper's fine-grained rules O and I (PD²-OI).
	PolicyOI PolicyKind = iota
	// PolicyLJ reweights by leaving and rejoining per rules L and J
	// (PD²-LJ), the coarse-grained baseline.
	PolicyLJ
	// PolicyHybrid chooses OI or LJ per event via Config.UseOI — the
	// efficiency-versus-accuracy knob of the companion paper.
	PolicyHybrid
)

func (p PolicyKind) String() string {
	switch p {
	case PolicyOI:
		return "PD2-OI"
	case PolicyLJ:
		return "PD2-LJ"
	case PolicyHybrid:
		return "PD2-Hybrid"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(p))
	}
}

// TieBreak orders two tasks that are tied on deadline and b-bit. It returns
// a negative value if task a should be scheduled first, positive if b
// should, and 0 to fall back to task-id order. The paper's examples fix
// such tie-breaks ("all ties are broken in favor of tasks from C").
//
// Implementations run inside the slot loop's priority comparisons and
// must be allocation-free (the loop is //lint:noalloc; see docs/LINT.md).
type TieBreak func(aName, aGroup, bName, bGroup string) int

// FavorGroup returns a TieBreak that prefers tasks in the named group.
func FavorGroup(group string) TieBreak {
	return func(_, ag, _, bg string) int {
		switch {
		case ag == group && bg != group:
			return -1
		case bg == group && ag != group:
			return 1
		default:
			return 0
		}
	}
}

// MissEvent records a deadline miss: subtask Subtask of Task was not
// complete by Deadline. Under PD²-OI and PD²-LJ with valid weights this
// never happens (Theorem 2).
type MissEvent struct {
	Task     string
	Subtask  int64 // absolute subtask index
	Deadline model.Time
}

// DriftEvent records a drift update: at the release (time At) of an
// epoch-starting subtask, the task's drift became Value (Eqn (5)).
type DriftEvent struct {
	At    model.Time
	Value frac.Rat
}

// Config parameterizes a Scheduler.
type Config struct {
	// M is the number of processors (>= 1).
	M int
	// Policy selects the reweighting scheme. Default PolicyOI.
	Policy PolicyKind
	// UseOI decides, for PolicyHybrid, whether a particular request is
	// handled by rules O/I (true) or by leave/join (false). Ignored by the
	// other policies. Nil means always OI.
	UseOI func(task string, from, to frac.Rat) bool
	// TieBreak breaks final priority ties. Nil means task-creation order.
	TieBreak TieBreak
	// Police enforces property (W): weight increases are deferred while the
	// total scheduling weight would exceed M. Strongly recommended; the
	// deadline guarantee of Theorem 2 requires (W).
	Police bool
	// RecordSchedule keeps a per-slot log of which tasks were scheduled,
	// for tests and Gantt rendering. Costs memory proportional to horizon.
	RecordSchedule bool
	// RecordDriftEvents keeps the per-task drift event history (needed for
	// per-event drift analyses such as the Theorem 5 property test).
	RecordDriftEvents bool
	// CheckInvariants enables internal consistency assertions (property (V),
	// allocation bounds); violations are recorded and retrievable via
	// Violations. Intended for tests.
	CheckInvariants bool
	// EarlyRelease enables the ERfair extension the paper's Sec. 2 footnote
	// mentions: a subtask becomes eligible as soon as its predecessor is
	// complete, even before its release time. Deadlines (and hence
	// priorities) are unchanged, so correctness is preserved while idle
	// slots shrink.
	EarlyRelease bool
	// AllowHeavy admits tasks of weight up to 1, scheduled with the full
	// PD² priority (group-deadline second tie-break). Reweighting remains
	// restricted to light tasks — the paper's rules (and their proofs)
	// cover weights at most 1/2 only.
	AllowHeavy bool

	// Overhead modeling (the "efficiency" side of the companion paper's
	// efficiency-versus-accuracy trade-off; Sec. 6 notes that reweighting
	// N tasks simultaneously requires Ω(max(N, M log N)) time under PD²-OI
	// versus O(M log N) under PD²-LJ). Each enacted weight change charges
	// processor time, expressed as a fraction of a quantum; whenever the
	// accumulated debt reaches a full quantum, one processor-slot is stolen
	// from the schedule. Zero values (the default) model free reweighting,
	// matching the paper's simulations, which found measured overheads
	// (~5µs against a 1ms quantum) negligible.
	OverheadOI frac.Rat // cost per rules-O/I enactment
	OverheadLJ frac.Rat // cost per leave/join enactment

	// RecordSubtasks retains every released subtask's parameters for later
	// inspection (SubtaskHistory). Used by differential tests that replay
	// the ideal-schedule definitions independently.
	RecordSubtasks bool
}

// SubtaskInfo is a read-only record of one released subtask
// (Config.RecordSubtasks).
type SubtaskInfo struct {
	Abs        int64 // absolute index
	N          int64 // epoch-relative index
	Release    model.Time
	Deadline   model.Time
	BBit       int64
	EpochStart bool
	Scheduled  bool
	SchedSlot  model.Time
	Halted     bool
	HaltTime   model.Time
	Absent     bool
	SWCum      frac.Rat   // A(I_SW, T_j, 0, now)
	SWDone     bool       // completed in I_SW
	SWDoneTime model.Time // D(I_SW, T_j) if complete
}

// SlotEntry records one scheduled quantum: which subtask ran and on which
// processor.
type SlotEntry struct {
	Task    string
	Subtask int64 // absolute subtask index
	CPU     int
}

// Scheduler is the PD² engine for adaptable (AIS) task systems.
//
// The engine is event-driven: per-kind calendars (min-heaps keyed by
// model.Time; see calendar.go) hold pending joins, enactments, releases,
// ERfair speculation candidates, subtask deadlines and waiter
// resolutions, and a priority-indexed ready heap holds each task's
// offered subtask, so a Step touches only the tasks with an event due
// now. Ideal-schedule accrual is advanced lazily in closed form (see
// lazy.go). The original brute-force per-slot loop is preserved verbatim
// in internal/core/reference as a differential oracle; both engines
// produce byte-for-byte identical schedules, metrics, misses and drifts.
type Scheduler struct {
	cfg      Config
	now      model.Time
	tasks    []*taskState
	byName   map[string]*taskState
	totalSwt frac.Rat

	schedule   [][]SlotEntry // per-slot scheduled quanta (RecordSchedule)
	misses     []MissEvent
	drifts     map[string][]DriftEvent
	violations []string

	cpuBusy []bool // scratch: per-slot processor occupancy
	holes   int64  // total idle processor-slots so far

	overheadDebt  frac.Rat // accumulated reweighting cost, in quanta
	overheadSlots int64    // processor-slots stolen to pay the debt

	// Calendar heaps (see calendar.go). seq makes pop order deterministic;
	// markGen dedupes candidates within one pop phase.
	seq       uint64
	markGen   uint64
	evJoin    eventHeap // deferred joins of the initial system
	evEnact   eventHeap // concrete enactment times
	evRelease eventHeap // concrete release times
	evER      eventHeap // ERfair speculation candidates
	evMiss    eventHeap // subtask deadlines (miss detection)
	evResolve eventHeap // D(I_SW,·)-waiter resolution forecasts

	ready readyHeap // tasks with an offered (eligible) subtask

	dueBuf   []*taskState // scratch: tasks due in the current phase
	missBuf  []tevent     // scratch: validated miss events of the slot
	runBuf   []*subtask   // scratch: the slot's scheduled subtasks
	prevRan  []*taskState // tasks scheduled in the previous slot
	curRan   []*taskState // tasks scheduled in the current slot
	stateBuf []byte       // scratch: retained canonical-state render (digest.go)

	subPool []*subtask // free list of retired subtask records
}

// New builds a scheduler over the given system. Tasks with Spec.Join == 0
// join immediately; later joiners enter at their join time. Weights must be
// at most 1/2 (the paper's scope) and the initial total weight at most M.
func New(cfg Config, sys model.System) (*Scheduler, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if cfg.M == 0 {
		cfg.M = sys.M
	}
	if cfg.M != sys.M {
		return nil, fmt.Errorf("core: config M=%d disagrees with system M=%d", cfg.M, sys.M)
	}
	s := &Scheduler{
		cfg:    cfg,
		byName: make(map[string]*taskState, len(sys.Tasks)),
		drifts: make(map[string][]DriftEvent),
	}
	s.ready.sched = s
	for _, spec := range sys.Tasks {
		if err := checkAdmissibleWeight(spec.Weight, cfg.AllowHeavy); err != nil {
			return nil, fmt.Errorf("core: task %s: %w", spec.Name, err)
		}
		ts := &taskState{
			id:    len(s.tasks),
			name:  spec.Name,
			group: spec.Group,
			join:  spec.Join,
			wt:    spec.Weight,
			swt:   spec.Weight,
			nextRel: pendingRelease{
				at: noTime,
			},
			lastCPU:     -1,
			lastRunSlot: noTime,
			readyIdx:    -1,
		}
		s.tasks = append(s.tasks, ts)
		s.byName[ts.name] = ts
	}
	// Capacity check over the time-0 joiners.
	initial := frac.Zero
	for _, ts := range s.tasks {
		if ts.join == 0 {
			initial = initial.Add(ts.wt)
		}
	}
	if frac.FromInt(int64(cfg.M)).Less(initial) {
		return nil, fmt.Errorf("core: initial total weight %s exceeds M=%d", initial, cfg.M)
	}
	for _, ts := range s.tasks {
		if ts.join == 0 {
			s.joinNow(ts)
		} else {
			s.pushEvent(evKindJoin, tevent{at: ts.join, ts: ts})
		}
	}
	return s, nil
}

// calendar maps an event kind to its heap. The switch is the single
// kind-dispatch point of the engine and is kept exhaustive by pd2lint's
// eventexhaust check: adding an event kind fails lint until a heap (and
// its pop-time validation) exists for it. The trailing panic names the
// invariant instead of silently mis-filing events.
func (s *Scheduler) calendar(k eventKind) *eventHeap {
	switch k {
	case evKindJoin:
		return &s.evJoin
	case evKindEnact:
		return &s.evEnact
	case evKindRelease:
		return &s.evRelease
	case evKindER:
		return &s.evER
	case evKindMiss:
		return &s.evMiss
	case evKindResolve:
		return &s.evResolve
	}
	panic(fmt.Sprintf("core: calendar: unknown event kind %d (every eventKind must have a heap)", uint8(k)))
}

// pendingEvents returns the total number of queued calendar entries
// across every kind (stale entries included); used by tests to assert
// the calendars drain.
func (s *Scheduler) pendingEvents() int {
	n := 0
	for k := eventKind(0); k < numEventKinds; k++ {
		n += len(s.calendar(k).ev)
	}
	return n
}

// pushEvent stamps the event with the next push sequence number and adds
// it to the calendar of the given kind.
func (s *Scheduler) pushEvent(k eventKind, e tevent) {
	s.seq++
	e.seq = s.seq
	s.calendar(k).push(e)
}

// joinNow activates a task at the current time and schedules its first
// subtask release (a weight "enactment" at join, per Def. 1).
func (s *Scheduler) joinNow(ts *taskState) {
	ts.joined = true
	ts.join = s.now
	ts.accrSynced = s.now
	ts.psSynced = s.now
	s.totalSwt = s.totalSwt.Add(ts.swt)
	ts.nextRel = pendingRelease{at: s.now, epochStart: true}
	s.pushEvent(evKindRelease, tevent{at: s.now, ts: ts})
	if s.cfg.RecordSubtasks {
		ts.swtHist = append(ts.swtHist, WeightChange{At: s.now, W: ts.swt})
	}
}

// Now returns the current time: Step has simulated slots [0, Now).
func (s *Scheduler) Now() model.Time { return s.now }

// M returns the processor count.
func (s *Scheduler) M() int { return s.cfg.M }

// TotalSchedWeight returns the current total scheduling weight.
func (s *Scheduler) TotalSchedWeight() frac.Rat { return s.totalSwt }

// Misses returns all deadline misses recorded so far.
func (s *Scheduler) Misses() []MissEvent { return s.misses }

// Violations returns internal invariant violations recorded so far
// (Config.CheckInvariants must be set). A correct engine records none.
func (s *Scheduler) Violations() []string { return s.violations }

// Holes returns the total number of idle processor-slots so far (slots
// stolen for reweighting overhead are not counted as holes).
func (s *Scheduler) Holes() int64 { return s.holes }

// OverheadSlots returns the processor-slots consumed by reweighting
// overhead so far (Config.OverheadOI/OverheadLJ).
func (s *Scheduler) OverheadSlots() int64 { return s.overheadSlots }

// DriftEvents returns the recorded drift-update history of a task
// (Config.RecordDriftEvents must be set).
func (s *Scheduler) DriftEvents(name string) []DriftEvent { return s.drifts[name] }

// ScheduleRow returns the names of the tasks scheduled in slot t
// (Config.RecordSchedule must be set).
func (s *Scheduler) ScheduleRow(t model.Time) []string {
	entries := s.ScheduleEntries(t)
	if entries == nil {
		return nil
	}
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Task
	}
	return names
}

// ScheduleEntries returns the quanta scheduled in slot t with subtask
// indices and processor assignments (Config.RecordSchedule must be set).
func (s *Scheduler) ScheduleEntries(t model.Time) []SlotEntry {
	if t < 0 || int(t) >= len(s.schedule) {
		return nil
	}
	return s.schedule[t]
}

// TaskNames returns the names of all tasks in creation order.
func (s *Scheduler) TaskNames() []string {
	names := make([]string, len(s.tasks))
	for i, ts := range s.tasks {
		names[i] = ts.name
	}
	return names
}

// SubtaskHistory returns records of every subtask the task has released
// (Config.RecordSubtasks must be set). Rolled-back ERfair speculations are
// excluded.
func (s *Scheduler) SubtaskHistory(name string) []SubtaskInfo {
	ts, ok := s.byName[name]
	if !ok {
		return nil
	}
	s.syncTask(ts, s.now)
	out := make([]SubtaskInfo, 0, len(ts.history))
	for _, sub := range ts.history {
		if sub.abs > ts.absN { // rolled back
			continue
		}
		out = append(out, SubtaskInfo{
			Abs: sub.abs, N: sub.n,
			Release: sub.release, Deadline: sub.deadline, BBit: sub.bbit,
			EpochStart: sub.epochStart,
			Scheduled:  sub.scheduled, SchedSlot: sub.schedSlot,
			Halted: sub.halted, HaltTime: sub.haltTime,
			Absent: sub.absent,
			SWCum:  sub.swCum, SWDone: sub.swDone, SWDoneTime: sub.swDoneTime,
		})
	}
	return out
}

// Metrics returns a snapshot of one task's accounting. The boolean is false
// if the task is unknown.
func (s *Scheduler) Metrics(name string) (TaskMetrics, bool) {
	ts, ok := s.byName[name]
	if !ok {
		return TaskMetrics{}, false
	}
	s.syncTask(ts, s.now)
	return ts.metrics(), true
}

// AllMetrics returns snapshots for every task, in creation order.
func (s *Scheduler) AllMetrics() []TaskMetrics {
	out := make([]TaskMetrics, len(s.tasks))
	for i, ts := range s.tasks {
		s.syncTask(ts, s.now)
		out[i] = ts.metrics()
	}
	return out
}

// Errors returned by the mutation methods.
var (
	ErrUnknownTask = errors.New("core: unknown task")
	ErrNotActive   = errors.New("core: task is not active")
	// ErrLeaveTooEarly reports a Leave attempted before rule L permits it
	// (now < d(T_i) + b(T_i) for the last scheduled subtask). Callers that
	// queue departures — internal/serve defers such leaves to a later slot
	// boundary — match it with errors.Is.
	ErrLeaveTooEarly = errors.New("core: leave violates rule L")
)

// Initiate requests a weight change for the named task, effective at the
// current time (i.e. applied to the next Step). The actual weight wt(T, t)
// changes immediately — I_PS begins allocating at the new rate — while the
// scheduling weight changes when the policy enacts the request.
func (s *Scheduler) Initiate(name string, v frac.Rat) error {
	ts, ok := s.byName[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownTask, name)
	}
	if !ts.joined || ts.left {
		return fmt.Errorf("%w: %s", ErrNotActive, name)
	}
	if err := model.CheckLightWeight(v); err != nil {
		return fmt.Errorf("core: reweight %s: %w", name, err)
	}
	if model.IsHeavy(ts.swt) {
		return fmt.Errorf("core: reweight %s: task is heavy (weight %s); the paper's rules cover light tasks only", name, ts.swt)
	}
	// A request for the current scheduling weight with nothing pending is a
	// no-op: there is no change to enact.
	if v.Eq(ts.swt) && ts.enact == nil && !ts.ljLeaving && ts.nextRel.waitD == nil {
		s.syncPS(ts, s.now) // wt changes the I_PS rate from now on
		ts.wt = v
		return nil
	}
	// Sync-before-mutation: materialize the lazy accrual state at t_c so
	// the rules below observe exactly what the per-slot engine would.
	s.syncTask(ts, s.now)
	ts.initiations++
	ts.wt = v // I_PS switches to the new weight at initiation
	useOI := true
	switch s.cfg.Policy {
	case PolicyLJ:
		useOI = false
	case PolicyHybrid:
		if s.cfg.UseOI != nil {
			useOI = s.cfg.UseOI(name, ts.swt, v)
		}
	}
	// A new initiation skips any previously initiated but unenacted event
	// (Sec. 3.2), so cancel pending enactments before applying the rules.
	ts.enact = nil
	// Under ERfair a successor may have been instantiated speculatively
	// (nominal release in the future). The reweighting rules reason about
	// subtasks released at or before t_c, so speculation must be unwound:
	// an unscheduled speculative subtask is rolled back entirely; one that
	// already executed keeps its quantum but is retired from the ideal
	// trackers (its abandoned epoch will never accrue).
	s.unwindSpeculation(ts)
	if useOI {
		s.initiateOI(ts, v)
	} else {
		s.initiateLJ(ts, v)
	}
	// Register the resulting calendar entries: a concrete enactment or
	// release time, or a waiter-resolution forecast.
	if e := ts.enact; e != nil && e.waitD == nil {
		s.pushEvent(evKindEnact, tevent{at: e.at, ts: ts})
	}
	if r := &ts.nextRel; r.waitD == nil && r.at != noTime {
		s.pushEvent(evKindRelease, tevent{at: r.at, ts: ts})
	}
	s.scheduleResolve(ts)
	s.updateOffer(ts)
	return nil
}

// unwindSpeculation removes the effects of ERfair early instantiation so
// the reweighting rules see the state a plain Pfair scheduler would have.
// An unscheduled speculative subtask (nominal release still in the future)
// is rolled back entirely; one that already executed keeps its quantum but
// is retired from the ideal trackers. Rolling back can expose a second
// speculative subtask underneath, so the unwind iterates.
func (s *Scheduler) unwindSpeculation(ts *taskState) {
	changed := false
	for {
		sub := ts.lastReleased
		if sub == nil || sub.release <= s.now || sub.halted {
			break
		}
		changed = true
		dropLive(ts, sub)
		if !sub.scheduled {
			// Full rollback: the subtask never ran and has accrued nothing.
			ts.lastReleased = sub.prev
			ts.epochN = sub.n - 1
			ts.absN = sub.abs - 1
			ts.nextRel = pendingRelease{at: sub.release, noEarly: true}
			s.pushEvent(evKindRelease, tevent{at: sub.release, ts: ts})
			if n := len(ts.history); n > 0 && ts.history[n-1] == sub {
				ts.history = ts.history[:n-1]
			}
			continue
		}
		// The quantum already executed on spare capacity; retire the
		// subtask from the ideal side so the abandoned window accrues
		// nothing.
		sub.swDone = true
		sub.swDoneTime = s.now
		sub.lastSlotAlloc = frac.Zero
		break
	}
	if changed {
		s.updateOffer(ts)
	}
}

// dropLive removes sub from the task's I_SW live set.
func dropLive(ts *taskState, sub *subtask) {
	live := ts.live[:0]
	for _, x := range ts.live {
		if x != sub {
			live = append(live, x)
		}
	}
	ts.live = live
}

// initiateOI applies rules O and I at time s.now.
func (s *Scheduler) initiateOI(ts *taskState, v frac.Rat) {
	t := s.now
	tj := ts.lastReleased
	// No subtask released at or before t_c: enact immediately.
	if tj == nil || tj.release > t {
		ts.enact = &pendingEnact{target: v, at: t, releaseWithEnact: true}
		ts.nextRel = pendingRelease{at: noTime}
		return
	}
	// Last-released subtask's deadline has passed: enact at
	// max(t_c, d(T_j) + b(T_j)).
	if tj.deadline <= t {
		ts.enact = &pendingEnact{
			target: v, at: maxTime(t, tj.deadline+tj.bbit), releaseWithEnact: true,
		}
		ts.nextRel = pendingRelease{at: noTime}
		return
	}
	// r(T_j) <= t_c < d(T_j): ideal- or omission-changeable.
	if tj.scheduled || (tj.halted && tj.haltTime <= t) {
		// Ideal-changeable (T_j complete in S before t_c). A halted T_j can
		// only arise here through event skipping; it behaves like the
		// omission branch below because the halt already happened.
		if tj.halted {
			s.enactAfterHalt(ts, tj, v)
			return
		}
		if ts.swt.Less(v) {
			// Rule I(i): increase — enact immediately; the next subtask is
			// released at D(I_SW, T_j) + b(T_j).
			ts.enact = &pendingEnact{target: v, at: t, releaseWithEnact: false}
			ts.nextRel = pendingRelease{
				at: noTime, epochStart: true, waitD: tj, addB: tj.bbit, clamp: t,
			}
			s.resolveWaiters(ts)
			return
		}
		// Rule I(ii): decrease (or same weight re-request after a skip) —
		// enact at D(I_SW, T_j) + b(T_j) and release then.
		ts.enact = &pendingEnact{
			target: v, at: noTime, waitD: tj, addB: tj.bbit, clamp: t,
			releaseWithEnact: true,
		}
		ts.nextRel = pendingRelease{at: noTime}
		s.resolveWaiters(ts)
		return
	}
	// Omission-changeable: halt T_j now.
	s.halt(tj)
	s.enactAfterHalt(ts, tj, v)
}

// enactAfterHalt schedules the rule-O enactment after T_j has been halted:
// immediately if T_j is the task's very first subtask, otherwise at
// max(t_c, D(I_SW, T_{j-1}) + b(T_{j-1})).
func (s *Scheduler) enactAfterHalt(ts *taskState, tj *subtask, v frac.Rat) {
	t := s.now
	if tj.abs == 1 || tj.prev == nil {
		ts.enact = &pendingEnact{target: v, at: t, releaseWithEnact: true}
		ts.nextRel = pendingRelease{at: noTime}
		return
	}
	prev := tj.prev
	ts.enact = &pendingEnact{
		target: v, at: noTime, waitD: prev, addB: prev.bbit, clamp: t,
		releaseWithEnact: true,
	}
	ts.nextRel = pendingRelease{at: noTime}
	s.resolveWaiters(ts)
}

// initiateLJ applies the leave/join baseline: stop releasing subtasks, then
// rejoin with the new weight at max(t_c, d(T_j) + b(T_j)) where T_j is the
// last released subtask (which, under PD², is the last-scheduled subtask of
// rule L once it executes).
func (s *Scheduler) initiateLJ(ts *taskState, v frac.Rat) {
	t := s.now
	at := t
	if tj := ts.lastReleased; tj != nil && !tj.halted {
		at = maxTime(t, tj.deadline+tj.bbit)
	}
	ts.enact = &pendingEnact{target: v, at: at, releaseWithEnact: true, viaLJ: true}
	ts.nextRel = pendingRelease{at: noTime}
	ts.ljLeaving = true
}

// halt marks T_j halted at the current time: it will never be scheduled,
// I_SW stops allocating to it, and I_CSW retroactively removes its partial
// allocation (the clairvoyant schedule never allocated to it at all).
func (s *Scheduler) halt(sub *subtask) {
	sub.halted = true
	sub.haltTime = s.now
	sub.swDone = true
	sub.swDoneTime = s.now
	sub.task.cumCSW = sub.task.cumCSW.Sub(sub.swCum)
	dropLive(sub.task, sub)
	s.updateOffer(sub.task)
}

// Join adds a new task at the current time. The join condition J (total
// weight at most M after joining) is enforced.
func (s *Scheduler) Join(spec model.Spec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if err := checkAdmissibleWeight(spec.Weight, s.cfg.AllowHeavy); err != nil {
		return fmt.Errorf("core: join %s: %w", spec.Name, err)
	}
	if _, dup := s.byName[spec.Name]; dup {
		return fmt.Errorf("core: join: duplicate task name %q", spec.Name)
	}
	if frac.FromInt(int64(s.cfg.M)).Less(s.totalSwt.Add(spec.Weight)) {
		return fmt.Errorf("core: join %s would raise total weight to %s > M=%d (condition J)",
			spec.Name, s.totalSwt.Add(spec.Weight), s.cfg.M)
	}
	ts := &taskState{
		id:          len(s.tasks),
		name:        spec.Name,
		group:       spec.Group,
		wt:          spec.Weight,
		swt:         spec.Weight,
		lastCPU:     -1,
		lastRunSlot: noTime,
		readyIdx:    -1,
	}
	s.tasks = append(s.tasks, ts)
	s.byName[ts.name] = ts
	s.joinNow(ts)
	return nil
}

// DelayNext postpones the task's next (normal, Eqn (4)) subtask release by
// sep slots — an intra-sporadic separation. While the task is inactive in
// the resulting gap (beyond the current subtask's deadline), I_PS allocates
// nothing to it, matching the IS-model semantics of Sec. 4.1. Delaying is
// not allowed while a reweighting event is in flight.
func (s *Scheduler) DelayNext(name string, sep int64) error {
	ts, ok := s.byName[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownTask, name)
	}
	if !ts.joined || ts.left {
		return fmt.Errorf("%w: %s", ErrNotActive, name)
	}
	if sep < 0 {
		return fmt.Errorf("core: negative IS separation %d", sep)
	}
	if sep == 0 {
		return nil
	}
	if ts.enact != nil || ts.nextRel.waitD != nil || ts.ljLeaving {
		return fmt.Errorf("core: cannot delay %s while a reweighting event is in flight", name)
	}
	s.syncTask(ts, s.now) // materialize before unwinding/mutating the pause window
	if sub := ts.lastReleased; sub != nil && sub.release > s.now {
		if sub.scheduled {
			return fmt.Errorf("core: cannot delay %s: its next subtask already executed early", name)
		}
		s.unwindSpeculation(ts)
	}
	if ts.nextRel.at == noTime || ts.nextRel.at < s.now {
		return fmt.Errorf("core: %s has no pending release to delay", name)
	}
	ts.nextRel.at += sep
	ts.nextRel.noEarly = true
	s.pushEvent(evKindRelease, tevent{at: ts.nextRel.at, ts: ts})
	// The task is inactive — and unpaid by I_PS — from its current
	// subtask's deadline until the delayed release.
	pauseFrom := s.now
	if ts.lastReleased != nil {
		pauseFrom = ts.lastReleased.deadline
	}
	if ts.psPauseUntil <= pauseFrom {
		ts.psPauseFrom = pauseFrom
	}
	if ts.nextRel.at > ts.psPauseUntil {
		ts.psPauseUntil = ts.nextRel.at
	}
	return nil
}

// MarkAbsent declares that the task's subtask with the given absolute index
// (which must not have been released yet) will be *absent* in the AGIS
// sense: it keeps its window but is never scheduled and receives no ideal
// allocation, being complete at its release in every schedule. Removing a
// subtask this way is the displacement operation of the paper's appendix.
func (s *Scheduler) MarkAbsent(name string, absIndex int64) error {
	ts, ok := s.byName[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownTask, name)
	}
	if absIndex <= ts.absN {
		return fmt.Errorf("core: subtask %s_%d already released", name, absIndex)
	}
	if ts.pendingAbsent == nil {
		ts.pendingAbsent = make(map[int64]bool)
	}
	ts.pendingAbsent[absIndex] = true
	return nil
}

// Leave removes a task at the current time. The leave condition L requires
// now >= d(T_i) + b(T_i) for the task's last *scheduled* subtask T_i;
// calling Leave earlier is an error. A released but unscheduled successor is
// withdrawn (it becomes absent, exactly like a halted subtask).
func (s *Scheduler) Leave(name string) error {
	ts, ok := s.byName[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownTask, name)
	}
	if !ts.joined || ts.left {
		return fmt.Errorf("%w: %s", ErrNotActive, name)
	}
	// Freeze the lazy accrual at the leave time; a left task is skipped by
	// all future syncs, exactly as the per-slot loop skipped left tasks.
	s.syncTask(ts, s.now)
	var pending []*subtask // released, unscheduled: withdrawn if the leave succeeds
	lastSched := ts.lastReleased
	for lastSched != nil && !lastSched.scheduled {
		if !lastSched.halted {
			pending = append(pending, lastSched)
		}
		lastSched = lastSched.prev
	}
	if lastSched != nil {
		if s.now < lastSched.deadline+lastSched.bbit {
			return fmt.Errorf("%w: %s at %d (needs t >= %d)",
				ErrLeaveTooEarly, name, s.now, lastSched.deadline+lastSched.bbit)
		}
	}
	for _, sub := range pending {
		s.halt(sub)
	}
	ts.left = true
	ts.enact = nil
	ts.nextRel = pendingRelease{at: noTime}
	s.totalSwt = s.totalSwt.Sub(ts.swt)
	s.updateOffer(ts)
	return nil
}

// Step simulates one slot: enactments and releases due now, PD² scheduling,
// then ideal-schedule accrual. Initiations and joins/leaves for this slot
// must be issued (via Initiate/Join/Leave) before calling Step.
//
// Each phase pops its calendar and re-validates every event against the
// predicate the original per-slot scan evaluated (the scan itself is
// preserved in internal/core/reference), so stale or duplicate events are
// dropped and the phases process exactly the tasks the scan would have —
// in the same (task-id) order.
//
//lint:noalloc the slot loop; steady state must not allocate (TestStepSteadyStateAllocs)
func (s *Scheduler) Step() {
	t := s.now

	// Scheduled joins from the initial system.
	if due := s.collectDue(evKindJoin, t, func(ts *taskState) bool {
		return !ts.joined && !ts.left && ts.join == t
	}); len(due) > 0 {
		for _, ts := range due {
			// Condition J: defer the join while capacity is lacking.
			if frac.FromInt(int64(s.cfg.M)).Less(s.totalSwt.Add(ts.swt)) {
				ts.join = t + 1
				s.pushEvent(evKindJoin, tevent{at: t + 1, ts: ts})
				continue
			}
			s.joinNow(ts)
		}
		s.resetDue()
	}

	// Enactments due now: non-increases first so that freed capacity can be
	// claimed by increases policed under (W) in the same slot.
	if due := s.collectDue(evKindEnact, t, func(ts *taskState) bool {
		e := ts.enact
		return e != nil && e.waitD == nil && e.at == t && !ts.left
	}); len(due) > 0 {
		for pass := 0; pass < 2; pass++ {
			for _, ts := range due {
				e := ts.enact
				if e == nil || e.at != t || ts.left {
					continue
				}
				increase := ts.swt.Less(e.target)
				if (pass == 0) == increase {
					continue
				}
				if s.cfg.Police && increase {
					newTotal := s.totalSwt.Sub(ts.swt).Add(e.target)
					if frac.FromInt(int64(s.cfg.M)).Less(newTotal) {
						// Defer under (W): retry next slot. A rule-I(i) event's
						// separately-scheduled release is gated below on the
						// enactment having landed, so the new epoch cannot start
						// early; it still waits for D(I_SW, T_j) + b(T_j).
						e.at = t + 1
						s.pushEvent(evKindEnact, tevent{at: t + 1, ts: ts})
						continue
					}
				}
				// The scheduling weight changes now: materialize the accrual
				// of slots < t under the old weight first (slot t itself
				// accrues under the new weight, as in the per-slot loop).
				s.syncAccrual(ts, t)
				s.totalSwt = s.totalSwt.Sub(ts.swt).Add(e.target)
				ts.swt = e.target
				ts.enactments++
				ts.ljLeaving = false
				if s.cfg.RecordSubtasks {
					ts.swtHist = append(ts.swtHist, WeightChange{At: t, W: ts.swt})
				}
				if e.viaLJ {
					s.overheadDebt = s.overheadDebt.Add(s.cfg.OverheadLJ)
				} else {
					s.overheadDebt = s.overheadDebt.Add(s.cfg.OverheadOI)
				}
				if e.releaseWithEnact {
					ts.nextRel = pendingRelease{at: t, epochStart: true}
					s.pushEvent(evKindRelease, tevent{at: t, ts: ts})
				} else {
					// Rule I(i): the release was scheduled independently (at
					// D(I_SW, T_j) + b(T_j)); a policing deferral may have pushed
					// the enactment past it, and the epoch cannot start before
					// its weight change, so clamp the release to now.
					if ts.nextRel.waitD != nil {
						if ts.nextRel.clamp < t {
							ts.nextRel.clamp = t
						}
					} else if ts.nextRel.at != noTime && ts.nextRel.at < t {
						ts.nextRel.at = t
						s.pushEvent(evKindRelease, tevent{at: t, ts: ts})
					}
				}
				ts.enact = nil
				// The new weight changes the completion forecast any
				// remaining waiter was scheduled on.
				s.scheduleResolve(ts)
			}
		}
		s.resetDue()
	}

	// Releases due now. Under ERfair, a normal (Eqn (4)) release may be
	// instantiated early — with its nominal release time and deadline —
	// once the predecessor has completed, so it can execute ahead of its
	// window. Candidates come from the release calendar (concrete release
	// times) and the ER calendar (a predecessor completed last slot).
	s.markGen++
	for {
		e, ok := s.calendar(evKindRelease).popDue(t)
		if !ok {
			break
		}
		if ts := e.ts; ts.mark != s.markGen {
			ts.mark = s.markGen
			s.dueBuf = append(s.dueBuf, ts)
		}
	}
	for {
		e, ok := s.calendar(evKindER).popDue(t)
		if !ok {
			break
		}
		if ts := e.ts; ts.mark != s.markGen {
			ts.mark = s.markGen
			s.dueBuf = append(s.dueBuf, ts)
		}
	}
	if len(s.dueBuf) > 0 {
		sortTasksByID(s.dueBuf)
		for _, ts := range s.dueBuf {
			if !ts.joined || ts.left || ts.nextRel.waitD != nil || ts.nextRel.at == noTime {
				continue
			}
			// An epoch-start release may not fire while its weight change is
			// still pending (policing can defer the enactment past the release
			// time the D-waiter resolved to); retry next slot.
			if ts.nextRel.epochStart && ts.enact != nil {
				s.pushEvent(evKindRelease, tevent{at: t + 1, ts: ts})
				continue
			}
			switch {
			case ts.nextRel.at <= t:
				s.release(ts, maxTime(ts.nextRel.at, t))
			case s.cfg.EarlyRelease && ts.nextRel.at > t &&
				!ts.nextRel.epochStart && !ts.nextRel.noEarly &&
				ts.enact == nil && !ts.ljLeaving &&
				ts.lastReleased != nil && ts.earliestIncomplete() == nil:
				s.release(ts, ts.nextRel.at)
			}
		}
		s.resetDue()
	}

	// Deadline-miss detection: a subtask incomplete at the start of slot
	// d(T_j) has missed. The calendar holds one event per released subtask
	// at its deadline; validation replicates the scan's one-generation
	// chain walk (a subtask trimmed out of the chain is never reported).
	for {
		e, ok := s.calendar(evKindMiss).popDue(t)
		if !ok {
			break
		}
		sub, ts := e.sub, e.ts
		if e.stamp != sub.stamp || sub.task != ts {
			continue // recycled record
		}
		if lr := ts.lastReleased; lr == nil || (sub != lr && sub != lr.prev) {
			continue // trimmed out of the one-generation chain
		}
		if sub.scheduled || sub.halted || sub.absent || sub.missed || sub.deadline > t {
			continue
		}
		s.missBuf = append(s.missBuf, e)
	}
	if len(s.missBuf) > 0 {
		sortMisses(s.missBuf)
		for _, e := range s.missBuf {
			sub, ts := e.sub, e.ts
			if sub.missed {
				continue
			}
			sub.missed = true
			ts.misses++
			s.misses = append(s.misses, MissEvent{Task: ts.name, Subtask: sub.abs, Deadline: sub.deadline})
		}
		for i := range s.missBuf {
			s.missBuf[i] = tevent{}
		}
		s.missBuf = s.missBuf[:0]
	}

	// PD² scheduling of slot t. The ready heap holds exactly the tasks the
	// original scan would have found eligible; popping it yields the
	// unique highest-priority subtasks in priority order (the PD² order
	// extended by task id is a strict total order, so the selection —
	// like topk.Partial over the scanned set — is deterministic).
	//
	// Pay down accumulated reweighting overhead by stealing processor-slots
	// (at most one per slot: the scheduling work serializes on the event
	// queue). The stolen quantum occupies the highest-numbered processor,
	// so affinity/migration accounting sees it as busy.
	if s.cpuBusy == nil {
		s.cpuBusy = make([]bool, s.cfg.M) //lint:allow hotalloc one-time scratch warmup before the first slot; steady state reuses it
	}
	for c := range s.cpuBusy {
		s.cpuBusy[c] = false
	}
	avail := s.cfg.M
	if frac.One.LessEq(s.overheadDebt) && avail > 0 {
		avail--
		s.overheadSlots++
		s.overheadDebt = s.overheadDebt.Sub(frac.One)
		s.cpuBusy[s.cfg.M-1] = true
	}
	n := s.ready.len()
	if n > avail {
		n = avail
	}
	for i := 0; i < n; i++ {
		ts := s.ready.popMin()
		s.runBuf = append(s.runBuf, ts.offer)
		s.curRan = append(s.curRan, ts)
	}
	// Processor assignment with affinity: a task keeps its previous CPU
	// when it is free, so the migration counts reflect unavoidable moves.
	for _, sub := range s.runBuf {
		ts := sub.task
		if c := ts.lastCPU; c >= 0 && c < s.cfg.M && !s.cpuBusy[c] {
			s.cpuBusy[c] = true
			sub.schedCPU = c
		} else {
			sub.schedCPU = -1
		}
	}
	next := 0
	for _, sub := range s.runBuf {
		if sub.schedCPU >= 0 {
			continue
		}
		for s.cpuBusy[next] {
			next++
		}
		sub.schedCPU = next
		s.cpuBusy[next] = true
	}
	var row []SlotEntry
	for _, sub := range s.runBuf {
		ts := sub.task
		sub.scheduled = true
		sub.schedSlot = t
		ts.scheduledQuanta++
		if ts.lastCPU >= 0 && ts.lastCPU != sub.schedCPU {
			ts.migrations++
		}
		ts.lastCPU = sub.schedCPU
		ts.lastRunSlot = t
		if s.cfg.RecordSchedule {
			//lint:allow hotalloc RecordSchedule diagnostic mode retains per-slot rows by design
			row = append(row, SlotEntry{Task: ts.name, Subtask: sub.abs, CPU: sub.schedCPU})
		}
		// The completed quantum advances the task's offer (possibly to an
		// already-released successor); under ERfair the completion also
		// makes the task a speculation candidate next slot.
		s.updateOffer(ts)
		if s.cfg.EarlyRelease {
			s.pushEvent(evKindER, tevent{at: t + 1, ts: ts})
		}
	}
	// Preemption accounting: a task that ran in slot t-1 and has eligible
	// work now but was not chosen has been preempted.
	for _, ts := range s.prevRan {
		if ts.lastRunSlot != t && ts.eligible(t, s.cfg.EarlyRelease) != nil {
			ts.preemptions++
		}
	}
	if s.cfg.RecordSchedule {
		s.schedule = append(s.schedule, row)
	}
	s.holes += int64(avail - n)
	for i := range s.runBuf {
		s.runBuf[i] = nil // release subtask pointers
	}
	s.runBuf = s.runBuf[:0]
	for i := range s.prevRan {
		s.prevRan[i] = nil
	}
	s.prevRan, s.curRan = s.curRan, s.prevRan[:0]

	// Ideal-schedule accrual for slot t is lazy (see lazy.go); only
	// forecast waiter resolutions run now, with the affected task's
	// accrual materialized through slot t so D(I_SW,·) is known.
	if due := s.collectDue(evKindResolve, t, func(ts *taskState) bool {
		return (ts.enact != nil && ts.enact.waitD != nil) || ts.nextRel.waitD != nil
	}); len(due) > 0 {
		for _, ts := range due {
			s.syncAccrual(ts, t+1)
			s.resolveWaiters(ts)
		}
		s.resetDue()
	}

	s.now = t + 1
}

// collectDue pops every event due at or before t from the calendar of
// the given kind, keeps the tasks passing the validation predicate
// (deduplicated, in task-id order) in s.dueBuf and returns it. Callers
// must resetDue afterwards.
func (s *Scheduler) collectDue(k eventKind, t model.Time, valid func(*taskState) bool) []*taskState {
	h := s.calendar(k)
	s.markGen++
	for {
		e, ok := h.popDue(t)
		if !ok {
			break
		}
		ts := e.ts
		//lint:allow hotalloc the phase predicates are stateless closures the compiler keeps off the heap (TestStepSteadyStateAllocs)
		if ts.mark == s.markGen || !valid(ts) {
			continue
		}
		ts.mark = s.markGen
		s.dueBuf = append(s.dueBuf, ts)
	}
	sortTasksByID(s.dueBuf)
	return s.dueBuf
}

// resetDue clears the scratch buffer of the last collectDue.
func (s *Scheduler) resetDue() {
	for i := range s.dueBuf {
		s.dueBuf[i] = nil
	}
	s.dueBuf = s.dueBuf[:0]
}

// sortTasksByID sorts the (typically tiny) batch in task-id order —
// insertion sort avoids allocation in the hot path.
func sortTasksByID(ts []*taskState) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j].id < ts[j-1].id; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

// sortMisses orders validated miss events like the original chain scan:
// tasks in id order, and within a task the newest subtask first.
func sortMisses(ev []tevent) {
	for i := 1; i < len(ev); i++ {
		for j := i; j > 0 && missEventLess(ev[j], ev[j-1]); j-- {
			ev[j], ev[j-1] = ev[j-1], ev[j]
		}
	}
}

func missEventLess(a, b tevent) bool {
	if a.ts.id != b.ts.id {
		return a.ts.id < b.ts.id
	}
	return a.sub.abs > b.sub.abs
}

// updateOffer recomputes the subtask the task offers to the PD² queue and
// fixes its ready-heap membership. Called after any mutation that can
// change earliestIncomplete (release, scheduling, halt, unwind, leave).
func (s *Scheduler) updateOffer(ts *taskState) {
	var offer *subtask
	if ts.joined && !ts.left {
		offer = ts.earliestIncomplete()
	}
	if offer == ts.offer {
		return
	}
	ts.offer = offer
	switch {
	case offer == nil:
		if ts.readyIdx >= 0 {
			s.ready.remove(ts)
		}
	case ts.readyIdx < 0:
		s.ready.pushTask(ts)
	default:
		s.ready.fix(ts.readyIdx)
	}
}

// RunTo advances the simulation to time horizon.
func (s *Scheduler) RunTo(horizon model.Time) {
	for s.now < horizon {
		s.Step()
	}
}

// Run advances to the horizon, invoking hook (if non-nil) at the start of
// each slot so callers can issue initiations/joins/leaves for that slot.
func (s *Scheduler) Run(horizon model.Time, hook func(t model.Time, s *Scheduler)) {
	for s.now < horizon {
		if hook != nil {
			hook(s.now, s)
		}
		s.Step()
	}
}

// release instantiates the next subtask of ts at time t.
func (s *Scheduler) release(ts *taskState, t model.Time) {
	// Materialize the lazy accrual at the wall-clock slot being processed:
	// the (V) invariant check, the first-slot pairing of the new subtask
	// and the drift update all read state the per-slot loop would have
	// accrued by now. Under ERfair speculation t is the *nominal* release
	// time, which lies in the future — syncing to it would materialize
	// allocations the per-slot loop has not yet made, so sync to s.now.
	s.syncTask(ts, s.now)
	n := ts.epochN + 1
	epochStart := ts.nextRel.epochStart || ts.lastReleased == nil
	if epochStart {
		n = 1
	}
	d := model.EpochDeadline(ts.swt, t, n)
	b := model.EpochBBit(ts.swt, n)
	sub := s.newSubtask()
	sub.task = ts
	sub.n = n
	sub.abs = ts.absN + 1
	sub.epochStart = epochStart
	sub.release = t
	sub.deadline = d
	sub.bbit = b
	sub.groupDeadline = model.GroupDeadline(ts.swt, t, n)
	sub.prev = ts.lastReleased
	if ts.pendingAbsent[sub.abs] {
		delete(ts.pendingAbsent, sub.abs)
		// An absent subtask keeps its window but never runs and receives no
		// ideal allocation: complete at release, with a zero final-slot
		// allocation so its successor's first slot gets the full weight.
		sub.absent = true
		sub.swDone = true
		sub.swDoneTime = t
		sub.lastSlotAlloc = frac.Zero
	}
	if lr := ts.lastReleased; lr != nil {
		// Keep at most one generation of links. The trimmed-out record is
		// unreachable once the offer is recomputed below; retire it to the
		// pool after a one-release grace period.
		if p2 := lr.prev; p2 != nil && (p2.swDone || p2.halted) {
			if ts.retired != nil {
				s.freeSubtask(ts.retired)
			}
			ts.retired = p2
		}
		lr.prev = nil
	}
	if s.cfg.RecordSubtasks {
		ts.history = append(ts.history, sub)
	}
	if s.cfg.CheckInvariants {
		// Property (V): if the successor is released before d(T_j)-b(T_j),
		// T_j must be complete in both S and I_CSW by the release.
		if p := sub.prev; p != nil && t < p.deadline-p.bbit {
			if !p.swDone || p.swDoneTime > t {
				s.violations = append(s.violations,
					//lint:allow hotalloc CheckInvariants diagnostic mode formats violations; off by default in production
					fmt.Sprintf("t=%d: (V) violated for %s: early release but D(I_SW)=%d", t, p, p.swDoneTime))
			}
			if !p.completeInS(t + 1) {
				s.violations = append(s.violations,
					//lint:allow hotalloc CheckInvariants diagnostic mode formats violations; off by default in production
					fmt.Sprintf("t=%d: (V) violated for %s: early release but incomplete in S", t, p))
			}
		}
	}
	ts.lastReleased = sub
	ts.epochN = n
	ts.absN++
	ts.live = append(ts.live, sub)
	// Normal successor release per Eqn (4); reweighting events override it.
	ts.nextRel = pendingRelease{at: model.NextRelease(d, b, 0)}
	s.pushEvent(evKindRelease, tevent{at: ts.nextRel.at, ts: ts})
	if !sub.absent {
		s.pushEvent(evKindMiss, tevent{at: sub.deadline, ts: ts, sub: sub, stamp: sub.stamp})
	} else if s.cfg.EarlyRelease {
		// An absent subtask is complete at release, so the task becomes an
		// ERfair speculation candidate next slot. Next *wall-clock* slot:
		// for a speculative release t is the nominal (future) release time,
		// but the scan would reconsider the task at s.now+1 already.
		s.pushEvent(evKindER, tevent{at: s.now + 1, ts: ts})
	}
	s.updateOffer(ts)
	if epochStart {
		s.recordDrift(ts, t)
	}
}

// newSubtask takes a record from the free list (or allocates one),
// preserving its reuse stamp.
//
//lint:allocok pool growth: allocates only on a free-list miss, amortized to zero in steady state
func (s *Scheduler) newSubtask() *subtask {
	if n := len(s.subPool); n > 0 {
		sub := s.subPool[n-1]
		s.subPool[n-1] = nil
		s.subPool = s.subPool[:n-1]
		*sub = subtask{stamp: sub.stamp}
		return sub
	}
	return &subtask{}
}

// freeSubtask retires an unreachable record to the pool. Bumping the
// stamp invalidates any calendar event still referencing it. Records are
// kept forever under RecordSubtasks (the history retains them).
func (s *Scheduler) freeSubtask(sub *subtask) {
	if s.cfg.RecordSubtasks {
		return
	}
	sub.stamp++
	sub.task = nil
	sub.prev = nil
	s.subPool = append(s.subPool, sub)
}

// recordDrift updates drift(T, ·) at the release time of an epoch-starting
// subtask: drift = A(I_PS, T, 0, u) - A(I_CSW, T, 0, u) (Eqn (5)).
func (s *Scheduler) recordDrift(ts *taskState, u model.Time) {
	ts.drift = ts.cumPS.Sub(ts.cumCSW)
	ts.lastDriftAt = u
	if ts.maxAbsDrift.Less(ts.drift.Abs()) {
		ts.maxAbsDrift = ts.drift.Abs()
	}
	if s.cfg.RecordDriftEvents {
		s.drifts[ts.name] = append(s.drifts[ts.name], DriftEvent{At: u, Value: ts.drift})
	}
}

// resolveWaiters converts D(I_SW, ·)-dependent enactment and release times
// into concrete times once the completion they wait on is known (per-slot
// accrual is lazy, so callers materialize the awaited subtask's state
// first), and registers the now-concrete times on the calendars.
func (s *Scheduler) resolveWaiters(ts *taskState) {
	if e := ts.enact; e != nil && e.waitD != nil && e.waitD.swDone {
		e.at = maxTime(e.clamp, e.waitD.swDoneTime+e.addB)
		e.waitD = nil
		s.pushEvent(evKindEnact, tevent{at: e.at, ts: ts})
	}
	if r := &ts.nextRel; r.waitD != nil && r.waitD.swDone {
		r.at = maxTime(r.clamp, r.waitD.swDoneTime+r.addB)
		r.waitD = nil
		s.pushEvent(evKindRelease, tevent{at: r.at, ts: ts})
	}
}

// higherPriority implements the full PD² priority order: earlier deadline
// first, then b-bit 1 over 0, then (for heavy tasks) the later group
// deadline, then the configured tie-break, then task id.
func (s *Scheduler) higherPriority(a, b *subtask) bool {
	if a.deadline != b.deadline {
		return a.deadline < b.deadline
	}
	if a.bbit != b.bbit {
		return a.bbit > b.bbit
	}
	if a.groupDeadline != b.groupDeadline {
		return a.groupDeadline > b.groupDeadline
	}
	if s.cfg.TieBreak != nil {
		//lint:allow hotalloc TieBreak is a config plugin point; implementations must be allocation-free (documented on Config)
		if c := s.cfg.TieBreak(a.task.name, a.task.group, b.task.name, b.task.group); c != 0 {
			return c < 0
		}
	}
	return a.task.id < b.task.id
}

func maxTime(a, b model.Time) model.Time {
	if a > b {
		return a
	}
	return b
}

// checkAdmissibleWeight validates a task weight against the scheduler's
// configuration: light only by default, up to 1 with AllowHeavy.
func checkAdmissibleWeight(w frac.Rat, allowHeavy bool) error {
	if allowHeavy {
		return model.CheckWeight(w)
	}
	return model.CheckLightWeight(w)
}
