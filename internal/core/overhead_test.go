package core

import (
	"testing"

	"repro/internal/frac"
	"repro/internal/model"
)

// TestOverheadChargesSlots: every enacted reweight accrues debt, and each
// full quantum of debt steals one processor-slot from the schedule.
func TestOverheadChargesSlots(t *testing.T) {
	sys := model.System{M: 1, Tasks: []model.Spec{
		{Name: "A", Weight: frac.Half},
		{Name: "B", Weight: rat("1/4")},
	}}
	s := mustNew(t, Config{
		M: 1, Policy: PolicyOI, Police: true,
		OverheadOI: frac.Half, // two enactments = one stolen slot
	}, sys)
	weights := []frac.Rat{rat("1/5"), rat("1/4")}
	for i := 0; i < 4; i++ { // four enactments -> 2 quanta of debt
		s.RunTo(model.Time(10 * (i + 1)))
		if err := s.Initiate("B", weights[i%2]); err != nil {
			t.Fatal(err)
		}
	}
	s.RunTo(100)
	if got := s.OverheadSlots(); got != 2 {
		t.Errorf("overhead slots = %d, want 2", got)
	}
	// Utilization 3/4 on one CPU leaves slack, so stealing two slots must
	// not cause misses here.
	if len(s.Misses()) != 0 {
		t.Errorf("misses: %v", s.Misses())
	}
}

// TestOverheadZeroByDefault: the default configuration charges nothing,
// matching the paper's simulations.
func TestOverheadZeroByDefault(t *testing.T) {
	sys := model.System{M: 1, Tasks: []model.Spec{{Name: "A", Weight: rat("2/5")}}}
	s := mustNew(t, Config{M: 1, Policy: PolicyOI, Police: true}, sys)
	s.RunTo(5)
	if err := s.Initiate("A", rat("1/5")); err != nil {
		t.Fatal(err)
	}
	s.RunTo(50)
	if s.OverheadSlots() != 0 {
		t.Errorf("overhead slots = %d, want 0", s.OverheadSlots())
	}
}

// TestOverheadPolicySplit: LJ enactments are charged at the LJ rate, OI
// enactments at the OI rate.
func TestOverheadPolicySplit(t *testing.T) {
	run := func(policy PolicyKind) int64 {
		sys := model.System{M: 2, Tasks: []model.Spec{
			{Name: "A", Weight: rat("1/5")},
			{Name: "B", Weight: rat("1/5")},
		}}
		s := mustNew(t, Config{
			M: 2, Policy: policy, Police: true,
			OverheadOI: frac.One,       // every OI enactment steals a slot
			OverheadLJ: frac.New(1, 8), // LJ is 8x cheaper
		}, sys)
		targets := []frac.Rat{rat("1/4"), rat("1/5")}
		for i := 0; i < 8; i++ {
			s.RunTo(model.Time(12 * (i + 1)))
			if err := s.Initiate("A", targets[i%2]); err != nil {
				t.Fatal(err)
			}
		}
		s.RunTo(150)
		return s.OverheadSlots()
	}
	oi := run(PolicyOI)
	lj := run(PolicyLJ)
	if oi != 8 {
		t.Errorf("OI overhead slots = %d, want 8", oi)
	}
	if lj != 1 {
		t.Errorf("LJ overhead slots = %d, want 1 (8 events at 1/8 each)", lj)
	}
}
