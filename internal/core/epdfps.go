package core

import (
	"fmt"
	"sort"

	"repro/internal/frac"
	"repro/internal/model"
)

// EPDFPS is an earliest-pseudo-deadline-first scheduler whose subtask
// deadlines are *projections* of the ideal processor-sharing schedule: the
// deadline of a task's k-th quantum is the earliest integral time by which
// the task's cumulative I_PS allocation reaches k, given its current weight.
// When a task reweights, the projection — and hence the deadline — changes
// instantly.
//
// This scheduler exists to exhibit Theorem 4 of the paper: *any* EPDF
// algorithm that tracks true ideal allocations without prior knowledge of
// weight changes can be forced to miss a deadline (Fig. 9), so every EPDF
// reweighting scheme must shift its lag bounds and thereby incur drift.
// PD²-OI deliberately does not use I_PS projections as deadlines for exactly
// this reason.
type EPDFPS struct {
	m      int
	now    model.Time
	tasks  []*epTask
	byName map[string]*epTask
	misses []MissEvent
}

type epTask struct {
	id     int
	name   string
	w      frac.Rat
	joined bool
	left   bool
	psCum  frac.Rat // cumulative I_PS allocation at the start of the slot
	done   int64    // quanta completed
	missed int64    // highest quantum index already counted as missed
}

// NewEPDFPS returns an empty EPDF-PS scheduler on m processors.
func NewEPDFPS(m int) *EPDFPS {
	if m < 1 {
		panic("core: EPDFPS needs at least one processor")
	}
	return &EPDFPS{m: m, byName: make(map[string]*epTask)}
}

// Now returns the current time.
func (e *EPDFPS) Now() model.Time { return e.now }

// Misses returns the deadline misses recorded so far.
func (e *EPDFPS) Misses() []MissEvent { return e.misses }

// Join adds a task with the given weight at the current time.
func (e *EPDFPS) Join(name string, w frac.Rat) error {
	if err := model.CheckWeight(w); err != nil {
		return err
	}
	if _, dup := e.byName[name]; dup {
		return fmt.Errorf("core: EPDFPS: duplicate task %q", name)
	}
	t := &epTask{id: len(e.tasks), name: name, w: w, joined: true}
	e.tasks = append(e.tasks, t)
	e.byName[name] = t
	return nil
}

// Leave removes a task at the current time.
func (e *EPDFPS) Leave(name string) error {
	t, ok := e.byName[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownTask, name)
	}
	t.left = true
	return nil
}

// SetWeight changes a task's weight instantaneously (EPDF-PS has no
// enactment delay — that is precisely why it can miss deadlines).
func (e *EPDFPS) SetWeight(name string, w frac.Rat) error {
	t, ok := e.byName[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownTask, name)
	}
	if err := model.CheckWeight(w); err != nil {
		return err
	}
	t.w = w
	return nil
}

// Scheduled returns how many quanta the named task has completed.
func (e *EPDFPS) Scheduled(name string) int64 {
	if t, ok := e.byName[name]; ok {
		return t.done
	}
	return 0
}

// deadline returns the projected deadline of task t's next quantum at the
// current time: now + ceil((k - psCum)/w).
func (e *EPDFPS) deadline(t *epTask) model.Time {
	k := frac.FromInt(t.done + 1)
	remaining := k.Sub(t.psCum)
	if remaining.Sign() <= 0 {
		return e.now // already overdue in the projection
	}
	return e.now + remaining.Div(t.w).Ceil()
}

// eligible reports whether task t has a released quantum at the current
// slot: the PS schedule will have made progress on quantum k by the end of
// this slot.
func (e *EPDFPS) eligible(t *epTask) bool {
	if !t.joined || t.left {
		return false
	}
	return frac.FromInt(t.done).Less(t.psCum.Add(t.w))
}

// Step simulates one slot.
func (e *EPDFPS) Step() {
	type cand struct {
		t *epTask
		d model.Time
	}
	var cands []cand
	for _, t := range e.tasks {
		if !e.eligible(t) {
			continue
		}
		d := e.deadline(t)
		// Miss detection: the projected deadline has passed.
		if d <= e.now && t.missed < t.done+1 {
			t.missed = t.done + 1
			e.misses = append(e.misses, MissEvent{Task: t.name, Subtask: t.done + 1, Deadline: d})
		}
		cands = append(cands, cand{t, d})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d != cands[j].d {
			return cands[i].d < cands[j].d
		}
		return cands[i].t.id < cands[j].t.id
	})
	n := len(cands)
	if n > e.m {
		n = e.m
	}
	for i := 0; i < n; i++ {
		cands[i].t.done++
	}
	for _, t := range e.tasks {
		if t.joined && !t.left {
			t.psCum = t.psCum.Add(t.w)
		}
	}
	e.now++
}

// RunTo advances to the horizon, invoking hook (if non-nil) at the start of
// each slot.
func (e *EPDFPS) RunTo(horizon model.Time, hook func(t model.Time, e *EPDFPS)) {
	for e.now < horizon {
		if hook != nil {
			hook(e.now, e)
		}
		e.Step()
	}
}
