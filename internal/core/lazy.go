package core

import (
	"fmt"

	"repro/internal/frac"
	"repro/internal/model"
)

// This file implements the lazy closed-form ideal-schedule accrual of the
// event-driven engine. The original engine (internal/core/reference)
// advanced I_SW, I_CSW and I_PS with exact-rational additions for every
// task in every slot; profiling shows that arithmetic — not the per-slot
// scans — dominated the per-slot cost. Between two events that touch a
// task, its scheduling weight, actual weight and pause window are all
// constant, so the Fig. 5 per-slot recurrence collapses to a closed form:
// the first slot of a subtask allocates w minus the predecessor's final
// slot, every following slot allocates min(w, 1 - cum), i.e. k-1 full
// slots of w and a final slot of rem - (k-1)·w where k = ceil(rem / w).
//
// Exact rationals make the collapse byte-for-byte faithful: frac.Rat is
// always kept in canonical form, so summing k slots in one MulInt/Add
// yields the identical value the per-slot loop reaches.
//
// The discipline is sync-before-mutation: every operation that mutates
// state the recurrence reads (swt at enactments, wt and pause windows at
// initiations and delays, the live set and subtask chain at releases,
// halts, unwinds and leaves) first advances the frontier to the mutation
// time, so the materialized state at a sync point is exactly the original
// engine's state at that wall-clock time.

// syncAccrual advances the task's I_SW/I_CSW frontier to upTo: afterwards
// every slot < upTo has accrued exactly as in the reference per-slot loop.
func (s *Scheduler) syncAccrual(ts *taskState, upTo model.Time) {
	if !ts.joined || ts.left || ts.accrSynced >= upTo {
		return
	}
	from := ts.accrSynced
	ts.accrSynced = upTo
	if len(ts.live) == 0 {
		return
	}
	w := ts.swt
	old := ts.live
	live := ts.live[:0]
	for _, sub := range old {
		if sub.swDone || sub.halted {
			continue
		}
		start := from
		if sub.release > start {
			start = sub.release
		}
		if start >= upTo {
			live = append(live, sub)
			continue
		}
		cum := sub.swCum
		added := frac.Zero
		done := false
		var doneAt model.Time
		var lastAlloc frac.Rat
		if start == sub.release {
			// First slot (Fig. 5 lines 4-7): pair with the predecessor's
			// final-slot allocation when its window overlaps. The
			// predecessor precedes sub in the live chain, so its
			// completion within [from, upTo) is already materialized.
			var alloc frac.Rat
			if sub.epochStart || sub.prev == nil || sub.prev.halted || sub.prev.bbit == 0 {
				alloc = w
			} else {
				pair := frac.Zero
				if p := sub.prev; p.swDone && p.swDoneTime <= sub.release+1 {
					pair = p.lastSlotAlloc
				}
				alloc = w.Sub(pair)
			}
			if s.cfg.CheckInvariants && (alloc.Sign() < 0 || w.Less(alloc)) {
				s.violations = append(s.violations,
					//lint:allow hotalloc CheckInvariants diagnostic mode formats violations; off by default in production
					fmt.Sprintf("t=%d: (AF1) violated for %s: per-slot allocation %s outside [0,%s]", start, sub, alloc, w))
			}
			cum = cum.Add(alloc)
			added = alloc
			if cum.Eq(frac.One) {
				done = true
				doneAt = start + 1
				lastAlloc = alloc
			}
			start++
		}
		if !done && start < upTo {
			// Steady slots (Fig. 5 line 10): min(w, 1-cum) per slot, i.e.
			// k-1 slots of w and a final partial slot.
			rem := frac.One.Sub(cum)
			k := rem.Div(w).Ceil()
			if avail := int64(upTo - start); k <= avail {
				lastAlloc = rem.Sub(w.MulInt(k - 1))
				added = added.Add(rem)
				cum = frac.One
				done = true
				doneAt = start + model.Time(k)
			} else {
				inc := w.MulInt(avail)
				cum = cum.Add(inc)
				added = added.Add(inc)
			}
		}
		sub.swCum = cum
		if done {
			sub.swDone = true
			sub.swDoneTime = doneAt
			sub.lastSlotAlloc = lastAlloc
		} else {
			live = append(live, sub)
		}
		if !added.IsZero() {
			ts.cumSW = ts.cumSW.Add(added)
			ts.cumCSW = ts.cumCSW.Add(added)
		}
	}
	for i := len(live); i < len(old); i++ {
		old[i] = nil // release dropped subtask pointers
	}
	ts.live = live
}

// syncPS advances the task's I_PS frontier to upTo: cumPS accrues wt per
// slot outside the IS-separation pause window.
func (s *Scheduler) syncPS(ts *taskState, upTo model.Time) {
	if !ts.joined || ts.left || ts.psSynced >= upTo {
		return
	}
	from := ts.psSynced
	ts.psSynced = upTo
	slots := int64(upTo - from)
	if ts.psPauseUntil > 0 {
		lo := maxTime(from, ts.psPauseFrom)
		hi := upTo
		if ts.psPauseUntil < hi {
			hi = ts.psPauseUntil
		}
		if hi > lo {
			slots -= int64(hi - lo)
		}
	}
	if slots > 0 {
		ts.cumPS = ts.cumPS.Add(ts.wt.MulInt(slots))
	}
}

// syncTask advances both frontiers; used by the read-side accessors
// (Metrics, SubtaskHistory) and the mutation entry points.
func (s *Scheduler) syncTask(ts *taskState, upTo model.Time) {
	s.syncAccrual(ts, upTo)
	s.syncPS(ts, upTo)
}

// forecastDone predicts D(I_SW, sub) — the time by which sub completes in
// I_SW — assuming the task's scheduling weight stays ts.swt until then.
// Waiter-resolution events are scheduled off this forecast and recomputed
// whenever swt actually changes, so the forecast in force is always exact.
func (s *Scheduler) forecastDone(ts *taskState, sub *subtask) model.Time {
	if sub.swDone || sub.halted {
		return sub.swDoneTime
	}
	w := ts.swt
	cum := sub.swCum
	start := ts.accrSynced
	if sub.release > start {
		start = sub.release
	}
	if start == sub.release {
		var alloc frac.Rat
		if sub.epochStart || sub.prev == nil || sub.prev.halted || sub.prev.bbit == 0 {
			alloc = w
		} else {
			pair := frac.Zero
			p := sub.prev
			if p.swDone {
				if p.swDoneTime <= sub.release+1 {
					pair = p.lastSlotAlloc
				}
			} else {
				// Predecessor still accruing: forecast its completion. Its
				// own first slot predates sub's release and is materialized,
				// so only the steady phase remains.
				prem := frac.One.Sub(p.swCum)
				pk := prem.Div(w).Ceil()
				if ts.accrSynced+model.Time(pk) <= sub.release+1 {
					pair = prem.Sub(w.MulInt(pk - 1))
				}
			}
			alloc = w.Sub(pair)
		}
		cum = cum.Add(alloc)
		if cum.Eq(frac.One) {
			return start + 1
		}
		start++
	}
	rem := frac.One.Sub(cum)
	return start + model.Time(rem.Div(w).Ceil())
}

// scheduleResolve arranges for the task's pending D(I_SW,·) waiter to be
// resolved at the end of the same slot as in the reference engine (the
// slot in which the awaited subtask completes in I_SW). Rules O and I
// attach at most one waiter at a time.
func (s *Scheduler) scheduleResolve(ts *taskState) {
	var sub *subtask
	if e := ts.enact; e != nil && e.waitD != nil {
		sub = e.waitD
	}
	if r := &ts.nextRel; r.waitD != nil {
		sub = r.waitD
	}
	if sub == nil || sub.swDone || sub.halted {
		return
	}
	at := s.forecastDone(ts, sub) - 1
	if at < s.now {
		at = s.now
	}
	s.pushEvent(evKindResolve, tevent{at: at, ts: ts})
}
