package core

import (
	"fmt"
	"testing"

	"repro/internal/core/reference"
	"repro/internal/frac"
	"repro/internal/model"
	"repro/internal/stats"
)

// diff_test.go is the differential oracle for the event-driven engine:
// internal/core/reference preserves the original per-slot brute-force
// scan verbatim, and this test drives both engines through identical
// randomized AIS histories — joins, leaves, reweight initiations,
// intra-sporadic delays and AGIS absences — asserting byte-for-byte
// identical schedules (including processor assignment), misses,
// violations and exact-rational accounting every slot. CI additionally
// runs it under the race detector (make test-race).

type diffConfig struct {
	label  string
	m      int
	policy PolicyKind
	early  bool
	police bool
	heavy  bool
	ovOI   frac.Rat
	ovLJ   frac.Rat
}

// randWeight draws a light (or, with heavy allowed, possibly heavy)
// admissible weight.
func randWeight(r *stats.RNG, heavy bool) frac.Rat {
	den := int64(2 + r.Intn(19)) // 2..20
	hi := den / 2
	if heavy {
		hi = den - 1
	}
	if hi < 1 {
		hi = 1
	}
	num := int64(1 + r.Intn(int(hi)))
	return frac.New(num, den)
}

func diffRun(t *testing.T, dc diffConfig, seed uint64, horizon model.Time) {
	t.Helper()
	r := stats.NewStream(seed, 0)

	// Initial task set: fill a random fraction of the capacity M.
	var tasks []model.Spec
	total := frac.Zero
	limit := frac.New(int64(dc.m)*4, 5) // target ~80% utilization
	for i := 0; len(tasks) < 12; i++ {
		w := randWeight(r, dc.heavy)
		if limit.Less(total.Add(w)) {
			break
		}
		total = total.Add(w)
		sp := model.Spec{Name: fmt.Sprintf("T%d", i), Weight: w}
		if r.Intn(3) == 0 {
			sp.Group = "G"
		}
		tasks = append(tasks, sp)
	}
	if len(tasks) == 0 {
		tasks = append(tasks, model.Spec{Name: "T0", Weight: frac.New(1, 4)})
	}
	sys := model.System{M: dc.m, Tasks: tasks}

	s, err := New(Config{
		M: dc.m, Policy: dc.policy, Police: dc.police,
		EarlyRelease: dc.early, AllowHeavy: dc.heavy,
		CheckInvariants: true, RecordSchedule: true,
		OverheadOI: dc.ovOI, OverheadLJ: dc.ovLJ,
	}, sys)
	if err != nil {
		t.Fatalf("%s seed %d: New: %v", dc.label, seed, err)
	}
	ref, err := reference.New(reference.Config{
		M: dc.m, Policy: reference.PolicyKind(dc.policy), Police: dc.police,
		EarlyRelease: dc.early, AllowHeavy: dc.heavy,
		CheckInvariants: true, RecordSchedule: true,
		OverheadOI: dc.ovOI, OverheadLJ: dc.ovLJ,
	}, sys)
	if err != nil {
		t.Fatalf("%s seed %d: reference.New: %v", dc.label, seed, err)
	}

	names := make([]string, len(tasks))
	for i, sp := range tasks {
		names[i] = sp.Name
	}
	nextJoin := len(tasks)

	// both applies the same mutation to each engine and requires error
	// parity: the engines must accept and reject identically.
	both := func(now model.Time, what string, fNew, fRef func() error) bool {
		e1, e2 := fNew(), fRef()
		if (e1 == nil) != (e2 == nil) {
			t.Fatalf("%s seed %d t=%d: %s error divergence: new=%v ref=%v",
				dc.label, seed, now, what, e1, e2)
		}
		return e1 == nil
	}

	for now := model.Time(0); now < horizon; now++ {
		// Random AIS events, identical streams into both engines.
		switch r.Intn(10) {
		case 0: // reweight a random task
			name := names[r.Intn(len(names))]
			w := randWeight(r, dc.heavy)
			both(now, "Initiate "+name,
				func() error { return s.Initiate(name, w) },
				func() error { return ref.Initiate(name, w) })
		case 1: // leave
			name := names[r.Intn(len(names))]
			both(now, "Leave "+name,
				func() error { return s.Leave(name) },
				func() error { return ref.Leave(name) })
		case 2: // join a new task
			sp := model.Spec{Name: fmt.Sprintf("T%d", nextJoin), Weight: randWeight(r, dc.heavy)}
			if both(now, "Join "+sp.Name,
				func() error { return s.Join(sp) },
				func() error { return ref.Join(sp) }) {
				names = append(names, sp.Name)
				nextJoin++
			}
		case 3: // intra-sporadic separation
			name := names[r.Intn(len(names))]
			sep := int64(1 + r.Intn(5))
			both(now, "DelayNext "+name,
				func() error { return s.DelayNext(name, sep) },
				func() error { return ref.DelayNext(name, sep) })
		case 4: // AGIS absence of a near-future subtask
			name := names[r.Intn(len(names))]
			ts, ok := s.byName[name]
			if !ok {
				break
			}
			idx := ts.absN + int64(1+r.Intn(3))
			both(now, "MarkAbsent "+name,
				func() error { return s.MarkAbsent(name, idx) },
				func() error { return ref.MarkAbsent(name, idx) })
		}

		s.Step()
		ref.Step()

		// Schedules must match entry-for-entry, including CPUs.
		a := s.ScheduleEntries(now)
		b := ref.ScheduleEntries(now)
		if len(a) != len(b) {
			t.Fatalf("%s seed %d t=%d: slot sizes %d vs %d (%v vs %v)",
				dc.label, seed, now, len(a), len(b), a, b)
		}
		for i := range a {
			if a[i].Task != b[i].Task || a[i].Subtask != b[i].Subtask || a[i].CPU != b[i].CPU {
				t.Fatalf("%s seed %d t=%d: entry %d: %+v vs %+v",
					dc.label, seed, now, i, a[i], b[i])
			}
		}
		// Exact accounting must match for every task, every slot.
		for _, name := range names {
			m1, ok1 := s.Metrics(name)
			m2, ok2 := ref.Metrics(name)
			if ok1 != ok2 {
				t.Fatalf("%s seed %d t=%d %s: presence %v vs %v", dc.label, seed, now, name, ok1, ok2)
			}
			if !ok1 {
				continue
			}
			if !m1.SchedWeight.Eq(m2.SchedWeight) || !m1.Weight.Eq(m2.Weight) ||
				m1.Scheduled != m2.Scheduled ||
				!m1.CumSW.Eq(m2.CumSW) || !m1.CumCSW.Eq(m2.CumCSW) || !m1.CumPS.Eq(m2.CumPS) ||
				!m1.Drift.Eq(m2.Drift) ||
				m1.Migrations != m2.Migrations || m1.Preemptions != m2.Preemptions ||
				m1.Misses != m2.Misses {
				t.Fatalf("%s seed %d t=%d %s: metrics diverge:\nnew: %+v\nref: %+v",
					dc.label, seed, now, name, m1, m2)
			}
		}
	}

	// Terminal global state.
	if h1, h2 := s.Holes(), ref.Holes(); h1 != h2 {
		t.Errorf("%s seed %d: holes %d vs %d", dc.label, seed, h1, h2)
	}
	if o1, o2 := s.OverheadSlots(), ref.OverheadSlots(); o1 != o2 {
		t.Errorf("%s seed %d: overhead slots %d vs %d", dc.label, seed, o1, o2)
	}
	m1, m2 := s.Misses(), ref.Misses()
	if len(m1) != len(m2) {
		t.Fatalf("%s seed %d: misses %v vs %v", dc.label, seed, m1, m2)
	}
	for i := range m1 {
		if m1[i].Task != m2[i].Task || m1[i].Subtask != m2[i].Subtask || m1[i].Deadline != m2[i].Deadline {
			t.Errorf("%s seed %d: miss %d: %+v vs %+v", dc.label, seed, i, m1[i], m2[i])
		}
	}
	v1, v2 := s.Violations(), ref.Violations()
	if len(v1) != len(v2) {
		t.Fatalf("%s seed %d: violation counts %d vs %d:\nnew: %v\nref: %v",
			dc.label, seed, len(v1), len(v2), v1, v2)
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Errorf("%s seed %d: violation %d: %q vs %q", dc.label, seed, i, v1[i], v2[i])
		}
	}
}

// TestDifferentialRandomizedAIS drives the event-driven engine and the
// frozen brute-force reference through identical randomized histories
// across the configuration matrix.
func TestDifferentialRandomizedAIS(t *testing.T) {
	configs := []diffConfig{
		{label: "oi-m1", m: 1, policy: PolicyOI, police: true},
		{label: "oi-m2-er", m: 2, policy: PolicyOI, police: true, early: true},
		{label: "oi-m4-heavy", m: 4, policy: PolicyOI, police: true, heavy: true},
		{label: "lj-m2", m: 2, policy: PolicyLJ, police: true},
		{label: "lj-m4-er-heavy", m: 4, policy: PolicyLJ, police: true, early: true, heavy: true},
		{label: "oi-m2-overhead", m: 2, policy: PolicyOI, police: true,
			ovOI: frac.New(1, 3), ovLJ: frac.New(1, 8)},
		{label: "oi-m2-nopolice", m: 2, policy: PolicyOI, police: false},
	}
	seeds := []uint64{1, 2, 3, 4, 5}
	horizon := model.Time(160)
	if testing.Short() {
		seeds = seeds[:2]
		horizon = 80
	}
	for _, dc := range configs {
		dc := dc
		t.Run(dc.label, func(t *testing.T) {
			t.Parallel()
			for _, seed := range seeds {
				diffRun(t, dc, seed, horizon)
			}
		})
	}
}
