package core

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/frac"
	"repro/internal/model"
	"repro/internal/stats"
)

func TestCommandOpTextRoundTrip(t *testing.T) {
	for op := CommandOp(0); op < numCommandOps; op++ {
		text, err := op.MarshalText()
		if err != nil {
			t.Fatalf("marshal %v: %v", op, err)
		}
		var back CommandOp
		if err := back.UnmarshalText(text); err != nil {
			t.Fatalf("unmarshal %q: %v", text, err)
		}
		if back != op {
			t.Errorf("round trip %v -> %q -> %v", op, text, back)
		}
	}
	var op CommandOp
	if err := op.UnmarshalText([]byte("frobnicate")); err == nil {
		t.Error("unknown op name unmarshalled without error")
	}
	if _, err := numCommandOps.MarshalText(); err == nil {
		t.Error("sentinel op marshalled without error")
	}
}

func TestCommandJSONRoundTrip(t *testing.T) {
	log := []Command{
		{At: 0, Op: OpJoin, Task: "A", Weight: frac.New(1, 4), Group: "G"},
		{At: 3, Op: OpReweight, Task: "A", Weight: frac.New(2, 5)},
		{At: 7, Op: OpDelay, Task: "A", Arg: 2},
		{At: 9, Op: OpAbsent, Task: "A", Arg: 12},
		{At: 20, Op: OpLeave, Task: "A"},
	}
	data, err := json.Marshal(log)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"op":"reweight"`) {
		t.Errorf("ops should serialize by name, got %s", data)
	}
	var back []Command
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	for i := range log {
		if log[i].At != back[i].At || log[i].Op != back[i].Op || log[i].Task != back[i].Task ||
			!log[i].Weight.Eq(back[i].Weight) || log[i].Group != back[i].Group || log[i].Arg != back[i].Arg {
			t.Errorf("command %d: %+v != %+v", i, log[i], back[i])
		}
	}
}

// replayConfig is the configuration the replay tests drive: schedules
// recorded so WriteState covers CPUs slot by slot.
func replayConfig(policy PolicyKind) Config {
	return Config{
		M: 2, Policy: policy, Police: true,
		RecordSchedule: true, CheckInvariants: true,
	}
}

// TestReplayReproducesRun drives a scheduler through a randomized
// command history, recording every successfully applied command, then
// replays the log against a fresh scheduler and requires byte-identical
// state (WriteState) — the property internal/serve's snapshot/restore
// is built on.
func TestReplayReproducesRun(t *testing.T) {
	for _, policy := range []PolicyKind{PolicyOI, PolicyLJ} {
		t.Run(policy.String(), func(t *testing.T) {
			r := stats.NewStream(42, uint64(policy))
			sys := model.System{M: 2, Tasks: []model.Spec{
				{Name: "A", Weight: frac.New(1, 4)},
				{Name: "B", Weight: frac.New(1, 3)},
				{Name: "C", Weight: frac.New(1, 5), Join: 4},
			}}
			live, err := New(replayConfig(policy), sys)
			if err != nil {
				t.Fatal(err)
			}
			names := []string{"A", "B", "C"}
			var log []Command
			nextJoin := 0
			const horizon = 120
			for now := model.Time(0); now < horizon; now++ {
				switch r.Intn(6) {
				case 0:
					c := Command{At: now, Op: OpReweight,
						Task:   names[r.Intn(len(names))],
						Weight: frac.New(int64(1+r.Intn(4)), 9)}
					if live.Apply(c) == nil {
						log = append(log, c)
					}
				case 1:
					c := Command{At: now, Op: OpJoin,
						Task:   "J" + string(rune('a'+nextJoin)),
						Weight: frac.New(1, 8)}
					if live.Apply(c) == nil {
						log = append(log, c)
						names = append(names, c.Task)
						nextJoin++
					}
				case 2:
					c := Command{At: now, Op: OpLeave, Task: names[r.Intn(len(names))]}
					if live.Apply(c) == nil {
						log = append(log, c)
					}
				case 3:
					c := Command{At: now, Op: OpDelay,
						Task: names[r.Intn(len(names))], Arg: int64(1 + r.Intn(3))}
					if live.Apply(c) == nil {
						log = append(log, c)
					}
				}
				live.Step()
			}

			replayed, err := Replay(replayConfig(policy), sys, log, horizon)
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			var want, got strings.Builder
			if err := live.WriteState(&want); err != nil {
				t.Fatal(err)
			}
			if err := replayed.WriteState(&got); err != nil {
				t.Fatal(err)
			}
			if want.String() != got.String() {
				t.Fatalf("replayed state diverges:\n--- live ---\n%s--- replayed ---\n%s",
					want.String(), got.String())
			}
			if live.StateDigest() != replayed.StateDigest() {
				t.Fatal("digests diverge on identical state text")
			}
		})
	}
}

// TestReplayFromSnapshotPoint replays a prefix of a log, continues with
// the suffix, and must converge with the uninterrupted run — the
// snapshot-at-t/restore/advance shape used by serve.
func TestReplayFromSnapshotPoint(t *testing.T) {
	sys := model.System{M: 2, Tasks: []model.Spec{
		{Name: "A", Weight: frac.New(2, 5)},
		{Name: "B", Weight: frac.New(1, 3)},
	}}
	const cut, horizon = 11, 40

	// Record the log from a live run: scripted reweights/joins, plus a
	// leave of A retried each slot until rule L admits it (its legal time
	// depends on the schedule, so it cannot be hardcoded).
	full, err := New(replayConfig(PolicyOI), sys)
	if err != nil {
		t.Fatal(err)
	}
	script := []Command{
		{At: 2, Op: OpReweight, Task: "A", Weight: frac.New(1, 8)},
		{At: 5, Op: OpJoin, Task: "C", Weight: frac.New(1, 2)},
		{At: 9, Op: OpReweight, Task: "B", Weight: frac.New(1, 2)},
		{At: 17, Op: OpReweight, Task: "C", Weight: frac.New(1, 4)},
	}
	var log []Command
	left := false
	for now := model.Time(0); now < horizon; now++ {
		for _, c := range script {
			if c.At == now {
				if err := full.Apply(c); err != nil {
					t.Fatalf("apply %s: %v", c, err)
				}
				log = append(log, c)
			}
		}
		if !left && now >= 20 {
			c := Command{At: now, Op: OpLeave, Task: "A"}
			if full.Apply(c) == nil {
				log = append(log, c)
				left = true
			}
		}
		full.Step()
	}
	if !left {
		t.Fatal("leave of A never admitted")
	}

	var prefix, suffix []Command
	for _, c := range log {
		if c.At < cut {
			prefix = append(prefix, c)
		} else {
			suffix = append(suffix, c)
		}
	}
	resumed, err := Replay(replayConfig(PolicyOI), sys, prefix, cut)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.ReplayLog(suffix, horizon); err != nil {
		t.Fatal(err)
	}
	if full.StateDigest() != resumed.StateDigest() {
		t.Fatal("snapshot-point replay diverges from uninterrupted run")
	}
}

func TestReplayErrors(t *testing.T) {
	sys := model.System{M: 1, Tasks: []model.Spec{{Name: "A", Weight: frac.New(1, 4)}}}
	cfg := replayConfig(PolicyOI)
	cfg.M = 1
	s, err := New(cfg, sys)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(Command{At: 3, Op: OpReweight, Task: "A", Weight: frac.New(1, 3)}); err == nil {
		t.Error("Apply at the wrong slot should fail")
	}
	badOrder := []Command{
		{At: 5, Op: OpReweight, Task: "A", Weight: frac.New(1, 3)},
		{At: 2, Op: OpReweight, Task: "A", Weight: frac.New(1, 5)},
	}
	if err := s.ReplayLog(badOrder, 10); err == nil {
		t.Error("out-of-order log should fail")
	}
	s2, err := New(cfg, sys)
	if err != nil {
		t.Fatal(err)
	}
	tail := []Command{{At: 30, Op: OpLeave, Task: "A"}}
	if err := s2.ReplayLog(tail, 10); err == nil {
		t.Error("log past the horizon should fail")
	}
}

// TestStateDigestSensitivity: runs that differ in a single command must
// (overwhelmingly) produce different digests.
func TestStateDigestSensitivity(t *testing.T) {
	sys := model.System{M: 2, Tasks: []model.Spec{
		{Name: "A", Weight: frac.New(1, 4)},
		{Name: "B", Weight: frac.New(1, 3)},
	}}
	a, err := Replay(replayConfig(PolicyOI), sys, nil, 30)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replay(replayConfig(PolicyOI), sys,
		[]Command{{At: 4, Op: OpReweight, Task: "A", Weight: frac.New(1, 2)}}, 30)
	if err != nil {
		t.Fatal(err)
	}
	if a.StateDigest() == b.StateDigest() {
		t.Fatal("digest insensitive to a reweight")
	}
}
