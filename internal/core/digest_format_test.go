package core

import (
	"fmt"
	"hash/fnv"
	"strings"
	"testing"

	"repro/internal/frac"
)

// fmtState is the fmt-based reference renderer: the exact formatting
// code WriteState used before the allocation-free rewrite. appendState
// must reproduce these bytes forever — the digest is a compatibility
// surface (snapshot/restore proves shard identity by digest equality).
func fmtState(s *Scheduler) string {
	var b strings.Builder
	fmt.Fprintf(&b, "now=%d m=%d totalswt=%s holes=%d overhead=%d\n",
		s.now, s.cfg.M, s.totalSwt, s.holes, s.overheadSlots)
	for _, m := range s.AllMetrics() {
		fmt.Fprintf(&b, "task %s wt=%s swt=%s sched=%d sw=%s csw=%s ps=%s drift=%s maxdrift=%s lag=%s init=%d enact=%d miss=%d mig=%d pre=%d\n",
			m.Name, m.Weight, m.SchedWeight, m.Scheduled,
			m.CumSW, m.CumCSW, m.CumPS, m.Drift, m.MaxAbsDrift, m.Lag,
			m.Initiations, m.Enactments, m.Misses, m.Migrations, m.Preemptions)
	}
	for _, miss := range s.misses {
		fmt.Fprintf(&b, "miss %s sub=%d deadline=%d\n", miss.Task, miss.Subtask, miss.Deadline)
	}
	for _, v := range s.violations {
		fmt.Fprintf(&b, "violation %s\n", v)
	}
	for t, row := range s.schedule {
		fmt.Fprintf(&b, "slot %d:", t)
		for _, e := range row {
			fmt.Fprintf(&b, " %s/%d@%d", e.Task, e.Subtask, e.CPU)
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// TestWriteStateMatchesFmt pins the hand-rolled appendState against the
// fmt twin on a scheduler with real history: reweights (negative drift,
// non-integer rationals), recorded schedule rows, and synthetic miss
// and violation entries to cover every branch of the renderer.
func TestWriteStateMatchesFmt(t *testing.T) {
	cfg, sys := engineSystem(16)
	cfg.RecordSchedule = true
	s := mustNew(t, cfg, sys)
	s.RunTo(40)
	if err := s.Initiate(sys.Tasks[0].Name, rat("3/7")); err != nil {
		t.Fatal(err)
	}
	s.RunTo(90)
	// Synthetic entries so the miss/violation branches render even when
	// the run itself is well-behaved.
	s.misses = append(s.misses, MissEvent{Task: "X", Subtask: 12, Deadline: 34})
	s.violations = append(s.violations, "synthetic violation for format coverage")

	var got strings.Builder
	if err := s.WriteState(&got); err != nil {
		t.Fatal(err)
	}
	want := fmtState(s)
	if got.String() != want {
		t.Fatalf("appendState diverged from the fmt reference\n--- got ---\n%s\n--- want ---\n%s", got.String(), want)
	}

	h := fnv.New64a()
	if _, err := h.Write([]byte(want)); err != nil {
		t.Fatal(err)
	}
	if d := s.StateDigest(); d != h.Sum64() {
		t.Fatalf("StateDigest %#x != fnv-1a of WriteState %#x", d, h.Sum64())
	}
}

// TestRatAppendMatchesString pins frac.Rat.Append to String byte for
// byte across signs, integers and extremes.
func TestRatAppendMatchesString(t *testing.T) {
	cases := []frac.Rat{
		frac.Zero, frac.One, frac.Half,
		rat("3/7"), rat("-3/7"), rat("-5"), rat("1000000007/999999937"),
	}
	for _, r := range cases {
		if got := string(r.Append(nil)); got != r.String() {
			t.Errorf("Rat.Append(%s) = %q, want %q", r.String(), got, r.String())
		}
	}
}

// TestStateDigestSteadyStateAllocs proves the digest path is
// allocation-free once the render buffer is warm — the static hotalloc
// check's runtime counterpart.
func TestStateDigestSteadyStateAllocs(t *testing.T) {
	cfg, sys := engineSystem(16)
	s := mustNew(t, cfg, sys)
	s.RunTo(100)
	s.StateDigest() // size the retained buffer
	avg := testing.AllocsPerRun(100, func() { s.StateDigest() })
	if avg > 0.5 {
		t.Errorf("steady-state StateDigest allocates %.2f objects/run, want ~0", avg)
	}
}
