package core

import (
	"fmt"

	"repro/internal/frac"
	"repro/internal/model"
)

// noTime marks an unscheduled Time field.
const noTime model.Time = -1

// subtask is one released quantum of work. Its deadline and b-bit are fixed
// at release (they determine PD² priority and never change, per Sec. 3.2);
// its I_SW bookkeeping evolves as slots pass.
type subtask struct {
	task *taskState

	n          int64 // index within the current epoch (1-based); n = j - z
	abs        int64 // absolute index j across the task's lifetime (1-based)
	epochStart bool  // Id(T_j) == j: first subtask released after an enactment

	release  model.Time
	deadline model.Time
	bbit     int64
	// groupDeadline is the second PD² tie-break, nonzero only for heavy
	// tasks (weight > 1/2); among subtasks tied on deadline and b-bit, a
	// later group deadline wins.
	groupDeadline model.Time

	// Actual-schedule (S) state.
	scheduled bool
	schedSlot model.Time
	schedCPU  int
	missed    bool

	// absent marks an AGIS absent subtask: it has a window but is never
	// scheduled and receives no ideal allocation; it is complete at its
	// release in every schedule.
	absent bool

	// Halting (rule O).
	halted   bool
	haltTime model.Time

	// I_SW bookkeeping.
	swCum         frac.Rat   // A(I_SW, T_j, 0, now)
	swDone        bool       // completed in I_SW (allocation reached 1, or halted)
	swDoneTime    model.Time // D(I_SW, T_j)
	lastSlotAlloc frac.Rat   // A(I_SW, T_j, D-1): pairs with the successor's first slot

	// prev links to the immediately preceding released subtask (possibly of
	// an earlier epoch, possibly halted). Links older than one generation
	// are dropped to keep memory bounded.
	prev *subtask

	// stamp is a reuse generation counter for the scheduler's subtask pool:
	// calendar events that reference a subtask capture the stamp at push
	// time and are invalidated when the record is recycled.
	stamp uint64
}

// window returns the PD² window of the subtask.
func (s *subtask) window() model.Window {
	return model.Window{Release: s.release, Deadline: s.deadline}
}

// completeInS reports whether the subtask is complete in the actual schedule
// at the *start* of slot t (Def. 2: scheduled in an earlier slot, or halted
// by t; an absent subtask is complete at its release).
func (s *subtask) completeInS(t model.Time) bool {
	if s.scheduled && s.schedSlot < t {
		return true
	}
	if s.absent && s.release <= t {
		return true
	}
	return s.halted && s.haltTime <= t
}

func (s *subtask) String() string {
	return fmt.Sprintf("%s_%d%v", s.task.name, s.abs, s.window())
}

// pendingEnact is a reweighting enactment that has been determined but not
// yet applied (rules O and I can defer enactment).
type pendingEnact struct {
	target frac.Rat
	at     model.Time // enactment time, or noTime while waiting on waitD
	// waitD, when non-nil, means the enactment time is
	// max(clamp, D(I_SW, waitD) + addB) and D is not yet known.
	waitD *subtask
	addB  int64
	clamp model.Time
	// releaseWithEnact: release the new epoch's first subtask at the
	// enactment time (rules O, I-decrease, LJ). Rule I-increase enacts
	// immediately and schedules the release separately.
	releaseWithEnact bool
	// viaLJ marks a leave/join enactment for overhead accounting.
	viaLJ bool
}

// pendingRelease describes the next subtask release of a task.
type pendingRelease struct {
	at         model.Time // release time, or noTime while waiting on waitD
	epochStart bool
	// waitD, when non-nil, means the release time is
	// max(clamp, D(I_SW, waitD) + addB) (rule I-increase).
	waitD *subtask
	addB  int64
	clamp model.Time
	// noEarly forbids ERfair early instantiation (set for IS separations:
	// delayed work genuinely does not exist yet).
	noEarly bool
}

// taskState is the complete runtime state of one task.
type taskState struct {
	id    int
	name  string
	group string

	joined bool // has entered the system
	left   bool // has permanently left
	join   model.Time

	wt  frac.Rat // actual weight wt(T, t): changes at initiation
	swt frac.Rat // scheduling weight swt(T, t): changes at enactment

	// Subtask chain.
	lastReleased *subtask // most recently released subtask (may be complete)
	epochN       int64    // epoch-relative index of lastReleased
	absN         int64    // absolute index of lastReleased
	nextRel      pendingRelease
	enact        *pendingEnact

	// Under PolicyLJ a task that has initiated a change stops releasing
	// subtasks until it "rejoins"; ljTarget holds the weight to rejoin with.
	ljLeaving bool

	// IS-separation bookkeeping: while a user-requested release delay keeps
	// the task inactive, I_PS allocates nothing (Sec. 4.1's early-release
	// assumption, removed).
	psPauseFrom  model.Time
	psPauseUntil model.Time

	// AGIS absent subtasks: absolute indices of future subtasks to release
	// as absent.
	pendingAbsent map[int64]bool

	// Processor assignment accounting.
	lastCPU     int
	migrations  int64
	preemptions int64
	lastRunSlot model.Time

	// history retains released subtasks when Config.RecordSubtasks is set;
	// swtHist records the scheduling-weight changes.
	history []*subtask
	swtHist []WeightChange

	// I_SW live subtasks (at most two can receive allocations in one slot).
	live []*subtask

	// Accounting, all cumulative over [0, now).
	scheduledQuanta int64    // A(S, T, 0, now)
	cumSW           frac.Rat // A(I_SW, T, 0, now)
	cumCSW          frac.Rat // A(I_CSW, T, 0, now)
	cumPS           frac.Rat // A(I_PS, T, 0, now)

	drift       frac.Rat // drift(T, now) per Eqn (5)
	maxAbsDrift frac.Rat
	lastDriftAt model.Time

	initiations int64 // weight-change requests seen
	enactments  int64 // weight changes enacted
	misses      int64 // deadline misses (0 under PD²-OI/LJ by Theorem 2)

	// Event-driven engine state.
	//
	// offer is the subtask the task currently offers to the PD² ready queue
	// (earliestIncomplete while joined and not left), maintained
	// incrementally at releases, scheduling marks, halts and unwinds.
	// readyIdx is the task's position in the scheduler's ready heap, or -1.
	offer    *subtask
	readyIdx int
	// accrSynced / psSynced mark the lazy accrual frontier: cumSW/cumCSW
	// and the live subtasks' swCum state are exact as of the start of slot
	// accrSynced (all slots < accrSynced accrued); likewise cumPS as of
	// psSynced. Between events both advance in closed form.
	accrSynced model.Time
	psSynced   model.Time
	// mark dedupes per-phase event candidates (compared against the
	// scheduler's markGen). retired keeps the most recently trimmed-out
	// subtask record alive for one extra release before it returns to the
	// pool, so short-lived external references (white-box tests, debug
	// inspection) see a stable record.
	mark    uint64
	retired *subtask
}

// earliestIncomplete returns the earliest released subtask that is neither
// scheduled, halted nor absent, or nil. Windows of consecutive subtasks can
// overlap by the b-bit, so the successor may already be released while its
// predecessor is still pending; tasks execute sequentially, so the
// predecessor always comes first.
func (ts *taskState) earliestIncomplete() *subtask {
	sub := ts.lastReleased
	if sub == nil {
		return nil
	}
	if p := sub.prev; p != nil && !p.scheduled && !p.halted && !p.absent {
		sub = p
	}
	if sub.scheduled || sub.halted || sub.absent {
		return nil
	}
	return sub
}

// eligible returns the subtask the task offers to the PD² queue at slot t,
// or nil. With early (ERfair), an instantiated subtask is eligible even
// before its nominal release.
func (ts *taskState) eligible(t model.Time, early bool) *subtask {
	if !ts.joined || ts.left {
		return nil
	}
	s := ts.earliestIncomplete()
	if s == nil || (!early && s.release > t) {
		return nil
	}
	return s
}

// TaskMetrics is a read-only snapshot of one task's accounting.
type TaskMetrics struct {
	Name        string
	Weight      frac.Rat // actual weight wt(T, now)
	SchedWeight frac.Rat // scheduling weight swt(T, now)
	Scheduled   int64    // quanta received in S
	CumSW       frac.Rat // A(I_SW, T, 0, now)
	CumCSW      frac.Rat // A(I_CSW, T, 0, now)
	CumPS       frac.Rat // A(I_PS, T, 0, now)
	Drift       frac.Rat // drift(T, now)
	MaxAbsDrift frac.Rat // max |drift| seen at any drift update
	Lag         frac.Rat // A(I_CSW,T,0,now) - A(S,T,0,now)
	Initiations int64
	Enactments  int64
	Misses      int64
	// Migrations counts scheduled quanta that ran on a different processor
	// than the task's previous quantum; Preemptions counts slots where the
	// task ran, still had eligible work the next slot, but was not chosen.
	Migrations  int64
	Preemptions int64
	// Active reports whether the task has joined and not yet left —
	// whether it still occupies scheduling weight. Admission layers
	// rebuilding their books from a restored scheduler key off this.
	Active bool
}

// PercentOfIdeal returns A(S)/A(I_PS) as a float (1.0 == exactly the ideal
// processor-sharing allocation). Returns 1 when the ideal allocation is zero.
func (m TaskMetrics) PercentOfIdeal() float64 {
	if m.CumPS.IsZero() {
		return 1
	}
	return float64(m.Scheduled) / m.CumPS.Float64() //lint:allow fracexact designated reporting boundary (figure output only)
}

func (ts *taskState) metrics() TaskMetrics {
	return TaskMetrics{
		Name:        ts.name,
		Weight:      ts.wt,
		SchedWeight: ts.swt,
		Scheduled:   ts.scheduledQuanta,
		CumSW:       ts.cumSW,
		CumCSW:      ts.cumCSW,
		CumPS:       ts.cumPS,
		Drift:       ts.drift,
		MaxAbsDrift: ts.maxAbsDrift,
		Lag:         ts.cumCSW.Sub(frac.FromInt(ts.scheduledQuanta)),
		Initiations: ts.initiations,
		Enactments:  ts.enactments,
		Misses:      ts.misses,
		Migrations:  ts.migrations,
		Preemptions: ts.preemptions,
		Active:      ts.joined && !ts.left,
	}
}
