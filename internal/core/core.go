package core
