package core

import (
	"repro/internal/frac"
	"repro/internal/model"
)

// WeightChange records a scheduling-weight change: from At onward the
// task's scheduling weight is W (Config.RecordSubtasks).
type WeightChange struct {
	At model.Time
	W  frac.Rat
}

// SwtHistory returns the task's scheduling-weight history — its weight at
// join and at every enactment (Config.RecordSubtasks must be set).
func (s *Scheduler) SwtHistory(name string) []WeightChange {
	ts, ok := s.byName[name]
	if !ok {
		return nil
	}
	return append([]WeightChange(nil), ts.swtHist...)
}

// ExpandWeights converts a weight-change history into a per-slot series of
// length horizon. Slots before the first change carry the first weight.
func ExpandWeights(changes []WeightChange, horizon model.Time) []frac.Rat {
	out := make([]frac.Rat, horizon)
	if len(changes) == 0 {
		return out
	}
	idx := 0
	cur := changes[0].W
	for t := model.Time(0); t < horizon; t++ {
		for idx < len(changes) && changes[idx].At <= t {
			cur = changes[idx].W
			idx++
		}
		out[t] = cur
	}
	return out
}

// ReplayIdealAllocations recomputes each subtask's per-slot I_SW
// allocations from its recorded parameters and the per-slot scheduling
// weight, by direct evaluation of the paper's Fig. 5 definition. The
// result is indexed like subs; entry j holds the allocations of subs[j]
// starting at its release slot. Halted subtasks stop allocating at their
// halt time; absent subtasks allocate nothing.
//
// This is the same computation the engine performs online; it is exposed
// so that tools can render the paper's per-slot allocation tables
// (Figs. 1, 3, 7, 12) for arbitrary recorded runs.
func ReplayIdealAllocations(subs []SubtaskInfo, swtPerSlot []frac.Rat) [][]frac.Rat {
	horizon := model.Time(len(swtPerSlot))
	allocs := make([][]frac.Rat, len(subs))
	finalAlloc := make([]frac.Rat, len(subs))
	for j, sub := range subs {
		if sub.Absent {
			continue
		}
		cum := frac.Zero
		for t := sub.Release; t < horizon; t++ {
			if sub.Halted && t >= sub.HaltTime {
				break
			}
			w := swtPerSlot[t]
			var alloc frac.Rat
			if t == sub.Release {
				switch {
				case sub.EpochStart, j == 0,
					subs[j-1].Halted && subs[j-1].HaltTime <= sub.Release,
					subs[j-1].Absent,
					subs[j-1].BBit == 0:
					alloc = w
				default:
					alloc = w.Sub(finalAlloc[j-1])
				}
			} else {
				alloc = frac.Min(w, frac.One.Sub(cum))
			}
			cum = cum.Add(alloc)
			allocs[j] = append(allocs[j], alloc)
			if cum.Eq(frac.One) {
				finalAlloc[j] = alloc
				break
			}
		}
	}
	return allocs
}
