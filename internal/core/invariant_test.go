package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/frac"
	"repro/internal/model"
)

// lagBoundsOK checks -1 <= lag <= 1 (the paper's Pfair bound is the open
// interval (-1, 1) for non-adaptive systems; adaptivity keeps |lag| within
// one quantum).
func checkLagBounds(t *testing.T, s *Scheduler, label string) {
	t.Helper()
	one := frac.One
	for _, m := range s.AllMetrics() {
		if one.Less(m.Lag.Abs()) {
			t.Fatalf("%s: t=%d task %s lag %s outside [-1,1]", label, s.Now(), m.Name, m.Lag)
		}
	}
}

// randomLightWeight returns a weight in (0, 1/2] with denominator <= maxDen.
func randomLightWeight(r *rand.Rand, maxDen int64) frac.Rat {
	den := r.Int63n(maxDen-1) + 2
	num := r.Int63n((den+1)/2) + 1
	if frac.Half.Less(frac.New(num, den)) {
		num = den / 2
	}
	if num < 1 {
		num = 1
	}
	return frac.New(num, den)
}

// TestStaticPfairCorrectness schedules randomized fully-static systems and
// checks Theorem 2's guarantee (no misses) plus the Pfair lag bounds at
// every slot.
func TestStaticPfairCorrectness(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		m := int(r.Int63n(4)) + 1
		var tasks []model.Spec
		total := frac.Zero
		for i := 0; total.Less(frac.FromInt(int64(m))) && i < 40; i++ {
			w := randomLightWeight(r, 24)
			if frac.FromInt(int64(m)).Less(total.Add(w)) {
				break
			}
			total = total.Add(w)
			tasks = append(tasks, model.Spec{Name: fmt.Sprintf("T%d", i), Weight: w})
		}
		if len(tasks) == 0 {
			continue
		}
		s := mustNew(t, Config{M: m, Policy: PolicyOI, Police: true, CheckInvariants: true},
			model.System{M: m, Tasks: tasks})
		for s.Now() < 200 {
			s.Step()
			checkLagBounds(t, s, fmt.Sprintf("trial %d", trial))
		}
		if len(s.Misses()) != 0 {
			t.Fatalf("trial %d (M=%d, util=%s): misses %v", trial, m, total, s.Misses())
		}
		if v := s.Violations(); len(v) != 0 {
			t.Fatalf("trial %d: violations %v", trial, v)
		}
	}
}

// TestFullUtilizationStatic pins the hardest static case: total weight
// exactly M.
func TestFullUtilizationStatic(t *testing.T) {
	cases := []model.System{
		{M: 2, Tasks: background(4, "H", frac.Half, "")},
		{M: 2, Tasks: append(background(3, "H", frac.Half, ""),
			background(5, "L", rat("1/10"), "")...)},
		{M: 3, Tasks: append(background(4, "A", rat("1/2"), ""),
			append(background(2, "B", rat("1/3"), ""),
				background(2, "C", rat("1/6"), "")...)...)},
		{M: 4, Tasks: background(20, "C", rat("3/20"), "")}, // total 3 on 4: Fig. 6 base
	}
	for i, sys := range cases {
		s := mustNew(t, Config{M: sys.M, Policy: PolicyOI, Police: true, CheckInvariants: true}, sys)
		for s.Now() < 240 {
			s.Step()
			checkLagBounds(t, s, fmt.Sprintf("case %d", i))
		}
		if len(s.Misses()) != 0 {
			t.Fatalf("case %d: misses %v", i, s.Misses())
		}
	}
}

// adaptiveTrial runs one randomized adaptive scenario under the given
// policy and returns the scheduler. Total weight is kept at most M by
// construction (weights <= 1/2, few tasks), so policing never defers and
// the pure reweighting rules are exercised.
func adaptiveTrial(t *testing.T, r *rand.Rand, policy PolicyKind, m, n int, horizon model.Time) *Scheduler {
	t.Helper()
	var tasks []model.Spec
	for i := 0; i < n; i++ {
		tasks = append(tasks, model.Spec{Name: fmt.Sprintf("T%d", i), Weight: randomLightWeight(r, 20)})
	}
	s := mustNew(t, Config{
		M: m, Policy: policy, Police: true,
		RecordDriftEvents: true, CheckInvariants: true,
	}, model.System{M: m, Tasks: tasks})
	s.Run(horizon, func(now model.Time, sch *Scheduler) {
		// Each slot, each task reweights with small probability.
		for i := 0; i < n; i++ {
			if r.Intn(12) == 0 {
				name := fmt.Sprintf("T%d", i)
				if err := sch.Initiate(name, randomLightWeight(r, 20)); err != nil {
					t.Fatalf("initiate %s: %v", name, err)
				}
			}
		}
	})
	return s
}

// TestTheorem2AdaptiveNoMisses: under PD²-OI with (W) policed, no subtask
// misses its deadline even under aggressive random reweighting.
func TestTheorem2AdaptiveNoMisses(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		s := adaptiveTrial(t, r, PolicyOI, 4, 7, 250)
		if len(s.Misses()) != 0 {
			t.Fatalf("trial %d: misses %v", trial, s.Misses())
		}
		if v := s.Violations(); len(v) != 0 {
			t.Fatalf("trial %d: violations %v", trial, v)
		}
		checkLagBounds(t, s, fmt.Sprintf("trial %d", trial))
	}
}

// TestTheorem5PerEventDriftBound: the absolute per-event drift change under
// PD²-OI is at most two quanta.
func TestTheorem5PerEventDriftBound(t *testing.T) {
	two := frac.FromInt(2)
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		s := adaptiveTrial(t, r, PolicyOI, 4, 7, 250)
		for _, name := range s.TaskNames() {
			evs := s.DriftEvents(name)
			prev := frac.Zero
			for _, ev := range evs {
				delta := ev.Value.Sub(prev).Abs()
				if two.Less(delta) {
					t.Fatalf("trial %d task %s: per-event drift %s at t=%d exceeds 2 (prev %s)",
						trial, name, delta, ev.At, prev)
				}
				prev = ev.Value
			}
		}
	}
}

// TestLJAdaptiveNoMisses: PD²-LJ is coarse-grained but still correct — no
// deadline misses.
func TestLJAdaptiveNoMisses(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 25; trial++ {
		s := adaptiveTrial(t, r, PolicyLJ, 4, 7, 250)
		if len(s.Misses()) != 0 {
			t.Fatalf("trial %d: misses %v", trial, s.Misses())
		}
		checkLagBounds(t, s, fmt.Sprintf("trial %d", trial))
	}
}

// TestHybridExtremes: a hybrid that always chooses OI behaves exactly like
// PolicyOI, and one that never does behaves exactly like PolicyLJ.
func TestHybridExtremes(t *testing.T) {
	run := func(policy PolicyKind, useOI func(string, frac.Rat, frac.Rat) bool) []TaskMetrics {
		tasks := []model.Spec{
			{Name: "A", Weight: rat("1/10")},
			{Name: "B", Weight: rat("1/5")},
			{Name: "C", Weight: rat("3/20")},
		}
		s, err := New(Config{M: 2, Policy: policy, UseOI: useOI, Police: true},
			model.System{M: 2, Tasks: tasks})
		if err != nil {
			t.Fatal(err)
		}
		script := map[model.Time][2]string{
			5:  {"A", "2/5"},
			9:  {"B", "1/20"},
			17: {"A", "1/10"},
			23: {"C", "1/2"},
			31: {"C", "1/10"},
		}
		s.Run(60, func(now model.Time, sch *Scheduler) {
			if ev, ok := script[now]; ok {
				if err := sch.Initiate(ev[0], rat(ev[1])); err != nil {
					t.Fatal(err)
				}
			}
		})
		return s.AllMetrics()
	}

	oi := run(PolicyOI, nil)
	hybridOI := run(PolicyHybrid, func(string, frac.Rat, frac.Rat) bool { return true })
	lj := run(PolicyLJ, nil)
	hybridLJ := run(PolicyHybrid, func(string, frac.Rat, frac.Rat) bool { return false })

	for i := range oi {
		if oi[i].Drift.Cmp(hybridOI[i].Drift) != 0 || oi[i].Scheduled != hybridOI[i].Scheduled {
			t.Errorf("hybrid(always OI) diverged from OI for %s: drift %s vs %s",
				oi[i].Name, hybridOI[i].Drift, oi[i].Drift)
		}
		if lj[i].Drift.Cmp(hybridLJ[i].Drift) != 0 || lj[i].Scheduled != hybridLJ[i].Scheduled {
			t.Errorf("hybrid(never OI) diverged from LJ for %s: drift %s vs %s",
				lj[i].Name, hybridLJ[i].Drift, lj[i].Drift)
		}
	}
}

// TestDeterminism: identical scenarios produce identical metrics.
func TestDeterminism(t *testing.T) {
	run := func() []TaskMetrics {
		r := rand.New(rand.NewSource(99))
		s := adaptiveTrial(t, r, PolicyOI, 3, 5, 150)
		return s.AllMetrics()
	}
	a, b := run(), run()
	for i := range a {
		if a[i].Scheduled != b[i].Scheduled || !a[i].Drift.Eq(b[i].Drift) || !a[i].CumPS.Eq(b[i].CumPS) {
			t.Fatalf("nondeterministic metrics for %s", a[i].Name)
		}
	}
}

// TestRapidReInitiation: property (C): initiating again before a pending
// change is enacted must not delay things or break correctness.
func TestRapidReInitiation(t *testing.T) {
	sys := model.System{M: 1, Tasks: []model.Spec{{Name: "X", Weight: rat("3/19")}}}
	s := mustNew(t, Config{M: 1, Policy: PolicyOI, Police: true, RecordDriftEvents: true, CheckInvariants: true}, sys)
	s.RunTo(8)
	// Ideal-changeable decrease (deferred enactment), then re-initiate an
	// increase one slot later: the increase is enacted immediately and the
	// decrease is skipped.
	if err := s.Initiate("X", rat("1/10")); err != nil {
		t.Fatal(err)
	}
	s.Step()
	if err := s.Initiate("X", rat("2/5")); err != nil {
		t.Fatal(err)
	}
	s.Step()
	if got := mustMetrics(t, s, "X").SchedWeight; !got.Eq(rat("2/5")) {
		t.Errorf("swt = %s, want 2/5 enacted immediately (skipping the pending decrease)", got)
	}
	s.RunTo(40)
	if len(s.Misses()) != 0 {
		t.Errorf("misses: %v", s.Misses())
	}
	if v := s.Violations(); len(v) != 0 {
		t.Errorf("violations: %v", v)
	}
	// Per-event drift still bounded by 2, counting the skipped event.
	prev := frac.Zero
	for _, ev := range s.DriftEvents("X") {
		if frac.FromInt(2).Less(ev.Value.Sub(prev).Abs()) {
			t.Errorf("per-event drift %s exceeds 2", ev.Value.Sub(prev))
		}
		prev = ev.Value
	}
}

// TestPolicingDefersOverload: with (W) policing, a weight increase that
// would push the total scheduling weight over M is deferred (with its new
// epoch's release coupled to the deferred enactment) until capacity frees
// up, and no deadlines are missed meanwhile.
func TestPolicingDefersOverload(t *testing.T) {
	tasks := []model.Spec{
		{Name: "A", Weight: rat("2/5")},
		{Name: "B", Weight: rat("2/5"), Group: "B"},
		{Name: "C", Weight: rat("1/5")},
	}
	s := mustNew(t, Config{M: 1, Policy: PolicyOI, Police: true, CheckInvariants: true,
		TieBreak: FavorGroup("B")},
		model.System{M: 1, Tasks: tasks})
	s.RunTo(6)
	// B_3's window is [4,7) and ties favor B, so B_3 is scheduled before 6:
	// B is ideal-changeable and rule I(i) tries to enact immediately. The
	// total would become 11/10 > M, so the enactment is deferred.
	b3 := s.byName["B"].lastReleased
	if b3.abs != 3 || !b3.scheduled {
		t.Fatalf("B_3 abs=%d scheduled=%v, want scheduled abs=3", b3.abs, b3.scheduled)
	}
	if err := s.Initiate("B", frac.Half); err != nil {
		t.Fatal(err)
	}
	left := false
	sawDeferral := false
	// Snapshot the post-enactment subtask's identity at capture time: the
	// engine pools subtask records, so a *subtask held across many releases
	// may be recycled (see subtask.stamp).
	var epochAbs int64
	epochStart, captured := false, false
	s.Run(30, func(now model.Time, sch *Scheduler) {
		if left && !captured {
			sub := sch.byName["B"].lastReleased
			epochAbs, epochStart, captured = sub.abs, sub.epochStart, true
		}
		if frac.One.Less(sch.TotalSchedWeight()) {
			t.Fatalf("t=%d: total scheduling weight %s exceeds M", now, sch.TotalSchedWeight())
		}
		m := mustMetrics(t, sch, "B")
		if !left {
			if m.SchedWeight.Eq(frac.Half) {
				t.Fatalf("t=%d: B's increase enacted before capacity existed", now)
			}
			sawDeferral = true
			// While deferred, B must not start its new epoch: no subtask
			// beyond B_3 may be released.
			if sch.byName["B"].lastReleased.abs > 3 {
				t.Fatalf("t=%d: B released subtask %d during deferral", now, sch.byName["B"].lastReleased.abs)
			}
		}
		if now >= 10 && !left {
			if err := sch.Leave("C"); err == nil {
				left = true
			}
		}
	})
	if !sawDeferral || !left {
		t.Fatalf("scenario did not unfold: deferral=%v left=%v", sawDeferral, left)
	}
	m := mustMetrics(t, s, "B")
	if !m.SchedWeight.Eq(frac.Half) {
		t.Errorf("B's increase never landed: swt=%s", m.SchedWeight)
	}
	if !captured || !epochStart || epochAbs != 4 {
		t.Errorf("B's post-enactment subtask abs=%d epochStart=%v, want abs=4 epoch-start", epochAbs, epochStart)
	}
	if len(s.Misses()) != 0 {
		t.Errorf("misses: %v", s.Misses())
	}
	if v := s.Violations(); len(v) != 0 {
		t.Errorf("violations: %v", v)
	}
}

// TestNoPolicingBreaksTheorem2: Theorem 2's no-miss guarantee is
// conditional on property (W). With policing disabled, an increase that
// pushes the total scheduling weight past M causes deadline misses —
// demonstrating that (W) is necessary, not an implementation nicety.
func TestNoPolicingBreaksTheorem2(t *testing.T) {
	tasks := []model.Spec{
		{Name: "A", Weight: frac.Half},
		{Name: "B", Weight: rat("2/5")},
		{Name: "C", Weight: rat("1/10")},
	}
	s := mustNew(t, Config{M: 1, Policy: PolicyOI, Police: false},
		model.System{M: 1, Tasks: tasks})
	s.RunTo(10)
	if err := s.Initiate("B", frac.Half); err != nil { // total becomes 11/10 > 1
		t.Fatal(err)
	}
	s.RunTo(200)
	if frac.One.Less(s.TotalSchedWeight()) == false {
		t.Fatalf("overload not established: total %s", s.TotalSchedWeight())
	}
	if len(s.Misses()) == 0 {
		t.Error("no deadline misses despite violating (W); Theorem 2 should not hold here")
	}
	// The same scenario with policing stays correct.
	p := mustNew(t, Config{M: 1, Policy: PolicyOI, Police: true},
		model.System{M: 1, Tasks: tasks})
	p.RunTo(10)
	if err := p.Initiate("B", frac.Half); err != nil {
		t.Fatal(err)
	}
	p.RunTo(200)
	if len(p.Misses()) != 0 {
		t.Errorf("policed run missed: %v", p.Misses())
	}
}

// TestJoinConditionEnforced: joining beyond capacity is rejected (condition J).
func TestJoinConditionEnforced(t *testing.T) {
	s := mustNew(t, Config{M: 1, Policy: PolicyOI, Police: true},
		model.System{M: 1, Tasks: background(2, "A", frac.Half, "")})
	if err := s.Join(model.Spec{Name: "B", Weight: rat("1/10")}); err == nil {
		t.Error("join beyond capacity accepted")
	}
}

// TestValidationErrors covers constructor and mutation error paths.
func TestValidationErrors(t *testing.T) {
	if _, err := New(Config{M: 1}, model.System{M: 1, Tasks: []model.Spec{{Name: "H", Weight: rat("2/3")}}}); err == nil {
		t.Error("heavy task accepted")
	}
	if _, err := New(Config{M: 2}, model.System{M: 1, Tasks: nil}); err == nil {
		t.Error("M mismatch accepted")
	}
	if _, err := New(Config{}, model.System{M: 1, Tasks: background(3, "A", frac.Half, "")}); err == nil {
		t.Error("overloaded initial system accepted")
	}
	s := mustNew(t, Config{M: 1}, model.System{M: 1, Tasks: []model.Spec{{Name: "A", Weight: rat("1/4")}}})
	if err := s.Initiate("nope", rat("1/4")); err == nil {
		t.Error("unknown task accepted")
	}
	if err := s.Initiate("A", rat("3/4")); err == nil {
		t.Error("heavy reweight accepted")
	}
	if err := s.Leave("nope"); err == nil {
		t.Error("unknown leave accepted")
	}
	if err := s.Join(model.Spec{Name: "A", Weight: rat("1/4")}); err == nil {
		t.Error("duplicate join accepted")
	}
}

// TestLateJoiners: tasks with a future Join time enter on schedule and are
// scheduled correctly from then on.
func TestLateJoiners(t *testing.T) {
	tasks := []model.Spec{
		{Name: "A", Weight: frac.Half},
		{Name: "B", Weight: frac.Half, Join: 10},
	}
	s := mustNew(t, Config{M: 1, Policy: PolicyOI, Police: true}, model.System{M: 1, Tasks: tasks})
	s.RunTo(10)
	if m := mustMetrics(t, s, "B"); m.Scheduled != 0 || !m.CumPS.IsZero() {
		t.Errorf("B active before join: %+v", m)
	}
	s.RunTo(50)
	if m := mustMetrics(t, s, "B"); m.Scheduled != 20 {
		t.Errorf("B scheduled %d quanta in [10,50), want 20", m.Scheduled)
	}
	if len(s.Misses()) != 0 {
		t.Errorf("misses: %v", s.Misses())
	}
}

// TestNoOpReweight: requesting the current weight with nothing pending does
// not perturb the schedule or the drift.
func TestNoOpReweight(t *testing.T) {
	sys := model.System{M: 1, Tasks: []model.Spec{{Name: "A", Weight: rat("2/5")}}}
	s := mustNew(t, Config{M: 1, Policy: PolicyOI, Police: true, RecordDriftEvents: true}, sys)
	s.Run(40, func(now model.Time, sch *Scheduler) {
		if now%5 == 0 && now > 0 {
			if err := sch.Initiate("A", rat("2/5")); err != nil {
				t.Fatal(err)
			}
		}
	})
	m := mustMetrics(t, s, "A")
	if m.Initiations != 0 {
		t.Errorf("no-op requests counted as initiations: %d", m.Initiations)
	}
	if !m.Drift.IsZero() || m.Scheduled != 16 {
		t.Errorf("no-op reweights perturbed the run: drift=%s scheduled=%d", m.Drift, m.Scheduled)
	}
}

// TestSoakAdaptive is a longer randomized soak: many trials, longer
// horizons, all features mixed (reweighting, delays, joins/leaves, ERfair
// on half the trials). Skipped with -short.
func TestSoakAdaptive(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	r := rand.New(rand.NewSource(97))
	for trial := 0; trial < 120; trial++ {
		m := int(r.Int63n(4)) + 1
		n := int(r.Int63n(8)) + 2
		var tasks []model.Spec
		total := frac.Zero
		for i := 0; i < n; i++ {
			w := randomLightWeight(r, 24)
			if frac.FromInt(int64(m)).Less(total.Add(w)) {
				continue
			}
			total = total.Add(w)
			tasks = append(tasks, model.Spec{Name: fmt.Sprintf("T%d", i), Weight: w})
		}
		if len(tasks) == 0 {
			continue
		}
		n = len(tasks)
		s := mustNew(t, Config{
			M: m, Policy: PolicyOI, Police: true, CheckInvariants: true,
			EarlyRelease: trial%2 == 0,
		}, model.System{M: m, Tasks: tasks})
		joined := n
		s.Run(1500, func(now model.Time, sch *Scheduler) {
			for i := 0; i < n; i++ {
				switch r.Intn(40) {
				case 0:
					_ = sch.Initiate(fmt.Sprintf("T%d", i), randomLightWeight(r, 24))
				case 1:
					_ = sch.DelayNext(fmt.Sprintf("T%d", i), r.Int63n(5)+1)
				}
			}
			if r.Intn(200) == 0 {
				name := fmt.Sprintf("J%d", joined)
				if sch.Join(model.Spec{Name: name, Weight: randomLightWeight(r, 40)}) == nil {
					joined++
				}
			}
		})
		if len(s.Misses()) != 0 {
			t.Fatalf("trial %d (M=%d, ER=%v): misses %v", trial, m, trial%2 == 0, s.Misses())
		}
		if v := s.Violations(); len(v) != 0 {
			t.Fatalf("trial %d: violations %v", trial, v)
		}
		for _, metric := range s.AllMetrics() {
			if frac.One.Less(metric.Lag) {
				t.Fatalf("trial %d: task %s lag %s above 1", trial, metric.Name, metric.Lag)
			}
		}
	}
}
