package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/frac"
	"repro/internal/model"
)

// TestERfairRunsAheadOfWindows: with early releases enabled, a lone light
// task executes work-conservingly — far ahead of its Pfair windows — while
// deadlines are untouched.
func TestERfairRunsAheadOfWindows(t *testing.T) {
	sys := model.System{M: 1, Tasks: []model.Spec{{Name: "T", Weight: frac.New(1, 10)}}}
	s := mustNew(t, Config{M: 1, Policy: PolicyOI, Police: true, EarlyRelease: true}, sys)
	s.RunTo(20)
	m := mustMetrics(t, s, "T")
	// Pfair would give 2 quanta by t=20; ERfair gives ~one per slot (each
	// successor becomes eligible the slot after its predecessor runs).
	if m.Scheduled < 10 {
		t.Errorf("ERfair scheduled only %d quanta by t=20", m.Scheduled)
	}
	if len(s.Misses()) != 0 {
		t.Errorf("misses: %v", s.Misses())
	}
	// Plain Pfair for comparison.
	p := mustNew(t, Config{M: 1, Policy: PolicyOI, Police: true}, sys)
	p.RunTo(20)
	if mp := mustMetrics(t, p, "T"); mp.Scheduled != 2 {
		t.Errorf("Pfair scheduled %d quanta, want 2", mp.Scheduled)
	}
}

// TestERfairReducesHoles: on an underloaded system, early releases strictly
// reduce idle processor-slots while keeping the schedule correct.
func TestERfairReducesHoles(t *testing.T) {
	tasks := []model.Spec{
		{Name: "A", Weight: frac.New(1, 3)},
		{Name: "B", Weight: frac.New(1, 4)},
		{Name: "C", Weight: frac.New(1, 5)},
	}
	sys := model.System{M: 2, Tasks: tasks}
	plain := mustNew(t, Config{M: 2, Policy: PolicyOI, Police: true}, sys)
	plain.RunTo(120)
	er := mustNew(t, Config{M: 2, Policy: PolicyOI, Police: true, EarlyRelease: true}, sys)
	er.RunTo(120)
	if er.Holes() >= plain.Holes() {
		t.Errorf("ERfair holes %d not below Pfair holes %d", er.Holes(), plain.Holes())
	}
	if len(er.Misses()) != 0 {
		t.Errorf("misses: %v", er.Misses())
	}
}

// TestERfairNoMissesUnderReweighting: early releases compose with the
// reweighting rules without breaking Theorem 2, including at full
// utilization.
func TestERfairNoMissesUnderReweighting(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		var tasks []model.Spec
		for i := 0; i < 7; i++ {
			tasks = append(tasks, model.Spec{Name: fmt.Sprintf("T%d", i), Weight: randomLightWeight(r, 20)})
		}
		s := mustNew(t, Config{M: 4, Policy: PolicyOI, Police: true, EarlyRelease: true, CheckInvariants: true},
			model.System{M: 4, Tasks: tasks})
		s.Run(200, func(now model.Time, sch *Scheduler) {
			for i := 0; i < 7; i++ {
				if r.Intn(15) == 0 {
					if err := sch.Initiate(fmt.Sprintf("T%d", i), randomLightWeight(r, 20)); err != nil {
						t.Fatal(err)
					}
				}
			}
		})
		if len(s.Misses()) != 0 {
			t.Fatalf("trial %d: misses %v", trial, s.Misses())
		}
		if v := s.Violations(); len(v) != 0 {
			t.Fatalf("trial %d: violations %v", trial, v)
		}
		// The upper lag bound still holds (the lower bound is deliberately
		// given up by ERfair: tasks may run ahead of the ideal).
		for _, m := range s.AllMetrics() {
			if frac.One.Less(m.Lag) {
				t.Fatalf("trial %d: task %s lag %s above 1", trial, m.Name, m.Lag)
			}
		}
	}
}

// TestERfairRespectsISSeparations: a DelayNext gap is real absence of work;
// early release must not fill it.
func TestERfairRespectsISSeparations(t *testing.T) {
	sys := model.System{M: 1, Tasks: []model.Spec{{Name: "T", Weight: frac.New(5, 16)}}}
	s := mustNew(t, Config{M: 1, Policy: PolicyOI, Police: true, EarlyRelease: true, RecordSchedule: true}, sys)
	s.RunTo(1) // T_1 scheduled in slot 0
	if err := s.DelayNext("T", 4); err != nil {
		t.Fatal(err)
	}
	// T_2 nominally releases at 3; delayed to 7. ERfair must not run it
	// before 7.
	s.RunTo(7)
	if m := mustMetrics(t, s, "T"); m.Scheduled != 1 {
		t.Errorf("scheduled %d quanta before the delayed release, want 1", m.Scheduled)
	}
	s.RunTo(12)
	if m := mustMetrics(t, s, "T"); m.Scheduled < 2 {
		t.Errorf("delayed subtask never ran: %d", m.Scheduled)
	}
}

// TestERfairDoesNotLeakAcrossReweights: an in-flight reweighting event
// suppresses early instantiation (the successor's parameters are not known
// until the event resolves).
func TestERfairDoesNotLeakAcrossReweights(t *testing.T) {
	s := mustNew(t, Config{M: 4, Policy: PolicyOI, Police: true, EarlyRelease: true,
		TieBreak: FavorGroup("T"), CheckInvariants: true}, fig6System(rat("2/5")))
	s.RunTo(1)
	if err := s.Initiate("T", rat("3/20")); err != nil {
		t.Fatal(err)
	}
	s.RunTo(10)
	// The Fig. 6(d) outcome is unchanged by ERfair: enactment at 4 with
	// drift -3/20.
	if got := mustMetrics(t, s, "T").Drift; !got.Eq(rat("-3/20")) {
		t.Errorf("drift = %s, want -3/20 under ERfair", got)
	}
	if len(s.Misses()) != 0 {
		t.Errorf("misses: %v", s.Misses())
	}
}
