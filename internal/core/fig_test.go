package core

import (
	"fmt"
	"testing"

	"repro/internal/frac"
	"repro/internal/model"
)

func rat(s string) frac.Rat { return frac.MustParse(s) }

// background returns n identical tasks named base#i in the given group.
func background(n int, base string, w frac.Rat, group string) []model.Spec {
	return model.Replicate(n, model.Spec{Name: base, Weight: w, Group: group})
}

func mustNew(t *testing.T, cfg Config, sys model.System) *Scheduler {
	t.Helper()
	s, err := New(cfg, sys)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func mustMetrics(t *testing.T, s *Scheduler, name string) TaskMetrics {
	t.Helper()
	m, ok := s.Metrics(name)
	if !ok {
		t.Fatalf("unknown task %s", name)
	}
	return m
}

// TestFig4OneProcessorHalt reproduces Fig. 4: one processor, T with weight
// 2/5 and U with weight 2/5 that increases to 1/2 at time 3 by halting U_2.
func TestFig4OneProcessorHalt(t *testing.T) {
	sys := model.System{M: 1, Tasks: []model.Spec{
		{Name: "T", Weight: rat("2/5"), Group: "T"},
		{Name: "U", Weight: rat("2/5"), Group: "U"},
	}}
	s := mustNew(t, Config{M: 1, Policy: PolicyOI, TieBreak: FavorGroup("T"), Police: true, RecordSchedule: true}, sys)

	s.RunTo(3)
	// "T_1 completes at time 1 because it is scheduled in slot 0, whereas
	// U_1 does not complete until time 2."
	if got := s.ScheduleRow(0); len(got) != 1 || got[0] != "T" {
		t.Errorf("slot 0 = %v, want [T]", got)
	}
	if got := s.ScheduleRow(1); len(got) != 1 || got[0] != "U" {
		t.Errorf("slot 1 = %v, want [U]", got)
	}
	if got := s.ScheduleRow(2); len(got) != 1 || got[0] != "T" {
		t.Errorf("slot 2 = %v, want [T]", got)
	}

	u2 := s.byName["U"].lastReleased
	if u2.abs != 2 || u2.scheduled {
		t.Fatalf("U_2 state before reweight: abs=%d scheduled=%v", u2.abs, u2.scheduled)
	}
	if err := s.Initiate("U", frac.Half); err != nil {
		t.Fatal(err)
	}
	// "Since U_2 is halted at time 3, it is complete at time 3 even though
	// it is never scheduled."
	if !u2.halted || u2.haltTime != 3 {
		t.Errorf("U_2 halted=%v at %d, want halted at 3", u2.halted, u2.haltTime)
	}
	if !u2.completeInS(3) {
		t.Error("U_2 not complete at 3")
	}

	s.RunTo(10)
	if u2.scheduled {
		t.Error("halted U_2 was scheduled")
	}
	// Rule O: enactment at max(3, D(I_SW, U_1) + b(U_1)) = max(3, 3+1) = 4;
	// the new subtask is released then with the new weight.
	nu := s.byName["U"].lastReleased
	for nu.abs > 3 && nu.prev != nil {
		nu = nu.prev
	}
	if got := mustMetrics(t, s, "U"); got.SchedWeight.Cmp(frac.Half) != 0 {
		t.Errorf("U scheduling weight = %s, want 1/2", got.SchedWeight)
	}
	if len(s.Misses()) != 0 {
		t.Errorf("misses: %v", s.Misses())
	}
}

// fig6System builds the Fig. 6 base system: M=4, a set C of 19 tasks of
// weight 3/20 each, plus task T with the given initial weight.
func fig6System(tWeight frac.Rat) model.System {
	tasks := background(19, "C", rat("3/20"), "C")
	tasks = append(tasks, model.Spec{Name: "T", Weight: tWeight, Group: "T"})
	return model.System{M: 4, Tasks: tasks}
}

// TestFig6bRuleO reproduces Fig. 6(b): T (3/20) reweights to 1/2 via rule O
// at time 10 (ties favor C, so T_2 is unscheduled and halts). The paper
// gives drift(T, 10+) = 1/2, with A(I_CSW,T,0,10) = 1 and A(I_PS,T,0,10) = 3/2.
func TestFig6bRuleO(t *testing.T) {
	s := mustNew(t, Config{M: 4, Policy: PolicyOI, TieBreak: FavorGroup("C"), Police: true}, fig6System(rat("3/20")))
	s.RunTo(10)

	ts := s.byName["T"]
	t2 := ts.lastReleased
	if t2.abs != 2 || t2.scheduled {
		t.Fatalf("T_2 before reweight: abs=%d scheduled=%v (want unscheduled abs=2)", t2.abs, t2.scheduled)
	}
	if t2.release != 6 || t2.deadline != 14 {
		t.Fatalf("T_2 window = %v, want [6,14)", t2.window())
	}
	if err := s.Initiate("T", frac.Half); err != nil {
		t.Fatal(err)
	}
	if !t2.halted || t2.haltTime != 10 {
		t.Fatalf("T_2 not halted at 10: halted=%v at %d", t2.halted, t2.haltTime)
	}

	// Ideal allocations at the enactment instant.
	m := mustMetrics(t, s, "T")
	if !m.CumCSW.Eq(frac.One) {
		t.Errorf("A(I_CSW,T,0,10) = %s, want 1", m.CumCSW)
	}
	if !m.CumPS.Eq(rat("3/2")) {
		t.Errorf("A(I_PS,T,0,10) = %s, want 3/2", m.CumPS)
	}

	s.Step() // slot 10: enact + release the new epoch's first subtask
	nt := ts.lastReleased
	if nt.abs != 3 || !nt.epochStart || nt.release != 10 {
		t.Fatalf("new subtask abs=%d epochStart=%v release=%d, want 3/true/10", nt.abs, nt.epochStart, nt.release)
	}
	if nt.deadline != 12 || nt.bbit != 0 {
		t.Errorf("new subtask window %v b=%d, want [10,12) b=0", nt.window(), nt.bbit)
	}
	if got := mustMetrics(t, s, "T").Drift; !got.Eq(frac.Half) {
		t.Errorf("drift = %s, want 1/2", got)
	}

	s.RunTo(40)
	if len(s.Misses()) != 0 {
		t.Errorf("misses: %v", s.Misses())
	}
}

// TestFig6cRuleIIncrease reproduces Fig. 6(c): ties favor T, so T_2 is
// scheduled and T is ideal-changeable at time 10. The weight change to 1/2
// is enacted immediately; D(I_SW, T_2) = 11, so the next subtask is released
// at 12 — two slots before T_2's deadline of 14 — and drift is 1/2.
func TestFig6cRuleIIncrease(t *testing.T) {
	s := mustNew(t, Config{M: 4, Policy: PolicyOI, TieBreak: FavorGroup("T"), Police: true}, fig6System(rat("3/20")))
	s.RunTo(10)

	ts := s.byName["T"]
	t2 := ts.lastReleased
	if t2.abs != 2 || !t2.scheduled {
		t.Fatalf("T_2 before reweight: abs=%d scheduled=%v (want scheduled abs=2)", t2.abs, t2.scheduled)
	}
	if err := s.Initiate("T", frac.Half); err != nil {
		t.Fatal(err)
	}
	s.Step() // slot 10: immediate enactment, boosted I_SW rate
	if got := mustMetrics(t, s, "T").SchedWeight; !got.Eq(frac.Half) {
		t.Errorf("swt after slot 10 = %s, want 1/2 (rule I enacts increases immediately)", got)
	}
	s.RunTo(13)
	if !t2.swDone || t2.swDoneTime != 11 {
		t.Errorf("D(I_SW, T_2) = %d (done=%v), want 11", t2.swDoneTime, t2.swDone)
	}
	nt := ts.lastReleased
	if nt.abs != 3 || nt.release != 12 || !nt.epochStart {
		t.Fatalf("new subtask abs=%d release=%d epochStart=%v, want 3/12/true", nt.abs, nt.release, nt.epochStart)
	}
	if got := mustMetrics(t, s, "T").Drift; !got.Eq(frac.Half) {
		t.Errorf("drift = %s, want 1/2", got)
	}
	s.RunTo(40)
	if len(s.Misses()) != 0 {
		t.Errorf("misses: %v", s.Misses())
	}
}

// TestFig6dRuleIDecrease reproduces Fig. 6(d): T with weight 2/5 decreases
// to 3/20 at time 1. Rule I defers the enactment to D(I_SW,T_1)+b(T_1) = 4,
// and the resulting drift is -3/20.
func TestFig6dRuleIDecrease(t *testing.T) {
	s := mustNew(t, Config{M: 4, Policy: PolicyOI, TieBreak: FavorGroup("T"), Police: true}, fig6System(rat("2/5")))
	s.RunTo(1)

	ts := s.byName["T"]
	t1 := ts.lastReleased
	if t1.abs != 1 || !t1.scheduled || t1.schedSlot != 0 {
		t.Fatalf("T_1: abs=%d scheduled=%v slot=%d, want scheduled in slot 0", t1.abs, t1.scheduled, t1.schedSlot)
	}
	if err := s.Initiate("T", rat("3/20")); err != nil {
		t.Fatal(err)
	}
	// The decrease is not enacted yet: swt stays 2/5 while wt drops.
	if got := mustMetrics(t, s, "T"); !got.SchedWeight.Eq(rat("2/5")) || !got.Weight.Eq(rat("3/20")) {
		t.Errorf("after initiate: swt=%s wt=%s, want 2/5 and 3/20", got.SchedWeight, got.Weight)
	}
	s.RunTo(5)
	if !t1.swDone || t1.swDoneTime != 3 {
		t.Errorf("D(I_SW, T_1) = %d, want 3", t1.swDoneTime)
	}
	nt := ts.lastReleased
	if nt.abs != 2 || nt.release != 4 || !nt.epochStart {
		t.Fatalf("new subtask abs=%d release=%d epochStart=%v, want 2/4/true", nt.abs, nt.release, nt.epochStart)
	}
	if got := mustMetrics(t, s, "T").Drift; !got.Eq(rat("-3/20")) {
		t.Errorf("drift = %s, want -3/20", got)
	}
	s.RunTo(40)
	if len(s.Misses()) != 0 {
		t.Errorf("misses: %v", s.Misses())
	}
}

// TestFig6aLeaveJoin reproduces Fig. 6(a): T of weight 3/20 leaves at time 8
// (the earliest rule L allows: d(T_1)+b(T_1) = 8) and U of weight 1/2 joins
// at time 10.
func TestFig6aLeaveJoin(t *testing.T) {
	s := mustNew(t, Config{M: 4, Policy: PolicyOI, TieBreak: FavorGroup("C"), Police: true}, fig6System(rat("3/20")))

	s.RunTo(7)
	if err := s.Leave("T"); err == nil {
		t.Error("Leave at 7 should violate rule L (needs t >= 8)")
	}
	s.RunTo(8)
	if err := s.Leave("T"); err != nil {
		t.Fatalf("Leave at 8: %v", err)
	}
	s.RunTo(10)
	if err := s.Join(model.Spec{Name: "U", Weight: frac.Half, Group: "U"}); err != nil {
		t.Fatalf("Join at 10: %v", err)
	}
	s.RunTo(40)
	if len(s.Misses()) != 0 {
		t.Errorf("misses: %v", s.Misses())
	}
	if got := mustMetrics(t, s, "U"); got.Scheduled == 0 {
		t.Error("U never scheduled after joining")
	}
	if got := mustMetrics(t, s, "T"); got.Scheduled != 1 {
		t.Errorf("T scheduled %d quanta, want exactly 1 (only T_1 before leaving)", got.Scheduled)
	}
}

// TestFig3bFig7RuleIAllocations reproduces the allocation tables of
// Figs. 3(b) and 7: a task X with initial weight 3/19 that enacts an
// increase to 2/5 at time 8 via rule I. Running X alone on one processor
// makes it ideal-changeable.
func TestFig3bFig7RuleIAllocations(t *testing.T) {
	sys := model.System{M: 1, Tasks: []model.Spec{{Name: "X", Weight: rat("3/19")}}}
	s := mustNew(t, Config{M: 1, Policy: PolicyOI, Police: true}, sys)
	s.RunTo(8)

	ts := s.byName["X"]
	x2 := ts.lastReleased
	if x2.abs != 2 || !x2.scheduled || x2.release != 6 || x2.deadline != 13 {
		t.Fatalf("X_2 = %v scheduled=%v, want [6,13) scheduled", x2.window(), x2.scheduled)
	}
	if err := s.Initiate("X", rat("2/5")); err != nil {
		t.Fatal(err)
	}

	// Snapshot the ideal allocations as time passes.
	type snap struct{ cumSW, cumCSW, cumPS string }
	want := map[model.Time]snap{
		9:  {cumSW: "158/95", cumCSW: "158/95", cumPS: "158/95"}, // 1 + 5/19 + 2/5 ; 8*3/19 + 2/5
		10: {cumSW: "2", cumCSW: "2", cumPS: "196/95"},           // X_2 complete: A(I_SW,X_2,0,10)=1
		11: {cumSW: "2", cumCSW: "2", cumPS: "234/95"},           // gap slot: no I_SW allocation
	}
	s.Run(12, func(now model.Time, sch *Scheduler) {
		if w, ok := want[now]; ok {
			m := mustMetrics(t, sch, "X")
			if !m.CumSW.Eq(rat(w.cumSW)) {
				t.Errorf("A(I_SW,X,0,%d) = %s, want %s", now, m.CumSW, w.cumSW)
			}
			if !m.CumCSW.Eq(rat(w.cumCSW)) {
				t.Errorf("A(I_CSW,X,0,%d) = %s, want %s", now, m.CumCSW, w.cumCSW)
			}
			if !m.CumPS.Eq(rat(w.cumPS)) {
				t.Errorf("A(I_PS,X,0,%d) = %s, want %s", now, m.CumPS, w.cumPS)
			}
		}
	})
	if !x2.swDone || x2.swDoneTime != 10 {
		t.Errorf("D(I_SW, X_2) = %d, want 10 (the boosted rate completes X_2 early)", x2.swDoneTime)
	}
	// X_3 is the new epoch's first subtask, released at D + b = 11.
	x3 := ts.lastReleased
	if x3.abs != 3 || x3.release != 11 || !x3.epochStart {
		t.Fatalf("X_3 abs=%d release=%d epochStart=%v, want 3/11/true", x3.abs, x3.release, x3.epochStart)
	}
	if got := mustMetrics(t, s, "X").Drift; !got.Eq(rat("44/95")) {
		t.Errorf("drift = %s, want 44/95", got)
	}
	if len(s.Misses()) != 0 {
		t.Errorf("misses: %v", s.Misses())
	}
}

// TestFig8Theorem3LJDrift reproduces Fig. 8: under PD²-LJ on four
// processors, a set A of 35 tasks with weight 1/10 plus a task T whose
// weight increases from 1/10 to 1/2 at time 4. Rule L forbids T from
// leaving before time 10, so T's drift reaches 24/10.
func TestFig8Theorem3LJDrift(t *testing.T) {
	tasks := background(35, "A", rat("1/10"), "A")
	tasks = append(tasks, model.Spec{Name: "T", Weight: rat("1/10"), Group: "T"})
	sys := model.System{M: 4, Tasks: tasks}
	s := mustNew(t, Config{M: 4, Policy: PolicyLJ, Police: true}, sys)

	s.RunTo(4)
	if err := s.Initiate("T", frac.Half); err != nil {
		t.Fatal(err)
	}
	s.RunTo(11)
	ts := s.byName["T"]
	nt := ts.lastReleased
	if nt.release != 10 || !nt.epochStart {
		t.Fatalf("rejoin subtask release=%d epochStart=%v, want 10/true", nt.release, nt.epochStart)
	}
	if got := mustMetrics(t, s, "T").Drift; !got.Eq(rat("24/10")) {
		t.Errorf("drift = %s, want 24/10", got)
	}
	s.RunTo(40)
	if len(s.Misses()) != 0 {
		t.Errorf("misses: %v", s.Misses())
	}
}

// TestTheorem3Unbounded checks the generalization after Fig. 8: lowering
// T's initial weight makes PD²-LJ's per-event drift grow without bound
// (drift = w + k - 3/2 for initial weight w = 1/(2k), initiation at time 1,
// target 1/2), so PD²-LJ is not fine-grained.
func TestTheorem3Unbounded(t *testing.T) {
	prev := frac.Zero
	for k := int64(2); k <= 8; k++ {
		w := frac.New(1, 2*k)
		sys := model.System{M: 1, Tasks: []model.Spec{{Name: "T", Weight: w}}}
		s := mustNew(t, Config{M: 1, Policy: PolicyLJ, Police: true}, sys)
		s.RunTo(1)
		if err := s.Initiate("T", frac.Half); err != nil {
			t.Fatal(err)
		}
		s.RunTo(2*k + 2)
		got := mustMetrics(t, s, "T").Drift
		want := w.Add(frac.FromInt(k)).Sub(rat("3/2"))
		if !got.Eq(want) {
			t.Errorf("k=%d: drift = %s, want %s", k, got, want)
		}
		if !prev.Less(got) {
			t.Errorf("k=%d: drift %s did not grow past %s", k, got, prev)
		}
		prev = got
	}
}

// TestFig9Theorem4EPDFMiss reproduces Fig. 9: under any EPDF scheme whose
// deadlines track true I_PS allocations, the two-processor system misses a
// deadline at time 9. Set A (10 x 1/7) leaves at 7, set B (2 x 1/6) leaves
// at 6, set C (2 x 1/14) joins at 6, and set D (5 x 1/21) increases to 1/3
// at time 7, pulling the D deadlines from 21 in to 9.
func TestFig9Theorem4EPDFMiss(t *testing.T) {
	e := NewEPDFPS(2)
	e.RunTo(12, func(now model.Time, e *EPDFPS) {
		switch now {
		case 0:
			for i := 0; i < 10; i++ {
				mustDo(t, e.Join(fmt.Sprintf("A#%d", i), rat("1/7")))
			}
			for i := 0; i < 2; i++ {
				mustDo(t, e.Join(fmt.Sprintf("B#%d", i), rat("1/6")))
			}
			for i := 0; i < 5; i++ {
				mustDo(t, e.Join(fmt.Sprintf("D#%d", i), rat("1/21")))
			}
		case 6:
			mustDo(t, e.Leave("B#0"))
			mustDo(t, e.Leave("B#1"))
			mustDo(t, e.Join("C#0", rat("1/14")))
			mustDo(t, e.Join("C#1", rat("1/14")))
		case 7:
			mustDo(t, e.Leave("A#0"))
			for i := 1; i < 10; i++ {
				mustDo(t, e.Leave(fmt.Sprintf("A#%d", i)))
			}
			for i := 0; i < 5; i++ {
				mustDo(t, e.SetWeight(fmt.Sprintf("D#%d", i), rat("1/3")))
			}
		}
	})
	misses := e.Misses()
	if len(misses) != 1 {
		t.Fatalf("misses = %v, want exactly one", misses)
	}
	if misses[0].Deadline != 9 || misses[0].Task[0] != 'D' {
		t.Errorf("miss = %+v, want a D task at deadline 9", misses[0])
	}
	// Sanity: A and B completed their PS shares before leaving.
	for i := 0; i < 10; i++ {
		if got := e.Scheduled(fmt.Sprintf("A#%d", i)); got != 1 {
			t.Errorf("A#%d completed %d quanta, want 1", i, got)
		}
	}
}

func mustDo(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// TestFig3aRuleOAllocations checks the I_SW/I_CSW treatment of a halted
// subtask using the Fig. 6(b) construction, which realizes Fig. 3(a): T_2
// receives partial I_SW allocations until the halt, which I_CSW then erases.
func TestFig3aRuleOAllocations(t *testing.T) {
	s := mustNew(t, Config{M: 4, Policy: PolicyOI, TieBreak: FavorGroup("C"), Police: true}, fig6System(rat("3/20")))
	s.RunTo(10)
	ts := s.byName["T"]
	t2 := ts.lastReleased
	// Metrics materializes the lazy I_SW frontier up to now, so the
	// white-box read of t2.swCum below sees the accrued value.
	preSW := mustMetrics(t, s, "T").CumSW
	// By time 10, I_SW has given T_2 its first-slot pairing allocation of
	// 1/20 (slot 6) plus 3/20 in slots 7-9: total 10/20 = 1/2.
	if !t2.swCum.Eq(frac.Half) {
		t.Fatalf("A(I_SW, T_2, 0, 10) = %s, want 1/2", t2.swCum)
	}
	if err := s.Initiate("T", frac.Half); err != nil {
		t.Fatal(err)
	}
	m := mustMetrics(t, s, "T")
	// I_SW keeps the partial allocation; I_CSW removes it retroactively.
	if !m.CumSW.Eq(preSW) {
		t.Errorf("halt changed I_SW cumulative: %s -> %s", preSW, m.CumSW)
	}
	if !m.CumCSW.Eq(frac.One) {
		t.Errorf("A(I_CSW,T,0,10) = %s, want 1 (halted T_2 zeroed)", m.CumCSW)
	}
	if !m.CumSW.Sub(m.CumCSW).Eq(frac.Half) {
		t.Errorf("I_SW - I_CSW = %s, want 1/2 (the lost half quantum)", m.CumSW.Sub(m.CumCSW))
	}
}
