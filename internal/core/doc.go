// Package core implements the paper's primary contribution: PD² Pfair
// scheduling of adaptable intra-sporadic (AIS) task systems with
// fine-grained task reweighting.
//
// The engine simulates an M-processor system slot by slot. Each task is a
// stream of unit-quantum subtasks whose releases, deadlines and b-bits are
// computed from the task's scheduling weight via Eqns (2)-(4) of the paper.
// Scheduling is earliest-pseudo-deadline-first with the PD² b-bit tie-break
// (valid for the paper's scope of task weights <= 1/2), followed by a
// configurable arbitrary tie-break.
//
// Alongside the actual schedule S, the engine maintains three ideal
// schedules online:
//
//   - I_SW: allocates per the scheduling weight, following the Fig. 5
//     pseudo-code. Its completion times D(I_SW, T_j) drive the reweighting
//     rules.
//   - I_CSW: the clairvoyant variant that allocates nothing to subtasks that
//     halt; used for lag and drift accounting.
//   - I_PS: instantaneous processor sharing at the task's actual weight;
//     the yardstick that defines drift.
//
// Reweighting is pluggable:
//
//   - PolicyOI — the paper's rules O and I ("PD²-OI", fine-grained:
//     per-event drift is bounded by a constant).
//   - PolicyLJ — reweighting by leaving and rejoining per rules L and J
//     ("PD²-LJ", coarse-grained: drift per event is unbounded, Theorem 3).
//   - PolicyHybrid — chooses OI or LJ per event via a user predicate; this
//     is the efficiency-versus-accuracy knob of the companion paper.
//
// A separate, intentionally small scheduler, EPDFPS, implements EPDF with
// projected I_PS deadlines and exists only to exhibit the Theorem 4
// counterexample (every EPDF algorithm can incur drift or miss deadlines).
//
// Drift (Eqn (5)) is tracked per task: at the release of each epoch-starting
// subtask (the first subtask released after an enactment), the difference
// A(I_PS, T, 0, u) - A(I_CSW, T, 0, u) is recorded. Under PD²-OI the
// absolute per-event change is at most two quanta (Theorem 5); under PD²-LJ
// it is unbounded.
package core
