package core

import (
	"fmt"

	"repro/internal/frac"
	"repro/internal/model"
)

// This file is the exported replay surface of the engine: a Scheduler
// mutation expressed as data. A (Config, System, []Command) triple is a
// complete, serializable description of a run — the engine is
// deterministic, so applying the same log to a fresh scheduler
// reproduces the original schedule byte for byte (StateDigest in
// digest.go is the cheap equality witness). internal/serve builds its
// shard snapshot/restore machinery on exactly this property: a shard
// snapshot is its seed system plus the command log applied so far.

// CommandOp enumerates the replayable scheduler mutations.
//
//lint:exhaustive ignore=numCommandOps -- sentinel counts the ops, it is not one
type CommandOp uint8

const (
	// OpJoin adds a task (Scheduler.Join).
	OpJoin CommandOp = iota
	// OpLeave removes a task (Scheduler.Leave).
	OpLeave
	// OpReweight requests a weight change (Scheduler.Initiate).
	OpReweight
	// OpDelay postpones the next release by Arg slots (Scheduler.DelayNext).
	OpDelay
	// OpAbsent marks absolute subtask index Arg absent (Scheduler.MarkAbsent).
	OpAbsent

	numCommandOps // number of ops; keep last
)

// commandOpNames is indexed by CommandOp and doubles as the wire
// encoding (MarshalText/UnmarshalText).
var commandOpNames = [numCommandOps]string{
	OpJoin:     "join",
	OpLeave:    "leave",
	OpReweight: "reweight",
	OpDelay:    "delay",
	OpAbsent:   "absent",
}

func (op CommandOp) String() string {
	if op < numCommandOps {
		return commandOpNames[op]
	}
	return fmt.Sprintf("CommandOp(%d)", uint8(op))
}

// MarshalText implements encoding.TextMarshaler with the lowercase op
// name, so Command serializes naturally to JSON.
func (op CommandOp) MarshalText() ([]byte, error) {
	if op >= numCommandOps {
		return nil, fmt.Errorf("core: unknown command op %d", uint8(op))
	}
	return []byte(commandOpNames[op]), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (op *CommandOp) UnmarshalText(text []byte) error {
	for i, name := range commandOpNames {
		if name == string(text) {
			*op = CommandOp(i)
			return nil
		}
	}
	return fmt.Errorf("core: unknown command op %q", text)
}

// Command is one externally-driven scheduler mutation in replayable
// form. At is the slot the command was (or is to be) applied in:
// commands apply at the start of slot At, before the slot is stepped.
type Command struct {
	At   model.Time `json:"at"`
	Op   CommandOp  `json:"op"`
	Task string     `json:"task,omitempty"`
	// Weight is the join weight (OpJoin) or reweight target (OpReweight).
	Weight frac.Rat `json:"weight,omitempty"`
	// Group is the optional tie-break group of a joining task.
	Group string `json:"group,omitempty"`
	// Arg is the IS separation (OpDelay) or absolute subtask index
	// (OpAbsent).
	Arg int64 `json:"arg,omitempty"`
}

func (c Command) String() string {
	switch c.Op {
	case OpJoin:
		return fmt.Sprintf("t=%d join %s w=%s", c.At, c.Task, c.Weight)
	case OpReweight:
		return fmt.Sprintf("t=%d reweight %s -> %s", c.At, c.Task, c.Weight)
	case OpDelay, OpAbsent:
		return fmt.Sprintf("t=%d %s %s arg=%d", c.At, c.Op, c.Task, c.Arg)
	case OpLeave:
		return fmt.Sprintf("t=%d leave %s", c.At, c.Task)
	}
	return fmt.Sprintf("t=%d %s %s", c.At, c.Op, c.Task)
}

// Apply executes the command against the scheduler at the current time.
// The command's At must equal Now(): a command log replays against the
// same slots it was recorded against, or the schedule it produces is a
// different schedule.
//
//lint:allocok command application allocates task state and log entries; the cost is per command, not per slot
func (s *Scheduler) Apply(c Command) error {
	if c.At != s.now {
		return fmt.Errorf("core: command %s applied at t=%d (log and clock disagree)", c, s.now)
	}
	switch c.Op { // exhaustive: adding an op must extend this dispatch (eventexhaust)
	case OpJoin:
		return s.Join(model.Spec{Name: c.Task, Weight: c.Weight, Group: c.Group})
	case OpLeave:
		return s.Leave(c.Task)
	case OpReweight:
		return s.Initiate(c.Task, c.Weight)
	case OpDelay:
		return s.DelayNext(c.Task, c.Arg)
	case OpAbsent:
		return s.MarkAbsent(c.Task, c.Arg)
	}
	return fmt.Errorf("core: unknown command op %d", uint8(c.Op))
}

// ReplayLog advances the scheduler to horizon, applying each logged
// command at the start of its recorded slot. The log must be ordered by
// At (commands within one slot apply in log order, reproducing the
// original application order); a command behind Now() or out of order
// is an error. Replay stops at the first failing command — a log
// recorded from successfully applied mutations replays without error.
func (s *Scheduler) ReplayLog(log []Command, horizon model.Time) error {
	i := 0
	for {
		for i < len(log) && log[i].At == s.now {
			if err := s.Apply(log[i]); err != nil {
				return fmt.Errorf("core: replay command %d (%s): %w", i, log[i], err)
			}
			i++
		}
		if i < len(log) && log[i].At < s.now {
			return fmt.Errorf("core: replay command %d (%s) is behind t=%d (log not ordered by At)",
				i, log[i], s.now)
		}
		if s.now >= horizon {
			if i < len(log) {
				return fmt.Errorf("core: replay horizon %d leaves %d commands unapplied", horizon, len(log)-i)
			}
			return nil
		}
		s.Step()
	}
}

// Replay constructs a scheduler over the seed system and replays the
// command log to horizon. It is the restore half of snapshotting: the
// triple (cfg, sys, log) recorded from a live scheduler rebuilds a
// byte-identical one.
func Replay(cfg Config, sys model.System, log []Command, horizon model.Time) (*Scheduler, error) {
	s, err := New(cfg, sys)
	if err != nil {
		return nil, err
	}
	if err := s.ReplayLog(log, horizon); err != nil {
		return nil, err
	}
	return s, nil
}
