// Package reference is a frozen snapshot of the PD² engine's original
// per-slot brute-force loop, kept verbatim (modulo the package clause) from
// before the event-driven calendar refactor of internal/core.
//
// Its Step rescans every task every slot for joins, enactments, releases,
// deadline misses and waiter resolution, and accrues the ideal schedules
// (I_SW, I_CSW, I_PS) slot by slot with no laziness. That makes it slow for
// large task systems but *obviously* faithful to the paper's definitions —
// which is exactly what the differential tests in internal/core need: an
// independent oracle whose per-slot schedules, metrics, misses and drifts
// the optimized engine must reproduce byte for byte on randomized AIS
// systems.
//
// Do not modify this package except to keep it compiling; behavioral
// changes would silently weaken the differential safety net. New engine
// features that the reference does not implement should be differential-
// tested by other means (for example the Fig. 5 replayer in
// internal/core/replay_test.go).
package reference

import (
	"repro/internal/frac"
	"repro/internal/model"
)

// WeightChange records a scheduling-weight change: from At onward the
// task's scheduling weight is W (Config.RecordSubtasks). Mirrors
// core.WeightChange.
type WeightChange struct {
	At model.Time
	W  frac.Rat
}
