package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/frac"
	"repro/internal/model"
)

// TestDelayNextISSeparation: delaying a release by sep slots reproduces the
// IS model of Fig. 1(b) — the windows shift, the task stays correct, and
// I_PS allocates nothing during the inactive gap.
func TestDelayNextISSeparation(t *testing.T) {
	sys := model.System{M: 1, Tasks: []model.Spec{{Name: "T", Weight: frac.New(5, 16)}}}
	s := mustNew(t, Config{M: 1, Policy: PolicyOI, Police: true, CheckInvariants: true}, sys)
	// T_1 has window [0,4) and b=1, so T_2 normally releases at 3. Delay it
	// by 2: release at 5, window [5,9) — exactly Fig. 1(b).
	s.RunTo(1)
	if err := s.DelayNext("T", 2); err != nil {
		t.Fatal(err)
	}
	s.RunTo(12)
	ts := s.byName["T"]
	var t2 *subtask
	for sub := ts.lastReleased; sub != nil; sub = sub.prev {
		if sub.abs == 2 {
			t2 = sub
		}
	}
	if t2 == nil {
		// T_2 may no longer be linked; re-run and inspect at the right time.
		s2 := mustNew(t, Config{M: 1, Policy: PolicyOI, Police: true}, sys)
		s2.RunTo(1)
		if err := s2.DelayNext("T", 2); err != nil {
			t.Fatal(err)
		}
		s2.RunTo(6)
		t2 = s2.byName["T"].lastReleased
	}
	if t2.abs != 2 || t2.release != 5 || t2.deadline != 9 {
		t.Fatalf("T_2 = abs %d %v, want abs 2 [5,9)", t2.abs, t2.window())
	}
	// The task was inactive in slot 4 (between d(T_1)=4 and r(T_2)=5), so
	// I_PS skipped it: cumPS(12) = 12*w - 1*w.
	m := mustMetrics(t, s, "T")
	want := frac.New(5, 16).MulInt(11)
	if !m.CumPS.Eq(want) {
		t.Errorf("A(I_PS,T,0,12) = %s, want %s (one inactive slot unpaid)", m.CumPS, want)
	}
	if len(s.Misses()) != 0 {
		t.Errorf("misses: %v", s.Misses())
	}
}

func TestDelayNextValidation(t *testing.T) {
	sys := model.System{M: 1, Tasks: []model.Spec{{Name: "T", Weight: frac.New(2, 5)}}}
	s := mustNew(t, Config{M: 1, Policy: PolicyOI, Police: true}, sys)
	s.RunTo(1)
	if err := s.DelayNext("nope", 1); err == nil {
		t.Error("unknown task accepted")
	}
	if err := s.DelayNext("T", -1); err == nil {
		t.Error("negative separation accepted")
	}
	if err := s.DelayNext("T", 0); err != nil {
		t.Errorf("zero separation rejected: %v", err)
	}
	if err := s.Initiate("T", frac.New(1, 5)); err != nil {
		t.Fatal(err)
	}
	if err := s.DelayNext("T", 1); err == nil {
		t.Error("delay during in-flight reweight accepted")
	}
}

// TestDelayedSystemStaysCorrect: random IS separations on a fully loaded
// system never cause misses, and lag bounds hold.
func TestDelayedSystemStaysCorrect(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		var tasks []model.Spec
		total := frac.Zero
		for i := 0; total.Less(frac.FromInt(2)) && i < 20; i++ {
			w := randomLightWeight(r, 16)
			if frac.FromInt(2).Less(total.Add(w)) {
				break
			}
			total = total.Add(w)
			tasks = append(tasks, model.Spec{Name: fmt.Sprintf("T%d", i), Weight: w})
		}
		if len(tasks) == 0 {
			continue
		}
		s := mustNew(t, Config{M: 2, Policy: PolicyOI, Police: true, CheckInvariants: true},
			model.System{M: 2, Tasks: tasks})
		s.Run(150, func(now model.Time, sch *Scheduler) {
			for _, name := range sch.TaskNames() {
				if r.Intn(25) == 0 {
					_ = sch.DelayNext(name, r.Int63n(4)+1) // may legitimately fail mid-reweight
				}
			}
		})
		if len(s.Misses()) != 0 {
			t.Fatalf("trial %d: misses %v", trial, s.Misses())
		}
		if v := s.Violations(); len(v) != 0 {
			t.Fatalf("trial %d: violations %v", trial, v)
		}
		for _, m := range s.AllMetrics() {
			if frac.One.Less(m.Lag.Abs()) {
				t.Fatalf("trial %d: task %s lag %s out of bounds", trial, m.Name, m.Lag)
			}
		}
	}
}

// TestMarkAbsentSubtask: an absent subtask keeps its window, is never
// scheduled, takes no ideal allocation, and its successor pairs against a
// zero final-slot allocation (Fig. 12 semantics).
func TestMarkAbsentSubtask(t *testing.T) {
	sys := model.System{M: 1, Tasks: []model.Spec{{Name: "V", Weight: frac.New(5, 16)}}}
	s := mustNew(t, Config{M: 1, Policy: PolicyOI, Police: true, RecordSchedule: true}, sys)
	if err := s.MarkAbsent("V", 3); err != nil {
		t.Fatal(err)
	}
	s.RunTo(20)
	ts := s.byName["V"]
	m := mustMetrics(t, s, "V")
	// By t=20, subtasks 1..7 have been released (V_7 at 19); all but the
	// absent V_3 run, so 6 quanta execute.
	if m.Scheduled != 6 {
		t.Errorf("V scheduled %d quanta, want 6 (subtasks 1,2,4,5,6,7)", m.Scheduled)
	}
	for _, row := range [][]string{s.ScheduleRow(6), s.ScheduleRow(7), s.ScheduleRow(8), s.ScheduleRow(9)} {
		for _, e := range row {
			_ = e // V may legitimately run in [6,10) for V_4 released at 9
		}
	}
	// No miss is charged to the absent subtask.
	if len(s.Misses()) != 0 {
		t.Errorf("misses: %v", s.Misses())
	}
	// I_SW gave V_3 nothing: cumulative ideal = scheduled count exactly at
	// each subtask boundary; at t=20, subtasks 1,2,4,5 are fully allocated
	// and V_6 partially. cumSW = 4 + alloc(V_6 in [16,20)).
	if ts.lastReleased.abs < 6 {
		t.Fatalf("expected V_6 released by t=20, got %d", ts.lastReleased.abs)
	}
	// V_4's first slot got the full weight (its predecessor is absent).
	var v4 *subtask
	for sub := ts.lastReleased; sub != nil; sub = sub.prev {
		if sub.abs == 4 {
			v4 = sub
		}
	}
	if v4 != nil && v4.epochStart {
		t.Error("V_4 wrongly marked epoch start")
	}
	if got := m.CumSW.Sub(m.CumCSW); !got.IsZero() {
		t.Errorf("I_SW and I_CSW diverge by %s without halts", got)
	}
}

func TestMarkAbsentValidation(t *testing.T) {
	sys := model.System{M: 1, Tasks: []model.Spec{{Name: "V", Weight: frac.New(1, 4)}}}
	s := mustNew(t, Config{M: 1, Policy: PolicyOI, Police: true}, sys)
	s.RunTo(2)
	if err := s.MarkAbsent("nope", 5); err == nil {
		t.Error("unknown task accepted")
	}
	if err := s.MarkAbsent("V", 1); err == nil {
		t.Error("already-released subtask accepted")
	}
	if err := s.MarkAbsent("V", 3); err != nil {
		t.Errorf("valid mark rejected: %v", err)
	}
}

// TestAbsentPreservesCorrectness: removing random subtasks from a feasible
// system never causes misses (removal only frees capacity — the basis of
// the appendix's displacement argument).
func TestAbsentPreservesCorrectness(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		tasks := background(4, "H", frac.Half, "")
		s := mustNew(t, Config{M: 2, Policy: PolicyOI, Police: true, CheckInvariants: true},
			model.System{M: 2, Tasks: tasks})
		for _, name := range s.TaskNames() {
			for k := 0; k < 5; k++ {
				idx := r.Int63n(50) + 2
				_ = s.MarkAbsent(name, idx)
			}
		}
		s.RunTo(120)
		if len(s.Misses()) != 0 {
			t.Fatalf("trial %d: misses %v", trial, s.Misses())
		}
		if v := s.Violations(); len(v) != 0 {
			t.Fatalf("trial %d: violations %v", trial, v)
		}
	}
}

// TestProcessorAssignment: every scheduled quantum gets a distinct CPU, and
// affinity keeps a solo task on one processor (zero migrations).
func TestProcessorAssignment(t *testing.T) {
	sys := model.System{M: 2, Tasks: []model.Spec{
		{Name: "A", Weight: frac.Half},
		{Name: "B", Weight: frac.Half},
		{Name: "C", Weight: frac.Half},
	}}
	s := mustNew(t, Config{M: 2, Policy: PolicyOI, Police: true, RecordSchedule: true}, sys)
	s.RunTo(60)
	for tt := model.Time(0); tt < 60; tt++ {
		seen := map[int]bool{}
		for _, e := range s.ScheduleEntries(tt) {
			if e.CPU < 0 || e.CPU >= 2 {
				t.Fatalf("t=%d: bad CPU %d", tt, e.CPU)
			}
			if seen[e.CPU] {
				t.Fatalf("t=%d: CPU %d double-booked", tt, e.CPU)
			}
			seen[e.CPU] = true
		}
	}
	if len(s.Misses()) != 0 {
		t.Errorf("misses: %v", s.Misses())
	}

	solo := mustNew(t, Config{M: 4, Policy: PolicyOI, Police: true},
		model.System{M: 4, Tasks: []model.Spec{{Name: "X", Weight: frac.New(1, 3)}}})
	solo.RunTo(100)
	if m := mustMetrics(t, solo, "X"); m.Migrations != 0 {
		t.Errorf("solo task migrated %d times, want 0 (affinity)", m.Migrations)
	}
}

// TestMigrationAccountingUnderLoad: on a loaded system migrations occur and
// are counted consistently with the recorded schedule.
func TestMigrationAccountingUnderLoad(t *testing.T) {
	tasks := append(background(3, "H", frac.Half, ""), background(5, "L", rat("1/10"), "")...)
	s := mustNew(t, Config{M: 2, Policy: PolicyOI, Police: true, RecordSchedule: true},
		model.System{M: 2, Tasks: tasks})
	s.RunTo(200)
	// Recount migrations from the schedule record and compare.
	lastCPU := map[string]int{}
	recount := map[string]int64{}
	for tt := model.Time(0); tt < 200; tt++ {
		for _, e := range s.ScheduleEntries(tt) {
			if prev, ok := lastCPU[e.Task]; ok && prev != e.CPU {
				recount[e.Task]++
			}
			lastCPU[e.Task] = e.CPU
		}
	}
	for _, m := range s.AllMetrics() {
		if m.Migrations != recount[m.Name] {
			t.Errorf("task %s: counted %d migrations, schedule says %d", m.Name, m.Migrations, recount[m.Name])
		}
	}
}

// TestPreemptionAccounting: a task that ran and still has eligible work but
// loses the processor is counted as preempted.
func TestPreemptionAccounting(t *testing.T) {
	// One CPU, two half-weight tasks: they alternate, and with windows of
	// length two each handoff preempts nobody (each subtask completes).
	sys := model.System{M: 1, Tasks: []model.Spec{
		{Name: "A", Weight: frac.Half},
		{Name: "B", Weight: frac.Half},
	}}
	s := mustNew(t, Config{M: 1, Policy: PolicyOI, Police: true}, sys)
	s.RunTo(40)
	totalPre := int64(0)
	for _, m := range s.AllMetrics() {
		totalPre += m.Preemptions
	}
	// A and B strictly alternate A,B,A,B..., and the one not scheduled
	// always has eligible work, so preemptions accumulate.
	if totalPre == 0 {
		t.Error("expected preemptions on a contended processor")
	}
}

// TestMarkAbsentFirstSubtask: even the task's very first subtask can be
// absent; the successor starts with the full weight and drift accounting
// is unperturbed.
func TestMarkAbsentFirstSubtask(t *testing.T) {
	sys := model.System{M: 1, Tasks: []model.Spec{{Name: "V", Weight: frac.New(5, 16)}}}
	s := mustNew(t, Config{M: 1, Policy: PolicyOI, Police: true, RecordSubtasks: true}, sys)
	if err := s.MarkAbsent("V", 1); err != nil {
		t.Fatal(err)
	}
	s.RunTo(20)
	m := mustMetrics(t, s, "V")
	// Subtasks 2..7 run (V_7 releases at 19), V_1 does not.
	if m.Scheduled != 6 {
		t.Errorf("scheduled %d quanta, want 6", m.Scheduled)
	}
	if len(s.Misses()) != 0 {
		t.Errorf("misses: %v", s.Misses())
	}
	subs := s.SubtaskHistory("V")
	if !subs[0].Absent || subs[0].SWDoneTime != 0 {
		t.Errorf("V_1 record wrong: %+v", subs[0])
	}
	// V_2's first-slot ideal allocation is the full weight (absent
	// predecessor), per the AGIS semantics.
	swt := ExpandWeights(s.SwtHistory("V"), s.Now())
	allocs := ReplayIdealAllocations(subs, swt)
	if len(allocs[1]) == 0 || !allocs[1][0].Eq(frac.New(5, 16)) {
		t.Errorf("V_2 first-slot allocation = %v, want 5/16", allocs[1])
	}
}
