package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/frac"
	"repro/internal/model"
)

// TestGroupDeadline811 checks the group-deadline formula against the
// classic weight-8/11 example from the PD² literature: the cascades from
// T_1 and T_2 resolve at time 4 (inside T_3's length-3 window), and the
// cascade from T_3 resolves at 8.
func TestGroupDeadline811(t *testing.T) {
	w := frac.New(8, 11)
	releases := []model.Time{0, 1, 2, 4, 5, 6, 8, 9}
	want := []model.Time{4, 4, 8, 8, 8, 11, 11, 11}
	for i, wd := range want {
		n := int64(i + 1)
		if got := model.GroupDeadline(w, releases[i], n); got != wd {
			t.Errorf("D(T_%d) = %d, want %d", n, got, wd)
		}
	}
	// Light tasks have no group deadline.
	if got := model.GroupDeadline(frac.Half, 0, 1); got != 0 {
		t.Errorf("D(light) = %d, want 0", got)
	}
	// Weight-1 tasks have an unbounded one.
	if got := model.GroupDeadline(frac.One, 0, 1); got != model.Infinity {
		t.Errorf("D(weight 1) = %d, want Infinity", got)
	}
}

// TestHeavyRejectedWithoutAllowHeavy: the default configuration keeps the
// paper's scope.
func TestHeavyRejectedWithoutAllowHeavy(t *testing.T) {
	sys := model.System{M: 1, Tasks: []model.Spec{{Name: "H", Weight: frac.New(2, 3)}}}
	if _, err := New(Config{M: 1, Policy: PolicyOI, Police: true}, sys); err == nil {
		t.Fatal("heavy task accepted without AllowHeavy")
	}
	if _, err := New(Config{M: 1, Policy: PolicyOI, Police: true, AllowHeavy: true}, sys); err != nil {
		t.Fatalf("heavy task rejected with AllowHeavy: %v", err)
	}
}

// TestHeavyFullUtilization pins hard static heavy cases at total weight
// exactly M, where the group-deadline tie-break is load-bearing: plain EPDF
// (even with b-bits) can miss on such systems.
func TestHeavyFullUtilization(t *testing.T) {
	cases := []model.System{
		// Seven tasks of weight 5/7 on five processors (utilization 5).
		{M: 5, Tasks: background(7, "A", rat("5/7"), "")},
		// The classic 8/11 pair plus filler: 2*(8/11) + 6/11 = 2.
		{M: 2, Tasks: append(background(2, "H", rat("8/11"), ""),
			background(3, "L", rat("2/11"), "")...)},
		// Mixed heavy/light at M=3: 3/4 + 3/4 + 2/3 + 1/2 + 1/3 = 3.
		{M: 3, Tasks: []model.Spec{
			{Name: "A", Weight: rat("3/4")},
			{Name: "B", Weight: rat("3/4")},
			{Name: "C", Weight: rat("2/3")},
			{Name: "D", Weight: rat("1/2")},
			{Name: "E", Weight: rat("1/3")},
		}},
		// Weight-1 task occupies a processor outright.
		{M: 2, Tasks: []model.Spec{
			{Name: "full", Weight: frac.One},
			{Name: "H", Weight: rat("7/10")},
			{Name: "L", Weight: rat("3/10")},
		}},
	}
	for i, sys := range cases {
		s := mustNew(t, Config{M: sys.M, Policy: PolicyOI, Police: true, AllowHeavy: true, CheckInvariants: true}, sys)
		for s.Now() < 500 {
			s.Step()
			for _, m := range s.AllMetrics() {
				if frac.One.Less(m.Lag.Abs()) {
					t.Fatalf("case %d t=%d: task %s lag %s out of bounds", i, s.Now(), m.Name, m.Lag)
				}
			}
		}
		if len(s.Misses()) != 0 {
			t.Fatalf("case %d: misses %v", i, s.Misses())
		}
		if v := s.Violations(); len(v) != 0 {
			t.Fatalf("case %d: violations %v", i, v)
		}
	}
}

// TestHeavyRandomizedFeasible: random heavy/light mixtures at utilization
// at most M never miss under full PD².
func TestHeavyRandomizedFeasible(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		m := int(r.Int63n(3)) + 2
		var tasks []model.Spec
		total := frac.Zero
		for i := 0; i < 14; i++ {
			den := r.Int63n(14) + 2
			num := r.Int63n(den) + 1 // anywhere in (0, 1]
			w := frac.New(num, den)
			if frac.FromInt(int64(m)).Less(total.Add(w)) {
				continue
			}
			total = total.Add(w)
			tasks = append(tasks, model.Spec{Name: fmt.Sprintf("T%d", i), Weight: w})
		}
		if len(tasks) == 0 {
			continue
		}
		s := mustNew(t, Config{M: m, Policy: PolicyOI, Police: true, AllowHeavy: true, CheckInvariants: true},
			model.System{M: m, Tasks: tasks})
		s.RunTo(400)
		if len(s.Misses()) != 0 {
			t.Fatalf("trial %d (M=%d, util=%s): misses %v", trial, m, total, s.Misses())
		}
		if v := s.Violations(); len(v) != 0 {
			t.Fatalf("trial %d: violations %v", trial, v)
		}
	}
}

// TestHeavyReweightRejected: the adaptive rules stay within the paper's
// proven scope — reweighting a heavy task (or to a heavy weight) fails.
func TestHeavyReweightRejected(t *testing.T) {
	sys := model.System{M: 2, Tasks: []model.Spec{
		{Name: "H", Weight: rat("2/3")},
		{Name: "L", Weight: rat("1/3")},
	}}
	s := mustNew(t, Config{M: 2, Policy: PolicyOI, Police: true, AllowHeavy: true}, sys)
	s.RunTo(5)
	if err := s.Initiate("H", rat("1/2")); err == nil {
		t.Error("reweighting a heavy task accepted")
	}
	if err := s.Initiate("L", rat("2/3")); err == nil {
		t.Error("reweighting to a heavy weight accepted")
	}
	if err := s.Initiate("L", rat("1/4")); err != nil {
		t.Errorf("light reweight alongside heavy tasks rejected: %v", err)
	}
	s.RunTo(100)
	if len(s.Misses()) != 0 {
		t.Errorf("misses: %v", s.Misses())
	}
}

// TestHeavyLightMixWithAdaptation: light tasks keep reweighting correctly
// while static heavy tasks occupy most of the system.
func TestHeavyLightMixWithAdaptation(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	sys := model.System{M: 2, Tasks: []model.Spec{
		{Name: "H", Weight: rat("8/11")},
		{Name: "a", Weight: rat("1/5")},
		{Name: "b", Weight: rat("1/5")},
		{Name: "c", Weight: rat("1/5")},
	}}
	s := mustNew(t, Config{M: 2, Policy: PolicyOI, Police: true, AllowHeavy: true, CheckInvariants: true}, sys)
	s.Run(300, func(now model.Time, sch *Scheduler) {
		for _, name := range []string{"a", "b", "c"} {
			if r.Intn(20) == 0 {
				_ = sch.Initiate(name, randomLightWeight(r, 12)) // policing may defer
			}
		}
	})
	if len(s.Misses()) != 0 {
		t.Fatalf("misses: %v", s.Misses())
	}
	if v := s.Violations(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}
