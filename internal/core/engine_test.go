package core

import (
	"testing"

	"repro/internal/frac"
	"repro/internal/model"
)

// engine_test.go covers the event-driven engine's mechanical guarantees:
// scratch buffers must not retain stale *subtask pointers across slots
// (the pre-refactor eligibility buffer kept every scanned subtask alive
// until the next slot's scan overwrote it), the steady-state hot path must
// be allocation-free, and a stolen overhead quantum must occupy a CPU so
// that affinity assignment cannot double-book it.

func engineSystem(n int) (Config, model.System) {
	tasks := make([]model.Spec, n)
	for i := range tasks {
		tasks[i] = model.Spec{Name: string(rune('A'+i%26)) + "#" + string(rune('0'+i/26)), Weight: frac.New(1, int64(n+1))}
	}
	return Config{M: 2, Policy: PolicyOI, Police: true}, model.System{M: 2, Tasks: tasks}
}

// TestStepScratchBuffersCleared: after each Step the per-slot scratch
// buffers hold no subtask pointers beyond their logical length, so a
// subtask popped from the pool cannot be kept alive (or worse, observed)
// through a stale scratch reference.
func TestStepScratchBuffersCleared(t *testing.T) {
	cfg, sys := engineSystem(12)
	s := mustNew(t, cfg, sys)
	for i := 0; i < 100; i++ {
		s.Step()
		buf := s.runBuf[:cap(s.runBuf)]
		for j, p := range buf {
			if p != nil {
				t.Fatalf("slot %d: runBuf[%d] retains %v after Step", i, j, p)
			}
		}
		prev := s.prevRan[len(s.prevRan):cap(s.prevRan)]
		for j, p := range prev {
			if p != nil {
				t.Fatalf("slot %d: prevRan slack [%d] retains task %s", i, j, p.name)
			}
		}
	}
}

// TestStepSteadyStateAllocs: once the event heaps and pools are warm, a
// Step allocates nothing — the lazy accrual works in value-type rationals
// and the calendar reuses its backing arrays.
func TestStepSteadyStateAllocs(t *testing.T) {
	cfg, sys := engineSystem(64)
	s := mustNew(t, cfg, sys)
	s.RunTo(500) // warm up heaps, pools and scratch buffers
	avg := testing.AllocsPerRun(200, func() { s.Step() })
	if avg > 0.5 {
		t.Errorf("steady-state Step allocates %.2f objects/slot, want ~0", avg)
	}
}

// TestStolenSlotOccupiesCPU: a stolen overhead quantum must mark its
// processor busy. Before the fix, the affinity pass could place a task on
// the stolen CPU, double-booking it (M+1 quanta of work in an M-processor
// slot) and corrupting the migration accounting.
func TestStolenSlotOccupiesCPU(t *testing.T) {
	sys := model.System{M: 2, Tasks: []model.Spec{
		{Name: "A", Weight: frac.Half},
		{Name: "B", Weight: frac.Half},
		{Name: "C", Weight: rat("2/5")},
	}}
	s := mustNew(t, Config{
		M: 2, Policy: PolicyOI, Police: true,
		OverheadOI:     frac.One, // every enactment steals one full slot
		RecordSchedule: true,
	}, sys)
	targets := []frac.Rat{rat("1/4"), rat("2/5")}
	stolen := 0
	for i := 0; i < 6; i++ {
		if err := s.Initiate("C", targets[i%2]); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 15; j++ {
			before := s.OverheadSlots()
			now := s.Now()
			s.Step()
			if s.OverheadSlots() == before {
				continue
			}
			stolen++
			entries := s.ScheduleEntries(now)
			if len(entries) > 1 {
				t.Errorf("t=%d: stolen slot scheduled %d quanta on the remaining CPU: %v", now, len(entries), entries)
			}
			for _, e := range entries {
				if e.CPU == 1 {
					t.Errorf("t=%d: task %s placed on the stolen CPU 1", now, e.Task)
				}
			}
		}
	}
	if stolen == 0 {
		t.Fatal("scenario never stole a slot; overhead accounting broken")
	}
	if len(s.Misses()) != 0 {
		t.Errorf("misses: %v", s.Misses())
	}
}
