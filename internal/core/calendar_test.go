package core

import (
	"strings"
	"testing"

	"repro/internal/frac"
	"repro/internal/model"
)

// newTestScheduler builds a tiny two-task scheduler for calendar tests.
func newTestScheduler(t *testing.T) *Scheduler {
	t.Helper()
	sys := model.System{
		M: 2,
		Tasks: []model.Spec{
			{Name: "A", Weight: frac.New(1, 4)},
			{Name: "B", Weight: frac.New(1, 3)},
		},
	}
	s, err := New(Config{M: 2}, sys)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestEventKindString(t *testing.T) {
	want := map[eventKind]string{
		evKindJoin:    "join",
		evKindEnact:   "enact",
		evKindRelease: "release",
		evKindER:      "erfair",
		evKindMiss:    "miss",
		evKindResolve: "resolve",
	}
	if len(want) != int(numEventKinds) {
		t.Fatalf("test covers %d kinds, engine declares %d", len(want), numEventKinds)
	}
	for k, name := range want {
		if got := k.String(); got != name {
			t.Errorf("eventKind(%d).String() = %q, want %q", uint8(k), got, name)
		}
	}
	if got := numEventKinds.String(); !strings.Contains(got, "eventKind(") {
		t.Errorf("out-of-range String() = %q, want fallthrough rendering", got)
	}
}

func TestCalendarDispatch(t *testing.T) {
	s := newTestScheduler(t)
	// Every kind must map to a distinct heap.
	seen := make(map[*eventHeap]eventKind)
	for k := eventKind(0); k < numEventKinds; k++ {
		h := s.calendar(k)
		if prev, dup := seen[h]; dup {
			t.Fatalf("calendar(%v) and calendar(%v) share a heap", prev, k)
		}
		seen[h] = k
	}
	// pushEvent routes to the kind's heap and stamps increasing seq.
	base := s.pendingEvents()
	ts := s.tasks[0]
	s.pushEvent(evKindResolve, tevent{at: model.Time(7), ts: ts})
	s.pushEvent(evKindResolve, tevent{at: model.Time(7), ts: ts})
	if got := len(s.calendar(evKindResolve).ev); got != 2 {
		t.Fatalf("resolve heap holds %d events, want 2", got)
	}
	if got := s.pendingEvents(); got != base+2 {
		t.Fatalf("pendingEvents = %d, want %d", got, base+2)
	}
	e1, ok1 := s.calendar(evKindResolve).popDue(model.Time(7))
	e2, ok2 := s.calendar(evKindResolve).popDue(model.Time(7))
	if !ok1 || !ok2 || e1.seq >= e2.seq {
		t.Fatalf("pop order not seq-deterministic: (%v,%v) seq %d,%d", ok1, ok2, e1.seq, e2.seq)
	}
}

func TestCalendarUnknownKindPanics(t *testing.T) {
	s := newTestScheduler(t)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("calendar(numEventKinds) did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "unknown event kind") {
			t.Fatalf("panic %v does not name the invariant", r)
		}
	}()
	s.calendar(numEventKinds)
}
