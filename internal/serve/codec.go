package serve

import (
	"bytes"
	"fmt"
	"strconv"
	"unicode/utf16"
	"unicode/utf8"

	"repro/internal/frac"
	"repro/internal/model"
)

// Hand-rolled JSON codec for the hot wire path. The serving bottleneck
// is per-command overhead, not scheduling (ROADMAP open item 2), and
// encoding/json's reflection allocates on every request; this codec
// encodes CommandResult/AdvanceResponse and decodes
// CommandRequest/AdvanceRequest with zero steady-state allocations,
// appending into pooled buffers owned by the mailbox record.
//
// The contract is byte-for-byte compatibility with encoding/json, in
// both directions:
//
//   - appendCommandResult(s)/appendAdvanceResponse produce exactly the
//     bytes writeJSON's json.Encoder produced (struct field order,
//     omitempty, HTML-escaping, trailing newline) — pinned by golden
//     differential tests in codec_test.go;
//   - decodeCommands/decodeAdvance accept exactly the inputs
//     json.Unmarshal accepted for the wire structs (case-folded keys,
//     duplicate keys last-wins, skipped unknown fields, \u escapes with
//     surrogate pairs, invalid-UTF-8 replacement) — pinned by fuzz
//     agreement tests.
//
// Decoded strings are NOT copied: they alias the request body (or the
// record's escape scratch) and are only valid while the mailbox record
// is live. Names that outlive the request (joins entering the admission
// books, group tags) are interned explicitly at a declared allocok
// boundary.

// maxJSONDepth mirrors encoding/json's nesting limit so the skip path
// of the decoder agrees with json.Unmarshal on pathological inputs.
const maxJSONDepth = 10000

// ---------------------------------------------------------------------
// Encoder.

var jsonHexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal, escaping exactly
// as encoding/json does with HTML escaping on (its default): ", \, and
// control bytes escaped (with \n, \r, \t short forms), <, >, & as
// \u00xx, invalid UTF-8 as �, and U+2028/U+2029 escaped.
//
//lint:noalloc hot wire encode path; appends into the caller's pooled buffer
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		b := s[i]
		if b < utf8.RuneSelf {
			if b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', jsonHexDigits[b>>4], jsonHexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', jsonHexDigits[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// appendCommandResult appends r as a JSON object, byte-identical to
// json.Marshal's rendering of CommandResult (field order, omitempty).
//
//lint:noalloc hot wire encode path; appends into the caller's pooled buffer
func appendCommandResult(dst []byte, r *CommandResult) []byte {
	dst = append(dst, `{"status":`...)
	dst = appendJSONString(dst, r.Status)
	if r.Slot != 0 {
		dst = append(dst, `,"slot":`...)
		dst = strconv.AppendInt(dst, r.Slot, 10)
	}
	if r.Code != 0 {
		dst = append(dst, `,"code":`...)
		dst = strconv.AppendInt(dst, int64(r.Code), 10)
	}
	if r.Error != "" {
		dst = append(dst, `,"error":`...)
		dst = appendJSONString(dst, r.Error)
	}
	if r.Reason != "" {
		dst = append(dst, `,"reason":`...)
		dst = appendJSONString(dst, r.Reason)
	}
	if r.Headroom != "" {
		dst = append(dst, `,"headroom":`...)
		dst = appendJSONString(dst, r.Headroom)
	}
	return append(dst, '}')
}

// appendCommandResults appends rs as a JSON array plus the trailing
// newline json.Encoder emits — the full batch-response body.
//
//lint:noalloc hot wire encode path; appends into the caller's pooled buffer
func appendCommandResults(dst []byte, rs []CommandResult) []byte {
	dst = append(dst, '[')
	for i := range rs {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendCommandResult(dst, &rs[i])
	}
	return append(dst, ']', '\n')
}

// appendCommandResultLine is the single-command response body: the
// object plus json.Encoder's trailing newline.
//
//lint:noalloc hot wire encode path; appends into the caller's pooled buffer
func appendCommandResultLine(dst []byte, r *CommandResult) []byte {
	dst = appendCommandResult(dst, r)
	return append(dst, '\n')
}

// appendAdvanceResponse is the advance response body.
//
//lint:noalloc hot wire encode path; appends into the caller's pooled buffer
func appendAdvanceResponse(dst []byte, now int64) []byte {
	dst = append(dst, `{"now":`...)
	dst = strconv.AppendInt(dst, now, 10)
	return append(dst, '}', '\n')
}

// ---------------------------------------------------------------------
// Decoder.

// jsonCursor scans one request body. Strings are returned as subslices
// of the body where possible; strings containing escapes or non-ASCII
// bytes are rewritten into esc, which the owning mailbox record retains
// across requests (growth is amortized).
type jsonCursor struct {
	b   []byte
	i   int
	esc []byte
}

//lint:allocok error construction on the malformed-request path only
func jsonErrf(format string, args ...any) error {
	return fmt.Errorf(format, args...)
}

// errUnexpectedEnd mirrors encoding/json's truncated-input error text.
//
//lint:allocok error construction on the malformed-request path only
func errUnexpectedEnd() error {
	return fmt.Errorf("unexpected end of JSON input")
}

//lint:noalloc hot wire decode path
func (c *jsonCursor) ws() {
	for c.i < len(c.b) {
		switch c.b[c.i] {
		case ' ', '\t', '\n', '\r':
			c.i++
		default:
			return
		}
	}
}

// lit consumes the literal s ("true", "false", "null") if present.
//
//lint:noalloc hot wire decode path
func (c *jsonCursor) lit(s string) bool {
	if len(c.b)-c.i < len(s) {
		return false
	}
	for j := 0; j < len(s); j++ {
		if c.b[c.i+j] != s[j] {
			return false
		}
	}
	c.i += len(s)
	return true
}

// trailing errors unless only whitespace remains.
//
//lint:noalloc hot wire decode path
func (c *jsonCursor) trailing() error {
	c.ws()
	if c.i != len(c.b) {
		return jsonErrf("invalid character %q after top-level value", c.b[c.i])
	}
	return nil
}

// str parses a JSON string (or null, returning nil). The fast path —
// printable ASCII, no escapes — returns a subslice of the body; anything
// else is rewritten into the escape scratch with encoding/json's exact
// semantics (\u escapes with surrogate-pair handling, invalid UTF-8 and
// unpaired surrogates replaced by U+FFFD).
//
//lint:noalloc hot wire decode path; rewrites land in the record's retained scratch
func (c *jsonCursor) str() ([]byte, error) {
	if c.i >= len(c.b) {
		return nil, errUnexpectedEnd()
	}
	if c.b[c.i] == 'n' {
		if c.lit("null") {
			return nil, nil
		}
		return nil, jsonErrf("invalid character 'n' looking for string")
	}
	if c.b[c.i] != '"' {
		return nil, jsonErrf("invalid character %q looking for string", c.b[c.i])
	}
	c.i++
	start := c.i
	for c.i < len(c.b) {
		b := c.b[c.i]
		if b == '"' {
			out := c.b[start:c.i]
			c.i++
			return out, nil
		}
		if b == '\\' || b >= utf8.RuneSelf {
			return c.strSlow(start)
		}
		if b < 0x20 {
			return nil, jsonErrf("invalid character %q in string literal", b)
		}
		c.i++
	}
	return nil, errUnexpectedEnd()
}

// strSlow rewrites a string with escapes or non-ASCII bytes into the
// scratch, resuming from the opening quote's successor `start`.
//
//lint:noalloc hot wire decode path; rewrites land in the record's retained scratch
func (c *jsonCursor) strSlow(start int) ([]byte, error) {
	from := len(c.esc)
	c.esc = append(c.esc, c.b[start:c.i]...)
	for c.i < len(c.b) {
		switch b := c.b[c.i]; {
		case b == '"':
			c.i++
			return c.esc[from:], nil
		case b == '\\':
			c.i++
			if c.i >= len(c.b) {
				return nil, errUnexpectedEnd()
			}
			switch e := c.b[c.i]; e {
			case '"', '\\', '/':
				c.esc = append(c.esc, e)
				c.i++
			case 'b':
				c.esc = append(c.esc, '\b')
				c.i++
			case 'f':
				c.esc = append(c.esc, '\f')
				c.i++
			case 'n':
				c.esc = append(c.esc, '\n')
				c.i++
			case 'r':
				c.esc = append(c.esc, '\r')
				c.i++
			case 't':
				c.esc = append(c.esc, '\t')
				c.i++
			case 'u':
				r := c.getu4(c.i - 1)
				if r < 0 {
					return nil, jsonErrf("invalid \\u escape in string literal")
				}
				c.i += 5
				if utf16.IsSurrogate(r) {
					r1 := c.getu4(c.i)
					if dec := utf16.DecodeRune(r, r1); dec != utf8.RuneError {
						c.i += 6
						c.esc = utf8.AppendRune(c.esc, dec)
						break
					}
					r = utf8.RuneError
				}
				c.esc = utf8.AppendRune(c.esc, r)
			default:
				return nil, jsonErrf("invalid escape character %q in string literal", e)
			}
		case b < 0x20:
			return nil, jsonErrf("invalid character %q in string literal", b)
		case b < utf8.RuneSelf:
			c.esc = append(c.esc, b)
			c.i++
		default:
			r, size := utf8.DecodeRune(c.b[c.i:])
			c.esc = utf8.AppendRune(c.esc, r)
			c.i += size
		}
	}
	return nil, errUnexpectedEnd()
}

// getu4 decodes the \uXXXX escape starting at offset (the backslash),
// returning -1 if it is not one — encoding/json's getu4.
//
//lint:noalloc hot wire decode path
func (c *jsonCursor) getu4(at int) rune {
	if at+6 > len(c.b) || c.b[at] != '\\' || c.b[at+1] != 'u' {
		return -1
	}
	var r rune
	for _, d := range c.b[at+2 : at+6] {
		switch {
		case d >= '0' && d <= '9':
			d -= '0'
		case d >= 'a' && d <= 'f':
			d -= 'a' - 10
		case d >= 'A' && d <= 'F':
			d -= 'A' - 10
		default:
			return -1
		}
		r = r*16 + rune(d)
	}
	return r
}

// number scans one JSON number token and returns it uninterpreted.
//
//lint:noalloc hot wire decode path
func (c *jsonCursor) number() ([]byte, error) {
	start := c.i
	if c.i < len(c.b) && c.b[c.i] == '-' {
		c.i++
	}
	switch {
	case c.i < len(c.b) && c.b[c.i] == '0':
		c.i++
	case c.i < len(c.b) && c.b[c.i] >= '1' && c.b[c.i] <= '9':
		for c.i < len(c.b) && c.b[c.i] >= '0' && c.b[c.i] <= '9' {
			c.i++
		}
	default:
		return nil, jsonErrf("invalid number literal")
	}
	if c.i < len(c.b) && c.b[c.i] == '.' {
		c.i++
		if c.i >= len(c.b) || c.b[c.i] < '0' || c.b[c.i] > '9' {
			return nil, jsonErrf("invalid number literal: missing fraction digits")
		}
		for c.i < len(c.b) && c.b[c.i] >= '0' && c.b[c.i] <= '9' {
			c.i++
		}
	}
	if c.i < len(c.b) && (c.b[c.i] == 'e' || c.b[c.i] == 'E') {
		c.i++
		if c.i < len(c.b) && (c.b[c.i] == '+' || c.b[c.i] == '-') {
			c.i++
		}
		if c.i >= len(c.b) || c.b[c.i] < '0' || c.b[c.i] > '9' {
			return nil, jsonErrf("invalid number literal: missing exponent digits")
		}
		for c.i < len(c.b) && c.b[c.i] >= '0' && c.b[c.i] <= '9' {
			c.i++
		}
	}
	return c.b[start:c.i], nil
}

// skipValue validates and discards one JSON value of any shape (the
// unknown-field path), with encoding/json's nesting limit.
//
//lint:noalloc hot wire decode path
func (c *jsonCursor) skipValue(depth int) error {
	if depth > maxJSONDepth {
		return jsonErrf("exceeded max depth")
	}
	c.ws()
	if c.i >= len(c.b) {
		return errUnexpectedEnd()
	}
	switch b := c.b[c.i]; {
	case b == '{':
		c.i++
		c.ws()
		if c.i < len(c.b) && c.b[c.i] == '}' {
			c.i++
			return nil
		}
		for {
			c.ws()
			if _, err := c.str(); err != nil {
				return err
			}
			c.ws()
			if c.i >= len(c.b) || c.b[c.i] != ':' {
				return jsonErrf("expected ':' after object key")
			}
			c.i++
			if err := c.skipValue(depth + 1); err != nil {
				return err
			}
			c.ws()
			if c.i >= len(c.b) {
				return errUnexpectedEnd()
			}
			switch c.b[c.i] {
			case ',':
				c.i++
			case '}':
				c.i++
				return nil
			default:
				return jsonErrf("invalid character %q after object value", c.b[c.i])
			}
		}
	case b == '[':
		c.i++
		c.ws()
		if c.i < len(c.b) && c.b[c.i] == ']' {
			c.i++
			return nil
		}
		for {
			if err := c.skipValue(depth + 1); err != nil {
				return err
			}
			c.ws()
			if c.i >= len(c.b) {
				return errUnexpectedEnd()
			}
			switch c.b[c.i] {
			case ',':
				c.i++
			case ']':
				c.i++
				return nil
			default:
				return jsonErrf("invalid character %q after array element", c.b[c.i])
			}
		}
	case b == '"':
		_, err := c.str()
		return err
	case b == 't':
		if !c.lit("true") {
			return jsonErrf("invalid literal")
		}
		return nil
	case b == 'f':
		if !c.lit("false") {
			return jsonErrf("invalid literal")
		}
		return nil
	case b == 'n':
		if !c.lit("null") {
			return jsonErrf("invalid literal")
		}
		return nil
	case b == '-' || (b >= '0' && b <= '9'):
		_, err := c.number()
		return err
	default:
		return jsonErrf("invalid character %q looking for value", b)
	}
}

// rawCommand is one decoded-but-unvalidated wire command. Slices alias
// the request body or the cursor's scratch; nil means absent (which
// json.Unmarshal and the validator both treat as empty).
type rawCommand struct {
	op, task, weight, group []byte
}

// command decodes one command object (or null) into out, mirroring
// json.Unmarshal's struct decoding: case-folded key match, last
// duplicate wins, unknown fields skipped, null leaves a field unset.
//
//lint:noalloc hot wire decode path
func (c *jsonCursor) command(out *rawCommand) error {
	*out = rawCommand{}
	c.ws()
	if c.i >= len(c.b) {
		return errUnexpectedEnd()
	}
	if c.b[c.i] == 'n' {
		if c.lit("null") {
			return nil
		}
		return jsonErrf("invalid literal looking for command object")
	}
	if c.b[c.i] != '{' {
		return jsonErrf("invalid character %q looking for command object", c.b[c.i])
	}
	c.i++
	c.ws()
	if c.i < len(c.b) && c.b[c.i] == '}' {
		c.i++
		return nil
	}
	for {
		c.ws()
		key, err := c.str()
		if err != nil {
			return err
		}
		c.ws()
		if c.i >= len(c.b) || c.b[c.i] != ':' {
			return jsonErrf("expected ':' after object key")
		}
		c.i++
		c.ws()
		switch {
		case jsonKeyIs(key, "op"):
			if out.op, err = c.str(); err != nil {
				return jsonErrf("op: %v", err)
			}
		case jsonKeyIs(key, "task"):
			if out.task, err = c.str(); err != nil {
				return jsonErrf("task: %v", err)
			}
		case jsonKeyIs(key, "weight"):
			if out.weight, err = c.str(); err != nil {
				return jsonErrf("weight: %v", err)
			}
		case jsonKeyIs(key, "group"):
			if out.group, err = c.str(); err != nil {
				return jsonErrf("group: %v", err)
			}
		default:
			if err := c.skipValue(1); err != nil {
				return err
			}
		}
		c.ws()
		if c.i >= len(c.b) {
			return errUnexpectedEnd()
		}
		switch c.b[c.i] {
		case ',':
			c.i++
		case '}':
			c.i++
			return nil
		default:
			return jsonErrf("invalid character %q after object value", c.b[c.i])
		}
	}
}

// jsonKeyIs matches a decoded object key against a known (lowercase
// ASCII) field name with json.Unmarshal's ASCII case folding. Unicode
// folding would be wrong here: encoding/json matches ASCII-only field
// names byte-wise, so e.g. a Kelvin-sign K must NOT match 'k'.
//
//lint:noalloc hot wire decode path
func jsonKeyIs(key []byte, name string) bool {
	if len(key) != len(name) {
		return false
	}
	for i := 0; i < len(name); i++ {
		b := key[i]
		if 'A' <= b && b <= 'Z' {
			b += 'a' - 'A'
		}
		if b != name[i] {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------
// Integer and rational parsing over bytes (no intermediate strings).

// parseInt64 mirrors strconv.ParseInt(s, 10, 64): optional sign, one or
// more decimal digits, overflow checked.
//
//lint:noalloc hot wire decode path
func parseInt64(b []byte) (int64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	neg := false
	switch b[0] {
	case '+':
		b = b[1:]
	case '-':
		neg = true
		b = b[1:]
	}
	if len(b) == 0 {
		return 0, false
	}
	const cutoff = uint64(1) << 63
	var n uint64
	for _, d := range b {
		if d < '0' || d > '9' {
			return 0, false
		}
		if n > (cutoff-1)/10+1 {
			return 0, false
		}
		n = n*10 + uint64(d-'0')
		if n > cutoff {
			return 0, false
		}
	}
	if neg {
		if n > cutoff {
			return 0, false
		}
		return -int64(n), true
	}
	if n >= cutoff {
		return 0, false
	}
	return int64(n), true
}

// parseRatBytes mirrors frac.Parse over bytes: "a/b" or "a", parts
// trimmed of (unicode) space, zero denominators refused.
//
//lint:noalloc hot wire decode path
func parseRatBytes(b []byte) (frac.Rat, error) {
	b = bytes.TrimSpace(b)
	if i := bytes.IndexByte(b, '/'); i >= 0 {
		num, ok := parseInt64(bytes.TrimSpace(b[:i]))
		if !ok {
			return frac.Rat{}, jsonErrf("frac: parse %q: invalid integer", b)
		}
		den, ok := parseInt64(bytes.TrimSpace(b[i+1:]))
		if !ok {
			return frac.Rat{}, jsonErrf("frac: parse %q: invalid integer", b)
		}
		if den == 0 {
			return frac.Rat{}, jsonErrf("frac: parse %q: zero denominator", b)
		}
		return frac.New(num, den), nil
	}
	n, ok := parseInt64(b)
	if !ok {
		return frac.Rat{}, jsonErrf("frac: parse %q: invalid integer", b)
	}
	return frac.FromInt(n), nil
}

// ---------------------------------------------------------------------
// Command decoding and validation.

// validateRaw resolves a decoded command to an op and exact weight,
// performing exactly parseCommand's stateless checks (same refusal set,
// equivalent messages). On success the returned wireCmd's task aliases
// the request buffer (wireCmd.raw); the admission layer resolves it to
// a canonical interned name.
//
//lint:noalloc hot wire decode path; rejection messages form at the allocok error boundary
func validateRaw(rc *rawCommand) (wireCmd, error) {
	var op pendingOp
	switch {
	case bytes.Equal(rc.op, opJoinName):
		op = opJoin
	case bytes.Equal(rc.op, opLeaveName):
		op = opLeave
	case bytes.Equal(rc.op, opReweightName):
		op = opReweight
	default:
		return wireCmd{}, jsonErrf("op %q is not one of join, leave, reweight", rc.op)
	}
	if len(rc.task) == 0 {
		return wireCmd{}, jsonErrf("missing task name")
	}
	cmd := wireCmd{op: op, raw: rc.task}
	if len(rc.group) > 0 {
		cmd.group = internBytes(rc.group)
	}
	if op == opLeave {
		return cmd, nil
	}
	if len(rc.weight) == 0 {
		return wireCmd{}, jsonErrf("op %s needs a weight", rc.op)
	}
	w, perr := parseRatBytes(rc.weight)
	if perr != nil {
		return wireCmd{}, jsonErrf("weight %q: %v", rc.weight, perr)
	}
	// The AIS reweighting rules cover light tasks only; serve admits
	// nothing it could not later reweight.
	if lerr := checkLightWeight(w); lerr != nil {
		return wireCmd{}, jsonErrf("weight %s: %v", w, lerr)
	}
	cmd.weight = w
	return cmd, nil
}

var (
	opJoinName     = []byte("join")
	opLeaveName    = []byte("leave")
	opReweightName = []byte("reweight")
)

// checkLightWeight keeps model's error construction behind an allocok
// boundary; the accept path performs only comparisons.
//
//lint:allocok weight-rejection errors form here; accepted weights return nil without allocating
func checkLightWeight(w frac.Rat) error {
	return model.CheckLightWeight(w)
}

// internBytes copies decoded bytes into a durable string (joins'
// admission names and group tags outlive the request buffer).
//
//lint:allocok name interning is the one deliberate allocation of the decode path; joins and group tags only
func internBytes(b []byte) string {
	return string(b)
}

//lint:allocok error construction on the malformed-request path only
func commandErrf(i int, err error) error {
	return fmt.Errorf("command %d: %v", i, err)
}

// decodeCommands parses a request body — one command object or an array
// of them — directly into validated wireCmds, appending to dst (pooled)
// and rewriting escaped strings into esc (pooled). It is the fused
// equivalent of json.Unmarshal + parseCommand: any body json.Unmarshal
// would refuse for the wire structs is refused, any command
// parseCommand would refuse is refused, and a malformed batch fails as
// a whole before anything reaches a shard.
//
//lint:noalloc hot wire decode path; growth lands in caller-owned pooled buffers
func decodeCommands(body, esc []byte, dst []wireCmd) (cmds []wireCmd, escOut []byte, batch bool, err error) {
	var c jsonCursor
	c.b = body
	c.esc = esc[:0]
	c.ws()
	var rc rawCommand
	if batch = c.i < len(c.b) && c.b[c.i] == '['; !batch {
		if err := c.command(&rc); err != nil {
			return dst, c.esc, false, err
		}
		if err := c.trailing(); err != nil {
			return dst, c.esc, false, err
		}
		cmd, err := validateRaw(&rc)
		if err != nil {
			return dst, c.esc, false, commandErrf(0, err)
		}
		return append(dst, cmd), c.esc, false, nil
	}
	c.i++
	c.ws()
	if c.i < len(c.b) && c.b[c.i] == ']' {
		c.i++
		if err := c.trailing(); err != nil {
			return dst, c.esc, true, err
		}
		return dst, c.esc, true, nil
	}
	for n := 0; ; n++ {
		if err := c.command(&rc); err != nil {
			return dst, c.esc, true, err
		}
		cmd, verr := validateRaw(&rc)
		if verr != nil {
			// Finish the syntax scan first: json.Unmarshal validates the
			// whole body before decoding, so a syntax error later in the
			// batch must win over this command's validation error.
			for {
				c.ws()
				if c.i >= len(c.b) {
					return dst, c.esc, true, errUnexpectedEnd()
				}
				if c.b[c.i] == ']' {
					c.i++
					break
				}
				if c.b[c.i] != ',' {
					return dst, c.esc, true, jsonErrf("invalid character %q after array element", c.b[c.i])
				}
				c.i++
				if err := c.command(&rc); err != nil {
					return dst, c.esc, true, err
				}
			}
			if err := c.trailing(); err != nil {
				return dst, c.esc, true, err
			}
			return dst, c.esc, true, commandErrf(n, verr)
		}
		dst = append(dst, cmd)
		c.ws()
		if c.i >= len(c.b) {
			return dst, c.esc, true, errUnexpectedEnd()
		}
		switch c.b[c.i] {
		case ',':
			c.i++
		case ']':
			c.i++
			if err := c.trailing(); err != nil {
				return dst, c.esc, true, err
			}
			return dst, c.esc, true, nil
		default:
			return dst, c.esc, true, jsonErrf("invalid character %q after array element", c.b[c.i])
		}
	}
}

// decodeAdvance parses an advance request body: empty means one slot,
// otherwise an object (or null) whose "slots" field must be a JSON
// integer fitting int64 — exactly json.Unmarshal's acceptance for
// AdvanceRequest.
//
//lint:noalloc hot wire decode path
func decodeAdvance(body []byte) (int64, error) {
	if len(body) == 0 {
		return 0, nil
	}
	var c jsonCursor
	c.b = body
	c.ws()
	if c.i >= len(c.b) {
		return 0, errUnexpectedEnd()
	}
	var slots int64
	if c.b[c.i] == 'n' {
		if !c.lit("null") {
			return 0, jsonErrf("invalid literal looking for advance object")
		}
		return slots, c.trailing()
	}
	if c.b[c.i] != '{' {
		return 0, jsonErrf("invalid character %q looking for advance object", c.b[c.i])
	}
	c.i++
	c.ws()
	if c.i < len(c.b) && c.b[c.i] == '}' {
		c.i++
		return slots, c.trailing()
	}
	for {
		c.ws()
		key, err := c.str()
		if err != nil {
			return 0, err
		}
		c.ws()
		if c.i >= len(c.b) || c.b[c.i] != ':' {
			return 0, jsonErrf("expected ':' after object key")
		}
		c.i++
		c.ws()
		switch {
		case !jsonKeyIs(key, "slots"):
			if err := c.skipValue(1); err != nil {
				return 0, err
			}
		case c.i < len(c.b) && c.b[c.i] == 'n':
			// null leaves the field unset, as json.Unmarshal does.
			if !c.lit("null") {
				return 0, jsonErrf("invalid literal for slots")
			}
		default:
			tok, err := c.number()
			if err != nil {
				return 0, err
			}
			n, ok := parseInt64(tok)
			if !ok {
				return 0, jsonErrf("slots %q does not fit int64", tok)
			}
			slots = n
		}
		c.ws()
		if c.i >= len(c.b) {
			return 0, errUnexpectedEnd()
		}
		switch c.b[c.i] {
		case ',':
			c.i++
		case '}':
			c.i++
			return slots, c.trailing()
		default:
			return 0, jsonErrf("invalid character %q after object value", c.b[c.i])
		}
	}
}
