package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync/atomic"
)

// Options configures a Server.
type Options struct {
	// Shards is the number of independent engine shards (>= 1).
	Shards int
	// Config is the per-shard engine configuration.
	Config ShardConfig
	// MailboxCap bounds each shard's mailbox; a full mailbox answers 429.
	// Default 256.
	MailboxCap int
	// RetryAfterSeconds is advertised in the Retry-After header of 429
	// responses. Default 1.
	RetryAfterSeconds int
	// Snapshots optionally restores shards from a previous run. Each
	// snapshot's Shard index must be in [0, Shards); missing indices
	// start fresh.
	Snapshots []*Snapshot
}

// Server owns the shard set and the HTTP surface. It does not own a
// listener or the wall clock: cmd/pd2d wires Handler() into an
// http.Server and pumps shard ticks. Lifecycle is New → Start → (serve
// traffic) → quiesce HTTP → Stop → Snapshots.
//
// Shard slots are atomic pointers so the cluster layer can replace a
// live shard (InstallShard: migration receive, follower promotion)
// while handlers race it: a handler that grabbed the outgoing shard
// completes or gets 503 via the shard's done channel, and everything
// after the swap sees the replacement.
type Server struct {
	shards     []atomic.Pointer[Shard]
	mux        *http.ServeMux
	retryAfter string
	mailboxCap int
	stopping   atomic.Bool
	cstats     atomic.Pointer[ClusterStats]
}

// New builds a stopped server.
func New(opts Options) (*Server, error) {
	if opts.Shards < 1 {
		return nil, fmt.Errorf("serve: need at least one shard, got %d", opts.Shards)
	}
	if opts.MailboxCap == 0 {
		opts.MailboxCap = 256
	}
	if opts.RetryAfterSeconds < 1 {
		opts.RetryAfterSeconds = 1
	}
	restore := make(map[int]*Snapshot, len(opts.Snapshots))
	for _, snap := range opts.Snapshots {
		if snap.Shard < 0 || snap.Shard >= opts.Shards {
			return nil, fmt.Errorf("serve: snapshot for shard %d outside [0,%d)", snap.Shard, opts.Shards)
		}
		if _, dup := restore[snap.Shard]; dup {
			return nil, fmt.Errorf("serve: duplicate snapshot for shard %d", snap.Shard)
		}
		restore[snap.Shard] = snap
	}
	s := &Server{
		shards:     make([]atomic.Pointer[Shard], opts.Shards),
		retryAfter: strconv.Itoa(opts.RetryAfterSeconds),
		mailboxCap: opts.MailboxCap,
	}
	for i := range s.shards {
		var (
			sh  *Shard
			err error
		)
		if snap, ok := restore[i]; ok {
			sh, err = restoreShard(snap, opts.MailboxCap)
		} else {
			sh, err = newShard(i, opts.Config, opts.MailboxCap)
		}
		if err != nil {
			return nil, err
		}
		s.shards[i].Store(sh)
	}
	s.mux = s.buildMux()
	return s, nil
}

// shardAt returns the shard currently occupying slot i.
func (s *Server) shardAt(i int) *Shard { return s.shards[i].Load() }

// Start launches every shard's single-writer loop.
func (s *Server) Start() {
	for i := range s.shards {
		s.shardAt(i).start()
	}
}

// Stop drains and stops every shard. The HTTP side must be quiesced
// first (http.Server.Shutdown); in-flight handlers unblock via the
// shard done channels.
func (s *Server) Stop() {
	s.stopping.Store(true)
	for i := range s.shards {
		s.shardAt(i).stop()
	}
}

// Snapshots serializes every shard. Call after Stop.
func (s *Server) Snapshots() []*Snapshot {
	out := make([]*Snapshot, len(s.shards))
	for i := range s.shards {
		out[i] = s.shardAt(i).buildSnapshot()
	}
	return out
}

// NumShards returns the shard count.
func (s *Server) NumShards() int { return len(s.shards) }

// ShardTick returns shard i's tick channel for the external clock.
func (s *Server) ShardTick(i int) chan<- struct{} { return s.shardAt(i).TickC() }

// InstallShard replaces slot snap.Shard with a shard restored from the
// snapshot, started and ready for traffic. The restore replays the
// snapshot log and verifies its digest, so a migration receiver or a
// promoted follower cannot install corrupt state. The outgoing shard is
// drained and stopped after the swap: handlers that already resolved it
// finish against it (or get 503 once it is down), new requests see the
// replacement. Returns the restore error without touching the slot.
func (s *Server) InstallShard(snap *Snapshot) error {
	if snap.Shard < 0 || snap.Shard >= len(s.shards) {
		return fmt.Errorf("serve: install for shard %d outside [0,%d)", snap.Shard, len(s.shards))
	}
	sh, err := restoreShard(snap, s.mailboxCap)
	if err != nil {
		return err
	}
	sh.start()
	if old := s.shards[snap.Shard].Swap(sh); old != nil {
		old.stop()
	}
	return nil
}

// ShardTail fetches shard i's replication tail from log index `from`
// through the shard's mailbox, so the tail is slot-atomic with respect
// to every other mutation. It is the in-process face of the
// /v1/shards/{shard}/log endpoint, used by the cluster layer's
// replication push.
func (s *Server) ShardTail(i, from int) (*Tail, error) {
	if i < 0 || i >= len(s.shards) {
		return nil, fmt.Errorf("serve: shard %d not in [0,%d)", i, len(s.shards))
	}
	sh := s.shardAt(i)
	p := sh.pool.newPending()
	p.kind = pendLog
	p.from = from
	rep, err := s.exchangeErr(sh, p)
	if err != nil {
		return nil, err
	}
	return rep.tail, rep.err
}

// Advance steps shard i's clock by slots through the mailbox — the
// in-process equivalent of POST /v1/shards/{shard}/advance, used by the
// cluster layer's tick path so replicated advances stay slot-atomic.
func (s *Server) Advance(i int, slots int64) (int64, error) {
	if i < 0 || i >= len(s.shards) {
		return 0, fmt.Errorf("serve: shard %d not in [0,%d)", i, len(s.shards))
	}
	sh := s.shardAt(i)
	p := sh.pool.newPending()
	p.kind = pendAdvance
	p.slots = slots
	rep, err := s.exchangeErr(sh, p)
	if err != nil {
		return 0, err
	}
	return rep.now, nil
}

// exchangeErr is exchange for in-process callers: same ownership
// protocol, errors instead of HTTP replies. Unlike exchange, it
// consumes the record on every path: replies carry fresh copies (never
// pooled storage), so the record is freed as soon as the reply lands,
// and the only non-freeing path deliberately abandons it to a draining
// shard. Registered as an unconditional transfer in ownerXferTable.
func (s *Server) exchangeErr(sh *Shard, p *pending) (reply, error) {
	if s.stopping.Load() {
		sh.pool.freePending(p)
		return reply{}, errors.New("serve: server is shutting down")
	}
	if !sh.submit(p) {
		sh.pool.freePending(p)
		return reply{}, errors.New("serve: shard mailbox is full")
	}
	select {
	case rep := <-p.reply:
		sh.pool.freePending(p)
		return rep, nil
	case <-sh.done:
		select {
		case rep := <-p.reply:
			sh.pool.freePending(p)
			return rep, nil
		default:
			return reply{}, errors.New("serve: shard stopped before replying")
		}
	}
}

// Handler returns the HTTP surface: the /v1 API, /metrics, /healthz,
// and /debug/pprof.
func (s *Server) Handler() http.Handler { return s.mux }

// AttachClusterStats hands the server the cluster layer's gauges:
// /metrics starts rendering them and shard status replies carry the
// role/lag/migration fields.
func (s *Server) AttachClusterStats(cs *ClusterStats) { s.cstats.Store(cs) }

func (s *Server) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/shards/{shard}/commands", s.handleCommands)
	mux.HandleFunc("POST /v1/shards/{shard}/advance", s.handleAdvance)
	mux.HandleFunc("GET /v1/shards/{shard}", s.handleQuery)
	mux.HandleFunc("GET /v1/shards/{shard}/state", s.handleState)
	mux.HandleFunc("GET /v1/shards/{shard}/snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /v1/shards/{shard}/log", s.handleLog)
	mux.HandleFunc("GET /v1/shards", s.handleList)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// shardFrom resolves the {shard} path segment; replies and returns nil
// on failure.
func (s *Server) shardFrom(w http.ResponseWriter, r *http.Request) *Shard {
	id, err := strconv.Atoi(r.PathValue("shard"))
	if err != nil || id < 0 || id >= len(s.shards) {
		writeError(w, http.StatusNotFound, errBadShard,
			fmt.Sprintf("shard %q not in [0,%d)", r.PathValue("shard"), len(s.shards)))
		return nil
	}
	return s.shardAt(id)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // client gone; nothing useful to do with a short write
}

func writeError(w http.ResponseWriter, code int, kind, reason string) {
	writeJSON(w, code, ErrorResponse{Error: kind, Reason: reason})
}

// writeRaw sends a pre-encoded body. Content-Length is set explicitly
// so responses on the hot path are never chunked — pipelining clients
// (cmd/pd2load) rely on it to frame responses cheaply.
func writeRaw(w http.ResponseWriter, code int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(code)
	_, _ = w.Write(body) // client gone; nothing useful to do with a short write
}

// readBody drains r into dst (reusing its capacity), the pooled-buffer
// replacement for io.ReadAll.
func readBody(dst []byte, r io.Reader) ([]byte, error) {
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}

// replyReadError answers a body-read error: 413 with its own wire kind
// when the MaxBytesReader limit was the cause (so clients can tell
// "shrink the batch" from "fix the request"), 400 otherwise.
func replyReadError(w http.ResponseWriter, err error) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		writeError(w, http.StatusRequestEntityTooLarge, errTooLarge,
			fmt.Sprintf("request body exceeds %d-byte limit", mbe.Limit))
		return
	}
	writeError(w, http.StatusBadRequest, errInvalid, "reading body: "+err.Error())
}

// exchange submits p to sh and waits for the reply. On a false return
// the record has been freed (or deliberately abandoned in the shutdown
// race) and an error response written. On a true return the caller owns
// the record — it may encode the response from the record's pooled
// buffers — and must freePending it afterwards.
func (s *Server) exchange(w http.ResponseWriter, sh *Shard, p *pending) (reply, bool) {
	if s.stopping.Load() {
		sh.pool.freePending(p)
		writeError(w, http.StatusServiceUnavailable, errDraining, "server is shutting down")
		return reply{}, false
	}
	if !sh.submit(p) {
		sh.pool.freePending(p)
		sh.ctr.backpressured.Add(1)
		w.Header().Set("Retry-After", s.retryAfter)
		writeError(w, http.StatusTooManyRequests, errFull, "shard mailbox is full; retry later")
		return reply{}, false
	}
	select {
	case rep := <-p.reply:
		return rep, true
	case <-sh.done:
		// The loop exited. It may have replied just before exiting, or the
		// record may still sit in the dead mailbox.
		select {
		case rep := <-p.reply:
			return rep, true
		default:
			// Unreplied and unreachable: abandon the record (its reply
			// channel may yet receive nothing; reusing it would be unsound).
			writeError(w, http.StatusServiceUnavailable, errDraining, "shard stopped before replying")
			return reply{}, false
		}
	}
}

// handleCommands accepts one command object or an array of them. The
// whole body is decoded and validated before anything reaches the
// shard, so a malformed batch is rejected atomically with 400. The
// round trip — read, decode, admit, encode — runs entirely in the
// record's pooled buffers; see codec.go for the wire compatibility
// contract.
func (s *Server) handleCommands(w http.ResponseWriter, r *http.Request) {
	sh := s.shardFrom(w, r)
	if sh == nil {
		return
	}
	p := sh.pool.newPending()
	var err error
	p.body, err = readBody(p.body[:0], http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		sh.pool.freePending(p)
		replyReadError(w, err)
		return
	}
	var batch bool
	p.cmds, p.esc, batch, err = decodeCommands(p.body, p.esc, p.cmds[:0])
	if err != nil {
		sh.pool.freePending(p)
		writeError(w, http.StatusBadRequest, errInvalid, "decoding commands: "+err.Error())
		return
	}
	if len(p.cmds) == 0 {
		sh.pool.freePending(p)
		writeError(w, http.StatusBadRequest, errInvalid, "empty command batch")
		return
	}
	p.kind = pendCommands
	rep, ok := s.exchange(w, sh, p)
	if !ok {
		return
	}
	if batch {
		p.out = appendCommandResults(p.out[:0], rep.results)
		writeRaw(w, http.StatusOK, p.out)
	} else {
		res := &rep.results[0]
		code := http.StatusOK
		if res.Code != 0 {
			code = res.Code
		}
		p.out = appendCommandResultLine(p.out[:0], res)
		writeRaw(w, code, p.out)
	}
	sh.pool.freePending(p)
}

func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	sh := s.shardFrom(w, r)
	if sh == nil {
		return
	}
	p := sh.pool.newPending()
	var err error
	p.body, err = readBody(p.body[:0], http.MaxBytesReader(w, r.Body, 1<<16))
	if err != nil {
		sh.pool.freePending(p)
		replyReadError(w, err)
		return
	}
	slots, err := decodeAdvance(p.body)
	if err != nil {
		sh.pool.freePending(p)
		writeError(w, http.StatusBadRequest, errInvalid, "decoding advance: "+err.Error())
		return
	}
	if slots < 0 || slots > 1<<20 {
		sh.pool.freePending(p)
		writeError(w, http.StatusBadRequest, errInvalid,
			fmt.Sprintf("slots %d outside [0, 2^20]", slots))
		return
	}
	p.kind = pendAdvance
	p.slots = slots
	rep, ok := s.exchange(w, sh, p)
	if !ok {
		return
	}
	p.out = appendAdvanceResponse(p.out[:0], rep.now)
	writeRaw(w, http.StatusOK, p.out)
	sh.pool.freePending(p)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	sh := s.shardFrom(w, r)
	if sh == nil {
		return
	}
	p := sh.pool.newPending()
	p.kind = pendQuery
	p.withTasks = r.URL.Query().Get("tasks") != ""
	rep, ok := s.exchange(w, sh, p)
	if !ok {
		return
	}
	sh.pool.freePending(p) // the status reply is a fresh copy, not pooled
	if cs := s.cstats.Load(); cs != nil {
		cs.fillStatus(sh.id, rep.status)
	}
	writeJSON(w, http.StatusOK, rep.status)
}

func (s *Server) handleState(w http.ResponseWriter, r *http.Request) {
	sh := s.shardFrom(w, r)
	if sh == nil {
		return
	}
	p := sh.pool.newPending()
	p.kind = pendState
	rep, ok := s.exchange(w, sh, p)
	if !ok {
		return
	}
	sh.pool.freePending(p) // the state reply is a fresh copy, not pooled
	writeJSON(w, http.StatusOK, StateResponse{
		Shard:  sh.id,
		Now:    rep.now,
		Digest: rep.digest,
		State:  string(rep.state),
	})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	sh := s.shardFrom(w, r)
	if sh == nil {
		return
	}
	p := sh.pool.newPending()
	p.kind = pendSnapshot
	rep, ok := s.exchange(w, sh, p)
	if !ok {
		return
	}
	sh.pool.freePending(p) // the snapshot reply is a fresh copy, not pooled
	if rep.err != nil {
		writeError(w, http.StatusInternalServerError, "snapshot", rep.err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(rep.state)
}

// handleLog serves the replication tail from ?from=N (default 0): the
// commands applied since that log index plus the pending sets and
// admission books — the pull half of primary→follower streaming and
// the fetch half of live migration.
func (s *Server) handleLog(w http.ResponseWriter, r *http.Request) {
	sh := s.shardFrom(w, r)
	if sh == nil {
		return
	}
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, errInvalid, fmt.Sprintf("from %q is not a non-negative integer", q))
			return
		}
		from = n
	}
	p := sh.pool.newPending()
	p.kind = pendLog
	p.from = from
	rep, ok := s.exchange(w, sh, p)
	if !ok {
		return
	}
	sh.pool.freePending(p) // the tail reply is a fresh copy, not pooled
	if rep.err != nil {
		writeError(w, http.StatusBadRequest, errInvalid, rep.err.Error())
		return
	}
	writeJSON(w, http.StatusOK, rep.tail)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	type shardInfo struct {
		Shard  int    `json:"shard"`
		Policy string `json:"policy"`
		M      int    `json:"m"`
	}
	out := make([]shardInfo, len(s.shards))
	for i := range s.shards {
		sh := s.shardAt(i)
		out[i] = shardInfo{Shard: sh.id, Policy: sh.cfg.policyName(), M: sh.cfg.M}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	shards := make([]*Shard, len(s.shards))
	for i := range s.shards {
		shards[i] = s.shardAt(i)
	}
	_ = writeMetrics(w, shards, s.cstats.Load()) // client gone; nothing useful to do
}
