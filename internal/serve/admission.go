package serve

import (
	"fmt"
	"sort"

	"repro/internal/frac"
)

// admission holds the property-(W) books for one shard. It is owned by
// the shard goroutine — no locking — and tracks *requested* weights:
// the weight each admitted task asked for, independent of the
// scheduling weight the engine is transiently carrying while a change
// awaits enactment. Admitting against requested weights is what makes
// the 409 headroom meaningful to clients ("how much may I still ask
// for?") and guarantees every admitted command eventually applies: the
// engine's scheduling weight decays to the requested weight as changes
// enact, so a join deferred by condition J fits once earlier weight
// drains.
//
// The books are one map keyed by task name. Lookups on the hot path go
// through string(raw) on bytes aliasing the request buffer — an rvalue
// map index the compiler evaluates without materializing the string —
// and the canonical name each entry interns at admission is what the
// shard stages into batches, so nothing downstream retains request
// memory.
type admission struct {
	m frac.Rat // capacity: the shard's processor count

	// tasks holds every task name ever admitted for a join; the entry
	// outlives the task because the engine rejects re-joining a departed
	// name (its accounting is retained), so admission must too.
	tasks map[string]*taskEntry
	// total is the sum of live entries' requested weights.
	total frac.Rat
	live  int // live entries, for status reporting
}

// taskEntry is one task's admission record.
type taskEntry struct {
	// name is the canonical interned copy of the task's wire name.
	name string
	// w is the requested weight; meaningful only while live.
	w frac.Rat
	// live means the admitted join has not fully left: w counts toward
	// total. A dead entry only burns the name.
	live bool
	// pending marks a join not yet applied to the engine. Reweights and
	// leaves for pending tasks are refused (409 conflict) so an admitted
	// mutation can never hit an engine that does not know the task yet.
	pending bool
	// leaving marks an admitted leave. The weight stays counted until
	// the engine leave actually succeeds (rule L may defer it), keeping
	// the headroom conservative.
	leaving bool
}

func newAdmission(m int) *admission {
	return &admission{
		m:     frac.FromInt(int64(m)),
		tasks: make(map[string]*taskEntry),
	}
}

// headroom returns M minus the admitted total — how much weight a new
// request may still claim.
func (a *admission) headroom() frac.Rat { return a.m.Sub(a.total) }

// admissionError is a structured admission rejection; kind is one of
// the err* wire constants and maps to the HTTP status in resultFor.
type admissionError struct {
	kind     string
	reason   string
	headroom frac.Rat
}

func (e *admissionError) Error() string { return e.kind + ": " + e.reason }

//lint:allocok error construction on the rejection path only; the accept path returns nil
func rejectWeight(headroom frac.Rat, format string, args ...any) *admissionError {
	return &admissionError{kind: errWeight, reason: fmt.Sprintf(format, args...), headroom: headroom}
}

//lint:allocok error construction on the rejection path only; the accept path returns nil
func reject(kind, format string, args ...any) *admissionError {
	return &admissionError{kind: kind, reason: fmt.Sprintf(format, args...)}
}

// newTaskEntry interns the wire name and allocates the entry — the one
// deliberate allocation of the admission path, paid once per task
// lifetime (joins only; reweights and leaves hit existing entries).
//
//lint:allocok per-task-lifetime allocation: joins intern the name and entry once
func newTaskEntry(raw []byte, w frac.Rat) *taskEntry {
	return &taskEntry{name: string(raw), w: w, live: true, pending: true}
}

// posDelta bounds the worst-case increase in admitted weight if every
// command in cmds were admitted, measured against the current books:
// joins contribute their full weight, reweights their positive delta
// (or full weight when the task is not currently reweightable — a
// conservative stand-in for join-then-reweight sequences), leaves
// nothing (weight frees only at flush, never mid-drain). If headroom
// covers this bound, every per-command property-(W) comparison in the
// drain is guaranteed to pass — per-task deltas telescope, so each
// prefix total stays under total+bound — and the per-command checks
// can be skipped wholesale.
//
//lint:noalloc hot admission path: one bound evaluation per mailbox drain
func (a *admission) posDelta(cmds []wireCmd) frac.Rat {
	var bound frac.Rat
	for i := range cmds {
		c := &cmds[i]
		switch c.op {
		case opJoin:
			bound = bound.Add(c.weight)
		case opReweight:
			if e := a.tasks[string(c.raw)]; e != nil && e.live && !e.pending && !e.leaving {
				if e.w.Less(c.weight) {
					bound = bound.Add(c.weight.Sub(e.w))
				}
			} else {
				bound = bound.Add(c.weight)
			}
		case opLeave:
		}
	}
	return bound
}

// admitJoin reserves name and weight for a joining task and returns the
// canonical interned name. checkW=false skips the per-command
// property-(W) comparison — only sound when the caller already covered
// the drain's posDelta bound.
//
//lint:noalloc hot admission path; rejections and entry creation sit at allocok boundaries
func (a *admission) admitJoin(raw []byte, w frac.Rat, checkW bool) (string, *admissionError) {
	if a.tasks[string(raw)] != nil {
		return "", reject(errConflict, "task name %q was already used on this shard", raw)
	}
	if checkW && a.headroom().Less(w) {
		return "", rejectWeight(a.headroom(),
			"join %s at weight %s exceeds property (W): headroom %s of M=%s", raw, w, a.headroom(), a.m)
	}
	e := newTaskEntry(raw, w)
	a.tasks[e.name] = e
	a.total = a.total.Add(w)
	a.live++
	return e.name, nil
}

// admitReweight reserves the weight delta for an admitted, non-leaving
// task and returns the canonical interned name.
//
//lint:noalloc hot admission path; rejections sit at allocok boundaries
func (a *admission) admitReweight(raw []byte, w frac.Rat, checkW bool) (string, *admissionError) {
	e := a.tasks[string(raw)]
	if e == nil {
		return "", reject(errUnknown, "task %q never joined this shard", raw)
	}
	if !e.live {
		return "", reject(errConflict, "task %q has left this shard", raw)
	}
	if e.pending {
		return "", reject(errConflict, "task %q has a join still pending; retry next slot", raw)
	}
	if e.leaving {
		return "", reject(errConflict, "task %q is leaving", raw)
	}
	next := a.total.Sub(e.w).Add(w)
	if checkW && a.m.Less(next) {
		return "", rejectWeight(a.headroom().Add(e.w),
			"reweight %s from %s to %s exceeds property (W): total would be %s > M=%s", e.name, e.w, w, next, a.m)
	}
	e.w = w
	a.total = next
	return e.name, nil
}

// admitLeave marks an admitted task as leaving and returns the
// canonical interned name. Its weight is freed by completeLeave once
// the engine leave succeeds.
//
//lint:noalloc hot admission path; rejections sit at allocok boundaries
func (a *admission) admitLeave(raw []byte) (string, *admissionError) {
	e := a.tasks[string(raw)]
	if e == nil {
		return "", reject(errUnknown, "task %q never joined this shard", raw)
	}
	if !e.live {
		return "", reject(errConflict, "task %q has already left this shard", raw)
	}
	if e.pending {
		return "", reject(errConflict, "task %q has a join still pending; retry next slot", raw)
	}
	if e.leaving {
		return "", reject(errConflict, "task %q is already leaving", raw)
	}
	e.leaving = true
	return e.name, nil
}

// joinApplied clears the pending-join mark once the engine join
// succeeded.
func (a *admission) joinApplied(name string) {
	if e := a.tasks[name]; e != nil {
		e.pending = false
	}
}

// abortJoin unwinds an admitted join the engine unexpectedly refused:
// the weight is released but the name stays burned (the engine may have
// partially recorded it, and names are never reusable anyway).
func (a *admission) abortJoin(name string) {
	e := a.tasks[name]
	if e == nil {
		return
	}
	e.pending = false
	if e.live {
		a.total = a.total.Sub(e.w)
		e.live = false
		a.live--
	}
}

// completeLeave frees the task's weight after the engine leave
// succeeded.
func (a *admission) completeLeave(name string) {
	e := a.tasks[name]
	if e == nil {
		return
	}
	if e.live {
		a.total = a.total.Sub(e.w)
		e.live = false
		a.live--
	}
	e.leaving = false
}

// requested returns the live requested weight for name, if any — the
// deferred-join replay path in flush needs it.
func (a *admission) requested(name string) (frac.Rat, bool) {
	if e := a.tasks[name]; e != nil && e.live {
		return e.w, true
	}
	return frac.Rat{}, false
}

// state serializes the books for a snapshot; restore rebuilds the maps
// from it. Slices are sorted so snapshots are byte-stable. The encoding
// predates the single-map layout and is kept verbatim so snapshots
// round-trip across versions.
type admissionState struct {
	Names     []string     `json:"names"`
	Requested []taskWeight `json:"requested"`
	Pending   []string     `json:"pending_joins,omitempty"`
	Leaving   []string     `json:"leaving,omitempty"`
}

type taskWeight struct {
	Task   string   `json:"task"`
	Weight frac.Rat `json:"weight"`
}

func (a *admission) state() admissionState {
	var st admissionState
	st.Names = make([]string, 0, len(a.tasks))
	for name, e := range a.tasks {
		st.Names = append(st.Names, name)
		if e.live {
			st.Requested = append(st.Requested, taskWeight{Task: name, Weight: e.w})
		}
		if e.pending {
			st.Pending = append(st.Pending, name)
		}
		if e.leaving {
			st.Leaving = append(st.Leaving, name)
		}
	}
	sort.Strings(st.Names)
	sort.Slice(st.Requested, func(i, j int) bool { return st.Requested[i].Task < st.Requested[j].Task })
	sort.Strings(st.Pending)
	sort.Strings(st.Leaving)
	return st
}

func (a *admission) restore(st admissionState) {
	for _, name := range st.Names {
		a.tasks[name] = &taskEntry{name: name}
	}
	for _, tw := range st.Requested {
		e := a.tasks[tw.Task]
		if e == nil {
			e = &taskEntry{name: tw.Task}
			a.tasks[tw.Task] = e
		}
		e.live = true
		e.w = tw.Weight
		a.total = a.total.Add(tw.Weight)
		a.live++
	}
	for _, name := range st.Pending {
		if e := a.tasks[name]; e != nil {
			e.pending = true
		}
	}
	for _, name := range st.Leaving {
		if e := a.tasks[name]; e != nil {
			e.leaving = true
		}
	}
}
