package serve

import (
	"fmt"
	"sort"

	"repro/internal/frac"
)

// admission holds the property-(W) books for one shard. It is owned by
// the shard goroutine — no locking — and tracks *requested* weights:
// the weight each admitted task asked for, independent of the
// scheduling weight the engine is transiently carrying while a change
// awaits enactment. Admitting against requested weights is what makes
// the 409 headroom meaningful to clients ("how much may I still ask
// for?") and guarantees every admitted command eventually applies: the
// engine's scheduling weight decays to the requested weight as changes
// enact, so a join deferred by condition J fits once earlier weight
// drains.
type admission struct {
	m frac.Rat // capacity: the shard's processor count

	// names holds every task name ever admitted for a join. The engine
	// rejects re-joining a departed name (its accounting is retained), so
	// admission must too.
	names map[string]bool
	// req maps live tasks (admitted join not yet fully left) to their
	// requested weight. total is the sum of req.
	req   map[string]frac.Rat
	total frac.Rat
	// pendingJoin marks tasks whose admitted join has not yet been
	// applied to the engine. Reweights and leaves for them are refused
	// (409 conflict) so an admitted mutation can never hit an engine that
	// does not know the task yet.
	pendingJoin map[string]bool
	// leaving marks tasks with an admitted leave. Their weight stays
	// counted until the engine leave actually succeeds (rule L may defer
	// it), keeping the headroom conservative.
	leaving map[string]bool
}

func newAdmission(m int) *admission {
	return &admission{
		m:           frac.FromInt(int64(m)),
		names:       make(map[string]bool),
		req:         make(map[string]frac.Rat),
		pendingJoin: make(map[string]bool),
		leaving:     make(map[string]bool),
	}
}

// headroom returns M minus the admitted total — how much weight a new
// request may still claim.
func (a *admission) headroom() frac.Rat { return a.m.Sub(a.total) }

// admissionError is a structured admission rejection; kind is one of
// the err* wire constants and maps to the HTTP status in resultFor.
type admissionError struct {
	kind     string
	reason   string
	headroom frac.Rat
}

func (e *admissionError) Error() string { return e.kind + ": " + e.reason }

//lint:allocok error construction on the rejection path only; the accept path returns nil
func rejectWeight(headroom frac.Rat, format string, args ...any) *admissionError {
	return &admissionError{kind: errWeight, reason: fmt.Sprintf(format, args...), headroom: headroom}
}

//lint:allocok error construction on the rejection path only; the accept path returns nil
func reject(kind, format string, args ...any) *admissionError {
	return &admissionError{kind: kind, reason: fmt.Sprintf(format, args...)}
}

// admitJoin reserves name and weight for a joining task.
func (a *admission) admitJoin(name string, w frac.Rat) *admissionError {
	if a.names[name] {
		return reject(errConflict, "task name %q was already used on this shard", name)
	}
	if a.headroom().Less(w) {
		return rejectWeight(a.headroom(),
			"join %s at weight %s exceeds property (W): headroom %s of M=%s", name, w, a.headroom(), a.m)
	}
	a.names[name] = true
	a.req[name] = w
	a.total = a.total.Add(w)
	a.pendingJoin[name] = true
	return nil
}

// admitReweight reserves the weight delta for an admitted, non-leaving
// task.
func (a *admission) admitReweight(name string, w frac.Rat) *admissionError {
	cur, live := a.req[name]
	if !live {
		if a.names[name] {
			return reject(errConflict, "task %q has left this shard", name)
		}
		return reject(errUnknown, "task %q never joined this shard", name)
	}
	if a.pendingJoin[name] {
		return reject(errConflict, "task %q has a join still pending; retry next slot", name)
	}
	if a.leaving[name] {
		return reject(errConflict, "task %q is leaving", name)
	}
	next := a.total.Sub(cur).Add(w)
	if a.m.Less(next) {
		return rejectWeight(a.headroom().Add(cur),
			"reweight %s from %s to %s exceeds property (W): total would be %s > M=%s", name, cur, w, next, a.m)
	}
	a.req[name] = w
	a.total = next
	return nil
}

// admitLeave marks an admitted task as leaving. Its weight is freed by
// completeLeave once the engine leave succeeds.
func (a *admission) admitLeave(name string) *admissionError {
	if _, live := a.req[name]; !live {
		if a.names[name] {
			return reject(errConflict, "task %q has already left this shard", name)
		}
		return reject(errUnknown, "task %q never joined this shard", name)
	}
	if a.pendingJoin[name] {
		return reject(errConflict, "task %q has a join still pending; retry next slot", name)
	}
	if a.leaving[name] {
		return reject(errConflict, "task %q is already leaving", name)
	}
	a.leaving[name] = true
	return nil
}

// joinApplied clears the pending-join mark once the engine join
// succeeded.
func (a *admission) joinApplied(name string) { delete(a.pendingJoin, name) }

// abortJoin unwinds an admitted join the engine unexpectedly refused:
// the weight is released but the name stays burned (the engine may have
// partially recorded it, and names are never reusable anyway).
func (a *admission) abortJoin(name string) {
	delete(a.pendingJoin, name)
	if w, live := a.req[name]; live {
		a.total = a.total.Sub(w)
		delete(a.req, name)
	}
}

// completeLeave frees the task's weight after the engine leave
// succeeded.
func (a *admission) completeLeave(name string) {
	if w, live := a.req[name]; live {
		a.total = a.total.Sub(w)
		delete(a.req, name)
	}
	delete(a.leaving, name)
}

// state serializes the books for a snapshot; restore rebuilds the maps
// from it. Slices are sorted so snapshots are byte-stable.
type admissionState struct {
	Names     []string     `json:"names"`
	Requested []taskWeight `json:"requested"`
	Pending   []string     `json:"pending_joins,omitempty"`
	Leaving   []string     `json:"leaving,omitempty"`
}

type taskWeight struct {
	Task   string   `json:"task"`
	Weight frac.Rat `json:"weight"`
}

func (a *admission) state() admissionState {
	st := admissionState{
		Names:   make([]string, 0, len(a.names)),
		Pending: sortedKeys(a.pendingJoin),
		Leaving: sortedKeys(a.leaving),
	}
	for name := range a.names {
		st.Names = append(st.Names, name)
	}
	sort.Strings(st.Names)
	for task := range a.req {
		st.Requested = append(st.Requested, taskWeight{Task: task, Weight: a.req[task]})
	}
	sort.Slice(st.Requested, func(i, j int) bool { return st.Requested[i].Task < st.Requested[j].Task })
	return st
}

func (a *admission) restore(st admissionState) {
	for _, name := range st.Names {
		a.names[name] = true
	}
	for _, tw := range st.Requested {
		a.req[tw.Task] = tw.Weight
		a.total = a.total.Add(tw.Weight)
	}
	for _, name := range st.Pending {
		a.pendingJoin[name] = true
	}
	for _, name := range st.Leaving {
		a.leaving[name] = true
	}
}

func sortedKeys(set map[string]bool) []string {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
