package serve

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/frac"
	"repro/internal/stats"
)

// scripted is one randomized command attempt at a given slot.
type scripted struct {
	slot int64
	cmd  wireCmd
}

// genScript builds a randomized command schedule. The same script is
// fed to the uninterrupted shard and to the snapshot/restore pair, so
// any divergence is the shard's fault, not the generator's.
func genScript(seed uint64, horizon int64) []scripted {
	r := stats.NewStream(seed, 7)
	var script []scripted
	nextName := 0
	var names []string
	for slot := int64(0); slot < horizon; slot++ {
		for k := r.Intn(3); k > 0; k-- {
			switch r.Intn(5) {
			case 0, 1: // join a fresh name
				name := fmt.Sprintf("T%d", nextName)
				nextName++
				names = append(names, name)
				script = append(script, scripted{slot, wireCmd{
					op: opJoin, task: name,
					weight: frac.New(int64(1+r.Intn(5)), 16),
				}})
			case 2, 3: // reweight a known name (may be rejected; fine)
				if len(names) == 0 {
					continue
				}
				script = append(script, scripted{slot, wireCmd{
					op: opReweight, task: names[r.Intn(len(names))],
					weight: frac.New(int64(1+r.Intn(7)), 16),
				}})
			case 4: // leave a known name
				if len(names) == 0 {
					continue
				}
				script = append(script, scripted{slot, wireCmd{
					op: opLeave, task: names[r.Intn(len(names))],
				}})
			}
		}
	}
	return script
}

// admitScripted feeds one scripted command through admission, deriving
// the wire-name bytes the way the decoder would.
func admitScripted(sh *Shard, c wireCmd) {
	c.raw = []byte(c.task)
	sh.admit(&c, true)
}

// playSlot admits every script entry for the given slot, then advances
// one boundary.
func playSlot(sh *Shard, script []scripted, slot int64) {
	for _, s := range script {
		if s.slot == slot {
			admitScripted(sh, s.cmd)
		}
	}
	sh.advance(1)
}

func engineState(t *testing.T, sh *Shard) string {
	t.Helper()
	var b strings.Builder
	if err := sh.eng.WriteState(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestSnapshotRestoreRoundTrip is the satellite's randomized
// round-trip: for each policy, a shard runs a random command history;
// at a cut slot — with commands already staged in the batch — it is
// snapshotted through JSON, restored, and both copies play the
// identical remainder. The restored engine must match byte for byte at
// every step, and the admission books must survive the trip.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	cfgs := map[string]ShardConfig{
		"oi":     {M: 2, Policy: "oi", RecordSchedule: true},
		"lj":     {M: 2, Policy: "lj", RecordSchedule: true},
		"hybrid": {M: 2, Policy: "hybrid", OIThreshold: frac.New(1, 8), RecordSchedule: true},
	}
	for name, cfg := range cfgs {
		t.Run(name, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				const cut, horizon = 13, 40
				script := genScript(seed, horizon)

				live := testShard(t, cfg, 8)
				for slot := int64(0); slot < cut; slot++ {
					playSlot(live, script, slot)
				}
				// Stage the cut slot's commands but do NOT advance: the
				// snapshot must carry the un-applied batch.
				for _, s := range script {
					if s.slot == cut {
						admitScripted(live, s.cmd)
					}
				}

				data, err := json.Marshal(live.buildSnapshot())
				if err != nil {
					t.Fatal(err)
				}
				var snap Snapshot
				if err := json.Unmarshal(data, &snap); err != nil {
					t.Fatal(err)
				}
				restored, err := restoreShard(&snap, 8)
				if err != nil {
					t.Fatal(err)
				}

				if got, want := engineState(t, restored), engineState(t, live); got != want {
					t.Fatalf("seed %d: restored engine diverges at the cut:\n--- live ---\n%s--- restored ---\n%s",
						seed, want, got)
				}
				la, _ := json.Marshal(live.adm.state())
				ra, _ := json.Marshal(restored.adm.state())
				if string(la) != string(ra) {
					t.Fatalf("seed %d: admission books diverge:\nlive:     %s\nrestored: %s", seed, la, ra)
				}
				if len(restored.batch) != len(live.batch) {
					t.Fatalf("seed %d: restored batch %d entries, live %d",
						seed, len(restored.batch), len(live.batch))
				}

				// Both play the identical remainder (the cut slot's entries
				// are already staged in both).
				live.advance(1)
				restored.advance(1)
				for slot := int64(cut + 1); slot < horizon; slot++ {
					playSlot(live, script, slot)
					playSlot(restored, script, slot)
					if live.eng.StateDigest() != restored.eng.StateDigest() {
						t.Fatalf("seed %d: digests diverge at slot %d", seed, slot)
					}
				}
				if got, want := engineState(t, restored), engineState(t, live); got != want {
					t.Fatalf("seed %d: final states diverge:\n--- live ---\n%s--- restored ---\n%s",
						seed, want, got)
				}
				if live.ctr.failedApplies.Load() != 0 || restored.ctr.failedApplies.Load() != 0 {
					t.Fatalf("seed %d: failed applies: live %d, restored %d", seed,
						live.ctr.failedApplies.Load(), restored.ctr.failedApplies.Load())
				}
			}
		})
	}
}

// TestRestoreRejectsTamperedSnapshot: a snapshot whose log no longer
// matches its digest must be refused, not silently replayed.
func TestRestoreRejectsTamperedSnapshot(t *testing.T) {
	sh := testShard(t, ShardConfig{M: 2, RecordSchedule: true}, 8)
	admitOne(sh, opJoin, "A", frac.New(1, 4))
	admitOne(sh, opJoin, "B", frac.New(1, 3))
	sh.advance(8)
	snap := sh.buildSnapshot()
	snap.Digest++
	if _, err := restoreShard(snap, 8); err == nil {
		t.Fatal("tampered digest restored without error")
	}
	snap.Digest--
	if _, err := restoreShard(snap, 8); err != nil {
		t.Fatalf("clean snapshot refused: %v", err)
	}
}

// TestRestoreRejectsBadVersion guards the format gate.
func TestRestoreRejectsBadVersion(t *testing.T) {
	sh := testShard(t, ShardConfig{M: 1}, 4)
	snap := sh.buildSnapshot()
	snap.Version = 99
	if _, err := restoreShard(snap, 4); err == nil {
		t.Fatal("unknown snapshot version restored without error")
	}
}
